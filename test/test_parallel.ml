(* Domain_pool and cross-domain determinism.

   The bench harness fans independent trials out over OCaml domains; the
   whole point is that --jobs N must be an observationally pure speedup.
   These tests lock that in at two levels: the pool itself (ordering,
   exception propagation, over-subscription) and full simulated worlds
   (per-trial results AND serialized metrics snapshots byte-identical
   between a serial and a 4-domain run). *)

module Domain_pool = Tcpfo_util.Domain_pool
module Registry = Tcpfo_obs.Registry
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
open Testutil

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                      *)

let test_map_order () =
  let expected = List.init 25 (fun i -> i * i) in
  check_bool "jobs=1" true (Domain_pool.map ~jobs:1 25 (fun i -> i * i) = expected);
  check_bool "jobs=4" true (Domain_pool.map ~jobs:4 25 (fun i -> i * i) = expected);
  check_bool "jobs>n" true (Domain_pool.map ~jobs:64 25 (fun i -> i * i) = expected);
  check_bool "n=0" true (Domain_pool.map ~jobs:4 0 (fun i -> i) = [])

let test_exception_propagates () =
  (* several trials fail; the smallest failing index must win so the
     reported error does not depend on domain scheduling *)
  let attempt jobs =
    match
      Domain_pool.map ~jobs 20 (fun i ->
          if i mod 7 = 3 then failwith (string_of_int i) else i)
    with
    | _ -> None
    | exception Failure msg -> Some msg
  in
  check_bool "jobs=1 raises smallest" true (attempt 1 = Some "3");
  check_bool "jobs=4 raises smallest" true (attempt 4 = Some "3")

let test_run_all () =
  let tasks = List.init 9 (fun i () -> 100 + i) in
  check_bool "run_all order" true
    (Domain_pool.run_all ~jobs:3 tasks = List.init 9 (fun i -> 100 + i))

let test_default_jobs () =
  check_bool "default_jobs >= 1" true (Domain_pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Whole-world determinism                                             *)

(* One bench-like trial: a replicated pair serves a 16 KB reply over a
   slightly lossy medium (loss exercises the RNG and retransmission
   paths, where any cross-domain state sharing would first show up).
   Returns everything observable: the bytes the client got and the
   final serialized metrics registry. *)
let trial i =
  let lan =
    make_repl_lan ~seed:(4000 + i)
      ~medium_config:
        { Tcpfo_net.Medium.default_config with loss_prob = 0.02 }
      ()
  in
  let sinks = ref [] in
  echo_service ~close_after:true ~request_size:4
    ~reply_of:(fun _ -> pattern ~tag:i 16_384)
    lan.repl ~port:5000 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.rclient)
      ~remote:(Tcpfo_core.Replicated.service_addr lan.repl, 5000)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get\n"));
  World.run lan.rworld ~for_:(Time.sec 30.0);
  (sink_contents csink, Registry.to_json (World.metrics lan.rworld))

let test_world_determinism () =
  let trials = 4 in
  let serial = Domain_pool.map ~jobs:1 trials trial in
  let parallel = Domain_pool.map ~jobs:4 trials trial in
  List.iteri
    (fun i ((data_s, json_s), (data_p, json_p)) ->
      check_int
        (Printf.sprintf "trial %d: reply fully received" i)
        16_384 (String.length data_s);
      check_string (Printf.sprintf "trial %d: payload identical" i) data_s
        data_p;
      check_string (Printf.sprintf "trial %d: metrics identical" i) json_s
        json_p)
    (List.combine serial parallel)

let suite =
  [
    Alcotest.test_case "map preserves index order" `Quick test_map_order;
    Alcotest.test_case "smallest-index exception wins" `Quick
      test_exception_propagates;
    Alcotest.test_case "run_all keeps task order" `Quick test_run_all;
    Alcotest.test_case "default_jobs sane" `Quick test_default_jobs;
    Alcotest.test_case "worlds byte-identical across domains" `Quick
      test_world_determinism;
  ]
