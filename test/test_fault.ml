(* The fault-plan DSL and its injector: parser round-trips and rejects,
   deterministic frame drops, host pause/resume semantics, and the
   reversible partition. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Heartbeat = Tcpfo_core.Heartbeat
module Failover_config = Tcpfo_core.Failover_config
module Registry = Tcpfo_obs.Registry
module Fault = Tcpfo_fault.Fault
module Injector = Tcpfo_fault.Injector
open Testutil

let counter world name = Registry.counter_value (World.metrics world) name

(* ---------------- parser ---------------- *)

let test_parse_roundtrip () =
  let text =
    "at 20ms kill primary; after 5ms pause client; at 15ms partition \
     secondary for 8ms; at 10ms drop 3 lan; at 10ms corrupt 2 lan; at 30ms \
     loss lan 0.4 for 6ms; every 10ms x 5 drop 1 lan p=0.5; after 2s resume \
     client"
  in
  let plan = Fault.parse_exn text in
  check_int "statement count" 8 (List.length plan);
  let again = Fault.parse_exn (Fault.to_string plan) in
  check_bool "round-trips through to_string" true (plan = again);
  (match (List.hd plan).Fault.trigger with
  | Fault.At t -> check_int "20ms in ns" (Time.ms 20) t
  | _ -> Alcotest.fail "first trigger should be At");
  match List.rev plan with
  | { Fault.action = Fault.Resume_host "client"; trigger = Fault.After t; _ }
    :: _ ->
    check_int "2s in ns" (Time.sec 2.0) t
  | _ -> Alcotest.fail "last statement should be 'after 2s resume client'"

let test_parse_rejects () =
  let bad text =
    match Fault.parse text with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" text)
    | Error _ -> ()
  in
  bad "at 20 kill primary" (* unitless duration *);
  bad "at 20ms explode primary" (* unknown action *);
  bad "at 20ms drop lan 3" (* swapped operands *);
  bad "at 30ms loss lan 1.5 for 6ms" (* probability out of range *);
  bad "kill primary" (* missing trigger *);
  bad "at 20ms drop 1 lan p=nope" (* malformed gate *)

(* ---------------- injector ---------------- *)

let hb_config =
  Failover_config.make ~heartbeat_period:(Time.ms 10)
    ~detector_timeout:(Time.ms 30) ()

(* Two hosts exchanging heartbeats give a steady, deterministic frame
   supply; the plan's drop/corrupt budgets must be spent exactly. *)
let beating_world () =
  let world = World.create ~seed:7 () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  World.warm_arp [ a; b ];
  let detected = ref false in
  let _ =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> detected := true)
  in
  let _ =
    Heartbeat.start b ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> ())
  in
  let env =
    {
      Injector.engine = World.engine world;
      rng = World.fresh_rng world;
      hosts = [ ("a", a); ("b", b) ];
      nets = [ ("lan", Injector.Medium_net lan) ];
    }
  in
  (world, env, detected)

let test_drop_and_corrupt_budgets () =
  let world, env, _ = beating_world () in
  ignore
    (Injector.install env
       (Fault.parse_exn "after 1ms drop 3 lan; after 1ms corrupt 2 lan"));
  World.run world ~for_:(Time.ms 200);
  check_int "exactly the budgeted drops" 3 (counter world "medium.fault_dropped");
  check_int "exactly the budgeted corruptions" 2
    (counter world "medium.corrupted")

(* Firings 25 ms apart lose at most one beat per detector window, so the
   detectors stay quiet and the frame supply never dries up. *)
let test_every_trigger_bounded () =
  let world, env, detected = beating_world () in
  ignore (Injector.install env (Fault.parse_exn "every 25ms x 4 drop 1 lan"));
  World.run world ~for_:(Time.ms 300);
  check_bool "isolated drops below the detection bound" false !detected;
  check_int "one drop per firing, four firings" 4
    (counter world "medium.fault_dropped")

let test_unknown_names_rejected_at_install () =
  let world, env, _ = beating_world () in
  ignore world;
  check_bool "unknown host" true
    (try
       ignore (Injector.install env (Fault.parse_exn "at 1ms kill nobody"));
       false
     with Invalid_argument _ -> true);
  check_bool "unknown net" true
    (try
       ignore (Injector.install env (Fault.parse_exn "at 1ms drop 1 wan"));
       false
     with Invalid_argument _ -> true)

(* Pause parks a host's timers without detaching it; resume releases
   them in order.  An application timer due during the pause must fire
   exactly at the resume instant, not never and not early. *)
let test_pause_defers_timers () =
  let world = World.create ~seed:3 () in
  let lan = World.make_lan world () in
  let h = World.add_host world lan ~name:"h" ~addr:"10.0.0.1" () in
  let env =
    {
      Injector.engine = World.engine world;
      rng = World.fresh_rng world;
      hosts = [ ("h", h) ];
      nets = [ ("lan", Injector.Medium_net lan) ];
    }
  in
  ignore
    (Injector.install env (Fault.parse_exn "at 1ms pause h; at 20ms resume h"));
  let fired_at = ref None in
  ignore
    ((Host.clock h).schedule (Time.ms 5) (fun () ->
         fired_at := Some (World.now world)));
  World.run world ~for_:(Time.ms 10);
  check_bool "timer held while paused" true (!fired_at = None);
  check_bool "paused state visible" true (Host.paused h);
  World.run world ~for_:(Time.ms 20);
  match !fired_at with
  | Some t -> check_int "released at the resume instant" (Time.ms 20) t
  | None -> Alcotest.fail "timer never released"

(* A short partition must heal invisibly (the gap stays under the
   detection bound and beats resume), while one long enough to starve
   the detector must trigger it even though the partitioned host never
   died. *)
let test_partition_is_reversible_but_detectable () =
  let world, env, detected = beating_world () in
  ignore
    (Injector.install env (Fault.parse_exn "at 100ms partition b for 20ms"));
  World.run world ~for_:(Time.ms 200);
  check_bool "short partition stays below the detection bound" false !detected;
  let received_before = counter world "host.a.heartbeat.received" in
  World.run world ~for_:(Time.ms 100);
  check_bool "beats flow again after the partition heals" true
    (counter world "host.a.heartbeat.received" > received_before);
  ignore
    (Injector.install env (Fault.parse_exn "at 300ms partition b for 60ms"));
  World.run world ~for_:(Time.ms 200);
  check_bool "silence past the bound trips the detector" true !detected

let suite =
  [
    Alcotest.test_case "plan parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "plan parse rejections" `Quick test_parse_rejects;
    Alcotest.test_case "drop and corrupt budgets exact" `Quick
      test_drop_and_corrupt_budgets;
    Alcotest.test_case "every trigger bounded by count" `Quick
      test_every_trigger_bounded;
    Alcotest.test_case "unknown names rejected at install" `Quick
      test_unknown_names_rejected_at_install;
    Alcotest.test_case "pause defers timers to resume" `Quick
      test_pause_defers_timers;
    Alcotest.test_case "partition reversible but detectable" `Quick
      test_partition_is_reversible_but_detectable;
  ]
