module Seq32 = Tcpfo_util.Seq32
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Seg = Tcpfo_packet.Tcp_segment
module Wire = Tcpfo_packet.Wire
module Ipv4_packet = Tcpfo_packet.Ipv4_packet

let ip_a = Ipaddr.of_string "10.0.0.1"
let ip_b = Ipaddr.of_string "10.0.0.2"
let ip_c = Ipaddr.of_string "192.168.7.9"

let test_addr_parse () =
  Testutil.check_string "roundtrip" "10.0.0.1" (Ipaddr.to_string ip_a);
  Testutil.check_int "int value" 0x0A000001 (Ipaddr.to_int ip_a);
  Alcotest.check_raises "bad" (Invalid_argument "Ipaddr.of_string: 1.2.3")
    (fun () -> ignore (Ipaddr.of_string "1.2.3"))

let test_mac_parse () =
  let m = Macaddr.of_string "02:00:00:00:00:2a" in
  Testutil.check_int "int" 0x02000000002a (Macaddr.to_int m);
  Testutil.check_string "string" "02:00:00:00:00:2a" (Macaddr.to_string m);
  Testutil.check_bool "bcast" true (Macaddr.is_broadcast Macaddr.broadcast)

let test_network () =
  Testutil.check_bool "same /24" true
    (Ipaddr.same_network ip_a ip_b ~prefix:24);
  Testutil.check_bool "diff /24" false
    (Ipaddr.same_network ip_a ip_c ~prefix:24)

let mk_segment () =
  Seg.make
    ~flags:{ Seg.no_flags with syn = true; ack = true }
    ~ack:(Seq32.of_int 123456)
    ~window:8192
    ~options:[ Seg.Mss 1460; Seg.Orig_dst ip_c ]
    ~payload:"hello, failover" ~src_port:80 ~dst_port:54321
    ~seq:(Seq32.of_int 0xFFFFFF00) ()

let test_tcp_roundtrip () =
  let seg = mk_segment () in
  let b = Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg in
  let seg' = Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_b b in
  Testutil.check_int "src port" seg.src_port seg'.src_port;
  Testutil.check_int "dst port" seg.dst_port seg'.dst_port;
  Testutil.check_int "seq" (Seq32.to_int seg.seq) (Seq32.to_int seg'.seq);
  Testutil.check_int "ack" (Seq32.to_int seg.ack) (Seq32.to_int seg'.ack);
  Testutil.check_bool "syn" true seg'.flags.syn;
  Testutil.check_bool "ackf" true seg'.flags.ack;
  Testutil.check_int "window" seg.window seg'.window;
  Testutil.check_string "payload" seg.payload seg'.payload;
  Testutil.check_bool "mss" true (Seg.mss_option seg' = Some 1460);
  Testutil.check_bool "orig dst" true (Seg.orig_dst_option seg' = Some ip_c)

let test_checksum_detects_corruption () =
  let seg = mk_segment () in
  let b = Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg in
  Bytes.set b 25 (Char.chr (Char.code (Bytes.get b 25) lxor 0x40));
  Alcotest.check_raises "corrupted"
    (Wire.Malformed "TCP checksum mismatch") (fun () ->
      ignore (Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_b b))

let test_checksum_binds_pseudo_header () =
  let seg = mk_segment () in
  let b = Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg in
  Alcotest.check_raises "wrong dst" (Wire.Malformed "TCP checksum mismatch")
    (fun () -> ignore (Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_c b))

let test_rewrite_dst_incremental () =
  (* The bridge diverts a segment from dst ip_b to dst ip_c and fixes the
     checksum incrementally; the result must verify under the new
     pseudo-header. *)
  let seg = mk_segment () in
  let b = Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg in
  Wire.rewrite_dst_ip ~src_ip:ip_a ~old_dst:ip_b ~new_dst:ip_c b;
  let seg' = Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_c b in
  Testutil.check_string "payload survives" seg.payload seg'.payload

let test_header_length_padding () =
  let seg =
    Seg.make ~options:[ Seg.Mss 1460 ] ~src_port:1 ~dst_port:2
      ~seq:Seq32.zero ()
  in
  Testutil.check_int "mss only" 24 (Seg.header_length seg);
  let seg2 =
    Seg.make
      ~options:[ Seg.Orig_dst ip_a ]
      ~src_port:1 ~dst_port:2 ~seq:Seq32.zero ()
  in
  (* 6-byte option padded to 8 *)
  Testutil.check_int "orig_dst padded" 28 (Seg.header_length seg2)

let test_ipv4_header_roundtrip () =
  let p =
    Ipv4_packet.make ~ttl:17 ~ident:99 ~src:ip_a ~dst:ip_b
      (Ipv4_packet.Raw { proto = 47; data = "xyz" })
  in
  let b = Wire.encode_ipv4_header p ~payload_len:3 in
  let src, dst, proto, total = Wire.decode_ipv4_header b in
  Testutil.check_bool "src" true (Ipaddr.equal src ip_a);
  Testutil.check_bool "dst" true (Ipaddr.equal dst ip_b);
  Testutil.check_int "proto" 47 proto;
  Testutil.check_int "total" 23 total

let arb_segment =
  let open QCheck.Gen in
  let gen =
    let* src_port = int_range 1 65535 in
    let* dst_port = int_range 1 65535 in
    let* seq = int_bound 0xFFFFFFFF in
    let* ack = int_bound 0xFFFFFFFF in
    let* window = int_bound 65535 in
    let* payload = string_size ~gen:char (int_range 0 200) in
    let* syn = bool and* fin = bool and* psh = bool in
    let* with_mss = bool and* with_odst = bool in
    let* with_ws = bool and* with_ts = bool and* n_sack = int_range 0 2 in
    let* ws = int_range 0 14 in
    let* tsv = int_bound 0xFFFFFFF and* tse = int_bound 0xFFFFFFF in
    let* sack_base = int_bound 0xFFFFFF in
    let options =
      (if with_mss then [ Seg.Mss 1460 ] else [])
      @ (if with_ws then [ Seg.Window_scale ws ] else [])
      @ (if with_ts then [ Seg.Timestamps (tsv, tse) ] else [])
      @ (if n_sack > 0 then
           [ Seg.Sack
               (List.init n_sack (fun k ->
                    ( Seq32.of_int (sack_base + (k * 3000)),
                      Seq32.of_int (sack_base + (k * 3000) + 1460) ))) ]
         else [])
      @ if with_odst then [ Seg.Orig_dst ip_c ] else []
    in
    (* like a real stack, never exceed the 40-byte option space: shed the
       SACK blocks first, then the rest, until it fits *)
    let rec shed opts =
      let seg =
        Seg.make ~options:opts ~src_port:1 ~dst_port:2 ~seq:Seq32.zero ()
      in
      if Seg.header_length seg <= 60 then opts
      else
        match
          List.filter (function Seg.Sack _ -> false | _ -> true) opts
        with
        | shorter when List.length shorter < List.length opts ->
          shed shorter
        | _ -> shed (List.tl opts)
    in
    let options = shed options in
    return
      (Seg.make
         ~flags:{ Seg.no_flags with syn; fin; psh; ack = true }
         ~ack:(Seq32.of_int ack) ~window ~options ~payload ~src_port
         ~dst_port ~seq:(Seq32.of_int seq) ())
  in
  QCheck.make gen

let prop_roundtrip =
  QCheck.Test.make ~name:"wire roundtrip preserves segment" ~count:300
    arb_segment (fun seg ->
      let b = Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg in
      let s = Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_b b in
      s.src_port = seg.src_port && s.dst_port = seg.dst_port
      && Seq32.equal s.seq seg.seq
      && Seq32.equal s.ack seg.ack
      && s.flags = seg.flags && s.window = seg.window
      && s.payload = seg.payload
      && Seg.mss_option s = Seg.mss_option seg
      && Seg.window_scale_option s = Seg.window_scale_option seg
      && Seg.timestamps_option s = Seg.timestamps_option seg
      && Seg.sack_option s = Seg.sack_option seg
      && Seg.orig_dst_option s = Seg.orig_dst_option seg)

let suite =
  [
    Alcotest.test_case "ip address parsing" `Quick test_addr_parse;
    Alcotest.test_case "mac address parsing" `Quick test_mac_parse;
    Alcotest.test_case "network membership" `Quick test_network;
    Alcotest.test_case "tcp encode/decode roundtrip" `Quick
      test_tcp_roundtrip;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "checksum binds pseudo-header" `Quick
      test_checksum_binds_pseudo_header;
    Alcotest.test_case "incremental dst rewrite keeps checksum valid"
      `Quick test_rewrite_dst_incremental;
    Alcotest.test_case "option padding" `Quick test_header_length_padding;
    Alcotest.test_case "ipv4 header roundtrip" `Quick
      test_ipv4_header_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
