module Heap = Tcpfo_util.Heap

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p p) [ 5; 1; 4; 2; 3 ];
  let out = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] out

let test_stable_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~prio:7 (i, v)) [ "a"; "b"; "c"; "d" ];
  let out =
    List.init 4 (fun _ -> snd (snd (Option.get (Heap.pop h))))
  in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c"; "d" ] out

let test_empty () =
  let h : int Heap.t = Heap.create () in
  Testutil.check_bool "empty" true (Heap.is_empty h);
  Testutil.check_bool "pop none" true (Heap.pop h = None);
  Testutil.check_bool "peek none" true (Heap.peek_prio h = None)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h ~prio:10 "x";
  Heap.push h ~prio:5 "y";
  Testutil.check_string "min" "y" (snd (Option.get (Heap.pop h)));
  Heap.push h ~prio:1 "z";
  Testutil.check_string "new min" "z" (snd (Option.get (Heap.pop h)));
  Testutil.check_string "rest" "x" (snd (Option.get (Heap.pop h)))

let prop_heap_sort =
  QCheck.Test.make ~name:"pops are sorted & stable" ~count:200
    QCheck.(list (int_bound 1000))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~prio:p (p, i)) prios;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let out = drain [] in
      (* non-decreasing priorities, ties in insertion order *)
      let rec ok = function
        | (p1, i1) :: ((p2, i2) :: _ as rest) ->
          (p1 < p2 || (p1 = p2 && i1 < i2)) && ok rest
        | _ -> true
      in
      List.length out = List.length prios && ok out)

(* -------------------- tombstone compaction ------------------------- *)

let test_compaction_sweeps () =
  let killed = Hashtbl.create 16 in
  let h = Heap.create ~dead:(fun v -> Hashtbl.mem killed v) () in
  for i = 0 to 99 do
    Heap.push h ~prio:(i mod 10) i
  done;
  (* kill 60 of 100: the 51st death crosses the half mark and sweeps,
     so the array holds the 49 survivors plus at most the 9 corpses
     reported after the sweep — never a dead majority *)
  for i = 0 to 59 do
    Hashtbl.replace killed i ();
    Heap.note_dead h
  done;
  Testutil.check_int "swept length" 49 (Heap.length h);
  Testutil.check_bool "tombstones are a minority" true
    (2 * Heap.dead_count h <= Heap.length h);
  (* survivors drain in (prio, insertion) order *)
  let rec drain acc =
    match Heap.pop h with
    | None -> List.rev acc
    | Some (p, v) ->
      if Hashtbl.mem killed v then drain acc else drain ((p, v) :: acc)
  in
  let out = drain [] in
  Testutil.check_int "all survivors" 40 (List.length out);
  let sorted =
    List.sort
      (fun (p1, v1) (p2, v2) ->
        if p1 <> p2 then compare p1 p2 else compare v1 v2)
      out
  in
  Alcotest.(check (list (pair int int))) "order survives compaction"
    sorted out

let prop_compaction_order =
  QCheck.Test.make ~name:"pop order identical with and without sweeps"
    ~count:200
    QCheck.(list (pair (int_bound 50) bool))
    (fun entries ->
      (* same pushes into a sweeping heap and a plain one; dead entries
         are reported to the former and filtered from both at pop *)
      let killed = Hashtbl.create 16 in
      let hs = Heap.create ~dead:(fun (_, id) -> Hashtbl.mem killed id) () in
      let hp = Heap.create () in
      List.iteri
        (fun i (p, _) ->
          Heap.push hs ~prio:p (p, i);
          Heap.push hp ~prio:p (p, i))
        entries;
      List.iteri
        (fun i (_, kill) ->
          if kill then begin
            Hashtbl.replace killed i ();
            Heap.note_dead hs
          end)
        entries;
      let rec drain h acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, (_, id)) ->
          if Hashtbl.mem killed id then drain h acc
          else drain h ((id : int) :: acc)
      in
      drain hs [] = drain hp [])

let suite =
  [
    Alcotest.test_case "min-heap ordering" `Quick test_ordering;
    Alcotest.test_case "stable on equal priorities" `Quick test_stable_ties;
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    Alcotest.test_case "tombstone sweep at half dead" `Quick
      test_compaction_sweeps;
    QCheck_alcotest.to_alcotest prop_compaction_order;
  ]
