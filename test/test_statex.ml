(* Properties of the hot-state-transfer codec (lib/statex): a snapshot
   round-trips through encode/decode structurally intact for arbitrary
   connection states, and any corruption of the wire image — bit flips,
   truncation, trailing garbage — is rejected before anything could be
   installed. *)

module Tcb = Tcpfo_tcp.Tcb
module Snapshot = Tcpfo_statex.Snapshot
module Seq32 = Tcpfo_util.Seq32
module Ipaddr = Tcpfo_packet.Ipaddr
open Testutil

(* -- deterministic random snapshot generator ---------------------------- *)

let states =
  [|
    Tcb.Syn_sent; Tcb.Syn_received; Tcb.Established; Tcb.Fin_wait_1;
    Tcb.Fin_wait_2; Tcb.Close_wait; Tcb.Closing; Tcb.Last_ack;
    Tcb.Time_wait; Tcb.Closed;
  |]

let rand_string st n =
  String.init n (fun _ -> Char.chr (QCheck.Gen.int_bound 255 st))

let u16 st = QCheck.Gen.int_bound 0xFFFF st
let u32 st = (u16 st lsl 16) lor u16 st

(* sequence numbers anywhere on the 32-bit circle, including near the
   wrap point *)
let rand_seq st =
  match QCheck.Gen.int_bound 3 st with
  | 0 -> Seq32.of_int (u16 st)
  | 1 -> Seq32.of_int (0xFFFF_FF00 + QCheck.Gen.int_bound 0xFF st)
  | _ -> Seq32.of_int (u32 st)

let rand_addr st =
  Ipaddr.of_string
    (Printf.sprintf "10.%d.%d.%d"
       (QCheck.Gen.int_bound 255 st)
       (QCheck.Gen.int_bound 255 st)
       (QCheck.Gen.int_bound 255 st))

let rand_snapshot st =
  let iss = rand_seq st in
  let sndbuf = rand_string st (QCheck.Gen.int_bound 300 st) in
  let start = QCheck.Gen.int_bound 1_000_000 st in
  {
    Tcb.sn_state = states.(QCheck.Gen.int_bound (Array.length states - 1) st);
    sn_local = (rand_addr st, QCheck.Gen.int_bound 0xFFFF st);
    sn_remote = (rand_addr st, QCheck.Gen.int_bound 0xFFFF st);
    sn_iss = iss;
    sn_sndbuf_start = start;
    sn_sndbuf_data = sndbuf;
    sn_snd_una = Seq32.add iss start;
    sn_snd_max = Seq32.add iss (start + QCheck.Gen.int_bound 200 st);
    sn_snd_wnd = QCheck.Gen.int_bound 1_000_000 st;
    sn_snd_wl1 = rand_seq st;
    sn_snd_wl2 = rand_seq st;
    sn_peer_mss = 1 + QCheck.Gen.int_bound 0xFFFE st;
    sn_snd_wscale = QCheck.Gen.int_bound 14 st;
    sn_rcv_wscale = QCheck.Gen.int_bound 14 st;
    sn_ts_on = QCheck.Gen.bool st;
    sn_ts_recent = u32 st;
    sn_sack_on = QCheck.Gen.bool st;
    sn_sack_ranges =
      List.init (QCheck.Gen.int_bound 4 st) (fun _ ->
          let lo = rand_seq st in
          (lo, Seq32.add lo (1 + QCheck.Gen.int_bound 5000 st)));
    sn_fin_queued = QCheck.Gen.bool st;
    sn_fin_sent = QCheck.Gen.bool st;
    sn_irs = rand_seq st;
    sn_rcv_nxt = rand_seq st;
    sn_reasm =
      List.init (QCheck.Gen.int_bound 3 st) (fun _ ->
          (rand_seq st, rand_string st (1 + QCheck.Gen.int_bound 50 st)));
    sn_rcv_fin =
      (if QCheck.Gen.bool st then Some (rand_seq st) else None);
    sn_eof_signalled = QCheck.Gen.bool st;
    sn_srtt =
      (if QCheck.Gen.bool st then Some (QCheck.Gen.float_bound_exclusive 1e6 st)
       else None);
    sn_rttvar = QCheck.Gen.float_bound_exclusive 1e6 st;
    (* ns-scale RTO base: spread over the u64 field's useful range *)
    sn_rto_base = u32 st * (1 + QCheck.Gen.int_bound 60 st);
    sn_rto_shift = QCheck.Gen.int_bound 6 st;
    sn_cwnd = 1 + QCheck.Gen.int_bound 1_000_000 st;
    sn_ssthresh = 1 + QCheck.Gen.int_bound 1_000_000 st;
    sn_retained_input =
      List.init (QCheck.Gen.int_bound 5 st) (fun _ ->
          rand_string st (QCheck.Gen.int_bound 60 st));
  }

let rand_conn st =
  {
    Snapshot.tcb = rand_snapshot st;
    role = (if QCheck.Gen.bool st then `Server else `Client);
    delta =
      (match QCheck.Gen.int_bound 2 st with
      | 0 -> 0
      | 1 -> u32 st land 0x7FFF_FFFF
      | _ -> -(u32 st land 0x7FFF_FFFF));
    next_wire_seq = rand_seq st;
    held_segments = QCheck.Gen.int_bound 64 st;
    solo = QCheck.Gen.bool st;
  }

let conn_arb =
  QCheck.make ~print:(fun c -> Printf.sprintf "<conn %d bytes encoded>"
                         (String.length (Snapshot.encode c)))
    rand_conn

(* -- properties --------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"codec round-trip restores structural equality"
    ~count:300 conn_arb (fun conn ->
      match Snapshot.decode (Snapshot.encode conn) with
      | Ok conn' -> conn' = conn
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let prop_bitflip_rejected =
  QCheck.Test.make ~name:"any single byte flip is rejected" ~count:60
    QCheck.(pair conn_arb (int_bound 10_000))
    (fun (conn, pos_seed) ->
      let img = Snapshot.encode conn in
      let pos = pos_seed mod String.length img in
      let b = Bytes.of_string img in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Snapshot.decode (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "flip at byte %d accepted" pos)

let prop_truncation_rejected =
  QCheck.Test.make ~name:"every truncation is rejected" ~count:40 conn_arb
    (fun conn ->
      let img = Snapshot.encode conn in
      let ok = ref true in
      (* check a spread of cut points including all the short prefixes
         that land inside the envelope header *)
      for cut = 0 to min 24 (String.length img - 1) do
        match Snapshot.decode (String.sub img 0 cut) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      let n = String.length img in
      List.iter
        (fun cut ->
          if cut >= 0 && cut < n then
            match Snapshot.decode (String.sub img 0 cut) with
            | Error _ -> ()
            | Ok _ -> ok := false)
        [ n - 1; n - 8; n / 2; (3 * n) / 4 ];
      !ok)

let prop_trailing_garbage_rejected =
  QCheck.Test.make ~name:"trailing garbage is rejected" ~count:40 conn_arb
    (fun conn ->
      match Snapshot.decode (Snapshot.encode conn ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

let test_exhaustive_small_flip () =
  (* deterministic complement to the sampled property: flip EVERY byte
     of one small image *)
  let st = Random.State.make [| 42 |] in
  let conn = rand_conn st in
  let img = Snapshot.encode conn in
  for pos = 0 to String.length img - 1 do
    let b = Bytes.of_string img in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    match Snapshot.decode (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "byte flip at %d accepted" pos
  done;
  check_bool "original still decodes" true
    (Snapshot.decode img = Ok conn)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip; prop_bitflip_rejected; prop_truncation_rejected;
      prop_trailing_garbage_rejected;
    ]
  @ [
      Alcotest.test_case "exhaustive single-byte corruption" `Quick
        test_exhaustive_small_flip;
    ]
