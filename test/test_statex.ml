(* Properties of the hot-state-transfer codec (lib/statex): a snapshot
   round-trips through encode/decode structurally intact for arbitrary
   connection states, and any corruption of the wire image — bit flips,
   truncation, trailing garbage — is rejected before anything could be
   installed. *)

module Tcb = Tcpfo_tcp.Tcb
module Snapshot = Tcpfo_statex.Snapshot
module Seq32 = Tcpfo_util.Seq32
module Ipaddr = Tcpfo_packet.Ipaddr
open Testutil

(* -- deterministic random snapshot generator ---------------------------- *)

let states =
  [|
    Tcb.Syn_sent; Tcb.Syn_received; Tcb.Established; Tcb.Fin_wait_1;
    Tcb.Fin_wait_2; Tcb.Close_wait; Tcb.Closing; Tcb.Last_ack;
    Tcb.Time_wait; Tcb.Closed;
  |]

let rand_string st n =
  String.init n (fun _ -> Char.chr (QCheck.Gen.int_bound 255 st))

let u16 st = QCheck.Gen.int_bound 0xFFFF st
let u32 st = (u16 st lsl 16) lor u16 st

(* sequence numbers anywhere on the 32-bit circle, including near the
   wrap point *)
let rand_seq st =
  match QCheck.Gen.int_bound 3 st with
  | 0 -> Seq32.of_int (u16 st)
  | 1 -> Seq32.of_int (0xFFFF_FF00 + QCheck.Gen.int_bound 0xFF st)
  | _ -> Seq32.of_int (u32 st)

let rand_addr st =
  Ipaddr.of_string
    (Printf.sprintf "10.%d.%d.%d"
       (QCheck.Gen.int_bound 255 st)
       (QCheck.Gen.int_bound 255 st)
       (QCheck.Gen.int_bound 255 st))

let rand_snapshot st =
  let iss = rand_seq st in
  let sndbuf = rand_string st (QCheck.Gen.int_bound 300 st) in
  let start = QCheck.Gen.int_bound 1_000_000 st in
  {
    Tcb.sn_state = states.(QCheck.Gen.int_bound (Array.length states - 1) st);
    sn_local = (rand_addr st, QCheck.Gen.int_bound 0xFFFF st);
    sn_remote = (rand_addr st, QCheck.Gen.int_bound 0xFFFF st);
    sn_iss = iss;
    sn_sndbuf_start = start;
    sn_sndbuf_data = sndbuf;
    sn_snd_una = Seq32.add iss start;
    sn_snd_max = Seq32.add iss (start + QCheck.Gen.int_bound 200 st);
    sn_snd_wnd = QCheck.Gen.int_bound 1_000_000 st;
    sn_snd_wl1 = rand_seq st;
    sn_snd_wl2 = rand_seq st;
    sn_peer_mss = 1 + QCheck.Gen.int_bound 0xFFFE st;
    sn_snd_wscale = QCheck.Gen.int_bound 14 st;
    sn_rcv_wscale = QCheck.Gen.int_bound 14 st;
    sn_ts_on = QCheck.Gen.bool st;
    sn_ts_recent = u32 st;
    sn_sack_on = QCheck.Gen.bool st;
    sn_sack_ranges =
      List.init (QCheck.Gen.int_bound 4 st) (fun _ ->
          let lo = rand_seq st in
          (lo, Seq32.add lo (1 + QCheck.Gen.int_bound 5000 st)));
    sn_fin_queued = QCheck.Gen.bool st;
    sn_fin_sent = QCheck.Gen.bool st;
    sn_irs = rand_seq st;
    sn_rcv_nxt = rand_seq st;
    sn_reasm =
      List.init (QCheck.Gen.int_bound 3 st) (fun _ ->
          (rand_seq st, rand_string st (1 + QCheck.Gen.int_bound 50 st)));
    sn_rcv_fin =
      (if QCheck.Gen.bool st then Some (rand_seq st) else None);
    sn_eof_signalled = QCheck.Gen.bool st;
    sn_srtt =
      (if QCheck.Gen.bool st then Some (QCheck.Gen.float_bound_exclusive 1e6 st)
       else None);
    sn_rttvar = QCheck.Gen.float_bound_exclusive 1e6 st;
    (* ns-scale RTO base: spread over the u64 field's useful range *)
    sn_rto_base = u32 st * (1 + QCheck.Gen.int_bound 60 st);
    sn_rto_shift = QCheck.Gen.int_bound 6 st;
    sn_cwnd = 1 + QCheck.Gen.int_bound 1_000_000 st;
    sn_ssthresh = 1 + QCheck.Gen.int_bound 1_000_000 st;
    sn_retained_input =
      List.init (QCheck.Gen.int_bound 5 st) (fun _ ->
          rand_string st (QCheck.Gen.int_bound 60 st));
    (* half full, half delta: exercises both wire forms *)
    sn_replay_base =
      (if QCheck.Gen.bool st then 0 else 1 + QCheck.Gen.int_bound 1_000_000 st);
  }

let rand_conn st =
  {
    Snapshot.tcb = rand_snapshot st;
    role = (if QCheck.Gen.bool st then `Server else `Client);
    delta =
      (match QCheck.Gen.int_bound 2 st with
      | 0 -> 0
      | 1 -> u32 st land 0x7FFF_FFFF
      | _ -> -(u32 st land 0x7FFF_FFFF));
    next_wire_seq = rand_seq st;
    held_segments = QCheck.Gen.int_bound 64 st;
    solo = QCheck.Gen.bool st;
  }

let conn_arb =
  QCheck.make ~print:(fun c -> Printf.sprintf "<conn %d bytes encoded>"
                         (String.length (Snapshot.encode c)))
    rand_conn

(* -- properties --------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"codec round-trip restores structural equality"
    ~count:300 conn_arb (fun conn ->
      match Snapshot.decode (Snapshot.encode conn) with
      | Ok conn' -> conn' = conn
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s" m)

let prop_bitflip_rejected =
  QCheck.Test.make ~name:"any single byte flip is rejected" ~count:60
    QCheck.(pair conn_arb (int_bound 10_000))
    (fun (conn, pos_seed) ->
      let img = Snapshot.encode conn in
      let pos = pos_seed mod String.length img in
      let b = Bytes.of_string img in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Snapshot.decode (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> QCheck.Test.fail_reportf "flip at byte %d accepted" pos)

let prop_truncation_rejected =
  QCheck.Test.make ~name:"every truncation is rejected" ~count:40 conn_arb
    (fun conn ->
      let img = Snapshot.encode conn in
      let ok = ref true in
      (* check a spread of cut points including all the short prefixes
         that land inside the envelope header *)
      for cut = 0 to min 24 (String.length img - 1) do
        match Snapshot.decode (String.sub img 0 cut) with
        | Error _ -> ()
        | Ok _ -> ok := false
      done;
      let n = String.length img in
      List.iter
        (fun cut ->
          if cut >= 0 && cut < n then
            match Snapshot.decode (String.sub img 0 cut) with
            | Error _ -> ()
            | Ok _ -> ok := false)
        [ n - 1; n - 8; n / 2; (3 * n) / 4 ];
      !ok)

let prop_trailing_garbage_rejected =
  QCheck.Test.make ~name:"trailing garbage is rejected" ~count:40 conn_arb
    (fun conn ->
      match Snapshot.decode (Snapshot.encode conn ^ "\x00") with
      | Error _ -> true
      | Ok _ -> false)

(* -- version negotiation ------------------------------------------------ *)

let with_replay_base conn base =
  { conn with Snapshot.tcb = { conn.Snapshot.tcb with Tcb.sn_replay_base = base } }

let prop_v2_roundtrip =
  QCheck.Test.make ~name:"legacy v2 envelopes still decode" ~count:100
    conn_arb (fun conn ->
      (* only full snapshots fit the v2 layout *)
      let conn = with_replay_base conn 0 in
      match Snapshot.decode (Snapshot.encode_v2 conn) with
      | Ok conn' -> conn' = conn
      | Error m -> QCheck.Test.fail_reportf "v2 decode failed: %s" m)

let prop_v2_corruption_rejected =
  QCheck.Test.make ~name:"v2 flips and truncations are rejected" ~count:40
    QCheck.(pair conn_arb (int_bound 10_000))
    (fun (conn, pos_seed) ->
      let img = Snapshot.encode_v2 (with_replay_base conn 0) in
      let pos = pos_seed mod String.length img in
      let b = Bytes.of_string img in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      (match Snapshot.decode (Bytes.to_string b) with
      | Ok _ -> QCheck.Test.fail_reportf "v2 flip at byte %d accepted" pos
      | Error _ -> ());
      match Snapshot.decode (String.sub img 0 (String.length img - 3)) with
      | Ok _ -> QCheck.Test.fail_reportf "v2 truncation accepted"
      | Error _ -> true)

let test_delta_roundtrip () =
  let st = Random.State.make [| 7 |] in
  let conn = with_replay_base (rand_conn st) 123_456 in
  (match Snapshot.decode (Snapshot.encode conn) with
  | Ok conn' ->
    check_bool "delta round-trips" true (conn' = conn);
    check_int "replay base survives" 123_456 conn'.Snapshot.tcb.Tcb.sn_replay_base
  | Error m -> Alcotest.failf "delta decode failed: %s" m);
  (* a full snapshot of the same connection is at least as large: the
     delta form only ever adds its 8-byte base on top of a body whose
     retained history is what actually shrinks *)
  let full = with_replay_base conn 0 in
  check_bool "forms differ on the wire" true
    (Snapshot.encode conn <> Snapshot.encode full)

let test_encode_v2_rejects_delta () =
  let st = Random.State.make [| 8 |] in
  let conn = with_replay_base (rand_conn st) 1 in
  match Snapshot.encode_v2 conn with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode_v2 accepted a delta snapshot"

let test_unknown_form_tag_rejected () =
  (* a validly sealed v3 body whose form tag is neither Full nor Delta
     must be rejected before any field is interpreted *)
  let img = Tcpfo_statex.Codec.seal "\x07leftover" in
  match Snapshot.decode img with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown form tag accepted"

let test_version_flip_rejected () =
  (* the version byte is not covered by the v2 body digest, so v3+ folds
     the version into the digest: flipping 3 -> 2 (or the reverse) must
     fail the integrity check instead of decoding under the wrong
     layout *)
  let st = Random.State.make [| 9 |] in
  let flip_version img =
    let b = Bytes.of_string img in
    (* envelope: 4-byte magic then big-endian u16 version at offset 4 *)
    Bytes.set b 5 (Char.chr (Char.code (Bytes.get b 5) lxor 0x01));
    Bytes.to_string b
  in
  let conn = with_replay_base (rand_conn st) 0 in
  (match Snapshot.decode (flip_version (Snapshot.encode conn)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v3 image accepted with v2 version byte");
  match Snapshot.decode (flip_version (Snapshot.encode_v2 conn)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v2 image accepted with v3 version byte"

let test_exhaustive_small_flip () =
  (* deterministic complement to the sampled property: flip EVERY byte
     of one small image *)
  let st = Random.State.make [| 42 |] in
  let conn = rand_conn st in
  let img = Snapshot.encode conn in
  for pos = 0 to String.length img - 1 do
    let b = Bytes.of_string img in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    match Snapshot.decode (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "byte flip at %d accepted" pos
  done;
  check_bool "original still decodes" true
    (Snapshot.decode img = Ok conn)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip; prop_bitflip_rejected; prop_truncation_rejected;
      prop_trailing_garbage_rejected; prop_v2_roundtrip;
      prop_v2_corruption_rejected;
    ]
  @ [
      Alcotest.test_case "exhaustive single-byte corruption" `Quick
        test_exhaustive_small_flip;
      Alcotest.test_case "delta snapshot round-trip" `Quick
        test_delta_roundtrip;
      Alcotest.test_case "encode_v2 rejects delta snapshots" `Quick
        test_encode_v2_rejects_delta;
      Alcotest.test_case "unknown form tag rejected" `Quick
        test_unknown_form_tag_rejected;
      Alcotest.test_case "version byte flip rejected" `Quick
        test_version_flip_rejected;
    ]
