(* Shared helpers for the test suites. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Deterministic pseudo-random payload of a given length: byte i of stream
   [tag] is a simple hash, so any corruption or reordering is detected by
   equality on the final string. *)
let pattern ~tag n =
  String.init n (fun i -> Char.chr ((i * 131 + tag * 7 + i / 251) land 0xFF))

(* A simple LAN with a client and one unreplicated server. *)
type simple_lan = {
  world : World.t;
  client : Host.t;
  server : Host.t;
}

let make_simple_lan ?seed ?medium_config ?tcp_config () =
  let world = World.create ?seed () in
  let lan = World.make_lan world ?config:medium_config () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10" ?tcp_config ()
  in
  let server =
    World.add_host world lan ~name:"server" ~addr:"10.0.0.1" ?tcp_config ()
  in
  World.warm_arp [ client; server ];
  { world; client; server }

(* Collects everything a connection receives, and completion events. *)
type sink = {
  buf : Buffer.t;
  mutable eof : bool;
  mutable resets : int;
  mutable established : bool;
}

let make_sink () =
  { buf = Buffer.create 256; eof = false; resets = 0; established = false }

let wire_sink sink (tcb : Tcb.t) =
  Tcb.set_on_established tcb (fun () -> sink.established <- true);
  Tcb.set_on_data tcb (fun s -> Buffer.add_string sink.buf s);
  Tcb.set_on_eof tcb (fun () -> sink.eof <- true);
  Tcb.set_on_reset tcb (fun () -> sink.resets <- sink.resets + 1)

let sink_contents sink = Buffer.contents sink.buf

(* Pump [data] into [tcb] respecting backpressure, then optionally close. *)
let send_all ?(close = false) (tcb : Tcb.t) data =
  let off = ref 0 in
  let rec pump () =
    if !off < String.length data then begin
      let n = Tcb.send tcb (String.sub data !off (String.length data - !off)) in
      off := !off + n;
      if !off < String.length data then Tcb.set_on_drain tcb pump
      else if close then Tcb.close tcb
    end
    else if close then Tcb.close tcb
  in
  pump ()

(* Start an echo-free sink server: accepts one connection, records it. *)
let run_until_idle world = World.run_until_idle world

(* ------------------------------------------------------------------ *)
(* Replicated-server topologies                                       *)

module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Ip_layer = Tcpfo_ip.Ip_layer
module Ipv4_packet = Tcpfo_packet.Ipv4_packet

type repl_lan = {
  rworld : World.t;
  rlan : Tcpfo_net.Medium.t;
  rclient : Host.t;
  primary : Host.t;
  secondary : Host.t;
  repl : Replicated.t;
}

let make_repl_lan ?seed ?medium_config ?client_tcp_config ?primary_tcp_config
    ?secondary_tcp_config ?(config = Failover_config.default) () =
  let world = World.create ?seed () in
  let lan = World.make_lan world ?config:medium_config () in
  let rclient =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ?tcp_config:client_tcp_config ()
  in
  let primary =
    World.add_host world lan ~name:"primary" ~addr:"10.0.0.1"
      ?tcp_config:primary_tcp_config ()
  in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2"
      ?tcp_config:secondary_tcp_config ()
  in
  World.warm_arp [ rclient; primary; secondary ];
  let repl = Replicated.create ~primary ~secondary ~config () in
  { rworld = world; rlan = lan; rclient; primary; secondary; repl }

(* A deterministic request/reply service: accumulate request bytes; once
   [request_size] bytes have arrived, send back [reply_of] applied to the
   whole request, then close if [close_after].  Identical on both
   replicas. *)
let echo_service ?(close_after = false) ~request_size ~reply_of repl ~port
    ~sinks () =
  Replicated.listen repl ~port ~on_accept:(fun ~role tcb ->
      let got = Buffer.create 256 in
      let sink = make_sink () in
      sinks := (role, sink) :: !sinks;
      wire_sink sink tcb;
      Tcb.set_on_data tcb (fun data ->
          Buffer.add_string sink.buf data;
          Buffer.add_string got data;
          if Buffer.length got = request_size then begin
            let reply = reply_of (Buffer.contents got) in
            send_all ~close:close_after tcb reply
          end);
      Tcb.set_on_eof tcb (fun () ->
          sink.eof <- true;
          if not close_after then Tcb.close tcb))

(* Wrap a host's rx hook with a drop filter (composes with bridges). *)
let drop_rx host ~pred =
  let dropped = ref 0 in
  let inner = Ip_layer.rx_hook (Host.ip host) in
  Ip_layer.set_rx_hook (Host.ip host)
    (Some
       (fun pkt ~link_addressed ->
         if pred pkt then begin
           incr dropped;
           Ip_layer.Rx_drop
         end
         else
           match inner with
           | None -> Ip_layer.Rx_pass pkt
           | Some hook -> hook pkt ~link_addressed));
  dropped

(* Wrap a host's tx hook with a tap (observes, optionally drops). *)
let tap_tx host ~f =
  let inner = Ip_layer.tx_hook (Host.ip host) in
  Ip_layer.set_tx_hook (Host.ip host)
    (Some
       (fun pkt ->
         f pkt;
         match inner with
         | None -> Ip_layer.Tx_pass pkt
         | Some hook -> hook pkt))

(* Replicated worlds never go idle (heartbeats are perpetual): run them
   for a bounded amount of simulated time instead. *)
let run_repl ?(for_sec = 30.0) r =
  World.run r.rworld ~for_:(Time.sec for_sec)
