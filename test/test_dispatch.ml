(* Tests for the dispatcher fleet tier: NAT transparency (byte-exact
   request/response through the translated path), flow pinning, the
   per-shard weight state machine (decay on failure, ramp after
   repair), probe-driven health, and refusal when the whole fleet is
   drained. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ipaddr = Tcpfo_packet.Ipaddr
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Dispatch = Tcpfo_dispatch.Dispatch
open Testutil

let port = 7
let reply = pattern ~tag:9 4000
let max_w = Dispatch.default_config.Dispatch.max_weight

type fleet = {
  world : World.t;
  topo : Topo.built;
  disp : Dispatch.t;
  pools : (string * Replicated.t) list;
  client : Host.t;
  service : Ipaddr.t;
}

let make_fleet ?(seed = 11) () =
  let world = World.create ~seed () in
  let gw = "10.0.0.254" in
  let spec =
    [
      Topo.segment "front";
      Topo.segment "back";
      Topo.host ~addr:"10.1.0.10" ~seg:"front" "client";
      Topo.host ~gateway:gw ~addr:"10.0.0.1" ~seg:"back" "s0a";
      Topo.host ~gateway:gw ~addr:"10.0.0.2" ~seg:"back" "s0b";
      Topo.host ~gateway:gw ~addr:"10.0.0.11" ~seg:"back" "s1a";
      Topo.host ~gateway:gw ~addr:"10.0.0.12" ~seg:"back" "s1b";
      Topo.group ~members:[ "s0a"; "s0b" ] "shard0";
      Topo.group ~members:[ "s1a"; "s1b" ] "shard1";
      Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
      Topo.dispatch ~service:"fleet" ~back:gw ~shards:[ "shard0"; "shard1" ]
        "disp";
    ]
  in
  let topo = Topo.build world spec in
  let config = Failover_config.make ~service_ports:[ port ] () in
  let disp, pools = Dispatch.of_topo topo ~name:"disp" ~config () in
  List.iter
    (fun (_, pool) ->
      Replicated.listen pool ~port ~on_accept:(fun ~role:_ tcb ->
          Tcb.set_on_data tcb (fun _ ->
              ignore (Tcb.send tcb reply);
              Tcb.close tcb)))
    pools;
  {
    world;
    topo;
    disp;
    pools;
    client = Topo.host_of topo "client";
    service = Dispatch.service disp;
  }

let connect f =
  let c = Stack.connect (Host.tcp f.client) ~remote:(f.service, port) () in
  let sink = make_sink () in
  wire_sink sink c;
  (* wire_sink installed its own on_established; replace it with one
     that also fires the request *)
  Tcb.set_on_established c (fun () ->
      sink.established <- true;
      ignore (Tcb.send c "get\n"));
  (c, sink)

(* The NAT path end to end: the client speaks only to the fleet address,
   the reply comes back byte-exact, and the flow is pinned to exactly
   one shard. *)
let test_nat_byte_exact_and_pinned () =
  let f = make_fleet () in
  let c, sink = connect f in
  World.run f.world ~for_:(Time.ms 500);
  check_bool "established" true sink.established;
  check_bool "eof" true sink.eof;
  check_int "no resets" 0 sink.resets;
  check_string "reply byte-exact through the NAT" reply (sink_contents sink);
  let client_port = snd (Tcb.local_endpoint c) in
  (match Dispatch.pinned_shard f.disp ~client:(Host.addr f.client, client_port) with
  | Some ("shard0" | "shard1") -> ()
  | Some s -> Alcotest.fail ("pinned to unknown shard " ^ s)
  | None -> Alcotest.fail "flow not pinned");
  let ctr = Dispatch.counters f.disp in
  check_int "one flow routed" 1 ctr.Dispatch.routed;
  check_int "nothing refused" 0 ctr.Dispatch.refused;
  check_int "no isolation drops" 0 ctr.Dispatch.isolation_drops;
  check_bool "probes flowed" true (ctr.Dispatch.probes_sent > 0);
  check_bool "probes answered" true (ctr.Dispatch.probe_replies > 0)

(* Kill the pinned shard's primary mid-connection: the connection must
   survive the §5 takeover through the dispatcher, the victim's weight
   must decay below max while the sibling's never moves, and a repaired
   host must bring the weight back to max/Healthy. *)
let test_weights_decay_and_ramp () =
  let f = make_fleet () in
  let c, sink = connect f in
  World.run f.world ~for_:(Time.ms 2);
  let client_port = snd (Tcb.local_endpoint c) in
  let victim =
    match Dispatch.pinned_shard f.disp ~client:(Host.addr f.client, client_port) with
    | Some s -> s
    | None -> Alcotest.fail "flow not pinned"
  in
  let sibling = if victim = "shard0" then "shard1" else "shard0" in
  let pool = List.assoc victim f.pools in
  Replicated.kill_primary pool;
  World.run f.world ~for_:(Time.ms 100);
  check_bool "victim weight decayed" true (Dispatch.weight f.disp victim < max_w);
  check_int "sibling weight untouched" max_w (Dispatch.weight f.disp sibling);
  check_bool "victim not Healthy" true
    (Dispatch.state f.disp victim <> Dispatch.Healthy);
  check_bool "connection survived the takeover" true sink.eof;
  check_string "stream byte-exact across failover" reply (sink_contents sink);
  check_int "no resets across failover" 0 sink.resets;
  (* repair: fresh host, ARP warmed on both wires, probe responder
     armed, then reintegrate *)
  let back = Topo.segment_of f.topo "back" in
  let h = World.add_host f.world back ~name:"repaired" ~addr:"10.0.0.100" () in
  Host.set_default_via_lan h ~gateway:(Ipaddr.of_string "10.0.0.254");
  World.warm_arp (h :: Topo.group_of f.topo victim);
  Topo.warm_dispatch_arp f.topo "disp" [ h ];
  Dispatch.arm_probe_responder h;
  Replicated.reintegrate pool ~secondary:h;
  World.run f.world ~for_:(Time.ms 200);
  check_int "victim ramped back to max" max_w (Dispatch.weight f.disp victim);
  check_bool "victim Healthy again" true
    (Dispatch.state f.disp victim = Dispatch.Healthy);
  check_bool "weight shifts were counted" true
    ((Dispatch.counters f.disp).Dispatch.shift_transitions > 0)

(* Kill every replica of every shard: probe silence must force both
   weights to 0, and a fresh SYN must be refused (dropped) rather than
   routed into a dead fleet. *)
let test_refused_when_fleet_down () =
  let f = make_fleet () in
  World.run f.world ~for_:(Time.ms 30);
  List.iter
    (fun (_, pool) ->
      Replicated.kill_primary pool;
      Replicated.kill_secondary pool)
    f.pools;
  (* probes every 10 ms, 35 ms timeout: both shards read Down well
     within 100 ms *)
  World.run f.world ~for_:(Time.ms 100);
  check_int "shard0 weight zero" 0 (Dispatch.weight f.disp "shard0");
  check_int "shard1 weight zero" 0 (Dispatch.weight f.disp "shard1");
  check_bool "shard0 Down" true (Dispatch.state f.disp "shard0" = Dispatch.Down);
  let _c, sink = connect f in
  World.run f.world ~for_:(Time.ms 50);
  check_bool "SYN not accepted" false sink.established;
  check_bool "SYN refused" true
    ((Dispatch.counters f.disp).Dispatch.refused > 0)

let suite =
  [
    Alcotest.test_case "NAT byte-exact and flow pinned" `Quick
      test_nat_byte_exact_and_pinned;
    Alcotest.test_case "weights decay on kill and ramp after repair" `Quick
      test_weights_decay_and_ramp;
    Alcotest.test_case "fleet fully down refuses new flows" `Quick
      test_refused_when_fleet_down;
  ]
