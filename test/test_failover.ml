(* Failover behaviour: §5 (primary fails), §6 (secondary fails). *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Primary_bridge = Tcpfo_core.Primary_bridge
module Secondary_bridge = Tcpfo_core.Secondary_bridge
module Ipaddr = Tcpfo_packet.Ipaddr
open Testutil

let events r =
  let log = ref [] in
  Replicated.set_on_event r.repl (fun e -> log := e :: !log);
  log

let test_no_false_failover () =
  let r = make_repl_lan () in
  let log = events r in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "pong") r.repl ~port:80
    ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  World.run r.rworld ~for_:(Time.sec 5.0);
  check_string "reply" "pong" (sink_contents csink);
  check_int "no failover events" 0 (List.length !log);
  check_bool "status normal" true (Replicated.status r.repl = `Normal)

(* Download [reply] through the bridge and kill [victim] at [kill_at].
   Returns (received-by-client, repl status, world). *)
let download_with_kill ?seed ?(reply_size = 400_000) ~victim ~kill_at () =
  let reply = pattern ~tag:31 reply_size in
  let r = make_repl_lan ?seed () in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  let eof_at = ref None in
  Tcb.set_on_eof c (fun () ->
      csink.eof <- true;
      eof_at := Some (World.now r.rworld));
  Tcb.set_on_established c (fun () ->
      csink.established <- true;
      ignore (Tcb.send c "get"));
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:kill_at (fun () ->
         match victim with
         | `Primary -> Replicated.kill_primary r.repl
         | `Secondary -> Replicated.kill_secondary r.repl));
  World.run r.rworld ~for_:(Time.sec 120.0);
  (reply, csink, r, eof_at)

let test_primary_fails_mid_download () =
  let expected, csink, r, _eof_at =
    download_with_kill ~victim:`Primary ~kill_at:(Time.ms 50) ()
  in
  check_int "client byte count" (String.length expected)
    (String.length (sink_contents csink));
  check_string "client stream byte-exact across failover" expected
    (sink_contents csink);
  check_bool "client saw eof" true csink.eof;
  check_int "client never reset" 0 csink.resets;
  check_bool "takeover happened" true
    (Secondary_bridge.taken_over (Replicated.secondary_bridge r.repl))

let test_secondary_fails_mid_download () =
  let expected, csink, r, _eof_at =
    download_with_kill ~victim:`Secondary ~kill_at:(Time.ms 50) ()
  in
  check_string "client stream byte-exact" expected (sink_contents csink);
  check_bool "eof" true csink.eof;
  check_int "no reset" 0 csink.resets;
  check_bool "primary degraded (6)" true
    (Primary_bridge.degraded (Replicated.primary_bridge r.repl))

let test_primary_fails_mid_upload () =
  let data = pattern ~tag:32 400_000 in
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:(String.length data) ~reply_of:(fun _ -> "ok")
    ~close_after:true r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c data);
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 60) (fun () ->
         Replicated.kill_primary r.repl));
  World.run r.rworld ~for_:(Time.sec 120.0);
  check_string "completion ack from survivor" "ok" (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  (* requirement 2 (§2): the survivor must hold every byte ever
     acknowledged to the client — it received the whole upload *)
  (match List.assoc_opt `Secondary !sinks with
  | Some s -> check_string "secondary holds full upload" data (sink_contents s)
  | None -> Alcotest.fail "secondary never accepted")

let test_secondary_fails_mid_upload () =
  let data = pattern ~tag:33 400_000 in
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:(String.length data) ~reply_of:(fun _ -> "ok")
    ~close_after:true r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c data);
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 60) (fun () ->
         Replicated.kill_secondary r.repl));
  World.run r.rworld ~for_:(Time.sec 120.0);
  check_string "completion ack" "ok" (sink_contents csink);
  (match List.assoc_opt `Primary !sinks with
  | Some s -> check_string "primary holds full upload" data (sink_contents s)
  | None -> Alcotest.fail "primary never accepted")

let test_failover_on_idle_connection () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun req -> "got:" ^ req) r.repl
    ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  World.run r.rworld ~for_:(Time.ms 20) (* connection established, idle *);
  check_bool "established" true csink.established;
  Replicated.kill_primary r.repl;
  World.run r.rworld ~for_:(Time.sec 2.0) (* failover completes *);
  ignore (Tcb.send c "ping");
  World.run r.rworld ~for_:(Time.sec 10.0);
  check_string "post-failover request served by survivor" "got:ping"
    (sink_contents csink);
  check_int "no reset" 0 csink.resets

let test_failover_during_handshake () =
  (* kill the primary immediately after the client's SYN is sent: the
     client's SYN retransmission must be answered by the secondary after
     takeover *)
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "late-hello") r.repl
    ~port:80 ~sinks ();
  Replicated.kill_primary r.repl;
  (* small head start so the kill is strictly before the SYN *)
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () ->
      csink.established <- true;
      ignore (Tcb.send c "ping"));
  World.run r.rworld ~for_:(Time.sec 30.0);
  check_bool "eventually established" true csink.established;
  check_string "served by secondary" "late-hello" (sink_contents csink)

let test_new_connections_after_takeover () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "fresh") r.repl ~port:80
    ~sinks ();
  Replicated.kill_primary r.repl;
  World.run r.rworld ~for_:(Time.sec 2.0);
  check_bool "taken over" true
    (Secondary_bridge.taken_over (Replicated.secondary_bridge r.repl));
  (* brand-new connection to the service address: served natively by the
     secondary *)
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  World.run r.rworld ~for_:(Time.sec 5.0);
  check_string "served" "fresh" (sink_contents csink)

let test_new_connections_after_secondary_death () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "solo") r.repl ~port:80
    ~sinks ();
  Replicated.kill_secondary r.repl;
  World.run r.rworld ~for_:(Time.sec 2.0);
  check_bool "degraded" true
    (Primary_bridge.degraded (Replicated.primary_bridge r.repl));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  World.run r.rworld ~for_:(Time.sec 5.0);
  check_string "served as plain tcp" "solo" (sink_contents csink)

let test_failover_latency_bounded () =
  (* the client-visible stall is detector timeout + takeover processing +
     a couple of retransmission timeouts, not tens of seconds *)
  let _, csink, _r, eof_at =
    download_with_kill ~victim:`Primary ~kill_at:(Time.ms 40)
      ~reply_size:600_000 ()
  in
  check_bool "complete" true csink.eof;
  (* 600 KB at ~8 MB/s is ~75 ms; allow detector + takeover + RTO recovery
     but the whole transfer must finish well under 10 s *)
  (match !eof_at with
  | Some t -> check_bool "bounded stall" true (t < Time.sec 10.0)
  | None -> Alcotest.fail "no eof")

let test_concurrent_connections_all_survive () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  let reply_of req = "R" ^ req ^ String.make 40_000 'w' in
  echo_service ~request_size:6 ~reply_of ~close_after:true r.repl ~port:80
    ~sinks ();
  let conns =
    List.init 4 (fun i ->
        let c =
          Stack.connect (Host.tcp r.rclient)
            ~remote:(Replicated.service_addr r.repl, 80)
            ()
        in
        let sink = make_sink () in
        wire_sink sink c;
        Tcb.set_on_established c (fun () ->
            ignore (Tcb.send c (Printf.sprintf "req-%02d" i)));
        (i, sink))
  in
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 30) (fun () ->
         Replicated.kill_primary r.repl));
  World.run r.rworld ~for_:(Time.sec 120.0);
  List.iter
    (fun (i, sink) ->
      check_string
        (Printf.sprintf "conn %d stream intact" i)
        (reply_of (Printf.sprintf "req-%02d" i))
        (sink_contents sink);
      check_int "no reset" 0 sink.resets)
    conns

let suite =
  [
    Alcotest.test_case "no false failover" `Quick test_no_false_failover;
    Alcotest.test_case "primary fails mid-download (5)" `Quick
      test_primary_fails_mid_download;
    Alcotest.test_case "secondary fails mid-download (6)" `Quick
      test_secondary_fails_mid_download;
    Alcotest.test_case "primary fails mid-upload (2 req.2)" `Quick
      test_primary_fails_mid_upload;
    Alcotest.test_case "secondary fails mid-upload" `Quick
      test_secondary_fails_mid_upload;
    Alcotest.test_case "failover on idle connection" `Quick
      test_failover_on_idle_connection;
    Alcotest.test_case "failover during handshake" `Quick
      test_failover_during_handshake;
    Alcotest.test_case "new connections after takeover" `Quick
      test_new_connections_after_takeover;
    Alcotest.test_case "new connections after secondary death" `Quick
      test_new_connections_after_secondary_death;
    Alcotest.test_case "failover latency bounded" `Quick
      test_failover_latency_bounded;
    Alcotest.test_case "concurrent connections all survive failover"
      `Quick test_concurrent_connections_all_survive;
  ]

let test_failover_with_wire_roundtrip () =
  (* every segment of the whole exchange — including the bridge's merged
     and diverted ones — is serialized to RFC octets and re-parsed at
     transmit time; any malformed emission raises *)
  let r = make_repl_lan () in
  List.iter
    (fun h -> Tcpfo_ip.Ip_layer.set_wire_roundtrip (Host.ip h) true)
    [ r.rclient; r.primary; r.secondary ];
  let reply = pattern ~tag:40 150_000 in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 25) (fun () ->
         Replicated.kill_primary r.repl));
  World.run r.rworld ~for_:(Time.sec 60.0);
  check_string "byte-exact through real wire encoding" reply
    (sink_contents csink);
  check_int "no reset" 0 csink.resets

let suite =
  suite
  @ [
      Alcotest.test_case "failover under wire-codec roundtrip" `Quick
        test_failover_with_wire_roundtrip;
    ]

let test_reintegration () =
  (* the old secondary dies mid-transfer; a fresh host joins; old (solo)
     connections keep working; new connections are fully replicated and
     survive a subsequent PRIMARY failure *)
  let world = World.create () in
  let lan_medium = World.make_lan world () in
  let client =
    World.add_host world lan_medium ~name:"client" ~addr:"10.0.0.10" ()
  in
  let primary =
    World.add_host world lan_medium ~name:"primary" ~addr:"10.0.0.1" ()
  in
  let secondary =
    World.add_host world lan_medium ~name:"secondary" ~addr:"10.0.0.2" ()
  in
  World.warm_arp [ client; primary; secondary ];
  let repl =
    Replicated.create ~primary ~secondary
      ~config:Tcpfo_core.Failover_config.default ()
  in
  let sinks = ref [] in
  Replicated.listen repl ~port:80 ~on_accept:(fun ~role tcb ->
      let sink = make_sink () in
      sinks := (role, sink) :: !sinks;
      wire_sink sink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string sink.buf d;
          ignore (Tcb.send tcb ("R:" ^ d))));
  (* connection #1, then the secondary dies *)
  let c1sink = make_sink () in
  let c1 =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  wire_sink c1sink c1;
  Tcb.set_on_established c1 (fun () -> ignore (Tcb.send c1 "one"));
  World.run world ~for_:(Time.ms 50);
  Replicated.kill_secondary repl;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "secondary failure handled" true
    (Replicated.status repl = `Secondary_failed);
  (* the pre-existing connection keeps working in solo mode *)
  ignore (Tcb.send c1 "two");
  World.run world ~for_:(Time.sec 1.0);
  check_string "solo conn served" "R:oneR:two" (sink_contents c1sink);
  (* reintegrate a brand-new host *)
  let fresh =
    World.add_host world lan_medium ~name:"secondary2" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ client; primary; fresh ];
  Replicated.reintegrate repl ~secondary:fresh;
  check_bool "back to normal" true (Replicated.status repl = `Normal);
  World.run world ~for_:(Time.ms 200);
  (* the old solo connection is undisturbed by the newcomer *)
  ignore (Tcb.send c1 "three");
  World.run world ~for_:(Time.sec 1.0);
  check_string "solo conn still served" "R:oneR:twoR:three"
    (sink_contents c1sink);
  check_int "solo conn never reset" 0 c1sink.resets;
  (* a NEW connection is replicated on the fresh secondary... *)
  let c2sink = make_sink () in
  let c2 =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  wire_sink c2sink c2;
  Tcb.set_on_established c2 (fun () -> ignore (Tcb.send c2 "fresh"));
  World.run world ~for_:(Time.sec 1.0);
  check_string "new conn served" "R:fresh" (sink_contents c2sink);
  check_bool "fresh secondary accepted the new conn" true
    (List.exists
       (fun (role, s) -> role = `Secondary && sink_contents s = "fresh")
       !sinks);
  (* ...and survives a PRIMARY failure: the full §5 failover now runs on
     the reintegrated host *)
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.0);
  ignore (Tcb.send c2 "after");
  World.run world ~for_:(Time.sec 5.0);
  check_string "new conn survives primary failure" "R:freshR:after"
    (sink_contents c2sink);
  check_int "never reset" 0 c2sink.resets

let test_reintegration_after_primary_death () =
  (* role-agnostic reintegration: the PRIMARY dies, the secondary takes
     over (§5), then a fresh host joins the PROMOTED survivor.  The
     pre-failure connection is hot-transferred onto the newcomer and
     must survive a SECOND failover byte-for-byte. *)
  let world = World.create () in
  let lan_medium = World.make_lan world () in
  let client =
    World.add_host world lan_medium ~name:"client" ~addr:"10.0.0.10" ()
  in
  let primary =
    World.add_host world lan_medium ~name:"primary" ~addr:"10.0.0.1" ()
  in
  let secondary =
    World.add_host world lan_medium ~name:"secondary" ~addr:"10.0.0.2" ()
  in
  World.warm_arp [ client; primary; secondary ];
  let repl =
    Replicated.create ~primary ~secondary
      ~config:Tcpfo_core.Failover_config.default ()
  in
  Replicated.listen repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d))));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "one"));
  World.run world ~for_:(Time.ms 50);
  (* failure #1: the primary dies; the secondary takes the service over *)
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "primary failure handled" true
    (Replicated.status repl = `Primary_failed);
  ignore (Tcb.send c "two");
  World.run world ~for_:(Time.sec 1.0);
  check_string "conn survives the takeover" "R:oneR:two"
    (sink_contents csink);
  (* repair: a fresh host joins the promoted survivor *)
  let fresh =
    World.add_host world lan_medium ~name:"repaired" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ client; secondary; fresh ];
  Replicated.reintegrate repl ~secondary:fresh;
  check_bool "back to normal after primary-side repair" true
    (Replicated.status repl = `Normal);
  World.run world ~for_:(Time.sec 1.0);
  check_int "hot transfers settled" 0 (Replicated.pending_transfers repl);
  let stats = Replicated.transfer_stats repl in
  check_bool "the live conn was re-replicated" true
    (stats.Tcpfo_statex.Transfer.accepts >= 1);
  ignore (Tcb.send c "three");
  World.run world ~for_:(Time.sec 1.0);
  check_string "conn still served after reintegration" "R:oneR:twoR:three"
    (sink_contents csink);
  (* failure #2: the surviving original dies too; the repaired host must
     carry the SAME connection onward in the original sequence space *)
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "second failure handled" true
    (Replicated.status repl = `Primary_failed);
  ignore (Tcb.send c "four");
  World.run world ~for_:(Time.sec 2.0);
  check_string "conn survives the SECOND failover byte-exactly"
    "R:oneR:twoR:threeR:four" (sink_contents csink);
  check_int "never reset across both failovers" 0 csink.resets

let suite =
  suite
  @ [
      Alcotest.test_case "reintegration of a fresh secondary" `Quick
        test_reintegration;
      Alcotest.test_case "reintegration after a primary death" `Quick
        test_reintegration_after_primary_death;
    ]
