(* The observability subsystem: registry semantics, scoped naming, the
   event bus, snapshot determinism and the percentile edge cases the
   histogram summaries rely on. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry
module Stats = Tcpfo_util.Stats
open Testutil

(* ---------------- registry semantics ---------------- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "a.b" in
  Registry.Counter.incr c;
  Registry.Counter.add c 10;
  check_int "value" 11 (Registry.Counter.value c);
  check_int "by name" 11 (Registry.counter_value r "a.b");
  check_int "absent counter reads zero" 0 (Registry.counter_value r "nope")

let test_create_or_get_shares_instrument () =
  let r = Registry.create () in
  let c1 = Registry.counter r "shared" in
  let c2 = Registry.counter r "shared" in
  Registry.Counter.incr c1;
  Registry.Counter.incr c2;
  check_bool "same instrument" true (c1 == c2);
  check_int "aggregated" 2 (Registry.counter_value r "shared")

let test_kind_mismatch_raises () =
  let r = Registry.create () in
  ignore (Registry.counter r "x");
  check_bool "gauge over counter raises" true
    (try
       ignore (Registry.gauge r "x");
       false
     with Invalid_argument _ -> true);
  check_bool "histogram over counter raises" true
    (try
       ignore (Registry.histogram r "x");
       false
     with Invalid_argument _ -> true)

let test_gauge_and_histogram () =
  let r = Registry.create () in
  let g = Registry.gauge r "g" in
  Registry.Gauge.set g 5;
  Registry.Gauge.add g (-2);
  check_int "gauge" 3 (Registry.gauge_value r "g");
  let h = Registry.histogram r "h" in
  check_bool "empty histogram has no summary" true
    (Registry.histogram_summary r "h" = None);
  List.iter (Registry.Histogram.observe h) [ 3.0; 1.0; 2.0 ];
  check_int "histogram count" 3 (Registry.Histogram.count h);
  match Registry.histogram_summary r "h" with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
    check_int "count" 3 s.Stats.count;
    Alcotest.(check (float 1e-9)) "median" 2.0 s.Stats.median;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
    Alcotest.(check (float 1e-9)) "max" 3.0 s.Stats.max

let test_names_sorted () =
  let r = Registry.create () in
  ignore (Registry.counter r "z");
  ignore (Registry.gauge r "a");
  ignore (Registry.counter r "m");
  Alcotest.(check (list string)) "sorted" [ "a"; "m"; "z" ] (Registry.names r)

(* ---------------- scoped naming ---------------- *)

let test_scope_composition () =
  let obs = Obs.create () in
  let host = Obs.scope (Obs.scope obs "host") "a" in
  Alcotest.(check string) "nested scope" "host.a.tcp.rst"
    (Obs.name (Obs.scope host "tcp") "rst");
  Alcotest.(check string) "root clears the prefix" "bridge.primary.emitted"
    (Obs.name (Obs.scope (Obs.root host) "bridge.primary") "emitted");
  (* scoped handles share one registry *)
  Registry.Counter.incr (Obs.counter (Obs.scope host "tcp") "rst");
  check_int "visible from the root" 1
    (Registry.counter_value (Obs.metrics obs) "host.a.tcp.rst")

let test_silent_is_private () =
  let a = Obs.silent () in
  let b = Obs.silent () in
  Registry.Counter.incr (Obs.counter a "c");
  check_int "other silent handle unaffected" 0
    (Registry.counter_value (Obs.metrics b) "c")

(* ---------------- event bus ---------------- *)

let test_bus_subscribe_and_guard () =
  let obs = Obs.create () in
  check_bool "inactive without subscribers" false (Obs.tracing obs);
  let seen = ref [] in
  let sub =
    Event.Bus.subscribe (Obs.bus obs) (fun ~at ev -> seen := (at, ev) :: !seen)
  in
  check_bool "active with a subscriber" true (Obs.tracing obs);
  Obs.emit obs ~at:(Time.us 7)
    (Event.Failover { host = "p"; phase = Event.Degraded });
  check_int "delivered" 1 (List.length !seen);
  (match !seen with
  | [ (at, Event.Failover { host = "p"; phase = Event.Degraded }) ] ->
    check_int "timestamped" (Time.us 7) at
  | _ -> Alcotest.fail "unexpected event");
  Event.Bus.unsubscribe (Obs.bus obs) sub;
  check_bool "inactive again" false (Obs.tracing obs);
  Obs.emit obs ~at:(Time.us 9)
    (Event.Arp_takeover { host = "s"; ip = Tcpfo_packet.Ipaddr.of_int 1 });
  check_int "not delivered after unsubscribe" 1 (List.length !seen)

let test_is_segment_classifier () =
  let seg = Tcpfo_packet.Tcp_segment.make ~src_port:1 ~dst_port:2
      ~seq:(Tcpfo_util.Seq32.of_int 0) () in
  let ip = Tcpfo_packet.Ipaddr.of_int 3 in
  check_bool "tx is segment" true
    (Event.is_segment (Event.Segment_tx { host = "h"; dst = ip; seg }));
  check_bool "rx is segment" true
    (Event.is_segment (Event.Segment_rx { host = "h"; src = ip; seg }));
  check_bool "divert is control-plane" false
    (Event.is_segment (Event.Divert { host = "h"; orig_dst = ip; seg }))

(* ---------------- snapshot determinism ---------------- *)

(* A short fault-free transfer populates medium/nic/ip/tcp instruments;
   the JSON snapshot must be byte-identical across same-seed runs. *)
let snapshot ~seed =
  let lan = make_simple_lan ~seed () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.set_on_data tcb (fun _ ->
          send_all ~close:true tcb (String.make 20_000 'r')));
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let sink = make_sink () in
  wire_sink sink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  World.run lan.world ~for_:(Time.sec 5.0);
  check_int "transfer complete" 20_000 (Buffer.length sink.buf);
  Registry.to_json (World.metrics lan.world)

let test_snapshot_deterministic () =
  let a = snapshot ~seed:42 in
  let b = snapshot ~seed:42 in
  Alcotest.(check string) "same seed, byte-identical JSON" a b;
  check_bool "instruments populated" true
    (String.length a > 2 && a <> "{}")

(* ---------------- percentile edge cases ---------------- *)

let test_percentile_edges () =
  Alcotest.(check (float 1e-9)) "single sample p0" 7.0
    (Stats.percentile 0.0 [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "single sample p50" 7.0
    (Stats.percentile 50.0 [ 7.0 ]);
  Alcotest.(check (float 1e-9)) "single sample p100" 7.0
    (Stats.percentile 100.0 [ 7.0 ]);
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0
    (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" 5.0
    (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p50 is the median" 3.0
    (Stats.percentile 50.0 xs)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "create-or-get shares the instrument" `Quick
      test_create_or_get_shares_instrument;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch_raises;
    Alcotest.test_case "gauge and histogram" `Quick test_gauge_and_histogram;
    Alcotest.test_case "names are sorted" `Quick test_names_sorted;
    Alcotest.test_case "scope composition" `Quick test_scope_composition;
    Alcotest.test_case "silent handles are private" `Quick
      test_silent_is_private;
    Alcotest.test_case "bus subscribe/emit/unsubscribe" `Quick
      test_bus_subscribe_and_guard;
    Alcotest.test_case "segment classifier" `Quick test_is_segment_classifier;
    Alcotest.test_case "snapshot determinism" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
  ]
