(* Tests for the N-replica pool: cascading failover through successive
   primary deaths, standby liveness, rejoin ordering, and pool
   construction errors. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
open Testutil

let port = 5000

(* [n]-replica pool behind one client, built through Topo; events are
   recorded in arrival order. *)
let make_pool ?(n = 3) ?(seed = 11) () =
  let world = World.create ~seed () in
  let names =
    List.init n (fun i ->
        match i with
        | 0 -> "primary"
        | 1 -> "secondary"
        | k -> Printf.sprintf "standby%d" (k - 1))
  in
  let spec =
    (Topo.segment "lan"
    :: Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client"
    :: List.mapi
         (fun i nm ->
           Topo.host ~addr:(Printf.sprintf "10.0.0.%d" (i + 1)) ~seg:"lan" nm)
         names)
    @ [ Topo.group ~members:names "pool" ]
  in
  let topo = Topo.build world spec in
  let repl =
    Replicated.create_pool
      ~replicas:(Topo.group_of topo "pool")
      ~config:Failover_config.default ()
  in
  let events = ref [] in
  Replicated.set_on_event repl (fun e -> events := e :: !events);
  (world, topo, repl, events)

let promoted events =
  List.filter_map
    (function Replicated.Promoted n -> Some n | _ -> None)
    (List.rev !events)

let standby_names repl = List.map Host.name (Replicated.standbys repl)

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

(* One connection, opened before any failure, must survive TWO cascading
   primary deaths byte-exactly: each death promotes the next standby, so
   the client always sits behind a full replica pair. *)
let test_cascading_double_failover () =
  let world, topo, repl, events = make_pool ~n:4 () in
  Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d)));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let client = Topo.host_of topo "client" in
  let sink = make_sink () in
  let c =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, port)
      ()
  in
  wire_sink sink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "req"));
  World.run world ~for_:(Time.ms 100);
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 3.0);
  ignore (Tcb.send c "mid1");
  World.run world ~for_:(Time.sec 1.0);
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 3.0);
  ignore (Tcb.send c "mid2");
  World.run world ~for_:(Time.sec 1.0);
  Tcb.close c;
  World.run world ~for_:(Time.sec 2.0);
  check_string "stream byte-exact through both failovers" "R:reqR:mid1R:mid2"
    (sink_contents sink);
  check_int "no resets" 0 sink.resets;
  check_bool "pair whole again" true (Replicated.status repl = `Normal);
  check_bool "standbys drained" true (Replicated.standbys repl = []);
  check_bool "promotions in pool order" true
    (promoted events = [ "standby1"; "standby2" ]);
  check_int "no transfers stranded" 0 (Replicated.pending_transfers repl);
  check_int "no transfer failures" 0 (Replicated.transfer_failures repl)

(* A standby dying must be noticed by its liveness watcher and dropped
   from the pool without disturbing the active pair. *)
let test_standby_loss_detected () =
  let world, _topo, repl, events = make_pool ~n:3 () in
  World.run world ~for_:(Time.ms 200);
  (match Replicated.standbys repl with
  | [ s ] -> Host.kill s
  | l -> Alcotest.failf "expected one standby, got %d" (List.length l));
  World.run world ~for_:(Time.sec 3.0);
  check_bool "standby dropped" true (Replicated.standbys repl = []);
  check_bool "loss event emitted" true
    (List.exists
       (function Replicated.Standby_lost "standby1" -> true | _ -> false)
       !events);
  check_bool "active pair untouched" true (Replicated.status repl = `Normal)

(* rejoin queues repaired hosts at the BACK of the pool, and rejects dead
   or already-pooled hosts. *)
let test_rejoin_ordering_and_errors () =
  let world, topo, repl, _events = make_pool ~n:3 () in
  let lan = Topo.segment_of topo "lan" in
  World.run world ~for_:(Time.ms 100);
  let fresh = World.add_host world lan ~name:"fresh" ~addr:"10.0.0.9" () in
  World.warm_arp (fresh :: Topo.hosts topo);
  Replicated.rejoin repl fresh;
  check_bool "rejoined at the back" true
    (standby_names repl = [ "standby1"; "fresh" ]);
  expect_invalid "double rejoin" (fun () -> Replicated.rejoin repl fresh);
  let corpse = World.add_host world lan ~name:"corpse" ~addr:"10.0.0.8" () in
  Host.kill corpse;
  expect_invalid "dead host rejoin" (fun () -> Replicated.rejoin repl corpse)

(* With no standby left, rejoin into a degraded pair pairs immediately
   with the survivor (the reintegrate path). *)
let test_rejoin_into_degraded_pair () =
  let world, topo, repl, events = make_pool ~n:2 () in
  World.run world ~for_:(Time.ms 100);
  Replicated.kill_secondary repl;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "pair degraded" true (Replicated.status repl = `Secondary_failed);
  let lan = Topo.segment_of topo "lan" in
  let fresh = World.add_host world lan ~name:"fresh" ~addr:"10.0.0.9" () in
  World.warm_arp (fresh :: Topo.hosts topo);
  Replicated.rejoin repl fresh;
  World.run world ~for_:(Time.sec 1.0);
  check_bool "pair repaired immediately" true
    (Replicated.status repl = `Normal);
  check_bool "no residual standby" true (Replicated.standbys repl = []);
  check_bool "rejoin event emitted" true
    (List.exists
       (function Replicated.Rejoined "fresh" -> true | _ -> false)
       !events)

let test_create_pool_rejects () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  expect_invalid "single replica" (fun () ->
      Replicated.create_pool ~replicas:[ a ] ~config:Failover_config.default
        ());
  expect_invalid "duplicate replica" (fun () ->
      Replicated.create_pool ~replicas:[ a; b; a ]
        ~config:Failover_config.default ());
  Host.kill b;
  expect_invalid "dead replica" (fun () ->
      Replicated.create_pool ~replicas:[ a; b ]
        ~config:Failover_config.default ())

let suite =
  [
    Alcotest.test_case "cascading double failover is byte-exact" `Quick
      test_cascading_double_failover;
    Alcotest.test_case "standby loss detected and dropped" `Quick
      test_standby_loss_detected;
    Alcotest.test_case "rejoin ordering and errors" `Quick
      test_rejoin_ordering_and_errors;
    Alcotest.test_case "rejoin into degraded pair" `Quick
      test_rejoin_into_degraded_pair;
    Alcotest.test_case "create_pool rejects bad pools" `Quick
      test_create_pool_rejects;
  ]
