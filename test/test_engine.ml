module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time

let test_fires_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(Time.us 30) (fun () -> log := 30 :: !log));
  ignore (Engine.schedule e ~delay:(Time.us 10) (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~delay:(Time.us 20) (fun () -> log := 20 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:(Time.us 7) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule e ~delay:(Time.ms 5) (fun () -> seen := Engine.now e));
  Engine.run e;
  Testutil.check_int "now at fire" (Time.ms 5) !seen

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:(Time.us 1) (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Testutil.check_bool "cancelled" false !fired;
  Testutil.check_int "pending" 0 (Engine.pending e)

let test_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:(Time.us 10) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~delay:(Time.us 5) (fun () ->
                log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Testutil.check_int "time" (Time.us 15) (Engine.now e)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:(Time.us 10) (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:(Time.us 100) (fun () -> incr fired));
  Engine.run e ~until:(Time.us 50);
  Testutil.check_int "only first" 1 !fired;
  Testutil.check_int "one pending" 1 (Engine.pending e);
  Engine.run e;
  Testutil.check_int "both" 2 !fired

let test_run_until_idle_advances_clock () =
  let e = Engine.create () in
  Engine.run e ~until:(Time.ms 3);
  Testutil.check_int "clock at until" (Time.ms 3) (Engine.now e)

let test_guarded_clock () =
  let e = Engine.create () in
  let alive = ref true in
  let clock = Tcpfo_sim.Clock.guarded e ~alive:(fun () -> !alive) in
  let fired = ref [] in
  ignore (clock.schedule (Time.us 1) (fun () -> fired := 1 :: !fired));
  ignore (clock.schedule (Time.us 10) (fun () -> fired := 2 :: !fired));
  ignore (Engine.schedule e ~delay:(Time.us 5) (fun () -> alive := false));
  Engine.run e;
  Alcotest.(check (list int)) "only pre-death" [ 1 ] (List.rev !fired)

(* ---------------- wheel backend vs heap reference ------------------ *)

(* Run the same deterministic scenario on both backends and demand
   identical firing logs, clocks, and counters.  [scenario] receives the
   engine and a [record : int -> unit] sink. *)
let both_backends name scenario =
  let run backend =
    let e = Engine.create ~backend () in
    let log = ref [] in
    scenario e (fun tag -> log := (Engine.now e, tag) :: !log);
    Engine.run e;
    (List.rev !log, Engine.now e, Engine.processed e, Engine.pending e)
  in
  let lh, nh, ph, qh = run Engine.Heap in
  let lw, nw, pw, qw = run Engine.Wheel in
  Alcotest.(check (list (pair int int))) (name ^ ": log") lh lw;
  Testutil.check_int (name ^ ": clock") nh nw;
  Testutil.check_int (name ^ ": processed") ph pw;
  Testutil.check_int (name ^ ": pending") qh qw

(* The classification bug class this guards: an event scheduled while
   far in the future reaches the open slot via cascades, while a second
   event for the same instant is scheduled directly once the wheel is
   close — equal times must still fire in scheduling order. *)
let test_wheel_equal_time_across_paths () =
  both_backends "cross-path tie" (fun e record ->
      let at = Time.ms 5 in
      ignore (Engine.schedule_at e ~at (fun () -> record 1));
      ignore
        (Engine.schedule_at e ~at:(Time.ms 4) (fun () ->
             ignore (Engine.schedule_at e ~at (fun () -> record 2))));
      ignore (Engine.schedule_at e ~at:(Time.us 1) (fun () -> record 0)))

let test_wheel_spans () =
  both_backends "all levels + overflow" (fun e record ->
      (* one event per wheel level plus one beyond the ~73 min horizon *)
      List.iteri
        (fun i d -> ignore (Engine.schedule e ~delay:d (fun () -> record i)))
        [
          Time.ns 100; (* open slot *)
          Time.us 50; (* level 0 *)
          Time.ms 3; (* level 1 *)
          Time.ms 900; (* level 2 *)
          Time.sec 120.; (* level 3 *)
          Time.sec 7200.; (* overflow heap *)
        ])

let test_wheel_idle_gap () =
  both_backends "idle gap then burst" (fun e record ->
      ignore (Engine.schedule e ~delay:(Time.us 2) (fun () -> record 0));
      ignore
        (Engine.schedule e ~delay:(Time.sec 60.) (fun () ->
             record 1;
             for i = 2 to 6 do
               ignore
                 (Engine.schedule e ~delay:(Time.us i) (fun () -> record i))
             done)))

(* Random schedule/cancel/run-until programs, interpreted on both
   backends; handlers re-schedule children and cancel earlier ids, so
   insertions happen at many wheel positions.  Delays mix every level
   of the hierarchy including the overflow horizon. *)
let prop_wheel_matches_heap =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          ( 6,
            map2
              (fun scale x -> `Schedule (max 1 (x * scale)))
              (oneofl [ 1; 700; 40_000; 9_000_000; 2_000_000_000;
                        300_000_000_000 ])
              (int_range 1 900) );
          (2, map (fun i -> `Cancel i) (int_range 0 200));
          (1, map (fun d -> `Run_for (max 1 d)) (int_range 1 50_000_000));
        ])
  in
  QCheck.Test.make ~name:"wheel fires identically to heap" ~count:60
    QCheck.(make ~print:(fun l -> string_of_int (List.length l))
              Gen.(list_size (int_range 5 60) op_gen))
    (fun ops ->
      let interp backend =
        let e = Engine.create ~backend () in
        let log = ref [] in
        let ids = ref [||] in
        let tag = ref 0 in
        let rec handler n () =
          log := (Engine.now e, n) :: !log;
          (* deterministic in-handler activity driven by the tag *)
          if n mod 3 = 0 then remember (n * 37 mod 2_000_000) (n + 1000);
          if n mod 5 = 0 && Array.length !ids > 0 then
            Engine.cancel e !ids.(n mod Array.length !ids)
        and remember delay n =
          let id = Engine.schedule e ~delay (fun () -> handler n ()) in
          ids := Array.append !ids [| id |]
        in
        List.iter
          (fun op ->
            incr tag;
            match op with
            | `Schedule d -> remember d !tag
            | `Cancel i ->
              if Array.length !ids > 0 then
                Engine.cancel e !ids.(i mod Array.length !ids)
            | `Run_for d -> Engine.run_for e d)
          ops;
        Engine.run e;
        (List.rev !log, Engine.now e, Engine.processed e, Engine.pending e)
      in
      interp Engine.Heap = interp Engine.Wheel)

let test_backend_of_string () =
  Testutil.check_bool "heap" true
    (Engine.backend_of_string "heap" = Ok Engine.Heap);
  Testutil.check_bool "wheel" true
    (Engine.backend_of_string "wheel" = Ok Engine.Wheel);
  Testutil.check_bool "junk" true
    (match Engine.backend_of_string "btree" with
    | Error _ -> true
    | Ok _ -> false);
  Testutil.check_string "name" "wheel" (Engine.backend_name Engine.Wheel)

let test_wheel_counters () =
  let e = Engine.create ~backend:Engine.Wheel () in
  let skips = ref 0 and cascades = ref 0 in
  Engine.set_stat_hooks e
    ~cancelled_skip:(fun () -> incr skips)
    ~wheel_cascade:(fun () -> incr cascades);
  let id = Engine.schedule e ~delay:(Time.ms 3) ignore in
  Engine.cancel e id;
  ignore (Engine.schedule e ~delay:(Time.ms 4) ignore);
  Engine.run e;
  Testutil.check_int "skips counted" (Engine.cancelled_skips e) !skips;
  Testutil.check_int "cascades counted" (Engine.wheel_cascades e) !cascades;
  Testutil.check_bool "cascaded at least once" true (!cascades >= 1);
  Testutil.check_bool "skipped the corpse" true (!skips >= 1)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_fires_in_time_order;
    Alcotest.test_case "FIFO at equal time" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances to event" `Quick test_clock_advances;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "nested scheduling" `Quick test_nested_schedule;
    Alcotest.test_case "run ~until leaves future events" `Quick
      test_run_until;
    Alcotest.test_case "run ~until advances idle clock" `Quick
      test_run_until_idle_advances_clock;
    Alcotest.test_case "guarded clock dies with host" `Quick
      test_guarded_clock;
    Alcotest.test_case "wheel: equal time across insert paths" `Quick
      test_wheel_equal_time_across_paths;
    Alcotest.test_case "wheel: all levels + overflow" `Quick test_wheel_spans;
    Alcotest.test_case "wheel: idle gap then burst" `Quick
      test_wheel_idle_gap;
    Alcotest.test_case "backend parsing" `Quick test_backend_of_string;
    Alcotest.test_case "wheel: counters and stat hooks" `Quick
      test_wheel_counters;
    QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
  ]
