(* Heartbeat fault detection, the serialized-CPU model, and the failover
   configuration registry. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Clock = Tcpfo_sim.Clock
module Cpu = Tcpfo_sim.Cpu
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Heartbeat = Tcpfo_core.Heartbeat
module Failover_config = Tcpfo_core.Failover_config
open Testutil

(* ---------------- Heartbeat / fault detector ---------------- *)

let hb_config =
  Failover_config.make ~heartbeat_period:(Time.ms 10)
    ~detector_timeout:(Time.ms 30) ()

let make_pair () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  World.warm_arp [ a; b ];
  (world, a, b)

let test_healthy_peer_not_suspected () =
  let world, a, b = make_pair () in
  let a_fired = ref false and b_fired = ref false in
  let _ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> a_fired := true)
  in
  let _hb =
    Heartbeat.start b ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> b_fired := true)
  in
  World.run world ~for_:(Time.sec 5.0);
  check_bool "a trusts b" false !a_fired;
  check_bool "b trusts a" false !b_fired;
  let received host =
    Tcpfo_obs.Registry.counter_value (World.metrics world)
      (Printf.sprintf "host.%s.heartbeat.received" host)
  in
  check_bool "heartbeats flowing" true (received "a" > 400);
  check_bool "both directions" true (received "b" > 400)

let test_detects_dead_peer_within_bound () =
  let world, a, b = make_pair () in
  let detected_at = ref None in
  let _ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> detected_at := Some (World.now world))
  in
  let _hb =
    Heartbeat.start b ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> ())
  in
  World.run world ~for_:(Time.ms 200);
  ignore (Host.kill b);
  let kill_time = World.now world in
  World.run world ~for_:(Time.sec 2.0);
  match !detected_at with
  | None -> Alcotest.fail "failure never detected"
  | Some t ->
    let latency = t - kill_time in
    check_bool "after timeout" true (latency >= Time.ms 30);
    check_bool "within timeout + 2 periods" true (latency <= Time.ms 55)

let test_fires_exactly_once () =
  let world, a, b = make_pair () in
  let count = ref 0 in
  let _ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> incr count)
  in
  Host.kill b;
  World.run world ~for_:(Time.sec 3.0);
  check_int "single callback" 1 !count

let test_stop_silences_detector () =
  let world, a, b = make_pair () in
  let fired = ref false in
  let ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> fired := true)
  in
  Heartbeat.stop ha;
  Host.kill b;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "stopped detector stays quiet" false !fired

(* ---------------- Cpu ---------------- *)

let test_cpu_serializes () =
  let engine = Engine.create () in
  let clock = Clock.of_engine engine in
  let cpu = Cpu.create clock in
  let log = ref [] in
  Cpu.run cpu ~cost:(Time.us 10) (fun () ->
      log := (1, Engine.now engine) :: !log);
  Cpu.run cpu ~cost:(Time.us 5) (fun () ->
      log := (2, Engine.now engine) :: !log);
  Engine.run engine;
  (match List.rev !log with
  | [ (1, t1); (2, t2) ] ->
    Testutil.check_int "first at its cost" (Time.us 10) t1;
    Testutil.check_int "second queued behind" (Time.us 15) t2
  | _ -> Alcotest.fail "wrong order");
  Testutil.check_int "total busy" (Time.us 15) (Cpu.total_busy cpu)

let test_cpu_idle_gap () =
  let engine = Engine.create () in
  let clock = Clock.of_engine engine in
  let cpu = Cpu.create clock in
  let at = ref 0 in
  Cpu.run cpu ~cost:(Time.us 10) (fun () -> ());
  (* submit later work after the CPU went idle: no queueing *)
  ignore
    (Engine.schedule engine ~delay:(Time.us 100) (fun () ->
         Cpu.run cpu ~cost:(Time.us 7) (fun () -> at := Engine.now engine)));
  Engine.run engine;
  Testutil.check_int "starts immediately when idle" (Time.us 107) !at

(* ---------------- Failover_config registry ---------------- *)

let test_registry_port_methods () =
  let cfg = Failover_config.make ~service_ports:[ 80 ]
      ~remote_service_ports:[ 5432 ] () in
  let reg = Failover_config.create_registry cfg in
  (* method 2: static port list *)
  check_bool "static local" true
    (Failover_config.is_failover_conn reg ~local_port:80 ~remote_port:55555);
  check_bool "static remote" true
    (Failover_config.is_failover_conn reg ~local_port:49152
       ~remote_port:5432);
  check_bool "unrelated" false
    (Failover_config.is_failover_conn reg ~local_port:22 ~remote_port:2222);
  (* method 1: per-socket registration *)
  Failover_config.register_endpoint reg ~local_port:8080;
  check_bool "registered local" true
    (Failover_config.is_failover_conn reg ~local_port:8080
       ~remote_port:60000);
  Failover_config.register_remote reg ~remote_port:6379;
  check_bool "registered remote" true
    (Failover_config.is_failover_conn reg ~local_port:49153
       ~remote_port:6379);
  (* idempotent registration *)
  Failover_config.register_endpoint reg ~local_port:8080;
  check_bool "still works" true
    (Failover_config.is_failover_local_port reg 8080);
  (* the remote-port predicate the transfer candidate selection relies
     on: a §7.2 client-role conn has an EPHEMERAL local port, so only
     the remote side marks it as a failover connection *)
  check_bool "remote predicate (static)" true
    (Failover_config.is_failover_remote_port reg 5432);
  check_bool "remote predicate (registered)" true
    (Failover_config.is_failover_remote_port reg 6379);
  check_bool "a local service port is not a remote one" false
    (Failover_config.is_failover_remote_port reg 80)

let suite =
  [
    Alcotest.test_case "healthy peer never suspected" `Quick
      test_healthy_peer_not_suspected;
    Alcotest.test_case "dead peer detected within bound" `Quick
      test_detects_dead_peer_within_bound;
    Alcotest.test_case "detector fires exactly once" `Quick
      test_fires_exactly_once;
    Alcotest.test_case "stopped detector stays quiet" `Quick
      test_stop_silences_detector;
    Alcotest.test_case "cpu serializes work" `Quick test_cpu_serializes;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    Alcotest.test_case "failover config registry" `Quick
      test_registry_port_methods;
  ]

(* ---------------- Capture ---------------- *)

module Capture = Tcpfo_net.Capture
module Stack2 = Tcpfo_tcp.Stack
module Tcb2 = Tcpfo_tcp.Tcb

let test_capture_handshake () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"c" ~addr:"10.0.0.10" () in
  let server = World.add_host world lan ~name:"s" ~addr:"10.0.0.1" () in
  World.warm_arp [ client; server ];
  let cap =
    Capture.start (World.engine world) lan
      ~filter:(fun f ->
        match f.Tcpfo_packet.Eth_frame.payload with
        | Tcpfo_packet.Eth_frame.Ip
            { payload = Tcpfo_packet.Ipv4_packet.Tcp _; _ } ->
          true
        | _ -> false)
      ()
  in
  Stack2.listen (Host.tcp server) ~port:80 ~on_accept:(fun _ -> ());
  let c = Stack2.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  World.run world ~for_:(Time.sec 1.0);
  ignore c;
  (* exactly the three-way handshake: SYN, SYN-ACK, ACK *)
  let segs = Capture.tcp_segments cap in
  check_int "three segments" 3 (List.length segs);
  (match List.map snd segs with
  | [ p1; p2; p3 ] ->
    let flags (p : Tcpfo_packet.Ipv4_packet.t) =
      match p.payload with
      | Tcp s -> Tcpfo_packet.Tcp_segment.flags_to_string s.flags
      | _ -> "?"
    in
    check_string "syn" "S" (flags p1);
    check_string "synack" "SA" (flags p2);
    check_string "ack" "A" (flags p3)
  | _ -> Alcotest.fail "expected 3");
  (* timestamps monotone and the dump renders every record *)
  let times = List.map fst segs in
  check_bool "monotone" true (times = List.sort compare times);
  let d = Capture.dump cap in
  check_int "dump lines" 3
    (List.length (String.split_on_char '\n' (String.trim d)));
  Capture.stop cap;
  let before = Capture.seen cap in
  let c2 = Stack2.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  ignore c2;
  World.run world ~for_:(Time.sec 1.0);
  check_int "nothing after stop" before (Capture.seen cap)

let test_capture_limit () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  World.warm_arp [ a; b ];
  let cap = Capture.start (World.engine world) lan ~limit:5 () in
  for _ = 1 to 20 do
    Tcpfo_ip.Ip_layer.send (Host.ip a)
      (Tcpfo_packet.Ipv4_packet.make ~src:(Host.addr a) ~dst:(Host.addr b)
         (Tcpfo_packet.Ipv4_packet.Raw { proto = 99; data = "x" }))
  done;
  World.run_until_idle world;
  check_int "seen all" 20 (Capture.seen cap);
  check_int "kept bounded" 5 (Capture.count cap);
  Capture.clear cap;
  check_int "cleared" 0 (Capture.count cap)

(* ---------------- Event stringifiers ---------------- *)

module Replicated = Tcpfo_core.Replicated
module Chain = Tcpfo_core.Chain

(* Compile-time exhaustiveness: these matches have no wildcard, so
   adding a constructor to either event type breaks the build here
   until the sample list below (and the stringifier) learns it. *)
let _covers_replicated : Replicated.event -> unit = function
  | Replicated.Secondary_failure_detected | Replicated.Primary_failure_detected
  | Replicated.Takeover_complete | Replicated.Reintegrated
  | Replicated.Transfers_complete _ | Replicated.Promoted _
  | Replicated.Standby_lost _ | Replicated.Rejoined _ | Replicated.Isolated _ ->
    ()

let _covers_chain : Chain.event -> unit = function
  | Chain.Death_detected _ | Chain.Promoted _ | Chain.Retargeted _
  | Chain.Degraded _ | Chain.Rejoined _ | Chain.Transfers_complete _
  | Chain.Isolated _ ->
    ()

(* Runtime audit: every constructor renders non-empty and no two
   constructors collapse to the same line, so a soak report or trace
   can never print an event as a blank or a look-alike. *)
let test_event_strings_exhaustive () =
  let addr = Tcpfo_packet.Ipaddr.of_string "10.0.0.9" in
  let repl_events =
    [
      Replicated.Secondary_failure_detected;
      Replicated.Primary_failure_detected;
      Replicated.Takeover_complete;
      Replicated.Reintegrated;
      Replicated.Transfers_complete 3;
      Replicated.Promoted "standby1";
      Replicated.Standby_lost "standby1";
      Replicated.Rejoined "repaired";
      Replicated.Isolated { local_port = 7; remote = (addr, 80) };
    ]
  in
  let chain_events =
    [
      Chain.Death_detected 0;
      Chain.Promoted 1;
      Chain.Retargeted (0, 1);
      Chain.Degraded 2;
      Chain.Rejoined 2;
      Chain.Transfers_complete 4;
      Chain.Isolated { local_port = 7; remote = (addr, 80) };
    ]
  in
  let audit name to_string events =
    let strs = List.map to_string events in
    List.iter
      (fun s -> check_bool (name ^ " event renders non-empty") true
          (String.length s > 0))
      strs;
    check_int
      (name ^ " event strings pairwise distinct")
      (List.length events)
      (List.length (List.sort_uniq compare strs))
  in
  audit "replicated" Replicated.event_to_string repl_events;
  audit "chain" Chain.event_to_string chain_events

let suite =
  suite
  @ [
      Alcotest.test_case "capture records a handshake" `Quick
        test_capture_handshake;
      Alcotest.test_case "capture respects its limit" `Quick
        test_capture_limit;
      Alcotest.test_case "event stringifiers exhaustive and distinct" `Quick
        test_event_strings_exhaustive;
    ]
