module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Medium = Tcpfo_net.Medium
module Nic = Tcpfo_net.Nic
module Eth_frame = Tcpfo_packet.Eth_frame
module Macaddr = Tcpfo_packet.Macaddr
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

let mk_frame ~src ~dst n =
  Eth_frame.make ~src:(Macaddr.of_int src) ~dst:(Macaddr.of_int dst)
    (Eth_frame.Ip
       (Ipv4_packet.make ~src:(Ipaddr.of_int 1) ~dst:(Ipaddr.of_int 2)
          (Ipv4_packet.Raw { proto = 200; data = String.make n 'x' })))

let setup ?(config = Medium.default_config) () =
  let e = Engine.create () in
  let obs = Obs.create () in
  let m = Medium.create e ~rng:(Rng.create ~seed:11) ~obs config in
  (e, m, obs)

let collisions obs = Registry.counter_value (Obs.metrics obs) "medium.collisions"

let test_broadcast_semantics () =
  (* hub: every other station sees the frame, the sender does not *)
  let e, m, _ = setup () in
  let got = Array.make 3 0 in
  let ports =
    Array.init 3 (fun i ->
        Medium.attach m ~deliver:(fun _ -> got.(i) <- got.(i) + 1))
  in
  Medium.transmit m ports.(0) (mk_frame ~src:1 ~dst:2 100);
  Engine.run e;
  Alcotest.(check (array int)) "all but sender" [| 0; 1; 1 |] got

let test_serialization_time () =
  let e, m, _ = setup () in
  let arrival = ref Time.zero in
  let _p0 = Medium.attach m ~deliver:(fun _ -> ()) in
  let _p1 = Medium.attach m ~deliver:(fun _ -> arrival := Engine.now e) in
  let p2 = Medium.attach m ~deliver:(fun _ -> ()) in
  (* 1000-byte raw payload: wire = 14 + 20 + 1000 + 4 = 1038; +20
     preamble/IFG = 1058 bytes = 8464 bits @100Mb/s = 84.64 us, +1 us
     propagation *)
  Medium.transmit m p2 (mk_frame ~src:3 ~dst:1 1000);
  Engine.run e;
  Testutil.check_int "arrival time" (Time.ns 85_640) !arrival

let test_fifo_when_busy () =
  let e, m, obs = setup () in
  let log = ref [] in
  let p0 =
    Medium.attach m ~deliver:(fun f ->
        log := Macaddr.to_int f.Eth_frame.src :: !log)
  in
  ignore p0;
  let p1 = Medium.attach m ~deliver:(fun _ -> ()) in
  let p2 = Medium.attach m ~deliver:(fun _ -> ()) in
  (* p1 transmits; while busy, p2 queues; no collision since p2 defers *)
  Medium.transmit m p1 (mk_frame ~src:11 ~dst:1 500);
  ignore
    (Engine.schedule e ~delay:(Time.us 5) (fun () ->
         Medium.transmit m p2 (mk_frame ~src:22 ~dst:1 500)));
  Engine.run e;
  Alcotest.(check (list int)) "both delivered in order" [ 11; 22 ]
    (List.rev !log);
  Testutil.check_int "no collisions" 0 (collisions obs)

let test_collision_backoff_resolves () =
  let e, m, obs =
    setup ~config:{ Medium.default_config with collision_prob = 1.0 } ()
  in
  let received = ref 0 in
  let _sink = Medium.attach m ~deliver:(fun _ -> incr received) in
  let p1 = Medium.attach m ~deliver:(fun _ -> ()) in
  let p2 = Medium.attach m ~deliver:(fun _ -> ()) in
  let p3 = Medium.attach m ~deliver:(fun _ -> ()) in
  (* all three want the wire while it is busy -> contention at idle *)
  Medium.transmit m p1 (mk_frame ~src:1 ~dst:9 800);
  Medium.transmit m p2 (mk_frame ~src:2 ~dst:9 800);
  Medium.transmit m p3 (mk_frame ~src:3 ~dst:9 800);
  Engine.run e;
  Testutil.check_int "all delivered eventually" 3 !received;
  Testutil.check_bool "collisions occurred" true (collisions obs > 0)

let test_collisions_disabled () =
  let e, m, obs =
    setup ~config:{ Medium.default_config with enable_collisions = false } ()
  in
  let received = ref 0 in
  let _sink = Medium.attach m ~deliver:(fun _ -> incr received) in
  let p1 = Medium.attach m ~deliver:(fun _ -> ()) in
  let p2 = Medium.attach m ~deliver:(fun _ -> ()) in
  Medium.transmit m p1 (mk_frame ~src:1 ~dst:9 100);
  Medium.transmit m p2 (mk_frame ~src:2 ~dst:9 100);
  Medium.transmit m p1 (mk_frame ~src:1 ~dst:9 100);
  Engine.run e;
  Testutil.check_int "all delivered" 3 !received;
  Testutil.check_int "no collisions" 0 (collisions obs)

let test_detach_stops_delivery () =
  let e, m, _ = setup () in
  let got = ref 0 in
  let p0 = Medium.attach m ~deliver:(fun _ -> incr got) in
  let p1 = Medium.attach m ~deliver:(fun _ -> ()) in
  Medium.transmit m p1 (mk_frame ~src:2 ~dst:1 50);
  Engine.run e;
  Testutil.check_int "first arrives" 1 !got;
  Medium.detach m p0;
  Medium.transmit m p1 (mk_frame ~src:2 ~dst:1 50);
  Engine.run e;
  Testutil.check_int "after detach" 1 !got

let test_random_loss () =
  let e, m, _ =
    setup ~config:{ Medium.default_config with loss_prob = 0.5 } ()
  in
  let got = ref 0 in
  let _p0 = Medium.attach m ~deliver:(fun _ -> incr got) in
  let p1 = Medium.attach m ~deliver:(fun _ -> ()) in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore
      (Engine.schedule e ~delay:(Time.us (i * 200)) (fun () ->
           Medium.transmit m p1 (mk_frame ~src:2 ~dst:1 50)))
  done;
  Engine.run e;
  Testutil.check_bool "some lost" true (!got < n);
  Testutil.check_bool "some arrive" true (!got > n / 4)

let test_nic_promiscuous () =
  let e, m, _ = setup () in
  let normal = ref 0 and promisc = ref 0 in
  let nic1 = Nic.create e ~mac:(Macaddr.of_int 0x111) m in
  let nic2 = Nic.create e ~mac:(Macaddr.of_int 0x222) m in
  let nic3 = Nic.create e ~mac:(Macaddr.of_int 0x333) m in
  Nic.set_rx nic2 (fun _ ~addressed_to_me -> if addressed_to_me then incr normal);
  Nic.set_rx nic3 (fun _ ~addressed_to_me ->
      if not addressed_to_me then incr promisc);
  (* frame to nic2's MAC: nic3 sees nothing until promiscuous *)
  Nic.send nic1 ~dst:(Macaddr.of_int 0x222)
    (mk_frame ~src:0x111 ~dst:0x222 10).Eth_frame.payload;
  Engine.run e;
  Testutil.check_int "unicast received" 1 !normal;
  Testutil.check_int "not snooped yet" 0 !promisc;
  Nic.set_promiscuous nic3 true;
  Nic.send nic1 ~dst:(Macaddr.of_int 0x222)
    (mk_frame ~src:0x111 ~dst:0x222 10).Eth_frame.payload;
  Engine.run e;
  Testutil.check_int "snooped" 1 !promisc

let suite =
  [
    Alcotest.test_case "hub broadcast semantics" `Quick
      test_broadcast_semantics;
    Alcotest.test_case "serialization + propagation timing" `Quick
      test_serialization_time;
    Alcotest.test_case "busy medium: FIFO, no collision" `Quick
      test_fifo_when_busy;
    Alcotest.test_case "collision backoff resolves" `Quick
      test_collision_backoff_resolves;
    Alcotest.test_case "collisions disabled" `Quick test_collisions_disabled;
    Alcotest.test_case "detach stops delivery" `Quick
      test_detach_stops_delivery;
    Alcotest.test_case "random loss" `Quick test_random_loss;
    Alcotest.test_case "nic promiscuous mode" `Quick test_nic_promiscuous;
  ]
