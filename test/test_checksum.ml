module Checksum = Tcpfo_util.Checksum

let test_known_vector () =
  (* RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2, ck 220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Testutil.check_int "partial" 0xddf2 (Checksum.partial b);
  Testutil.check_int "checksum" 0x220d (Checksum.of_bytes b)

let test_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* 0102 + 0300 = 0402 -> ck = fbfd *)
  Testutil.check_int "odd" 0xfbfd (Checksum.of_bytes b)

let test_valid_with_embedded_checksum () =
  let b = Bytes.of_string "\x45\x00\x00\x1c\x00\x01\x00\x00\x40\x06\x00\x00\x0a\x00\x00\x01\x0a\x00\x00\x02" in
  let ck = Checksum.of_bytes b in
  Bytes.set b 10 (Char.chr (ck lsr 8));
  Bytes.set b 11 (Char.chr (ck land 0xFF));
  Testutil.check_bool "valid" true (Checksum.valid b)

let test_incremental_16 () =
  let b = Bytes.of_string "\x12\x34\x56\x78\x9a\xbc" in
  let ck = Checksum.of_bytes b in
  let b' = Bytes.copy b in
  Bytes.set b' 2 '\xde';
  Bytes.set b' 3 '\xad';
  let expected = Checksum.of_bytes b' in
  let adjusted = Checksum.adjust16 ck ~old16:0x5678 ~new16:0xdead in
  Testutil.check_int "adjust16 = recompute" expected adjusted

let arb_payload = QCheck.(string_of_size (Gen.int_range 0 512))

let prop_adjust_equals_recompute =
  QCheck.Test.make ~name:"incremental adjust = full recompute" ~count:300
    QCheck.(triple arb_payload (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (payload, old32, new32) ->
      (* Build a message starting with the 4-byte (16-bit aligned) field. *)
      let mk v =
        let b = Bytes.create (4 + String.length payload) in
        Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
        Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
        Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
        Bytes.set b 3 (Char.chr (v land 0xFF));
        Bytes.blit_string payload 0 b 4 (String.length payload);
        b
      in
      let ck_old = Checksum.of_bytes (mk old32) in
      let ck_new = Checksum.of_bytes (mk new32) in
      Checksum.adjust32 ck_old ~old32 ~new32 = ck_new)

let prop_adjust_bytes =
  QCheck.Test.make ~name:"adjust over byte region = recompute" ~count:300
    QCheck.(triple arb_payload (string_of_size (Gen.return 8))
              (string_of_size (Gen.return 8)))
    (fun (tail, olds, news) ->
      let full s = Bytes.of_string (s ^ tail) in
      let ck_old = Checksum.of_bytes (full olds) in
      let ck_new = Checksum.of_bytes (full news) in
      Checksum.adjust ck_old ~old_bytes:(Bytes.of_string olds)
        ~new_bytes:(Bytes.of_string news)
      = ck_new)

let test_parity_chain_after_odd_chunk () =
  (* "\x01\x02\x03" ++ "\x04\x05" sums as 0102 + 0304 + 0500; chaining
     plain [partial] would mis-lane the 04 as 0400 *)
  let a = Bytes.of_string "\x01\x02\x03" and b = Bytes.of_string "\x04\x05" in
  let st = Checksum.partial_parity a in
  let sum, odd = Checksum.partial_parity ~state:st b in
  Testutil.check_bool "odd parity out" true odd;
  Testutil.check_int "chained sum" 0x0906 sum;
  Testutil.check_bool "plain partial chaining disagrees" true
    (Checksum.partial ~accum:(Checksum.partial a) b <> sum)

let prop_parity_chain_equals_whole =
  QCheck.Test.make
    ~name:"parity-chained chunks = whole-buffer checksum" ~count:500
    QCheck.(pair arb_payload (pair small_nat small_nat))
    (fun (payload, (cut1, cut2)) ->
      let b = Bytes.of_string payload in
      let n = Bytes.length b in
      (* split at two random points into three chunks (possibly empty) *)
      let i = if n = 0 then 0 else cut1 mod (n + 1) in
      let j = if n = 0 then 0 else cut2 mod (n + 1) in
      let i, j = (min i j, max i j) in
      let chunk lo hi = Bytes.sub b lo (hi - lo) in
      let st = Checksum.partial_parity (chunk 0 i) in
      let st = Checksum.partial_parity ~state:st (chunk i j) in
      let sum, _ = Checksum.partial_parity ~state:st (chunk j n) in
      Checksum.finish sum = Checksum.of_bytes b)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "RFC 1071 vector" `Quick test_known_vector;
    Alcotest.test_case "odd length pads with zero" `Quick test_odd_length;
    Alcotest.test_case "valid() over embedded checksum" `Quick
      test_valid_with_embedded_checksum;
    Alcotest.test_case "adjust16 matches recompute" `Quick
      test_incremental_16;
    Alcotest.test_case "parity chain across odd chunk" `Quick
      test_parity_chain_after_odd_chunk;
    q prop_adjust_equals_recompute;
    q prop_adjust_bytes;
    q prop_parity_chain_equals_whole;
  ]
