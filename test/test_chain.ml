(* Daisy-chained replication (the paper's §1 future work): three (and
   more) replicas, arbitrary failure sequences. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
module Chain = Tcpfo_core.Chain
module Failover_config = Tcpfo_core.Failover_config
open Testutil

type chain_lan = {
  cworld : World.t;
  clan : Tcpfo_net.Medium.t;
  cclient : Host.t;
  chain : Chain.t;
  hosts : Host.t list;
}

let make_chain ?seed ?(n = 3) ?configs () =
  let world = World.create ?seed () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"client" ~addr:"10.0.0.10" () in
  let hosts =
    List.init n (fun i ->
        let tcp_config =
          match configs with Some f -> Some (f i) | None -> None
        in
        World.add_host world lan
          ~name:(Printf.sprintf "replica%d" i)
          ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
          ?tcp_config ())
  in
  World.warm_arp (client :: hosts);
  let chain =
    Chain.create ~replicas:hosts ~config:Failover_config.default ()
  in
  { cworld = world; clan = lan; cclient = client; chain; hosts }

(* install the reply service; returns per-replica request sinks *)
let serve c ~reply =
  let sinks = Hashtbl.create 4 in
  Chain.listen c.chain ~port:80 ~on_accept:(fun ~replica tcb ->
      let buf = Buffer.create 64 in
      Hashtbl.replace sinks replica buf;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string buf d;
          if Buffer.length buf = 3 then begin
            let off = ref 0 in
            let size = String.length reply in
            let rec pump () =
              if !off < size then begin
                let want = min 32768 (size - !off) in
                let n = Tcb.send tcb (String.sub reply !off want) in
                off := !off + n;
                if n < want then Tcb.set_on_drain tcb pump else pump ()
              end
              else Tcb.close tcb
            in
            pump ()
          end);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  sinks

let download ?(kills = []) ?(reply_size = 200_000) ?seed ?n ?configs () =
  let c = make_chain ?seed ?n ?configs () in
  let reply = pattern ~tag:55 reply_size in
  let sinks = serve c ~reply in
  let csink = make_sink () in
  let conn =
    Stack.connect (Host.tcp c.cclient)
      ~remote:(Chain.service_addr c.chain, 80)
      ()
  in
  wire_sink csink conn;
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "get"));
  List.iter
    (fun (at, idx) ->
      ignore
        (Engine.schedule (World.engine c.cworld) ~delay:at (fun () ->
             Chain.kill c.chain idx)))
    kills;
  World.run c.cworld ~for_:(Time.sec 120.0);
  (c, reply, csink, sinks, conn)

let test_three_replica_fault_free () =
  let c, reply, csink, sinks, _ = download () in
  check_string "reply exact through 3-way chain" reply (sink_contents csink);
  check_bool "eof" true csink.eof;
  check_int "all three replicas saw the request" 3 (Hashtbl.length sinks);
  Hashtbl.iter
    (fun _ buf -> check_string "request replicated" "get" (Buffer.contents buf))
    sinks;
  Alcotest.(check (list int)) "all alive" [ 0; 1; 2 ] (Chain.alive c.chain)

let test_chain_mss_minimum () =
  (* the merged SYN must carry the minimum MSS of the whole chain *)
  let mss_of = function 0 -> 1460 | 1 -> 1200 | _ -> 900 in
  let c =
    make_chain ~configs:(fun i -> { Tcp_config.default with mss = mss_of i }) ()
  in
  let _ = serve c ~reply:"ok" in
  let conn =
    Stack.connect (Host.tcp c.cclient)
      ~remote:(Chain.service_addr c.chain, 80)
      ()
  in
  World.run c.cworld ~for_:(Time.sec 1.0);
  check_int "min MSS across three replicas" 900 (Tcb.effective_mss conn)

let test_head_dies () =
  let c, reply, csink, _, _ =
    download ~kills:[ (Time.ms 30, 0) ] ()
  in
  check_string "stream exact after head death" reply (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  check_int "replica 1 promoted" 1 (Chain.head c.chain)

let test_mid_dies () =
  let c, reply, csink, _, _ =
    download ~kills:[ (Time.ms 30, 1) ] ()
  in
  check_string "stream exact after middle death" reply (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  check_int "head unchanged" 0 (Chain.head c.chain);
  Alcotest.(check (list int)) "live chain" [ 0; 2 ] (Chain.alive c.chain)

let test_tail_dies () =
  let c, reply, csink, _, _ =
    download ~kills:[ (Time.ms 30, 2) ] ()
  in
  check_string "stream exact after tail death" reply (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  Alcotest.(check (list int)) "live chain" [ 0; 1 ] (Chain.alive c.chain)

let test_two_sequential_deaths_head_then_head () =
  (* head dies; the promoted middle dies; the original tail serves alone *)
  let c, reply, csink, _, _ =
    download
      ~kills:[ (Time.ms 30, 0); (Time.ms 900, 1) ]
      ~reply_size:600_000 ()
  in
  check_string "stream exact after two failovers" reply
    (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  Alcotest.(check (list int)) "single survivor" [ 2 ] (Chain.alive c.chain)

let test_two_sequential_deaths_tail_then_head () =
  let c, reply, csink, _, _ =
    download
      ~kills:[ (Time.ms 30, 2); (Time.ms 900, 0) ]
      ~reply_size:600_000 ()
  in
  check_string "stream exact (tail then head)" reply (sink_contents csink);
  Alcotest.(check (list int)) "middle survives" [ 1 ] (Chain.alive c.chain)

let test_upload_replicated_to_all () =
  let c = make_chain () in
  let data = pattern ~tag:56 150_000 in
  let sinks = Hashtbl.create 4 in
  Chain.listen c.chain ~port:80 ~on_accept:(fun ~replica tcb ->
      let buf = Buffer.create 64 in
      Hashtbl.replace sinks replica buf;
      Tcb.set_on_data tcb (fun d -> Buffer.add_string buf d);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let conn =
    Stack.connect (Host.tcp c.cclient)
      ~remote:(Chain.service_addr c.chain, 80)
      ()
  in
  Tcb.set_on_established conn (fun () -> send_all ~close:true conn data);
  World.run c.cworld ~for_:(Time.sec 60.0);
  check_int "three sinks" 3 (Hashtbl.length sinks);
  Hashtbl.iter
    (fun i buf ->
      check_string
        (Printf.sprintf "replica %d holds the full upload" i)
        data (Buffer.contents buf))
    sinks

let test_four_replica_chain () =
  let c, reply, csink, sinks, _ =
    download ~n:4 ~kills:[ (Time.ms 30, 0) ] ()
  in
  check_string "4-chain stream exact after head death" reply
    (sink_contents csink);
  check_int "four replicas accepted" 4 (Hashtbl.length sinks);
  check_int "replica 1 promoted" 1 (Chain.head c.chain)

let prop_chain_any_single_failure =
  QCheck.Test.make ~name:"3-chain stream exact for any victim and time"
    ~count:9
    QCheck.(pair (int_range 0 2) (int_range 1_000 120_000))
    (fun (victim, kill_us) ->
      let _, reply, csink, _, _ =
        download ~seed:(victim * 1000 + kill_us)
          ~kills:[ (Tcpfo_sim.Time.us kill_us, victim) ]
          ()
      in
      sink_contents csink = reply && csink.resets = 0 && csink.eof)

let suite =
  [
    Alcotest.test_case "three replicas, fault-free" `Quick
      test_three_replica_fault_free;
    Alcotest.test_case "merged SYN carries chain-wide min MSS" `Quick
      test_chain_mss_minimum;
    Alcotest.test_case "head dies: next replica promotes" `Quick
      test_head_dies;
    Alcotest.test_case "middle dies: tail re-diverts" `Quick test_mid_dies;
    Alcotest.test_case "tail dies: middle degrades (6)" `Quick
      test_tail_dies;
    Alcotest.test_case "two deaths: head then new head" `Quick
      test_two_sequential_deaths_head_then_head;
    Alcotest.test_case "two deaths: tail then head" `Quick
      test_two_sequential_deaths_tail_then_head;
    Alcotest.test_case "upload reaches every replica" `Quick
      test_upload_replicated_to_all;
    Alcotest.test_case "four-replica chain" `Quick test_four_replica_chain;
    QCheck_alcotest.to_alcotest prop_chain_any_single_failure;
  ]

let test_chain_server_initiated () =
  (* §7.2 through a 3-chain: all three replicas open one logical
     connection to an unreplicated back end; the back end sees exactly
     one; the session survives the head's death *)
  let world = World.create () in
  let lan = World.make_lan world () in
  let hosts =
    List.init 3 (fun i ->
        World.add_host world lan
          ~name:(Printf.sprintf "replica%d" i)
          ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
          ())
  in
  let backend = World.add_host world lan ~name:"backend" ~addr:"10.0.0.9" () in
  World.warm_arp (backend :: hosts);
  let chain = Chain.create ~replicas:hosts ~config:Failover_config.default () in
  let accepted = ref 0 in
  let bsink = make_sink () in
  Stack.listen (Host.tcp backend) ~port:5432 ~on_accept:(fun tcb ->
      incr accepted;
      wire_sink bsink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string bsink.buf d;
          ignore (Tcb.send tcb ("ok:" ^ d))));
  let sinks = ref [] in
  Chain.connect_backend chain ~remote:(Host.addr backend, 5432)
    ~setup:(fun ~replica tcb ->
      let sink = make_sink () in
      sinks := (replica, sink, tcb) :: !sinks;
      wire_sink sink tcb;
      Tcb.set_on_established tcb (fun () -> ignore (Tcb.send tcb "q1")))
    ();
  World.run world ~for_:(Time.sec 2.0);
  check_int "backend accepted exactly one connection" 1 !accepted;
  check_string "backend got one q1" "q1" (sink_contents bsink);
  List.iter
    (fun (_, sink, _) ->
      check_string "every replica got the reply" "ok:q1" (sink_contents sink))
    !sinks;
  (* kill the head; survivors keep the backend session *)
  Chain.kill chain 0;
  World.run world ~for_:(Time.sec 2.0);
  List.iter
    (fun (replica, _, tcb) ->
      if replica <> 0 then ignore (Tcb.send tcb "q2"))
    !sinks;
  World.run world ~for_:(Time.sec 5.0);
  check_string "session continued after head death" "q1q2"
    (sink_contents bsink);
  check_int "still a single backend connection" 1 !accepted

(* ---- rejoin: a repaired host re-enters at the tail -------------------- *)

let test_chain_rejoin_restores_three_tiers () =
  (* head dies mid-download; a repaired host rejoins at the tail by hot
     state transfer; then the promoted head dies too.  The rejoined tail
     must carry the stream to completion byte-exactly — the chain is
     fully repairable, not merely survivable. *)
  let c = make_chain () in
  let reply = pattern ~tag:57 600_000 in
  let _sinks = serve c ~reply in
  let csink = make_sink () in
  let conn =
    Stack.connect (Host.tcp c.cclient)
      ~remote:(Chain.service_addr c.chain, 80)
      ()
  in
  wire_sink csink conn;
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "get"));
  let engine = World.engine c.cworld in
  let tail_idx = ref (-1) in
  let rejoin_scheduled = ref false in
  let settled = ref None in
  let rekilled = ref false in
  let isolated = ref 0 in
  Chain.set_on_event c.chain (fun ev ->
      match ev with
      | Chain.Promoted _ when not !rejoin_scheduled ->
        rejoin_scheduled := true;
        ignore
          (Engine.schedule engine ~delay:(Time.ms 1) (fun () ->
               let h =
                 World.add_host c.cworld c.clan ~name:"repaired"
                   ~addr:"10.0.0.8" ()
               in
               World.warm_arp (h :: c.cclient :: c.hosts);
               tail_idx := Chain.rejoin c.chain h))
      | Chain.Transfers_complete n when not !rekilled ->
        rekilled := true;
        settled := Some n;
        ignore
          (Engine.schedule engine ~delay:(Time.ms 5) (fun () ->
               Chain.kill c.chain (Chain.head c.chain)))
      | Chain.Isolated _ -> incr isolated
      | _ -> ());
  ignore
    (Engine.schedule engine ~delay:(Time.ms 30) (fun () ->
         Chain.kill c.chain 0));
  World.run c.cworld ~for_:(Time.sec 120.0);
  check_string "stream exact across kill, rejoin, and rekill" reply
    (sink_contents csink);
  check_bool "eof" true csink.eof;
  check_int "no reset" 0 csink.resets;
  check_bool "rejoin ran" true (!tail_idx >= 0);
  Alcotest.(check (list int))
    "repaired tail survives the second death"
    [ 2; !tail_idx ] (Chain.alive c.chain);
  check_bool "the live conn was re-replicated onto the tail" true
    (match !settled with Some n -> n >= 1 | None -> false);
  check_int "nothing isolated" 0 !isolated;
  check_int "no pending transfers" 0 (Chain.pending_transfers c.chain)

let test_chain_rejoin_validation () =
  let c = make_chain () in
  World.run c.cworld ~for_:(Time.ms 50);
  Alcotest.check_raises "live member refused"
    (Invalid_argument "Chain.rejoin: host is already in the chain")
    (fun () -> ignore (Chain.rejoin c.chain (List.nth c.hosts 1)));
  let dead = World.add_host c.cworld c.clan ~name:"dead" ~addr:"10.0.0.7" () in
  Host.kill dead;
  Alcotest.check_raises "dead host refused"
    (Invalid_argument "Chain.rejoin: host is not alive")
    (fun () -> ignore (Chain.rejoin c.chain dead))

let test_chain_rejoin_during_takeover () =
  (* on a pair, the survivor's §5 takeover is in flight between death
     detection and [Promoted]: a rejoin inside that window must be
     refused (the service address has no owner yet), and the same host
     must be accepted once the takeover settles *)
  let c = make_chain ~n:2 () in
  let fresh =
    World.add_host c.cworld c.clan ~name:"repaired" ~addr:"10.0.0.8" ()
  in
  World.warm_arp (fresh :: c.cclient :: c.hosts);
  let engine = World.engine c.cworld in
  let refused = ref false in
  let joined = ref None in
  Chain.set_on_event c.chain (fun ev ->
      match ev with
      | Chain.Death_detected _ ->
        ignore
          (Engine.schedule engine ~delay:(Time.us 1) (fun () ->
               try ignore (Chain.rejoin c.chain fresh)
               with Invalid_argument _ -> refused := true))
      | Chain.Promoted _ ->
        ignore
          (Engine.schedule engine ~delay:(Time.us 1) (fun () ->
               if !joined = None then joined := Some (Chain.rejoin c.chain fresh)))
      | _ -> ());
  ignore
    (Engine.schedule engine ~delay:(Time.ms 30) (fun () ->
         Chain.kill c.chain 0));
  World.run c.cworld ~for_:(Time.sec 5.0);
  check_bool "rejoin refused mid-takeover" true !refused;
  (match !joined with
  | Some idx ->
    Alcotest.(check (list int))
      "paired with the survivor after the takeover"
      [ 1; idx ] (Chain.alive c.chain)
  | None -> Alcotest.fail "rejoin never succeeded after the takeover");
  check_int "no pending transfers" 0 (Chain.pending_transfers c.chain)

let suite =
  suite
  @ [
      Alcotest.test_case "server-initiated through a chain (7.2)" `Quick
        test_chain_server_initiated;
      Alcotest.test_case "rejoin restores three tiers mid-stream" `Quick
        test_chain_rejoin_restores_three_tiers;
      Alcotest.test_case "rejoin validation" `Quick
        test_chain_rejoin_validation;
      Alcotest.test_case "rejoin refused mid-takeover, accepted after" `Quick
        test_chain_rejoin_during_takeover;
    ]
