module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
open Testutil

let test_handshake () =
  let lan = make_simple_lan () in
  let server_conn = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb);
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client)
      ~remote:(Host.addr lan.server, 80)
      ()
  in
  wire_sink csink c;
  World.run_until_idle lan.world;
  check_bool "client established" true csink.established;
  check_bool "client state" true (Tcb.state c = Tcb.Established);
  (match !server_conn with
  | Some s -> check_bool "server state" true (Tcb.state s = Tcb.Established)
  | None -> Alcotest.fail "no accept");
  check_bool "no resets" true (csink.resets = 0)

let test_mss_negotiation () =
  let small = { Tcp_config.default with mss = 536 } in
  let world = World.create () in
  let lan_m = World.make_lan world () in
  let client =
    World.add_host world lan_m ~name:"client" ~addr:"10.0.0.10"
      ~tcp_config:small ()
  in
  let server = World.add_host world lan_m ~name:"server" ~addr:"10.0.0.1" () in
  World.warm_arp [ client; server ];
  let server_conn = ref None in
  Stack.listen (Host.tcp server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb);
  let c = Stack.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  World.run_until_idle world;
  check_int "client side min" 536 (Tcb.effective_mss c);
  (match !server_conn with
  | Some s -> check_int "server side min" 536 (Tcb.effective_mss s)
  | None -> Alcotest.fail "no accept")

let test_rst_to_closed_port () =
  let lan = make_simple_lan () in
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client)
      ~remote:(Host.addr lan.server, 9999)
      ()
  in
  wire_sink csink c;
  World.run_until_idle lan.world;
  check_bool "reset" true (csink.resets = 1);
  check_bool "never established" false csink.established;
  check_bool "closed" true (Tcb.state c = Tcb.Closed)

let test_small_exchange () =
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_data tcb (fun data ->
          Buffer.add_string ssink.buf data;
          ignore (Tcb.send tcb ("echo:" ^ data))));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "hello"));
  Tcb.set_on_data c (fun data -> Buffer.add_string csink.buf data);
  World.run_until_idle lan.world;
  check_string "server got" "hello" (Buffer.contents ssink.buf);
  check_string "client got" "echo:hello" (Buffer.contents csink.buf)

let test_connect_returns_distinct_ports () =
  let lan = make_simple_lan () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let c1 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let c2 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  check_bool "ports differ" true
    (snd (Tcb.local_endpoint c1) <> snd (Tcb.local_endpoint c2));
  World.run_until_idle lan.world;
  check_bool "both up" true
    (Tcb.state c1 = Tcb.Established && Tcb.state c2 = Tcb.Established);
  check_int "two conns client side" 2
    (Stack.connection_count (Host.tcp lan.client))

let test_isn_randomized () =
  let lan = make_simple_lan () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let c1 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let c2 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  check_bool "distinct ISNs" true
    (Tcpfo_util.Seq32.to_int (Tcb.iss c1)
     <> Tcpfo_util.Seq32.to_int (Tcb.iss c2))

let test_syn_retransmission_no_listener_host_down () =
  (* connect to a dead host: SYN retransmits with backoff, then reset *)
  let lan = make_simple_lan () in
  Host.kill lan.server;
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  wire_sink csink c;
  World.run_until_idle lan.world;
  check_bool "gave up with reset" true (csink.resets = 1);
  check_bool "retransmitted" true (Tcb.retransmits c >= 4)

let test_connection_setup_time_plausible () =
  (* sanity check on the latency model: standard TCP connection setup on a
     warm LAN should land in the few-hundred-microsecond range (paper:
     294 us median) *)
  let lan = make_simple_lan () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let t0 = World.now lan.world in
  let done_at = ref Time.zero in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> done_at := World.now lan.world);
  World.run_until_idle lan.world;
  let dt = !done_at - t0 in
  check_bool "> 50us" true (dt > Time.us 50);
  check_bool "< 1ms" true (dt < Time.ms 1)

(* ---------------------- packed demux key --------------------------- *)

module K = Stack.For_testing

let test_key_roundtrip_edges () =
  (* every corner of each field: intern id 0 / 0x7FFF, port 0 / 65535 *)
  List.iter
    (fun ((lid, lport, rid, rport) as tuple) ->
      let k = K.pack ~lid ~lport ~rid ~rport in
      check_bool "fits 62 bits" true (k >= 0 && k lsr 62 = 0);
      Alcotest.(check (pair (pair int int) (pair int int)))
        "round-trip"
        ((lid, lport), (rid, rport))
        (let a, b, c, d = K.unpack k in
         ((a, b), (c, d)));
      ignore tuple)
    [
      (0, 0, 0, 0);
      (0x7FFF, 65535, 0x7FFF, 65535);
      (0, 65535, 0x7FFF, 0);
      (0x7FFF, 0, 0, 65535);
      (1, 80, 2, 49152);
    ]

let test_key_collision_pairs () =
  (* tuples that collide under naive folds (sums, xors, mirrored roles)
     must pack to distinct keys *)
  let pairs =
    [
      (* mirrored local/remote *)
      ((1, 80, 2, 5000), (2, 5000, 1, 80));
      (* port/id bits swapped across fields *)
      ((1, 2, 3, 4), (2, 1, 4, 3));
      (* differ only in carry position between adjacent fields *)
      ((0, 65535, 0, 0), (1, 0, 0, 0));
      ((0, 0, 0, 65535), (0, 0, 1, 0));
      (* same xor-fold *)
      ((5, 5, 5, 5), (0, 0, 0, 0));
    ]
  in
  List.iter
    (fun ((a1, b1, c1, d1), (a2, b2, c2, d2)) ->
      let k1 = K.pack ~lid:a1 ~lport:b1 ~rid:c1 ~rport:d1 in
      let k2 = K.pack ~lid:a2 ~lport:b2 ~rid:c2 ~rport:d2 in
      check_bool "distinct keys" true (k1 <> k2);
      check_bool "hash deterministic" true (K.hash k1 = K.hash k1))
    pairs

let prop_key_injective =
  QCheck.Test.make ~name:"packed key is injective" ~count:300
    QCheck.(
      pair
        (pair (int_bound 0x7FFF) (int_bound 65535))
        (pair (int_bound 0x7FFF) (int_bound 65535)))
    (fun ((lid, lport), (rid, rport)) ->
      let k = K.pack ~lid ~lport ~rid ~rport in
      K.unpack k = (lid, lport, rid, rport) && K.hash k >= 0)

let test_key_of_matches_demux () =
  (* the key derived from endpoints is the one live traffic demuxes
     under, interning is stable, and the hit/miss counters move *)
  let lan = make_simple_lan () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let stack = Host.tcp lan.client in
  let c =
    Stack.connect stack ~remote:(Host.addr lan.server, 80) ()
  in
  World.run_until_idle lan.world;
  let local = Tcb.local_endpoint c and remote = Tcb.remote_endpoint c in
  (match Stack.find stack ~local ~remote with
  | Some tcb -> check_bool "find returns the connection" true (tcb == c)
  | None -> Alcotest.fail "packed-key find missed");
  let k1 = K.key_of stack ~local ~remote in
  let k2 = K.key_of stack ~local ~remote in
  check_int "key stable across interning" k1 k2;
  check_int "intern stable" (K.intern stack (fst local))
    (K.intern stack (fst local));
  let m = World.metrics lan.world in
  check_bool "demux hits counted" true
    (Tcpfo_obs.Registry.counter_value m "host.client.tcp.demux_hits" > 0);
  check_bool "server demux missed once (the SYN)" true
    (Tcpfo_obs.Registry.counter_value m "host.server.tcp.demux_misses" > 0)

let suite =
  [
    Alcotest.test_case "three-way handshake" `Quick test_handshake;
    Alcotest.test_case "MSS negotiation picks minimum" `Quick
      test_mss_negotiation;
    Alcotest.test_case "RST for closed port" `Quick test_rst_to_closed_port;
    Alcotest.test_case "small request/reply exchange" `Quick
      test_small_exchange;
    Alcotest.test_case "ephemeral ports distinct" `Quick
      test_connect_returns_distinct_ports;
    Alcotest.test_case "ISNs randomized" `Quick test_isn_randomized;
    Alcotest.test_case "SYN retransmits then gives up" `Quick
      test_syn_retransmission_no_listener_host_down;
    Alcotest.test_case "connection setup time plausible" `Quick
      test_connection_setup_time_plausible;
    Alcotest.test_case "packed key round-trip at edges" `Quick
      test_key_roundtrip_edges;
    Alcotest.test_case "packed key collision pairs" `Quick
      test_key_collision_pairs;
    Alcotest.test_case "packed key matches live demux" `Quick
      test_key_of_matches_demux;
    QCheck_alcotest.to_alcotest prop_key_injective;
  ]
