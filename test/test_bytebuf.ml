module Bytebuf = Tcpfo_util.Bytebuf

let test_push_capacity () =
  let b = Bytebuf.create ~capacity:10 in
  Testutil.check_int "accept all" 6 (Bytebuf.push b "abcdef");
  Testutil.check_int "partial" 4 (Bytebuf.push b "ghijkl");
  Testutil.check_int "full" 0 (Bytebuf.push b "x");
  Testutil.check_int "len" 10 (Bytebuf.length b)

let test_read_offsets () =
  let b = Bytebuf.create ~capacity:100 in
  ignore (Bytebuf.push b "hello");
  ignore (Bytebuf.push b " world");
  Testutil.check_string "across chunks" "lo wo" (Bytebuf.read b ~pos:3 ~len:5);
  Testutil.check_string "clip at end" "rld" (Bytebuf.read b ~pos:8 ~len:50)

let test_release () =
  let b = Bytebuf.create ~capacity:10 in
  ignore (Bytebuf.push b "0123456789");
  Bytebuf.release_to b ~pos:4;
  Testutil.check_int "start" 4 (Bytebuf.start_offset b);
  Testutil.check_int "free" 4 (Bytebuf.free b);
  Testutil.check_string "read after release" "4567" (Bytebuf.read b ~pos:4 ~len:4);
  Testutil.check_int "accept again" 4 (Bytebuf.push b "abcdef");
  Testutil.check_string "appended" "89ab" (Bytebuf.read b ~pos:8 ~len:4)

let test_release_mid_chunk () =
  let b = Bytebuf.create ~capacity:100 in
  ignore (Bytebuf.push b "abcdefgh");
  Bytebuf.release_to b ~pos:3;
  Bytebuf.release_to b ~pos:5;
  Testutil.check_string "tail" "fgh" (Bytebuf.read b ~pos:5 ~len:10);
  Bytebuf.release_to b ~pos:2 (* no-op backwards *);
  Testutil.check_int "start stable" 5 (Bytebuf.start_offset b)

let prop_fifo =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 50)))
  in
  QCheck.Test.make ~name:"pushed bytes read back in order" ~count:200
    (QCheck.make gen) (fun pieces ->
      let b = Bytebuf.create ~capacity:10_000 in
      let expected = Buffer.create 64 in
      List.iter
        (fun s ->
          let n = Bytebuf.push b s in
          Buffer.add_string expected (String.sub s 0 n))
        pieces;
      let total = Bytebuf.length b in
      Bytebuf.read b ~pos:0 ~len:total = Buffer.contents expected)

let prop_release_read_agree =
  let gen =
    QCheck.Gen.(
      let* pieces =
        list_size (int_range 1 10)
          (string_size ~gen:(char_range 'A' 'Z') (int_range 1 40))
      in
      let total = List.fold_left (fun a s -> a + String.length s) 0 pieces in
      let* rel = int_range 0 total in
      return (pieces, rel))
  in
  QCheck.Test.make ~name:"read after release matches suffix" ~count:200
    (QCheck.make gen) (fun (pieces, rel) ->
      let b = Bytebuf.create ~capacity:10_000 in
      List.iter (fun s -> ignore (Bytebuf.push b s)) pieces;
      let all = String.concat "" pieces in
      Bytebuf.release_to b ~pos:rel;
      let remaining = String.length all - rel in
      Bytebuf.read b ~pos:rel ~len:remaining
      = String.sub all rel remaining)

(* Locks in O(1)-amortized push/read/release.  The former chunk-list
   representation normalized (re-concatenated) the whole live window on
   every read, so this sliding-window pattern — exactly what a TCP send
   buffer does under a steady stream — was quadratic and took minutes at
   this size.  The ring representation runs it in well under a second;
   the bound is deliberately generous so slow CI machines never flake. *)
let test_sliding_window_amortized () =
  let iters = 50_000 in
  let window = 1 lsl 16 in
  let chunk = String.make 64 'p' in
  let b = Bytebuf.create ~capacity:window in
  let t0 = Sys.time () in
  let pushed = ref 0 in
  for _ = 1 to iters do
    pushed := !pushed + Bytebuf.push b chunk;
    let e = Bytebuf.end_offset b in
    ignore (Bytebuf.read b ~pos:(max (Bytebuf.start_offset b) (e - 32)) ~len:32);
    if Bytebuf.length b > window / 2 then
      Bytebuf.release_to b ~pos:(e - (window / 4))
  done;
  let dt = Sys.time () -. t0 in
  Testutil.check_int "offsets conserved" !pushed (Bytebuf.end_offset b);
  Alcotest.(check bool)
    (Printf.sprintf "sliding window stayed fast (%.2fs cpu)" dt)
    true (dt < 5.0)

(* Many push/release cycles over a tiny buffer force the ring head to wrap
   hundreds of times; the reassembled stream must equal what was pushed. *)
let test_wrap_stream_intact () =
  let b = Bytebuf.create ~capacity:100 in
  let sent = Buffer.create 4096 in
  let got = Buffer.create 4096 in
  let off = ref 0 in
  for i = 0 to 999 do
    let s =
      String.init (1 + (i mod 37)) (fun k -> Char.chr ((i + (3 * k)) land 0xFF))
    in
    let n = Bytebuf.push b s in
    Buffer.add_string sent (String.sub s 0 n);
    let len = (Bytebuf.length b / 2) + 1 in
    let piece = Bytebuf.read b ~pos:!off ~len in
    Buffer.add_string got piece;
    off := !off + String.length piece;
    Bytebuf.release_to b ~pos:!off
  done;
  Buffer.add_string got (Bytebuf.read b ~pos:!off ~len:(Bytebuf.length b));
  Testutil.check_string "wrapped stream intact" (Buffer.contents sent)
    (Buffer.contents got)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "capacity enforced" `Quick test_push_capacity;
    Alcotest.test_case "read spans chunks" `Quick test_read_offsets;
    Alcotest.test_case "release frees space" `Quick test_release;
    Alcotest.test_case "release mid-chunk" `Quick test_release_mid_chunk;
    Alcotest.test_case "sliding window amortized O(1)" `Quick
      test_sliding_window_amortized;
    Alcotest.test_case "ring wrap keeps stream intact" `Quick
      test_wrap_stream_intact;
    q prop_fifo;
    q prop_release_read_agree;
  ]
