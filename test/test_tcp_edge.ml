(* TCP corner cases: simultaneous open, listener lifecycle, RST
   generation, ephemeral wraparound, loopback sends. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ip_layer = Tcpfo_ip.Ip_layer
open Testutil

let test_simultaneous_open () =
  (* both ends actively connect to each other's fixed ports *)
  let lan = make_simple_lan () in
  let a =
    Stack.connect (Host.tcp lan.client) ~local_port:7001
      ~remote:(Host.addr lan.server, 7002)
      ()
  in
  let b =
    Stack.connect (Host.tcp lan.server) ~local_port:7002
      ~remote:(Host.addr lan.client, 7001)
      ()
  in
  let got_a = make_sink () and got_b = make_sink () in
  wire_sink got_a a;
  wire_sink got_b b;
  Tcb.set_on_established a (fun () -> ignore (Tcb.send a "from-a"));
  Tcb.set_on_established b (fun () -> ignore (Tcb.send b "from-b"));
  World.run lan.world ~for_:(Time.sec 30.0);
  check_bool "a established" true (Tcb.state a = Tcb.Established);
  check_bool "b established" true (Tcb.state b = Tcb.Established);
  check_string "a received" "from-b" (sink_contents got_a);
  check_string "b received" "from-a" (sink_contents got_b)

let test_unlisten_stops_accepting () =
  let lan = make_simple_lan () in
  let accepted = ref 0 in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ ->
      incr accepted);
  let c1 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  World.run lan.world ~for_:(Time.ms 50);
  check_int "first accepted" 1 !accepted;
  Stack.unlisten (Host.tcp lan.server) ~port:80;
  let c2 =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let s2 = make_sink () in
  wire_sink s2 c2;
  World.run lan.world ~for_:(Time.sec 5.0);
  check_int "no second accept" 1 !accepted;
  check_int "second connect refused" 1 s2.resets;
  (* the first connection is unaffected by unlisten *)
  check_bool "first conn alive" true (Tcb.state c1 = Tcb.Established);
  check_bool "server sent an RST" true
    (Tcpfo_obs.Registry.counter_value (World.metrics lan.world)
       "host.server.tcp.rst_sent"
    >= 1)

let test_rst_counted_for_stray_segment () =
  let lan = make_simple_lan () in
  (* inject a stray non-SYN segment at the server: it must answer RST *)
  let seg =
    Tcpfo_packet.Tcp_segment.make
      ~flags:{ Tcpfo_packet.Tcp_segment.no_flags with ack = true }
      ~ack:(Tcpfo_util.Seq32.of_int 77)
      ~src_port:5555 ~dst_port:4444
      ~seq:(Tcpfo_util.Seq32.of_int 42) ()
  in
  Ip_layer.send_tcp (Host.ip lan.client) ~src:(Host.addr lan.client)
    ~dst:(Host.addr lan.server) seg;
  World.run_until_idle lan.world;
  check_int "rst sent" 1
    (Tcpfo_obs.Registry.counter_value (World.metrics lan.world)
       "host.server.tcp.rst_sent")

let test_ephemeral_wraparound () =
  let lan = make_simple_lan () in
  let stack = Host.tcp lan.client in
  (* exhaust the allocator close to the top and watch it wrap *)
  let rec spin last n =
    if n = 0 then last else spin (Stack.fresh_port stack) (n - 1)
  in
  let _ = spin 0 (65535 - 49152 + 1) in
  let after_wrap = Stack.fresh_port stack in
  check_int "wrapped to base" 49152 after_wrap

let test_loopback_connection () =
  (* a host connecting to its own address never touches the wire *)
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string ssink.buf d;
          ignore (Tcb.send tcb "pong")));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.server) ~remote:(Host.addr lan.server, 80) ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  World.run lan.world ~for_:(Time.sec 5.0);
  check_string "loopback request" "ping" (sink_contents ssink);
  check_string "loopback reply" "pong" (sink_contents csink)

let test_connect_duplicate_tuple_rejected () =
  let lan = make_simple_lan () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let _a =
    Stack.connect (Host.tcp lan.client) ~local_port:6000
      ~remote:(Host.addr lan.server, 80)
      ()
  in
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Stack.connect: connection already exists") (fun () ->
      ignore
        (Stack.connect (Host.tcp lan.client) ~local_port:6000
           ~remote:(Host.addr lan.server, 80)
           ()))

let test_connect_bad_source_rejected () =
  let lan = make_simple_lan () in
  Alcotest.check_raises "foreign source rejected"
    (Invalid_argument "Stack.connect: source address not local") (fun () ->
      ignore
        (Stack.connect (Host.tcp lan.client)
           ~local:(Tcpfo_packet.Ipaddr.of_string "9.9.9.9")
           ~remote:(Host.addr lan.server, 80)
           ()))

let suite =
  [
    Alcotest.test_case "simultaneous open" `Quick test_simultaneous_open;
    Alcotest.test_case "unlisten stops accepting" `Quick
      test_unlisten_stops_accepting;
    Alcotest.test_case "stray segment answered with RST" `Quick
      test_rst_counted_for_stray_segment;
    Alcotest.test_case "ephemeral port wraparound" `Quick
      test_ephemeral_wraparound;
    Alcotest.test_case "loopback connection" `Quick test_loopback_connection;
    Alcotest.test_case "duplicate 4-tuple rejected" `Quick
      test_connect_duplicate_tuple_rejected;
    Alcotest.test_case "foreign source rejected" `Quick
      test_connect_bad_source_rejected;
  ]

(* ---------------- congestion dynamics ---------------- *)

(* Watch the sender's flight size grow on a high-BDP path: slow start
   doubles per RTT until loss or the advertised window caps it. *)
let test_slow_start_growth () =
  let world = World.create () in
  let link =
    Tcpfo_net.Link.create (World.engine world) ~rng:(World.fresh_rng world)
      { Tcpfo_net.Link.default_config with bandwidth_bps = 100_000_000;
        delay = Time.ms 50; queue_capacity = 4096 }
  in
  let a =
    Host.create (World.engine world) ~name:"a" ~rng:(World.fresh_rng world) ()
  in
  Host.attach_ptp a (Tcpfo_net.Link.endpoint_a link)
    ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.1");
  let b =
    Host.create (World.engine world) ~name:"b" ~rng:(World.fresh_rng world) ()
  in
  Host.attach_ptp b (Tcpfo_net.Link.endpoint_b link)
    ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.2");
  Stack.listen (Host.tcp b) ~port:80 ~on_accept:(fun _ -> ());
  let c = Stack.connect (Host.tcp a) ~remote:(Host.addr b, 80) () in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:50 300_000));
  (* sample flight size at ~1.5 RTT intervals: it must grow markedly *)
  let samples = ref [] in
  let rec sample n =
    if n > 0 then
      ignore
        ((Host.clock a).schedule (Time.ms 110) (fun () ->
             samples :=
               Tcpfo_util.Seq32.diff (Tcb.snd_nxt c) (Tcb.snd_una c)
               :: !samples;
             sample (n - 1)))
  in
  Tcb.set_on_established c (fun () ->
      send_all c (pattern ~tag:50 300_000);
      sample 4);
  World.run world ~for_:(Time.sec 30.0);
  match List.rev !samples with
  | s1 :: rest ->
    let smax = List.fold_left max s1 rest in
    check_bool
      (Printf.sprintf "flight grew (first=%d max=%d)" s1 smax)
      true
      (float_of_int smax >= 2.5 *. float_of_int (max s1 1460))
  | [] -> Alcotest.fail "no samples"

let test_cwnd_collapse_on_timeout () =
  (* after an RTO the in-flight data must shrink to about one segment *)
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  (* blackhole the server for a while mid-transfer, then restore *)
  let blackhole = ref false in
  let inner = Ip_layer.rx_hook (Host.ip lan.server) in
  Ip_layer.set_rx_hook (Host.ip lan.server)
    (Some
       (fun pkt ~link_addressed ->
         if !blackhole then Ip_layer.Rx_drop
         else
           match inner with
           | None -> Ip_layer.Rx_pass pkt
           | Some h -> h pkt ~link_addressed));
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:51 400_000));
  ignore
    ((Host.clock lan.client).schedule (Time.ms 10) (fun () ->
         blackhole := true));
  ignore
    ((Host.clock lan.client).schedule (Time.ms 600) (fun () ->
         blackhole := false));
  (* sample flight just after the first RTO fires (~210-400ms) *)
  let flight_after_rto = ref (-1) in
  ignore
    ((Host.clock lan.client).schedule (Time.ms 450) (fun () ->
         flight_after_rto :=
           Tcpfo_util.Seq32.diff (Tcb.snd_nxt c) (Tcb.snd_una c)));
  World.run lan.world ~for_:(Time.sec 60.0);
  check_bool
    (Printf.sprintf "flight collapsed to ~1 MSS (%d)" !flight_after_rto)
    true
    (!flight_after_rto >= 0 && !flight_after_rto <= 2 * 1460);
  check_string "transfer still completes" (pattern ~tag:51 400_000)
    (sink_contents ssink)

let suite =
  suite
  @ [
      Alcotest.test_case "slow start grows the flight" `Quick
        test_slow_start_growth;
      Alcotest.test_case "cwnd collapses after RTO" `Quick
        test_cwnd_collapse_on_timeout;
    ]
