(* Tests for the Topo DSL: spec validation, the line parser, World-level
   duplicate-binding rejection, and the determinism contract — a
   Topo-built world must be byte-identical (metrics and all) to the
   equivalent hand-wired World calls. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Registry = Tcpfo_obs.Registry
open Testutil

let is_error = function Error _ -> true | Ok _ -> false

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let lan_pair_spec =
  [
    Topo.segment "lan";
    Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client";
    Topo.host ~addr:"10.0.0.1" ~seg:"lan" "server";
  ]

let test_validate_ok () =
  check_bool "plain LAN spec valid" true (Topo.validate lan_pair_spec = Ok ());
  let with_group =
    lan_pair_spec
    @ [
        Topo.host ~addr:"10.0.0.2" ~seg:"lan" "spare";
        Topo.group ~members:[ "server"; "spare" ] "pool";
      ]
  in
  check_bool "grouped spec valid" true (Topo.validate with_group = Ok ())

let test_validate_rejects () =
  let bad what spec =
    check_bool (what ^ " rejected") true (is_error (Topo.validate spec))
  in
  bad "duplicate host name"
    (lan_pair_spec @ [ Topo.host ~addr:"10.0.0.3" ~seg:"lan" "server" ]);
  bad "unknown segment"
    [ Topo.segment "lan"; Topo.host ~addr:"10.0.0.1" ~seg:"wrong" "a" ];
  bad "segment declared after its host"
    [ Topo.host ~addr:"10.0.0.1" ~seg:"lan" "a"; Topo.segment "lan" ];
  bad "duplicate IP on one segment"
    (lan_pair_spec @ [ Topo.host ~addr:"10.0.0.1" ~seg:"lan" "twin" ]);
  bad "malformed address"
    [ Topo.segment "lan"; Topo.host ~addr:"not-an-ip" ~seg:"lan" "a" ];
  bad "group of one"
    (lan_pair_spec @ [ Topo.group ~members:[ "server" ] "pool" ]);
  bad "group with unknown member"
    (lan_pair_spec @ [ Topo.group ~members:[ "server"; "ghost" ] "pool" ]);
  bad "group spanning segments"
    ([
       Topo.segment "a";
       Topo.segment "b";
       Topo.host ~addr:"10.0.0.1" ~seg:"a" "x";
       Topo.host ~addr:"10.1.0.1" ~seg:"b" "y";
     ]
    @ [ Topo.group ~members:[ "x"; "y" ] "pool" ]);
  bad "dangling link (no endpoints)"
    (lan_pair_spec @ [ Topo.link "wan" ]);
  bad "wan host on unknown link"
    (lan_pair_spec @ [ Topo.wan_host ~addr:"192.168.0.2" ~link:"wan" "c" ])

(* Validation failures must NAME the offending declaration so a fat
   fleet spec pinpoints its own typo. *)
let expect_error_naming what needle spec =
  match Topo.validate spec with
  | Ok () -> Alcotest.fail (what ^ ": expected a validation error")
  | Error msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    check_bool
      (Printf.sprintf "%s: error %S names %S" what msg needle)
      true (contains needle)

let fleet_spec =
  [
    Topo.segment "front";
    Topo.segment "back";
    Topo.host ~addr:"10.1.0.10" ~seg:"front" "client";
    Topo.host ~addr:"10.0.0.1" ~seg:"back" "s0a";
    Topo.host ~addr:"10.0.0.2" ~seg:"back" "s0b";
    Topo.host ~addr:"10.0.0.3" ~seg:"back" "s1a";
    Topo.host ~addr:"10.0.0.4" ~seg:"back" "s1b";
    Topo.group ~members:[ "s0a"; "s0b" ] "shard0";
    Topo.group ~members:[ "s1a"; "s1b" ] "shard1";
  ]

let test_validate_service_dispatch () =
  let ok =
    fleet_spec
    @ [
        Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.254"
          ~shards:[ "shard0"; "shard1" ] "disp";
      ]
  in
  check_bool "fleet spec valid" true (Topo.validate ok = Ok ());
  let svc = Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet" in
  expect_error_naming "duplicate service" "\"fleet\""
    (fleet_spec @ [ svc; Topo.service ~seg:"front" ~addr:"10.1.0.2" "fleet" ]);
  expect_error_naming "service on unknown segment" "\"lost\""
    (fleet_spec @ [ Topo.service ~seg:"ghost" ~addr:"10.1.0.1" "lost" ]);
  expect_error_naming "dispatch without service" "\"disp\""
    (fleet_spec
    @ [ Topo.dispatch ~service:"ghost" ~back:"10.0.0.254"
          ~shards:[ "shard0" ] "disp" ]);
  expect_error_naming "dispatch with unknown shard" "\"disp\""
    (fleet_spec
    @ [ svc;
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.254"
          ~shards:[ "shard0"; "ghost" ] "disp" ]);
  expect_error_naming "dispatch listing a shard twice" "\"shard0\""
    (fleet_spec
    @ [ svc;
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.254"
          ~shards:[ "shard0"; "shard0" ] "disp" ]);
  expect_error_naming "dispatch with shards on the front wire" "\"disp\""
    ([
       Topo.segment "front";
       Topo.host ~addr:"10.1.0.2" ~seg:"front" "a";
       Topo.host ~addr:"10.1.0.3" ~seg:"front" "b";
       Topo.group ~members:[ "a"; "b" ] "shard0";
       Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
     ]
    @ [ Topo.dispatch ~service:"fleet" ~back:"10.1.0.254"
          ~shards:[ "shard0" ] "disp" ]);
  expect_error_naming "two dispatchers on one service" "\"fleet\""
    (fleet_spec
    @ [ svc;
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.254"
          ~shards:[ "shard0" ] "disp1";
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.253"
          ~shards:[ "shard1" ] "disp2";
      ])

let test_group_duplicate_member_rejected () =
  expect_error_naming "group listing a member twice" "\"server\""
    (lan_pair_spec @ [ Topo.group ~members:[ "server"; "server" ] "pool" ])

let test_parse_service_dispatch () =
  let text =
    "lan front\n\
     lan back\n\
     host client 10.1.0.10 front\n\
     host s0a 10.0.0.1 back gw=10.0.0.254\n\
     host s0b 10.0.0.2 back gw=10.0.0.254\n\
     group shard0 s0a s0b\n\
     service fleet 10.1.0.1 front\n\
     dispatch disp shard0 service=fleet back=10.0.0.254\n"
  in
  (match Topo.parse text with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok spec ->
    check_bool "parsed fleet spec valid" true (Topo.validate spec = Ok ()));
  check_bool "dispatch without service= rejected" true
    (is_error (Topo.parse "dispatch disp shard0 back=10.0.0.254\n"));
  check_bool "dispatch without back= rejected" true
    (is_error (Topo.parse "dispatch disp shard0 service=fleet\n"));
  check_bool "dispatch without shards rejected" true
    (is_error (Topo.parse "dispatch disp service=fleet back=10.0.0.254\n"));
  check_bool "truncated service line rejected" true
    (is_error (Topo.parse "service fleet 10.1.0.1\n"))

let test_build_raises_on_invalid () =
  expect_invalid "duplicate IP" (fun () ->
      let world = World.create () in
      Topo.build world
        (lan_pair_spec @ [ Topo.host ~addr:"10.0.0.1" ~seg:"lan" "twin" ]))

(* The World-level backstop behind the validator: hand-wired duplicate
   bindings on one segment are rejected too, while the same address on
   DIFFERENT segments is fine. *)
let test_world_rejects_duplicate_bindings () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let _a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  expect_invalid "same IP on same segment" (fun () ->
      World.add_host world lan ~name:"b" ~addr:"10.0.0.1" ());
  let other = World.make_lan world () in
  let _c = World.add_host world other ~name:"c" ~addr:"10.0.0.1" () in
  ()

let test_parse_ok () =
  let text =
    "# LAN testbed\n\
     lan net\n\
     host client 10.0.0.10 net\n\
     host primary 10.0.0.1 net\n\
     host secondary 10.0.0.2 net\n\
     group pool primary secondary\n"
  in
  match Topo.parse text with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok spec -> check_bool "parsed spec valid" true (Topo.validate spec = Ok ())

let test_parse_wan_ok () =
  let text =
    "lan net\n\
     link wan bw=2000000 delay=15ms jitter=3ms loss=0.002\n\
     host server 10.0.0.1 net gw=10.0.0.254\n\
     router rt net 10.0.0.254 wan 192.168.0.1\n\
     wanhost client 192.168.0.2 wan\n"
  in
  match Topo.parse text with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok spec -> check_bool "parsed WAN spec valid" true (Topo.validate spec = Ok ())

let test_parse_rejects_garbage () =
  check_bool "unknown keyword rejected" true (is_error (Topo.parse "frob x y\n"));
  check_bool "truncated host line rejected" true
    (is_error (Topo.parse "lan net\nhost a\n"))

(* An identical echo workload driven over a Topo-built world and over the
   equivalent hand-wired World calls: the streams AND the full metrics
   registry must come out byte-identical, proving Topo draws RNG state
   and MACs in exactly the declared order. *)
let run_workload world ~client ~server =
  Stack.listen (Host.tcp server) ~port:7777 ~on_accept:(fun tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb d));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let sink = make_sink () in
  let c =
    Stack.connect (Host.tcp client) ~remote:(Host.addr server, 7777) ()
  in
  wire_sink sink c;
  Tcb.set_on_established c (fun () ->
      send_all ~close:true c (pattern ~tag:3 2000));
  World.run world ~for_:(Time.sec 2.0);
  sink

let test_build_matches_hand_wired () =
  let seed = 7 in
  let hand = World.create ~seed () in
  let lan = World.make_lan hand () in
  let h_client = World.add_host hand lan ~name:"client" ~addr:"10.0.0.10" () in
  let h_server = World.add_host hand lan ~name:"server" ~addr:"10.0.0.1" () in
  World.warm_arp [ h_client; h_server ];
  let s1 = run_workload hand ~client:h_client ~server:h_server in
  let topo_world = World.create ~seed () in
  let topo = Topo.build topo_world lan_pair_spec in
  let s2 =
    run_workload topo_world
      ~client:(Topo.host_of topo "client")
      ~server:(Topo.host_of topo "server")
  in
  check_string "echoed stream identical" (sink_contents s1) (sink_contents s2);
  check_string "metrics byte-identical"
    (Registry.to_json (World.metrics hand))
    (Registry.to_json (World.metrics topo_world))

(* group_of is the promotion order: members come back exactly as
   declared (first = active primary, second = active secondary, rest
   standbys in promotion priority), not sorted or registration-hashed. *)
let test_group_promotion_order () =
  let world = World.create () in
  let spec =
    [
      Topo.segment "lan";
      Topo.host ~addr:"10.0.0.1" ~seg:"lan" "alpha";
      Topo.host ~addr:"10.0.0.2" ~seg:"lan" "beta";
      Topo.host ~addr:"10.0.0.3" ~seg:"lan" "gamma";
      Topo.group ~members:[ "beta"; "gamma"; "alpha" ] "pool";
    ]
  in
  let topo = Topo.build world spec in
  Alcotest.(check (list string))
    "members in declared promotion order"
    [ "beta"; "gamma"; "alpha" ]
    (List.map Host.name (Topo.group_of topo "pool"))

let test_accessors_and_table () =
  let world = World.create () in
  let spec =
    lan_pair_spec @ [ Topo.group ~members:[ "client"; "server" ] "pair" ]
  in
  let topo = Topo.build world spec in
  check_int "hosts listed" 2 (List.length (Topo.hosts topo));
  check_int "group resolved in order" 2
    (List.length (Topo.group_of topo "pair"));
  check_string "group head is first member" "client"
    (Host.name (List.hd (Topo.group_of topo "pair")));
  expect_invalid "unknown host accessor" (fun () -> Topo.host_of topo "ghost");
  let table = Topo.to_table topo in
  let contains needle =
    let nl = String.length needle and hl = String.length table in
    let rec go i =
      i + nl <= hl && (String.sub table i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "table mentions every host" true
    (List.for_all contains [ "client"; "server"; "10.0.0.10" ])

let suite =
  [
    Alcotest.test_case "validate accepts good specs" `Quick test_validate_ok;
    Alcotest.test_case "validate rejects bad specs" `Quick test_validate_rejects;
    Alcotest.test_case "validate service/dispatch declarations" `Quick
      test_validate_service_dispatch;
    Alcotest.test_case "group duplicate member rejected" `Quick
      test_group_duplicate_member_rejected;
    Alcotest.test_case "parse service/dispatch lines" `Quick
      test_parse_service_dispatch;
    Alcotest.test_case "group_of preserves promotion order" `Quick
      test_group_promotion_order;
    Alcotest.test_case "build raises on invalid spec" `Quick
      test_build_raises_on_invalid;
    Alcotest.test_case "world rejects duplicate bindings" `Quick
      test_world_rejects_duplicate_bindings;
    Alcotest.test_case "parse accepts LAN text" `Quick test_parse_ok;
    Alcotest.test_case "parse accepts WAN text" `Quick test_parse_wan_ok;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
    Alcotest.test_case "build matches hand-wired world byte-for-byte" `Quick
      test_build_matches_hand_wired;
    Alcotest.test_case "accessors and table" `Quick test_accessors_and_table;
  ]
