(* Regression tests for the heartbeat fault detector: peer filtering on a
   shared segment and the detection-latency bound. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Heartbeat = Tcpfo_core.Heartbeat
module Failover_config = Tcpfo_core.Failover_config
open Testutil

let period = Time.ms 10
let timeout = Time.ms 30

let hb_config =
  Failover_config.make ~heartbeat_period:period ~detector_timeout:timeout ()

(* Three replicas on one LAN: [a] watches [b], while bystander [c] beats
   toward [a] the whole time.  The detector must not mistake c's beats
   for signs of life from b — an origin-based filter (anything not from
   myself) does exactly that and never notices b dying. *)
let test_bystander_does_not_mask_dead_peer () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  let c = World.add_host world lan ~name:"c" ~addr:"10.0.0.3" () in
  World.warm_arp [ a; b; c ];
  let detected_at = ref None in
  let _ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> detected_at := Some (World.now world))
  in
  let _hb =
    Heartbeat.start b ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> ())
  in
  (* c beats toward a with the same role b has, so only the source-address
     check tells them apart *)
  let _hc =
    Heartbeat.start c ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> ())
  in
  World.run world ~for_:(Time.ms 200);
  Host.kill b;
  let kill_time = World.now world in
  World.run world ~for_:(Time.sec 2.0);
  (match !detected_at with
  | None -> Alcotest.fail "b's death masked by bystander heartbeats"
  | Some t ->
    check_bool "detected within bound" true
      (t - kill_time <= timeout + (2 * period) + Time.ms 1));
  (* c kept beating throughout; its beats reached a but must not have
     been credited to b *)
  let received host =
    Tcpfo_obs.Registry.counter_value (World.metrics world)
      (Printf.sprintf "host.%s.heartbeat.received" host)
  in
  check_bool "a counted only b's beats" true (received "a" <= 21)

(* Worst-case detection latency: kill the peer immediately after a beat
   arrived, so the detector has to ride out the longest possible silence.
   The deadline-driven check must fire by [timeout + 2 x period] (the
   beat expected one period after the last arrival, [timeout] overdue,
   plus sub-period delivery slack) — a fixed-period poll that re-arms a
   full timeout can take nearly [2 x timeout + period]. *)
let test_detection_latency_bound () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  World.warm_arp [ a; b ];
  let detected_at = ref None in
  let _ha =
    Heartbeat.start a ~peer:(Host.addr b) ~role:`Primary ~config:hb_config
      ~on_peer_failure:(fun () -> detected_at := Some (World.now world))
  in
  let _hb =
    Heartbeat.start b ~peer:(Host.addr a) ~role:`Secondary ~config:hb_config
      ~on_peer_failure:(fun () -> ())
  in
  (* stop just past a beat emission (beats go out at multiples of the
     period), then kill: the silence window starts at its maximum *)
  World.run world ~for_:(Time.ms 201);
  Host.kill b;
  let kill_time = World.now world in
  World.run world ~for_:(Time.sec 2.0);
  match !detected_at with
  | None -> Alcotest.fail "failure never detected"
  | Some t ->
    let latency = t - kill_time in
    check_bool "waited out the timeout" true (latency >= timeout - period);
    check_bool "fired within timeout + 2 periods" true
      (latency <= timeout + (2 * period))

module Replicated = Tcpfo_core.Replicated

(* Reintegration must re-arm the detector on BOTH hosts: after a fresh
   host replaces a dead secondary, killing the newcomer has to be
   detected just like the original death was — and the same holds in the
   promoted direction after a primary death. *)
let test_detector_rearmed_after_reintegration () =
  let run_case ~first_victim =
    let world = World.create () in
    let lan = World.make_lan world () in
    let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
    let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
    World.warm_arp [ a; b ];
    let repl = Replicated.create ~primary:a ~secondary:b ~config:hb_config () in
    let detections = ref 0 in
    Replicated.set_on_event repl (function
      | Replicated.Primary_failure_detected
      | Replicated.Secondary_failure_detected -> incr detections
      | _ -> ());
    World.run world ~for_:(Time.ms 100);
    (match first_victim with
    | `Primary -> Replicated.kill_primary repl
    | `Secondary -> Replicated.kill_secondary repl);
    World.run world ~for_:(Time.sec 1.0);
    check_int "first death detected" 1 !detections;
    let fresh = World.add_host world lan ~name:"fresh" ~addr:"10.0.0.3" () in
    let survivor = match first_victim with `Primary -> b | `Secondary -> a in
    World.warm_arp [ survivor; fresh ];
    Replicated.reintegrate repl ~secondary:fresh;
    check_bool "pair healthy again" true (Replicated.status repl = `Normal);
    (* let the new watchers exchange a few beats, then kill the newcomer:
       the re-armed detector on the survivor must notice *)
    World.run world ~for_:(Time.ms 200);
    check_int "no spurious detection after reintegration" 1 !detections;
    Replicated.kill_secondary repl;
    World.run world ~for_:(Time.sec 1.0);
    check_int "newcomer's death detected by re-armed watcher" 2 !detections;
    check_bool "status reflects the second death" true
      (Replicated.status repl = `Secondary_failed)
  in
  run_case ~first_victim:`Secondary;
  run_case ~first_victim:`Primary

let suite =
  [
    Alcotest.test_case "bystander does not mask dead peer" `Quick
      test_bystander_does_not_mask_dead_peer;
    Alcotest.test_case "detection latency bound" `Quick
      test_detection_latency_bound;
    Alcotest.test_case "detector re-armed after reintegration" `Quick
      test_detector_rearmed_after_reintegration;
  ]
