(* Tier-1 subset of the E10 soak sweep: a fixed handful of seeded fault
   scenarios run end to end with every invariant checked, plus the
   seed-replay determinism guarantee.  The full sweep lives in
   bench/exp_soak.ml (bench/main.exe --exp soak). *)

module Soak = Tcpfo_fault.Soak
open Testutil

let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_invariants_hold () =
  List.iter
    (fun seed ->
      let o = Soak.run (Soak.scenario_of_seed seed) in
      Alcotest.(check (list string))
        (Soak.describe o.Soak.scenario)
        [] o.Soak.violations)
    seeds

(* The scenario space must stay covered as seeds are drawn: the fixed
   set above exercises kills of both replicas plus a no-kill control. *)
let test_seed_set_covers_victims () =
  let victims =
    List.map (fun s -> (Soak.scenario_of_seed s).Soak.victim) seeds
  in
  check_bool "kills a primary" true (List.mem Soak.Primary victims);
  check_bool "kills a secondary" true (List.mem Soak.Secondary victims);
  check_bool "has a no-kill control" true (List.mem Soak.Nobody victims)

(* The pool axis must actually be drawn within the CI seed range, in
   both variants, and those scenarios must run clean: a 3-replica pool
   surviving a cascading double kill, with and without a rejoin between
   the kills. *)
let test_pool_axis_covered () =
  let pool_seeds variant =
    List.filter
      (fun s -> (Soak.scenario_of_seed s).Soak.pool = variant)
      (List.init 60 (fun i -> i + 1))
  in
  let plain = pool_seeds (Soak.Pool3 { rejoin_first = false }) in
  let rejoin = pool_seeds (Soak.Pool3 { rejoin_first = true }) in
  check_bool "seeds 1-60 draw pool3" true (plain <> []);
  check_bool "seeds 1-60 draw pool3+rejoin" true (rejoin <> []);
  List.iter
    (fun seed ->
      let o = Soak.run (Soak.scenario_of_seed seed) in
      Alcotest.(check (list string))
        (Soak.describe o.Soak.scenario)
        [] o.Soak.violations)
    [ List.hd plain; List.hd rejoin ]

(* The newest axis: the CI seed range must draw all three service
   roles — classic server, §7.2 backend-client, and the three-tier
   chain — and the first scenario of each new role must run clean. *)
let test_role_axis_covered () =
  let role_seeds r =
    List.filter
      (fun s -> (Soak.scenario_of_seed s).Soak.role = r)
      (List.init 60 (fun i -> i + 1))
  in
  let server = role_seeds Soak.Server in
  let backend = role_seeds Soak.Backend_client in
  let chain = role_seeds Soak.Chain3 in
  check_bool "seeds 1-60 draw the server role" true (server <> []);
  check_bool "seeds 1-60 draw the backend-client role" true (backend <> []);
  check_bool "seeds 1-60 draw the chain role" true (chain <> []);
  List.iter
    (fun seed ->
      let o = Soak.run (Soak.scenario_of_seed seed) in
      Alcotest.(check (list string))
        (Soak.describe o.Soak.scenario)
        [] o.Soak.violations)
    [ List.hd backend; List.hd chain ]

(* The fleet axis: the CI seed range must draw fleet scenarios, the
   first kill-bearing one must run clean, and the forcing rules must
   hold everywhere — fleet only rides the plain pair/server shape. *)
let test_fleet_axis_covered () =
  let all = List.init 200 (fun i -> Soak.scenario_of_seed (i + 1)) in
  List.iter
    (fun (sc : Soak.scenario) ->
      if sc.Soak.fleet then
        check_bool
          (Printf.sprintf "seed %d: fleet forced onto pair/server/no-cross"
             sc.Soak.seed)
          true
          (sc.Soak.pool = Soak.Pair && sc.Soak.role = Soak.Server
          && sc.Soak.chaos <> Soak.Cross_traffic))
    all;
  let fleet_kills =
    List.filter
      (fun (sc : Soak.scenario) -> sc.Soak.fleet && sc.Soak.victim <> Soak.Nobody)
      all
  in
  check_bool "seeds 1-200 draw a fleet kill" true (fleet_kills <> []);
  let o = Soak.run (List.hd fleet_kills) in
  Alcotest.(check (list string))
    (Soak.describe o.Soak.scenario)
    [] o.Soak.violations

(* The checkpointed-connection axis: the CI seed range must draw it,
   its forcing rules must hold everywhere (only server-role pair/pool
   worlds where a transfer happens, never fleet or cross traffic), and
   the first such scenario — a long-lived checkpointing connection
   surviving a repair under a tight retention budget — must run
   clean. *)
let test_checkpoint_axis_covered () =
  let all = List.init 200 (fun i -> Soak.scenario_of_seed (i + 1)) in
  List.iter
    (fun (sc : Soak.scenario) ->
      if sc.Soak.checkpointed then
        check_bool
          (Printf.sprintf
             "seed %d: checkpoint axis forced onto transfer-bearing \
              server worlds"
             sc.Soak.seed)
          true
          (sc.Soak.role = Soak.Server && (not sc.Soak.fleet)
          && sc.Soak.chaos <> Soak.Cross_traffic
          && (sc.Soak.repair <> Soak.No_repair || sc.Soak.pool <> Soak.Pair)))
    all;
  let ckpts =
    List.filter (fun (sc : Soak.scenario) -> sc.Soak.checkpointed) all
  in
  check_bool "seeds 1-200 draw a checkpointed scenario" true (ckpts <> []);
  let o = Soak.run (List.hd ckpts) in
  Alcotest.(check (list string))
    (Soak.describe o.Soak.scenario)
    [] o.Soak.violations

let test_replay_is_byte_identical () =
  let sc = Soak.scenario_of_seed 5 in
  let a = Soak.run sc in
  let b = Soak.run sc in
  check_string "metrics snapshots identical across replays" a.Soak.metrics
    b.Soak.metrics

let suite =
  [
    Alcotest.test_case "invariants hold on the fixed seed set" `Quick
      test_invariants_hold;
    Alcotest.test_case "seed set covers both victims" `Quick
      test_seed_set_covers_victims;
    Alcotest.test_case "pool axis covered and clean" `Quick
      test_pool_axis_covered;
    Alcotest.test_case "role axis covered and clean" `Quick
      test_role_axis_covered;
    Alcotest.test_case "fleet axis covered and clean" `Quick
      test_fleet_axis_covered;
    Alcotest.test_case "checkpoint axis covered and clean" `Quick
      test_checkpoint_axis_covered;
    Alcotest.test_case "seed replay byte-identical" `Quick
      test_replay_is_byte_identical;
  ]
