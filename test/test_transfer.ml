(* The streaming hot-state-transfer protocol (lib/statex Transfer):
   chunking under the MSS bound, reassembly under duplication and
   reordering, resume across a partition, the bounded retry budget, the
   input-retention budget, and the repair-time ARP hygiene the transfer
   path depends on. *)

open Testutil
module Ipaddr = Tcpfo_packet.Ipaddr
module Eth_frame = Tcpfo_packet.Eth_frame
module Capture = Tcpfo_net.Capture
module Transfer = Tcpfo_statex.Transfer
module Snapshot = Tcpfo_statex.Snapshot
module Seq32 = Tcpfo_util.Seq32
module Tcp_config = Tcpfo_tcp.Tcp_config
module Registry = Tcpfo_obs.Registry
module Soak = Tcpfo_fault.Soak

let counter world name = Registry.counter_value (World.metrics world) name

(* A transferable connection image whose encoded size we can steer via
   the send-buffer payload. *)
let mk_conn ?(size = 8_000) () =
  let iss = Seq32.of_int 1000 in
  {
    Snapshot.tcb =
      {
        Tcb.sn_state = Tcb.Established;
        sn_local = (Ipaddr.of_string "10.0.0.1", 80);
        sn_remote = (Ipaddr.of_string "10.0.0.10", 4000);
        sn_iss = iss;
        sn_sndbuf_start = 0;
        sn_sndbuf_data = pattern ~tag:9 size;
        sn_snd_una = iss;
        sn_snd_max = iss;
        sn_snd_wnd = 65535;
        sn_snd_wl1 = Seq32.zero;
        sn_snd_wl2 = Seq32.zero;
        sn_peer_mss = 1460;
        sn_snd_wscale = 0;
        sn_rcv_wscale = 0;
        sn_ts_on = false;
        sn_ts_recent = 0;
        sn_sack_on = false;
        sn_sack_ranges = [];
        sn_fin_queued = false;
        sn_fin_sent = false;
        sn_irs = Seq32.zero;
        sn_rcv_nxt = Seq32.zero;
        sn_reasm = [];
        sn_rcv_fin = None;
        sn_eof_signalled = false;
        sn_srtt = None;
        sn_rttvar = 0.0;
        sn_rto_base = Time.sec 1.0;
        sn_rto_shift = 0;
        sn_cwnd = 2920;
        sn_ssthresh = 1 lsl 30;
        sn_retained_input = [];
        sn_replay_base = 0;
      };
    role = `Server;
    delta = 0;
    next_wire_seq = iss;
    held_segments = 0;
    solo = false;
  }

(* Two plain hosts with a Transfer endpoint each; the receiver records
   every conn its installer is handed.  The medium is exposed so tests
   can capture the control channel. *)
type xfer_pair = {
  xworld : World.t;
  xmedium : Tcpfo_net.Medium.t;
  ha : Host.t;
  hb : Host.t;
  xa : Transfer.t;
  xb : Transfer.t;
  installed : Snapshot.conn list ref;
}

let mk_pair () =
  let xworld = World.create () in
  let xmedium = World.make_lan xworld () in
  let ha = World.add_host xworld xmedium ~name:"a" ~addr:"10.0.0.1" () in
  let hb = World.add_host xworld xmedium ~name:"b" ~addr:"10.0.0.2" () in
  World.warm_arp [ ha; hb ];
  let xa = Transfer.attach ha in
  let xb = Transfer.attach hb in
  let installed = ref [] in
  Transfer.set_installer xb (fun ~src:_ conn ->
      installed := conn :: !installed;
      Ok ());
  { xworld; xmedium; ha; hb; xa; xb; installed }

let statex_capture p =
  Capture.start (World.engine p.xworld) p.xmedium
    ~filter:(fun f ->
      match f.Eth_frame.payload with
      | Eth_frame.Ip { Ipv4_packet.payload = Ipv4_packet.Raw { proto; _ }; _ }
        ->
        proto = Transfer.proto
      | _ -> false)
    ()

let raw_sizes cap =
  List.filter_map
    (fun { Capture.frame; _ } ->
      match frame.Eth_frame.payload with
      | Eth_frame.Ip { Ipv4_packet.payload = Ipv4_packet.Raw { data; _ }; _ }
        ->
        Some (String.length data)
      | _ -> None)
    (Capture.records cap)

(* -- chunking ----------------------------------------------------------- *)

let test_chunked_within_mss () =
  let p = mk_pair () in
  let cap = statex_capture p in
  let conn = mk_conn ~size:8_000 () in
  let payload_len = String.length (Snapshot.encode conn) in
  let result = ref None in
  Transfer.offer p.xa ~dst:(Host.addr p.hb) conn ~on_result:(fun r ->
      result := Some r);
  World.run_until_idle p.xworld;
  check_bool "transfer accepted" true (!result = Some (Ok ()));
  check_int "installed exactly once" 1 (List.length !(p.installed));
  check_bool "installed image matches the offered one" true
    (!(p.installed) = [ conn ]);
  let sizes = raw_sizes cap in
  check_bool "snapshot crossed in several installments" true
    (payload_len > Transfer.max_datagram_bytes && List.length sizes > 2);
  List.iter
    (fun n ->
      if n > Transfer.max_datagram_bytes then
        Alcotest.failf "transfer datagram of %d B exceeds the MSS bound" n)
    sizes;
  let stats = Transfer.stats p.xa in
  check_int "no retransmissions on a clean LAN" 0
    stats.Transfer.chunk_retransmits;
  check_int "no timeouts" 0 stats.Transfer.timeouts;
  Capture.stop cap

let test_chunk_bytes_validated () =
  let p = mk_pair () in
  let conn = mk_conn ~size:100 () in
  let dst = Host.addr p.hb in
  Alcotest.check_raises "chunk_bytes at the header size rejected"
    (Invalid_argument
       "Transfer.offer: chunk_bytes must exceed the chunk header")
    (fun () ->
      Transfer.offer p.xa ~chunk_bytes:Transfer.chunk_overhead ~dst conn
        ~on_result:(fun _ -> ()));
  Alcotest.check_raises "chunk_bytes above the MSS bound rejected"
    (Invalid_argument
       "Transfer.offer: chunk_bytes above the MSS datagram bound")
    (fun () ->
      Transfer.offer p.xa
        ~chunk_bytes:(Transfer.max_datagram_bytes + 1)
        ~dst conn
        ~on_result:(fun _ -> ()))

(* -- reassembly edge cases ---------------------------------------------- *)

(* Hand-craft the receiver's datagrams so duplication and reordering are
   exact, not probabilistic. *)
let send_raw src dst msg =
  Ip_layer.send (Host.ip src)
    (Ipv4_packet.make ~src:(Host.addr src) ~dst
       (Ipv4_packet.Raw
          { proto = Transfer.proto; data = Transfer.encode_msg msg }))

let test_duplicate_and_reordered_chunks () =
  let p = mk_pair () in
  let conn = mk_conn ~size:2_000 () in
  let payload = Snapshot.encode conn in
  let n = String.length payload in
  let piece = (n + 2) / 3 in
  let chunk seq =
    let lo = seq * piece in
    Transfer.Chunk
      {
        xfer_id = 7777;
        seq;
        total = 3;
        data = String.sub payload lo (min piece (n - lo));
      }
  in
  let dst = Host.addr p.hb in
  (* duplicate of 0, then 2 before 1 *)
  send_raw p.ha dst (chunk 0);
  send_raw p.ha dst (chunk 0);
  send_raw p.ha dst (chunk 2);
  send_raw p.ha dst (chunk 1);
  World.run_until_idle p.xworld;
  check_int "installed exactly once" 1 (List.length !(p.installed));
  check_bool "reassembled image structurally intact" true
    (!(p.installed) = [ conn ]);
  let stats = Transfer.stats p.xb in
  check_bool "duplicate was counted" true
    (stats.Transfer.duplicate_chunks >= 1);
  (* a retransmitted installment arriving after the verdict re-elicits
     the verdict instead of reinstalling the connection *)
  send_raw p.ha dst (chunk 1);
  World.run_until_idle p.xworld;
  check_int "verdict kept, no second install" 1 (List.length !(p.installed))

let test_corrupt_datagram_counted () =
  let p = mk_pair () in
  Ip_layer.send (Host.ip p.ha)
    (Ipv4_packet.make ~src:(Host.addr p.ha) ~dst:(Host.addr p.hb)
       (Ipv4_packet.Raw { proto = Transfer.proto; data = "not a sealed msg" }));
  World.run_until_idle p.xworld;
  check_int "nothing installed" 0 (List.length !(p.installed));
  check_bool "corruption counted" true
    (counter p.xworld "statex.corrupt_datagrams" >= 1)

(* -- resume across a partition ------------------------------------------ *)

let test_resume_after_partition () =
  let p = mk_pair () in
  (* 64 data bytes per installment: the image needs hundreds of chunks,
     so the partition is guaranteed to open mid-transfer *)
  let conn = mk_conn ~size:20_000 () in
  let total =
    let len = String.length (Snapshot.encode conn) in
    (len + 63) / 64
  in
  check_bool "needs many installments" true (total > 100);
  let result = ref None in
  Transfer.offer p.xa
    ~chunk_bytes:(Transfer.chunk_overhead + 64)
    ~dst:(Host.addr p.hb) conn
    ~on_result:(fun r -> result := Some r);
  ignore
    (Engine.schedule (World.engine p.xworld) ~delay:(Time.us 300) (fun () ->
         Host.set_partitioned p.hb true));
  ignore
    (Engine.schedule (World.engine p.xworld) ~delay:(Time.ms 30) (fun () ->
         Host.set_partitioned p.hb false));
  World.run p.xworld ~for_:(Time.sec 5.0);
  check_bool "transfer completed after the partition healed" true
    (!result = Some (Ok ()));
  check_int "installed exactly once" 1 (List.length !(p.installed));
  check_bool "image intact across the resume" true (!(p.installed) = [ conn ]);
  let stats = Transfer.stats p.xa in
  check_bool "the gap was retransmitted" true
    (stats.Transfer.chunk_retransmits > 0);
  check_int "never gave up" 0 stats.Transfer.timeouts;
  (* resumed, not restarted: far fewer transmissions than two full runs *)
  check_bool "resumed rather than restarted" true
    (stats.Transfer.chunks_sent < 2 * total)

let test_retry_budget_exhausted () =
  let p = mk_pair () in
  Host.set_partitioned p.hb true;
  let result = ref None in
  Transfer.offer p.xa ~max_attempts:4 ~dst:(Host.addr p.hb)
    (mk_conn ~size:500 ())
    ~on_result:(fun r -> result := Some r);
  World.run p.xworld ~for_:(Time.sec 3.0);
  (match !result with
  | Some (Error _) -> ()
  | Some (Ok ()) -> Alcotest.fail "transfer to a dead peer succeeded"
  | None -> Alcotest.fail "retry budget never exhausted");
  let stats = Transfer.stats p.xa in
  check_int "timeout counted" 1 stats.Transfer.timeouts;
  check_int "no offer left pending" 0 (Transfer.pending_count p.xa)

(* -- retention budget --------------------------------------------------- *)

let test_retention_overflow_unit () =
  let lan =
    make_simple_lan
      ~tcp_config:{ Tcp_config.default with retention_budget = 1_000 }
      ()
  in
  let server_tcb = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      server_tcb := Some tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:3 600));
  World.run lan.world ~for_:(Time.sec 1.0);
  let s = Option.get !server_tcb in
  check_bool "under budget: still transferable" true
    (Tcb.input_retention_enabled s);
  check_bool "no overflow yet" false (Tcb.input_retention_overflowed s);
  send_all c (pattern ~tag:4 600);
  World.run lan.world ~for_:(Time.sec 1.0);
  check_bool "over budget: retention dropped" false
    (Tcb.input_retention_enabled s);
  check_bool "overflow recorded" true (Tcb.input_retention_overflowed s);
  check_bool "overflow surfaced in metrics" true
    (counter lan.world "statex.retention_overflows" >= 1);
  (* permanently: a partial history must never be replayed *)
  Tcb.enable_input_retention s;
  check_bool "re-enabling after overflow is a no-op" false
    (Tcb.input_retention_enabled s)

let test_retention_overflow_isolates () =
  (* an overflowed connection must be excluded from hot state transfer
     at reintegration and keep serving solo *)
  let world = World.create () in
  let lan_medium = World.make_lan world () in
  let budget = { Tcp_config.default with retention_budget = 1_000 } in
  let client =
    World.add_host world lan_medium ~name:"client" ~addr:"10.0.0.10" ()
  in
  let primary =
    World.add_host world lan_medium ~name:"primary" ~addr:"10.0.0.1"
      ~tcp_config:budget ()
  in
  let secondary =
    World.add_host world lan_medium ~name:"secondary" ~addr:"10.0.0.2"
      ~tcp_config:budget ()
  in
  World.warm_arp [ client; primary; secondary ];
  let repl =
    Replicated.create ~primary ~secondary
      ~config:Tcpfo_core.Failover_config.default ()
  in
  let isolated_ports = ref [] in
  Replicated.set_on_event repl (function
    | Replicated.Isolated { local_port; _ } ->
      isolated_ports := local_port :: !isolated_ports
    | _ -> ());
  (* reply "done" after every 1200 request bytes — deterministic on both
     replicas regardless of segment boundaries *)
  Replicated.listen repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got mod 1_200 = 0 then ignore (Tcb.send tcb "done")));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:5 1_200));
  World.run world ~for_:(Time.sec 1.0);
  check_string "service replied" "done" (sink_contents csink);
  (* the 1200 request bytes overflowed the 1000 B retention budget *)
  check_bool "overflow recorded on the pair" true
    (counter world "statex.retention_overflows" >= 1);
  Replicated.kill_secondary repl;
  World.run world ~for_:(Time.sec 2.0);
  check_bool "secondary failure detected" true
    (Replicated.status repl = `Secondary_failed);
  let fresh =
    World.add_host world lan_medium ~name:"repaired" ~addr:"10.0.0.3"
      ~tcp_config:budget ()
  in
  World.warm_arp [ client; primary; secondary; fresh ];
  Replicated.reintegrate repl ~secondary:fresh;
  World.run world ~for_:(Time.sec 2.0);
  check_int "transfers settled" 0 (Replicated.pending_transfers repl);
  check_int "no transfer failures" 0 (Replicated.transfer_failures repl);
  let stats = Replicated.transfer_stats repl in
  check_int "the overflowed conn was never offered" 0
    stats.Tcpfo_statex.Transfer.offers_sent;
  (* the solo demotion is announced, per connection, and counted *)
  Alcotest.(check (list int)) "Isolated event named the connection" [ 80 ]
    !isolated_ports;
  check_bool "isolation surfaced in metrics" true
    (counter world "statex.isolated_conns" >= 1);
  (* ...and it still serves, solo, after reintegration *)
  send_all c (pattern ~tag:6 1_200);
  World.run world ~for_:(Time.sec 2.0);
  check_string "solo conn still served after reintegration" "donedone"
    (sink_contents csink);
  check_int "never reset" 0 csink.resets

(* -- checkpoints -------------------------------------------------------- *)

let test_checkpoint_truncates_unit () =
  let lan =
    make_simple_lan
      ~tcp_config:{ Tcp_config.default with retention_budget = 2_000 }
      ()
  in
  let server_tcb = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      server_tcb := Some tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:11 1_200));
  World.run lan.world ~for_:(Time.sec 1.0);
  let s = Option.get !server_tcb in
  check_int "history retained" 1_200 (Tcb.retained_input_bytes s);
  check_int "base still zero" 0 (Tcb.replay_base s);
  Tcb.checkpoint s;
  check_int "history truncated" 0 (Tcb.retained_input_bytes s);
  check_int "base advanced to the boundary" 1_200 (Tcb.replay_base s);
  check_bool "still transferable" true (Tcb.input_retention_enabled s);
  check_bool "checkpoint counted" true
    (counter lan.world "statex.checkpoints" >= 1);
  check_int "truncated bytes accounted" 1_200
    (counter lan.world "statex.retention_truncated_bytes");
  (* a second 1200-byte burst would overflow the 2000 B budget if the
     checkpoint had not truncated the history *)
  send_all c (pattern ~tag:12 1_200);
  World.run lan.world ~for_:(Time.sec 1.0);
  check_bool "no overflow" false (Tcb.input_retention_overflowed s);
  check_int "only the suffix is retained" 1_200 (Tcb.retained_input_bytes s);
  (* and the snapshot is the delta form: base + post-checkpoint suffix *)
  let snap = Tcb.snapshot s in
  check_int "snapshot carries the base" 1_200 snap.Tcb.sn_replay_base;
  check_int "snapshot ships only the suffix" 1_200
    (List.fold_left
       (fun a chunk -> a + String.length chunk)
       0 snap.Tcb.sn_retained_input)

let test_checkpoint_resurrects_after_overflow () =
  let lan =
    make_simple_lan
      ~tcp_config:{ Tcp_config.default with retention_budget = 1_000 }
      ()
  in
  let server_tcb = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      server_tcb := Some tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:13 1_200));
  World.run lan.world ~for_:(Time.sec 1.0);
  let s = Option.get !server_tcb in
  check_bool "overflowed" true (Tcb.input_retention_overflowed s);
  check_bool "not transferable" false (Tcb.input_retention_enabled s);
  (* plain re-enabling stays a no-op, but a checkpoint carries the
     application's declaration that the lost prefix is unnecessary *)
  Tcb.checkpoint s;
  check_bool "overflow cleared" false (Tcb.input_retention_overflowed s);
  check_bool "transferable again" true (Tcb.input_retention_enabled s);
  check_int "base covers everything delivered so far" 1_200
    (Tcb.replay_base s);
  send_all c (pattern ~tag:14 600);
  World.run lan.world ~for_:(Time.sec 1.0);
  check_bool "still no overflow" false (Tcb.input_retention_overflowed s);
  check_int "suffix retained from the resurrection point" 600
    (Tcb.retained_input_bytes s);
  check_int "base unchanged by retained deliveries" 1_200 (Tcb.replay_base s)

let test_checkpoint_timer_bounds_retention () =
  (* a periodic checkpoint keeps a long-lived connection under a budget
     its lifetime traffic exceeds many times over *)
  let lan =
    make_simple_lan
      ~tcp_config:
        {
          Tcp_config.default with
          retention_budget = 2_000;
          checkpoint_interval = Some (Time.ms 50);
        }
      ()
  in
  let server_tcb = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.enable_input_retention tcb;
      server_tcb := Some tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  World.run lan.world ~for_:(Time.ms 20);
  for i = 1 to 6 do
    send_all c (pattern ~tag:i 600);
    World.run lan.world ~for_:(Time.ms 100)
  done;
  let s = Option.get !server_tcb in
  check_bool "never overflowed despite 3600 B through a 2000 B budget"
    false
    (Tcb.input_retention_overflowed s);
  check_bool "still transferable" true (Tcb.input_retention_enabled s);
  check_bool "timer drove several checkpoints" true
    (counter lan.world "statex.checkpoints" >= 2);
  check_bool "retention stayed bounded" true
    (Tcb.retained_input_bytes s < 2_000);
  check_int "base + suffix account for the whole stream" 3_600
    (Tcb.replay_base s + Tcb.retained_input_bytes s)

let test_checkpointed_conn_survives_repair () =
  (* End-to-end delta reintegration: an application that checkpoints at
     its own safe points keeps a connection transferable through traffic
     exceeding the retention budget, the repair ships the DELTA snapshot
     (base > 0, suffix only), and the restored replica carries the
     session through a second failover byte-exactly. *)
  let budget = { Tcp_config.default with retention_budget = 2_000 } in
  let r =
    make_repl_lan ~primary_tcp_config:budget ~secondary_tcp_config:budget ()
  in
  let isolated = ref 0 in
  Replicated.set_on_event r.repl (function
    | Replicated.Isolated _ -> incr isolated
    | _ -> ());
  let accepted = ref [] in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      accepted := tcb :: !accepted;
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got mod 1_200 = 0 then begin
            ignore (Tcb.send tcb "done");
            (* request boundary = application safe point *)
            Tcb.checkpoint tcb
          end));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:21 1_200));
  run_repl ~for_sec:1.0 r;
  send_all c (pattern ~tag:22 1_200);
  run_repl ~for_sec:1.0 r;
  (* 2400 B through a 2000 B budget: alive only thanks to checkpoints *)
  check_string "served twice" "donedone" (sink_contents csink);
  check_int "no overflow on either replica" 0
    (counter r.rworld "statex.retention_overflows");
  Replicated.kill_secondary r.repl;
  run_repl ~for_sec:2.0 r;
  let fresh =
    World.add_host r.rworld r.rlan ~name:"repaired" ~addr:"10.0.0.3"
      ~tcp_config:budget ()
  in
  World.warm_arp [ r.rclient; r.primary; r.secondary; fresh ];
  Replicated.reintegrate r.repl ~secondary:fresh;
  run_repl ~for_sec:2.0 r;
  check_int "transfers settled" 0 (Replicated.pending_transfers r.repl);
  check_int "no transfer failures" 0 (Replicated.transfer_failures r.repl);
  check_int "nothing isolated" 0 !isolated;
  (* the restored copy landed with the delta's replay base *)
  let restored = List.hd !accepted in
  check_int "restored replica replays from the checkpoint" 2_400
    (Tcb.replay_base restored);
  (* second failover onto the delta-restored replica *)
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  send_all c (pattern ~tag:23 1_200);
  run_repl ~for_sec:3.0 r;
  check_string "restored replica continued the session byte-exactly"
    "donedonedone" (sink_contents csink);
  check_int "never reset" 0 csink.resets

(* -- paced offer scheduling --------------------------------------------- *)

let test_paced_scheduler_windows_offers () =
  (* transfer_inflight=1 + a pace floor: offers must trickle out one at
     a time instead of bursting at the reintegration instant, and every
     connection must still re-replicate and survive a second failover *)
  let config =
    Failover_config.make ~transfer_inflight:1 ~transfer_pace:(Time.us 200) ()
  in
  let r = make_repl_lan ~config () in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d))));
  let n = 5 in
  let sinks = Array.init n (fun _ -> make_sink ()) in
  let conns =
    Array.init n (fun i ->
        let c =
          Stack.connect (Host.tcp r.rclient)
            ~remote:(Replicated.service_addr r.repl, 80)
            ()
        in
        wire_sink sinks.(i) c;
        Tcb.set_on_established c (fun () ->
            ignore (Tcb.send c (Printf.sprintf "q%d" i)));
        c)
  in
  run_repl ~for_sec:1.0 r;
  Array.iteri
    (fun i s ->
      check_string "served" (Printf.sprintf "R:q%d" i) (sink_contents s))
    sinks;
  Replicated.kill_secondary r.repl;
  run_repl ~for_sec:2.0 r;
  let completed = ref None in
  Replicated.add_on_event r.repl (function
    | Replicated.Transfers_complete k -> completed := Some k
    | _ -> ());
  let fresh =
    World.add_host r.rworld r.rlan ~name:"repaired" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ r.rclient; r.primary; r.secondary; fresh ];
  Replicated.reintegrate r.repl ~secondary:fresh;
  (* sample the channel while the paced transfers drain: the in-flight
     window must never exceed the configured cap *)
  let max_inflight = ref 0 in
  for _ = 1 to 300 do
    World.run r.rworld ~for_:(Time.us 100);
    let st = Replicated.transfer_stats r.repl in
    let inflight =
      st.Transfer.offers_sent - st.Transfer.accepts - st.Transfer.rejects
      - st.Transfer.timeouts
    in
    if inflight > !max_inflight then max_inflight := inflight
  done;
  run_repl ~for_sec:2.0 r;
  check_bool "all re-replicated" true (!completed = Some n);
  check_int "no failures" 0 (Replicated.transfer_failures r.repl);
  check_bool "window respected" true (!max_inflight <= 1);
  let m = World.metrics r.rworld in
  check_bool "offers were paced" true
    (Registry.counter_value m "statex.paced_offers" >= n - 1);
  check_bool "pace wait accounted" true
    (Registry.counter_value m "statex.pace_wait_us" > 0);
  check_int "queue drained" 0
    (Registry.gauge_value m "statex.transfer_queue_depth");
  (* the paced captures were exact: a second failover onto the restored
     copies continues every session byte-exactly *)
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  Array.iteri (fun i c -> ignore (Tcb.send c (Printf.sprintf "z%d" i))) conns;
  run_repl ~for_sec:3.0 r;
  Array.iteri
    (fun i s ->
      check_string "continued byte-exactly"
        (Printf.sprintf "R:q%dR:z%d" i i)
        (sink_contents s);
      check_int "never reset" 0 s.resets)
    sinks

let test_write_during_paced_transfer () =
  (* Regression for capture atomicity: pacing defers offers past the
     reintegration instant, so client bytes land on still-queued
     connections while earlier offers drain.  Each deferred capture
     (quiesce, then Δ, then the TCB image — in that order) must count
     those bytes exactly once, or the restored copy replays them twice
     or loses them. *)
  let config =
    Failover_config.make ~transfer_inflight:1 ~transfer_pace:(Time.ms 1) ()
  in
  let r = make_repl_lan ~config () in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d))));
  let n = 4 in
  let sinks = Array.init n (fun _ -> make_sink ()) in
  let conns =
    Array.init n (fun i ->
        let c =
          Stack.connect (Host.tcp r.rclient)
            ~remote:(Replicated.service_addr r.repl, 80)
            ()
        in
        wire_sink sinks.(i) c;
        Tcb.set_on_established c (fun () ->
            ignore (Tcb.send c (Printf.sprintf "q%d" i)));
        c)
  in
  run_repl ~for_sec:1.0 r;
  Replicated.kill_secondary r.repl;
  run_repl ~for_sec:2.0 r;
  let fresh =
    World.add_host r.rworld r.rlan ~name:"repaired" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ r.rclient; r.primary; r.secondary; fresh ];
  Replicated.reintegrate r.repl ~secondary:fresh;
  (* mid-pacing: every client writes while the offer queue still holds
     most of the connections *)
  World.run r.rworld ~for_:(Time.us 300);
  Array.iteri (fun i c -> ignore (Tcb.send c (Printf.sprintf "m%d" i))) conns;
  run_repl ~for_sec:3.0 r;
  check_int "transfers settled" 0 (Replicated.pending_transfers r.repl);
  check_int "no failures" 0 (Replicated.transfer_failures r.repl);
  Array.iteri
    (fun i s ->
      check_string "mid-pacing write served once"
        (Printf.sprintf "R:q%dR:m%d" i i)
        (sink_contents s))
    sinks;
  (* the decisive check: fail over onto the restored copies — a byte
     double-counted or dropped by a non-atomic capture surfaces as a
     divergent stream here *)
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  Array.iteri (fun i c -> ignore (Tcb.send c (Printf.sprintf "e%d" i))) conns;
  run_repl ~for_sec:3.0 r;
  Array.iteri
    (fun i s ->
      check_string "session continued byte-exactly after the rekill"
        (Printf.sprintf "R:q%dR:m%dR:e%d" i i i)
        (sink_contents s);
      check_int "never reset" 0 s.resets)
    sinks

(* -- role-complete transfer: the §7.2 client role ----------------------- *)

let test_backend_conn_repair_and_rekill () =
  (* A connect_backend connection has an EPHEMERAL local port, so the
     transfer candidate selection must recognise it by its registered
     REMOTE endpoint, ship it at reintegration, and re-run the recorded
     setup on the fresh replica.  Acceptance: the session survives the
     repair AND a second failover byte-exactly, over a single backend
     connection, with nothing isolated. *)
  let r = make_repl_lan () in
  let backend_port = 7000 in
  let accepted = ref 0 in
  let bsink = make_sink () in
  Stack.listen (Host.tcp r.rclient) ~port:backend_port ~on_accept:(fun tcb ->
      incr accepted;
      wire_sink bsink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string bsink.buf d;
          ignore (Tcb.send tcb ("ok:" ^ d))));
  let isolated = ref 0 in
  Replicated.set_on_event r.repl (function
    | Replicated.Isolated _ -> incr isolated
    | _ -> ());
  (* one entry per replica instance, newest first: after the repair the
     head is the restored copy living on the fresh host.  The setup
     regenerates its output history ("q1" on established) — during the
     restore replay that re-send is swallowed against the snapshot. *)
  let copies = ref [] in
  Replicated.connect_backend r.repl
    ~remote:(Host.addr r.rclient, backend_port)
    ~setup:(fun ~role:_ tcb ->
      let sink = make_sink () in
      copies := (tcb, sink) :: !copies;
      wire_sink sink tcb;
      Tcb.set_on_established tcb (fun () -> ignore (Tcb.send tcb "q1")))
    ();
  run_repl ~for_sec:2.0 r;
  check_int "backend accepted exactly one connection" 1 !accepted;
  check_string "backend served q1" "q1" (sink_contents bsink);
  check_int "a copy on each replica" 2 (List.length !copies);
  List.iter
    (fun (_, sink) ->
      check_string "every copy got the reply" "ok:q1" (sink_contents sink))
    !copies;
  (* the secondary dies; §6 leaves the primary serving solo *)
  Replicated.kill_secondary r.repl;
  run_repl ~for_sec:2.0 r;
  check_bool "failure detected" true
    (Replicated.status r.repl = `Secondary_failed);
  (* repair: the client-role conn must transfer, not fall solo *)
  let fresh =
    World.add_host r.rworld r.rlan ~name:"repaired" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ r.rclient; r.primary; r.secondary; fresh ];
  Replicated.reintegrate r.repl ~secondary:fresh;
  run_repl ~for_sec:2.0 r;
  check_int "transfers settled" 0 (Replicated.pending_transfers r.repl);
  check_int "no transfer failures" 0 (Replicated.transfer_failures r.repl);
  check_int "nothing isolated" 0 !isolated;
  check_int "setup re-ran on the repaired host" 3 (List.length !copies);
  (* second failover: the original primary dies; the repaired host must
     carry the restored connection forward *)
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  check_bool "takeover by the repaired host" true
    (Replicated.status r.repl = `Primary_failed);
  let restored_tcb, restored_sink = List.hd !copies in
  ignore (Tcb.send restored_tcb "q2");
  run_repl ~for_sec:3.0 r;
  check_string "backend session continued byte-exactly" "q1q2"
    (sink_contents bsink);
  check_string "restored copy replayed history and got the new reply"
    "ok:q1ok:q2" (sink_contents restored_sink);
  check_int "still a single backend connection" 1 !accepted;
  check_int "backend never reset" 0 bsink.resets;
  check_int "restored copy never reset" 0 restored_sink.resets

let test_restored_relay_new_output_not_swallowed () =
  (* Regression for the resume_restored regeneration contract: an
     application that CANNOT regenerate its output (it guards its
     on_data with Tcb.replaying, like a relay fed by another connection)
     must still have its first post-restore sends delivered.  Before the
     fix the leftover resync-skip budget swallowed them. *)
  let r = make_repl_lan () in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d ->
          if not (Tcb.replaying tcb) then ignore (Tcb.send tcb ("R:" ^ d))));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "one"));
  run_repl ~for_sec:1.0 r;
  check_string "served before any failure" "R:one" (sink_contents csink);
  Replicated.kill_secondary r.repl;
  run_repl ~for_sec:2.0 r;
  let fresh =
    World.add_host r.rworld r.rlan ~name:"repaired" ~addr:"10.0.0.3" ()
  in
  World.warm_arp [ r.rclient; r.primary; r.secondary; fresh ];
  Replicated.reintegrate r.repl ~secondary:fresh;
  run_repl ~for_sec:2.0 r;
  check_int "transfers settled" 0 (Replicated.pending_transfers r.repl);
  (* second failover: the restored, non-regenerating copy takes over *)
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  ignore (Tcb.send c "two");
  run_repl ~for_sec:3.0 r;
  check_string "new output after the restore reached the client"
    "R:oneR:two" (sink_contents csink);
  check_int "never reset" 0 csink.resets

(* -- repair-time ARP hygiene -------------------------------------------- *)

let test_warm_arp_skips_dead_hosts () =
  (* regression: warming the caches with the corpse still in the host
     list used to re-insert the dead primary's binding for the service
     address, re-poisoning the client after the takeover *)
  let r = make_repl_lan () in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d))));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "one"));
  run_repl ~for_sec:1.0 r;
  check_string "served before the failure" "R:one" (sink_contents csink);
  Replicated.kill_primary r.repl;
  run_repl ~for_sec:2.0 r;
  check_bool "takeover happened" true
    (Replicated.status r.repl = `Primary_failed);
  (* warm over the corpse: the dead primary still claims the service
     address, but a dead host must neither learn nor teach *)
  World.warm_arp [ r.rclient; r.primary; r.secondary ];
  ignore (Tcb.send c "two");
  run_repl ~for_sec:2.0 r;
  check_string "still served after warming over the corpse" "R:oneR:two"
    (sink_contents csink);
  check_int "never reset" 0 csink.resets

(* -- soak axis sanity --------------------------------------------------- *)

let test_soak_draws_lossy_transfers () =
  let scenarios = List.init 60 (fun i -> Soak.scenario_of_seed (i + 1)) in
  check_bool "some scenario exercises a lossy control channel" true
    (List.exists (fun s -> s.Soak.xfer_loss > 0.0) scenarios);
  List.iter
    (fun s ->
      (* a nonzero loss needs transfers to cover: either an explicit
         repair phase, or a pool whose promotion reintegrates *)
      if
        s.Soak.repair = Soak.No_repair
        && s.Soak.pool = Soak.Pair
        && s.Soak.xfer_loss <> 0.0
      then
        Alcotest.failf "seed %d: loss drawn without a transfer phase"
          s.Soak.seed)
    scenarios

let suite =
  [
    Alcotest.test_case "chunked transfer stays within the MSS" `Quick
      test_chunked_within_mss;
    Alcotest.test_case "chunk_bytes bounds are enforced" `Quick
      test_chunk_bytes_validated;
    Alcotest.test_case "duplicate and reordered chunks reassemble" `Quick
      test_duplicate_and_reordered_chunks;
    Alcotest.test_case "corrupt datagrams are counted, not installed" `Quick
      test_corrupt_datagram_counted;
    Alcotest.test_case "transfer resumes across a partition" `Quick
      test_resume_after_partition;
    Alcotest.test_case "retry budget bounds a dead-peer transfer" `Quick
      test_retry_budget_exhausted;
    Alcotest.test_case "retention budget overflow (unit)" `Quick
      test_retention_overflow_unit;
    Alcotest.test_case "retention overflow isolates the connection" `Quick
      test_retention_overflow_isolates;
    Alcotest.test_case "checkpoint truncates retained input (unit)" `Quick
      test_checkpoint_truncates_unit;
    Alcotest.test_case "checkpoint resurrects retention after overflow"
      `Quick test_checkpoint_resurrects_after_overflow;
    Alcotest.test_case "checkpoint timer bounds retention" `Quick
      test_checkpoint_timer_bounds_retention;
    Alcotest.test_case "checkpointed conn ships a delta and survives repair"
      `Quick test_checkpointed_conn_survives_repair;
    Alcotest.test_case "paced scheduler respects the offer window" `Quick
      test_paced_scheduler_windows_offers;
    Alcotest.test_case "client write during paced transfer counted once"
      `Quick test_write_during_paced_transfer;
    Alcotest.test_case "backend conn survives repair and rekill (7.2)" `Quick
      test_backend_conn_repair_and_rekill;
    Alcotest.test_case "restored relay's new output not swallowed" `Quick
      test_restored_relay_new_output_not_swallowed;
    Alcotest.test_case "warm_arp skips dead hosts" `Quick
      test_warm_arp_skips_dead_hosts;
    Alcotest.test_case "soak seeds draw the lossy-transfer axis" `Quick
      test_soak_draws_lossy_transfers;
  ]
