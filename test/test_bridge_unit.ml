(* Fault-free behaviour of the failover bridge (paper §3, §7, §8). *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Seq32 = Tcpfo_util.Seq32
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
module Replicated = Tcpfo_core.Replicated
module Primary_bridge = Tcpfo_core.Primary_bridge
module Secondary_bridge = Tcpfo_core.Secondary_bridge
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Seg = Tcpfo_packet.Tcp_segment
open Testutil

let test_handshake_through_bridge () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "pong") r.repl ~port:80
    ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  run_repl r;
  check_bool "client established" true csink.established;
  (* both replicas accepted the same connection *)
  check_int "two replica connections" 2 (List.length !sinks);
  check_bool "both established" true
    (List.for_all (fun (_, s) -> s.established) !sinks)

let test_request_reply () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4
    ~reply_of:(fun req -> "reply-to-" ^ req)
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  run_repl r;
  check_string "client got exactly one reply" "reply-to-ping"
    (sink_contents csink);
  (* both replicas saw the request *)
  List.iter
    (fun (_, s) -> check_string "replica request" "ping" (sink_contents s))
    !sinks

let test_mss_is_minimum_of_replicas () =
  let r =
    make_repl_lan
      ~secondary_tcp_config:{ Tcp_config.default with mss = 1000 }
      ()
  in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> "x") r.repl ~port:80
    ~sinks ();
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  run_repl r;
  (* §7.1: the SYN sent to the client carries min(MSS_P, MSS_S) *)
  check_int "client sees min mss" 1000 (Tcb.effective_mss c)

let test_different_segmentation_matches_bytes () =
  (* §3.4/Fig 2: P and S segment the same reply differently (different
     MSS); the bridge must match byte ranges, not segments. *)
  let reply = pattern ~tag:21 50_000 in
  let r =
    make_repl_lan
      ~primary_tcp_config:{ Tcp_config.default with mss = 1460 }
      ~secondary_tcp_config:{ Tcp_config.default with mss = 536 }
      ()
  in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  run_repl r;
  check_string "byte-exact reply" reply (sink_contents csink);
  check_bool "client saw eof" true csink.eof

let test_client_to_server_bulk () =
  let data = pattern ~tag:22 200_000 in
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:(String.length data) ~reply_of:(fun _ -> "ok")
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c data);
  run_repl r;
  check_string "ack of upload" "ok" (sink_contents csink);
  List.iter
    (fun (role, s) ->
      let name =
        match role with `Primary -> "primary" | `Secondary -> "secondary"
      in
      check_string (name ^ " has full upload") data (sink_contents s))
    !sinks

let test_bridge_stats_and_delta () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> String.make 5000 'z')
    r.repl ~port:80 ~sinks ();
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  run_repl r;
  let stats =
    Primary_bridge.conn_stats
      (Replicated.primary_bridge r.repl)
      ~remote:(Host.addr r.rclient, snd (Tcb.local_endpoint c))
      ~local_port:80
  in
  match stats with
  | None -> Alcotest.fail "no bridge connection state"
  | Some st ->
    check_bool "delta recorded" true (st.delta <> None);
    check_bool "segments emitted" true (st.segments_emitted > 3);
    check_int "P queue drained" 0 st.p_queued;
    check_int "S queue drained" 0 st.s_queued

let test_secondary_diverts_everything () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:4 ~reply_of:(fun _ -> String.make 20_000 'r')
    r.repl ~port:80 ~sinks ();
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  let csink = make_sink () in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  (* no frame on the wire may carry a TCP segment from a_s to the client:
     everything from the secondary must go via the primary *)
  let direct_to_client = ref 0 in
  let _ =
    drop_rx r.rclient ~pred:(fun pkt ->
        (match pkt.Ipv4_packet.payload with
        | Tcp _
          when Tcpfo_packet.Ipaddr.equal pkt.src (Host.addr r.secondary) ->
          incr direct_to_client
        | _ -> ());
        false)
  in
  run_repl r;
  check_int "no direct secondary->client tcp" 0 !direct_to_client;
  check_string "reply intact" (String.make 20_000 'r') (sink_contents csink);
  check_bool "secondary diverted segments" true
    (Tcpfo_obs.Registry.counter_value (World.metrics r.rworld)
       "bridge.secondary.diverted"
    > 0);
  check_bool "secondary snooped client traffic" true
    (Tcpfo_obs.Registry.counter_value (World.metrics r.rworld)
       "bridge.secondary.claimed"
    > 0)

let test_retransmission_forwarded_immediately () =
  (* drop one merged data segment at the client: both replicas retransmit;
     the bridge forwards the retransmissions instead of queueing (§4) *)
  let reply = pattern ~tag:23 30_000 in
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) r.repl ~port:80
    ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  let first_data = ref true in
  let _ =
    drop_rx r.rclient ~pred:(fun pkt ->
        match pkt.Ipv4_packet.payload with
        | Tcp seg when String.length seg.payload > 1000 && !first_data ->
          first_data := false;
          true
        | _ -> false)
  in
  run_repl r;
  check_string "stream heals" reply (sink_contents csink);
  let stats =
    Primary_bridge.conn_stats
      (Replicated.primary_bridge r.repl)
      ~remote:(Host.addr r.rclient, snd (Tcb.local_endpoint c))
      ~local_port:80
  in
  (match stats with
  | Some st ->
    check_bool "bridge forwarded retransmissions" true
      (st.retransmissions_forwarded >= 1)
  | None ->
    (* connection may have fully closed and been collected — acceptable *)
    ())

let test_client_upload_with_secondary_loss () =
  (* §4 second bullet: the secondary misses a client segment the primary
     received.  The joint (minimum) ack must hold the client back until
     the secondary has the bytes; the upload still completes exactly. *)
  let data = pattern ~tag:24 40_000 in
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:(String.length data) ~reply_of:(fun _ -> "ok")
    r.repl ~port:80 ~sinks ();
  let dropped = ref false in
  let _ =
    drop_rx r.secondary ~pred:(fun pkt ->
        match pkt.Ipv4_packet.payload with
        | Tcp seg
          when String.length seg.payload > 1000 && not !dropped ->
          dropped := true;
          true
        | _ -> false)
  in
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c data);
  run_repl r;
  check_bool "a segment was withheld from secondary" true !dropped;
  check_string "client saw completion" "ok" (sink_contents csink);
  List.iter
    (fun (_, s) -> check_string "replica complete" data (sink_contents s))
    !sinks

let test_full_close_through_bridge () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~close_after:true ~request_size:4
    ~reply_of:(fun _ -> "done")
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () ->
      ignore (Tcb.send c "ping");
      Tcb.close c);
  (* bound the run: TIME_WAIT etc. *)
  World.run r.rworld ~for_:(Time.sec 30.0);
  check_string "reply received" "done" (sink_contents csink);
  check_bool "client saw eof" true csink.eof;
  check_bool "client terminated" true
    (match Tcb.state c with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)

let test_non_failover_port_bypasses_bridge () =
  let r = make_repl_lan () in
  (* an ordinary, unreplicated service on the primary host, port 9000:
     must work untouched although the bridge is installed *)
  let ssink = make_sink () in
  Stack.listen (Host.tcp r.primary) ~port:9000 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string ssink.buf d;
          ignore (Tcb.send tcb "plain")));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient) ~remote:(Host.addr r.primary, 9000) ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "hi"));
  run_repl r;
  check_string "plain tcp works" "plain" (sink_contents csink);
  check_int "bridge untouched" 0
    (Primary_bridge.connection_count (Replicated.primary_bridge r.repl))

let test_server_initiated_connection () =
  (* §7.2: the replicated pair connects out to an unreplicated back end,
     which must share the replicas' segment — built explicitly here *)
  let world = World.create () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"client" ~addr:"10.0.0.10" () in
  let primary = World.add_host world lan ~name:"primary" ~addr:"10.0.0.1" () in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2" ()
  in
  let backend = World.add_host world lan ~name:"backend" ~addr:"10.0.0.3" () in
  World.warm_arp [ client; primary; secondary; backend ];
  let repl =
    Replicated.create ~primary ~secondary
      ~config:Tcpfo_core.Failover_config.default ()
  in
  (* backend: receives a query, answers *)
  let bsink = make_sink () in
  Stack.listen (Host.tcp backend) ~port:5432 ~on_accept:(fun tcb ->
      wire_sink bsink tcb;
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string bsink.buf d;
          if Buffer.contents bsink.buf = "query" then
            ignore (Tcb.send tcb "rows")));
  let replica_rx = ref [] in
  Replicated.connect_backend repl
    ~remote:(Host.addr backend, 5432)
    ~setup:(fun ~role tcb ->
      let sink = make_sink () in
      replica_rx := (role, sink) :: !replica_rx;
      wire_sink sink tcb;
      Tcb.set_on_established tcb (fun () -> ignore (Tcb.send tcb "query")))
    ();
  World.run world ~for_:(Time.sec 30.0);
  check_string "backend got one query" "query" (sink_contents bsink);
  check_int "both replicas connected" 2 (List.length !replica_rx);
  List.iter
    (fun (_, s) -> check_string "replica got rows" "rows" (sink_contents s))
    !replica_rx

let test_concurrent_connections () =
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~request_size:6
    ~reply_of:(fun req -> "R:" ^ req)
    r.repl ~port:80 ~sinks ();
  let results = ref [] in
  for i = 1 to 5 do
    let c =
      Stack.connect (Host.tcp r.rclient)
        ~remote:(Replicated.service_addr r.repl, 80)
        ()
    in
    let sink = make_sink () in
    wire_sink sink c;
    results := (i, sink) :: !results;
    Tcb.set_on_established c (fun () ->
        ignore (Tcb.send c (Printf.sprintf "req-%02d" i)))
  done;
  run_repl r;
  check_int "ten replica conns" 10 (List.length !sinks);
  List.iter
    (fun (i, sink) ->
      check_string "per-conn reply"
        (Printf.sprintf "R:req-%02d" i)
        (sink_contents sink))
    !results

let suite =
  [
    Alcotest.test_case "handshake through bridge" `Quick
      test_handshake_through_bridge;
    Alcotest.test_case "request/reply: one merged reply" `Quick
      test_request_reply;
    Alcotest.test_case "SYN carries min MSS (7.1)" `Quick
      test_mss_is_minimum_of_replicas;
    Alcotest.test_case "byte matching across segmentations (3.4)" `Quick
      test_different_segmentation_matches_bytes;
    Alcotest.test_case "client upload reaches both replicas" `Quick
      test_client_to_server_bulk;
    Alcotest.test_case "bridge stats and delta" `Quick
      test_bridge_stats_and_delta;
    Alcotest.test_case "secondary output diverted, never direct (3.1)"
      `Quick test_secondary_diverts_everything;
    Alcotest.test_case "retransmissions forwarded immediately (4)" `Quick
      test_retransmission_forwarded_immediately;
    Alcotest.test_case "min-ack holds client back on secondary loss (4)"
      `Quick test_client_upload_with_secondary_loss;
    Alcotest.test_case "orderly close through bridge (8)" `Quick
      test_full_close_through_bridge;
    Alcotest.test_case "non-failover port bypasses bridge (7)" `Quick
      test_non_failover_port_bypasses_bridge;
    Alcotest.test_case "server-initiated connection (7.2)" `Quick
      test_server_initiated_connection;
    Alcotest.test_case "five concurrent connections" `Quick
      test_concurrent_connections;
  ]

let test_late_client_fin_answered_after_teardown () =
  (* §8: the server closes first; the client closes from CLOSE_WAIT and
     its FIN is acknowledged by the bridge — but that ACK is lost.  The
     client retransmits the FIN from LAST_ACK after the bridge tore down,
     and the lingering connection record answers it. *)
  let r = make_repl_lan () in
  let sinks = ref [] in
  echo_service ~close_after:true ~request_size:4 ~reply_of:(fun _ -> "done")
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping"));
  (* close only after the server side has fully closed toward us *)
  Tcb.set_on_eof c (fun () ->
      csink.eof <- true;
      ignore
        ((Host.clock r.rclient).schedule (Time.ms 5) (fun () -> Tcb.close c)));
  (* drop the first pure ACK that covers the client's FIN while the
     client sits in LAST_ACK *)
  let dropped = ref false in
  let _ =
    drop_rx r.rclient ~pred:(fun pkt ->
        match pkt.Ipv4_packet.payload with
        | Tcp seg
          when (not !dropped) && seg.flags.ack && (not seg.flags.fin)
               && String.length seg.payload = 0
               && Tcb.state c = Tcb.Last_ack
               && Tcpfo_util.Seq32.equal seg.ack (Tcb.snd_nxt c) ->
          dropped := true;
          true
        | _ -> false)
  in
  run_repl r ~for_sec:60.0;
  check_bool "the covering ACK was dropped" true !dropped;
  check_bool "client still terminated cleanly" true
    (Tcb.state c = Tcb.Closed);
  check_int "no reset" 0 csink.resets

let test_late_secondary_fin_answered_after_teardown () =
  (* §8: the client closes first; the servers close from CLOSE_WAIT; the
     client's final ACK of the server FIN is withheld from the secondary
     only.  The secondary's TCB retransmits its FIN from LAST_ACK after
     the bridge tore down; the bridge answers with an ACK slipped to the
     secondary, and the secondary's connection terminates cleanly instead
     of dying on retry exhaustion. *)
  let r = make_repl_lan () in
  let server_conns = ref [] in
  Replicated.listen r.repl ~port:80 ~on_accept:(fun ~role tcb ->
      server_conns := (role, tcb) :: !server_conns;
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= 4 then ignore (Tcb.send tcb "done"));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () ->
      ignore (Tcb.send c "ping");
      ignore
        ((Host.clock r.rclient).schedule (Time.ms 10) (fun () -> Tcb.close c)));
  let dropped = ref false in
  let _ =
    drop_rx r.secondary ~pred:(fun pkt ->
        match pkt.Ipv4_packet.payload with
        | Tcp seg
          when (not !dropped) && seg.flags.ack && (not seg.flags.fin)
               && String.length seg.payload = 0
               && Tcpfo_packet.Ipaddr.equal pkt.src (Host.addr r.rclient)
               && (match List.assoc_opt `Secondary !server_conns with
                  | Some s -> Tcb.state s = Tcb.Last_ack
                  | None -> false) ->
          dropped := true;
          true
        | _ -> false)
  in
  run_repl r ~for_sec:90.0;
  check_bool "the final ACK was withheld from the secondary" true !dropped;
  (match List.assoc_opt `Secondary !server_conns with
  | Some s ->
    check_bool "secondary conn terminated cleanly" true
      (Tcb.state s = Tcb.Closed)
  | None -> Alcotest.fail "no secondary conn");
  check_string "client unaffected" "done" (sink_contents csink)

let suite =
  suite
  @ [
      Alcotest.test_case "late client FIN answered after teardown (8)"
        `Quick test_late_client_fin_answered_after_teardown;
      Alcotest.test_case "late secondary FIN answered after teardown (8)"
        `Quick test_late_secondary_fin_answered_after_teardown;
    ]

let test_sequence_wraparound_through_bridge () =
  (* every party's initial sequence number sits just below 2^32, so the
     whole transfer — client stream, both replicas' streams, the wire
     stream, Δseq arithmetic — crosses the wrap boundary *)
  let near_top v = { Tcp_config.default with iss_override = Some v } in
  let r =
    make_repl_lan
      ~client_tcp_config:(near_top 0xFFFF_F000)
      ~primary_tcp_config:(near_top 0xFFFF_FF00)
      ~secondary_tcp_config:(near_top 0xFFFF_8000)
      ()
  in
  let reply = pattern ~tag:81 200_000 in
  let sinks = ref [] in
  echo_service ~request_size:40_000 ~reply_of:(fun _ -> reply)
    ~close_after:true r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  let up = pattern ~tag:82 40_000 in
  Tcb.set_on_established c (fun () -> send_all c up);
  run_repl r ~for_sec:60.0;
  check_string "reply exact across 2^32 wrap" reply (sink_contents csink);
  List.iter
    (fun (_, s) -> check_string "upload exact across wrap" up (sink_contents s))
    !sinks

let test_sequence_wraparound_with_failover () =
  let near_top v = { Tcp_config.default with iss_override = Some v } in
  let r =
    make_repl_lan
      ~client_tcp_config:(near_top 0xFFFF_FFF0)
      ~primary_tcp_config:(near_top 0xFFFF_FFFa)
      ~secondary_tcp_config:(near_top 0xFFFF_0000)
      ()
  in
  let reply = pattern ~tag:83 300_000 in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 40) (fun () ->
         Replicated.kill_primary r.repl));
  run_repl r ~for_sec:90.0;
  check_string "failover across the wrap, byte-exact" reply
    (sink_contents csink);
  check_int "no reset" 0 csink.resets

let suite =
  suite
  @ [
      Alcotest.test_case "2^32 wraparound through the bridge" `Quick
        test_sequence_wraparound_through_bridge;
      Alcotest.test_case "2^32 wraparound with failover" `Quick
        test_sequence_wraparound_with_failover;
    ]
