module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Link = Tcpfo_net.Link
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

let mk_pkt n =
  Ipv4_packet.make ~src:(Ipaddr.of_int 1) ~dst:(Ipaddr.of_int 2)
    (Ipv4_packet.Raw { proto = 99; data = String.make n 'q' })

let setup ?(config = Link.default_config) () =
  let e = Engine.create () in
  let l = Link.create e ~rng:(Rng.create ~seed:5) config in
  (e, l)

let test_delivery_both_directions () =
  let e, l = setup () in
  let at_b = ref 0 and at_a = ref 0 in
  Link.set_receiver (Link.endpoint_b l) (fun _ -> incr at_b);
  Link.set_receiver (Link.endpoint_a l) (fun _ -> incr at_a);
  Link.send (Link.endpoint_a l) (mk_pkt 100);
  Link.send (Link.endpoint_b l) (mk_pkt 100);
  Engine.run e;
  Testutil.check_int "a->b" 1 !at_b;
  Testutil.check_int "b->a" 1 !at_a

let test_latency () =
  let e, l =
    setup
      ~config:
        { Link.default_config with bandwidth_bps = 8_000_000;
          delay = Time.ms 30 }
      ()
  in
  let arrival = ref Time.zero in
  Link.set_receiver (Link.endpoint_b l) (fun _ -> arrival := Engine.now e);
  (* 980-byte payload -> 1000-byte datagram -> 8000 bits @8Mb/s = 1 ms
     serialization + 30 ms propagation *)
  Link.send (Link.endpoint_a l) (mk_pkt 980);
  Engine.run e;
  Testutil.check_int "latency" (Time.ms 31) !arrival

let test_queue_serializes () =
  let e, l =
    setup
      ~config:
        { Link.default_config with bandwidth_bps = 8_000_000; delay = 0 }
      ()
  in
  let times = ref [] in
  Link.set_receiver (Link.endpoint_b l) (fun _ ->
      times := Engine.now e :: !times);
  Link.send (Link.endpoint_a l) (mk_pkt 980);
  Link.send (Link.endpoint_a l) (mk_pkt 980);
  Engine.run e;
  (match List.rev !times with
  | [ t1; t2 ] ->
    Testutil.check_int "first" (Time.ms 1) t1;
    Testutil.check_int "second serialized behind" (Time.ms 2) t2
  | _ -> Alcotest.fail "expected two deliveries")

let test_queue_overflow_drops () =
  let e = Engine.create () in
  let obs = Obs.create () in
  let l =
    Link.create e ~rng:(Rng.create ~seed:5) ~obs
      { Link.default_config with queue_capacity = 2;
        bandwidth_bps = 1_000_000 }
  in
  let got = ref 0 in
  Link.set_receiver (Link.endpoint_b l) (fun _ -> incr got);
  (* one transmitting + 2 queued; the rest dropped *)
  for _ = 1 to 10 do
    Link.send (Link.endpoint_a l) (mk_pkt 1000)
  done;
  Engine.run e;
  Testutil.check_int "delivered" 3 !got;
  (* congestion drops land in their own counter, not in random loss *)
  Testutil.check_int "queue_full" 7
    (Registry.counter_value (Obs.metrics obs) "link.queue_full");
  Testutil.check_int "dropped" 0
    (Registry.counter_value (Obs.metrics obs) "link.dropped")

let test_random_loss () =
  let e, l = setup ~config:{ Link.default_config with loss_prob = 0.3 } () in
  let got = ref 0 in
  Link.set_receiver (Link.endpoint_b l) (fun _ -> incr got);
  for i = 0 to 199 do
    ignore
      (Engine.schedule e ~delay:(Time.ms i) (fun () ->
           Link.send (Link.endpoint_a l) (mk_pkt 100)))
  done;
  Engine.run e;
  Testutil.check_bool "lossy" true (!got < 200 && !got > 100)

let test_jitter_bounds () =
  let e, l =
    setup
      ~config:
        { Link.default_config with jitter = Time.ms 5; delay = Time.ms 10 }
      ()
  in
  let ok = ref true in
  let sent_at = ref Time.zero in
  Link.set_receiver (Link.endpoint_b l) (fun _ ->
      let d = Engine.now e - !sent_at in
      (* serialization for 120B @10Mb/s = 96us *)
      if d < Time.ms 10 || d > Time.add (Time.ms 15) (Time.us 96) then
        ok := false);
  for i = 0 to 50 do
    ignore
      (Engine.schedule e ~delay:(Time.ms (i * 20)) (fun () ->
           sent_at := Engine.now e;
           Link.send (Link.endpoint_a l) (mk_pkt 100)))
  done;
  Engine.run e;
  Testutil.check_bool "jitter within bounds" true !ok

let suite =
  [
    Alcotest.test_case "bidirectional delivery" `Quick
      test_delivery_both_directions;
    Alcotest.test_case "bandwidth + propagation latency" `Quick test_latency;
    Alcotest.test_case "queue serializes back-to-back packets" `Quick
      test_queue_serializes;
    Alcotest.test_case "queue overflow drops" `Quick
      test_queue_overflow_drops;
    Alcotest.test_case "random loss" `Quick test_random_loss;
    Alcotest.test_case "jitter within bounds" `Quick test_jitter_bounds;
  ]

let test_duplication () =
  let e, l = setup ~config:{ Link.default_config with dup_prob = 1.0 } () in
  let got = ref 0 in
  Link.set_receiver (Link.endpoint_b l) (fun _ -> incr got);
  Link.send (Link.endpoint_a l) (mk_pkt 100);
  Engine.run e;
  Testutil.check_int "duplicated" 2 !got

let test_reordering () =
  let e, l =
    setup
      ~config:
        { Link.default_config with reorder_prob = 0.4; delay = Time.ms 1 }
      ()
  in
  let order = ref [] in
  Link.set_receiver (Link.endpoint_b l) (fun p ->
      match p.Ipv4_packet.payload with
      | Ipv4_packet.Raw { data; _ } ->
        order := int_of_string (String.trim data) :: !order
      | _ -> ());
  for i = 1 to 50 do
    Link.send (Link.endpoint_a l)
      (Ipv4_packet.make ~src:(Ipaddr.of_int 1) ~dst:(Ipaddr.of_int 2)
         (Ipv4_packet.Raw { proto = 99; data = Printf.sprintf "%6d" i }))
  done;
  Engine.run e;
  let received = List.rev !order in
  Testutil.check_int "nothing lost" 50 (List.length received);
  Testutil.check_bool "some out of order" true
    (received <> List.sort compare received)

let suite =
  suite
  @ [
      Alcotest.test_case "duplication" `Quick test_duplication;
      Alcotest.test_case "reordering" `Quick test_reordering;
    ]
