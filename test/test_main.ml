let () =
  Alcotest.run "tcpfo"
    [
      ("seq32", Test_seq32.suite);
      ("rangeset", Test_rangeset.suite);
      ("checksum", Test_checksum.suite);
      ("interval_buf", Test_interval_buf.suite);
      ("bytebuf", Test_bytebuf.suite);
      ("heap", Test_heap.suite);
      ("engine", Test_engine.suite);
      ("rng_stats", Test_rng_stats.suite);
      ("wire", Test_wire.suite);
      ("medium", Test_medium.suite);
      ("link", Test_link.suite);
      ("arp", Test_arp.suite);
      ("tcp_basic", Test_tcp_basic.suite);
      ("tcp_transfer", Test_tcp_transfer.suite);
      ("tcp_loss", Test_tcp_loss.suite);
      ("tcp_close", Test_tcp_close.suite);
      ("tcp_options", Test_tcp_options.suite);
      ("tcp_edge", Test_tcp_edge.suite);
      ("bridge", Test_bridge_unit.suite);
      ("failover", Test_failover.suite);
      ("failover_prop", Test_failover_prop.suite);
      ("apps", Test_apps.suite);
      ("chain", Test_chain.suite);
      ("misc", Test_misc.suite);
      ("heartbeat", Test_heartbeat.suite);
      ("fault", Test_fault.suite);
      ("soak", Test_soak.suite);
      ("statex", Test_statex.suite);
      ("transfer", Test_transfer.suite);
      ("topo", Test_topo.suite);
      ("pool", Test_pool.suite);
      ("dispatch", Test_dispatch.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
    ]
