(* tcpfo — command-line driver for the TCP-failover simulator.

     dune exec bin/tcpfo_cli.exe -- failover --kill-at 50 --size 400 --trace
     dune exec bin/tcpfo_cli.exe -- failover --victim secondary
     dune exec bin/tcpfo_cli.exe -- trace --size 4

   The [failover] scenario downloads a reply through the replicated pair,
   crashes one replica at a chosen time, and reports stream integrity and
   the client-visible stall.  The [trace] scenario prints every TCP
   segment that crosses the wire of a small fault-free transfer — useful
   for seeing the bridge's sequence-number translation and joint ACKs. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
open Cmdliner

(* Subscribe a console printer to the world's event bus.  With [segments]
   every Segment_tx/Segment_rx is shown (the old per-host packet tap);
   without it only the control-plane events (divert, merge, hold,
   failover phases, ARP takeover) appear. *)
let attach_trace ?(segments = true) world =
  ignore
    (Event.Bus.attach_console
       ~filter:(fun ev -> segments || not (Event.is_segment ev))
       (Obs.bus (World.obs world)))

let print_stats world =
  Printf.printf "engine: %d events processed in %.3f simulated ms\n"
    (Engine.processed (World.engine world))
    (float_of_int (World.now world) /. 1e6);
  print_string (Registry.dump (World.metrics world))

let build_world ?fault_plan ?(standbys = 0) ~seed ~detector_ms ~trace () =
  let world = World.create ~seed () in
  let standby_names =
    List.init standbys (fun i -> Printf.sprintf "standby%d" (i + 1))
  in
  let topo =
    Topo.build world
      (Topo.segment "lan"
      :: Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client"
      :: Topo.host ~addr:"10.0.0.1" ~seg:"lan" "primary"
      :: Topo.host ~addr:"10.0.0.2" ~seg:"lan" "secondary"
      :: (List.mapi
            (fun i name ->
              Topo.host ~addr:(Printf.sprintf "10.0.0.%d" (20 + i)) ~seg:"lan"
                name)
            standby_names
         @ [
             Topo.group
               ~members:("primary" :: "secondary" :: standby_names)
               "pool";
           ]))
  in
  let lan = Topo.segment_of topo "lan" in
  let client = Topo.host_of topo "client" in
  let primary = Topo.host_of topo "primary" in
  let secondary = Topo.host_of topo "secondary" in
  let config =
    Failover_config.make ~service_ports:[ 80 ]
      ~detector_timeout:(Time.ms detector_ms) ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  (match fault_plan with
  | None -> ()
  | Some text -> (
    match Tcpfo_fault.Fault.parse text with
    | Error m ->
      prerr_endline ("tcpfo: bad --fault-plan: " ^ m);
      exit 2
    | Ok plan ->
      let env =
        {
          Tcpfo_fault.Injector.engine = World.engine world;
          rng = World.fresh_rng world;
          hosts =
            [
              ("client", client); ("primary", primary);
              ("secondary", secondary);
            ];
          nets = [ ("lan", Tcpfo_fault.Injector.Medium_net lan) ];
        }
      in
      ignore (Tcpfo_fault.Injector.install env plan)));
  if trace then attach_trace world;
  (world, lan, client, primary, secondary, repl)

let serve_reply repl ~reply =
  Replicated.listen repl ~port:80 ~on_accept:(fun ~role:_ tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= 3 then begin
            let size = String.length reply in
            let off = ref 0 in
            let rec pump () =
              if !off < size then begin
                let want = min 32768 (size - !off) in
                let n = Tcb.send tcb (String.sub reply !off want) in
                off := !off + n;
                if n < want then Tcb.set_on_drain tcb pump else pump ()
              end
              else Tcb.close tcb
            in
            pump ()
          end))

let run_failover victim kill_at_ms size_kb detector_ms trace stats seed
    fault_plan repair_at_ms rekill_at_ms standbys =
  let world, lan, client, primary, secondary, repl =
    build_world ?fault_plan ~standbys ~seed ~detector_ms
      ~trace:(trace && size_kb <= 16) ()
  in
  let reply =
    String.init (size_kb * 1024) (fun i -> Char.chr ((i * 31) land 0xFF))
  in
  serve_reply repl ~reply;
  Replicated.set_on_event repl (fun e ->
      Printf.printf "[%10.3f ms] %s\n%!"
        (Time.to_ms (World.now world))
        (Replicated.event_to_string e));
  let buf = Buffer.create (size_kb * 1024) in
  let last = ref Time.zero in
  let stall = ref 0 in
  let finished = ref None in
  let conn =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  Tcb.set_on_established conn (fun () ->
      last := World.now world;
      ignore (Tcb.send conn "get"));
  Tcb.set_on_data conn (fun d ->
      let t = World.now world in
      stall := max !stall (t - !last);
      last := t;
      Buffer.add_string buf d);
  Tcb.set_on_eof conn (fun () -> finished := Some (World.now world));
  ignore
    (Engine.schedule (World.engine world) ~delay:(Time.ms kill_at_ms)
       (fun () ->
         Printf.printf "[%10.3f ms] crashing the %s\n%!"
           (Time.to_ms (World.now world))
           victim;
         match victim with
         | "secondary" -> Replicated.kill_secondary repl
         | _ -> Replicated.kill_primary repl));
  (match repair_at_ms with
  | None -> ()
  | Some ms ->
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms ms) (fun () ->
           if Replicated.status repl = `Normal then
             Printf.printf
               "[%10.3f ms] pair is healthy — nothing to reintegrate\n%!"
               (Time.to_ms (World.now world))
           else begin
             Printf.printf "[%10.3f ms] reintegrating a repaired host\n%!"
               (Time.to_ms (World.now world));
             let fresh =
               World.add_host world lan ~name:"repaired" ~addr:"10.0.0.3" ()
             in
             let survivor =
               if victim = "secondary" then primary else secondary
             in
             World.warm_arp [ client; survivor; fresh ];
             try Replicated.reintegrate repl ~secondary:fresh
             with Invalid_argument m ->
               Printf.printf "[%10.3f ms] reintegration refused: %s\n%!"
                 (Time.to_ms (World.now world))
                 m
           end)));
  (match rekill_at_ms with
  | None -> ()
  | Some ms ->
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms ms) (fun () ->
           Printf.printf "[%10.3f ms] crashing the surviving original\n%!"
             (Time.to_ms (World.now world));
           Replicated.kill_primary repl)));
  World.run world ~for_:(Time.sec 120.0);
  (match !finished with
  | Some t ->
    Printf.printf
      "transfer complete at %.3f ms; stream %s; max client stall %.3f ms\n"
      (Time.to_ms t)
      (if Buffer.contents buf = reply then "BYTE-EXACT" else "CORRUPTED")
      (Time.to_ms !stall)
  | None -> Printf.printf "transfer did not complete\n");
  (match repair_at_ms with
  | None -> ()
  | Some _ ->
    let s = Replicated.transfer_stats repl in
    Printf.printf
      "hot state transfer: %d offered, %d accepted, %d rejected, %d timed \
       out, %d snapshot bytes\n"
      s.Tcpfo_statex.Transfer.offers_sent s.Tcpfo_statex.Transfer.accepts
      s.Tcpfo_statex.Transfer.rejects s.Tcpfo_statex.Transfer.timeouts
      s.Tcpfo_statex.Transfer.transfer_bytes);
  if stats then print_stats world;
  if Buffer.contents buf = reply then 0 else 1

let run_trace size_kb stats seed =
  let world, _, client, _, _, repl =
    build_world ~seed ~detector_ms:30 ~trace:true ()
  in
  let reply =
    String.init (size_kb * 1024) (fun i -> Char.chr ((i * 31) land 0xFF))
  in
  serve_reply repl ~reply;
  let buf = Buffer.create 1024 in
  let conn =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "get"));
  Tcb.set_on_data conn (fun d -> Buffer.add_string buf d);
  World.run world ~for_:(Time.sec 5.0);
  Printf.printf "received %d bytes, %s\n" (Buffer.length buf)
    (if Buffer.contents buf = reply then "byte-exact" else "CORRUPTED");
  if stats then print_stats world;
  0

let victim_arg =
  Arg.(value & opt (enum [ ("primary", "primary"); ("secondary", "secondary") ])
         "primary"
       & info [ "victim" ] ~doc:"Which replica to crash.")

let kill_at_arg =
  Arg.(value & opt int 50 & info [ "kill-at" ] ~docv:"MS"
         ~doc:"Crash time in milliseconds.")

let size_arg =
  Arg.(value & opt int 400 & info [ "size" ] ~docv:"KB"
         ~doc:"Reply size in KB.")

let detector_arg =
  Arg.(value & opt int 30 & info [ "detector" ] ~docv:"MS"
         ~doc:"Fault-detector timeout in milliseconds.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Print every TCP segment (small transfers only).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Dump the metrics registry after the run.")

let fault_plan_arg =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN"
         ~doc:"Scripted fault plan run alongside the scenario, e.g. \
               'at 10ms loss lan 0.3 for 5ms; at 30ms pause client; at \
               40ms resume client'.  Hosts: client, primary, secondary; \
               net: lan.  'pause'/'resume' freeze a host's timers and \
               traffic reversibly (a VM pause), unlike 'kill' which is a \
               permanent crash.")

let repair_at_arg =
  Arg.(value & opt (some int) None & info [ "repair-at" ] ~docv:"MS"
         ~doc:"Reintegrate a fresh host at this time (milliseconds); live \
               connections are re-replicated onto it via hot state \
               transfer.  Must be after the failure is detected.")

let rekill_at_arg =
  Arg.(value & opt (some int) None & info [ "rekill-at" ] ~docv:"MS"
         ~doc:"Crash the surviving original replica at this time \
               (milliseconds) — use with --repair-at to demonstrate a \
               connection surviving a second failover on the repaired \
               host.")

let standbys_arg =
  Arg.(value & opt int 0 & info [ "standbys" ] ~docv:"N"
         ~doc:"Cold standbys behind the active pair (an N+2 replica \
               pool).  When a replica dies the next standby is promoted \
               and live connections re-replicate onto it, so a later \
               --rekill-at cascades instead of ending the pool.")

let failover_cmd =
  Cmd.v (Cmd.info "failover" ~doc:"Crash a replica mid-transfer.")
    Term.(
      const run_failover $ victim_arg $ kill_at_arg $ size_arg $ detector_arg
      $ trace_arg $ stats_arg $ seed_arg $ fault_plan_arg $ repair_at_arg
      $ rekill_at_arg $ standbys_arg)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Fault-free transfer with a full packet trace.")
    Term.(const run_trace $ Arg.(value & opt int 4 & info [ "size" ]
                                   ~docv:"KB" ~doc:"Reply size in KB.")
          $ stats_arg $ seed_arg)

let run_chain n_replicas kills_ms size_kb trace stats seed =
  let world = World.create ~seed () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"client" ~addr:"10.0.0.10" () in
  let replicas =
    List.init n_replicas (fun i ->
        World.add_host world lan
          ~name:(Printf.sprintf "replica%d" i)
          ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
          ())
  in
  World.warm_arp (client :: replicas);
  if trace then attach_trace ~segments:false world;
  let chain =
    Tcpfo_core.Chain.create ~replicas ~config:Failover_config.default ()
  in
  Tcpfo_core.Chain.set_on_event chain (fun e ->
      Printf.printf "[%10.3f ms] %s\n%!"
        (Time.to_ms (World.now world))
        (Tcpfo_core.Chain.event_to_string e));
  let reply =
    String.init (size_kb * 1024) (fun i -> Char.chr ((i * 31) land 0xFF))
  in
  Tcpfo_core.Chain.listen chain ~port:80 ~on_accept:(fun ~replica:_ tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= 3 then begin
            let size = String.length reply in
            let off = ref 0 in
            let rec pump () =
              if !off < size then begin
                let want = min 32768 (size - !off) in
                let n = Tcb.send tcb (String.sub reply !off want) in
                off := !off + n;
                if n < want then Tcb.set_on_drain tcb pump else pump ()
              end
              else Tcb.close tcb
            in
            pump ()
          end));
  let buf = Buffer.create (size_kb * 1024) in
  let finished = ref None in
  let conn =
    Stack.connect (Host.tcp client)
      ~remote:(Tcpfo_core.Chain.service_addr chain, 80)
      ()
  in
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "get"));
  Tcb.set_on_data conn (fun d -> Buffer.add_string buf d);
  Tcb.set_on_eof conn (fun () -> finished := Some (World.now world));
  List.iteri
    (fun i ms ->
      ignore
        (Engine.schedule (World.engine world) ~delay:(Time.ms ms) (fun () ->
             Printf.printf "[%10.3f ms] crashing replica %d\n%!"
               (Time.to_ms (World.now world))
               i;
             Tcpfo_core.Chain.kill chain i)))
    kills_ms;
  World.run world ~for_:(Time.sec 120.0);
  (match !finished with
  | Some t ->
    Printf.printf "transfer complete at %.3f ms; stream %s; survivors: %s\n"
      (Time.to_ms t)
      (if Buffer.contents buf = reply then "BYTE-EXACT" else "CORRUPTED")
      (String.concat ","
         (List.map string_of_int (Tcpfo_core.Chain.alive chain)))
  | None -> Printf.printf "transfer did not complete\n");
  if stats then print_stats world;
  if Buffer.contents buf = reply then 0 else 1

let chain_cmd =
  let n_arg =
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"N"
           ~doc:"Chain length (>= 2).")
  in
  let kills_arg =
    Arg.(value & opt (list int) [ 40 ] & info [ "kill-at" ] ~docv:"MS,..."
           ~doc:"Crash replica 0 at the first time, replica 1 at the \
                 second, ... (milliseconds).")
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Daisy-chained replication under successive crashes.")
    Term.(const run_chain $ n_arg $ kills_arg $ size_arg $ trace_arg
          $ stats_arg $ seed_arg)

(* A small dispatcher fleet end to end: N two-replica shards behind one
   sharded service address, a download through the dispatcher's NAT,
   the pinned shard's replica crashed mid-stream, a repaired host
   reintegrated — with the per-shard weight timeline printed as the
   gradual-shifting machinery drains and restores the victim. *)
let run_fleet shards victim size_kb kill_at_ms repair_at_ms trace stats seed =
  let module Dispatch = Tcpfo_dispatch.Dispatch in
  let world = World.create ~seed () in
  let gw = "10.0.0.254" in
  let shard_name i = Printf.sprintf "shard%d" i in
  let spec =
    [ Topo.segment "front"; Topo.segment "back";
      Topo.host ~addr:"10.1.0.10" ~seg:"front" "client" ]
    @ List.concat
        (List.init shards (fun i ->
             [
               Topo.host ~gateway:gw
                 ~addr:(Printf.sprintf "10.0.0.%d" (1 + (2 * i)))
                 ~seg:"back"
                 (Printf.sprintf "s%da" i);
               Topo.host ~gateway:gw
                 ~addr:(Printf.sprintf "10.0.0.%d" (2 + (2 * i)))
                 ~seg:"back"
                 (Printf.sprintf "s%db" i);
             ]))
    @ List.init shards (fun i ->
          Topo.group
            ~members:[ Printf.sprintf "s%da" i; Printf.sprintf "s%db" i ]
            (shard_name i))
    @ [
        Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
        Topo.dispatch ~service:"fleet" ~back:gw
          ~shards:(List.init shards shard_name)
          "disp";
      ]
  in
  let topo = Topo.build world spec in
  let client = Topo.host_of topo "client" in
  if trace then attach_trace ~segments:false world;
  let config = Failover_config.make ~service_ports:[ 80 ] () in
  let disp, pools = Dispatch.of_topo topo ~name:"disp" ~config () in
  let reply =
    String.init (size_kb * 1024) (fun i -> Char.chr ((i * 31) land 0xFF))
  in
  List.iter (fun (_, pool) -> serve_reply pool ~reply) pools;
  List.iter
    (fun (name, pool) ->
      Replicated.set_on_event pool (fun e ->
          Printf.printf "[%10.3f ms] %s: %s\n%!"
            (Time.to_ms (World.now world))
            name
            (Replicated.event_to_string e)))
    pools;
  (* weight timeline: sample every millisecond, print on change *)
  let weights () =
    String.concat " "
      (List.map
         (fun (name, _) ->
           Printf.sprintf "%s=%d" name (Dispatch.weight disp name))
         pools)
  in
  let last_weights = ref (weights ()) in
  let rec watch () =
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms 1) (fun () ->
           let w = weights () in
           if w <> !last_weights then begin
             last_weights := w;
             Printf.printf "[%10.3f ms] weights: %s\n%!"
               (Time.to_ms (World.now world))
               w
           end;
           watch ()))
  in
  watch ();
  let buf = Buffer.create (size_kb * 1024) in
  let finished = ref None in
  let conn =
    Stack.connect (Host.tcp client) ~remote:(Dispatch.service disp, 80) ()
  in
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "get"));
  Tcb.set_on_data conn (fun d -> Buffer.add_string buf d);
  Tcb.set_on_eof conn (fun () -> finished := Some (World.now world));
  let victim_shard = ref (shard_name 0) in
  ignore
    (Engine.schedule (World.engine world) ~delay:(Time.ms kill_at_ms)
       (fun () ->
         (match
            Dispatch.pinned_shard disp
              ~client:(Host.addr client, snd (Tcb.local_endpoint conn))
          with
         | Some name -> victim_shard := name
         | None -> ());
         Printf.printf "[%10.3f ms] crashing the %s of %s (the pinned shard)\n%!"
           (Time.to_ms (World.now world))
           victim !victim_shard;
         let pool = List.assoc !victim_shard pools in
         match victim with
         | "secondary" -> Replicated.kill_secondary pool
         | _ -> Replicated.kill_primary pool));
  (match repair_at_ms with
  | None -> ()
  | Some ms ->
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms ms) (fun () ->
           let pool = List.assoc !victim_shard pools in
           Printf.printf "[%10.3f ms] reintegrating a repaired host into %s\n%!"
             (Time.to_ms (World.now world))
             !victim_shard;
           let fresh =
             World.add_host world
               (Topo.segment_of topo "back")
               ~name:"repaired" ~addr:"10.0.0.200" ()
           in
           Host.set_default_via_lan fresh
             ~gateway:(Tcpfo_packet.Ipaddr.of_string gw);
           World.warm_arp (fresh :: Topo.group_of topo !victim_shard);
           Topo.warm_dispatch_arp topo "disp" [ fresh ];
           Dispatch.arm_probe_responder fresh;
           try Replicated.reintegrate pool ~secondary:fresh
           with Invalid_argument m ->
             Printf.printf "[%10.3f ms] reintegration refused: %s\n%!"
               (Time.to_ms (World.now world))
               m)));
  World.run world ~for_:(Time.sec 10.0);
  (match !finished with
  | Some t ->
    Printf.printf "transfer complete at %.3f ms; stream %s\n" (Time.to_ms t)
      (if Buffer.contents buf = reply then "BYTE-EXACT" else "CORRUPTED")
  | None -> Printf.printf "transfer did not complete\n");
  let ctr = Dispatch.counters disp in
  Printf.printf
    "dispatcher: %d flows routed (%d drained to siblings), %d refused, %d \
     unmatched, %d isolation drops, %d probes (%d answered)\n"
    ctr.Dispatch.routed ctr.Dispatch.drained ctr.Dispatch.refused
    ctr.Dispatch.unmatched ctr.Dispatch.isolation_drops
    ctr.Dispatch.probes_sent ctr.Dispatch.probe_replies;
  Printf.printf "final weights: %s\n" (weights ());
  if stats then print_stats world;
  if Buffer.contents buf = reply then 0 else 1

let fleet_cmd =
  let shards_arg =
    Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N"
           ~doc:"Number of two-replica shard pools behind the dispatcher.")
  in
  let repair_fleet_arg =
    Arg.(value & opt (some int) (Some 100) & info [ "repair-at" ] ~docv:"MS"
           ~doc:"Reintegrate a repaired host into the victim shard at this \
                 time (milliseconds); the shard's weight then ramps back \
                 to max.  Pass no value to skip repair.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"A sharded dispatcher fleet: crash the pinned shard \
             mid-transfer and watch traffic drain and return.")
    Term.(
      const run_fleet $ shards_arg $ victim_arg $ size_arg $ kill_at_arg
      $ repair_fleet_arg $ trace_arg $ stats_arg $ seed_arg)

(* Parse and validate a topology file, then print the elaborated
   host/segment table — a dry run of exactly what Topo.build would
   construct (same MAC assignment, same declaration order). *)
let run_topo file validate_only seed =
  let read_all ic = really_input_string ic (in_channel_length ic) in
  let text =
    if file = "-" then In_channel.input_all stdin
    else
      match open_in_bin file with
      | ic ->
        let t = read_all ic in
        close_in ic;
        t
      | exception Sys_error m ->
        prerr_endline ("tcpfo: " ^ m);
        exit 2
  in
  match Topo.parse text with
  | Error m ->
    prerr_endline ("tcpfo: parse error: " ^ m);
    2
  | Ok spec -> (
    match Topo.validate spec with
    | Error m ->
      prerr_endline ("tcpfo: invalid topology: " ^ m);
      1
    | Ok () ->
      if validate_only then print_endline "topology OK"
      else begin
        let world = World.create ~seed () in
        print_string (Topo.to_table (Topo.build world spec))
      end;
      0)

let topo_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Topology spec file ('-' for stdin): lines of 'lan NAME', \
                 'link NAME bw=.. delay=..', 'host NAME ADDR SEGMENT \
                 [gw=ADDR]', 'router NAME SEGMENT LAN_ADDR LINK WAN_ADDR', \
                 'wanhost NAME ADDR LINK', 'group NAME MEMBER MEMBER...', \
                 'service NAME ADDR SEGMENT', 'dispatch NAME SHARD... \
                 service=NAME back=ADDR'; '#' comments.")
  in
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Only parse and validate; print nothing but the verdict.")
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:"Parse, validate and elaborate a declarative topology spec.  \
             Exits 0 when the spec is well formed, 1 when it parses but \
             fails validation, 2 on a parse error.")
    Term.(const run_topo $ file_arg $ validate_arg $ seed_arg)

let () =
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "tcpfo"
             ~doc:"Transparent TCP connection failover simulator (DSN 2003)")
          [ failover_cmd; trace_cmd; chain_cmd; fleet_cmd; topo_cmd ]))
