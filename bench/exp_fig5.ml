(* E4 — Figure 5: send and receive rates for long data streams (100 MB in
   the paper; configurable for quick runs). *)

open Harness
module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Bulk = Tcpfo_apps.Bulk

(* Send rate: client streams [size] bytes at the service; the clock stops
   when the server application has consumed the last byte. *)
let send_rate mode ~size ~seed =
  let env = make_env ~seed mode in
  let finished = ref None in
  env.install ~port:5001 (fun tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= size then finished := Some (now env));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  run env ~for_:(Time.ms 5);
  let started = ref Time.zero in
  let c =
    Stack.connect (Host.tcp env.client) ~remote:(env.service, 5001) ()
  in
  Tcb.set_on_established c (fun () ->
      started := now env;
      timed_send (Host.clock env.client) c ~size ~on_buffered:(fun () ->
          Tcb.close c));
  run env ~for_:(Time.sec 600.0);
  match !finished with
  | Some t -> Some (kb_per_s ~bytes:size ~ns:(t - !started))
  | None -> None

(* Receive rate: the server streams [size] bytes at the client. *)
let receive_rate mode ~size ~seed =
  let env = make_env ~seed mode in
  env.install ~port:5002 (fun tcb ->
      (* server-side write loop: backpressure-driven, wire-limited (the
         server's copy costs are negligible against 100 MB of wire time) *)
      Tcb.set_on_established tcb (fun () ->
          let chunk = String.make 32768 'r' in
          let off = ref 0 in
          let rec pump () =
            if !off < size then begin
              let want = min 32768 (size - !off) in
              let n =
                Tcb.send tcb
                  (if want = 32768 then chunk else String.sub chunk 0 want)
              in
              off := !off + n;
              if n < want then Tcb.set_on_drain tcb pump else pump ()
            end
            else Tcb.close tcb
          in
          pump ()));
  run env ~for_:(Time.ms 5);
  let started = ref Time.zero in
  let finished = ref None in
  let received = ref 0 in
  let c =
    Stack.connect (Host.tcp env.client) ~remote:(env.service, 5002) ()
  in
  Tcb.set_on_established c (fun () -> started := now env);
  Tcb.set_on_data c (fun d ->
      received := !received + String.length d;
      if !received >= size then finished := Some (now env));
  run env ~for_:(Time.sec 600.0);
  match !finished with
  | Some t -> Some (kb_per_s ~bytes:size ~ns:(t - !started))
  | None -> None

let run_exp ~size =
  print_header
    (Printf.sprintf
       "E4 / Figure 5: stream rates for %d MB transfers (paper: 100 MB)"
       (size / (1 lsl 20)));
  let get f = match f with Some v -> v | None -> nan in
  (* the four streams are independent worlds: run them as one task batch *)
  let s_std, s_fo, r_std, r_fo =
    match
      run_tasks
        [ (fun () -> send_rate Std ~size ~seed:41);
          (fun () -> send_rate Failover ~size ~seed:42);
          (fun () -> receive_rate Std ~size ~seed:43);
          (fun () -> receive_rate Failover ~size ~seed:44) ]
    with
    | [ a; b; c; d ] -> (get a, get b, get c, get d)
    | _ -> assert false
  in
  Printf.printf "%-14s %14s %14s %8s %18s\n" "" "std [KB/s]" "failover"
    "ratio" "paper (std/fo)";
  Printf.printf "%-14s %14.2f %14.2f %8.2f %18s\n" "send rate" s_std s_fo
    (s_fo /. s_std) "7833.70/5835.80";
  Printf.printf "%-14s %14.2f %14.2f %8.2f %18s\n" "receive rate" r_std r_fo
    (r_fo /. r_std) "8707.88/3510.03";
  Printf.printf
    "shape check: the receive-rate penalty (~0.40 in the paper) is much\n\
     larger than the send-rate penalty (~0.75) because every\n\
     server-to-client byte crosses the shared segment twice.\n%!";
  dump_metrics ~exp:"fig5"
