(* E10: failover soak — hundreds of seeded fault scenarios (kill the
   primary or secondary during handshake / mid-transfer / in the
   FIN window / at idle, under loss bursts, frame corruption, cross
   traffic, client pauses and partitions) with the §2 correctness
   requirements checked as hard invariants on every run.

   Scenario construction, chaos plan and kill instant all derive from
   the seed alone (see Tcpfo_fault.Soak), so any seed printed in a
   failure report reproduces the run — including a byte-identical
   metrics snapshot, which this experiment re-verifies on a sample of
   seeds after the sweep. *)

module Soak = Tcpfo_fault.Soak

let bucket outcomes key_of =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (o : Soak.outcome) ->
      let k = key_of o.scenario in
      let ok, bad = Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0) in
      if o.violations = [] then Hashtbl.replace tbl k (ok + 1, bad)
      else Hashtbl.replace tbl k (ok, bad + 1))
    outcomes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

let print_buckets title rows =
  Printf.printf "  %-12s %6s %6s\n" title "pass" "FAIL";
  List.iter
    (fun (k, (ok, bad)) -> Printf.printf "  %-12s %6d %6d\n" k ok bad)
    rows

let victim_key (s : Soak.scenario) =
  match s.victim with
  | Soak.Nobody -> "no-kill"
  | Soak.Primary -> "primary/" ^ (match s.phase with
      | Soak.Handshake -> "hs" | Soak.Transfer -> "xfer"
      | Soak.Fin -> "fin" | Soak.Idle -> "idle")
  | Soak.Secondary -> "secondary/" ^ (match s.phase with
      | Soak.Handshake -> "hs" | Soak.Transfer -> "xfer"
      | Soak.Fin -> "fin" | Soak.Idle -> "idle")

let chaos_key (s : Soak.scenario) =
  match s.chaos with
  | Soak.Calm -> "calm"
  | Soak.Burst -> "burst"
  | Soak.Drops -> "drops"
  | Soak.Corruption -> "corrupt"
  | Soak.Cross_traffic -> "cross"
  | Soak.Pause_client -> "pause"
  | Soak.Partition_client -> "partition"

(* Machine-readable per-axis scenario counts: one JSON line a CI
   artifact can diff run-to-run, proving each axis keeps being drawn as
   the scenario space evolves (a forcing-rule regression that silently
   starves an axis shows up here as a zero). *)
let pool_key (s : Soak.scenario) =
  match s.pool with
  | Soak.Pair -> "pair"
  | Soak.Pool3 { rejoin_first = false } -> "pool3"
  | Soak.Pool3 { rejoin_first = true } -> "pool3_rejoin"

let role_key (s : Soak.scenario) =
  match s.role with
  | Soak.Server -> "server"
  | Soak.Backend_client -> "backend_client"
  | Soak.Chain3 -> "chain3"

let repair_key (s : Soak.scenario) =
  match s.repair with
  | Soak.No_repair -> "none"
  | Soak.Repair -> "repair"
  | Soak.Repair_then_rekill -> "repair_rekill"

let fleet_key (s : Soak.scenario) = if s.fleet then "fleet" else "direct"
let ckpt_key (s : Soak.scenario) = if s.checkpointed then "ckpt" else "plain"

let axes_line outcomes =
  let axis key_of keys =
    let count k =
      List.length
        (List.filter (fun (o : Soak.outcome) -> key_of o.scenario = k) outcomes)
    in
    String.concat ","
      (List.map (fun k -> Printf.sprintf "%S:%d" k (count k)) keys)
  in
  Printf.printf
    "[soak-axes] \
     {\"pool\":{%s},\"role\":{%s},\"repair\":{%s},\"fleet\":{%s},\"ckpt\":{%s}}\n\
     %!"
    (axis pool_key [ "pair"; "pool3"; "pool3_rejoin" ])
    (axis role_key [ "server"; "backend_client"; "chain3" ])
    (axis repair_key [ "none"; "repair"; "repair_rekill" ])
    (axis fleet_key [ "direct"; "fleet" ])
    (axis ckpt_key [ "plain"; "ckpt" ])

let write_report path failures =
  let oc = open_out path in
  Printf.fprintf oc "# soak invariant failures (%d)\n" (List.length failures);
  List.iter
    (fun (o : Soak.outcome) ->
      Printf.fprintf oc "%s\n" (Soak.describe o.scenario);
      List.iter (Printf.fprintf oc "  violation: %s\n") o.violations;
      Printf.fprintf oc "  replay: bench/main.exe --exp soak --seeds 1 \
                         --first-seed %d\n"
        o.scenario.Soak.seed)
    failures;
  close_out oc;
  Printf.printf "  [failure report -> %s]\n%!" path

(* Replay determinism: the same seed must reproduce the same world
   byte for byte, which we check through the strongest observable —
   the sorted JSON metrics snapshot. *)
let replay_check outcomes =
  let n = List.length outcomes in
  let sample =
    List.filteri (fun i _ -> i = 0 || i = n / 2 || i = n - 1) outcomes
  in
  List.for_all
    (fun (o : Soak.outcome) ->
      let again = Soak.run o.scenario in
      let same = String.equal again.metrics o.metrics in
      if not same then
        Printf.printf "  REPLAY DIVERGED: %s\n" (Soak.describe o.scenario);
      same)
    sample

let run_exp ~seeds ?(first_seed = 1) ?report () =
  Harness.print_header
    (Printf.sprintf "E10: failover soak (%d seeded fault scenarios)" seeds);
  let outcomes =
    Harness.map_trials seeds (fun i ->
        Soak.run ~on_world:Harness.note_world
          (Soak.scenario_of_seed (first_seed + i)))
  in
  print_buckets "kill" (bucket outcomes victim_key);
  print_newline ();
  print_buckets "chaos" (bucket outcomes chaos_key);
  axes_line outcomes;
  let failures =
    List.filter (fun (o : Soak.outcome) -> o.violations <> []) outcomes
  in
  List.iter
    (fun (o : Soak.outcome) ->
      Printf.printf "  FAIL %s\n" (Soak.describe o.scenario);
      List.iter (Printf.printf "       %s\n") o.violations)
    failures;
  let replays_ok = replay_check outcomes in
  Printf.printf "  invariant violations : %d / %d scenarios\n"
    (List.length failures) seeds;
  Printf.printf "  seed-replay metrics  : %s\n%!"
    (if replays_ok then "byte-identical" else "DIVERGED");
  (match report with
  | Some path when failures <> [] || not replays_ok ->
    write_report path failures
  | _ -> ());
  Harness.dump_metrics ~exp:"soak";
  List.length failures + if replays_ok then 0 else 1
