(* E3 — Figure 4: server-to-client data transfer.  The client sends a
   4-byte request; the server answers with a reply of the given size; the
   series is the time from the client starting to send until the last
   reply byte arrives. *)

open Harness
module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Bulk = Tcpfo_apps.Bulk

let one_trial mode ~size ~seed =
  let env = make_env ~seed mode in
  (* an Rr server with the requested reply size *)
  env.install ~port:5003 (fun tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= 4 then begin
            got := 0;
            let off = ref 0 in
            let rec pump () =
              if !off < size then begin
                let want = min 32768 (size - !off) in
                let n = Tcb.send tcb (String.make want 'r') in
                off := !off + n;
                if n < want then Tcb.set_on_drain tcb pump else pump ()
              end
            in
            pump ()
          end);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  run env ~for_:(Time.ms 5);
  let started = ref Time.zero in
  let finished = ref None in
  let received = ref 0 in
  let c =
    Stack.connect (Host.tcp env.client) ~remote:(env.service, 5003) ()
  in
  Tcb.set_on_established c (fun () ->
      started := now env;
      ignore (Tcb.send c "PING"));
  Tcb.set_on_data c (fun d ->
      received := !received + String.length d;
      if !received >= size then finished := Some (now env));
  run env ~for_:(Time.sec 60.0);
  Option.map (fun t -> t - !started) !finished

(* Fan the whole (size, trial) product out in one batch; see exp_fig3. *)
let series mode ~sizes ~trials =
  let sizes_arr = Array.of_list sizes in
  let results =
    Array.of_list
      (map_trials
         (Array.length sizes_arr * trials)
         (fun k ->
           one_trial mode ~size:sizes_arr.(k / trials)
             ~seed:(3000 + (k mod trials))))
  in
  List.mapi
    (fun j size ->
      let samples =
        List.filter_map Fun.id
          (Array.to_list (Array.sub results (j * trials) trials))
      in
      (size, if samples = [] then nan
             else float_of_int (median_ns samples) /. 1e3))
    sizes

let run_exp ~sizes ~trials =
  print_header
    "E3 / Figure 4: request/reply time vs reply size (4-byte request)";
  let std = series Std ~sizes ~trials in
  let fo = series Failover ~sizes ~trials in
  Printf.printf "%-10s %16s %16s %8s\n" "size" "std TCP [us]" "failover [us]"
    "ratio";
  List.iter2
    (fun (sz, s) (_, f) ->
      Printf.printf "%-10s %16.1f %16.1f %8.2f\n" (size_label sz) s f
        (f /. s))
    std fo;
  Printf.printf
    "shape check: failover pays roughly 2x for large replies (every reply\n\
     byte crosses the shared segment twice: secondary->primary, then\n\
     primary->client).\n%!";
  dump_metrics ~exp:"fig4"
