(* E12 — N-replica pool failover (not in the paper): cascading
   promotions under repeated primary crashes.

   Topology (built through Topo, as data): one client and an N-replica
   pool on a shared LAN — active pair + N-2 cold standbys.  A client
   opens one connection and keeps it open while the CURRENT primary is
   crashed N-2 times in a row.  Each crash must cascade: the survivor
   completes the §5 takeover, the next standby is promoted, and hot
   state transfer re-replicates the connection onto it — so the pool
   keeps a full replica pair behind the client until the standbys run
   out.

   Per cascade the trial reports the promotion latency (kill ->
   Transfers_complete, sim time).  A trial only counts as ok when the
   client's request/reply stream is byte-exact and RST-free through
   every cascade and the pool ends Normal with its standbys drained.

   Everything is seeded and simulated, so the table is byte-identical
   across --jobs 1/2/4. *)

open Harness
module Time = Tcpfo_sim.Time
module Stats = Tcpfo_util.Stats

let service_port = 8000

type outcome = {
  kills : int;
  latencies_us : float list;  (** per cascade: kill -> transfers settled *)
  ok : bool;
}

let one_trial ~replicas ~seed =
  let world = World.create ~seed () in
  note_world world;
  let names =
    List.init replicas (fun i ->
        match i with
        | 0 -> "primary"
        | 1 -> "secondary"
        | n -> Printf.sprintf "standby%d" (n - 1))
  in
  let spec =
    (Topo.segment "lan"
    :: Topo.host ~profile:paper_profile ~addr:"10.0.0.10" ~seg:"lan" "client"
    :: List.mapi
         (fun i name ->
           Topo.host ~profile:paper_profile
             ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
             ~seg:"lan" name)
         names)
    @ [ Topo.group ~members:names "pool" ]
  in
  let topo = Topo.build world spec in
  let client = Topo.host_of topo "client" in
  let config =
    Failover_config.make ~service_ports:[ service_port ]
      ~bridge_cost:(Time.us 55) ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  Replicated.listen repl ~port:service_port ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d)));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let buf = Buffer.create 256 in
  let resets = ref 0 in
  let conn =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, service_port)
      ()
  in
  Tcb.set_on_established conn (fun () -> ignore (Tcb.send conn "req"));
  Tcb.set_on_data conn (fun d -> Buffer.add_string buf d);
  Tcb.set_on_reset conn (fun () -> incr resets);
  World.run world ~for_:(Time.ms 50);
  let expected = Buffer.create 256 in
  Buffer.add_string expected "R:req";
  let kills = replicas - 2 in
  let latencies = ref [] in
  let all_settled = ref true in
  for k = 1 to kills do
    let t0 = World.now world in
    let settled = ref None in
    Replicated.set_on_event repl (function
      | Replicated.Transfers_complete _ when !settled = None ->
        settled := Some (World.now world)
      | _ -> ());
    Replicated.kill_primary repl;
    (* drive in slices until the cascade settles (cap: 5 simulated s) *)
    let budget = ref 50 in
    while !settled = None && !budget > 0 do
      World.run world ~for_:(Time.ms 100);
      decr budget
    done;
    (match !settled with
    | Some t -> latencies := (float_of_int (t - t0) /. 1e3) :: !latencies
    | None -> all_settled := false);
    (* the SAME connection keeps working through the promoted pair *)
    let msg = Printf.sprintf "mid%d" k in
    ignore (Tcb.send conn msg);
    Buffer.add_string expected ("R:" ^ msg);
    World.run world ~for_:(Time.ms 50)
  done;
  Tcb.close conn;
  World.run world ~for_:(Time.sec 1.0);
  let ok =
    !all_settled && !resets = 0
    && Buffer.contents buf = Buffer.contents expected
    && Replicated.status repl = `Normal
    && Replicated.standbys repl = []
  in
  { kills; latencies_us = List.rev !latencies; ok }

let run_exp ~pool_sizes ~trials =
  print_header
    (Printf.sprintf
       "E12: N-replica pool — cascading failover under repeated primary \
        crashes (%d trial%s per size, %d job%s)"
       trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  Printf.printf "%-9s %6s %18s %18s %6s\n" "replicas" "kills"
    "median promo[us]" "max promo[us]" "ok";
  let all_ok = ref true in
  let rows =
    List.map
      (fun replicas ->
        let outcomes =
          map_trials trials (fun i ->
              one_trial ~replicas ~seed:(12_000 + (100 * replicas) + i))
        in
        let lats = List.concat_map (fun o -> o.latencies_us) outcomes in
        let med = Stats.median lats in
        let mx = List.fold_left max 0.0 lats in
        let kills = (List.hd outcomes).kills in
        let ok = List.for_all (fun o -> o.ok) outcomes in
        if not ok then all_ok := false;
        Printf.printf "%-9d %6d %18.1f %18.1f %6s\n" replicas kills med mx
          (if ok then "yes" else "NO");
        (replicas, kills, med, mx, ok))
      pool_sizes
  in
  Printf.printf "%s\n"
    (if !all_ok then
       "every connection survived all cascading failovers byte-exactly"
     else "WARNING: a pool failed to cascade cleanly");
  let row_json =
    String.concat ","
      (List.map
         (fun (r, k, med, mx, ok) ->
           Printf.sprintf
             "{\"replicas\":%d,\"kills\":%d,\"median_promotion_us\":%.1f,\
              \"max_promotion_us\":%.1f,\"ok\":%b}"
             r k med mx ok)
         rows)
  in
  Printf.printf
    "[pool-summary] {\"trials\":%d,\"jobs\":%d,\"all_ok\":%b,\"rows\":[%s]}\n%!"
    trials !jobs !all_ok row_json;
  dump_metrics ~exp:"pool"
