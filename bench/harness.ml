(* Shared plumbing for the paper-reproduction experiments (§9).

   Every experiment builds one (or many) fresh simulated worlds, runs a
   workload against either an unreplicated server ("standard TCP") or the
   replicated pair ("TCP failover"), and reports the series the paper
   plots.  Seeds differ per trial so medians are over genuinely different
   runs (ISNs, ports, collision backoffs). *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Clock = Tcpfo_sim.Clock
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Stats = Tcpfo_util.Stats
module Ipaddr = Tcpfo_packet.Ipaddr

type mode = Std | Failover

let mode_name = function Std -> "standard TCP" | Failover -> "TCP failover"

(* The testbed CPU model, calibrated in exp_setup so that standard-TCP
   connection establishment lands near the paper's ~294 us median. *)
let paper_profile =
  { Host.tx_cost = Time.us 52; rx_cost = Time.us 72; jitter_frac = 0.25;
    hiccup_prob = 0.015 }

let bench_config =
  Failover_config.make ~service_ports:[ 21; 20; 5000; 5001; 5002; 5003 ]
    ~bridge_cost:(Time.us 55) ()

type env = {
  world : World.t;
  client : Host.t;
  service : Ipaddr.t;
  install : port:int -> (Tcb.t -> unit) -> unit;
  repl : Replicated.t option;
  servers : Host.t list;
}

(* --------------------------------------------------------------- *)
(* Parallel trial fan-out.  Every experiment builds one fully
   independent world per trial (own engine, RNG, hosts, registry), so
   trials are embarrassingly parallel: {!map_trials} fans them out over
   [!jobs] OCaml domains via {!Tcpfo_util.Domain_pool} and gathers the
   results by trial index, making the output byte-identical to the
   serial [--jobs 1] path.

   The only cross-trial state the harness itself kept was the
   "last world" used for metrics snapshots; it now lives in
   domain-local storage (each worker records the worlds it builds,
   no cross-domain writes) and {!map_trials} re-publishes the
   highest-index trial's world to the calling domain, which is exactly
   the world a serial run would have ended on. *)

let jobs = ref 1

(* Engine scheduling backend for every world the experiments build,
   set from --engine.  Simulation results are byte-identical across
   backends (the packed table/metrics lines prove it per run); only
   wall-clock differs. *)
let engine_backend = ref Engine.Heap

(* Deterministic total-event line, one per experiment run: CI smoke jobs
   gate on these (and on the metrics snapshots) instead of wall-clock,
   which varies with the runner. *)
let events_line ~exp total =
  Printf.printf "[events-total:%s] {\"events\":%d}\n%!" exp total

let dls_last_world : World.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_world world = Domain.DLS.get dls_last_world := Some world
let last_world () = !(Domain.DLS.get dls_last_world)

let map_trials n f =
  let pairs =
    Tcpfo_util.Domain_pool.map ~jobs:!jobs n (fun i ->
        let slot = Domain.DLS.get dls_last_world in
        slot := None;
        let r = f i in
        (r, !slot))
  in
  (match
     List.fold_left
       (fun acc (_, w) -> match w with Some _ -> w | None -> acc)
       None pairs
   with
  | Some w -> note_world w
  | None -> ());
  List.map fst pairs

let run_tasks tasks =
  let arr = Array.of_list tasks in
  map_trials (Array.length arr) (fun i -> arr.(i) ())

(* --------------------------------------------------------------- *)
(* Metrics snapshots.  Each experiment calls {!dump_metrics} once after
   its last trial: the final world's registry is rendered to JSON,
   either into [<metrics_dir>/<exp>.metrics.json] or as a
   ["[metrics:<exp>] {...}"] stdout line.  Registry serialization is
   sorted and format-stable, so two runs with the same seed produce
   byte-identical snapshots. *)

let metrics_dir : string option ref = ref None

let dump_metrics ~exp =
  match last_world () with
  | None -> ()
  | Some world -> (
    let json = Tcpfo_obs.Registry.to_json (World.metrics world) in
    match !metrics_dir with
    | Some dir ->
      let path = Filename.concat dir (exp ^ ".metrics.json") in
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "[metrics:%s -> %s]\n%!" exp path
    | None -> Printf.printf "[metrics:%s] %s\n%!" exp json)

let make_env ?(seed = 1) mode =
  let world = World.create ~seed ~engine_backend:!engine_backend () in
  note_world world;
  (* the benchmark testbed as data; declaration order mirrors the old
     hand-wired construction so seeded runs stay byte-identical *)
  let spec =
    Topo.segment "lan"
    :: Topo.host ~profile:paper_profile ~addr:"10.0.0.10" ~seg:"lan" "client"
    ::
    (match mode with
    | Std ->
      [ Topo.host ~profile:paper_profile ~addr:"10.0.0.1" ~seg:"lan" "server" ]
    | Failover ->
      [
        Topo.host ~profile:paper_profile ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~profile:paper_profile ~addr:"10.0.0.2" ~seg:"lan"
          "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ])
  in
  let topo = Topo.build world spec in
  let client = Topo.host_of topo "client" in
  match mode with
  | Std ->
    let server = Topo.host_of topo "server" in
    {
      world;
      client;
      service = Host.addr server;
      install = (fun ~port handler -> Stack.listen (Host.tcp server) ~port
                    ~on_accept:handler);
      repl = None;
      servers = [ server ];
    }
  | Failover ->
    let repl =
      Replicated.create_pool
        ~replicas:(Topo.group_of topo "pool")
        ~config:bench_config ()
    in
    {
      world;
      client;
      service = Replicated.service_addr repl;
      install =
        (fun ~port handler ->
          Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
              handler tcb));
      repl = Some repl;
      servers = Replicated.replicas repl;
    }

let now env = World.now env.world
let run env ~for_ = World.run env.world ~for_

(* --------------------------------------------------------------- *)
(* The application-level send() model (paper §9, Figure 3): a write
   loop in 8 KB chunks, each chunk costing a syscall plus a per-byte
   copy; "send returns when the application has passed the last byte
   to the stack", i.e. into the 64 KB socket buffer. *)

let syscall_cost = Time.us 22
let copy_cost_per_byte_ns = 11

let timed_send clock (tcb : Tcb.t) ~size ~on_buffered =
  let chunk_size = 8192 in
  let payload = String.make chunk_size 's' in
  let rec write pos =
    if pos >= size then on_buffered ()
    else begin
      let want = min chunk_size (size - pos) in
      let cost = syscall_cost + (want * copy_cost_per_byte_ns) in
      ignore
        (clock.Clock.schedule cost (fun () ->
             let chunk =
               if want = chunk_size then payload else String.sub payload 0 want
             in
             let n = Tcb.send tcb chunk in
             if n < want then begin
               (* buffer full: resume on drain, re-submitting the rest *)
               Tcb.set_on_drain tcb (fun () -> write (pos + n))
             end
             else write (pos + n)))
    end
  in
  write 0

(* --------------------------------------------------------------- *)
(* Formatting helpers                                               *)

let print_header title =
  Printf.printf "\n=== %s ===\n%!" title

let kb_per_s ~bytes ~ns =
  if ns <= 0 then infinity
  else float_of_int bytes /. 1024.0 /. (float_of_int ns /. 1e9)

let pp_time_us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)

let median_ns samples = int_of_float (Stats.median (List.map float_of_int samples))
let max_ns samples = List.fold_left max 0 samples

(* Human size label: "64B", "32K", "1M" *)
let size_label n =
  if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then
    Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dK" (n lsr 10)
  else Printf.sprintf "%dB" n

let fig34_sizes =
  [ 64; 256; 1024; 4096; 16384; 32768; 65536; 131072; 262144; 524288;
    1048576 ]
