(* E7 — ablation of the §3.2 design rules.

   (a) joint (minimum) acknowledgment: with the rule ON, the primary never
   acknowledges client data the secondary lacks (requirement 2 of §2), so
   a failover after a secondary-side drop loses nothing.  With the rule
   OFF (primary acks on its own), the same drop followed by a primary
   crash silently truncates the stream at the survivor.

   (b) joint (minimum) window: with the rule OFF and a slow secondary, the
   client overruns the secondary's receive window; transfers still heal
   (retransmission) but with visibly more secondary-side discards. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Ip_layer = Tcpfo_ip.Ip_layer
module Ipv4_packet = Tcpfo_packet.Ipv4_packet

let upload_size = 120_000

(* Upload with a one-shot data-segment drop at the secondary, then kill the
   primary shortly after the drop.  Returns whether the survivor ended up
   with the complete upload. *)
let min_ack_run ~seed ~use_min_ack =
  let world = World.create ~seed () in
  note_world world;
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~profile:paper_profile ()
  in
  let primary =
    World.add_host world lan ~name:"primary" ~addr:"10.0.0.1"
      ~profile:paper_profile ()
  in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2"
      ~profile:paper_profile ()
  in
  World.warm_arp [ client; primary; secondary ];
  let config =
    Failover_config.make ~service_ports:[ 5001 ] ~use_min_ack
      ~bridge_cost:(Time.us 25) ()
  in
  let repl = Replicated.create ~primary ~secondary ~config () in
  let received = Hashtbl.create 2 in
  Replicated.listen repl ~port:5001 ~on_accept:(fun ~role tcb ->
      let buf = Buffer.create upload_size in
      Hashtbl.replace received role buf;
      Tcb.set_on_data tcb (fun d -> Buffer.add_string buf d);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  (* one-shot drop of a mid-stream data segment at the secondary, then
     kill the primary 3 ms later *)
  let dropped = ref false in
  let inner = Ip_layer.rx_hook (Host.ip secondary) in
  Ip_layer.set_rx_hook (Host.ip secondary)
    (Some
       (fun pkt ~link_addressed ->
         match pkt.Ipv4_packet.payload with
         | Tcp seg
           when (not !dropped)
                && String.length seg.payload > 1000
                && Tcpfo_util.Seq32.to_int seg.seq land 0xFFF > 2048 ->
           dropped := true;
           ignore
             (Engine.schedule (World.engine world) ~delay:(Time.ms 3)
                (fun () -> Replicated.kill_primary repl));
           Ip_layer.Rx_drop
         | _ -> (
           match inner with
           | None -> Ip_layer.Rx_pass pkt
           | Some hook -> hook pkt ~link_addressed)));
  let data = String.init upload_size (fun i -> Char.chr ((i * 13) land 0xFF)) in
  let c =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, 5001)
      ()
  in
  Tcb.set_on_established c (fun () ->
      let off = ref 0 in
      let rec pump () =
        if !off < upload_size then begin
          let want = min 8192 (upload_size - !off) in
          let n = Tcb.send c (String.sub data !off want) in
          off := !off + n;
          if n < want then Tcb.set_on_drain c pump else pump ()
        end
        else Tcb.close c
      in
      pump ());
  World.run world ~for_:(Time.sec 60.0);
  let survivor_ok =
    match Hashtbl.find_opt received `Secondary with
    | Some buf -> Buffer.contents buf = data
    | None -> false
  in
  (!dropped, survivor_ok)

(* Slow consumer on the secondary: its application pauses reading for a
   few milliseconds after every delivery, so its advertised window keeps
   collapsing.  With the §3.2 joint-window rule the client is throttled
   to the slower replica and the upload completes cleanly; without it the
   client runs at the primary's full 64 KB window, repeatedly overruns
   the secondary, and must heal with retransmission storms. *)
let min_win_run ~seed ~use_min_window =
  let world = World.create ~seed () in
  note_world world;
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~profile:paper_profile ()
  in
  let primary =
    World.add_host world lan ~name:"primary" ~addr:"10.0.0.1"
      ~profile:paper_profile ()
  in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2"
      ~profile:paper_profile
      ~tcp_config:{ Tcp_config.default with recv_buf_size = 16384 }
      ()
  in
  World.warm_arp [ client; primary; secondary ];
  let config =
    Failover_config.make ~service_ports:[ 5001 ] ~use_min_window
      ~bridge_cost:(Time.us 25) ()
  in
  let repl = Replicated.create ~primary ~secondary ~config () in
  let done_at = ref None in
  Replicated.listen repl ~port:5001 ~on_accept:(fun ~role tcb ->
      let n = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          n := !n + String.length d;
          if role = `Secondary then begin
            (* slow consumer: digest each delivery for 3 ms *)
            Tcb.pause_reading tcb;
            ignore
              ((Host.clock secondary).schedule (Time.ms 5) (fun () ->
                   Tcb.resume_reading tcb));
            if !n >= upload_size then done_at := Some (World.now world)
          end);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let c =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, 5001)
      ()
  in
  let t0 = ref Time.zero in
  Tcb.set_on_established c (fun () ->
      t0 := World.now world;
      let data = String.make 8192 'w' in
      let off = ref 0 in
      let rec pump () =
        if !off < upload_size then begin
          let want = min 8192 (upload_size - !off) in
          let n = Tcb.send c (String.sub data 0 want) in
          off := !off + n;
          if n < want then Tcb.set_on_drain c pump else pump ()
        end
      in
      pump ());
  World.run world ~for_:(Time.sec 120.0);
  match !done_at with
  | Some t -> Some (t - !t0, Tcb.retransmits c)
  | None -> None

let run_exp ~trials =
  print_header "E7: ablation of the joint-ack / joint-window rules (3.2)";
  Printf.printf
    "(a) secondary drops one client segment; primary crashes 3 ms later\n";
  Printf.printf "%-28s %22s\n" "ack rule" "survivor intact (of n)";
  List.iter
    (fun use_min_ack ->
      let outcomes =
        map_trials trials (fun i -> min_ack_run ~seed:(8000 + i) ~use_min_ack)
      in
      let exercised = List.filter fst outcomes in
      let ok = List.length (List.filter snd exercised) in
      Printf.printf "%-28s %15d / %d\n"
        (if use_min_ack then "min(ack_P, ack_S)  [paper]" else "ack_P only [ablated]")
        ok (List.length exercised))
    [ true; false ];
  Printf.printf
    "\n(b) slow secondary (6 KB receive buffer) on a slightly lossy segment\n";
  Printf.printf "%-28s %17s %14s\n" "window rule" "completion"
    "client rexmits";
  List.iter
    (fun use_min_window ->
      let runs =
        List.filter_map Fun.id
          (map_trials trials (fun i ->
               min_win_run ~seed:(8500 + i) ~use_min_window))
      in
      match runs with
      | [] -> Printf.printf "%-28s %22s\n"
                (if use_min_window then "min(win_P, win_S)  [paper]"
                 else "win_P only [ablated]")
                "never"
      | _ ->
        Printf.printf "%-28s %14.2f ms %14.1f\n"
          (if use_min_window then "min(win_P, win_S)  [paper]"
           else "win_P only [ablated]")
          (Tcpfo_util.Stats.median
             (List.map (fun (t, _) -> float_of_int t /. 1e6) runs))
          (Tcpfo_util.Stats.median
             (List.map (fun (_, r) -> float_of_int r) runs)))
    [ true; false ];
  Printf.printf
    "expectation: without the min-ack rule the survivor is truncated\n\
     (failover requirement 2 violated); without the min-window rule the\n\
     client overruns the slow secondary and must heal by retransmission\n\
     (the paper's 'risk of message loss', 3.2).\n%!";
  dump_metrics ~exp:"ablation"
