(* E5 — Figure 6: FTP get/put rates over a WAN, standard TCP vs TCP
   failover, with competing traffic and loss (paper §9: "measurements over
   a wide-area network are highly dependent on competing traffic and on
   packet loss rates").

   Rates are client-reported, as in the paper:
   - get: file size over the time from the data connection arriving to the
     completion reply;
   - put: file size over the local write-loop time (the client's write
     returns when the socket buffer has the bytes — for files below 64 KB
     this barely involves the network at all, which is why the paper's put
     rates for small files are enormous). *)

open Harness
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Link = Tcpfo_net.Link
module Ipaddr = Tcpfo_packet.Ipaddr
module Replicated = Tcpfo_core.Replicated
module Ftp = Tcpfo_apps.Ftp
module Cross_traffic = Tcpfo_apps.Cross_traffic

(* paper file sizes, in bytes (the table is labelled in KB) *)
let file_sizes = [ 205; 1331; 18637; 148378; 1779814 ]

let wan_config =
  {
    Link.bandwidth_bps = 2_200_000;
    delay = Time.ms 10;
    jitter = Time.ms 4;
    loss_prob = 0.003;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    queue_capacity = 40;
  }

(* local write-loop cost model for put rates (see header comment) *)
let write_model_ns size = 400_000 + (size * 180)

type rates = { get_kbs : float; put_kbs : float }

let make_wan_env ~seed mode =
  let world = World.create ~seed () in
  note_world world;
  let lan = World.make_lan world () in
  let wan = Link.create (World.engine world) ~rng:(World.fresh_rng world) wan_config in
  let router =
    World.add_router world lan ~lan_addr:"10.0.0.254" ~wan_link:wan
      ~wan_addr:"192.168.0.1" ()
  in
  ignore router;
  let client =
    World.add_wan_client world ~wan_link:wan ~addr:"192.168.0.2"
      ~profile:paper_profile ()
  in
  let files =
    Ftp.Server.in_memory
      (List.map
         (fun sz -> (string_of_int sz, String.make sz 'f'))
         file_sizes)
  in
  let gateway = Ipaddr.of_string "10.0.0.254" in
  let service =
    match mode with
    | Std ->
      let server =
        World.add_host world lan ~name:"server" ~addr:"10.0.0.1"
          ~profile:paper_profile ()
      in
      Host.set_default_via_lan server ~gateway;
      Ftp.Server.serve (Host.tcp server) ~bind:(Host.addr server) ~files ();
      Host.addr server
    | Failover ->
      let primary =
        World.add_host world lan ~name:"primary" ~addr:"10.0.0.1"
          ~profile:paper_profile ()
      in
      let secondary =
        World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2"
          ~profile:paper_profile ()
      in
      Host.set_default_via_lan primary ~gateway;
      Host.set_default_via_lan secondary ~gateway;
      World.warm_arp [ primary; secondary; router ];
      let repl =
        Replicated.create ~primary ~secondary ~config:bench_config ()
      in
      let service = Replicated.service_addr repl in
      Ftp.Server.serve (Host.tcp primary) ~bind:service ~files ();
      Ftp.Server.serve (Host.tcp secondary) ~bind:service ~files ();
      service
  in
  let traffic =
    Cross_traffic.start (World.engine world) wan
      ~rng:(World.fresh_rng world) ~load:0.18
      ~link_bandwidth_bps:wan_config.bandwidth_bps ()
  in
  ignore traffic;
  (world, client, service)

(* Run the full get+put suite for one mode; returns (size, rates) assoc. *)
let measure mode ~seed =
  let world, client, service = make_wan_env ~seed mode in
  let results = Hashtbl.create 8 in
  let ftp = ref None in
  let pending = ref [] in
  let next () =
    match !pending with
    | [] -> ()
    | job :: rest ->
      pending := rest;
      job ()
  in
  let schedule_jobs t =
    let jobs_get =
      List.map
        (fun sz () ->
          let t0 = ref Time.zero in
          Ftp.Client.get t (string_of_int sz)
            ~on_data_conn:(fun () -> t0 := World.now world)
            ~on_done:(fun content ->
              let dur = World.now world - !t0 in
              let ok =
                match content with
                | Some c -> String.length c = sz
                | None -> false
              in
              if ok then
                Hashtbl.replace results ("get", sz)
                  (kb_per_s ~bytes:sz ~ns:dur);
              next ())
            ())
        file_sizes
    in
    let jobs_put =
      List.map
        (fun sz () ->
          let t0 = ref Time.zero in
          let buffered = ref Time.zero in
          Ftp.Client.put t
            (string_of_int sz ^ ".up")
            (String.make sz 'u')
            ~on_data_conn:(fun () -> t0 := World.now world)
            ~on_buffered:(fun () -> buffered := World.now world)
            ~on_done:(fun ok ->
              if ok then begin
                let wire = !buffered - !t0 in
                let dur = wire + write_model_ns sz in
                Hashtbl.replace results ("put", sz)
                  (kb_per_s ~bytes:sz ~ns:dur)
              end;
              next ())
            ())
        file_sizes
    in
    pending := jobs_get @ jobs_put;
    next ()
  in
  ftp :=
    Some
      (Ftp.Client.connect (Host.tcp client) ~server:(service, 21)
         ~local_addr:(Host.addr client)
         ~on_ready:(fun t -> schedule_jobs t)
         ());
  ignore !ftp;
  World.run world ~for_:(Time.sec 300.0);
  List.map
    (fun sz ->
      ( sz,
        {
          get_kbs =
            Option.value ~default:nan (Hashtbl.find_opt results ("get", sz));
          put_kbs =
            Option.value ~default:nan (Hashtbl.find_opt results ("put", sz));
        } ))
    file_sizes

let paper =
  (* size_kb, get_std, get_fo, put_std, put_fo *)
  [ (0.2, 8.75, 8.75, 512.38, 536.05);
    (1.3, 59.03, 59.03, 2033.76, 2036.87);
    (18.2, 90.41, 70.74, 3846.13, 3890.42);
    (144.9, 156.80, 138.35, 219.52, 200.31);
    (1738.1, 176.03, 171.72, 168.07, 176.63) ]

let run_exp ~trials =
  print_header "E5 / Figure 6: FTP get/put rates over a WAN [KB/s]";
  ignore trials;
  let std, fo =
    match
      run_tasks
        [ (fun () -> measure Std ~seed:61);
          (fun () -> measure Failover ~seed:62) ]
    with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  Printf.printf "%-10s | %10s %10s | %10s %10s | paper(g-std g-fo p-std p-fo)\n"
    "size" "get std" "get fo" "put std" "put fo";
  List.iteri
    (fun i (sz, r_std) ->
      let _, r_fo = List.nth fo i in
      let pk, pg_s, pg_f, pp_s, pp_f = List.nth paper i in
      Printf.printf
        "%7.1fKB | %10.2f %10.2f | %10.2f %10.2f | %8.2f %8.2f %8.2f %8.2f\n"
        (float_of_int sz /. 1024.0)
        r_std.get_kbs r_fo.get_kbs r_std.put_kbs r_fo.put_kbs pg_s pg_f pp_s
        pp_f;
      ignore pk)
    std;
  Printf.printf
    "shape check: small files are latency-bound (get rates tiny, put rates\n\
     huge because the write loop never leaves the socket buffer); large\n\
     files converge to the WAN bottleneck with failover within ~10%% of\n\
     standard TCP.\n%!";
  dump_metrics ~exp:"fig6"
