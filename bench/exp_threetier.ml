(* E14 — three-tier relay under repeated kill/repair (not in the paper):
   client → replicated mid-tier → unreplicated back end.

   The mid-tier is a three-replica chain running a RELAY application:
   the client-facing connection (server role) accepts request lines and
   forwards them to the back end over a §7.2 client-role connection; the
   back end answers each request with a deterministic record, which the
   relay forwards back to the client.  Both connections are hot-state
   transferable, so the experiment repeatedly kills one chain tier at a
   time — rotating head / tail / middle — and lets a fresh host (new
   address each cycle) {!Chain.rejoin} at the tail, re-replicating BOTH
   connections onto it before the next request is issued.

   The relay is exactly the application shape that makes restore
   subtle: replayed input on one connection must NOT be re-forwarded to
   the other (the original replica already forwarded it, and the
   partner's restored stream position accounts for it) — the app guards
   with {!Tcb.replaying}.

   Per cycle the trial reports the rejoin latency (kill →
   Transfers_complete, sim time).  A trial only counts as ok when the
   client's assembled stream and the back end's received request lines
   are both byte-exact through every cycle, nobody sees an RST, no
   connection is stranded solo, and the chain ends with three live
   replicas and all transfers settled.

   Everything is seeded and simulated, so the table is byte-identical
   across --jobs 1/2/4. *)

open Harness
module Chain = Tcpfo_core.Chain
module Lineproto = Tcpfo_apps.Lineproto

let front_port = 8080
let backend_port = 5432
let record_size = 900

let record n =
  String.init record_size (fun i -> Char.chr ((i * 13 + n * 31) land 0xFF))

type outcome = {
  cycles : int;
  latencies_us : float list;  (** per cycle: kill -> transfers settled *)
  ok : bool;
}

let one_trial ~cycles ~seed =
  let world = World.create ~seed () in
  note_world world;
  let spec =
    [
      Topo.segment "lan";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.10" ~seg:"lan" "client";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.1" ~seg:"lan" "m0";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.2" ~seg:"lan" "m1";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.3" ~seg:"lan" "m2";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.20" ~seg:"lan" "backend";
    ]
  in
  let topo = Topo.build world spec in
  let lan = Topo.segment_of topo "lan" in
  let client = Topo.host_of topo "client" in
  let backend_h = Topo.host_of topo "backend" in
  let mids = [ Topo.host_of topo "m0"; Topo.host_of topo "m1";
               Topo.host_of topo "m2" ] in
  let hosts = ref (Topo.hosts topo) in
  let config =
    Failover_config.make ~service_ports:[ front_port ] ()
  in
  let chain = Chain.create ~replicas:mids ~config () in
  let svc = Chain.service_addr chain in
  ignore mids;

  (* ---- tier 3: the unreplicated back end ---- *)
  let backend_lines = Buffer.create 64 in
  let backend_resets = ref 0 in
  Stack.listen (Host.tcp backend_h) ~port:backend_port ~on_accept:(fun tcb ->
      let lines =
        Lineproto.create ~on_line:(fun l ->
            Buffer.add_string backend_lines (l ^ "\n");
            match int_of_string_opt
                    (Option.value ~default:""
                       (List.nth_opt (String.split_on_char ' ' l) 1))
            with
            | Some n -> ignore (Tcb.send tcb (record n))
            | None -> ())
      in
      Tcb.set_on_data tcb (fun d -> Lineproto.feed lines d);
      Tcb.set_on_reset tcb (fun () -> incr backend_resets))
  ;

  (* ---- tier 2: the relay on the chain.  front/back TCBs pair up per
     replica index — stable across rejoins because the installer re-runs
     both callbacks with the (fresh) index of the restored replica. *)
  let front : (int, Tcb.t) Hashtbl.t = Hashtbl.create 8 in
  let back : (int, Tcb.t) Hashtbl.t = Hashtbl.create 8 in
  Chain.connect_backend chain ~remote:(Host.addr backend_h, backend_port)
    ~setup:(fun ~replica tcb ->
      Hashtbl.replace back replica tcb;
      Tcb.set_on_data tcb (fun d ->
          (* replayed history was forwarded by the original replica
             before the snapshot — never forward it again *)
          if not (Tcb.replaying tcb) then
            match Hashtbl.find_opt front replica with
            | Some f -> ignore (Tcb.send f d)
            | None -> ()))
    ();
  Chain.listen chain ~port:front_port ~on_accept:(fun ~replica tcb ->
      Hashtbl.replace front replica tcb;
      let lines =
        Lineproto.create ~on_line:(fun l ->
            if not (Tcb.replaying tcb) then
              match Hashtbl.find_opt back replica with
              | Some b -> ignore (Tcb.send b (Lineproto.line l))
              | None -> ())
      in
      Tcb.set_on_data tcb (fun d -> Lineproto.feed lines d));

  (* ---- tier 1: the client ---- *)
  let buf = Buffer.create (record_size * (cycles + 2)) in
  let resets = ref 0 in
  let conn =
    Stack.connect (Host.tcp client) ~remote:(svc, front_port) ()
  in
  Tcb.set_on_data conn (fun d -> Buffer.add_string buf d);
  Tcb.set_on_reset conn (fun () -> incr resets);

  (* ---- kill/repair choreography, driven by chain events ---- *)
  let deaths = ref 0 in
  let rejoins = ref 0 in
  let settled = ref 0 in
  let isolated = ref 0 in
  let t_kill = ref 0 in
  let latencies = ref [] in
  Chain.set_on_event chain (fun e ->
      match e with
      | Chain.Death_detected _ ->
        incr deaths;
        let n = !deaths in
        (* a repaired host — fresh address every cycle — rejoins at the
           tail the instant the loss is detected *)
        ignore
          (Engine.schedule (World.engine world) ~delay:(Time.us 1) (fun () ->
               let h =
                 World.add_host world lan
                   ~name:(Printf.sprintf "repaired%d" n)
                   ~addr:(Printf.sprintf "10.0.0.%d" (30 + n))
                   ()
               in
               hosts := h :: !hosts;
               World.warm_arp !hosts;
               ignore (Chain.rejoin chain h);
               incr rejoins))
      | Chain.Transfers_complete _ ->
        incr settled;
        latencies :=
          (float_of_int (World.now world - !t_kill) /. 1e3) :: !latencies
      | Chain.Isolated _ -> incr isolated
      | _ -> ());

  let run_until cond =
    let budget = ref 100 in
    while (not (cond ())) && !budget > 0 do
      World.run world ~for_:(Time.ms 50);
      decr budget
    done;
    cond ()
  in
  let expected = Buffer.create (record_size * (cycles + 2)) in
  let all_ok = ref true in
  let request k =
    ignore (Tcb.send conn (Lineproto.line (Printf.sprintf "get %d" k)));
    Buffer.add_string expected (record k);
    if not (run_until (fun () -> Buffer.length buf >= Buffer.length expected))
    then all_ok := false
  in
  if not (run_until (fun () -> Tcb.state conn = Tcb.Established)) then
    all_ok := false;
  request 1;
  for cycle = 1 to cycles do
    (* rotate the victim tier: head, tail, middle, head, ... *)
    let order = Chain.alive chain in
    let victim =
      match (cycle - 1) mod 3 with
      | 0 -> List.hd order
      | 1 -> List.nth order (List.length order - 1)
      | _ -> List.nth order 1
    in
    t_kill := World.now world;
    Chain.kill chain victim;
    if
      not
        (run_until (fun () ->
             !settled >= cycle && Chain.pending_transfers chain = 0))
    then all_ok := false;
    (* the SAME two connections keep relaying through the rebuilt chain *)
    request (cycle + 1)
  done;
  Tcb.close conn;
  World.run world ~for_:(Time.sec 1.0);
  let expected_lines =
    String.concat ""
      (List.init (cycles + 1) (fun i -> Printf.sprintf "get %d\n" (i + 1)))
  in
  let ok =
    !all_ok && !resets = 0 && !backend_resets = 0 && !isolated = 0
    && !deaths = cycles && !rejoins = cycles && !settled = cycles
    && Chain.pending_transfers chain = 0
    && List.length (Chain.alive chain) = 3
    && Buffer.contents buf = Buffer.contents expected
    && Buffer.contents backend_lines = expected_lines
  in
  { cycles; latencies_us = List.rev !latencies; ok }

let run_exp ~cycle_counts ~trials =
  print_header
    (Printf.sprintf
       "E14: three-tier relay — client / replicated chain / back end under \
        rotating kill+rejoin cycles (%d trial%s per row, %d job%s)"
       trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  Printf.printf "%-7s %18s %18s %6s\n" "cycles" "median rejoin[us]"
    "max rejoin[us]" "ok";
  let all_ok = ref true in
  let rows =
    List.map
      (fun cycles ->
        let outcomes =
          map_trials trials (fun i ->
              one_trial ~cycles ~seed:(14_000 + (100 * cycles) + i))
        in
        let lats = List.concat_map (fun o -> o.latencies_us) outcomes in
        let med = Stats.median lats in
        let mx = List.fold_left max 0.0 lats in
        let ok = List.for_all (fun o -> o.ok) outcomes in
        if not ok then all_ok := false;
        Printf.printf "%-7d %18.1f %18.1f %6s\n" cycles med mx
          (if ok then "yes" else "NO");
        (cycles, med, mx, ok))
      cycle_counts
  in
  Printf.printf "%s\n"
    (if !all_ok then
       "both relay connections survived every kill/rejoin cycle byte-exactly"
     else "WARNING: a three-tier trial failed");
  let row_json =
    String.concat ","
      (List.map
         (fun (c, med, mx, ok) ->
           Printf.sprintf
             "{\"cycles\":%d,\"median_rejoin_us\":%.1f,\
              \"max_rejoin_us\":%.1f,\"ok\":%b}"
             c med mx ok)
         rows)
  in
  Printf.printf
    "[threetier-summary] \
     {\"trials\":%d,\"jobs\":%d,\"all_ok\":%b,\"rows\":[%s]}\n%!"
    trials !jobs !all_ok row_json;
  dump_metrics ~exp:"threetier"
