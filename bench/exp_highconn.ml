(* E13 — high-connection-count worlds: events/s and peak memory vs live
   connections {1k, 4k, 10k}, swept over the engine scheduling backend
   (--engine heap,wheel).

   The workload is shaped like the fleet-dispatcher scenario this PR
   unlocks: a replicated pair serves [conns] long-LIVED connections at
   once.  Every connection, once established, exchanges a small
   request/response round [rounds] times on a per-connection period, and
   both ends re-arm an application idle-watchdog timer on every receipt
   (armed ~5 s out, almost always cancelled by the next round — the
   far-future, usually-cancelled timer population that timer wheels
   exist for, cf. the BSD callout wheel and PnO-TCP's per-packet timer
   argument).  With 10k connections the engine carries tens of
   thousands of pending timers: the binary heap pays O(log n) per
   schedule/cancel with cold cache lines, the wheel O(1) bucket pushes.

   Determinism contract (the part CI gates on): for a fixed seed the
   trial table (conns/completed/bytes/events/sim_ms columns) and the
   metrics fingerprint are byte-identical across --engine heap|wheel
   and --jobs 1|2.  The fingerprint hashes the final world's registry
   dump minus the [engine.*] scope — those two counters are structural
   to the backend (the backends meet cancelled events at different
   moments) and are the ONLY registry entries allowed to differ; see
   DESIGN.  Wall-clock, events/s and peak-RSS are reported separately
   and excluded from the identity comparison. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Medium = Tcpfo_net.Medium
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Registry = Tcpfo_obs.Registry
module Stats = Tcpfo_util.Stats

let service_ports = [ 7000; 7001; 7002; 7003; 7004; 7005; 7006; 7007 ]
let n_clients = 8
let request = "ping............" (* 16 B *)
let reply = "pong............"
let rounds = 3
let watchdog_delay = Time.sec 5.

(* The paper's testbed CPU (paper_profile: 72 us per received datagram,
   ~14k datagrams/s) saturates below what 10k connections generate even
   at one round per second — queueing delay then grows without bound,
   heartbeats blow the 40 ms detector deadline, and the secondary
   falsely takes the service address over.  E13 therefore models a
   server-class host an order of magnitude faster; the snooping
   secondary (which processes every service-addressed frame on the
   segment) is the capacity bottleneck and stays under ~60 %
   utilization at 10k connections. *)
let e13_profile =
  { Host.tx_cost = Time.us 5; rx_cost = Time.us 7; jitter_frac = 0.25;
    hiccup_prob = 0.015 }

(* A 10k-connection shard needs more wire than the paper's 100 Mb/s
   testbed segment; collisions stay on. *)
let lan_config = { Medium.default_config with bandwidth_bps = 1_000_000_000 }

type outcome = {
  conns : int;
  completed : int; (* connections that finished all rounds and closed *)
  bytes : int; (* payload bytes received by clients *)
  events : int; (* engine events fired — identical across backends *)
  sim_ns : int;
  peak_live : int; (* peak concurrently-established connections *)
  wdog_fires : int; (* idle watchdogs that fired (stalled >5 s) *)
  wall_s : float;
  fingerprint : string; (* registry dump minus engine.*, hashed *)
}

(* Hash of the final registry dump with the backend-structural engine.*
   lines removed: equal across backends, and across --jobs for a fixed
   backend. *)
let metrics_fingerprint world =
  let dump = Registry.dump (World.metrics world) in
  let kept =
    String.split_on_char '\n' dump
    |> List.filter (fun line ->
           not (String.length line >= 7 && String.sub line 0 7 = "engine."))
  in
  Digest.to_hex (Digest.string (String.concat "\n" kept))

let one_trial ~backend ~conns ~seed =
  let world = World.create ~seed ~engine_backend:backend () in
  note_world world;
  let spec =
    (Topo.segment ~config:lan_config "lan"
    :: List.init n_clients (fun i ->
           Topo.host ~profile:e13_profile
             ~addr:(Printf.sprintf "10.0.0.%d" (10 + i))
             ~seg:"lan"
             (Printf.sprintf "client%d" i)))
    @ [
        Topo.host ~profile:e13_profile ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~profile:e13_profile ~addr:"10.0.0.2" ~seg:"lan"
          "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let topo = Topo.build world spec in
  let clients =
    List.init n_clients (fun i ->
        Topo.host_of topo (Printf.sprintf "client%d" i))
  in
  let config =
    Failover_config.make ~service_ports ~bridge_cost:(Time.us 55) ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  let service = Replicated.service_addr repl in
  let engine = World.engine world in
  (* idle watchdog: re-armed on every receipt, fires only if the peer
     goes silent for 5 s — the canonical almost-always-cancelled timer.
     Firing logs the stall rather than closing the connection: a killer
     watchdog turns the open-storm transient (RTTs briefly past 5 s at
     10k connections) into a permanent wedge of RSTs, while the engine
     sees the identical schedule/cancel churn either way. *)
  let watchdog_fires = ref 0 in
  let rearm_watchdog slot _tcb =
    (match !slot with Some id -> Engine.cancel engine id | None -> ());
    slot :=
      Some (Engine.schedule engine ~delay:watchdog_delay (fun () ->
                incr watchdog_fires))
  in
  List.iter
    (fun port ->
      Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
          let watchdog = ref None in
          let got = ref 0 in
          Tcb.set_on_data tcb (fun d ->
              rearm_watchdog watchdog tcb;
              got := !got + String.length d;
              while !got >= String.length request do
                got := !got - String.length request;
                ignore (Tcb.send tcb reply)
              done);
          Tcb.set_on_eof tcb (fun () ->
              (match !watchdog with
              | Some id -> Engine.cancel engine id
              | None -> ());
              Tcb.close tcb)))
    service_ports;
  let completed = ref 0 in
  let received = ref 0 in
  let live = ref 0 in
  let peak_live = ref 0 in
  let n_ports = List.length service_ports in
  for i = 0 to conns - 1 do
    let client = List.nth clients (i mod n_clients) in
    let port = List.nth service_ports (i mod n_ports) in
    (* per-connection round period ~1 s, staggered so rounds spread
       instead of beating in phase *)
    let period = Time.ms 900 + (i mod 997) * Time.us 100 in
    (* 150 us stagger keeps the open storm itself (~10 service-addressed
       frames per open through the snooping secondary) under capacity *)
    ignore
      (Engine.schedule engine ~delay:(i * Time.us 150) (fun () ->
           let c =
             Stack.connect (Host.tcp client) ~remote:(service, port) ()
           in
           let watchdog = ref None in
           let got = ref 0 in
           let round = ref 0 in
           let fire_round () =
             incr round;
             ignore (Tcb.send c request)
           in
           Tcb.set_on_established c (fun () ->
               incr live;
               if !live > !peak_live then peak_live := !live;
               fire_round ());
           Tcb.set_on_data c (fun d ->
               received := !received + String.length d;
               rearm_watchdog watchdog c;
               got := !got + String.length d;
               if !got >= !round * String.length reply then
                 if !round >= rounds then begin
                   (match !watchdog with
                   | Some id -> Engine.cancel engine id
                   | None -> ());
                   incr completed;
                   decr live;
                   Tcb.close c
                 end
                 else
                   ignore
                     (Engine.schedule engine ~delay:period (fun () ->
                          fire_round ())))))
  done;
  let t0 = Unix.gettimeofday () in
  (* run in 100 ms slices until every connection finished its rounds
     (cap: 300 simulated seconds) *)
  let budget = ref 3000 in
  while !completed < conns && !budget > 0 do
    World.run world ~for_:(Time.ms 100);
    decr budget
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    conns;
    completed = !completed;
    bytes = !received;
    events = Engine.processed engine;
    sim_ns = World.now world;
    peak_live = !peak_live;
    wdog_fires = !watchdog_fires;
    wall_s;
    fingerprint = metrics_fingerprint world;
  }

let events_per_sec o =
  if o.wall_s <= 0.0 then infinity else float_of_int o.events /. o.wall_s

(* Peak RSS of the whole process (VmHWM), informational: it is a
   process-global high-water mark, so only the largest configuration's
   reading is meaningful, and it is excluded from identity checks. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    let rec scan () =
      match input_line ic with
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then begin
          close_in ic;
          int_of_string
            (String.trim
               (String.sub line 6 (String.length line - 6 - 3)))
        end
        else scan ()
      | exception End_of_file ->
        close_in ic;
        0
    in
    scan ()
  with Sys_error _ -> 0

let run_exp ~conn_counts ~backends ~trials =
  print_header
    (Printf.sprintf
       "E13: high-connection worlds (conns in {%s}, engines {%s}, %d \
        trial%s, %d job%s)"
       (String.concat ", " (List.map string_of_int conn_counts))
       (String.concat ", " (List.map Engine.backend_name backends))
       trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"))
    ;
  let total_events = ref 0 in
  let all_ok = ref true in
  let summaries = ref [] in
  List.iter
    (fun backend ->
      Printf.printf "\n--- engine=%s ---\n" (Engine.backend_name backend);
      Printf.printf "%-6s %8s %8s %10s %12s %10s %9s %6s %34s\n" "trial"
        "conns" "done" "bytes" "events" "sim[ms]" "peak-live" "wdog"
        "metrics-fingerprint";
      List.iter
        (fun conns ->
          let outcomes =
            map_trials trials (fun i ->
                one_trial ~backend ~conns ~seed:(13_000 + i))
          in
          (* deterministic table: identical bytes across backends/jobs *)
          List.iteri
            (fun i o ->
              total_events := !total_events + o.events;
              if o.completed <> o.conns then all_ok := false;
              Printf.printf "%-6d %8d %8d %10d %12d %10.1f %9d %6d %34s\n" i
                o.conns o.completed o.bytes o.events
                (float_of_int o.sim_ns /. 1e6)
                o.peak_live o.wdog_fires o.fingerprint)
            outcomes;
          let med_eps = Stats.median (List.map events_per_sec outcomes) in
          summaries :=
            (backend, conns, med_eps, outcomes) :: !summaries)
        conn_counts)
    backends;
  (* timing section: intentionally NOT part of the identity contract *)
  Printf.printf "\n%-8s %8s %14s %12s\n" "engine" "conns" "median-ev/s"
    "peak-RSS[kB]";
  let rss = peak_rss_kb () in
  List.iter
    (fun (backend, conns, med_eps, _) ->
      Printf.printf "%-8s %8d %14.0f %12d\n" (Engine.backend_name backend)
        conns med_eps rss)
    (List.rev !summaries);
  (* machine-readable summary for BENCH_highconn.json *)
  List.iter
    (fun (backend, conns, med_eps, outcomes) ->
      let o = List.hd outcomes in
      Printf.printf
        "[highconn-summary] {\"engine\":%S,\"conns\":%d,\"trials\":%d,\
         \"jobs\":%d,\"median_events_per_sec\":%.0f,\"events\":%d,\
         \"sim_ms\":%.1f,\"peak_rss_kb\":%d,\"fingerprint\":%S,\
         \"all_completed\":%b}\n%!"
        (Engine.backend_name backend)
        conns trials !jobs med_eps o.events
        (float_of_int o.sim_ns /. 1e6)
        rss o.fingerprint !all_ok)
    (List.rev !summaries);
  events_line ~exp:"highconn" !total_events;
  dump_metrics ~exp:"highconn"
