(* E15 — dispatcher fleet tier: one sharded service address in front of
   [pools] two-replica pools, thousands of client connections arriving
   in a steady wave while a rotating sequence of kill/repair cycles
   takes down one shard replica after another (primaries and
   secondaries alternating).  The §2 transparency claim, scaled to a
   fleet: every connection the clients open against the ONE fleet
   address must complete byte-exactly with no RST, whichever shard it
   was pinned to and whatever that shard was going through.

   Each cycle also proves the gradual-shifting machinery end to end:
   the victim shard's weight must dip below max while the failure is
   detected/repaired (new flows drain to siblings — [drained] counts
   the flows the weighted router actually moved) and must be ramped
   back to max, state Healthy, before the cycle ends.

   Determinism contract (CI gates on it): for a fixed seed the
   [fleet-summary] line minus the "jobs" field — completions, resets,
   dispatcher counters, cycle count, total events — is byte-identical
   across --jobs 1|2.  Wall-clock is reported separately. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Medium = Tcpfo_net.Medium
module Dispatch = Tcpfo_dispatch.Dispatch

let n_clients = 8
let service_port = 7
let request = "get\n"
let reply_size = 2048
let open_gap = Time.us 500

(* Server-class shard hosts (cf. E13): the paper's testbed CPU would
   saturate under a whole fleet's worth of connection setups. *)
let fleet_profile =
  { Host.tx_cost = Time.us 5; rx_cost = Time.us 7; jitter_frac = 0.25;
    hiccup_prob = 0.015 }

(* One shared back wire for every shard needs more than the paper's
   100 Mb/s segment; collisions stay on. *)
let lan_config = { Medium.default_config with bandwidth_bps = 1_000_000_000 }

type outcome = {
  pools : int;
  conns : int;
  cycles : int; (* kill/repair cycles completed *)
  cycles_ramped : int; (* cycles whose victim weight dipped AND returned *)
  completed : int; (* connections that reached EOF and closed *)
  ok : int; (* of [completed], byte-exact replies *)
  resets : int; (* RSTs seen by any client *)
  counters : Dispatch.counters;
  events : int;
  sim_ns : int;
  wall_s : float;
}

let one_trial ~pools:n_pools ~conns ~cycles ~seed =
  let world = World.create ~seed ~engine_backend:!Harness.engine_backend () in
  note_world world;
  let gw = "10.0.0.254" in
  let shard_name i = Printf.sprintf "shard%d" i in
  let spec =
    [ Topo.segment ~config:lan_config "front";
      Topo.segment ~config:lan_config "back" ]
    @ List.init n_clients (fun i ->
          Topo.host ~profile:fleet_profile
            ~addr:(Printf.sprintf "10.1.0.%d" (10 + i))
            ~seg:"front"
            (Printf.sprintf "client%d" i))
    @ List.concat
        (List.init n_pools (fun i ->
             [
               Topo.host ~profile:fleet_profile ~gateway:gw
                 ~addr:(Printf.sprintf "10.0.0.%d" (1 + (2 * i)))
                 ~seg:"back"
                 (Printf.sprintf "s%da" i);
               Topo.host ~profile:fleet_profile ~gateway:gw
                 ~addr:(Printf.sprintf "10.0.0.%d" (2 + (2 * i)))
                 ~seg:"back"
                 (Printf.sprintf "s%db" i);
             ]))
    @ List.init n_pools (fun i ->
          Topo.group
            ~members:[ Printf.sprintf "s%da" i; Printf.sprintf "s%db" i ]
            (shard_name i))
    @ [
        Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
        Topo.dispatch ~service:"fleet" ~back:gw
          ~shards:(List.init n_pools shard_name)
          "disp";
      ]
  in
  let topo = Topo.build world spec in
  let back = Topo.segment_of topo "back" in
  let clients =
    Array.init n_clients (fun i ->
        Topo.host_of topo (Printf.sprintf "client%d" i))
  in
  let config = Failover_config.make ~service_ports:[ service_port ] () in
  let disp, shard_pools = Dispatch.of_topo topo ~name:"disp" ~config () in
  let service = Dispatch.service disp in
  let max_w = Dispatch.default_config.Dispatch.max_weight in
  let reply = String.init reply_size (fun i -> Char.chr (32 + ((i * 7) mod 95))) in
  List.iter
    (fun (_, pool) ->
      Replicated.listen pool ~port:service_port ~on_accept:(fun ~role:_ tcb ->
          let got = ref 0 in
          Tcb.set_on_data tcb (fun d ->
              got := !got + String.length d;
              if !got >= String.length request then begin
                got := !got - String.length request;
                ignore (Tcb.send tcb reply);
                Tcb.close tcb
              end)))
    shard_pools;

  (* the client wave: [conns] request/response connections against the
     single fleet address, one every [open_gap], round-robin over the
     client hosts — the wave spans every kill/repair cycle below *)
  let engine = World.engine world in
  let completed = ref 0 in
  let ok = ref 0 in
  let resets = ref 0 in
  for i = 0 to conns - 1 do
    ignore
      (Engine.schedule engine ~delay:(i * open_gap) (fun () ->
           let cl = clients.(i mod n_clients) in
           let c = Stack.connect (Host.tcp cl) ~remote:(service, service_port) () in
           let buf = Buffer.create reply_size in
           Tcb.set_on_established c (fun () -> ignore (Tcb.send c request));
           Tcb.set_on_data c (fun d -> Buffer.add_string buf d);
           Tcb.set_on_reset c (fun () -> incr resets);
           Tcb.set_on_eof c (fun () ->
               incr completed;
               if Buffer.contents buf = reply then incr ok;
               Tcb.close c)))
  done;

  (* rotating kill/repair cycles, driven as a polled state machine
     between run slices: kill one replica of shard (c mod pools) —
     primaries on even cycles, secondaries on odd — wait for the pool
     to notice, reintegrate a fresh host ([reintegrate] refuses while a
     §5 takeover is in flight, so it is simply retried next slice), and
     only move on once the pool is whole again AND the dispatcher has
     ramped the shard back to full weight. *)
  let cycle = ref 0 in
  let stage = ref `Idle in
  let next_kill_at = ref (Time.ms 30) in
  let min_w = ref max_w in
  let cycles_ramped = ref 0 in
  let repair_host = ref None in
  let gw_addr = Tcpfo_packet.Ipaddr.of_string gw in
  let advance () =
    if !cycle < cycles then begin
      let sname = shard_name (!cycle mod n_pools) in
      let pool = List.assoc sname shard_pools in
      let w = Dispatch.weight disp sname in
      if w < !min_w then min_w := w;
      let try_reintegrate h =
        match Replicated.reintegrate pool ~secondary:h with
        | () -> stage := `Settle
        | exception Invalid_argument _ -> ()
      in
      match !stage with
      | `Idle ->
        if World.now world >= !next_kill_at then begin
          min_w := max_w;
          if !cycle mod 2 = 0 then Replicated.kill_primary pool
          else Replicated.kill_secondary pool;
          stage := `Detect
        end
      | `Detect ->
        if Replicated.status pool <> `Normal then
          stage := `Repair (World.now world + Time.ms 2)
      | `Repair at ->
        if World.now world >= at then begin
          match !repair_host with
          | Some h -> try_reintegrate h
          | None ->
            let h =
              World.add_host world back
                ~name:(Printf.sprintf "fix%d" !cycle)
                ~addr:(Printf.sprintf "10.0.0.%d" (100 + !cycle))
                ~profile:fleet_profile ()
            in
            Host.set_default_via_lan h ~gateway:gw_addr;
            World.warm_arp (h :: Replicated.replicas pool);
            Topo.warm_dispatch_arp topo "disp" [ h ];
            Dispatch.arm_probe_responder h;
            repair_host := Some h;
            try_reintegrate h
        end
      | `Settle ->
        if
          Replicated.status pool = `Normal
          && Replicated.pending_transfers pool = 0
          && Dispatch.weight disp sname = max_w
          && Dispatch.state disp sname = Dispatch.Healthy
        then begin
          if !min_w < max_w then incr cycles_ramped;
          incr cycle;
          stage := `Idle;
          repair_host := None;
          next_kill_at := World.now world + Time.ms 5
        end
    end
  in
  let t0 = Unix.gettimeofday () in
  (* 1 ms slices: fine enough to watch every decay/ramp step of the
     weight machinery (cap: 30 simulated seconds) *)
  let budget = ref 30_000 in
  while (!cycle < cycles || !completed < conns) && !budget > 0 do
    World.run world ~for_:(Time.ms 1);
    advance ();
    decr budget
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    pools = n_pools;
    conns;
    cycles = !cycle;
    cycles_ramped = !cycles_ramped;
    completed = !completed;
    ok = !ok;
    resets = !resets;
    counters = Dispatch.counters disp;
    events = Engine.processed engine;
    sim_ns = World.now world;
    wall_s;
  }

let trial_ok ~conns ~cycles o =
  o.completed = conns && o.ok = conns && o.resets = 0 && o.cycles = cycles
  && o.cycles_ramped = cycles
  && o.counters.Dispatch.refused = 0
  && o.counters.Dispatch.isolation_drops = 0
  && o.counters.Dispatch.drained > 0

let run_exp ~pools ~conns ~cycles ~trials =
  print_header
    (Printf.sprintf
       "E15: dispatcher fleet (%d pools, %d connections, %d kill/repair \
        cycles, %d trial%s, %d job%s)"
       pools conns cycles trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  let outcomes =
    map_trials trials (fun i -> one_trial ~pools ~conns ~cycles ~seed:(15_000 + i))
  in
  Printf.printf "%-6s %6s %6s %6s %6s %7s %7s %8s %7s %6s %12s %10s\n" "trial"
    "done" "ok" "resets" "cycles" "ramped" "routed" "drained" "refused"
    "isol" "events" "sim[ms]";
  let all_ok = ref true in
  List.iteri
    (fun i o ->
      if not (trial_ok ~conns ~cycles o) then all_ok := false;
      Printf.printf "%-6d %6d %6d %6d %6d %7d %7d %8d %7d %6d %12d %10.1f\n" i
        o.completed o.ok o.resets o.cycles o.cycles_ramped
        o.counters.Dispatch.routed o.counters.Dispatch.drained
        o.counters.Dispatch.refused o.counters.Dispatch.isolation_drops
        o.events
        (float_of_int o.sim_ns /. 1e6))
    outcomes;
  (* timing, intentionally outside the identity contract *)
  List.iteri
    (fun i o -> Printf.printf "  trial %d wall-clock: %.2fs\n" i o.wall_s)
    outcomes;
  let o = List.hd outcomes in
  let total_events = List.fold_left (fun a o -> a + o.events) 0 outcomes in
  Printf.printf
    "[fleet-summary] {\"pools\":%d,\"conns\":%d,\"cycles\":%d,\"trials\":%d,\
     \"jobs\":%d,\"completed\":%d,\"ok\":%d,\"resets\":%d,\
     \"cycles_ramped\":%d,\"routed\":%d,\"drained\":%d,\"refused\":%d,\
     \"unmatched\":%d,\"isolation_drops\":%d,\"probes_sent\":%d,\
     \"probe_replies\":%d,\"shift_transitions\":%d,\"events\":%d,\
     \"sim_ms\":%.1f,\"all_ok\":%b}\n%!"
    o.pools o.conns o.cycles trials !jobs o.completed o.ok o.resets
    o.cycles_ramped o.counters.Dispatch.routed o.counters.Dispatch.drained
    o.counters.Dispatch.refused o.counters.Dispatch.unmatched
    o.counters.Dispatch.isolation_drops o.counters.Dispatch.probes_sent
    o.counters.Dispatch.probe_replies o.counters.Dispatch.shift_transitions
    o.events
    (float_of_int o.sim_ns /. 1e6)
    !all_ok;
  events_line ~exp:"fleet" total_events;
  dump_metrics ~exp:"fleet"
