(* E1 — §9 connection-setup table: median/max connect time, standard TCP
   vs TCP failover, warm ARP caches. *)

open Harness
module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

let one_trial mode ~seed =
  let env = make_env ~seed mode in
  env.install ~port:5000 (fun _ -> ());
  (* let heartbeats settle before timing *)
  run env ~for_:(Time.ms 5);
  let t0 = now env in
  let done_at = ref None in
  let c = Stack.connect (Host.tcp env.client) ~remote:(env.service, 5000) () in
  Tcb.set_on_established c (fun () -> done_at := Some (now env));
  run env ~for_:(Time.ms 100);
  match !done_at with
  | Some t -> Some (t - t0)
  | None -> None

let measure mode ~trials =
  let samples =
    List.filter_map Fun.id
      (map_trials trials (fun i -> one_trial mode ~seed:(1000 + i)))
  in
  (median_ns samples, max_ns samples, List.length samples)

let run_exp ~trials =
  print_header "E1: connection setup time (paper §9 in-text table)";
  let med_std, max_std, n_std = measure Std ~trials in
  let med_fo, max_fo, n_fo = measure Failover ~trials in
  Printf.printf "%-16s %12s %12s   (n)\n" "" "median[us]" "max[us]";
  Printf.printf "%-16s %12s %12s   (%d)\n" "standard TCP" (pp_time_us med_std)
    (pp_time_us max_std) n_std;
  Printf.printf "%-16s %12s %12s   (%d)\n" "TCP failover" (pp_time_us med_fo)
    (pp_time_us max_fo) n_fo;
  Printf.printf "paper:  standard 294 / 603    failover 505 / 1193\n";
  Printf.printf "ratio failover/standard: measured %.2f, paper 1.72\n%!"
    (float_of_int med_fo /. float_of_int med_std);
  dump_metrics ~exp:"setup"
