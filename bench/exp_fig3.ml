(* E2 — Figure 3: client-to-server data transfer.  Median time for the
   application to send one message of each size: the send loop returns
   when the last byte enters the 64 KB socket buffer, hence the knee the
   paper describes at 32-64 KB. *)

open Harness
module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

let sink tcb =
  Tcb.set_on_data tcb (fun _ -> ());
  Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)

let one_trial mode ~size ~seed =
  let env = make_env ~seed mode in
  env.install ~port:5001 sink;
  run env ~for_:(Time.ms 5);
  let c =
    Stack.connect (Host.tcp env.client) ~remote:(env.service, 5001) ()
  in
  let finished = ref None in
  let started = ref Time.zero in
  Tcb.set_on_established c (fun () ->
      started := now env;
      timed_send (Host.clock env.client) c ~size ~on_buffered:(fun () ->
          finished := Some (now env)));
  run env ~for_:(Time.sec 60.0);
  Option.map (fun t -> t - !started) !finished

(* All (size, trial) cells fan out in one batch so a parallel run keeps
   every domain busy across the whole sweep, not just within one size. *)
let series mode ~sizes ~trials =
  let sizes_arr = Array.of_list sizes in
  let results =
    Array.of_list
      (map_trials
         (Array.length sizes_arr * trials)
         (fun k ->
           one_trial mode ~size:sizes_arr.(k / trials)
             ~seed:(2000 + (k mod trials))))
  in
  List.mapi
    (fun j size ->
      let samples =
        List.filter_map Fun.id
          (Array.to_list (Array.sub results (j * trials) trials))
      in
      (size, if samples = [] then nan
             else float_of_int (median_ns samples) /. 1e3))
    sizes

let run_exp ~sizes ~trials =
  print_header "E2 / Figure 3: client-to-server send time vs message size";
  let std = series Std ~sizes ~trials in
  let fo = series Failover ~sizes ~trials in
  Printf.printf "%-10s %16s %16s %8s\n" "size" "std TCP [us]" "failover [us]"
    "ratio";
  List.iter2
    (fun (sz, s) (_, f) ->
      Printf.printf "%-10s %16.1f %16.1f %8.2f\n" (size_label sz) s f
        (f /. s))
    std fo;
  Printf.printf
    "shape check: curves should overlap below ~32K (send buffer absorbs\n\
     the message) and diverge beyond 64K where the wire rate dominates.\n%!";
  dump_metrics ~exp:"fig3"
