(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (§9), plus the failover-latency and ablation extensions.

     dune exec bench/main.exe               # everything, full sizes
     dune exec bench/main.exe -- --quick    # reduced sizes/trials
     dune exec bench/main.exe -- --exp fig5 # one experiment *)

open Cmdliner
open Bench_lib

type which =
  | All
  | Setup
  | Fig3
  | Fig4
  | Fig5
  | Fig6
  | Failover_exp
  | Ablation
  | Chain_exp
  | Micro_exp

let which_of_string = function
  | "all" -> Ok All
  | "setup" -> Ok Setup
  | "fig3" -> Ok Fig3
  | "fig4" -> Ok Fig4
  | "fig5" -> Ok Fig5
  | "fig6" -> Ok Fig6
  | "failover" -> Ok Failover_exp
  | "ablation" -> Ok Ablation
  | "chain" -> Ok Chain_exp
  | "micro" -> Ok Micro_exp
  | s -> Error (`Msg ("unknown experiment: " ^ s))

let which_conv =
  Arg.conv
    ( which_of_string,
      fun fmt w ->
        Format.pp_print_string fmt
          (match w with
          | All -> "all"
          | Setup -> "setup"
          | Fig3 -> "fig3"
          | Fig4 -> "fig4"
          | Fig5 -> "fig5"
          | Fig6 -> "fig6"
          | Failover_exp -> "failover"
          | Ablation -> "ablation"
          | Chain_exp -> "chain"
          | Micro_exp -> "micro") )

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Sys.mkdir dir 0o755
  end

let run which quick metrics_dir =
  (match metrics_dir with
  | Some dir ->
    mkdir_p dir;
    Harness.metrics_dir := Some dir
  | None -> ());
  let fig_trials = if quick then 1 else 3 in
  let sizes =
    if quick then [ 64; 1024; 16384; 65536; 262144; 1048576 ]
    else Harness.fig34_sizes
  in
  let stream_size = (if quick then 10 else 100) * (1 lsl 20) in
  let t0 = Sys.time () in
  let should w = which = All || which = w in
  if should Setup then Exp_setup.run_exp ~trials:(if quick then 20 else 100);
  if should Fig3 then Exp_fig3.run_exp ~sizes ~trials:fig_trials;
  if should Fig4 then Exp_fig4.run_exp ~sizes ~trials:fig_trials;
  if should Fig5 then Exp_fig5.run_exp ~size:stream_size;
  if should Fig6 then Exp_fig6.run_exp ~trials:fig_trials;
  if should Failover_exp then
    Exp_failover.run_exp ~trials:(if quick then 3 else 7);
  if should Ablation then Exp_ablation.run_exp ~trials:(if quick then 3 else 7);
  if should Chain_exp then Exp_chain.run_exp ~trials:(if quick then 3 else 5);
  if should Micro_exp then Micro.run_exp ();
  Printf.printf "\n[bench completed in %.1fs cpu time]\n%!"
    (Sys.time () -. t0)

let which_arg =
  Arg.(value & opt which_conv All & info [ "exp" ] ~docv:"EXP"
         ~doc:"Experiment to run: all, setup, fig3, fig4, fig5, fig6, \
               failover, ablation, chain, micro.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes and trial counts.")

let metrics_dir_arg =
  Arg.(value & opt (some string) None & info [ "metrics-dir" ] ~docv:"DIR"
         ~doc:"Write each experiment's metrics snapshot to \
               DIR/<exp>.metrics.json instead of stdout.")

let cmd =
  Cmd.v
    (Cmd.info "tcpfo-bench"
       ~doc:"Reproduce the evaluation of 'Transparent TCP Connection \
             Failover' (DSN 2003)")
    Term.(const run $ which_arg $ quick_arg $ metrics_dir_arg)

let () = exit (Cmd.eval cmd)
