(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (§9), plus the failover-latency and ablation extensions.

     dune exec bench/main.exe               # everything, full sizes
     dune exec bench/main.exe -- --quick    # reduced sizes/trials
     dune exec bench/main.exe -- --exp fig5 # one experiment *)

open Cmdliner
open Bench_lib

type which =
  | All
  | Setup
  | Fig3
  | Fig4
  | Fig5
  | Fig6
  | Failover_exp
  | Ablation
  | Chain_exp
  | Scale_exp
  | Micro_exp
  | Soak_exp
  | Reintegration_exp
  | Pool_exp
  | Threetier_exp
  | Highconn_exp
  | Fleet_exp

let which_of_string = function
  | "all" -> Ok All
  | "setup" -> Ok Setup
  | "fig3" -> Ok Fig3
  | "fig4" -> Ok Fig4
  | "fig5" -> Ok Fig5
  | "fig6" -> Ok Fig6
  | "failover" -> Ok Failover_exp
  | "ablation" -> Ok Ablation
  | "chain" -> Ok Chain_exp
  | "scale" -> Ok Scale_exp
  | "micro" -> Ok Micro_exp
  | "soak" -> Ok Soak_exp
  | "reintegration" -> Ok Reintegration_exp
  | "pool" -> Ok Pool_exp
  | "threetier" -> Ok Threetier_exp
  | "highconn" -> Ok Highconn_exp
  | "fleet" -> Ok Fleet_exp
  | s -> Error (`Msg ("unknown experiment: " ^ s))

let which_conv =
  Arg.conv
    ( which_of_string,
      fun fmt w ->
        Format.pp_print_string fmt
          (match w with
          | All -> "all"
          | Setup -> "setup"
          | Fig3 -> "fig3"
          | Fig4 -> "fig4"
          | Fig5 -> "fig5"
          | Fig6 -> "fig6"
          | Failover_exp -> "failover"
          | Ablation -> "ablation"
          | Chain_exp -> "chain"
          | Scale_exp -> "scale"
          | Micro_exp -> "micro"
          | Soak_exp -> "soak"
          | Reintegration_exp -> "reintegration"
          | Pool_exp -> "pool"
          | Threetier_exp -> "threetier"
          | Highconn_exp -> "highconn"
          | Fleet_exp -> "fleet") )

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Sys.mkdir dir 0o755
  end

let run which quick metrics_dir jobs seeds first_seed soak_report loss_rates
    engines =
  (match metrics_dir with
  | Some dir ->
    mkdir_p dir;
    Harness.metrics_dir := Some dir
  | None -> ());
  let backends =
    List.map
      (fun s ->
        match Tcpfo_sim.Engine.backend_of_string s with
        | Ok b -> b
        | Error m -> failwith m)
      (if engines = [] then [ "heap" ] else engines)
  in
  (* every experiment's worlds use the first listed backend; E13
     additionally sweeps the full list *)
  Harness.engine_backend := List.hd backends;
  let jobs =
    if jobs = 0 then Tcpfo_util.Domain_pool.default_jobs () else max 1 jobs
  in
  Harness.jobs := jobs;
  let fig_trials = if quick then 1 else 3 in
  let sizes =
    if quick then [ 64; 1024; 16384; 65536; 262144; 1048576 ]
    else Harness.fig34_sizes
  in
  let stream_size = (if quick then 10 else 100) * (1 lsl 20) in
  let t0 = Sys.time () in
  let should w = which = All || which = w in
  if should Setup then Exp_setup.run_exp ~trials:(if quick then 20 else 100);
  if should Fig3 then Exp_fig3.run_exp ~sizes ~trials:fig_trials;
  if should Fig4 then Exp_fig4.run_exp ~sizes ~trials:fig_trials;
  if should Fig5 then Exp_fig5.run_exp ~size:stream_size;
  if should Fig6 then Exp_fig6.run_exp ~trials:fig_trials;
  if should Failover_exp then
    Exp_failover.run_exp ~trials:(if quick then 3 else 7);
  if should Ablation then Exp_ablation.run_exp ~trials:(if quick then 3 else 7);
  if should Chain_exp then Exp_chain.run_exp ~trials:(if quick then 3 else 5);
  if should Scale_exp then
    Exp_scale.run_exp
      ~conns:(if quick then 64 else 256)
      ~reply_size:(if quick then 4096 else 65536)
      ~trials:(if quick then 2 else 4);
  if should Micro_exp then Micro.run_exp ();
  if should Reintegration_exp then
    Exp_reintegration.run_exp
      ~conn_counts:(if quick then [ 4; 16 ] else [ 10; 100; 1000 ])
      ~loss_rates:(if loss_rates = [] then [ 0.0 ] else loss_rates)
      ~big:(if quick then 0 else 10_000)
      ~trials:(if quick then 2 else 3);
  if should Pool_exp then
    Exp_pool.run_exp
      ~pool_sizes:(if quick then [ 3; 4 ] else [ 3; 4; 5 ])
      ~trials:(if quick then 2 else 3);
  if should Threetier_exp then
    Exp_threetier.run_exp
      ~cycle_counts:(if quick then [ 3 ] else [ 3; 6 ])
      ~trials:(if quick then 2 else 3);
  if should Highconn_exp then
    Exp_highconn.run_exp
      ~conn_counts:(if quick then [ 100; 400 ] else [ 1000; 4000; 10000 ])
      ~backends
      ~trials:(if quick then 1 else 2);
  if should Fleet_exp then
    Exp_fleet.run_exp
      ~pools:(if quick then 4 else 16)
      ~conns:(if quick then 256 else 2048)
      ~cycles:(if quick then 2 else 8)
      ~trials:(if quick then 1 else 2);
  let soak_failures =
    if should Soak_exp then
      Exp_soak.run_exp
        ~seeds:(if quick then min seeds 20 else seeds)
        ~first_seed ?report:soak_report ()
    else 0
  in
  Printf.printf "\n[bench completed in %.1fs cpu time]\n%!"
    (Sys.time () -. t0);
  if soak_failures > 0 then exit 1

let which_arg =
  Arg.(value & opt which_conv All & info [ "exp" ] ~docv:"EXP"
         ~doc:"Experiment to run: all, setup, fig3, fig4, fig5, fig6, \
               failover, ablation, chain, scale, micro, soak, \
               reintegration, pool, threetier, highconn, fleet.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sizes and trial counts.")

let metrics_dir_arg =
  Arg.(value & opt (some string) None & info [ "metrics-dir" ] ~docv:"DIR"
         ~doc:"Write each experiment's metrics snapshot to \
               DIR/<exp>.metrics.json instead of stdout.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Fan independent trials out over N OCaml domains (0 = one \
               per recommended core).  Results and metrics snapshots are \
               byte-identical to --jobs 1; only wall-clock changes.")

let seeds_arg =
  Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N"
         ~doc:"Number of seeded scenarios the soak experiment runs \
               (seeds are consecutive from --first-seed).")

let first_seed_arg =
  Arg.(value & opt int 1 & info [ "first-seed" ] ~docv:"SEED"
         ~doc:"First soak seed; replay a single failing scenario with \
               --seeds 1 --first-seed SEED.")

let soak_report_arg =
  Arg.(value & opt (some string) None & info [ "soak-report" ] ~docv:"FILE"
         ~doc:"Write soak invariant failures (with replay instructions) \
               to FILE when any occur.")

let loss_arg =
  Arg.(value & opt (list float) [ 0.0 ] & info [ "loss" ] ~docv:"P,..."
         ~doc:"Control-channel loss rates the reintegration experiment \
               sweeps (comma-separated probabilities, e.g. 0,0.25): each \
               rate runs the hot state transfers under a loss burst on \
               the LAN, reporting transfer latency and chunk \
               retransmissions.")

let engine_arg =
  Arg.(value & opt (list string) [ "heap" ] & info [ "engine" ] ~docv:"B,..."
         ~doc:"Engine scheduling backend(s): heap, wheel.  Experiments \
               run on the first; the highconn experiment sweeps the \
               whole list.  Results are byte-identical across backends \
               (only wall-clock differs).")

let cmd =
  Cmd.v
    (Cmd.info "tcpfo-bench"
       ~doc:"Reproduce the evaluation of 'Transparent TCP Connection \
             Failover' (DSN 2003)")
    Term.(const run $ which_arg $ quick_arg $ metrics_dir_arg $ jobs_arg
          $ seeds_arg $ first_seed_arg $ soak_report_arg $ loss_arg
          $ engine_arg)

let () = exit (Cmd.eval cmd)
