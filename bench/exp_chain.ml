(* E8 — daisy-chain depth (extension; paper §1 future work).

   Fault-free cost of replication depth: a 256 KB reply through chains of
   1 (unreplicated) to 5 replicas — each additional level adds one more
   traversal of the shared segment and one more merge on the critical
   path.  Then the client-visible stall when each position of a 3-chain
   dies mid-transfer. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Chain = Tcpfo_core.Chain
module Failover_config = Tcpfo_core.Failover_config

let reply_size = 262144

let serve_reply_on listen =
  listen (fun tcb ->
      let got = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          got := !got + String.length d;
          if !got >= 3 then begin
            let off = ref 0 in
            let rec pump () =
              if !off < reply_size then begin
                let want = min 32768 (reply_size - !off) in
                let n = Tcb.send tcb (String.make want 'c') in
                off := !off + n;
                if n < want then Tcb.set_on_drain tcb pump else pump ()
              end
              else Tcb.close tcb
            in
            pump ()
          end))

type run_result = { total : Time.t; stall : Time.t; intact : bool }

let chain_run ~n ~seed ~kill =
  let world = World.create ~seed () in
  note_world world;
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~profile:paper_profile ()
  in
  let replicas =
    List.init n (fun i ->
        World.add_host world lan
          ~name:(Printf.sprintf "replica%d" i)
          ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
          ~profile:paper_profile ())
  in
  World.warm_arp (client :: replicas);
  let service, install =
    if n = 1 then
      let server = List.hd replicas in
      ( Host.addr server,
        fun handler -> Stack.listen (Host.tcp server) ~port:80
            ~on_accept:handler )
    else begin
      let chain =
        Chain.create ~replicas
          ~config:
            (Failover_config.make ~service_ports:[ 80 ]
               ~bridge_cost:(Time.us 55) ())
          ()
      in
      (match kill with
      | Some (at, idx) ->
        ignore
          (Engine.schedule (World.engine world) ~delay:at (fun () ->
               Chain.kill chain idx))
      | None -> ());
      ( Chain.service_addr chain,
        fun handler ->
          Chain.listen chain ~port:80 ~on_accept:(fun ~replica:_ tcb ->
              handler tcb) )
    end
  in
  serve_reply_on install;
  let received = ref 0 in
  let started = ref Time.zero in
  let last = ref Time.zero in
  let stall = ref 0 in
  let finished = ref None in
  let c = Stack.connect (Host.tcp client) ~remote:(service, 80) () in
  Tcb.set_on_established c (fun () ->
      started := World.now world;
      last := !started;
      ignore (Tcb.send c "get"));
  Tcb.set_on_data c (fun d ->
      let t = World.now world in
      stall := max !stall (t - !last);
      last := t;
      received := !received + String.length d);
  Tcb.set_on_eof c (fun () -> finished := Some (World.now world));
  World.run world ~for_:(Time.sec 60.0);
  match !finished with
  | Some t ->
    Some { total = t - !started; stall = !stall; intact = !received = reply_size }
  | None -> None

let median_of runs f =
  Tcpfo_util.Stats.median (List.map f runs)

let run_exp ~trials =
  print_header "E8: daisy-chain depth (extension of paper 1)";
  Printf.printf "fault-free 256 KB request/reply vs replication depth:\n";
  Printf.printf "%-10s %14s %10s\n" "replicas" "total med[ms]" "vs n=1";
  let base = ref 1.0 in
  List.iter
    (fun n ->
      let runs =
        List.filter_map Fun.id
          (map_trials trials (fun i ->
               chain_run ~n ~seed:(9000 + (n * 100) + i) ~kill:None))
      in
      match runs with
      | [] -> Printf.printf "%-10d %14s\n" n "DNF"
      | _ ->
        let med = median_of runs (fun r -> Time.to_ms r.total) in
        if n = 1 then base := med;
        Printf.printf "%-10d %14.2f %9.2fx\n" n med (med /. !base))
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\n3-chain, kill one replica at 20 ms mid-transfer (%d trials):\n" trials;
  Printf.printf "%-10s %8s %14s %14s\n" "victim" "intact" "stall med[ms]"
    "total med[ms]";
  List.iter
    (fun (name, idx) ->
      let runs =
        List.filter_map Fun.id
          (map_trials trials (fun i ->
               chain_run ~n:3 ~seed:(9500 + (idx * 100) + i)
                 ~kill:(Some (Time.ms 20, idx))))
      in
      match runs with
      | [] -> Printf.printf "%-10s %8s\n" name "DNF"
      | _ ->
        Printf.printf "%-10s %8b %14.2f %14.2f\n" name
          (List.for_all (fun r -> r.intact) runs)
          (median_of runs (fun r -> Time.to_ms r.stall))
          (median_of runs (fun r -> Time.to_ms r.total)))
    [ ("head", 0); ("middle", 1); ("tail", 2) ];
  Printf.printf
    "findings: (1) fault-free cost grows ~linearly to depth 3 (each level\n\
     re-crosses the shared segment once); (2) at depth 4+ the topology\n\
     collapses on THIS testbed because every promiscuous replica burns\n\
     CPU on every frame of every level — snooping cost, not bandwidth,\n\
     bounds chain depth on a single shared segment; (3) head death costs\n\
     a takeover + one RTO, middle/tail deaths are far cheaper (re-divert\n\
     or degrade only).\n%!";
  dump_metrics ~exp:"chain"
