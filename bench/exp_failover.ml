(* E6 — failover transparency and latency (extension; the paper asserts
   transparency in §5 but reports no failover-time figure).

   A client downloads a fixed reply; the primary (or secondary) is killed
   at a configurable instant.  We report: stream integrity, the
   client-visible stall (longest gap between consecutive data arrivals),
   and the total transfer time — then sweep the fault-detector timeout,
   which dominates the stall. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config

type outcome = {
  intact : bool;
  stall_ns : int;
  total_ns : int;
  completed : bool;
}

let reply_size = 400_000

let one_run ~seed ~victim ~kill_at ~detector_timeout =
  let world = World.create ~seed () in
  note_world world;
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~profile:paper_profile ()
  in
  let primary =
    World.add_host world lan ~name:"primary" ~addr:"10.0.0.1"
      ~profile:paper_profile ()
  in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2"
      ~profile:paper_profile ()
  in
  World.warm_arp [ client; primary; secondary ];
  let config =
    Failover_config.make ~service_ports:[ 5002 ]
      ~bridge_cost:(Time.us 25) ~detector_timeout ()
  in
  let repl = Replicated.create ~primary ~secondary ~config () in
  let reply = String.init reply_size (fun i -> Char.chr ((i * 7) land 0xFF)) in
  Replicated.listen repl ~port:5002 ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_established tcb (fun () ->
          let off = ref 0 in
          let rec pump () =
            if !off < reply_size then begin
              let want = min 32768 (reply_size - !off) in
              let n = Tcb.send tcb (String.sub reply !off want) in
              off := !off + n;
              if n < want then Tcb.set_on_drain tcb pump else pump ()
            end
            else Tcb.close tcb
          in
          pump ()));
  let buf = Buffer.create reply_size in
  let started = ref Time.zero in
  let last_arrival = ref Time.zero in
  let max_gap = ref 0 in
  let finished = ref None in
  let c =
    Stack.connect (Host.tcp client)
      ~remote:(Replicated.service_addr repl, 5002)
      ()
  in
  Tcb.set_on_established c (fun () ->
      started := World.now world;
      last_arrival := World.now world);
  Tcb.set_on_data c (fun d ->
      let t = World.now world in
      max_gap := max !max_gap (t - !last_arrival);
      last_arrival := t;
      Buffer.add_string buf d);
  Tcb.set_on_eof c (fun () -> finished := Some (World.now world));
  ignore
    (Engine.schedule (World.engine world) ~delay:kill_at (fun () ->
         match victim with
         | `Primary -> Replicated.kill_primary repl
         | `Secondary -> Replicated.kill_secondary repl));
  World.run world ~for_:(Time.sec 60.0);
  {
    intact = Buffer.contents buf = reply;
    stall_ns = !max_gap;
    total_ns = (match !finished with Some t -> t - !started | None -> -1);
    completed = !finished <> None;
  }

let run_exp ~trials =
  print_header
    "E6: failover transparency and client-visible stall (extension)";
  let kill_times = [ Time.ms 5; Time.ms 20; Time.ms 50; Time.ms 100 ] in
  Printf.printf "victim=primary, detector timeout 30 ms, %d trials/point\n"
    trials;
  Printf.printf "%-12s %8s %14s %14s %12s\n" "kill at" "intact"
    "stall med[ms]" "total med[ms]" "completed";
  List.iter
    (fun kill_at ->
      let runs =
        map_trials trials (fun i ->
            one_run ~seed:(6000 + i) ~victim:`Primary ~kill_at
              ~detector_timeout:(Time.ms 30))
      in
      let ok = List.for_all (fun r -> r.intact && r.completed) runs in
      let med f = Tcpfo_util.Stats.median (List.map f runs) in
      Printf.printf "%-12s %8b %14.2f %14.2f %11d/%d\n"
        (Printf.sprintf "%dms" (kill_at / 1_000_000))
        ok
        (med (fun r -> float_of_int r.stall_ns /. 1e6))
        (med (fun r -> float_of_int r.total_ns /. 1e6))
        (List.length (List.filter (fun r -> r.completed) runs))
        trials)
    kill_times;
  Printf.printf "\nvictim=secondary (primary degrades per \xc2\xa76):\n";
  List.iter
    (fun kill_at ->
      let runs =
        map_trials trials (fun i ->
            one_run ~seed:(6500 + i) ~victim:`Secondary ~kill_at
              ~detector_timeout:(Time.ms 30))
      in
      let ok = List.for_all (fun r -> r.intact && r.completed) runs in
      let med f = Tcpfo_util.Stats.median (List.map f runs) in
      Printf.printf "%-12s %8b %14.2f %14.2f\n"
        (Printf.sprintf "%dms" (kill_at / 1_000_000))
        ok
        (med (fun r -> float_of_int r.stall_ns /. 1e6))
        (med (fun r -> float_of_int r.total_ns /. 1e6)))
    kill_times;
  Printf.printf "\ndetector-timeout sweep (kill at 20 ms, victim=primary):\n";
  Printf.printf "%-14s %14s %14s\n" "timeout" "stall med[ms]" "total med[ms]";
  List.iter
    (fun dt ->
      let runs =
        map_trials trials (fun i ->
            one_run ~seed:(7000 + i) ~victim:`Primary ~kill_at:(Time.ms 20)
              ~detector_timeout:dt)
      in
      let med f = Tcpfo_util.Stats.median (List.map f runs) in
      Printf.printf "%-14s %14.2f %14.2f\n"
        (Printf.sprintf "%dms" (dt / 1_000_000))
        (med (fun r -> float_of_int r.stall_ns /. 1e6))
        (med (fun r -> float_of_int r.total_ns /. 1e6)))
    [ Time.ms 10; Time.ms 30; Time.ms 100; Time.ms 300 ];
  Printf.printf
    "shape check: the stall tracks detector timeout + takeover + one or\n\
     two client RTOs; stream integrity holds at every kill instant.\n%!";
  dump_metrics ~exp:"failover"
