(* E11 — mass reintegration (not in the paper): cost of re-replicating
   live BULK connections onto a repaired host, swept over snapshot form
   (full vs delta) and offer scheduling (burst vs paced), the connection
   count, and control-channel loss.

   Topology: [n_clients] clients, a replicated pair and one spare host
   on a shared gigabit LAN (server-class host profile, as E13 — the
   paper-profile CPU saturates below what thousands of bulk connections
   generate).  Each connection uploads one 4 KiB block; the service
   replies with a 18-byte receipt per block.  Uploads are what the pool
   retains for replay, so by kill time every connection carries a fat
   retained-input history — the worst case for full snapshots.

   The [mode] axis picks the snapshot form indirectly, exactly as a real
   deployment would: [Delta] rows model a checkpointing application that
   calls {!Tcb.checkpoint} at every block boundary, so captures ship as
   delta snapshots (post-checkpoint input only); [Full] rows never
   checkpoint and ship the whole history.  The [pacing] axis switches
   {!Replicated.start_transfers} between the legacy one-burst offer
   storm and the windowed scheduler ([transfer_inflight] +
   [transfer_pace]).

   Choreography per trial: connections open and upload block #1; the
   secondary is killed; after detection a fresh host is reintegrated and
   every live connection re-replicates onto it — the reported latency is
   sim-time from [reintegrate] to [Transfers_complete].  The payoff
   check rides along: block #2 is uploaded, then the ORIGINAL primary is
   killed too, and block #3 must still round-trip byte-exactly on the
   repaired host.  A trial is ok only when every receipt stream is exact
   and RST-free through both failovers.

   Everything is seeded and simulated, so the table is byte-identical
   across --jobs 1/2/4. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Medium = Tcpfo_net.Medium
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Registry = Tcpfo_obs.Registry
module Stats = Tcpfo_util.Stats
module Fault = Tcpfo_fault.Fault
module Injector = Tcpfo_fault.Injector

let service_ports = [ 7000; 7001; 7002; 7003 ]
let n_clients = 4
let block_size = 4096

(* Server-class hosts and a gigabit segment, as E13: 10k bulk
   connections would drown the paper's testbed CPU and 100 Mb/s wire. *)
let profile =
  { Host.tx_cost = Time.us 5; rx_cost = Time.us 7; jitter_frac = 0.25;
    hiccup_prob = 0.015 }

let lan_config = { Medium.default_config with bandwidth_bps = 1_000_000_000 }

type mode = Full | Delta

let mode_name = function Full -> "full" | Delta -> "delta"

(* One upload block; the first 16 bytes name the connection and phase so
   the receipt stream is checkable per connection. *)
let block phase i =
  let head = Printf.sprintf "%c%09d:" phase i in
  head ^ String.make (block_size - String.length head) '.'

let receipt phase i = "R:" ^ String.sub (block phase i) 0 16

type outcome = {
  conns : int;
  transferred : int;
  xfer_bytes : int;  (** sealed snapshot bytes over the control channel *)
  retransmits : int;  (** statex chunk retransmissions *)
  checkpoints : int;  (** application checkpoints taken (delta rows) *)
  paced : int;  (** offers issued by the paced scheduler *)
  latency_us : float;  (** reintegrate -> Transfers_complete, sim time *)
  resets : int;  (** RSTs seen by clients — client-visible disruption *)
  ok : bool;  (** every stream exact and RST-free after BOTH failovers *)
}

let one_trial ~conns ~loss ~mode ~pacing ~seed =
  let world = World.create ~seed () in
  note_world world;
  let spec =
    (Topo.segment ~config:lan_config "lan"
    :: List.init n_clients (fun i ->
           Topo.host ~profile
             ~addr:(Printf.sprintf "10.0.0.%d" (10 + i))
             ~seg:"lan"
             (Printf.sprintf "client%d" i)))
    @ [
        Topo.host ~profile ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~profile ~addr:"10.0.0.2" ~seg:"lan" "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let topo = Topo.build world spec in
  let lan = Topo.segment_of topo "lan" in
  let clients =
    List.init n_clients (fun i ->
        Topo.host_of topo (Printf.sprintf "client%d" i))
  in
  let config =
    if pacing then
      Failover_config.make ~service_ports ~transfer_inflight:32
        ~transfer_pace:(Time.us 10) ()
    else Failover_config.make ~service_ports ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  List.iter
    (fun port ->
      Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
          let pending = Buffer.create block_size in
          Tcb.set_on_data tcb (fun d ->
              Buffer.add_string pending d;
              while Buffer.length pending >= block_size do
                let b = Buffer.sub pending 0 block_size in
                let rest =
                  Buffer.sub pending block_size
                    (Buffer.length pending - block_size)
                in
                Buffer.clear pending;
                Buffer.add_string pending rest;
                ignore (Tcb.send tcb ("R:" ^ String.sub b 0 16))
              done;
              (* the delta rows model a checkpointing application: at a
                 block boundary its state no longer depends on the
                 consumed input, so snapshots from here ship as deltas *)
              if mode = Delta && Buffer.length pending = 0 then
                Tcb.checkpoint tcb);
          Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)))
    service_ports;
  let service = Replicated.service_addr repl in
  let engine = World.engine world in
  let bufs = Array.init conns (fun _ -> Buffer.create 64) in
  let resets = ref 0 in
  let tcbs = Array.make conns None in
  let n_ports = List.length service_ports in
  for i = 0 to conns - 1 do
    let client = List.nth clients (i mod n_clients) in
    let port = List.nth service_ports (i mod n_ports) in
    (* 150 us stagger keeps the open storm under host capacity (E13) *)
    ignore
      (Engine.schedule engine ~delay:(i * Time.us 150) (fun () ->
           let c =
             Stack.connect (Host.tcp client) ~remote:(service, port) ()
           in
           tcbs.(i) <- Some c;
           Tcb.set_on_established c (fun () ->
               ignore (Tcb.send c (block 'q' i)));
           Tcb.set_on_data c (fun d -> Buffer.add_string bufs.(i) d);
           Tcb.set_on_reset c (fun () -> incr resets)))
  done;
  (* Phases are completion-driven: run in slices until every connection
     holds [k] receipts (18 bytes each), capped — a 10k-connection bulk
     phase legitimately needs tens of simulated seconds to drain through
     one surviving host's RTO recovery, while a fixed window either
     wastes sim time at small scale or truncates the phase at large. *)
  let wait_receipts ~cap k =
    let done_ () =
      Array.for_all (fun b -> Buffer.length b >= k * 18) bufs
    in
    let slices = ref cap in
    while (not (done_ ())) && !slices > 0 do
      World.run world ~for_:(Time.ms 500);
      decr slices
    done
  in
  World.run world ~for_:(conns * Time.us 150);
  wait_receipts ~cap:60 1;
  (* failure #1: the secondary dies and is detected *)
  Replicated.kill_secondary repl;
  World.run world ~for_:(Time.sec 2.0);
  (* repair: fresh host joins, live connections re-replicate onto it *)
  let fresh =
    World.add_host world lan ~name:"repaired" ~addr:"10.0.0.3" ~profile ()
  in
  (* warm_arp itself skips the dead secondary *)
  World.warm_arp (fresh :: Topo.hosts topo);
  (* the --loss axis: a loss burst on the LAN covering the transfers,
     which the streaming control channel must retransmit through *)
  if loss > 0.0 then
    ignore
      (Injector.install
         {
           Injector.engine;
           rng = World.fresh_rng world;
           hosts = [];
           nets = [ ("lan", Injector.Medium_net lan) ];
         }
         (Fault.parse_exn
            (Printf.sprintf "after 0us loss lan %.2f for 8ms" loss)));
  let transferred = ref 0 in
  let latency_us = ref nan in
  let t_reint = World.now world in
  Replicated.set_on_event repl (function
    | Replicated.Transfers_complete n ->
      transferred := n;
      latency_us := float_of_int (World.now world - t_reint) /. 1e3
    | _ -> ());
  Replicated.reintegrate repl ~secondary:fresh;
  (* run in slices until the transfers settle (paced 10k-connection
     schedules legitimately take a while); cap at 30 simulated s *)
  let slices = ref 60 in
  while !transferred = 0 && !slices > 0 do
    World.run world ~for_:(Time.ms 500);
    decr slices
  done;
  World.run world ~for_:(Time.sec 1.0);
  (* stagger the bulk phases too, so 10k simultaneous 4 KiB uploads
     don't synchronize into one collision storm *)
  let send_all phase =
    Array.iteri
      (fun i c ->
        match c with
        | Some c ->
          ignore
            (Engine.schedule engine ~delay:(i * Time.us 150) (fun () ->
                 ignore (Tcb.send c (block phase i))))
        | None -> ())
      tcbs
  in
  send_all 'm';
  World.run world ~for_:(conns * Time.us 150);
  wait_receipts ~cap:60 2;
  World.run world ~for_:(Time.sec 1.0);
  (* failure #2: the surviving original dies; the repaired host must
     carry every connection onward in the original sequence space *)
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.5);
  send_all 'e';
  World.run world ~for_:(conns * Time.us 150);
  wait_receipts ~cap:120 3;
  World.run world ~for_:(Time.sec 1.0);
  let ok = ref (!resets = 0) in
  Array.iteri
    (fun i buf ->
      let want = receipt 'q' i ^ receipt 'm' i ^ receipt 'e' i in
      if Buffer.contents buf <> want then ok := false)
    bufs;
  let stats = Replicated.transfer_stats repl in
  let counter = Registry.counter_value (World.metrics world) in
  {
    conns;
    transferred = !transferred;
    xfer_bytes = stats.Tcpfo_statex.Transfer.transfer_bytes;
    retransmits = stats.Tcpfo_statex.Transfer.chunk_retransmits;
    checkpoints = counter "statex.checkpoints";
    paced = counter "statex.paced_offers";
    latency_us = !latency_us;
    resets = !resets;
    ok = !ok;
  }

(* Disjoint deterministic seed blocks per point: every (loss, conns,
   mode, pacing) cell is independent and replayable on its own. *)
let seed_of ~conns ~loss ~mode ~pacing i =
  let loss_salt = int_of_float ((loss *. 1000.) +. 0.5) * 4099 in
  let mode_salt = match mode with Full -> 0 | Delta -> 17_389 in
  let pace_salt = if pacing then 52_361 else 0 in
  11_000 + (100 * conns) + i + loss_salt + mode_salt + pace_salt

type row = {
  r_loss : float;
  r_conns : int;
  r_mode : mode;
  r_pacing : bool;
  r_moved : float;
  r_bytes : float;
  r_rtx : float;
  r_ckpt : float;
  r_lat : float;
  r_resets : float;
  r_ok : bool;
  r_gated : bool;
      (* burst rows at >= 1000 connections are the legacy offer-storm
         collapse this experiment exists to document: reported, but not
         counted against all_ok *)
}

let print_row r =
  Printf.printf "%-6.2f %-8d %-6s %-5s %8.0f %12.0f %12.1f %6.0f %6.0f \
                 %4.0f %14.1f %6s\n"
    r.r_loss r.r_conns (mode_name r.r_mode)
    (if r.r_pacing then "paced" else "burst")
    r.r_moved r.r_bytes
    (r.r_bytes /. float_of_int r.r_conns)
    r.r_rtx r.r_ckpt r.r_resets r.r_lat
    (if r.r_ok then "yes" else if r.r_gated then "NO" else "NO*")

let row_of_point ~loss ~conns ~mode ~pacing ~trials =
  let outcomes =
    map_trials trials (fun i ->
        one_trial ~conns ~loss ~mode ~pacing
          ~seed:(seed_of ~conns ~loss ~mode ~pacing i))
  in
  let med f = Stats.median (List.map f outcomes) in
  {
    r_loss = loss;
    r_conns = conns;
    r_mode = mode;
    r_pacing = pacing;
    r_moved = med (fun o -> float_of_int o.transferred);
    r_bytes = med (fun o -> float_of_int o.xfer_bytes);
    r_rtx = med (fun o -> float_of_int o.retransmits);
    r_ckpt = med (fun o -> float_of_int o.checkpoints);
    r_lat = med (fun o -> o.latency_us);
    r_resets = med (fun o -> float_of_int o.resets);
    r_ok = List.for_all (fun o -> o.ok && o.transferred = o.conns) outcomes;
    r_gated = pacing || conns <= 100;
  }

let row_json r =
  Printf.sprintf
    "{\"loss\":%.2f,\"conns\":%d,\"mode\":%S,\"pacing\":%b,\
     \"transferred\":%.0f,\"transfer_bytes\":%.0f,\"retransmits\":%.0f,\
     \"checkpoints\":%.0f,\"resets\":%.0f,\"latency_us\":%.1f,\
     \"ok\":%b,\"gated\":%b}"
    r.r_loss r.r_conns (mode_name r.r_mode) r.r_pacing r.r_moved r.r_bytes
    r.r_rtx r.r_ckpt r.r_resets r.r_lat r.r_ok r.r_gated

let combos = [ (Full, false); (Full, true); (Delta, false); (Delta, true) ]

let run_exp ~conn_counts ~loss_rates ~big ~trials =
  print_header
    (Printf.sprintf
       "E11: mass reintegration — snapshot form (full|delta) x offer \
        scheduling (burst|paced) x live connections x control-channel \
        loss (%d trial%s per point, %d job%s)"
       trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  Printf.printf "%-6s %-8s %-6s %-5s %8s %12s %12s %6s %6s %4s %14s %6s\n"
    "loss" "conns" "mode" "offer" "moved" "bytes" "bytes/conn" "rtx"
    "ckpt" "rst" "latency[us]" "ok";
  let points =
    List.concat_map
      (fun loss ->
        List.concat_map
          (fun conns ->
            List.map (fun (mode, pacing) -> (loss, conns, mode, pacing))
              combos)
          conn_counts)
      loss_rates
  in
  let grid =
    List.map
      (fun (loss, conns, mode, pacing) ->
        let r = row_of_point ~loss ~conns ~mode ~pacing ~trials in
        print_row r;
        r)
      points
  in
  (* the 10k point: delta+paced must stay clean, and the full rows are
     the baseline the >=2x latency claim is made against *)
  let big_rows =
    if big = 0 then []
    else begin
      Printf.printf "--- %d-connection point (1 trial, loss 0) ---\n" big;
      List.map
        (fun (mode, pacing) ->
          let r =
            row_of_point ~loss:0.0 ~conns:big ~mode ~pacing ~trials:1
          in
          print_row r;
          r)
        [ (Full, false); (Full, true); (Delta, true) ]
    end
  in
  let gated_ok rows = List.for_all (fun r -> r.r_ok || not r.r_gated) rows in
  let delta_big =
    List.find_opt (fun r -> r.r_mode = Delta && r.r_pacing) big_rows
  in
  let big_ok =
    match delta_big with Some r -> r.r_ok | None -> big = 0
  in
  let all_ok = gated_ok grid && gated_ok big_rows && big_ok in
  (* speedup: delta+paced vs the BEST full row at the big point — the
     strongest version of the claim *)
  let speedup =
    match delta_big with
    | None -> 0.0
    | Some d ->
      let full_lats =
        List.filter_map
          (fun r ->
            if r.r_mode = Full && not (Float.is_nan r.r_lat) then
              Some r.r_lat
            else None)
          big_rows
      in
      (match full_lats with
      | [] -> 0.0
      | ls -> List.fold_left min (List.hd ls) ls /. d.r_lat)
  in
  (match delta_big with
  | Some d ->
    Printf.printf
      "delta+paced at %d conns: %.0f us reintegration, %.1fx faster \
       than the best full-snapshot row\n"
      big d.r_lat speedup
  | None -> ());
  Printf.printf "%s\n"
    (if all_ok then
       "every gated row survived both failovers byte-exactly (NO* rows \
        are the ungated legacy burst collapse at scale)"
     else "WARNING: a gated row did not survive the second failover");
  (* machine-readable line for BENCH_reintegration.json bookkeeping *)
  Printf.printf
    "[reintegration-summary] {\"trials\":%d,\"jobs\":%d,\"all_ok\":%b,\
     \"big_conns\":%d,\"big_speedup\":%.2f,\"rows\":[%s]}\n%!"
    trials !jobs all_ok big speedup
    (String.concat "," (List.map row_json (grid @ big_rows)));
  dump_metrics ~exp:"reintegration"
