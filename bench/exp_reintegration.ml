(* E11 — hot state transfer (not in the paper): reintegration cost vs
   number of live connections.

   Topology: one client, a replicated pair, one spare host on a shared
   LAN.  [conns] connections open and exchange one request/reply, then
   stay open.  The secondary is killed; after detection a fresh host is
   reintegrated and every live connection is re-replicated onto it via
   the statex hot state transfer.  The trial reports how many
   connections transferred, how many bytes of sealed snapshot crossed
   the control channel, and the sim-time from [reintegrate] to the
   [Transfers_complete] event.

   The payoff check rides along: after the transfer settles the ORIGINAL
   primary is killed too, so the connections — all established before
   failure #1 — must survive a second failover byte-for-byte on the
   repaired host.  A trial only counts as ok when every connection's
   stream is exact and RST-free through both failovers.

   Everything is seeded and simulated, so the table is byte-identical
   across --jobs 1/2/4. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Stats = Tcpfo_util.Stats
module Fault = Tcpfo_fault.Fault
module Injector = Tcpfo_fault.Injector

let service_port = 7000

type outcome = {
  conns : int;
  transferred : int;
  xfer_bytes : int;  (** sealed snapshot bytes over the control channel *)
  retransmits : int;  (** statex chunk retransmissions *)
  latency_us : float;  (** reintegrate -> Transfers_complete, sim time *)
  ok : bool;  (** every stream exact and RST-free after BOTH failovers *)
}

let one_trial ~conns ~loss ~seed =
  let world = World.create ~seed () in
  note_world world;
  let spec =
    [
      Topo.segment "lan";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.10" ~seg:"lan" "client";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.1" ~seg:"lan" "primary";
      Topo.host ~profile:paper_profile ~addr:"10.0.0.2" ~seg:"lan" "secondary";
      Topo.group ~members:[ "primary"; "secondary" ] "pool";
    ]
  in
  let topo = Topo.build world spec in
  let lan = Topo.segment_of topo "lan" in
  let client = Topo.host_of topo "client" in
  let config = Failover_config.make ~service_ports:[ service_port ] () in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  Replicated.listen repl ~port:service_port ~on_accept:(fun ~role:_ tcb ->
      Tcb.set_on_data tcb (fun d -> ignore (Tcb.send tcb ("R:" ^ d)));
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));
  let service = Replicated.service_addr repl in
  let engine = World.engine world in
  let bufs = Array.init conns (fun _ -> Buffer.create 64) in
  let resets = ref 0 in
  let tcbs = Array.make conns None in
  for i = 0 to conns - 1 do
    ignore
      (Engine.schedule engine ~delay:(i * Time.us 500) (fun () ->
           let c =
             Stack.connect (Host.tcp client) ~remote:(service, service_port)
               ()
           in
           tcbs.(i) <- Some c;
           Tcb.set_on_established c (fun () ->
               ignore (Tcb.send c (Printf.sprintf "req%d" i)));
           Tcb.set_on_data c (fun d -> Buffer.add_string bufs.(i) d);
           Tcb.set_on_reset c (fun () -> incr resets)))
  done;
  World.run world ~for_:(Time.ms 100);
  (* failure #1: the secondary dies and is detected *)
  Replicated.kill_secondary repl;
  World.run world ~for_:(Time.sec 2.0);
  (* repair: fresh host joins, live connections re-replicate onto it *)
  let fresh =
    World.add_host world lan ~name:"repaired" ~addr:"10.0.0.3"
      ~profile:paper_profile ()
  in
  (* warm_arp itself skips the dead secondary *)
  World.warm_arp (fresh :: Topo.hosts topo);
  (* the --loss axis: a loss burst on the LAN covering the transfers,
     which the streaming control channel must retransmit through *)
  if loss > 0.0 then
    ignore
      (Injector.install
         {
           Injector.engine;
           rng = World.fresh_rng world;
           hosts = [];
           nets = [ ("lan", Injector.Medium_net lan) ];
         }
         (Fault.parse_exn
            (Printf.sprintf "after 0us loss lan %.2f for 8ms" loss)));
  let transferred = ref 0 in
  let latency_us = ref nan in
  let t_reint = World.now world in
  Replicated.set_on_event repl (function
    | Replicated.Transfers_complete n ->
      transferred := n;
      latency_us := float_of_int (World.now world - t_reint) /. 1e3
    | _ -> ());
  Replicated.reintegrate repl ~secondary:fresh;
  World.run world ~for_:(Time.sec 1.0);
  let send_all tag =
    Array.iteri
      (fun i c ->
        match c with
        | Some c -> ignore (Tcb.send c tag)
        | None -> ignore i)
      tcbs
  in
  send_all "mid";
  World.run world ~for_:(Time.sec 1.0);
  (* failure #2: the surviving original dies; the repaired host must
     carry every connection onward in the original sequence space *)
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.5);
  send_all "end";
  World.run world ~for_:(Time.sec 2.0);
  let ok = ref (!resets = 0) in
  Array.iteri
    (fun i buf ->
      let want = Printf.sprintf "R:req%dR:midR:end" i in
      if Buffer.contents buf <> want then ok := false)
    bufs;
  let stats = Replicated.transfer_stats repl in
  {
    conns;
    transferred = !transferred;
    xfer_bytes = stats.Tcpfo_statex.Transfer.transfer_bytes;
    retransmits = stats.Tcpfo_statex.Transfer.chunk_retransmits;
    latency_us = !latency_us;
    ok = !ok;
  }

let run_exp ~conn_counts ~loss_rates ~trials =
  print_header
    (Printf.sprintf
       "E11: hot state transfer — reintegration cost vs live connections \
        and control-channel loss (%d trial%s per point, %d job%s)"
       trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  Printf.printf "%-6s %-8s %8s %12s %14s %8s %14s %8s\n" "loss" "conns"
    "moved" "bytes" "bytes/conn" "rtx" "latency[us]" "ok";
  let all_ok = ref true in
  let points =
    List.concat_map
      (fun loss -> List.map (fun conns -> (loss, conns)) conn_counts)
      loss_rates
  in
  let rows =
    List.map
      (fun (loss, conns) ->
        (* the loss-0 seeds predate the --loss axis; a nonzero rate maps
           to its own disjoint seed block so every point is independent
           and replayable *)
        let loss_salt = int_of_float ((loss *. 1000.) +. 0.5) * 4099 in
        let outcomes =
          map_trials trials (fun i ->
              one_trial ~conns ~loss
                ~seed:(11_000 + (100 * conns) + i + loss_salt))
        in
        let med f = Stats.median (List.map f outcomes) in
        let bytes = med (fun o -> float_of_int o.xfer_bytes) in
        let lat = med (fun o -> o.latency_us) in
        let moved = med (fun o -> float_of_int o.transferred) in
        let rtx = med (fun o -> float_of_int o.retransmits) in
        let ok =
          List.for_all (fun o -> o.ok && o.transferred = o.conns) outcomes
        in
        if not ok then all_ok := false;
        Printf.printf "%-6.2f %-8d %8.0f %12.0f %14.1f %8.0f %14.1f %8s\n"
          loss conns moved bytes
          (bytes /. float_of_int conns)
          rtx lat
          (if ok then "yes" else "NO");
        (loss, conns, moved, bytes, rtx, lat, ok))
      points
  in
  Printf.printf
    "%s\n"
    (if !all_ok then
       "every connection survived both failovers byte-exactly"
     else "WARNING: some connections did not survive the second failover");
  (* machine-readable line for BENCH_reintegration.json bookkeeping *)
  let row_json =
    String.concat ","
      (List.map
         (fun (loss, c, moved, bytes, rtx, lat, ok) ->
           Printf.sprintf
             "{\"loss\":%.2f,\"conns\":%d,\"transferred\":%.0f,\
              \"transfer_bytes\":%.0f,\"retransmits\":%.0f,\
              \"latency_us\":%.1f,\"ok\":%b}"
             loss c moved bytes rtx lat ok)
         rows)
  in
  Printf.printf
    "[reintegration-summary] {\"trials\":%d,\"jobs\":%d,\"all_ok\":%b,\
     \"rows\":[%s]}\n%!"
    trials !jobs !all_ok row_json;
  dump_metrics ~exp:"reintegration"
