(* E9 — scale macro-benchmark (not in the paper): hundreds of concurrent
   failover connections through ONE world.

   This is the simulator-throughput benchmark that seeds the perf
   trajectory: it reports how many simulated events the engine retires
   per wall-clock second and how much wall time one simulated second
   costs, under a workload dominated by the hot paths the north star
   cares about — medium fan-out, TCP segmentation, bridge merging.

   Topology: [n_clients] client hosts and one replicated pair on a
   shared 100 Mb/s segment.  [conns] connections open with a small
   stagger, round-robin over clients and service ports; each sends a
   4-byte request and the replicated server answers with [reply_size]
   bytes; the client closes after the full reply.

   The trial is deterministic for a given seed, so events/sec numbers
   are comparable run-to-run; wall-clock varies with the machine, which
   is why BENCH_scale.json records the host's core count alongside. *)

open Harness
module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Stats = Tcpfo_util.Stats

let service_ports = [ 6000; 6001; 6002; 6003; 6004; 6005; 6006; 6007 ]
let n_clients = 4
let request = "GET\n"

type outcome = {
  conns : int;
  completed : int;
  bytes : int;
  events : int;
  sim_ns : int;
  wall_s : float;
}

let one_trial ~conns ~reply_size ~seed =
  let world = World.create ~seed ~engine_backend:!engine_backend () in
  note_world world;
  let spec =
    (Topo.segment "lan"
    :: List.init n_clients (fun i ->
           Topo.host ~profile:paper_profile
             ~addr:(Printf.sprintf "10.0.0.%d" (10 + i))
             ~seg:"lan"
             (Printf.sprintf "client%d" i)))
    @ [
        Topo.host ~profile:paper_profile ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~profile:paper_profile ~addr:"10.0.0.2" ~seg:"lan"
          "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let topo = Topo.build world spec in
  let clients =
    List.init n_clients (fun i ->
        Topo.host_of topo (Printf.sprintf "client%d" i))
  in
  let config =
    Failover_config.make ~service_ports ~bridge_cost:(Time.us 55) ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  let service = Replicated.service_addr repl in
  List.iter
    (fun port ->
      Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
          let got = ref 0 in
          Tcb.set_on_data tcb (fun d ->
              got := !got + String.length d;
              if !got >= String.length request then begin
                got := min_int; (* reply exactly once *)
                let off = ref 0 in
                let rec pump () =
                  if !off < reply_size then begin
                    let want = min 8192 (reply_size - !off) in
                    let n = Tcb.send tcb (String.make want 'd') in
                    off := !off + n;
                    if n < want then Tcb.set_on_drain tcb pump else pump ()
                  end
                in
                pump ()
              end);
          Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)))
    service_ports;
  let engine = World.engine world in
  let completed = ref 0 in
  let received = ref 0 in
  let n_ports = List.length service_ports in
  for i = 0 to conns - 1 do
    let client = List.nth clients (i mod n_clients) in
    let port = List.nth service_ports (i mod n_ports) in
    (* stagger the opens so the handshake burst does not collapse into
       one giant collision storm *)
    ignore
      (Engine.schedule engine ~delay:(i * Time.us 200) (fun () ->
           let c =
             Stack.connect (Host.tcp client) ~remote:(service, port) ()
           in
           let got = ref 0 in
           Tcb.set_on_established c (fun () -> ignore (Tcb.send c request));
           Tcb.set_on_data c (fun d ->
               got := !got + String.length d;
               received := !received + String.length d;
               if !got >= reply_size then begin
                 incr completed;
                 Tcb.close c
               end)))
  done;
  let t0 = Unix.gettimeofday () in
  (* drive in 100 ms slices until every connection completed (cap: 120
     simulated seconds), so idle heartbeat ticks never dilute the rate *)
  let budget = ref 1200 in
  while !completed < conns && !budget > 0 do
    World.run world ~for_:(Time.ms 100);
    decr budget
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    conns;
    completed = !completed;
    bytes = !received;
    events = Engine.processed engine;
    sim_ns = World.now world;
    wall_s;
  }

let events_per_sec o =
  if o.wall_s <= 0.0 then infinity else float_of_int o.events /. o.wall_s

(* wall-clock seconds needed to simulate one second *)
let wall_per_sim_sec o =
  if o.sim_ns <= 0 then nan else o.wall_s /. (float_of_int o.sim_ns /. 1e9)

let run_exp ~conns ~reply_size ~trials =
  print_header
    (Printf.sprintf
       "E9: simulator throughput at scale (%d concurrent failover \
        connections, %d B replies, %d trial%s, %d job%s)"
       conns reply_size trials
       (if trials = 1 then "" else "s")
       !jobs
       (if !jobs = 1 then "" else "s"));
  let wall0 = Unix.gettimeofday () in
  let outcomes =
    map_trials trials (fun i -> one_trial ~conns ~reply_size ~seed:(9000 + i))
  in
  let wall_total = Unix.gettimeofday () -. wall0 in
  Printf.printf "%-6s %10s %6s %12s %10s %10s %14s %12s\n" "trial" "conns"
    "done" "bytes" "sim[ms]" "wall[s]" "events" "events/s";
  List.iteri
    (fun i o ->
      Printf.printf "%-6d %10d %6d %12d %10.1f %10.3f %14d %12.0f\n" i
        o.conns o.completed o.bytes
        (float_of_int o.sim_ns /. 1e6)
        o.wall_s o.events (events_per_sec o))
    outcomes;
  let eps = List.map events_per_sec outcomes in
  let med_eps = Stats.median eps in
  let med_wps = Stats.median (List.map wall_per_sim_sec outcomes) in
  let all_done = List.for_all (fun o -> o.completed = o.conns) outcomes in
  Printf.printf
    "median: %.0f events/s; %.3f wall-s per simulated-s; %s\n" med_eps
    med_wps
    (if all_done then "all connections completed"
     else "WARNING: some connections did not complete");
  (* machine-readable line for BENCH_scale.json bookkeeping *)
  Printf.printf
    "[scale-summary] {\"conns\":%d,\"reply_size\":%d,\"trials\":%d,\
     \"jobs\":%d,\"median_events_per_sec\":%.0f,\
     \"median_wall_s_per_sim_s\":%.4f,\"suite_wall_s\":%.3f,\
     \"all_completed\":%b}\n%!"
    conns reply_size trials !jobs med_eps med_wps wall_total all_done;
  events_line ~exp:"scale"
    (List.fold_left (fun acc o -> acc + o.events) 0 outcomes);
  dump_metrics ~exp:"scale"
