#!/usr/bin/env bash
# Test-count drift gate, used by CI next to `dune runtest`.
#
# The tier-1 suite is one aggregated alcotest runner, so its final
# "N tests run" line is the census of every registered case.  A suite
# that silently stops being linked in (a dune `modules` list edit, a
# forgotten `suite` registration) shrinks N without failing anything —
# this gate turns that silent shrink into a hard CI failure.
#
# EXPECTED is updated deliberately, in the same commit that adds or
# removes test cases (CHANGES.md tracks the running count by hand).
#
# Usage:
#   scripts/check_test_count.sh            # runs the suite itself
#   scripts/check_test_count.sh FILE      # parses an existing runtest log
set -euo pipefail

cd "$(dirname "$0")/.."

EXPECTED=322

if [ $# -ge 1 ]; then
  log=$(cat "$1")
else
  log=$(dune exec test/test_main.exe 2>&1 | tail -20)
fi

count=$(printf '%s\n' "$log" | sed -n 's/.*[^0-9]\([0-9][0-9]*\) tests run.*/\1/p' | tail -1)

if [ -z "$count" ]; then
  echo "test-count: no 'N tests run' line found (did the suite crash?)" >&2
  exit 1
fi

if [ "$count" -ne "$EXPECTED" ]; then
  echo "test-count: FAILED — suite ran $count cases, expected $EXPECTED" >&2
  echo "test-count: if cases were added/removed on purpose, update" >&2
  echo "test-count: EXPECTED in scripts/check_test_count.sh (and CHANGES.md)" >&2
  exit 1
fi

echo "test-count: OK ($count cases)"
