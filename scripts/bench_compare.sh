#!/usr/bin/env bash
# Bench-baseline regression gate, used by the CI bench-smoke job.
#
# Compares a fresh smoke-run summary line (the [<exp>-summary] JSON the
# experiment prints) against the committed BENCH_<exp>.json baseline.
# The quick-size experiments are simulated and seeded, so their
# structural fields (connection counts, byte counts, event totals,
# completion flags) are byte-deterministic on any machine: those are
# gated EXACTLY against the baseline's "smoke" section.  Wall-clock
# derived numbers (events/s, RSS) are never gated here — the full-size
# direction gates (e.g. wheel >= 1.5x heap at 10k) live in the
# baselines' own acceptance notes and are re-checked when the full
# sweeps are re-run.
#
# Dependency-free (bash + grep/sed/awk, like check_style.sh) so it
# gives the same verdict on any machine.  Nonzero exit fails the job.
#
# Usage: scripts/bench_compare.sh <exp> <summary-file> [baseline-file]
#   exp ∈ scale | reintegration | highconn | fleet
set -euo pipefail

cd "$(dirname "$0")/.."

exp=${1:?usage: bench_compare.sh <exp> <summary-file> [baseline-file]}
sum=${2:?usage: bench_compare.sh <exp> <summary-file> [baseline-file]}
baseline=${3:-BENCH_$exp.json}

[ -f "$sum" ] || { echo "bench-compare: summary file $sum missing" >&2; exit 1; }
[ -f "$baseline" ] || { echo "bench-compare: baseline $baseline missing" >&2; exit 1; }

fail=0
complain() {
  echo "bench-compare[$exp]: $1" >&2
  fail=1
}

# First numeric value of "key" in the baseline's "smoke" { ... } block.
smoke_num() {
  sed -n '/"smoke"/,/}/p' "$baseline" \
    | sed -n 's/.*"'"$1"'":[[:space:]]*\([0-9][0-9.]*\).*/\1/p' | head -1
}

# First numeric value of "key" on the first summary line.
sum_num() {
  head -1 "$sum" | grep -o "\"$1\":[0-9][0-9.]*" | head -1 | cut -d: -f2
}

require_flag() { # every summary line must carry e.g. "all_ok":true
  local n_lines n_flagged
  n_lines=$(grep -c . "$sum")
  n_flagged=$(grep -c "\"$1\":true" "$sum" || true)
  if [ "$n_lines" -ne "$n_flagged" ]; then
    complain "expected \"$1\":true on all $n_lines summary lines, found $n_flagged"
  fi
}

check_eq() { # check_eq <what> <got> <want>
  if [ -z "$2" ] || [ -z "$3" ]; then
    complain "$1: missing value (got='$2' want='$3')"
  elif [ "$2" != "$3" ]; then
    complain "$1: got $2, baseline expects $3"
  fi
}

case "$exp" in
  scale)
    require_flag all_completed
    check_eq "smoke conns" "$(sum_num conns)" "$(smoke_num conns)"
    check_eq "smoke reply_size" "$(sum_num reply_size)" "$(smoke_num reply_size)"
    ;;

  reintegration)
    require_flag all_ok
    probe=$(smoke_num probe_conns)
    # rows are fixed-order JSON objects; pull the loss-0 probe-size row
    # for each snapshot form (burst scheduling = the legacy path)
    row_bytes() { # row_bytes <mode>
      grep -o "\"loss\":0.00,\"conns\":$probe,\"mode\":\"$1\",\"pacing\":false,\"transferred\":[0-9]*,\"transfer_bytes\":[0-9]*" "$sum" \
        | head -1 | sed 's/.*"transfer_bytes"://'
    }
    fullb=$(row_bytes full)
    deltab=$(row_bytes delta)
    check_eq "full snapshot bytes @${probe} conns" "$fullb" "$(smoke_num full_transfer_bytes)"
    check_eq "delta snapshot bytes @${probe} conns" "$deltab" "$(smoke_num delta_transfer_bytes)"
    floor=$(smoke_num min_delta_reduction)
    if [ -n "$fullb" ] && [ -n "$deltab" ] && [ -n "$floor" ]; then
      awk -v f="$fullb" -v d="$deltab" -v m="$floor" \
        'BEGIN { exit !(d > 0 && f / d >= m) }' \
        || complain "delta reduction $fullb/$deltab below the ${floor}x floor"
    fi
    ;;

  highconn)
    require_flag all_completed
    # engine events per trial are sim-deterministic and must be equal
    # across scheduling backends AND equal to the committed baseline
    for conns in $(sed -n '/"smoke"/,/}/p' "$baseline" \
                     | sed -n 's/.*"events_\([0-9]*\)".*/\1/p'); do
      want=$(smoke_num "events_$conns")
      got_all=$(grep -o "\"conns\":$conns,[^}]*\"events\":[0-9]*" "$sum" \
                  | sed 's/.*"events"://' | sort -u)
      n_distinct=$(printf '%s\n' "$got_all" | grep -c . || true)
      if [ "$n_distinct" -ne 1 ]; then
        complain "events @$conns conns differ across engine lines: $(echo "$got_all" | tr '\n' ' ')"
      fi
      check_eq "events @$conns conns" "$(printf '%s\n' "$got_all" | head -1)" "$want"
    done
    ;;

  fleet)
    require_flag all_ok
    for key in completed resets refused unmatched isolation_drops events; do
      check_eq "smoke $key" "$(sum_num $key)" "$(smoke_num $key)"
    done
    ;;

  *)
    echo "bench-compare: unknown experiment '$exp'" >&2
    exit 1
    ;;
esac

if [ "$fail" -ne 0 ]; then
  echo "bench-compare[$exp]: FAILED against $baseline" >&2
  exit 1
fi
echo "bench-compare[$exp]: OK against $baseline"
