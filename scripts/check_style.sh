#!/usr/bin/env bash
# Style gate for OCaml sources and build files, used by the CI lint job
# alongside `dune build @fmt` (which covers dune-file formatting).
# Deterministic and dependency-free so it gives the same verdict on any
# machine.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
complain() {
  echo "style: $1: $2" >&2
  fail=1
}

# tracked sources only — _build and vendored artifacts are not ours
files=$(git ls-files '*.ml' '*.mli' 'dune' '*/dune' 'dune-project')

for f in $files; do
  [ -f "$f" ] || continue

  if LC_ALL=C grep -q -P '\t' "$f"; then
    complain "$f" "tab character (sources are space-indented)"
  fi

  if LC_ALL=C grep -q -E ' +$' "$f"; then
    complain "$f" "trailing whitespace"
  fi

  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | wc -l)" -eq 0 ]; then
    complain "$f" "missing final newline"
  fi

  if LC_ALL=C grep -q $'\r' "$f"; then
    complain "$f" "carriage return (CRLF line ending)"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "style: FAILED" >&2
  exit 1
fi
echo "style: OK ($(echo "$files" | wc -l) files)"
