(* Quickstart: a replicated echo server that survives the death of its
   primary, in ~60 lines.

     dune exec examples/quickstart.exe

   Builds a three-host LAN (client, primary, secondary), installs the TCP
   failover bridges, connects a client, exchanges a message, kills the
   primary, and exchanges another message over the SAME connection. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Echo = Tcpfo_apps.Echo

let log world fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "[%8.3f ms] %s\n%!" (Time.to_ms (World.now world)) s)
    fmt

let () =
  (* 1. the topology as data: a LAN, three hosts, and the replica pool *)
  let world = World.create ~seed:7 () in
  let topo =
    Topo.build world
      [
        Topo.segment "lan";
        Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client";
        Topo.host ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~addr:"10.0.0.2" ~seg:"lan" "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let client = Topo.host_of topo "client" in

  (* 2. replicate: bridges, heartbeats, failover procedures *)
  let repl =
    Replicated.create_pool
      ~replicas:(Topo.group_of topo "pool")
      ~config:Failover_config.default ()
  in
  Replicated.set_on_event repl (fun e ->
      log world "EVENT: %s" (Replicated.event_to_string e));

  (* 3. the replicated application: a plain echo server on port 7 —
        it has no idea replication exists *)
  Echo.serve_replicated repl ~port:7;

  (* 4. an ordinary client connects to the service address *)
  let conn =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 7)
      ()
  in
  Tcb.set_on_data conn (fun reply -> log world "client received: %S" reply);
  Tcb.set_on_established conn (fun () ->
      log world "connection established";
      ignore (Tcb.send conn "hello before failover"));

  World.run world ~for_:(Time.ms 100);

  (* 5. crash the primary... *)
  log world "killing the primary";
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.0);

  (* 6. ...and keep using the very same connection *)
  ignore (Tcb.send conn "hello after failover");
  World.run world ~for_:(Time.sec 2.0);

  log world "connection state: %s" (Tcb.state_to_string (Tcb.state conn));
  print_endline "quickstart: done"
