(* The paper's real-world workload (§9, Figure 6): an FTP server —
   replicated with TCP failover — serving a client across a WAN, with the
   primary dying in the middle of a large download.

   Exercises both connection directions through the bridge: the control
   connection is client-initiated; every data connection is
   server-initiated from port 20 (§7.2).

     dune exec examples/ftp_wan.exe *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Link = Tcpfo_net.Link
module Ipaddr = Tcpfo_packet.Ipaddr
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Ftp = Tcpfo_apps.Ftp
module Cross_traffic = Tcpfo_apps.Cross_traffic

let () =
  let world = World.create ~seed:99 () in
  (* topology as data: LAN + WAN link + router + replica pool, in one
     declarative spec *)
  let topo =
    Topo.build world
      [
        Topo.segment "lan";
        Topo.link "wan"
          ~config:
            {
              Link.bandwidth_bps = 2_000_000;
              delay = Time.ms 15;
              jitter = Time.ms 3;
              loss_prob = 0.002;
              dup_prob = 0.0;
              reorder_prob = 0.0;
              queue_capacity = 40;
            };
        Topo.router ~seg:"lan" ~lan_addr:"10.0.0.254" ~link:"wan"
          ~wan_addr:"192.168.0.1" "router";
        Topo.wan_host ~addr:"192.168.0.2" ~link:"wan" "client";
        Topo.host ~addr:"10.0.0.1" ~seg:"lan" ~gateway:"10.0.0.254" "primary";
        Topo.host ~addr:"10.0.0.2" ~seg:"lan" ~gateway:"10.0.0.254"
          "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let wan = Topo.link_of topo "wan" in
  let client = Topo.host_of topo "client" in
  let primary = Topo.host_of topo "primary" in
  let secondary = Topo.host_of topo "secondary" in

  let config = Failover_config.make ~service_ports:[ 21; 20 ] () in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  let service = Replicated.service_addr repl in

  (* identical file stores on both replicas (active replication) *)
  let big = String.init 600_000 (fun i -> Char.chr (65 + (i mod 26))) in
  let mk_files () =
    Ftp.Server.in_memory [ ("big.dat", big); ("motd.txt", "welcome!") ]
  in
  Ftp.Server.serve (Host.tcp primary) ~bind:service ~files:(mk_files ()) ();
  Ftp.Server.serve (Host.tcp secondary) ~bind:service ~files:(mk_files ()) ();

  (* some competing WAN traffic, as in the paper *)
  let _noise =
    Cross_traffic.start (World.engine world) wan
      ~rng:(World.fresh_rng world) ~load:0.2 ~link_bandwidth_bps:2_000_000 ()
  in

  let log fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "[%8.1f ms] %s\n%!" (Time.to_ms (World.now world)) s)
      fmt
  in
  Replicated.set_on_event repl (fun e ->
      log "--- %s ---" (Replicated.event_to_string e));

  let t0 = ref Time.zero in
  let _client_ftp =
    Ftp.Client.connect (Host.tcp client) ~server:(service, 21)
      ~local_addr:(Host.addr client)
      ~on_ready:(fun t ->
        log "logged in; fetching motd.txt";
        Ftp.Client.get t "motd.txt"
          ~on_done:(fun motd ->
            log "motd: %s"
              (match motd with Some m -> m | None -> "<error>");
            log "starting download of big.dat (600 KB)";
            t0 := World.now world;
            Ftp.Client.get t "big.dat"
              ~on_done:(fun content ->
                let dur = World.now world - !t0 in
                let ok = content = Some big in
                log "big.dat downloaded: %s in %.1f ms (%.1f KB/s)"
                  (if ok then "byte-exact" else "CORRUPTED")
                  (Time.to_ms dur)
                  (600_000.0 /. 1024.0 /. Time.to_sec dur);
                Ftp.Client.quit t)
              ())
          ())
      ()
  in
  (* kill the primary one second into the big download *)
  ignore
    (Tcpfo_sim.Engine.schedule (World.engine world) ~delay:(Time.sec 1.2)
       (fun () ->
         log "!!! primary crashes mid-download !!!";
         Replicated.kill_primary repl));
  World.run world ~for_:(Time.sec 60.0);
  print_endline "ftp_wan: done"
