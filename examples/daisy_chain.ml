(* Daisy-chained replication — the paper's §1 future work, implemented:
   THREE replicas survive TWO successive crashes while a client holds one
   TCP connection open through all of it.

     dune exec examples/daisy_chain.exe *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Chain = Tcpfo_core.Chain
module Failover_config = Tcpfo_core.Failover_config

let () =
  let world = World.create ~seed:2003 () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"client" ~addr:"10.0.0.10" () in
  let replicas =
    List.init 3 (fun i ->
        World.add_host world lan
          ~name:(Printf.sprintf "replica%d" i)
          ~addr:(Printf.sprintf "10.0.0.%d" (i + 1))
          ())
  in
  World.warm_arp (client :: replicas);
  let chain =
    Chain.create ~replicas ~config:Failover_config.default ()
  in
  let log fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "[%8.1f ms] %s\n%!" (Time.to_ms (World.now world)) s)
      fmt
  in
  Chain.set_on_event chain (fun e ->
      log "--- %s ---"
        (match e with
        | Chain.Death_detected i -> Printf.sprintf "replica %d declared dead" i
        | Promoted i -> Printf.sprintf "replica %d promoted to head" i
        | Retargeted (i, j) ->
          Printf.sprintf "replica %d now diverts to replica %d" i j
        | Degraded i ->
          Printf.sprintf "replica %d lost its tail, degrades per \xc2\xa76" i
        | Rejoined i -> Printf.sprintf "replica %d rejoined at the tail" i
        | Transfers_complete n ->
          Printf.sprintf "%d connections re-replicated onto the tail" n
        | Isolated { local_port; remote = _, rp } ->
          Printf.sprintf "connection :%d <-> :%d pinned solo" local_port rp));

  (* a counter service: proves all replicas advance through the same
     state, whoever happens to be serving *)
  Chain.listen chain ~port:80 ~on_accept:(fun ~replica tcb ->
      let count = ref 0 in
      Tcb.set_on_data tcb (fun d ->
          String.iter
            (fun ch ->
              if ch = '\n' then begin
                incr count;
                ignore
                  (Tcb.send tcb (Printf.sprintf "count=%d\n" !count))
              end)
            d);
      ignore replica);

  let conn =
    Stack.connect (Host.tcp client) ~remote:(Chain.service_addr chain, 80) ()
  in
  Tcb.set_on_data conn (fun d ->
      String.split_on_char '\n' d
      |> List.iter (fun l -> if l <> "" then log "client got: %s" l));
  let ping () = ignore (Tcb.send conn "ping\n") in
  Tcb.set_on_established conn (fun () ->
      log "connected to the 3-replica chain";
      ping ());

  World.run world ~for_:(Time.ms 100);
  log "### crash 1: killing the head (replica 0) ###";
  Chain.kill chain 0;
  World.run world ~for_:(Time.sec 2.0);
  ping ();
  World.run world ~for_:(Time.sec 1.0);

  log "### crash 2: killing the new head (replica 1) ###";
  Chain.kill chain 1;
  World.run world ~for_:(Time.sec 2.0);
  ping ();
  World.run world ~for_:(Time.sec 1.0);

  log "survivors: %s"
    (String.concat ","
       (List.map string_of_int (Chain.alive chain)));
  log "connection state: %s" (Tcb.state_to_string (Tcb.state conn));
  print_endline "daisy_chain: done"
