(* Fleet: three replicated pools behind one dispatcher, surviving a
   kill/repair cycle on one shard while traffic drains to its siblings.

     dune exec examples/fleet.exe

   Builds a front LAN (clients + dispatcher) and a back LAN (three
   two-replica shard pools), connects clients to the single fleet
   service address, kills one shard's primary mid-stream, watches the
   shard's weight decay (new connections drain to the sibling shards
   while the established one stays pinned and fails over inside its
   pool), repairs the shard, and watches the weight ramp back. *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Dispatch = Tcpfo_dispatch.Dispatch
module Echo = Tcpfo_apps.Echo

let log world fmt =
  Printf.ksprintf
    (fun s ->
      Printf.printf "[%8.3f ms] %s\n%!" (Time.to_ms (World.now world)) s)
    fmt

let () =
  let world = World.create ~seed:11 () in
  let decls =
    [
      Topo.segment "front";
      Topo.segment "back";
      Topo.host ~addr:"10.1.0.10" ~seg:"front" "client";
      Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
    ]
    @ List.concat_map
        (fun i ->
          [
            Topo.host ~gateway:"10.0.0.254"
              ~addr:(Printf.sprintf "10.0.0.%d" (1 + (2 * i)))
              ~seg:"back"
              (Printf.sprintf "s%da" i);
            Topo.host ~gateway:"10.0.0.254"
              ~addr:(Printf.sprintf "10.0.0.%d" (2 + (2 * i)))
              ~seg:"back"
              (Printf.sprintf "s%db" i);
            Topo.group
              ~members:[ Printf.sprintf "s%da" i; Printf.sprintf "s%db" i ]
              (Printf.sprintf "shard%d" i);
          ])
        [ 0; 1; 2 ]
    @ [
        Topo.dispatch ~service:"fleet" ~back:"10.0.0.254"
          ~shards:[ "shard0"; "shard1"; "shard2" ] "disp";
      ]
  in
  let topo = Topo.build world decls in
  let client = Topo.host_of topo "client" in

  (* one Replicated pool per shard, the dispatcher in front of them *)
  let disp, pools =
    Dispatch.of_topo topo ~name:"disp" ~config:Failover_config.default ()
  in
  List.iter (fun (_, pool) -> Echo.serve_replicated pool ~port:7) pools;

  let weights () =
    String.concat " "
      (List.map
         (fun (name, _) -> Printf.sprintf "%s=%d" name (Dispatch.weight disp name))
         pools)
  in
  log world "weights: %s" (weights ());

  (* a client connection through the dispatcher — it only ever sees the
     fleet address *)
  let svc = Dispatch.service disp in
  let conn = Stack.connect (Host.tcp client) ~remote:(svc, 7) () in
  Tcb.set_on_data conn (fun reply -> log world "client received: %S" reply);
  Tcb.set_on_established conn (fun () ->
      ignore (Tcb.send conn "hello fleet"));
  World.run world ~for_:(Time.ms 50);

  let victim_name =
    match
      Dispatch.pinned_shard disp ~client:(Host.addr client, snd (Tcb.local_endpoint conn))
    with
    | Some s -> s
    | None -> "shard0"
  in
  let victim = List.assoc victim_name pools in
  log world "connection pinned to %s — killing its primary" victim_name;
  Replicated.set_on_event victim (fun e ->
      log world "EVENT[%s]: %s" victim_name (Replicated.event_to_string e));
  Replicated.kill_primary victim;
  World.run world ~for_:(Time.ms 60);
  log world "weights: %s (killed shard drains)" (weights ());

  (* the pinned connection failed over inside its pool — same wire
     bytes, same fleet address *)
  ignore (Tcb.send conn "hello after failover");
  World.run world ~for_:(Time.ms 50);

  (* repair: a fresh host joins the back LAN and the shard reintegrates *)
  let fresh =
    World.add_host world (Topo.segment_of topo "back") ~name:"repair"
      ~addr:"10.0.0.100" ()
  in
  Host.set_default_via_lan fresh ~gateway:(Tcpfo_packet.Ipaddr.of_string "10.0.0.254");
  World.warm_arp (fresh :: Topo.group_of topo victim_name);
  Topo.warm_dispatch_arp topo "disp" [ fresh ];
  Dispatch.arm_probe_responder fresh;
  Replicated.reintegrate victim ~secondary:fresh;
  World.run world ~for_:(Time.ms 100);
  log world "weights: %s (repaired shard ramped back)" (weights ());

  log world "connection state: %s" (Tcb.state_to_string (Tcb.state conn));
  print_endline "fleet: done"
