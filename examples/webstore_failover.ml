(* The paper's motivating example (§1): an on-line store replicated for
   fault tolerance.  A customer browses the inventory, starts buying, the
   primary server dies mid-session, and the purchase continues on the very
   same TCP connection — the customer never notices.

     dune exec examples/webstore_failover.exe *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Store = Tcpfo_apps.Store
module Lineproto = Tcpfo_apps.Lineproto

let inventory =
  [ ("espresso-machine", 249, 3); ("grinder", 89, 10); ("kettle", 35, 2) ]

let () =
  let world = World.create ~seed:42 () in
  let topo =
    Topo.build world
      [
        Topo.segment "lan";
        Topo.host ~addr:"10.0.0.10" ~seg:"lan" "customer";
        Topo.host ~addr:"10.0.0.1" ~seg:"lan" "primary";
        Topo.host ~addr:"10.0.0.2" ~seg:"lan" "secondary";
        Topo.group ~members:[ "primary"; "secondary" ] "pool";
      ]
  in
  let customer = Topo.host_of topo "customer" in
  let repl =
    Replicated.create_pool
      ~replicas:(Topo.group_of topo "pool")
      ~config:Failover_config.default ()
  in
  Store.serve_replicated ~inventory repl ~port:8080;

  let log fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "[%8.3f ms] %s\n%!" (Time.to_ms (World.now world)) s)
      fmt
  in
  Replicated.set_on_event repl (fun e ->
      log "--- %s ---" (Replicated.event_to_string e));

  let conn =
    Stack.connect (Host.tcp customer)
      ~remote:(Replicated.service_addr repl, 8080)
      ()
  in
  let send_cmd cmd =
    log "customer> %s" cmd;
    ignore (Tcb.send conn (Lineproto.line cmd))
  in
  let lines =
    Lineproto.create ~on_line:(fun l -> log "   store> %s" l)
  in
  Tcb.set_on_data conn (fun d -> Lineproto.feed lines d);
  Tcb.set_on_established conn (fun () -> send_cmd "LIST");

  World.run world ~for_:(Time.ms 50);
  send_cmd "BUY grinder 2";
  World.run world ~for_:(Time.ms 50);

  log "!!! pulling the plug on the primary !!!";
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.ms 500);

  (* same connection, same session, served by the survivor *)
  send_cmd "BUY espresso-machine 1";
  World.run world ~for_:(Time.ms 200);
  send_cmd "LIST";
  World.run world ~for_:(Time.ms 200);
  send_cmd "QUIT";
  World.run world ~for_:(Time.sec 1.0);
  log "session closed; connection state: %s"
    (Tcb.state_to_string (Tcb.state conn));
  print_endline "webstore_failover: done"
