(* Server-initiated connections (paper §7.2): the replicated application
   acts as a TCP *client* of an unreplicated back-end server — e.g. a
   replicated Web tier talking to a database.  Both replicas open the
   connection; the back end sees exactly one; replies are snooped by the
   secondary; after a failover the survivor keeps the back-end session.

     dune exec examples/backend_client.exe *)

module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Failover_config = Tcpfo_core.Failover_config
module Lineproto = Tcpfo_apps.Lineproto

let () =
  let world = World.create ~seed:123 () in
  let lan = World.make_lan world () in
  let primary = World.add_host world lan ~name:"primary" ~addr:"10.0.0.1" () in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2" ()
  in
  let database = World.add_host world lan ~name:"database" ~addr:"10.0.0.3" () in
  World.warm_arp [ primary; secondary; database ];
  let repl =
    Replicated.create ~primary ~secondary ~config:Failover_config.default ()
  in

  let log fmt =
    Printf.ksprintf
      (fun s ->
        Printf.printf "[%8.3f ms] %s\n%!" (Time.to_ms (World.now world)) s)
      fmt
  in

  (* the unreplicated database: answers "GET k" with "VAL k=..." *)
  Stack.listen (Host.tcp database) ~port:5432 ~on_accept:(fun tcb ->
      log "database: accepted a connection";
      let lines =
        Lineproto.create ~on_line:(fun l ->
            log "database: query %S" l;
            ignore (Tcb.send tcb (Lineproto.line ("VAL " ^ l ^ "=42"))))
      in
      Tcb.set_on_data tcb (fun d -> Lineproto.feed lines d);
      Tcb.set_on_eof tcb (fun () -> Tcb.close tcb));

  (* the replicated app opens ONE logical connection to the database:
     both replicas connect; the bridge merges them (§7.2) *)
  let conns = Hashtbl.create 2 in
  Replicated.connect_backend repl
    ~remote:(Host.addr database, 5432)
    ~setup:(fun ~role tcb ->
      Hashtbl.replace conns role tcb;
      let name =
        match role with `Primary -> "primary " | `Secondary -> "secondary"
      in
      let lines =
        Lineproto.create ~on_line:(fun l -> log "%s replica got: %S" name l)
      in
      Tcb.set_on_data tcb (fun d -> Lineproto.feed lines d);
      Tcb.set_on_established tcb (fun () ->
          log "%s replica: backend session established" name))
    ();

  World.run world ~for_:(Time.ms 50);
  (* both replicas issue the same deterministic query *)
  Hashtbl.iter
    (fun _ tcb -> ignore (Tcb.send tcb (Lineproto.line "GET stock.grinder")))
    conns;
  World.run world ~for_:(Time.ms 100);

  log "killing the primary; the survivor keeps the database session";
  Replicated.kill_primary repl;
  World.run world ~for_:(Time.sec 2.0);

  (match Hashtbl.find_opt conns `Secondary with
  | Some tcb -> ignore (Tcb.send tcb (Lineproto.line "GET stock.kettle"))
  | None -> ());
  World.run world ~for_:(Time.sec 2.0);
  print_endline "backend_client: done"
