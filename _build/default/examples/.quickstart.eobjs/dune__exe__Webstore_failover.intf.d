examples/webstore_failover.mli:
