examples/quickstart.mli:
