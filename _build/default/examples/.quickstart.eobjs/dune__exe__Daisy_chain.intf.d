examples/daisy_chain.mli:
