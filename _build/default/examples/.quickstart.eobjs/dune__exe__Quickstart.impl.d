examples/quickstart.ml: Printf Tcpfo_apps Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp
