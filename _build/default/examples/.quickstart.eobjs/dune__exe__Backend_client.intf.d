examples/backend_client.mli:
