examples/ftp_wan.mli:
