examples/ftp_wan.ml: Char Printf String Tcpfo_apps Tcpfo_core Tcpfo_host Tcpfo_net Tcpfo_packet Tcpfo_sim
