examples/backend_client.ml: Hashtbl Printf Tcpfo_apps Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp
