examples/daisy_chain.ml: List Printf String Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp
