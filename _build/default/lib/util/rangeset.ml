(* Sorted list of disjoint [lo, hi) ranges; modular order anchored by the
   usual TCP assumption that all live ranges span < 2^31. *)

type t = { mutable ranges : (Seq32.t * Seq32.t) list }

let create () = { ranges = [] }

let add t ~lo ~hi =
  if Seq32.lt lo hi then begin
    let rec insert = function
      | [] -> [ (lo, hi) ]
      | ((rlo, rhi) as r) :: rest ->
        if Seq32.lt hi rlo then (lo, hi) :: r :: rest
        else if Seq32.gt lo rhi then r :: insert rest
        else
          (* overlap or adjacency: merge and keep folding *)
          let merged_lo = Seq32.min lo rlo and merged_hi = Seq32.max hi rhi in
          let rec fold lo hi = function
            | ((nlo, nhi) as n) :: rest' when Seq32.le nlo hi ->
              ignore n;
              fold lo (Seq32.max hi nhi) rest'
            | rest' -> (lo, hi) :: rest'
          in
          fold merged_lo merged_hi rest
    in
    t.ranges <- insert t.ranges
  end

let covering_end t s =
  List.find_map
    (fun (lo, hi) -> if Seq32.ge s lo && Seq32.lt s hi then Some hi else None)
    t.ranges

let clear_below t floor =
  t.ranges <-
    List.filter_map
      (fun (lo, hi) ->
        if Seq32.le hi floor then None
        else if Seq32.lt lo floor then Some (floor, hi)
        else Some (lo, hi))
      t.ranges

let clear t = t.ranges <- []
let is_empty t = t.ranges = []
let ranges t = t.ranges
