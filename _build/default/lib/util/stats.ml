type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let n = List.length sorted in
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
    in
    let rank = max 0 (min (n - 1) rank) in
    List.nth sorted rank

let median xs = percentile 50.0 xs

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs)
    in
    {
      count = List.length xs;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      p25 = percentile 25.0 xs;
      median = median xs;
      p75 = percentile 75.0 xs;
      p95 = percentile 95.0 xs;
      max = List.fold_left max neg_infinity xs;
    }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f" s.count
    s.mean s.stddev s.min s.median s.p95 s.max
