(** 32-bit wrap-around TCP sequence-number arithmetic (RFC 793 / RFC 1982).

    TCP sequence numbers live in the ring [0, 2^32).  All comparisons are
    modular: [lt a b] means that [a] precedes [b] on the ring, assuming the
    two values are within 2^31 of each other (which TCP guarantees for any
    live connection window). *)

type t
(** A sequence number.  Always in the range [0, 2^32). *)

val zero : t

val of_int : int -> t
(** [of_int n] is [n land 0xFFFF_FFFF].  Total: any int is accepted and
    reduced mod 2^32. *)

val to_int : t -> int
(** [to_int s] is the representative in [0, 2^32). *)

val add : t -> int -> t
(** [add s n] advances [s] by [n] (mod 2^32); [n] may be negative. *)

val diff : t -> t -> int
(** [diff a b] is the signed distance [a - b] interpreted in
    (-2^31, 2^31].  [diff (add b n) b = n] for |n| < 2^31. *)

val succ : t -> t

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val max : t -> t -> t
(** Later of the two on the ring. *)

val min : t -> t -> t
(** Earlier of the two on the ring. *)

val between : low:t -> high:t -> t -> bool
(** [between ~low ~high s] is [le low s && lt s high], i.e. membership in
    the half-open window [low, high). *)

val equal : t -> t -> bool
val compare_near : t -> t -> int
(** Modular comparison: negative if the first precedes the second. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
