type t = int

let mask = 0xFFFF_FFFF
let half = 0x8000_0000

let zero = 0
let of_int n = n land mask
let to_int s = s

let add s n = (s + n) land mask
let succ s = add s 1

(* Signed modular distance in (-2^31, 2^31]. *)
let diff a b =
  let d = (a - b) land mask in
  if d >= half then d - (mask + 1) else d

let compare_near a b = compare (diff a b) 0
let lt a b = diff a b < 0
let le a b = diff a b <= 0
let gt a b = diff a b > 0
let ge a b = diff a b >= 0
let max a b = if ge a b then a else b
let min a b = if le a b then a else b
let equal (a : t) (b : t) = a = b

let between ~low ~high s = le low s && lt s high

let pp fmt s = Format.fprintf fmt "%u" s
let to_string s = string_of_int s
