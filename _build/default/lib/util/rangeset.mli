(** Set of disjoint half-open sequence-number ranges [lo, hi) under
    mod-2^32 ordering — the SACK scoreboard (RFC 2018): the sender records
    which ranges the receiver has acknowledged selectively and skips them
    when retransmitting. *)

type t

val create : unit -> t

val add : t -> lo:Seq32.t -> hi:Seq32.t -> unit
(** Insert a range; overlapping/adjacent ranges merge.  No-op when
    [lo >= hi]. *)

val covering_end : t -> Seq32.t -> Seq32.t option
(** If the given sequence number lies inside a stored range, the end of
    that range — the retransmission skip target. *)

val clear_below : t -> Seq32.t -> unit
(** Discard everything below the cumulative acknowledgment. *)

val clear : t -> unit
val is_empty : t -> bool
val ranges : t -> (Seq32.t * Seq32.t) list
(** Sorted, for diagnostics and tests. *)
