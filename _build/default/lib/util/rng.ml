type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (int64 t) in
  { state = Int64.of_int seed }

let bits32 t = Int64.to_int (Int64.shift_right_logical (int64 t) 32)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
