type t = {
  capacity : int;
  mutable chunks : string list; (* in order; head is oldest *)
  mutable tail_rev : string list; (* newest first; amortizes appends *)
  mutable start : int; (* absolute offset of first held byte *)
  mutable len : int;
  mutable head_skip : int; (* bytes of the first chunk already released *)
}

let create ~capacity =
  { capacity; chunks = []; tail_rev = []; start = 0; len = 0; head_skip = 0 }

let capacity t = t.capacity
let length t = t.len
let free t = t.capacity - t.len
let start_offset t = t.start
let end_offset t = t.start + t.len
let is_empty t = t.len = 0

let push t s =
  let n = min (String.length s) (free t) in
  if n > 0 then begin
    let s = if n = String.length s then s else String.sub s 0 n in
    t.tail_rev <- s :: t.tail_rev;
    t.len <- t.len + n
  end;
  n

let normalize t =
  if t.tail_rev <> [] then begin
    t.chunks <- t.chunks @ List.rev t.tail_rev;
    t.tail_rev <- []
  end

let read t ~pos ~len =
  assert (pos >= t.start);
  normalize t;
  let avail = t.start + t.len - pos in
  let len = min len (max 0 avail) in
  if len = 0 then ""
  else begin
    let b = Bytes.create len in
    (* walk the chunks to the position *)
    let rec go chunks skip pos_off written =
      if written >= len then ()
      else
        match chunks with
        | [] -> assert false
        | c :: rest ->
          let clen = String.length c - skip in
          if pos_off >= clen then go rest 0 (pos_off - clen) written
          else begin
            let take = min (clen - pos_off) (len - written) in
            Bytes.blit_string c (skip + pos_off) b written take;
            go rest 0 0 (written + take)
          end
    in
    go t.chunks t.head_skip (pos - t.start) 0;
    Bytes.unsafe_to_string b
  end

let release_to t ~pos =
  if pos > t.start then begin
    normalize t;
    let drop = min (pos - t.start) t.len in
    let rec go chunks skip remaining =
      if remaining = 0 then (chunks, skip)
      else
        match chunks with
        | [] -> ([], 0)
        | c :: rest ->
          let clen = String.length c - skip in
          if remaining >= clen then go rest 0 (remaining - clen)
          else (chunks, skip + remaining)
    in
    let chunks, skip = go t.chunks t.head_skip drop in
    t.chunks <- chunks;
    t.head_skip <- skip;
    t.start <- t.start + drop;
    t.len <- t.len - drop
  end
