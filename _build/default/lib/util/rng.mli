(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulator (initial sequence numbers,
    link loss, jitter, workload generators) draws from an [Rng.t] derived
    from a single experiment seed, so a run is reproducible bit-for-bit. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from (and advancing) [t]. *)

val int64 : t -> int64
val bits32 : t -> int
(** Uniform in [0, 2^32). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)
