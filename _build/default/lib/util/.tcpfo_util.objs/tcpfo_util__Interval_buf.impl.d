lib/util/interval_buf.ml: Format List Seq32 String
