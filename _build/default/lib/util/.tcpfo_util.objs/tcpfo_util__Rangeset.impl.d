lib/util/rangeset.ml: List Seq32
