lib/util/rangeset.mli: Seq32
