lib/util/seq32.mli: Format
