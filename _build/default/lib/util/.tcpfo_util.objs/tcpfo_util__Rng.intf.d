lib/util/rng.mli:
