lib/util/seq32.ml: Format
