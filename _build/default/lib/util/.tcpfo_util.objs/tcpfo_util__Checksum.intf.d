lib/util/checksum.mli:
