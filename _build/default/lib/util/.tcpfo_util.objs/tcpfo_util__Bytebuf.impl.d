lib/util/bytebuf.ml: Bytes List String
