lib/util/interval_buf.mli: Format Seq32
