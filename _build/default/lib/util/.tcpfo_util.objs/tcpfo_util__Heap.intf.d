lib/util/heap.mli:
