lib/util/bytebuf.mli:
