(** Small descriptive-statistics helpers for the measurement harness
    (the paper reports medians and maxima; §9). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  p95 : float;
  max : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val median : float list -> float
val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank on the sorted
    sample. *)

val mean : float list -> float

val pp_summary : Format.formatter -> summary -> unit
