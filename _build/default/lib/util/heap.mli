(** Array-based binary min-heap with integer priorities and a stable
    tiebreaker, used as the simulator's event queue.  Entries with equal
    priority pop in insertion order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum (priority, value), or [None] if empty. *)

val peek_prio : 'a t -> int option
(** Priority of the minimum entry without removing it. *)
