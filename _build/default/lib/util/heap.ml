type 'a entry = { prio : int; tie : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_tie : int;
}

let create () = { arr = [||]; size = 0; next_tie = 0 }
let length t = t.size
let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.tie < b.tie)

let grow t =
  let cap = max 16 (2 * Array.length t.arr) in
  let dummy = t.arr.(0) in
  let arr = Array.make cap dummy in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let push t ~prio value =
  let e = { prio; tie = t.next_tie; value } in
  t.next_tie <- t.next_tie + 1;
  if t.size = Array.length t.arr then
    if t.size = 0 then t.arr <- Array.make 16 e else grow t;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.arr.(!i) t.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.arr.(p) in
    t.arr.(p) <- t.arr.(!i);
    t.arr.(!i) <- tmp;
    i := p
  done

let peek_prio t = if t.size = 0 then None else Some t.arr.(0).prio

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.size && less t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.arr.(!smallest) in
          t.arr.(!smallest) <- t.arr.(!i);
          t.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.prio, top.value)
  end
