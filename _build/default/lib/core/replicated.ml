module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ipaddr = Tcpfo_packet.Ipaddr

type event =
  | Secondary_failure_detected
  | Primary_failure_detected
  | Takeover_complete
  | Reintegrated

type t = {
  primary : Host.t;
  mutable secondary : Host.t;
  config : Failover_config.t;
  registry : Failover_config.registry;
  pbridge : Primary_bridge.t;
  mutable sbridge : Secondary_bridge.t;
  mutable hb_on_primary : Heartbeat.t option;
  mutable hb_on_secondary : Heartbeat.t option;
  mutable services : (int * (role:[ `Primary | `Secondary ] -> Tcb.t -> unit)) list;
  mutable status : [ `Normal | `Primary_failed | `Secondary_failed ];
  mutable on_event : event -> unit;
}

(* watch the secondary from the primary; on failure run §6 *)
let watch_secondary t =
  Heartbeat.start t.primary ~peer:(Host.addr t.secondary) ~role:`Primary
    ~config:t.config ~on_peer_failure:(fun () ->
      if t.status = `Normal then begin
        t.status <- `Secondary_failed;
        Primary_bridge.secondary_failed t.pbridge;
        t.on_event Secondary_failure_detected
      end)

let watch_primary t =
  Heartbeat.start t.secondary ~peer:(Host.addr t.primary) ~role:`Secondary
    ~config:t.config ~on_peer_failure:(fun () ->
      if t.status = `Normal then begin
        t.status <- `Primary_failed;
        t.on_event Primary_failure_detected;
        Secondary_bridge.begin_takeover t.sbridge ~on_complete:(fun () ->
            t.on_event Takeover_complete)
      end)

let create ~primary ~secondary ~config () =
  let service_addr = Host.addr primary in
  let secondary_addr = Host.addr secondary in
  let registry = Failover_config.create_registry config in
  let pbridge =
    Primary_bridge.install primary ~registry ~service_addr ~secondary_addr ()
  in
  let sbridge = Secondary_bridge.install secondary ~registry ~service_addr () in
  let t =
    {
      primary;
      secondary;
      config;
      registry;
      pbridge;
      sbridge;
      hb_on_primary = None;
      hb_on_secondary = None;
      services = [];
      status = `Normal;
      on_event = (fun _ -> ());
    }
  in
  t.hb_on_primary <- Some (watch_secondary t);
  t.hb_on_secondary <- Some (watch_primary t);
  t

let service_addr t = Host.addr t.primary
let registry t = t.registry
let primary_bridge t = t.pbridge
let secondary_bridge t = t.sbridge
let set_on_event t fn = t.on_event <- fn
let status t = t.status

let listen t ~port ~on_accept =
  Failover_config.register_endpoint t.registry ~local_port:port;
  t.services <- (port, on_accept) :: t.services;
  Stack.listen (Host.tcp t.primary) ~port ~on_accept:(fun tcb ->
      on_accept ~role:`Primary tcb);
  Stack.listen (Host.tcp t.secondary) ~port ~on_accept:(fun tcb ->
      on_accept ~role:`Secondary tcb)

let connect_backend t ~remote ?local_port ~setup () =
  (match local_port with
  | Some p -> Failover_config.register_endpoint t.registry ~local_port:p
  | None ->
    Failover_config.register_remote t.registry ~remote_port:(snd remote));
  let service = service_addr t in
  let cp =
    Stack.connect (Host.tcp t.primary) ~local:service ?local_port ~remote ()
  in
  setup ~role:`Primary cp;
  let cs =
    Stack.connect (Host.tcp t.secondary) ~local:service ?local_port ~remote
      ()
  in
  setup ~role:`Secondary cs

let kill_primary t = Host.kill t.primary
let kill_secondary t = Host.kill t.secondary

let reintegrate t ~secondary =
  if t.status <> `Secondary_failed then
    invalid_arg "Replicated.reintegrate: no failed secondary to replace";
  Option.iter Heartbeat.stop t.hb_on_primary;
  t.secondary <- secondary;
  t.sbridge <-
    Secondary_bridge.install secondary ~registry:t.registry
      ~service_addr:(service_addr t) ~only_new_connections:true ();
  (* start the registered services on the new replica *)
  List.iter
    (fun (port, on_accept) ->
      Stack.listen (Host.tcp secondary) ~port ~on_accept:(fun tcb ->
          on_accept ~role:`Secondary tcb))
    t.services;
  (* pair the bridges and restart mutual fault detection *)
  Primary_bridge.reinstate t.pbridge ~secondary_addr:(Host.addr secondary);
  t.status <- `Normal;
  t.hb_on_primary <- Some (watch_secondary t);
  t.hb_on_secondary <- Some (watch_primary t);
  t.on_event Reintegrated
