module Time = Tcpfo_sim.Time

type t = {
  service_ports : int list;
  remote_service_ports : int list;
  heartbeat_period : Time.t;
  detector_timeout : Time.t;
  bridge_cost : Time.t;
  takeover_processing : Time.t;
  use_min_ack : bool;
  use_min_window : bool;
}

let default =
  {
    service_ports = [];
    remote_service_ports = [];
    heartbeat_period = Time.ms 10;
    detector_timeout = Time.ms 30;
    bridge_cost = Time.us 8;
    takeover_processing = Time.us 200;
    use_min_ack = true;
    use_min_window = true;
  }

let make ?(service_ports = []) ?(remote_service_ports = [])
    ?(heartbeat_period = default.heartbeat_period)
    ?(detector_timeout = default.detector_timeout)
    ?(bridge_cost = default.bridge_cost)
    ?(takeover_processing = default.takeover_processing)
    ?(use_min_ack = default.use_min_ack)
    ?(use_min_window = default.use_min_window) () =
  { service_ports; remote_service_ports; heartbeat_period; detector_timeout;
    bridge_cost; takeover_processing; use_min_ack; use_min_window }

type registry = {
  config : t;
  mutable extra_local : int list;
  mutable extra_remote : int list;
}

let create_registry config = { config; extra_local = []; extra_remote = [] }
let config r = r.config

let register_endpoint r ~local_port =
  if not (List.mem local_port r.extra_local) then
    r.extra_local <- local_port :: r.extra_local

let register_remote r ~remote_port =
  if not (List.mem remote_port r.extra_remote) then
    r.extra_remote <- remote_port :: r.extra_remote

let is_failover_local_port r p =
  List.mem p r.config.service_ports || List.mem p r.extra_local

let is_failover_remote_port r p =
  List.mem p r.config.remote_service_ports || List.mem p r.extra_remote

let is_failover_conn r ~local_port ~remote_port =
  is_failover_local_port r local_port
  || is_failover_remote_port r remote_port
