(** Daisy-chained replication — the paper's §1 future work ("higher
    degrees of replication can be achieved by daisy-chaining multiple
    backup servers"), built compositionally from the two-replica bridges:

    - the head runs the paper's primary bridge and talks to the client;
    - each middle replica runs the *same* merging bridge, but diverts its
      merged output to the replica above instead of to the client — from
      above, a middle replica and everything below it are
      indistinguishable from a single secondary;
    - the tail runs the plain secondary bridge, diverting to the replica
      above it.

    The wire sequence space is the deepest replica's; every level
    subtracts its own Δseq, the joint acknowledgment/window minima
    compose, and the merged SYN carries the minimum MSS of the whole
    chain.

    Failures (detected by an all-pairs heartbeat mesh):
    - head dies → the next replica promotes: its bridge output flips to
      direct, promiscuous mode goes off, and it takes over the service
      address (gratuitous ARP) — §5 generalized;
    - a middle replica dies → the replica below re-diverts to the replica
      above; queues and sequence spaces need no adjustment because every
      level already speaks the deepest replica's space;
    - the tail dies → the replica above degrades per §6 (flushes its
      queue, continues offset-only) while still diverting upstream if it
      is itself a middle replica.

    Any sequence of failures down to a single survivor is handled. *)

type t

val create :
  replicas:Tcpfo_host.Host.t list ->
  config:Failover_config.t ->
  unit ->
  t
(** [replicas] ordered head first; at least 2.  The service address is the
    head's. *)

val service_addr : t -> Tcpfo_packet.Ipaddr.t
val registry : t -> Failover_config.registry

val listen :
  t ->
  port:int ->
  on_accept:(replica:int -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit
(** Run the replicated server application identically on every replica;
    [replica] is the index in the original [replicas] list. *)

val connect_backend :
  t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  ?local_port:int ->
  setup:(replica:int -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit ->
  unit
(** §7.2 through the chain: every replica opens the connection to the
    unreplicated server from the service address; the merging levels
    collapse them into a single wire connection. *)

val alive : t -> int list
(** Indices of replicas not yet known dead, head-of-chain first. *)

val head : t -> int
(** Index of the current head. *)

val kill : t -> int -> unit
(** Crash replica [i] (fail-stop); detectors react. *)

type event =
  | Death_detected of int
  | Promoted of int  (** replica became head and owns the service address *)
  | Retargeted of int * int  (** replica i now diverts to replica j *)
  | Degraded of int  (** replica lost the node below it (§6) *)

val set_on_event : t -> (event -> unit) -> unit
