(* Library entry point: re-export the public modules in dependency order
   so `Tcpfo_core.Replicated` etc. read naturally. *)

module Failover_config = Failover_config
module Heartbeat = Heartbeat
module Primary_bridge = Primary_bridge
module Secondary_bridge = Secondary_bridge
module Replicated = Replicated
module Chain = Chain
