lib/core/secondary_bridge.ml: Failover_config Queue Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_tcp
