lib/core/heartbeat.ml: Failover_config Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim
