lib/core/tcpfo_core.ml: Chain Failover_config Heartbeat Primary_bridge Replicated Secondary_bridge
