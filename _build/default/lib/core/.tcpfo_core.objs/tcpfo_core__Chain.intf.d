lib/core/chain.mli: Failover_config Tcpfo_host Tcpfo_packet Tcpfo_tcp
