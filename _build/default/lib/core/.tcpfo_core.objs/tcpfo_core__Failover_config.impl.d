lib/core/failover_config.ml: List Tcpfo_sim
