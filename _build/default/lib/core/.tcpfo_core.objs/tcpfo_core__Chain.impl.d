lib/core/chain.ml: Array Failover_config List Primary_bridge Secondary_bridge Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_tcp
