lib/core/heartbeat.mli: Failover_config Tcpfo_host Tcpfo_packet
