lib/core/primary_bridge.mli: Failover_config Tcpfo_host Tcpfo_packet Tcpfo_util
