lib/core/primary_bridge.ml: Failover_config Hashtbl Option String Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_util
