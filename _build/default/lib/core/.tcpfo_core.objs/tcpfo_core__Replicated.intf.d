lib/core/replicated.mli: Failover_config Primary_bridge Secondary_bridge Tcpfo_host Tcpfo_packet Tcpfo_tcp
