lib/core/failover_config.mli: Tcpfo_sim
