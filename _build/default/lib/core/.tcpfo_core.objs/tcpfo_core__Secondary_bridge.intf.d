lib/core/secondary_bridge.mli: Failover_config Tcpfo_host Tcpfo_packet
