lib/core/replicated.ml: Failover_config Heartbeat List Option Primary_bridge Secondary_bridge Tcpfo_host Tcpfo_packet Tcpfo_tcp
