module Seq32 = Tcpfo_util.Seq32

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

let no_flags =
  { syn = false; ack = false; fin = false; rst = false; psh = false;
    urg = false }

let flags_to_string f =
  let b c p = if p then String.make 1 c else "" in
  let s =
    b 'S' f.syn ^ b 'A' f.ack ^ b 'F' f.fin ^ b 'R' f.rst ^ b 'P' f.psh
    ^ b 'U' f.urg
  in
  if s = "" then "." else s

type option_ =
  | Mss of int
  | Window_scale of int
  | Timestamps of int * int
  | Orig_dst of Ipaddr.t
  | Sack_permitted
  | Sack of (Seq32.t * Seq32.t) list
  | Nop

type t = {
  src_port : int;
  dst_port : int;
  seq : Seq32.t;
  ack : Seq32.t;
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
  payload : string;
}

let make ?(flags = no_flags) ?(ack = Seq32.zero) ?(window = 65535)
    ?(options = []) ?(payload = "") ~src_port ~dst_port ~seq () =
  { src_port; dst_port; seq; ack; flags; window; urgent = 0; options;
    payload }

let payload_length t = String.length t.payload

let seq_length t =
  payload_length t + (if t.flags.syn then 1 else 0)
  + if t.flags.fin then 1 else 0

let seq_end t = Seq32.add t.seq (seq_length t)

let option_wire_length = function
  | Mss _ -> 4
  | Window_scale _ -> 3
  | Timestamps _ -> 10
  | Orig_dst _ -> 6
  | Sack_permitted -> 2
  | Sack blocks -> 2 + (8 * List.length blocks)
  | Nop -> 1

let header_length t =
  let opts =
    List.fold_left (fun acc o -> acc + option_wire_length o) 0 t.options
  in
  20 + ((opts + 3) / 4 * 4)

let wire_length t = header_length t + payload_length t

let find_map_option t f = List.find_map f t.options

let mss_option t =
  find_map_option t (function Mss m -> Some m | _ -> None)

let window_scale_option t =
  find_map_option t (function Window_scale s -> Some s | _ -> None)

let timestamps_option t =
  find_map_option t (function Timestamps (v, e) -> Some (v, e) | _ -> None)

let sack_option t =
  find_map_option t (function Sack b -> Some b | _ -> None)

let orig_dst_option t =
  find_map_option t (function Orig_dst a -> Some a | _ -> None)

let pp fmt t =
  Format.fprintf fmt "%d->%d %s seq=%a" t.src_port t.dst_port
    (flags_to_string t.flags) Seq32.pp t.seq;
  if t.flags.ack then Format.fprintf fmt " ack=%a" Seq32.pp t.ack;
  Format.fprintf fmt " win=%d len=%d" t.window (payload_length t);
  List.iter
    (fun o ->
      match o with
      | Mss m -> Format.fprintf fmt " <mss %d>" m
      | Window_scale sc -> Format.fprintf fmt " <wscale %d>" sc
      | Timestamps (v, e) -> Format.fprintf fmt " <ts %d:%d>" v e
      | Orig_dst a -> Format.fprintf fmt " <odst %a>" Ipaddr.pp a
      | Sack_permitted -> Format.fprintf fmt " <sackok>"
      | Sack blocks ->
        Format.fprintf fmt " <sack";
        List.iter
          (fun (lo, hi) ->
            Format.fprintf fmt " %a-%a" Seq32.pp lo Seq32.pp hi)
          blocks;
        Format.fprintf fmt ">"
      | Nop -> ())
    t.options
