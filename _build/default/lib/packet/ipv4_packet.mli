(** IPv4 datagrams as structured values.

    The payload is a typed variant: TCP segments, the failover system's
    heartbeat protocol (an IP protocol of its own, used by the fault
    detector), or raw bytes for cross-traffic generators. *)

type heartbeat = {
  origin : string; (* replica name *)
  hb_seq : int;
  role : [ `Primary | `Secondary ];
}

type payload =
  | Tcp of Tcp_segment.t
  | Heartbeat of heartbeat
  | Raw of { proto : int; data : string }

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  ttl : int;
  ident : int;
  payload : payload;
}

val make : ?ttl:int -> ?ident:int -> src:Ipaddr.t -> dst:Ipaddr.t ->
  payload -> t

val protocol_number : payload -> int
(** 6 for TCP, 253 (experimental) for heartbeats, the carried number for
    raw payloads. *)

val wire_length : t -> int
(** 20-byte header (no IP options modelled) plus payload length. *)

val pp : Format.formatter -> t -> unit
