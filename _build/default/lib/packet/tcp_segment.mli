(** TCP segments as structured values.

    The simulator passes segments around in structured form for speed, but
    the layout mirrors RFC 793 exactly and {!Wire} can encode/decode any
    segment to real octets (with a valid checksum over the IPv4
    pseudo-header).  The [Orig_dst] option is the failover bridge's TCP
    header option carrying the original destination of a diverted segment
    (paper §3.1). *)

type flags = {
  syn : bool;
  ack : bool;
  fin : bool;
  rst : bool;
  psh : bool;
  urg : bool;
}

val no_flags : flags
val flags_to_string : flags -> string

type option_ =
  | Mss of int
  | Window_scale of int  (** RFC 7323 shift count, 0..14 *)
  | Timestamps of int * int  (** RFC 7323 (TSval, TSecr), 32-bit each *)
  | Orig_dst of Ipaddr.t
  | Sack_permitted
  | Sack of (Tcpfo_util.Seq32.t * Tcpfo_util.Seq32.t) list
      (** RFC 2018 selective-acknowledgment blocks, half-open [lo, hi) *)
  | Nop

type t = {
  src_port : int;
  dst_port : int;
  seq : Tcpfo_util.Seq32.t;
  ack : Tcpfo_util.Seq32.t; (* meaningful iff flags.ack *)
  flags : flags;
  window : int;
  urgent : int;
  options : option_ list;
  payload : string;
}

val make :
  ?flags:flags ->
  ?ack:Tcpfo_util.Seq32.t ->
  ?window:int ->
  ?options:option_ list ->
  ?payload:string ->
  src_port:int ->
  dst_port:int ->
  seq:Tcpfo_util.Seq32.t ->
  unit ->
  t

val payload_length : t -> int

val seq_length : t -> int
(** Sequence space the segment occupies: payload bytes plus one for SYN and
    one for FIN. *)

val seq_end : t -> Tcpfo_util.Seq32.t
(** [seq + seq_length]. *)

val header_length : t -> int
(** Wire header size in bytes, options padded to a multiple of 4. *)

val wire_length : t -> int
(** [header_length + payload_length]. *)

val mss_option : t -> int option
val window_scale_option : t -> int option
val timestamps_option : t -> (int * int) option
val sack_option : t -> (Tcpfo_util.Seq32.t * Tcpfo_util.Seq32.t) list option
val orig_dst_option : t -> Ipaddr.t option

val find_map_option : t -> (option_ -> 'a option) -> 'a option

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering for traces, e.g.
    ["5000->80 SA seq=1 ack=2 win=65535 len=0 <mss 1460>"] *)
