type t = int

let mask = 0xFFFF_FFFF

let of_int n = n land mask
let to_int t = t
let any = 0

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let hash (t : t) = Hashtbl.hash t

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (try
       List.fold_left
         (fun acc part ->
           let v = int_of_string part in
           if v < 0 || v > 255 then failwith "octet";
           (acc lsl 8) lor v)
         0 [ a; b; c; d ]
     with _ -> invalid_arg ("Ipaddr.of_string: " ^ s))
  | _ -> invalid_arg ("Ipaddr.of_string: " ^ s)

let network t ~prefix =
  if prefix <= 0 then 0
  else if prefix >= 32 then t
  else t land (mask lxor ((1 lsl (32 - prefix)) - 1))

let same_network a b ~prefix = network a ~prefix = network b ~prefix

let pp fmt t = Format.pp_print_string fmt (to_string t)
