(** 48-bit Ethernet MAC addresses. *)

type t

val of_int : int -> t
(** Low 48 bits are used. *)

val to_int : t -> int

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"].  Raises [Invalid_argument] on malformed
    input. *)

val to_string : t -> string

val broadcast : t
val is_broadcast : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
