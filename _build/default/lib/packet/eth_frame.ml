type payload = Arp of Arp_packet.t | Ip of Ipv4_packet.t

type t = { src : Macaddr.t; dst : Macaddr.t; payload : payload }

let make ~src ~dst payload = { src; dst; payload }

let wire_length t =
  let payload_len =
    match t.payload with
    | Arp _ -> Arp_packet.wire_length
    | Ip p -> Ipv4_packet.wire_length p
  in
  max 64 (14 + payload_len + 4)

let pp fmt t =
  match t.payload with
  | Arp a -> Format.fprintf fmt "[%a>%a] %a" Macaddr.pp t.src Macaddr.pp t.dst
               Arp_packet.pp a
  | Ip p -> Format.fprintf fmt "[%a>%a] %a" Macaddr.pp t.src Macaddr.pp t.dst
              Ipv4_packet.pp p
