type t = int

let mask = 0xFFFF_FFFF_FFFF

let of_int n = n land mask
let to_int t = t

let broadcast = mask
let is_broadcast t = t = mask

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" ((t lsr 40) land 0xFF)
    ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] ->
    (try
       List.fold_left
         (fun acc part -> (acc lsl 8) lor int_of_string ("0x" ^ part))
         0 [ a; b; c; d; e; f ]
     with _ -> invalid_arg ("Macaddr.of_string: " ^ s))
  | _ -> invalid_arg ("Macaddr.of_string: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
