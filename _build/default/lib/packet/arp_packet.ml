type op = Request | Reply

type t = {
  op : op;
  sender_mac : Macaddr.t;
  sender_ip : Ipaddr.t;
  target_mac : Macaddr.t;
  target_ip : Ipaddr.t;
}

let request ~sender_mac ~sender_ip ~target_ip =
  { op = Request; sender_mac; sender_ip; target_mac = Macaddr.of_int 0;
    target_ip }

let reply ~sender_mac ~sender_ip ~target_mac ~target_ip =
  { op = Reply; sender_mac; sender_ip; target_mac; target_ip }

let gratuitous ~sender_mac ~ip =
  { op = Reply; sender_mac; sender_ip = ip; target_mac = Macaddr.broadcast;
    target_ip = ip }

let is_gratuitous t = Ipaddr.equal t.sender_ip t.target_ip

let wire_length = 28

let pp fmt t =
  match t.op with
  | Request ->
    Format.fprintf fmt "arp who-has %a tell %a" Ipaddr.pp t.target_ip
      Ipaddr.pp t.sender_ip
  | Reply ->
    Format.fprintf fmt "arp %a is-at %a%s" Ipaddr.pp t.sender_ip Macaddr.pp
      t.sender_mac
      (if is_gratuitous t then " (gratuitous)" else "")
