type heartbeat = {
  origin : string;
  hb_seq : int;
  role : [ `Primary | `Secondary ];
}

type payload =
  | Tcp of Tcp_segment.t
  | Heartbeat of heartbeat
  | Raw of { proto : int; data : string }

type t = {
  src : Ipaddr.t;
  dst : Ipaddr.t;
  ttl : int;
  ident : int;
  payload : payload;
}

let make ?(ttl = 64) ?(ident = 0) ~src ~dst payload =
  { src; dst; ttl; ident; payload }

let protocol_number = function
  | Tcp _ -> 6
  | Heartbeat _ -> 253
  | Raw { proto; _ } -> proto

let payload_length = function
  | Tcp seg -> Tcp_segment.wire_length seg
  | Heartbeat hb -> 8 + String.length hb.origin
  | Raw { data; _ } -> String.length data

let wire_length t = 20 + payload_length t.payload

let pp fmt t =
  match t.payload with
  | Tcp seg ->
    Format.fprintf fmt "%a>%a %a" Ipaddr.pp t.src Ipaddr.pp t.dst
      Tcp_segment.pp seg
  | Heartbeat hb ->
    Format.fprintf fmt "%a>%a HB(%s,%d)" Ipaddr.pp t.src Ipaddr.pp t.dst
      hb.origin hb.hb_seq
  | Raw { proto; data } ->
    Format.fprintf fmt "%a>%a raw proto=%d len=%d" Ipaddr.pp t.src Ipaddr.pp
      t.dst proto (String.length data)
