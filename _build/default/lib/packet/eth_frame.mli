(** Ethernet II frames. *)

type payload = Arp of Arp_packet.t | Ip of Ipv4_packet.t

type t = { src : Macaddr.t; dst : Macaddr.t; payload : payload }

val make : src:Macaddr.t -> dst:Macaddr.t -> payload -> t

val wire_length : t -> int
(** Header (14) + payload + FCS (4), padded to the 64-byte Ethernet
    minimum.  Preamble and inter-frame gap are accounted for by the medium
    when computing serialization time. *)

val pp : Format.formatter -> t -> unit
