lib/packet/wire.ml: Buffer Bytes Char Ipaddr Ipv4_packet List String Tcp_segment Tcpfo_util
