lib/packet/eth_frame.ml: Arp_packet Format Ipv4_packet Macaddr
