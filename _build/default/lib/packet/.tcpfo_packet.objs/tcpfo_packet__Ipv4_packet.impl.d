lib/packet/ipv4_packet.ml: Format Ipaddr String Tcp_segment
