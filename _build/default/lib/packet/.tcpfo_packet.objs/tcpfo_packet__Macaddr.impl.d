lib/packet/macaddr.ml: Format List Printf String
