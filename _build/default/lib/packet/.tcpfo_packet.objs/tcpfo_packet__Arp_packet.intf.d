lib/packet/arp_packet.mli: Format Ipaddr Macaddr
