lib/packet/ipaddr.ml: Format Hashtbl List Printf String
