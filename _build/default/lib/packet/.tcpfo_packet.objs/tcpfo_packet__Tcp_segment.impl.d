lib/packet/tcp_segment.ml: Format Ipaddr List String Tcpfo_util
