lib/packet/tcp_segment.mli: Format Ipaddr Tcpfo_util
