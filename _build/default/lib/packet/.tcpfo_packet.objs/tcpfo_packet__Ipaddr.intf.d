lib/packet/ipaddr.mli: Format
