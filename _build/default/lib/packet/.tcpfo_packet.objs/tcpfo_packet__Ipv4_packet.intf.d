lib/packet/ipv4_packet.mli: Format Ipaddr Tcp_segment
