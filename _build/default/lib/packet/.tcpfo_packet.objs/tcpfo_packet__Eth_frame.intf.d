lib/packet/eth_frame.mli: Arp_packet Format Ipv4_packet Macaddr
