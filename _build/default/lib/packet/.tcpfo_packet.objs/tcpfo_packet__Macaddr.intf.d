lib/packet/macaddr.mli: Format
