lib/packet/wire.mli: Ipaddr Ipv4_packet Tcp_segment
