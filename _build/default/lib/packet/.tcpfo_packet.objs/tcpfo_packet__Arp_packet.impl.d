lib/packet/arp_packet.ml: Format Ipaddr Macaddr
