(** ARP requests and replies (RFC 826), including gratuitous ARP — the
    mechanism the secondary server uses for IP takeover (paper §5, step 5). *)

type op = Request | Reply

type t = {
  op : op;
  sender_mac : Macaddr.t;
  sender_ip : Ipaddr.t;
  target_mac : Macaddr.t; (* zero/ignored in requests *)
  target_ip : Ipaddr.t;
}

val request : sender_mac:Macaddr.t -> sender_ip:Ipaddr.t ->
  target_ip:Ipaddr.t -> t

val reply : sender_mac:Macaddr.t -> sender_ip:Ipaddr.t ->
  target_mac:Macaddr.t -> target_ip:Ipaddr.t -> t

val gratuitous : sender_mac:Macaddr.t -> ip:Ipaddr.t -> t
(** Gratuitous ARP announcement: sender and target IP are both [ip];
    broadcast so every cache on the segment updates its binding. *)

val is_gratuitous : t -> bool

val wire_length : int
(** 28 bytes for Ethernet/IPv4 ARP. *)

val pp : Format.formatter -> t -> unit
