(** IPv4 addresses. *)

type t

val of_int : int -> t
(** Low 32 bits are used. *)

val to_int : t -> int

val of_string : string -> t
(** Parses dotted-quad ["10.0.0.1"].  Raises [Invalid_argument] on
    malformed input. *)

val to_string : t -> string

val network : t -> prefix:int -> t
(** Network part under a prefix length (e.g. /24). *)

val same_network : t -> t -> prefix:int -> bool

val any : t
(** 0.0.0.0, used as a wildcard. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
