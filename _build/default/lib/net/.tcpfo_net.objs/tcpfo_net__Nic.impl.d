lib/net/nic.ml: Medium Tcpfo_packet
