lib/net/medium.mli: Tcpfo_packet Tcpfo_sim Tcpfo_util
