lib/net/medium.ml: List Queue Tcpfo_packet Tcpfo_sim Tcpfo_util
