lib/net/capture.mli: Medium Tcpfo_packet Tcpfo_sim
