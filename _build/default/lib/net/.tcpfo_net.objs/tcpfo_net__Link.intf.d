lib/net/link.mli: Tcpfo_packet Tcpfo_sim Tcpfo_util
