lib/net/nic.mli: Medium Tcpfo_packet Tcpfo_sim
