lib/net/link.ml: Queue Tcpfo_packet Tcpfo_sim Tcpfo_util
