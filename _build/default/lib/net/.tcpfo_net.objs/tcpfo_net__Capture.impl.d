lib/net/capture.ml: Buffer Format List Medium Tcpfo_packet Tcpfo_sim
