module Eth_frame = Tcpfo_packet.Eth_frame
module Macaddr = Tcpfo_packet.Macaddr

type t = {
  mac : Macaddr.t;
  medium : Medium.t;
  mutable port : Medium.port option;
  mutable promiscuous : bool;
  mutable rx : Eth_frame.t -> addressed_to_me:bool -> unit;
  mutable rx_count : int;
  mutable tx_count : int;
}

let create _engine ~mac medium =
  let t =
    { mac; medium; port = None; promiscuous = false;
      rx = (fun _ ~addressed_to_me:_ -> ()); rx_count = 0; tx_count = 0 }
  in
  let deliver frame =
    let to_me =
      Macaddr.equal frame.Eth_frame.dst t.mac
      || Macaddr.is_broadcast frame.Eth_frame.dst
    in
    if to_me || t.promiscuous then begin
      t.rx_count <- t.rx_count + 1;
      t.rx frame ~addressed_to_me:to_me
    end
  in
  t.port <- Some (Medium.attach medium ~deliver);
  t

let mac t = t.mac
let set_promiscuous t v = t.promiscuous <- v
let promiscuous t = t.promiscuous
let set_rx t fn = t.rx <- fn
let up t = t.port <> None

let send t ~dst payload =
  match t.port with
  | None -> ()
  | Some port ->
    t.tx_count <- t.tx_count + 1;
    Medium.transmit t.medium port (Eth_frame.make ~src:t.mac ~dst payload)

let shutdown t =
  match t.port with
  | None -> ()
  | Some port ->
    Medium.detach t.medium port;
    t.port <- None

let stats_rx t = t.rx_count
let stats_tx t = t.tx_count
