module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Eth_frame = Tcpfo_packet.Eth_frame
module Ipv4_packet = Tcpfo_packet.Ipv4_packet

type record = { at : Time.t; frame : Eth_frame.t }

type t = {
  engine : Engine.t;
  filter : Eth_frame.t -> bool;
  limit : int;
  mutable recs : record list; (* newest first *)
  mutable n_kept : int;
  mutable n_seen : int;
  mutable running : bool;
  mutable port : Medium.port option;
  medium : Medium.t;
}

let start engine medium ?(filter = fun _ -> true) ?(limit = 100_000) () =
  let t =
    { engine; filter; limit; recs = []; n_kept = 0; n_seen = 0;
      running = true; port = None; medium }
  in
  let deliver frame =
    if t.running then begin
      t.n_seen <- t.n_seen + 1;
      if t.filter frame then begin
        t.recs <- { at = Engine.now engine; frame } :: t.recs;
        t.n_kept <- t.n_kept + 1;
        if t.n_kept > t.limit then begin
          (* drop the oldest record *)
          t.recs <- List.filteri (fun i _ -> i < t.limit) t.recs;
          t.n_kept <- t.limit
        end
      end
    end
  in
  t.port <- Some (Medium.attach medium ~deliver);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    match t.port with
    | Some p ->
      Medium.detach t.medium p;
      t.port <- None
    | None -> ()
  end

let count t = t.n_kept
let seen t = t.n_seen
let records t = List.rev t.recs

let tcp_segments t =
  List.filter_map
    (fun r ->
      match r.frame.Eth_frame.payload with
      | Eth_frame.Ip ({ payload = Ipv4_packet.Tcp _; _ } as pkt) ->
        Some (r.at, pkt)
      | Eth_frame.Ip _ | Eth_frame.Arp _ -> None)
    (records t)

let dump t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Format.asprintf "[%a] %a@." Time.pp r.at Eth_frame.pp r.frame))
    (records t);
  Buffer.contents b

let clear t =
  t.recs <- [];
  t.n_kept <- 0
