lib/tcp/tcb.mli: Tcp_config Tcpfo_packet Tcpfo_sim Tcpfo_util
