lib/tcp/rto.ml: Float Option Stdlib
