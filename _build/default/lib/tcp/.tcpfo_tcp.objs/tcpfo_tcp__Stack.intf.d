lib/tcp/stack.mli: Tcb Tcp_config Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_util
