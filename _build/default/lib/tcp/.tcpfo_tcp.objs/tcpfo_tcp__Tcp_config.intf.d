lib/tcp/tcp_config.mli: Tcpfo_sim
