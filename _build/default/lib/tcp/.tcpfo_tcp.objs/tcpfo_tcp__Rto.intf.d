lib/tcp/rto.mli: Tcpfo_sim
