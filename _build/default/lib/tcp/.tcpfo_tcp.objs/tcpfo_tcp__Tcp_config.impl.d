lib/tcp/tcp_config.ml: Tcpfo_sim
