lib/tcp/tcb.ml: Buffer List Rto String Tcp_config Tcpfo_packet Tcpfo_sim Tcpfo_util
