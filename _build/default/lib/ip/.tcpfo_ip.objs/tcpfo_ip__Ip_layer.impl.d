lib/ip/ip_layer.ml: Eth_iface List Tcpfo_net Tcpfo_packet Tcpfo_sim
