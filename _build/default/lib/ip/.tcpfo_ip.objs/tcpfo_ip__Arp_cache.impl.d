lib/ip/arp_cache.ml: Hashtbl List Tcpfo_packet Tcpfo_sim
