lib/ip/eth_iface.ml: Arp_cache Hashtbl List Queue Tcpfo_net Tcpfo_packet Tcpfo_sim
