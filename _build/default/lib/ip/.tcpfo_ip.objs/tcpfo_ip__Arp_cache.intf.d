lib/ip/arp_cache.mli: Tcpfo_packet Tcpfo_sim
