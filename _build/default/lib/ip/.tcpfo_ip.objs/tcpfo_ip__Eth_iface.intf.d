lib/ip/eth_iface.mli: Arp_cache Tcpfo_net Tcpfo_packet Tcpfo_sim
