lib/ip/ip_layer.mli: Eth_iface Tcpfo_net Tcpfo_packet Tcpfo_sim
