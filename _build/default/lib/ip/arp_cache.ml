module Clock = Tcpfo_sim.Clock
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr

type entry = { mac : Macaddr.t; expires : Tcpfo_sim.Time.t }

type t = {
  clock : Clock.t;
  ttl : Tcpfo_sim.Time.t;
  table : (Ipaddr.t, entry) Hashtbl.t;
}

let create clock ~ttl = { clock; ttl; table = Hashtbl.create 16 }

let lookup t ip =
  match Hashtbl.find_opt t.table ip with
  | Some e when e.expires > t.clock.now () -> Some e.mac
  | Some _ ->
    Hashtbl.remove t.table ip;
    None
  | None -> None

let learn t ip mac =
  Hashtbl.replace t.table ip { mac; expires = t.clock.now () + t.ttl }

let forget t ip = Hashtbl.remove t.table ip
let clear t = Hashtbl.reset t.table

let entries t =
  let now = t.clock.now () in
  Hashtbl.fold
    (fun ip e acc -> if e.expires > now then (ip, e.mac) :: acc else acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)
