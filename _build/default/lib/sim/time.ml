type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec s = int_of_float (s *. 1e9)

let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add = ( + )

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%.4fs" (to_sec t)
