lib/sim/cpu.ml: Clock Time
