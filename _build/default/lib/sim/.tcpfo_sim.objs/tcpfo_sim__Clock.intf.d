lib/sim/clock.mli: Engine Time
