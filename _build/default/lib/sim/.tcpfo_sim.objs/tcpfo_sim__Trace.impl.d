lib/sim/trace.ml: Engine Format Time
