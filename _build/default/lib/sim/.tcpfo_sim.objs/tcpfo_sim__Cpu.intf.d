lib/sim/cpu.mli: Clock Time
