lib/sim/engine.ml: Tcpfo_util Time
