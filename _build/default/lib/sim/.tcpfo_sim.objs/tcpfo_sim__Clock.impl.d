lib/sim/clock.ml: Engine Time
