(** Simulated time, in integer nanoseconds.

    An OCaml [int] holds 63 bits, i.e. ~292 simulated years at nanosecond
    resolution — ample for any experiment in the paper. *)

type t = int
(** Nanoseconds since the start of the simulation. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : float -> t

val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val pp : Format.formatter -> t -> unit
(** Human-readable, scaled (ns/µs/ms/s). *)
