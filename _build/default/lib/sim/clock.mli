(** A scheduling capability handed to protocol components.

    Wrapping the engine behind a [Clock.t] lets a host interpose a
    liveness guard: when the host is killed (crash-fault injection), every
    timer it ever armed becomes inert, exactly as if the kernel stopped
    executing. *)

type t = {
  now : unit -> Time.t;
  schedule : Time.t -> (unit -> unit) -> Engine.event_id;
  (** [schedule delay fn] *)
  cancel : Engine.event_id -> unit;
}

val of_engine : Engine.t -> t
(** Direct, unguarded clock. *)

val guarded : Engine.t -> alive:(unit -> bool) -> t
(** Events fire only while [alive ()]; scheduling while dead is a no-op
    (the event is created but its body is skipped). *)
