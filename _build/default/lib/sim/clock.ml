type t = {
  now : unit -> Time.t;
  schedule : Time.t -> (unit -> unit) -> Engine.event_id;
  cancel : Engine.event_id -> unit;
}

let of_engine engine =
  {
    now = (fun () -> Engine.now engine);
    schedule = (fun delay fn -> Engine.schedule engine ~delay fn);
    cancel = (fun id -> Engine.cancel engine id);
  }

let guarded engine ~alive =
  {
    now = (fun () -> Engine.now engine);
    schedule =
      (fun delay fn ->
        Engine.schedule engine ~delay (fun () -> if alive () then fn ()));
    cancel = (fun id -> Engine.cancel engine id);
  }
