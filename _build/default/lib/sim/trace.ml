type level = Quiet | Error | Info | Debug

let current = ref Quiet
let set_level l = current := l
let level () = !current

let rank = function Quiet -> 0 | Error -> 1 | Info -> 2 | Debug -> 3

let log engine component fmt k =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "[%a] %s: %s@." Time.pp (Engine.now engine) component msg;
      k)
    fmt

let emit lvl engine component fmt =
  if rank !current >= rank lvl then log engine component fmt ()
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let errorf engine component fmt = emit Error engine component fmt
let infof engine component fmt = emit Info engine component fmt
let debugf engine component fmt = emit Debug engine component fmt
