(** A serialized processing resource (one CPU per host).

    Per-packet protocol costs are not just latency: a kernel processes one
    packet at a time, so a host saturates when the aggregate per-packet
    cost approaches the packet inter-arrival time.  This is the effect
    that makes the paper's primary server — which handles the client's
    datagrams, the secondary's diverted copies, *and* the merged output —
    the throughput bottleneck in Figure 5.

    Work items run FIFO: each occupies the CPU for its [cost], starting
    when all previously submitted work has finished. *)

type t

val create : Clock.t -> t

val run : t -> cost:Time.t -> (unit -> unit) -> unit
(** [run t ~cost fn] schedules [fn] to complete after [cost] of CPU time,
    queued behind all earlier work. *)

val busy_until : t -> Time.t
val total_busy : t -> Time.t
(** Cumulative busy time — utilization telemetry for benchmarks. *)
