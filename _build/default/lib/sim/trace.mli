(** Lightweight, simulation-time-aware tracing.

    Disabled by default so tests and benchmarks stay quiet; examples and the
    CLI enable it to show packet-level activity. *)

type level = Quiet | Error | Info | Debug

val set_level : level -> unit
val level : unit -> level

val errorf :
  Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val infof :
  Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val debugf :
  Engine.t -> string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [debugf engine component fmt ...] prints
    ["\[<time>\] <component>: <message>"] when the level admits it. *)
