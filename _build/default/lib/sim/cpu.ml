type t = {
  clock : Clock.t;
  mutable busy_until : Time.t;
  mutable total_busy : Time.t;
}

let create clock = { clock; busy_until = Time.zero; total_busy = Time.zero }

let run t ~cost fn =
  let now = t.clock.Clock.now () in
  let start = max now t.busy_until in
  let finish = start + max 0 cost in
  t.busy_until <- finish;
  t.total_busy <- t.total_busy + max 0 cost;
  ignore (t.clock.Clock.schedule (finish - now) fn)

let busy_until t = t.busy_until
let total_busy t = t.total_busy
