lib/host/host.ml: Lazy List Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util
