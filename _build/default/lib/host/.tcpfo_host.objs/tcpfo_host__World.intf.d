lib/host/world.mli: Host Tcpfo_net Tcpfo_sim Tcpfo_tcp Tcpfo_util
