lib/host/world.ml: Host List Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_util
