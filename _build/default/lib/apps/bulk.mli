(** Bulk-transfer workloads: the building blocks of the paper's Figure 3
    (client→server send time), Figure 4 (request/reply time) and Figure 5
    (100 MB stream rates). *)

module Sink : sig
  (** Server that consumes an upload and reports completion. *)

  val serve :
    Tcpfo_tcp.Stack.t ->
    port:int ->
    ?on_complete:(bytes_received:int -> unit) ->
    unit ->
    unit
  (** Accept connections, discard payload, fire [on_complete] when the
      peer half-closes.  The sink closes its side in response. *)

  val serve_replicated :
    Tcpfo_core.Replicated.t ->
    port:int ->
    ?on_complete:(role:[ `Primary | `Secondary ] -> bytes_received:int -> unit) ->
    unit ->
    unit
end

module Source : sig
  (** Server that streams [size] bytes at the client upon connection, then
      closes. *)

  val serve : Tcpfo_tcp.Stack.t -> port:int -> size:int -> unit
  val serve_replicated :
    Tcpfo_core.Replicated.t -> port:int -> size:int -> unit

  val payload : int -> string
  (** The deterministic stream prefix of the given length (for
      verification). *)
end

module Rr : sig
  (** Request/reply: the client sends a 4-byte message, the server replies
      with [reply_size] bytes (paper Figure 4). *)

  val serve : Tcpfo_tcp.Stack.t -> port:int -> reply_size:int -> unit
  val serve_replicated :
    Tcpfo_core.Replicated.t -> port:int -> reply_size:int -> unit
end

(** {1 Client-side drivers} *)

val upload :
  Tcpfo_tcp.Stack.t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  size:int ->
  ?chunk:int ->
  on_buffered:(unit -> unit) ->
  on_complete:(unit -> unit) ->
  unit ->
  Tcpfo_tcp.Tcb.t
(** Connect, stream [size] bytes.  [on_buffered] fires when the last byte
    has been accepted by the send buffer (the instant the paper's send
    call returns, §9); [on_complete] when the upload is fully
    acknowledged and the connection has closed. *)

val download :
  Tcpfo_tcp.Stack.t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  on_complete:(bytes_received:int -> ok:bool -> unit) ->
  unit ->
  Tcpfo_tcp.Tcb.t
(** Connect to a {!Source} and consume until EOF; [ok] reports byte-exact
    content. *)

val request_reply :
  Tcpfo_tcp.Stack.t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  expect:int ->
  on_reply:(unit -> unit) ->
  unit ->
  Tcpfo_tcp.Tcb.t
(** Send the 4-byte request; [on_reply] fires when [expect] reply bytes
    have arrived (paper Figure 4 measurement). *)
