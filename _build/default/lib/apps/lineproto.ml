type t = { buf : Buffer.t; on_line : string -> unit }

let create ~on_line = { buf = Buffer.create 128; on_line }

let feed t chunk =
  Buffer.add_string t.buf chunk;
  let rec drain () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
      let line =
        if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
        else String.sub s 0 i
      in
      Buffer.clear t.buf;
      Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
      t.on_line line;
      drain ()
  in
  drain ()

let pending t = Buffer.contents t.buf
let line s = s ^ "\r\n"
