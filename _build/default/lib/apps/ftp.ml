module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ipaddr = Tcpfo_packet.Ipaddr

(* PORT argument encoding: h1,h2,h3,h4,p1,p2 *)
let encode_port_arg (ip, port) =
  let v = Ipaddr.to_int ip in
  Printf.sprintf "%d,%d,%d,%d,%d,%d" ((v lsr 24) land 0xFF)
    ((v lsr 16) land 0xFF) ((v lsr 8) land 0xFF) (v land 0xFF)
    ((port lsr 8) land 0xFF) (port land 0xFF)

let decode_port_arg s =
  match String.split_on_char ',' (String.trim s) with
  | [ a; b; c; d; p1; p2 ] -> (
    try
      let n x = int_of_string (String.trim x) in
      let ip =
        Ipaddr.of_int ((n a lsl 24) lor (n b lsl 16) lor (n c lsl 8) lor n d)
      in
      Some (ip, (n p1 lsl 8) lor n p2)
    with _ -> None)
  | _ -> None

let split_command line =
  match String.index_opt line ' ' with
  | None -> (String.uppercase_ascii line, "")
  | Some i ->
    ( String.uppercase_ascii (String.sub line 0 i),
      String.sub line (i + 1) (String.length line - i - 1) )

module Server = struct
  type files = {
    get : string -> string option;
    put : string -> string -> unit;
  }

  let in_memory entries =
    let table = Hashtbl.create 8 in
    List.iter (fun (k, v) -> Hashtbl.replace table k v) entries;
    {
      get = (fun name -> Hashtbl.find_opt table name);
      put = (fun name data -> Hashtbl.replace table name data);
    }

  type session = {
    ctrl : Tcb.t;
    stack : Stack.t;
    bind : Ipaddr.t;
    data_port : int;
    files : files;
    mutable authenticated : bool;
    mutable data_target : (Ipaddr.t * int) option;
  }

  let reply session text = ignore (Tcb.send session.ctrl (Lineproto.line text))

  (* Stream [content] over a fresh server-initiated data connection, then
     report 226 on the control connection. *)
  let send_file session content =
    match session.data_target with
    | None -> reply session "425 Use PORT first."
    | Some remote ->
      session.data_target <- None;
      reply session "150 Opening data connection.";
      let data =
        Stack.connect session.stack ~local:session.bind
          ~local_port:session.data_port ~remote ()
      in
      Tcb.set_on_established data (fun () ->
          let off = ref 0 in
          let rec pump () =
            if !off < String.length content then begin
              let n =
                Tcb.send data
                  (String.sub content !off (String.length content - !off))
              in
              off := !off + n;
              if !off < String.length content then Tcb.set_on_drain data pump
              else Tcb.close data
            end
            else Tcb.close data
          in
          pump ());
      Tcb.set_on_close data (fun () -> reply session "226 Transfer complete.");
      Tcb.set_on_reset data (fun () -> reply session "426 Connection closed.")

  let receive_file session name =
    match session.data_target with
    | None -> reply session "425 Use PORT first."
    | Some remote ->
      session.data_target <- None;
      reply session "150 Opening data connection.";
      let data =
        Stack.connect session.stack ~local:session.bind
          ~local_port:session.data_port ~remote ()
      in
      let buf = Buffer.create 1024 in
      Tcb.set_on_data data (fun d -> Buffer.add_string buf d);
      Tcb.set_on_eof data (fun () ->
          session.files.put name (Buffer.contents buf);
          Tcb.close data;
          reply session "226 Transfer complete.");
      Tcb.set_on_reset data (fun () -> reply session "426 Connection closed.")

  let handle_command session line =
    let cmd, arg = split_command line in
    match cmd with
    | "USER" -> reply session "331 Password required."
    | "PASS" ->
      session.authenticated <- true;
      reply session "230 Logged in."
    | _ when not session.authenticated -> reply session "530 Not logged in."
    | "PORT" -> (
      match decode_port_arg arg with
      | Some target ->
        session.data_target <- Some target;
        reply session "200 PORT command successful."
      | None -> reply session "501 Bad PORT syntax.")
    | "RETR" -> (
      match session.files.get arg with
      | Some content -> send_file session content
      | None -> reply session "550 No such file.")
    | "STOR" -> receive_file session arg
    | "QUIT" ->
      reply session "221 Goodbye.";
      Tcb.close session.ctrl
    | _ -> reply session "502 Command not implemented."

  let serve stack ~bind ?(ctrl_port = 21) ?(data_port = 20) ~files () =
    Stack.listen stack ~port:ctrl_port ~on_accept:(fun ctrl ->
        let session =
          { ctrl; stack; bind; data_port; files; authenticated = false;
            data_target = None }
        in
        let lines =
          Lineproto.create ~on_line:(fun l -> handle_command session l)
        in
        ignore (Tcb.send ctrl (Lineproto.line "220 tcpfo FTP ready."));
        Tcb.set_on_data ctrl (fun d -> Lineproto.feed lines d);
        Tcb.set_on_eof ctrl (fun () -> Tcb.close ctrl))
end

module Client = struct
  type hooks = { on_data_conn : unit -> unit; on_buffered : unit -> unit }

  let no_hooks = { on_data_conn = (fun () -> ()); on_buffered = (fun () -> ()) }

  type pending =
    | Get of string * hooks * (string option -> unit)
    | Put of string * string * hooks * (bool -> unit)

  type t = {
    stack : Stack.t;
    ctrl : Tcb.t;
    local_addr : Ipaddr.t;
    mutable ready : bool;
    mutable queue : pending list;
    mutable active : pending option;
    mutable data_buf : Buffer.t;
    mutable data_done : bool; (* data connection finished *)
    mutable ctrl_226 : bool; (* transfer-complete reply received *)
    mutable on_ready : t -> unit;
    mutable user : string;
    mutable password : string;
  }

  let send_line t s = ignore (Tcb.send t.ctrl (Lineproto.line s))

  (* A transfer completes when both the data connection has finished and
     the 226 control reply has arrived (order varies). *)
  let rec maybe_finish_transfer t =
    if t.data_done && t.ctrl_226 then begin
      (match t.active with
      | Some (Get (_, _, k)) -> k (Some (Buffer.contents t.data_buf))
      | Some (Put (_, _, _, k)) -> k true
      | None -> ());
      t.active <- None;
      start_next t
    end

  and start_next t =
    match (t.active, t.queue) with
    | None, job :: rest ->
      t.queue <- rest;
      t.active <- Some job;
      t.data_buf <- Buffer.create 1024;
      t.data_done <- false;
      t.ctrl_226 <- false;
      (* open a fresh data listener and announce it *)
      let port = Stack.fresh_port t.stack in
      Stack.listen t.stack ~port ~on_accept:(fun data ->
          Stack.unlisten t.stack ~port;
          match t.active with
          | Some (Get (_, hooks, _)) ->
            hooks.on_data_conn ();
            Tcb.set_on_data data (fun d -> Buffer.add_string t.data_buf d);
            Tcb.set_on_eof data (fun () ->
                Tcb.close data;
                t.data_done <- true;
                maybe_finish_transfer t)
          | Some (Put (_, content, hooks, _)) ->
            hooks.on_data_conn ();
            let off = ref 0 in
            let rec pump () =
              if !off < String.length content then begin
                let n =
                  Tcb.send data
                    (String.sub content !off (String.length content - !off))
                in
                off := !off + n;
                if !off < String.length content then
                  Tcb.set_on_drain data pump
                else begin
                  hooks.on_buffered ();
                  Tcb.close data
                end
              end
              else begin
                hooks.on_buffered ();
                Tcb.close data
              end
            in
            pump ();
            Tcb.set_on_close data (fun () ->
                t.data_done <- true;
                maybe_finish_transfer t)
          | None -> Tcb.abort data);
      send_line t ("PORT " ^ encode_port_arg (t.local_addr, port))
    | _ -> ()

  let handle_reply t line =
    let code = try int_of_string (String.sub line 0 3) with _ -> 0 in
    match code with
    | 220 -> send_line t ("USER " ^ t.user)
    | 331 -> send_line t ("PASS " ^ t.password)
    | 230 ->
      t.ready <- true;
      t.on_ready t
    | 200 -> (
      (* PORT accepted: issue the transfer command *)
      match t.active with
      | Some (Get (name, _, _)) -> send_line t ("RETR " ^ name)
      | Some (Put (name, _, _, _)) -> send_line t ("STOR " ^ name)
      | None -> ())
    | 150 -> ()
    | 226 ->
      t.ctrl_226 <- true;
      maybe_finish_transfer t
    | 550 | 425 | 426 | 501 | 502 | 530 -> (
      match t.active with
      | Some (Get (_, _, k)) ->
        t.active <- None;
        k None;
        start_next t
      | Some (Put (_, _, _, k)) ->
        t.active <- None;
        k false;
        start_next t
      | None -> ())
    | 221 -> Tcb.close t.ctrl
    | _ -> ()

  let connect stack ~server ~local_addr ?(user = "anonymous")
      ?(password = "guest") ~on_ready () =
    let ctrl = Stack.connect stack ~remote:server () in
    let t =
      {
        stack;
        ctrl;
        local_addr;
        ready = false;
        queue = [];
        active = None;
        data_buf = Buffer.create 16;
        data_done = false;
        ctrl_226 = false;
        on_ready;
        user;
        password;
      }
    in
    let lines = Lineproto.create ~on_line:(fun l -> handle_reply t l) in
    Tcb.set_on_data ctrl (fun d -> Lineproto.feed lines d);
    t

  let get t name ?on_data_conn ~on_done () =
    let hooks =
      { no_hooks with
        on_data_conn = Option.value on_data_conn ~default:(fun () -> ()) }
    in
    t.queue <- t.queue @ [ Get (name, hooks, on_done) ];
    start_next t

  let put t name content ?on_data_conn ?on_buffered ~on_done () =
    let hooks =
      {
        on_data_conn = Option.value on_data_conn ~default:(fun () -> ());
        on_buffered = Option.value on_buffered ~default:(fun () -> ());
      }
    in
    t.queue <- t.queue @ [ Put (name, content, hooks, on_done) ];
    start_next t

  let quit t = send_line t "QUIT"
end
