(** A minimal HTTP/1.0 server and client — the paper's motivating
    workload ("a replicated Web server that accepts connection requests
    from unreplicated clients", §1).

    Supported: [GET] and [POST] with [Content-Length] framing, status
    lines, a handful of headers, connection-per-request ("Connection:
    close") semantics — enough to exercise realistic request/response
    traffic through the failover bridge.  Deterministic: responses are a
    pure function of the request and the handler. *)

type request = {
  meth : string;  (** "GET", "POST", ... *)
  path : string;
  headers : (string * string) list;  (** lowercased names *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val ok : ?headers:(string * string) list -> string -> response
val not_found : response

type handler = request -> response

val serve : Tcpfo_tcp.Stack.t -> port:int -> handler -> unit
(** One request per connection; the server replies and closes (HTTP/1.0
    default). *)

val serve_replicated : Tcpfo_core.Replicated.t -> port:int -> handler -> unit

val serve_chain : Tcpfo_core.Chain.t -> port:int -> handler -> unit

val get :
  Tcpfo_tcp.Stack.t ->
  server:Tcpfo_packet.Ipaddr.t * int ->
  path:string ->
  on_response:(response option -> unit) ->
  unit ->
  Tcpfo_tcp.Tcb.t
(** Issue a GET; [on_response] receives [None] on connection failure or a
    malformed reply. *)

val post :
  Tcpfo_tcp.Stack.t ->
  server:Tcpfo_packet.Ipaddr.t * int ->
  path:string ->
  body:string ->
  on_response:(response option -> unit) ->
  unit ->
  Tcpfo_tcp.Tcb.t

(** {1 Wire formats, exposed for tests} *)

val render_request : request -> string
val render_response : response -> string
