module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

let handle tcb =
  Tcb.set_on_data tcb (fun data ->
      (* best effort: an echo server slower than its input simply drops
         into backpressure; for test workloads the buffer suffices *)
      ignore (Tcb.send tcb data));
  Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)

let serve stack ~port = Stack.listen stack ~port ~on_accept:handle

let serve_replicated repl ~port =
  Tcpfo_core.Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
      handle tcb)
