module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let ok ?(headers = []) body =
  { status = 200; reason = "OK"; resp_headers = headers; resp_body = body }

let not_found =
  { status = 404; reason = "Not Found"; resp_headers = []; resp_body = "" }

type handler = request -> response

(* ------------------------------------------------------------------ *)
(* Wire format                                                        *)

let crlf = "\r\n"

let render_headers headers body =
  let b = Buffer.create 128 in
  List.iter
    (fun (k, v) ->
      if String.lowercase_ascii k <> "content-length" then begin
        Buffer.add_string b k;
        Buffer.add_string b ": ";
        Buffer.add_string b v;
        Buffer.add_string b crlf
      end)
    headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d%s" (String.length body) crlf);
  Buffer.add_string b crlf;
  Buffer.contents b

let render_request r =
  Printf.sprintf "%s %s HTTP/1.0%s%s%s" r.meth r.path crlf
    (render_headers r.headers r.body)
    r.body

let render_response r =
  Printf.sprintf "HTTP/1.0 %d %s%s%s%s" r.status r.reason crlf
    (render_headers r.resp_headers r.resp_body)
    r.resp_body

(* Incremental message parser: start line, headers, Content-Length body. *)
type 'a parser_state = {
  buf : Buffer.t;
  mutable head_done : bool;
  mutable start_line : string;
  mutable headers : (string * string) list;
  mutable need : int; (* body bytes still required; -1 = unknown *)
  mutable emitted : bool;
  on_message : start_line:string -> headers:(string * string) list ->
    body:string -> unit;
}

let mk_parser on_message =
  { buf = Buffer.create 256; head_done = false; start_line = "";
    headers = []; need = -1; emitted = false; on_message }

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    Some (name, value)

let feed p chunk =
  Buffer.add_string p.buf chunk;
  let try_finish () =
    if p.head_done && not p.emitted then begin
      let have = Buffer.length p.buf in
      if p.need >= 0 && have >= p.need then begin
        p.emitted <- true;
        let body = Buffer.sub p.buf 0 p.need in
        p.on_message ~start_line:p.start_line ~headers:p.headers ~body
      end
    end
  in
  if not p.head_done then begin
    let s = Buffer.contents p.buf in
    (* find the blank line ending the header block *)
    let rec find i =
      if i + 3 < String.length s then
        if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
           && s.[i + 3] = '\n'
        then Some i
        else find (i + 1)
      else None
    in
    match find 0 with
    | None -> ()
    | Some hdr_end ->
      let head = String.sub s 0 hdr_end in
      let rest =
        String.sub s (hdr_end + 4) (String.length s - hdr_end - 4)
      in
      (match String.split_on_char '\n' (String.concat "" [ head ]) with
      | [] -> ()
      | first :: rest_lines ->
        p.start_line <- String.trim first;
        p.headers <- List.filter_map parse_header_line rest_lines);
      p.need <-
        (match List.assoc_opt "content-length" p.headers with
        | Some v -> ( try int_of_string (String.trim v) with _ -> 0)
        | None -> 0);
      p.head_done <- true;
      Buffer.clear p.buf;
      Buffer.add_string p.buf rest;
      try_finish ()
  end
  else try_finish ()

(* ------------------------------------------------------------------ *)
(* Server                                                             *)

let handle_connection handler tcb =
  let respond ~start_line ~headers ~body =
    let meth, path =
      match String.split_on_char ' ' start_line with
      | m :: p :: _ -> (m, p)
      | _ -> ("GET", "/")
    in
    let resp = handler { meth; path; headers; body } in
    (* stream out the whole response, then close *)
    let out = render_response resp in
    let off = ref 0 in
    let rec pump () =
      let len = String.length out in
      if !off < len then begin
        let n = Tcb.send tcb (String.sub out !off (len - !off)) in
        off := !off + n;
        if !off < len then Tcb.set_on_drain tcb pump else Tcb.close tcb
      end
      else Tcb.close tcb
    in
    pump ()
  in
  let p = mk_parser respond in
  Tcb.set_on_data tcb (fun d -> feed p d);
  Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)

let serve stack ~port handler =
  Stack.listen stack ~port ~on_accept:(handle_connection handler)

let serve_replicated repl ~port handler =
  Tcpfo_core.Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
      handle_connection handler tcb)

let serve_chain chain ~port handler =
  Tcpfo_core.Chain.listen chain ~port ~on_accept:(fun ~replica:_ tcb ->
      handle_connection handler tcb)

(* ------------------------------------------------------------------ *)
(* Client                                                             *)

let request stack ~server ~req ~on_response () =
  let tcb = Stack.connect stack ~remote:server () in
  let done_ = ref false in
  let finish r =
    if not !done_ then begin
      done_ := true;
      on_response r
    end
  in
  let p =
    mk_parser (fun ~start_line ~headers ~body ->
        match String.split_on_char ' ' start_line with
        | _ :: code :: rest ->
          finish
            (Some
               {
                 status = (try int_of_string code with _ -> 0);
                 reason = String.concat " " rest;
                 resp_headers = headers;
                 resp_body = body;
               })
        | _ -> finish None)
  in
  Tcb.set_on_data tcb (fun d -> feed p d);
  Tcb.set_on_reset tcb (fun () -> finish None);
  Tcb.set_on_eof tcb (fun () ->
      Tcb.close tcb;
      (* server closed without a complete message *)
      finish None);
  Tcb.set_on_established tcb (fun () ->
      let out = render_request req in
      let off = ref 0 in
      let rec pump () =
        let len = String.length out in
        if !off < len then begin
          let n = Tcb.send tcb (String.sub out !off (len - !off)) in
          off := !off + n;
          if !off < len then Tcb.set_on_drain tcb pump else pump ()
        end
      in
      pump ());
  tcb

let get stack ~server ~path ~on_response () =
  request stack ~server
    ~req:{ meth = "GET"; path; headers = []; body = "" }
    ~on_response ()

let post stack ~server ~path ~body ~on_response () =
  request stack ~server
    ~req:{ meth = "POST"; path; headers = []; body }
    ~on_response ()
