module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated

(* Deterministic stream content so receivers can verify integrity. *)
let stream_byte i = Char.chr ((i * 31 + (i lsr 8) * 17 + 5) land 0xFF)

let stream_chunk ~pos n = String.init n (fun i -> stream_byte (pos + i))

(* Pump [size] bytes of the deterministic stream into [tcb], respecting
   backpressure; [on_buffered] fires when the last byte enters the send
   buffer, [then_close] closes afterwards. *)
let pump ?(chunk = 32768) ~size ~on_buffered ~then_close tcb =
  let pos = ref 0 in
  let rec go () =
    if !pos < size then begin
      let want = min chunk (size - !pos) in
      let n = Tcb.send tcb (stream_chunk ~pos:!pos want) in
      pos := !pos + n;
      if n < want then
        (* buffer full: resume when acknowledgments free space *)
        Tcb.set_on_drain tcb go
      else go ()
    end
    else begin
      on_buffered ();
      if then_close then Tcb.close tcb
    end
  in
  go ()

module Sink = struct
  let handle ?on_complete tcb =
    let count = ref 0 in
    Tcb.set_on_data tcb (fun d -> count := !count + String.length d);
    Tcb.set_on_eof tcb (fun () ->
        (match on_complete with
        | Some f -> f ~bytes_received:!count
        | None -> ());
        Tcb.close tcb)

  let serve stack ~port ?on_complete () =
    Stack.listen stack ~port ~on_accept:(fun tcb -> handle ?on_complete tcb)

  let serve_replicated repl ~port ?on_complete () =
    Replicated.listen repl ~port ~on_accept:(fun ~role tcb ->
        let on_complete =
          Option.map (fun f -> fun ~bytes_received -> f ~role ~bytes_received)
            on_complete
        in
        handle ?on_complete tcb)
end

module Source = struct
  let payload n = stream_chunk ~pos:0 n

  let handle ~size tcb =
    Tcb.set_on_established tcb (fun () ->
        pump ~size ~on_buffered:(fun () -> ()) ~then_close:true tcb);
    Tcb.set_on_eof tcb (fun () -> ())

  let serve stack ~port ~size =
    Stack.listen stack ~port ~on_accept:(handle ~size)

  let serve_replicated repl ~port ~size =
    Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
        handle ~size tcb)
end

module Rr = struct
  let handle ~reply_size tcb =
    let got = ref 0 in
    Tcb.set_on_data tcb (fun d ->
        got := !got + String.length d;
        if !got >= 4 then begin
          got := 0;
          pump ~size:reply_size ~on_buffered:(fun () -> ()) ~then_close:false
            tcb
        end);
    Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)

  let serve stack ~port ~reply_size =
    Stack.listen stack ~port ~on_accept:(handle ~reply_size)

  let serve_replicated repl ~port ~reply_size =
    Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
        handle ~reply_size tcb)
end

let upload stack ~remote ~size ?chunk ~on_buffered ~on_complete () =
  let tcb = Stack.connect stack ~remote () in
  Tcb.set_on_established tcb (fun () ->
      pump ?chunk ~size ~on_buffered ~then_close:true tcb);
  Tcb.set_on_close tcb on_complete;
  Tcb.set_on_eof tcb (fun () -> ());
  tcb

let download stack ~remote ~on_complete () =
  let tcb = Stack.connect stack ~remote () in
  let count = ref 0 in
  let ok = ref true in
  Tcb.set_on_data tcb (fun d ->
      String.iteri
        (fun i c -> if c <> stream_byte (!count + i) then ok := false)
        d;
      count := !count + String.length d);
  Tcb.set_on_eof tcb (fun () ->
      Tcb.close tcb;
      on_complete ~bytes_received:!count ~ok:!ok);
  tcb

let request_reply stack ~remote ~expect ~on_reply () =
  let tcb = Stack.connect stack ~remote () in
  let count = ref 0 in
  Tcb.set_on_established tcb (fun () -> ignore (Tcb.send tcb "PING"));
  Tcb.set_on_data tcb (fun d ->
      count := !count + String.length d;
      if !count >= expect then on_reply ());
  tcb
