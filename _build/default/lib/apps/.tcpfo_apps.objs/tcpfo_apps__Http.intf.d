lib/apps/http.mli: Tcpfo_core Tcpfo_packet Tcpfo_tcp
