lib/apps/store.ml: Hashtbl Lineproto List Printf String Tcpfo_core Tcpfo_tcp
