lib/apps/lineproto.mli:
