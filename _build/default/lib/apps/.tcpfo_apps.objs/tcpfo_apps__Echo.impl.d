lib/apps/echo.ml: Tcpfo_core Tcpfo_tcp
