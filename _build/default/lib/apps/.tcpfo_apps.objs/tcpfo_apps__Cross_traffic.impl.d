lib/apps/cross_traffic.ml: String Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_util
