lib/apps/bulk.mli: Tcpfo_core Tcpfo_packet Tcpfo_tcp
