lib/apps/http.ml: Buffer List Printf String Tcpfo_core Tcpfo_tcp
