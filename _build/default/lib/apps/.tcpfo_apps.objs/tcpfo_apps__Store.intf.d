lib/apps/store.mli: Tcpfo_core Tcpfo_tcp
