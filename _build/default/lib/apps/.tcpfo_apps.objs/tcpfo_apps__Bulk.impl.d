lib/apps/bulk.ml: Char Option String Tcpfo_core Tcpfo_tcp
