lib/apps/ftp.ml: Buffer Hashtbl Lineproto List Option Printf String Tcpfo_packet Tcpfo_tcp
