lib/apps/echo.mli: Tcpfo_core Tcpfo_tcp
