lib/apps/cross_traffic.mli: Tcpfo_net Tcpfo_sim Tcpfo_util
