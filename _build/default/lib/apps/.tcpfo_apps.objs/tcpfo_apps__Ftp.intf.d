lib/apps/ftp.mli: Tcpfo_packet Tcpfo_tcp
