lib/apps/lineproto.ml: Buffer String
