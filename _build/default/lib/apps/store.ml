module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb

type item = { name : string; price : int; mutable stock : int }

type t = { items : item list }

let create spec =
  { items = List.map (fun (name, price, stock) -> { name; price; stock }) spec }

let inventory t = t.items

let find t name = List.find_opt (fun i -> i.name = name) t.items

let respond tcb s = ignore (Tcb.send tcb (Lineproto.line s))

let handle_line t tcb line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "LIST" ] ->
    List.iter
      (fun i ->
        respond tcb (Printf.sprintf "ITEM %s %d %d" i.name i.price i.stock))
      t.items;
    respond tcb "."
  | [ "BUY"; name; qty ] -> (
    match (find t name, int_of_string_opt qty) with
    | Some item, Some qty when qty > 0 ->
      if item.stock >= qty then begin
        item.stock <- item.stock - qty;
        respond tcb
          (Printf.sprintf "OK %s %d %d" item.name qty (item.price * qty))
      end
      else respond tcb "ERR out-of-stock"
    | Some _, _ -> respond tcb "ERR bad-quantity"
    | None, _ -> respond tcb "ERR no-such-item")
  | [ "QUIT" ] ->
    respond tcb "BYE";
    Tcb.close tcb
  | _ -> respond tcb "ERR bad-command"

let attach t tcb =
  let lines = Lineproto.create ~on_line:(fun l -> handle_line t tcb l) in
  Tcb.set_on_data tcb (fun d -> Lineproto.feed lines d);
  Tcb.set_on_eof tcb (fun () -> Tcb.close tcb)

let serve t stack ~port =
  Stack.listen stack ~port ~on_accept:(fun tcb -> attach t tcb)

let serve_replicated ~inventory repl ~port =
  (* one independent but identical store instance per replica: both see
     the same inputs in the same order, so their states stay identical *)
  let stores = Hashtbl.create 2 in
  let store_for role =
    match Hashtbl.find_opt stores role with
    | Some s -> s
    | None ->
      let s = create inventory in
      Hashtbl.replace stores role s;
      s
  in
  Tcpfo_core.Replicated.listen repl ~port ~on_accept:(fun ~role tcb ->
      attach (store_for role) tcb)
