(** The paper's motivating example (§1): an on-line store, deterministic
    per connection.

    Line protocol:
    - ["LIST"] → one line per item: ["ITEM <name> <price> <stock>"],
      then ["."];
    - ["BUY <name> <qty>"] → ["OK <name> <qty> <total-price>"] or
      ["ERR out-of-stock"] / ["ERR no-such-item"];
    - ["QUIT"] → ["BYE"] and close.

    Both replicas must be created with the same inventory; processing is a
    pure function of the connection's input stream and the (shared,
    deterministically updated) inventory state, satisfying the paper's
    per-connection determinism requirement. *)

type item = { name : string; price : int; mutable stock : int }

type t

val create : (string * int * int) list -> t
(** [(name, price, stock)] inventory. *)

val inventory : t -> item list

val serve : t -> Tcpfo_tcp.Stack.t -> port:int -> unit

val serve_replicated :
  inventory:(string * int * int) list ->
  Tcpfo_core.Replicated.t ->
  port:int ->
  unit
(** Instantiate an identical store on each replica. *)
