(** CRLF/LF line framing over a TCP byte stream — shared by the FTP and
    store applications.  Deterministic: output depends only on the
    cumulative stream, never on TCP chunk boundaries, which is what the
    paper's active-replication model requires of server applications. *)

type t

val create : on_line:(string -> unit) -> t
(** [on_line] receives each complete line, terminator stripped. *)

val feed : t -> string -> unit
(** Feed a received chunk; fires [on_line] zero or more times. *)

val pending : t -> string
(** Bytes buffered after the last complete line. *)

val line : string -> string
(** [line s] is [s ^ "\r\n"] — the send-side framing. *)
