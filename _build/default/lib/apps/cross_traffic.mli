(** Competing WAN traffic generator for the FTP experiment (paper §9:
    "measurements over a wide-area network are highly dependent on
    competing traffic and on packet loss rates").

    Injects raw IP datagrams into both directions of a point-to-point
    link as a Poisson process, consuming a configurable share of its
    bandwidth. *)

type t

val start :
  Tcpfo_sim.Engine.t ->
  Tcpfo_net.Link.t ->
  rng:Tcpfo_util.Rng.t ->
  load:float ->
  link_bandwidth_bps:int ->
  ?packet_size:int ->
  unit ->
  t
(** [load] is the target utilization fraction in each direction (e.g. 0.3
    for 30 %); datagrams are [packet_size] bytes (default 900). *)

val stop : t -> unit
val packets_injected : t -> int
