module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Link = Tcpfo_net.Link
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet

type t = {
  engine : Engine.t;
  link : Link.t;
  rng : Rng.t;
  mean_gap_ns : float;
  packet_size : int;
  mutable running : bool;
  mutable injected : int;
}

let noise_src = Ipaddr.of_string "203.0.113.1"
let noise_dst = Ipaddr.of_string "203.0.113.2"

let mk_packet t =
  Ipv4_packet.make ~src:noise_src ~dst:noise_dst
    (Ipv4_packet.Raw { proto = 200; data = String.make t.packet_size 'n' })

let rec arm t ep =
  if t.running then begin
    let gap = Rng.exponential t.rng ~mean:t.mean_gap_ns in
    ignore
      (Engine.schedule t.engine
         ~delay:(int_of_float gap)
         (fun () ->
           if t.running then begin
             t.injected <- t.injected + 1;
             Link.send ep (mk_packet t);
             arm t ep
           end))
  end

let start engine link ~rng ~load ~link_bandwidth_bps ?(packet_size = 900) () =
  let bits = (packet_size + 20) * 8 in
  let pps = load *. float_of_int link_bandwidth_bps /. float_of_int bits in
  let mean_gap_ns = 1e9 /. pps in
  let t =
    { engine; link; rng; mean_gap_ns; packet_size; running = true;
      injected = 0 }
  in
  arm t (Link.endpoint_a link);
  arm t (Link.endpoint_b link);
  t

let stop t = t.running <- false
let packets_injected t = t.injected
