(** Echo server: every received byte is sent straight back.  The simplest
    deterministic service — used by examples and latency tests. *)

val serve : Tcpfo_tcp.Stack.t -> port:int -> unit
(** Listen on [port] and echo on every accepted connection.  The server
    half-closes when the client does. *)

val serve_replicated : Tcpfo_core.Replicated.t -> port:int -> unit
(** Run the echo service identically on both replicas. *)
