(** A File Transfer Protocol subset (RFC 959 active mode), the paper's
    real-world workload (§9, Figure 6).

    The protocol structure is what matters for TCP failover: a control
    connection to port 21 (client-initiated) and, for every transfer, a
    *server-initiated* data connection from port 20 to the client's
    announced port — exercising §7.2 through the bridge when the server is
    replicated.

    Supported commands: USER, PASS, PORT, RETR, STOR, QUIT. *)

module Server : sig
  type files = {
    get : string -> string option;
    put : string -> string -> unit;
  }

  val in_memory : (string * string) list -> files
  (** A deterministic in-memory file store (both replicas must serve
      identical content). *)

  val serve :
    Tcpfo_tcp.Stack.t ->
    bind:Tcpfo_packet.Ipaddr.t ->
    ?ctrl_port:int ->
    ?data_port:int ->
    files:files ->
    unit ->
    unit
  (** Listen on [ctrl_port] (default 21); open data connections from
      [bind]:[data_port] (default 20).  For a replicated server, call this
      on both replicas with [bind] set to the service address and register
      ports 21 and 20 as failover ports. *)
end

module Client : sig
  type t

  val connect :
    Tcpfo_tcp.Stack.t ->
    server:Tcpfo_packet.Ipaddr.t * int ->
    local_addr:Tcpfo_packet.Ipaddr.t ->
    ?user:string ->
    ?password:string ->
    on_ready:(t -> unit) ->
    unit ->
    t
  (** Open the control connection and log in; [on_ready] fires after the
      230 response. *)

  val get :
    t ->
    string ->
    ?on_data_conn:(unit -> unit) ->
    on_done:(string option -> unit) ->
    unit ->
    unit
  (** Download a file ([None] = server error reply).  One transfer at a
      time; queued otherwise.  [on_data_conn] fires when the server's data
      connection reaches us — the instant transfer timing starts in the
      paper's client-side rate measurements (§9, Fig. 6). *)

  val put :
    t ->
    string ->
    string ->
    ?on_data_conn:(unit -> unit) ->
    ?on_buffered:(unit -> unit) ->
    on_done:(bool -> unit) ->
    unit ->
    unit
  (** Upload.  [on_buffered] fires when the last byte has been accepted by
      the data socket's send buffer — which is when a real FTP client's
      write loop finishes and what its reported "rate" reflects for files
      smaller than the socket buffer (the paper's anomalously high put
      rates for small files, Fig. 6). *)

  val quit : t -> unit
end
