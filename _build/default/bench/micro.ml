(* Microbenchmarks (bechamel) of the hot paths: ones-complement checksum
   (full vs incremental — the §3.1 claim that the bridge's rewrite is
   cheap), wire codec, sequence arithmetic, the interval buffer that backs
   both TCP reassembly and the bridge output queues, and the simulator
   core. *)

open Bechamel
open Toolkit
module Seq32 = Tcpfo_util.Seq32
module Checksum = Tcpfo_util.Checksum
module Interval_buf = Tcpfo_util.Interval_buf
module Heap = Tcpfo_util.Heap
module Wire = Tcpfo_packet.Wire
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Engine = Tcpfo_sim.Engine

let ip_a = Ipaddr.of_string "10.0.0.1"
let ip_b = Ipaddr.of_string "10.0.0.10"
let ip_c = Ipaddr.of_string "10.0.0.2"

let payload_1460 = String.init 1460 (fun i -> Char.chr (i land 0xFF))
let frame_bytes =
  Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b
    (Seg.make ~payload:payload_1460 ~src_port:80 ~dst_port:5000
       ~seq:(Seq32.of_int 42) ())

let test_checksum_full =
  Test.make ~name:"checksum/full-1460B" (Staged.stage (fun () ->
      ignore (Checksum.of_bytes frame_bytes)))

let test_checksum_incremental =
  Test.make ~name:"checksum/incremental-rewrite" (Staged.stage (fun () ->
      ignore
        (Checksum.adjust32 0x1234 ~old32:(Ipaddr.to_int ip_b)
           ~new32:(Ipaddr.to_int ip_c))))

let test_encode =
  let seg =
    Seg.make ~payload:payload_1460 ~src_port:80 ~dst_port:5000
      ~seq:(Seq32.of_int 42) ()
  in
  Test.make ~name:"wire/encode-1460B" (Staged.stage (fun () ->
      ignore (Wire.encode_tcp ~src_ip:ip_a ~dst_ip:ip_b seg)))

let test_decode =
  Test.make ~name:"wire/decode-1460B" (Staged.stage (fun () ->
      ignore (Wire.decode_tcp ~src_ip:ip_a ~dst_ip:ip_b frame_bytes)))

let test_seq32 =
  let s = Seq32.of_int 0xFFFFFF00 in
  Test.make ~name:"seq32/add+compare" (Staged.stage (fun () ->
      ignore (Seq32.lt s (Seq32.add s 1460))))

let test_interval_buf =
  (* one bridge matching step: insert a segment on both queues and pop the
     common prefix *)
  Test.make ~name:"interval_buf/insert+pop-1460B"
    (Staged.stage (fun () ->
         let b = Interval_buf.create ~base:(Seq32.of_int 1000) in
         Interval_buf.insert b ~seq:(Seq32.of_int 1000) payload_1460;
         ignore (Interval_buf.pop b ~max_len:1460)))

let test_heap =
  Test.make ~name:"heap/push-pop-64" (Staged.stage (fun () ->
      let h = Heap.create () in
      for i = 0 to 63 do
        Heap.push h ~prio:((i * 37) land 255) i
      done;
      let rec drain () = match Heap.pop h with Some _ -> drain () | None -> () in
      drain ()))

let test_engine =
  Test.make ~name:"engine/schedule+run-100"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 1 to 100 do
           ignore (Engine.schedule e ~delay:i (fun () -> ()))
         done;
         Engine.run e))

let all_tests =
  Test.make_grouped ~name:"micro"
    [
      test_checksum_full;
      test_checksum_incremental;
      test_encode;
      test_decode;
      test_seq32;
      test_interval_buf;
      test_heap;
      test_engine;
    ]

let run_exp () =
  Harness.print_header "Microbenchmarks (bechamel, monotonic clock)";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] all_tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        let ns =
          match Analyze.OLS.estimates res with
          | Some [ v ] -> v
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-40s %14s\n" "benchmark" "ns/run";
  List.iter (fun (name, ns) -> Printf.printf "%-40s %14.1f\n" name ns) rows;
  flush stdout
