bench/exp_chain.ml: Harness List Printf String Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp Tcpfo_util
