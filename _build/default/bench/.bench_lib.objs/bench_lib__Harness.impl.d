bench/harness.ml: List Printf String Tcpfo_core Tcpfo_host Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util
