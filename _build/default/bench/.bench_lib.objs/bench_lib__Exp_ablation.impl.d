bench/exp_ablation.ml: Buffer Char Harness Hashtbl List Printf String Tcpfo_core Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util
