bench/exp_fig6.ml: Harness Hashtbl List Option Printf String Tcpfo_apps Tcpfo_core Tcpfo_host Tcpfo_net Tcpfo_packet Tcpfo_sim
