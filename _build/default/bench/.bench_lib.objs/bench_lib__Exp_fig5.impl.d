bench/exp_fig5.ml: Harness Printf String Tcpfo_apps Tcpfo_host Tcpfo_sim Tcpfo_tcp
