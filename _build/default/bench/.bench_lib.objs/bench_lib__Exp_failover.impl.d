bench/exp_failover.ml: Buffer Char Harness List Printf String Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp Tcpfo_util
