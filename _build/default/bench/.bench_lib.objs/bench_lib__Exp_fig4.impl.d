bench/exp_fig4.ml: Harness List Option Printf String Tcpfo_apps Tcpfo_host Tcpfo_sim Tcpfo_tcp
