bench/micro.ml: Analyze Bechamel Benchmark Char Harness Hashtbl Instance List Measure Printf Staged String Tcpfo_packet Tcpfo_sim Tcpfo_util Test Time Toolkit
