bench/exp_setup.ml: Harness List Printf Tcpfo_host Tcpfo_sim Tcpfo_tcp
