bench/exp_fig3.ml: Harness List Option Printf Tcpfo_host Tcpfo_sim Tcpfo_tcp
