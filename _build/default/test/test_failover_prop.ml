(* Property: the client's byte stream is exactly preserved no matter WHEN
   the primary (or secondary) dies — the paper's transparency claim,
   quantified over failure times and seeds. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
open Testutil

(* One full run: client uploads [up] and downloads reply [down]; [victim]
   dies at [kill_at] (None = no failure).  Returns true iff the client
   received exactly [down], never saw a reset, and the surviving replica
   received exactly [up]. *)
let run_scenario ~seed ~victim ~kill_at ~up_size ~down_size =
  let up = pattern ~tag:91 up_size in
  let down = pattern ~tag:92 down_size in
  let r = make_repl_lan ~seed () in
  let sinks = ref [] in
  echo_service ~request_size:up_size ~reply_of:(fun _ -> down)
    ~close_after:true r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c up);
  (match kill_at with
  | None -> ()
  | Some t ->
    ignore
      (Engine.schedule (World.engine r.rworld) ~delay:t (fun () ->
           match victim with
           | `Primary -> Replicated.kill_primary r.repl
           | `Secondary -> Replicated.kill_secondary r.repl)));
  World.run r.rworld ~for_:(Time.sec 180.0);
  let survivor = match victim with `Primary -> `Secondary | `Secondary -> `Primary in
  let survivor_ok =
    match kill_at with
    | None -> true
    | Some _ -> (
      match List.assoc_opt survivor !sinks with
      | Some s -> sink_contents s = up
      | None -> false)
  in
  sink_contents csink = down && csink.resets = 0 && csink.eof && survivor_ok

let prop_primary_any_time =
  QCheck.Test.make ~name:"client stream exact for any primary-kill time"
    ~count:12
    QCheck.(pair (int_bound 10_000) (int_range 0 150_000))
    (fun (seed, kill_us) ->
      run_scenario ~seed ~victim:`Primary
        ~kill_at:(Some (Time.us kill_us))
        ~up_size:60_000 ~down_size:120_000)

let prop_secondary_any_time =
  QCheck.Test.make ~name:"client stream exact for any secondary-kill time"
    ~count:12
    QCheck.(pair (int_bound 10_000) (int_range 0 150_000))
    (fun (seed, kill_us) ->
      run_scenario ~seed ~victim:`Secondary
        ~kill_at:(Some (Time.us kill_us))
        ~up_size:60_000 ~down_size:120_000)

let prop_no_failure_baseline =
  QCheck.Test.make ~name:"baseline (no failure) stream exact" ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      run_scenario ~seed ~victim:`Primary ~kill_at:None ~up_size:30_000
        ~down_size:50_000)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_no_failure_baseline; prop_primary_any_time;
      prop_secondary_any_time ]

(* Hostile WAN: the client reaches the replicated pair through a link
   that drops, duplicates and reorders packets.  TCP must heal it all and
   the bridge must stay transparent — with and without a failover. *)
let hostile_run ~seed ~kill_primary =
  let world = World.create ~seed () in
  let lan = World.make_lan world () in
  let wan =
    Tcpfo_net.Link.create (World.engine world) ~rng:(World.fresh_rng world)
      {
        Tcpfo_net.Link.bandwidth_bps = 8_000_000;
        delay = Time.ms 8;
        jitter = Time.ms 2;
        loss_prob = 0.02;
        dup_prob = 0.02;
        reorder_prob = 0.05;
        queue_capacity = 64;
      }
  in
  let router =
    World.add_router world lan ~lan_addr:"10.0.0.254" ~wan_link:wan
      ~wan_addr:"192.168.0.1" ()
  in
  let client = World.add_wan_client world ~wan_link:wan ~addr:"192.168.0.2" () in
  let primary = World.add_host world lan ~name:"primary" ~addr:"10.0.0.1" () in
  let secondary =
    World.add_host world lan ~name:"secondary" ~addr:"10.0.0.2" ()
  in
  let gw = Tcpfo_packet.Ipaddr.of_string "10.0.0.254" in
  Host.set_default_via_lan primary ~gateway:gw;
  Host.set_default_via_lan secondary ~gateway:gw;
  World.warm_arp [ primary; secondary; router ];
  let repl =
    Replicated.create ~primary ~secondary
      ~config:Tcpfo_core.Failover_config.default ()
  in
  let reply = pattern ~tag:95 120_000 in
  let up = pattern ~tag:96 60_000 in
  let upload_seen = ref "" in
  Replicated.listen repl ~port:80 ~on_accept:(fun ~role tcb ->
      let buf = Buffer.create 1024 in
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string buf d;
          if Buffer.length buf = String.length up then begin
            if role = `Secondary then upload_seen := Buffer.contents buf;
            send_all ~close:true tcb reply
          end);
      Tcb.set_on_eof tcb (fun () -> ()));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp client) ~remote:(Replicated.service_addr repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all c up);
  if kill_primary then
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms 400) (fun () ->
           Replicated.kill_primary repl));
  World.run world ~for_:(Time.sec 300.0);
  sink_contents csink = reply && csink.resets = 0
  && (not kill_primary || !upload_seen = up)

let prop_hostile_wan_fault_free =
  QCheck.Test.make ~name:"hostile WAN (loss+dup+reorder), fault-free"
    ~count:5
    QCheck.(int_bound 100_000)
    (fun seed -> hostile_run ~seed ~kill_primary:false)

let prop_hostile_wan_with_failover =
  QCheck.Test.make ~name:"hostile WAN with primary failover" ~count:5
    QCheck.(int_bound 100_000)
    (fun seed -> hostile_run ~seed ~kill_primary:true)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_hostile_wan_fault_free; prop_hostile_wan_with_failover ]
