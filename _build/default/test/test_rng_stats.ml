module Rng = Tcpfo_util.Rng
module Stats = Tcpfo_util.Stats

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Testutil.check_bool "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let v1 = Rng.int64 a and v2 = Rng.int64 c in
  Testutil.check_bool "differ" true (v1 <> v2)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Testutil.check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    Testutil.check_bool "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_bool_extremes () =
  let r = Rng.create ~seed:3 in
  Testutil.check_bool "p=0 never" false (Rng.bool r 0.0);
  Testutil.check_bool "p=1 always" true (Rng.bool r 1.0)

let test_median_odd_even () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  (* nearest-rank median of even-sized sample picks the lower middle *)
  Alcotest.(check (float 1e-9)) "even" 2.0
    (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile 95.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Stats.percentile 1.0 xs)

let test_summary () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.stddev;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.max;
  Testutil.check_int "count" 8 s.count

let test_exponential_mean () =
  let r = Rng.create ~seed:9 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:5.0
  done;
  let m = !acc /. float_of_int n in
  Testutil.check_bool "mean near 5" true (m > 4.5 && m < 5.5)

let suite =
  [
    Alcotest.test_case "rng deterministic by seed" `Quick
      test_rng_deterministic;
    Alcotest.test_case "split yields distinct stream" `Quick
      test_rng_split_independent;
    Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
    Alcotest.test_case "median" `Quick test_median_odd_even;
    Alcotest.test_case "percentile nearest-rank" `Quick test_percentile;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
  ]
