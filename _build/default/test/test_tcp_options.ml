(* RFC 7323 extensions: window scaling and timestamps — on a plain
   connection, over a long fat pipe, and through the failover bridge. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
module Link = Tcpfo_net.Link
module Replicated = Tcpfo_core.Replicated
open Testutil

let big_cfg =
  { Tcp_config.default with
    window_scale = 7;
    send_buf_size = 1 lsl 20;
    recv_buf_size = 1 lsl 20 }

let test_wscale_negotiated () =
  let lan = make_simple_lan ~tcp_config:big_cfg () in
  let server_conn = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "x"));
  World.run lan.world ~for_:(Time.sec 2.0);
  (* after the first data exchange both sides have seen scaled windows *)
  check_bool "client sees window > 64K" true (Tcb.snd_wnd c > 65535);
  match !server_conn with
  | Some s -> check_bool "server too" true (Tcb.snd_wnd s > 65535)
  | None -> Alcotest.fail "no accept"

let test_wscale_requires_both () =
  (* client offers scaling, server does not: both fall back to unscaled *)
  let world = World.create () in
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~tcp_config:big_cfg ()
  in
  let server = World.add_host world lan ~name:"server" ~addr:"10.0.0.1" () in
  World.warm_arp [ client; server ];
  Stack.listen (Host.tcp server) ~port:80 ~on_accept:(fun _ -> ());
  let c = Stack.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "x"));
  World.run world ~for_:(Time.sec 2.0);
  check_bool "unscaled fallback" true (Tcb.snd_wnd c <= 65535)

(* Two hosts joined by a long fat pipe (no router needed): 100 Mb/s,
   30 ms one-way => ~750 KB of bandwidth-delay product. *)
let fat_pipe_transfer ~tcp_config ~size =
  let world = World.create () in
  let link =
    Link.create (World.engine world) ~rng:(World.fresh_rng world)
      { Link.default_config with bandwidth_bps = 100_000_000;
        delay = Time.ms 30; queue_capacity = 2048 }
  in
  let a = Host.create (World.engine world) ~name:"a" ~rng:(World.fresh_rng world)
      ~tcp_config () in
  Host.attach_ptp a (Link.endpoint_a link) ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.1");
  let b = Host.create (World.engine world) ~name:"b" ~rng:(World.fresh_rng world)
      ~tcp_config () in
  Host.attach_ptp b (Link.endpoint_b link) ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.2");
  let received = ref 0 in
  let done_at = ref None in
  Stack.listen (Host.tcp b) ~port:80 ~on_accept:(fun tcb ->
      Tcb.set_on_data tcb (fun d ->
          received := !received + String.length d;
          if !received >= size then done_at := Some (World.now world)));
  let c = Stack.connect (Host.tcp a) ~remote:(Host.addr b, 80) () in
  let t0 = ref Time.zero in
  Tcb.set_on_established c (fun () ->
      t0 := World.now world;
      send_all c (pattern ~tag:70 size));
  World.run world ~for_:(Time.sec 120.0);
  match !done_at with Some t -> Some (t - !t0) | None -> None

let test_wscale_fills_fat_pipe () =
  let size = 3_000_000 in
  let slow = fat_pipe_transfer ~tcp_config:Tcp_config.default ~size in
  let fast = fat_pipe_transfer ~tcp_config:big_cfg ~size in
  match (slow, fast) with
  | Some slow, Some fast ->
    (* without scaling the 64K window caps at ~1 MB/s on a 60 ms RTT; with
       scaling the pipe fills.  Expect a large speedup. *)
    check_bool
      (Printf.sprintf "scaling much faster (slow=%dms fast=%dms)"
         (slow / 1_000_000) (fast / 1_000_000))
      true
      (float_of_int slow /. float_of_int fast > 3.0)
  | _ -> Alcotest.fail "transfer incomplete"

let ts_cfg = { Tcp_config.default with timestamps = true }

let test_timestamps_rtt_measured () =
  let lan = make_simple_lan ~tcp_config:ts_cfg () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:71 200_000));
  World.run lan.world ~for_:(Time.sec 10.0);
  check_bool "negotiated" true (Tcb.timestamps_enabled c);
  check_string "content" (pattern ~tag:71 200_000) (sink_contents ssink);
  match Tcb.srtt c with
  | Some rtt ->
    check_bool
      (Printf.sprintf "plausible LAN rtt (%.0f us)" (Time.to_us rtt))
      true
      (rtt > Time.us 50 && rtt < Time.ms 50)
  | None -> Alcotest.fail "no RTT sample"

let test_timestamps_one_sided_off () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let client =
    World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~tcp_config:ts_cfg ()
  in
  let server = World.add_host world lan ~name:"server" ~addr:"10.0.0.1" () in
  World.warm_arp [ client; server ];
  Stack.listen (Host.tcp server) ~port:80 ~on_accept:(fun _ -> ());
  let c = Stack.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  World.run world ~for_:(Time.sec 1.0);
  check_bool "not negotiated" false (Tcb.timestamps_enabled c)

let test_options_through_bridge_with_failover () =
  (* scaling + timestamps on every host, replicas with different shifts:
     the bridge announces min(shift) and rides the secondary's timestamp
     clock; the stream survives a failover byte-exact *)
  let mk ws =
    { Tcp_config.default with
      window_scale = ws;
      timestamps = true;
      send_buf_size = 1 lsl 20;
      recv_buf_size = 1 lsl 20 }
  in
  let r =
    make_repl_lan ~client_tcp_config:(mk 7) ~primary_tcp_config:(mk 7)
      ~secondary_tcp_config:(mk 3) ()
  in
  let reply = pattern ~tag:72 400_000 in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 30) (fun () ->
         Replicated.kill_primary r.repl));
  run_repl r ~for_sec:90.0;
  check_bool "client negotiated ts" true (Tcb.timestamps_enabled c);
  check_string "byte-exact with options + failover" reply
    (sink_contents csink);
  check_int "no reset" 0 csink.resets;
  (* merged shift is min(7,3)=3: the client can still see >64K windows *)
  check_bool "scaled window visible" true (Tcb.snd_wnd c > 65535)

let suite =
  [
    Alcotest.test_case "window scale negotiated" `Quick
      test_wscale_negotiated;
    Alcotest.test_case "window scale requires both sides" `Quick
      test_wscale_requires_both;
    Alcotest.test_case "scaling fills a long fat pipe" `Quick
      test_wscale_fills_fat_pipe;
    Alcotest.test_case "timestamps measure RTT" `Quick
      test_timestamps_rtt_measured;
    Alcotest.test_case "timestamps require both sides" `Quick
      test_timestamps_one_sided_off;
    Alcotest.test_case "options through bridge with failover" `Quick
      test_options_through_bridge_with_failover;
  ]

(* ---------------- SACK ---------------- *)

let sack_cfg = { Tcp_config.default with sack = true }

let test_sack_behaviour_under_scattered_loss () =
  (* Under scattered loss, SACK blocks must appear on the wire, the
     transfer must stay byte-exact, and the SACK sender must transmit no
     more segments than the plain one.  (No *speed* assertion: this
     stack's RTO recovery rewinds to snd_una, paces at cwnd=1 and snaps
     snd_nxt forward on every cumulative ack, so it already avoids
     go-back-N waste — SACK's remaining benefit here is the multi-hole
     recovery burst, which scattered single-hole-per-flight loss does not
     exhibit reliably.) *)
  let sack_seen = ref 0 in
  let run ~sack =
    let cfg = { Tcp_config.default with sack; fast_retransmit = false } in
    let world = World.create () in
    let link =
      Link.create (World.engine world) ~rng:(World.fresh_rng world)
        { Link.default_config with bandwidth_bps = 50_000_000;
          delay = Time.ms 20; queue_capacity = 2048 }
    in
    let a = Host.create (World.engine world) ~name:"a"
        ~rng:(World.fresh_rng world) ~tcp_config:cfg () in
    Host.attach_ptp a (Link.endpoint_a link)
      ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.1");
    let b = Host.create (World.engine world) ~name:"b"
        ~rng:(World.fresh_rng world) ~tcp_config:cfg () in
    Host.attach_ptp b (Link.endpoint_b link)
      ~addr:(Tcpfo_packet.Ipaddr.of_string "192.168.1.2");
    (* drop scattered first-transmission data segments at b; count SACK
       blocks heading back to a *)
    let seen = ref 0 in
    let seqs = Hashtbl.create 64 in
    Tcpfo_ip.Ip_layer.set_rx_hook (Host.ip b)
      (Some (fun pkt ~link_addressed:_ ->
           match pkt.Tcpfo_packet.Ipv4_packet.payload with
           | Tcp seg
             when String.length seg.payload > 0
                  && not (Hashtbl.mem seqs (Tcpfo_util.Seq32.to_int seg.seq))
             ->
             Hashtbl.replace seqs (Tcpfo_util.Seq32.to_int seg.seq) ();
             incr seen;
             if !seen mod 7 = 3 && !seen < 60 then
               Tcpfo_ip.Ip_layer.Rx_drop
             else Tcpfo_ip.Ip_layer.Rx_pass pkt
           | _ -> Tcpfo_ip.Ip_layer.Rx_pass pkt));
    Tcpfo_ip.Ip_layer.set_rx_hook (Host.ip a)
      (Some (fun pkt ~link_addressed:_ ->
           (match pkt.Tcpfo_packet.Ipv4_packet.payload with
           | Tcp seg when Tcpfo_packet.Tcp_segment.sack_option seg <> None ->
             incr sack_seen
           | _ -> ());
           Tcpfo_ip.Ip_layer.Rx_pass pkt));
    let size = 120_000 in
    let data = pattern ~tag:73 size in
    let buf = Buffer.create size in
    let done_at = ref None in
    Stack.listen (Host.tcp b) ~port:80 ~on_accept:(fun tcb ->
        Tcb.set_on_data tcb (fun d ->
            Buffer.add_string buf d;
            if Buffer.length buf >= size then done_at := Some (World.now world)));
    let c = Stack.connect (Host.tcp a) ~remote:(Host.addr b, 80) () in
    Tcb.set_on_established c (fun () -> send_all c data);
    World.run world ~for_:(Time.sec 60.0);
    check_string "stream exact under scattered loss" data (Buffer.contents buf);
    (Tcb.segments_out c, Tcb.sack_enabled c)
  in
  let segs_plain, neg_plain = run ~sack:false in
  let before = !sack_seen in
  let segs_sack, neg_sack = run ~sack:true in
  check_bool "plain did not negotiate" false neg_plain;
  check_bool "sack negotiated" true neg_sack;
  check_int "no sack blocks on plain run" 0 before;
  check_bool
    (Printf.sprintf "sack blocks on the wire (%d)" (!sack_seen - before))
    true
    (!sack_seen - before > 3);
  (* segment counts stay in the same ballpark; with only two reportable
     blocks the sender may still resend unreported islands, so an exact
     inequality is not guaranteed *)
  check_bool
    (Printf.sprintf "segment counts comparable (%d vs %d)" segs_sack
       segs_plain)
    true
    (float_of_int segs_sack /. float_of_int segs_plain < 1.25)

let test_sack_requires_both () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let client = World.add_host world lan ~name:"client" ~addr:"10.0.0.10"
      ~tcp_config:sack_cfg () in
  let server = World.add_host world lan ~name:"server" ~addr:"10.0.0.1" () in
  World.warm_arp [ client; server ];
  let ssink = make_sink () in
  Stack.listen (Host.tcp server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c = Stack.connect (Host.tcp client) ~remote:(Host.addr server, 80) () in
  Tcb.set_on_established c (fun () -> send_all c (pattern ~tag:74 30_000));
  World.run world ~for_:(Time.sec 10.0);
  (* no negotiation, but everything still works *)
  check_string "stream fine without sack" (pattern ~tag:74 30_000)
    (sink_contents ssink)

let test_sack_through_bridge_failover () =
  (* all parties SACK-enabled; merged segments dropped at the client force
     the client to emit SACK blocks, which the bridge must translate into
     the primary's sequence space; then the primary dies *)
  let mk = { Tcp_config.default with sack = true; timestamps = true } in
  let r =
    make_repl_lan ~client_tcp_config:mk ~primary_tcp_config:mk
      ~secondary_tcp_config:mk ()
  in
  let reply = pattern ~tag:75 400_000 in
  let sinks = ref [] in
  echo_service ~request_size:3 ~reply_of:(fun _ -> reply) ~close_after:true
    r.repl ~port:80 ~sinks ();
  (* drop a couple of merged data segments at the client to create holes *)
  let drops = ref 0 in
  let _ =
    drop_rx r.rclient ~pred:(fun pkt ->
        match pkt.Ipv4_packet.payload with
        | Tcp seg
          when String.length seg.payload > 1000 && !drops < 2
               && Tcpfo_util.Seq32.to_int seg.seq land 0x7 = 0 ->
          incr drops;
          true
        | _ -> false)
  in
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Tcpfo_core.Replicated.service_addr r.repl, 80)
      ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get"));
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 40) (fun () ->
         Tcpfo_core.Replicated.kill_primary r.repl));
  run_repl r ~for_sec:90.0;
  check_string "byte-exact with sack + failover" reply (sink_contents csink);
  check_int "no reset" 0 csink.resets

let suite =
  suite
  @ [
      Alcotest.test_case "sack behaviour under scattered loss" `Quick
        test_sack_behaviour_under_scattered_loss;
      Alcotest.test_case "sack requires both sides" `Quick
        test_sack_requires_both;
      Alcotest.test_case "sack through bridge with failover" `Quick
        test_sack_through_bridge_failover;
    ]

(* ---------------- keepalive ---------------- *)

let test_keepalive_probes_dead_peer () =
  let ka_cfg =
    { Tcp_config.default with
      keepalive = Some (Time.sec 5.0);
      keepalive_probes = 3 }
  in
  let lan = make_simple_lan ~tcp_config:ka_cfg () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun _ -> ());
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let resets = ref 0 in
  Tcb.set_on_reset c (fun () -> incr resets);
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "hi"));
  (* connection goes fully idle; then the server host dies silently *)
  World.run lan.world ~for_:(Time.sec 2.0);
  Host.kill lan.server;
  World.run lan.world ~for_:(Time.sec 60.0);
  check_int "keepalive detected the dead peer" 1 !resets;
  check_bool "closed" true (Tcb.state c = Tcb.Closed);
  (* detection takes at least interval + probes * interval *)
  check_bool "not before the probe schedule" true
    (World.now lan.world >= Time.sec 20.0)

let test_keepalive_alive_peer_untouched () =
  let ka_cfg =
    { Tcp_config.default with
      keepalive = Some (Time.sec 3.0);
      keepalive_probes = 2 }
  in
  let lan = make_simple_lan ~tcp_config:ka_cfg () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let resets = ref 0 in
  Tcb.set_on_reset c (fun () -> incr resets);
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "hi"));
  (* a healthy but silent peer: probes are answered, connection stays up *)
  World.run lan.world ~for_:(Time.sec 120.0);
  check_int "no reset" 0 !resets;
  check_bool "still established" true (Tcb.state c = Tcb.Established);
  check_string "data fine" "hi" (sink_contents ssink)

let suite =
  suite
  @ [
      Alcotest.test_case "keepalive detects dead peer" `Quick
        test_keepalive_probes_dead_peer;
      Alcotest.test_case "keepalive leaves live peer alone" `Quick
        test_keepalive_alive_peer_untouched;
    ]
