module Interval_buf = Tcpfo_util.Interval_buf
module Seq32 = Tcpfo_util.Seq32

let base100 () = Interval_buf.create ~base:(Seq32.of_int 100)

let test_in_order () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 100) "abc";
  Testutil.check_int "contig" 3 (Interval_buf.contiguous_length b);
  Testutil.check_string "pop" "abc" (Interval_buf.pop b ~max_len:10);
  Testutil.check_int "base moved" 103 (Seq32.to_int (Interval_buf.base b))

let test_gap_then_fill () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 105) "xyz";
  Testutil.check_int "gap blocks" 0 (Interval_buf.contiguous_length b);
  Testutil.check_int "buffered" 3 (Interval_buf.total_buffered b);
  Interval_buf.insert b ~seq:(Seq32.of_int 100) "abcde";
  Testutil.check_int "filled" 8 (Interval_buf.contiguous_length b);
  Testutil.check_string "pop all" "abcdexyz" (Interval_buf.pop b ~max_len:100)

let test_overlap_first_write_wins () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 100) "AAAA";
  Interval_buf.insert b ~seq:(Seq32.of_int 102) "bbbb";
  Testutil.check_string "overlap" "AAAAbb" (Interval_buf.pop b ~max_len:100)

let test_clip_below_base () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 95) "0123456789";
  (* bytes 95..99 clipped; 100..104 = "56789" *)
  Testutil.check_string "clipped" "56789" (Interval_buf.pop b ~max_len:100)

let test_drop () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 100) "abcdef";
  Interval_buf.drop b ~len:4;
  Testutil.check_string "rest" "ef" (Interval_buf.pop b ~max_len:100)

let test_has_byte () =
  let b = base100 () in
  Interval_buf.insert b ~seq:(Seq32.of_int 105) "xy";
  Testutil.check_bool "at 105" true (Interval_buf.has_byte b (Seq32.of_int 105));
  Testutil.check_bool "at 107" false (Interval_buf.has_byte b (Seq32.of_int 107));
  Testutil.check_bool "below base" false (Interval_buf.has_byte b (Seq32.of_int 99))

let test_wraparound () =
  let near_top = Seq32.of_int 0xFFFF_FFFD in
  let b = Interval_buf.create ~base:near_top in
  Interval_buf.insert b ~seq:near_top "012345";
  Testutil.check_string "across wrap" "012345" (Interval_buf.pop b ~max_len:100);
  Testutil.check_int "base wrapped" 3 (Seq32.to_int (Interval_buf.base b))

(* Property: inserting arbitrary (possibly overlapping, out of order)
   chunks of one master string at their true offsets always reassembles to
   a prefix of the master string, and reassembles completely if the chunks
   cover it. *)
let prop_reassembly =
  let gen =
    QCheck.Gen.(
      let* len = int_range 1 400 in
      let master = String.init len (fun i -> Char.chr (65 + (i mod 26))) in
      let* n = int_range 1 30 in
      let* chunks =
        list_repeat n
          (let* off = int_range 0 (len - 1) in
           let* clen = int_range 1 (len - off) in
           return (off, clen))
      in
      return (master, chunks))
  in
  QCheck.Test.make ~name:"reassembly yields prefix of master" ~count:300
    (QCheck.make gen) (fun (master, chunks) ->
      let base = Seq32.of_int 5000 in
      let b = Interval_buf.create ~base in
      List.iter
        (fun (off, clen) ->
          Interval_buf.insert b ~seq:(Seq32.add base off)
            (String.sub master off clen))
        chunks;
      let out = Interval_buf.pop b ~max_len:max_int in
      String.length out <= String.length master
      && String.sub master 0 (String.length out) = out)

let prop_full_cover =
  let gen =
    QCheck.Gen.(
      let* len = int_range 1 300 in
      let master = String.init len (fun i -> Char.chr (48 + (i mod 10))) in
      (* random permutation of consecutive chunks *)
      let* sizes =
        let rec cut acc remaining =
          if remaining = 0 then return (List.rev acc)
          else
            let* c = int_range 1 remaining in
            cut (c :: acc) (remaining - c)
        in
        cut [] len
      in
      let offs =
        List.rev
          (snd
             (List.fold_left
                (fun (off, acc) sz -> (off + sz, (off, sz) :: acc))
                (0, []) sizes))
      in
      let* shuffled = shuffle_l offs in
      return (master, shuffled))
  in
  QCheck.Test.make ~name:"covering chunks reassemble exactly" ~count:300
    (QCheck.make gen) (fun (master, chunks) ->
      let base = Seq32.of_int 0xFFFF_FF00 (* crosses the wrap *) in
      let b = Interval_buf.create ~base in
      List.iter
        (fun (off, clen) ->
          Interval_buf.insert b ~seq:(Seq32.add base off)
            (String.sub master off clen))
        chunks;
      Interval_buf.pop b ~max_len:max_int = master)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "in-order insert/pop" `Quick test_in_order;
    Alcotest.test_case "gap blocks, fill releases" `Quick test_gap_then_fill;
    Alcotest.test_case "overlap: first write wins" `Quick
      test_overlap_first_write_wins;
    Alcotest.test_case "bytes below base are clipped" `Quick
      test_clip_below_base;
    Alcotest.test_case "drop advances base" `Quick test_drop;
    Alcotest.test_case "has_byte island query" `Quick test_has_byte;
    Alcotest.test_case "sequence wraparound" `Quick test_wraparound;
    q prop_reassembly;
    q prop_full_cover;
  ]
