module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ip_layer = Tcpfo_ip.Ip_layer
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Medium = Tcpfo_net.Medium
open Testutil

(* Install an rx filter on [host] that drops packets matching [pred], up
   to [count] times. *)
let drop_incoming host ~count ~pred =
  let remaining = ref count in
  Ip_layer.set_rx_hook (Host.ip host)
    (Some
       (fun pkt ~link_addressed:_ ->
         if !remaining > 0 && pred pkt then begin
           decr remaining;
           Ip_layer.Rx_drop
         end
         else Ip_layer.Rx_pass pkt));
  remaining

let is_tcp_data (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg -> String.length seg.payload > 0
  | Heartbeat _ | Raw _ -> false

let is_tcp_ack_only (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg ->
    String.length seg.payload = 0
    && seg.flags.ack && (not seg.flags.syn) && not seg.flags.fin
  | Heartbeat _ | Raw _ -> false

let is_syn (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg -> seg.flags.syn
  | Heartbeat _ | Raw _ -> false

let setup_transfer ?tcp_config data =
  let lan = make_simple_lan ?tcp_config () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let connect () =
    let c =
      Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80)
        ()
    in
    Tcb.set_on_established c (fun () -> send_all ~close:true c data);
    c
  in
  (lan, ssink, connect)

let test_lost_data_segment_retransmitted () =
  let data = pattern ~tag:1 8000 in
  let lan, ssink, connect = setup_transfer data in
  let _ = drop_incoming lan.server ~count:1 ~pred:is_tcp_data in
  let c = connect () in
  World.run_until_idle lan.world;
  check_string "healed" data (sink_contents ssink);
  check_bool "retransmitted" true (Tcb.retransmits c >= 1)

let test_lost_syn () =
  let data = pattern ~tag:2 500 in
  let lan, ssink, connect = setup_transfer data in
  let _ = drop_incoming lan.server ~count:1 ~pred:is_syn in
  let t0 = World.now lan.world in
  let c = connect () in
  World.run_until_idle lan.world;
  check_string "established after syn loss" data (sink_contents ssink);
  check_bool "syn retransmitted" true (Tcb.retransmits c >= 1);
  (* initial RTO is 1 s: the recovery should have taken at least that *)
  check_bool "waited an RTO" true (World.now lan.world - t0 >= Time.sec 1.0)

let test_lost_synack () =
  let data = pattern ~tag:3 500 in
  let lan, ssink, connect = setup_transfer data in
  (* drop the SYN-ACK arriving at the client *)
  let _ = drop_incoming lan.client ~count:1 ~pred:is_syn in
  let _c = connect () in
  World.run_until_idle lan.world;
  check_string "established after synack loss" data (sink_contents ssink)

let test_lost_ack_recovered_by_later_acks () =
  (* pure ACK loss during bulk flow is masked by cumulative acks *)
  let data = pattern ~tag:4 60_000 in
  let lan, ssink, connect = setup_transfer data in
  let _ = drop_incoming lan.client ~count:5 ~pred:is_tcp_ack_only in
  let _c = connect () in
  World.run_until_idle lan.world;
  check_string "unharmed" data (sink_contents ssink)

let test_fast_retransmit_on_dupacks () =
  let data = pattern ~tag:5 120_000 in
  let lan, ssink, connect = setup_transfer data in
  let _ = drop_incoming lan.server ~count:1 ~pred:is_tcp_data in
  let t0 = World.now lan.world in
  let c = connect () in
  World.run_until_idle lan.world;
  check_string "healed" data (sink_contents ssink);
  check_bool "recovered" true (Tcb.retransmits c >= 1);
  (* with fast retransmit the whole 120 KB must finish well below the
     1-second initial RTO *)
  check_bool "no RTO stall" true (World.now lan.world - t0 < Time.ms 500)

let test_random_loss_both_directions () =
  let data = pattern ~tag:6 150_000 in
  let medium_config = { Medium.default_config with loss_prob = 0.02 } in
  let lan = make_simple_lan ~medium_config () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_established tcb (fun () ->
          send_all ~close:true tcb (pattern ~tag:7 90_000)));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all ~close:true c data);
  World.run_until_idle lan.world;
  check_string "c->s heals under loss" data (sink_contents ssink);
  check_string "s->c heals under loss" (pattern ~tag:7 90_000)
    (sink_contents csink)

let test_rto_backoff_exponential () =
  (* server dies mid-transfer: client retransmission intervals grow *)
  let data = pattern ~tag:8 200_000 in
  let lan, _ssink, connect = setup_transfer data in
  let c = connect () in
  let resets = ref 0 in
  Tcb.set_on_reset c (fun () -> incr resets);
  ignore
    ((Host.clock lan.client).schedule (Time.ms 10) (fun () ->
         Host.kill lan.server));
  World.run_until_idle lan.world;
  check_bool "eventually reset" true (!resets = 1);
  check_bool "many retransmits" true (Tcb.retransmits c >= 5);
  (* cumulative backoff: must have taken dozens of seconds *)
  check_bool "took a long time" true (World.now lan.world > Time.sec 30.0)

let test_zero_window_persist () =
  (* receiver stops consuming: peer's window closes; sender probes and the
     transfer completes once reads resume. We emulate a slow reader by a
     tiny receive buffer. *)
  let small_rcv =
    { Tcpfo_tcp.Tcp_config.default with recv_buf_size = 2000 }
  in
  let data = pattern ~tag:9 30_000 in
  let lan, ssink, connect = setup_transfer ~tcp_config:small_rcv data in
  let _c = connect () in
  World.run_until_idle lan.world;
  check_string "completes despite tiny window" data (sink_contents ssink)

let suite =
  [
    Alcotest.test_case "lost data segment retransmitted" `Quick
      test_lost_data_segment_retransmitted;
    Alcotest.test_case "lost SYN" `Quick test_lost_syn;
    Alcotest.test_case "lost SYN-ACK" `Quick test_lost_synack;
    Alcotest.test_case "lost pure ACKs masked" `Quick
      test_lost_ack_recovered_by_later_acks;
    Alcotest.test_case "fast retransmit on dupacks" `Quick
      test_fast_retransmit_on_dupacks;
    Alcotest.test_case "random loss both directions heals" `Quick
      test_random_loss_both_directions;
    Alcotest.test_case "RTO backoff until reset" `Quick
      test_rto_backoff_exponential;
    Alcotest.test_case "tiny receive window still completes" `Quick
      test_zero_window_persist;
  ]
