module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Tcp_config = Tcpfo_tcp.Tcp_config
open Testutil

(* Short MSL so TIME_WAIT drains within tests. *)
let fast_close = { Tcp_config.default with msl = Time.ms 50 }

let setup ?(on_server_eof = fun (_ : Tcb.t) -> ()) () =
  let lan = make_simple_lan ~tcp_config:fast_close () in
  let server_conn = ref None in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb;
      wire_sink ssink tcb;
      Tcb.set_on_eof tcb (fun () ->
          ssink.eof <- true;
          on_server_eof tcb));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  wire_sink csink c;
  (lan, c, csink, server_conn, ssink)

let test_active_close_by_client () =
  let lan, c, csink, server_conn, ssink = setup ~on_server_eof:Tcb.close () in
  Tcb.set_on_established c (fun () ->
      ignore (Tcb.send c "bye");
      Tcb.close c);
  World.run_until_idle lan.world;
  check_string "data before fin" "bye" (sink_contents ssink);
  check_bool "server saw eof" true ssink.eof;
  check_bool "client saw eof" true csink.eof;
  check_bool "client gone" true (Tcb.state c = Tcb.Closed);
  (match !server_conn with
  | Some s -> check_bool "server gone" true (Tcb.state s = Tcb.Closed)
  | None -> Alcotest.fail "no conn");
  check_int "no lingering conns client" 0
    (Stack.connection_count (Host.tcp lan.client));
  check_int "no lingering conns server" 0
    (Stack.connection_count (Host.tcp lan.server))

let test_half_close_server_keeps_sending () =
  (* client closes its direction; server continues sending data and the
     client keeps receiving it (half-closed state of §8) *)
  let reply = pattern ~tag:11 20_000 in
  let clock = ref None in
  let lan, c, csink, _server_conn, ssink =
    setup
      ~on_server_eof:(fun s ->
        (* deliberate delay: send the reply only once the client is
           half-closed *)
        match !clock with
        | Some (clk : Tcpfo_sim.Clock.t) ->
          ignore
            (clk.schedule (Time.ms 10) (fun () ->
                 send_all ~close:true s reply))
        | None -> ())
      ()
  in
  clock := Some (Host.clock lan.server);
  Tcb.set_on_established c (fun () ->
      ignore (Tcb.send c "request");
      Tcb.close c);
  World.run_until_idle lan.world;
  check_string "server got request" "request" (sink_contents ssink);
  check_string "client got reply after half-close" reply
    (sink_contents csink);
  check_bool "client fully closed" true (Tcb.state c = Tcb.Closed)

let test_simultaneous_close () =
  let lan, c, csink, server_conn, ssink = setup () in
  Tcb.set_on_established c (fun () ->
      (* both sides close at (almost) the same instant *)
      ignore ((Host.clock lan.client).schedule (Time.ms 5) (fun () -> Tcb.close c));
      ignore
        ((Host.clock lan.server).schedule (Time.ms 5) (fun () ->
             match !server_conn with Some s -> Tcb.close s | None -> ())));
  World.run_until_idle lan.world;
  ignore csink;
  ignore ssink;
  check_bool "client closed" true (Tcb.state c = Tcb.Closed);
  (match !server_conn with
  | Some s -> check_bool "server closed" true (Tcb.state s = Tcb.Closed)
  | None -> Alcotest.fail "no conn");
  check_int "tables empty" 0 (Stack.connection_count (Host.tcp lan.client))

let test_time_wait_holds_then_releases () =
  let lan, c, _csink, server_conn, _ssink =
    setup ~on_server_eof:Tcb.close ()
  in
  ignore server_conn;
  Tcb.set_on_established c (fun () -> Tcb.close c);
  (* run just past the handshake + FINs but before 2*MSL elapses *)
  World.run lan.world ~for_:(Time.ms 30);
  check_bool "client in TIME_WAIT" true (Tcb.state c = Tcb.Time_wait);
  World.run_until_idle lan.world;
  check_bool "released" true (Tcb.state c = Tcb.Closed)

let test_abort_sends_rst () =
  let lan, c, _csink, server_conn, ssink = setup () in
  Tcb.set_on_established c (fun () ->
      ignore
        ((Host.clock lan.client).schedule (Time.ms 2) (fun () -> Tcb.abort c)));
  World.run_until_idle lan.world;
  ignore lan;
  check_bool "client closed" true (Tcb.state c = Tcb.Closed);
  check_bool "server reset" true
    (ssink.resets = 1
    || match !server_conn with Some s -> Tcb.state s = Tcb.Closed | None -> false)

let test_fin_with_data_in_flight () =
  (* close immediately after queueing a large block: all data must still
     arrive before the FIN is processed *)
  let data = pattern ~tag:12 90_000 in
  let lan, c, _csink, server_conn, ssink =
    setup ~on_server_eof:Tcb.close ()
  in
  ignore server_conn;
  Tcb.set_on_established c (fun () -> send_all ~close:true c data);
  World.run_until_idle lan.world;
  check_string "all data before eof" data (sink_contents ssink);
  check_bool "eof" true ssink.eof

let test_send_after_close_rejected () =
  let lan, c, _csink, _server_conn, _ssink =
    setup ~on_server_eof:Tcb.close ()
  in
  Tcb.set_on_established c (fun () ->
      Tcb.close c;
      check_int "send rejected" 0 (Tcb.send c "nope"));
  World.run_until_idle lan.world;
  check_bool "done" true (Tcb.state c = Tcb.Closed || Tcb.state c = Tcb.Time_wait)

let suite =
  [
    Alcotest.test_case "active close, both directions" `Quick
      test_active_close_by_client;
    Alcotest.test_case "half-close: server keeps sending" `Quick
      test_half_close_server_keeps_sending;
    Alcotest.test_case "simultaneous close" `Quick test_simultaneous_close;
    Alcotest.test_case "TIME_WAIT holds then releases" `Quick
      test_time_wait_holds_then_releases;
    Alcotest.test_case "abort sends RST" `Quick test_abort_sends_rst;
    Alcotest.test_case "close with data in flight" `Quick
      test_fin_with_data_in_flight;
    Alcotest.test_case "send after close rejected" `Quick
      test_send_after_close_rejected;
  ]
