module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
open Testutil

(* Transfer [data] client -> server over a fresh LAN; return what the
   server received and both endpoints. *)
let transfer ?medium_config ?tcp_config data =
  let lan = make_simple_lan ?medium_config ?tcp_config () in
  let ssink = make_sink () in
  let server_conn = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb;
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all ~close:true c data);
  World.run_until_idle lan.world;
  (lan, ssink, c, !server_conn)

let test_bulk_one_way () =
  let data = pattern ~tag:1 100_000 in
  let _, ssink, c, _ = transfer data in
  check_int "length" (String.length data)
    (String.length (sink_contents ssink));
  check_string "content" data (sink_contents ssink);
  check_bool "eof delivered" true ssink.eof;
  check_int "no retransmits on clean lan" 0 (Tcb.retransmits c)

let test_larger_than_buffers () =
  (* 1 MB >> 64 KB send buffer: exercises backpressure/on_drain *)
  let data = pattern ~tag:2 1_000_000 in
  let _, ssink, _, _ = transfer data in
  check_int "length" 1_000_000 (String.length (sink_contents ssink));
  check_string "content" data (sink_contents ssink)

let test_segmentation_respects_mss () =
  let data = pattern ~tag:3 50_000 in
  let lan = make_simple_lan () in
  let max_seen = ref 0 in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_data tcb (fun s ->
          Buffer.add_string ssink.buf s;
          max_seen := max !max_seen (String.length s)));
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c data);
  World.run_until_idle lan.world;
  check_int "all arrived" 50_000 (Buffer.length ssink.buf);
  (* deliveries can coalesce in reassembly, but single segments never
     exceed the MSS; verify via the sender's counters *)
  check_bool "many segments" true (Tcb.segments_out c >= 50_000 / 1460)

let test_duplex_transfer () =
  let c2s = pattern ~tag:4 30_000 and s2c = pattern ~tag:5 42_000 in
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb;
      Tcb.set_on_established tcb (fun () -> send_all ~close:true tcb s2c));
  let csink = make_sink () in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> send_all ~close:true c c2s);
  World.run_until_idle lan.world;
  check_string "server received" c2s (sink_contents ssink);
  check_string "client received" s2c (sink_contents csink);
  check_bool "both eof" true (ssink.eof && csink.eof)

let test_throughput_wire_limited () =
  (* 1 MB over an idle 100 Mb/s LAN should take roughly
     payload/wire-rate * overheads: at least 85 ms, at most ~250 ms *)
  let data = pattern ~tag:6 1_000_000 in
  let lan, ssink, _, _ = transfer data in
  let t = Time.to_sec (World.now lan.world) in
  ignore ssink;
  check_bool "not faster than wire" true (t > 0.08);
  check_bool "reasonable efficiency" true (t < 0.4)

let test_delayed_ack_quiescent () =
  (* a single small segment with nothing to piggyback on: the receiver
     must emit a delayed ACK within ~delack_delay and the sender must not
     retransmit *)
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "x"));
  World.run_until_idle lan.world;
  check_string "arrived" "x" (sink_contents ssink);
  check_int "no retransmit" 0 (Tcb.retransmits c);
  check_int "fully acked" 1 (Tcb.bytes_acked c)

let test_interleaved_sends () =
  let lan = make_simple_lan () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  let chunks = List.init 50 (fun i -> pattern ~tag:i (100 + (i * 7))) in
  Tcb.set_on_established c (fun () ->
      List.iteri
        (fun i chunk ->
          ignore
            ((Host.clock lan.client).schedule
               (Time.us (i * 137))
               (fun () -> ignore (Tcb.send c chunk))))
        chunks);
  World.run_until_idle lan.world;
  check_string "stream order preserved" (String.concat "" chunks)
    (sink_contents ssink)

let test_nagle_coalesces () =
  let cfg = { Tcpfo_tcp.Tcp_config.default with nagle = true } in
  let lan = make_simple_lan ~tcp_config:cfg () in
  let ssink = make_sink () in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      wire_sink ssink tcb);
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () ->
      (* many tiny writes in a burst: Nagle should coalesce into far fewer
         segments than writes *)
      for _ = 1 to 100 do
        ignore (Tcb.send c "ab")
      done);
  World.run_until_idle lan.world;
  check_int "all bytes" 200 (String.length (sink_contents ssink));
  check_bool "coalesced" true (Tcb.segments_out c < 50)

let suite =
  [
    Alcotest.test_case "bulk one-way transfer" `Quick test_bulk_one_way;
    Alcotest.test_case "1MB with 64KB buffer backpressure" `Quick
      test_larger_than_buffers;
    Alcotest.test_case "segmentation respects MSS" `Quick
      test_segmentation_respects_mss;
    Alcotest.test_case "full-duplex simultaneous transfer" `Quick
      test_duplex_transfer;
    Alcotest.test_case "throughput wire-limited" `Quick
      test_throughput_wire_limited;
    Alcotest.test_case "delayed ACK on quiescent connection" `Quick
      test_delayed_ack_quiescent;
    Alcotest.test_case "interleaved timed sends keep order" `Quick
      test_interleaved_sends;
    Alcotest.test_case "nagle coalesces tiny writes" `Quick
      test_nagle_coalesces;
  ]

let test_pause_resume_backpressure () =
  (* a paused reader shrinks the advertised window to zero; resuming
     delivers the parked bytes and reopens the window *)
  let lan = make_simple_lan () in
  let delivered = Buffer.create 256 in
  let server_conn = ref None in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      server_conn := Some tcb;
      Tcb.pause_reading tcb;
      Tcb.set_on_data tcb (fun d -> Buffer.add_string delivered d));
  let data = pattern ~tag:60 200_000 in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c data);
  (* run a while: the transfer must stall once the server's 64K buffer
     fills, with nothing delivered to the paused app *)
  World.run lan.world ~for_:(Time.sec 3.0);
  check_int "nothing delivered while paused" 0 (Buffer.length delivered);
  (match !server_conn with
  | Some s ->
    check_bool "bytes parked" true (Tcb.recv_queue_length s > 30_000);
    check_bool "client stalled well short of total" true
      (Tcb.bytes_acked c < 100_000);
    (* resume: parked bytes delivered at once, window reopens, transfer
       completes (zero-window persist probes keep the connection alive) *)
    Tcb.resume_reading s
  | None -> Alcotest.fail "no server conn");
  World.run lan.world ~for_:(Time.sec 60.0);
  check_string "full stream after resume" data (Buffer.contents delivered)

let test_pause_resume_cycles () =
  (* duty-cycled consumer: repeated pause/resume never loses or reorders
     bytes *)
  let lan = make_simple_lan () in
  let delivered = Buffer.create 256 in
  Stack.listen (Host.tcp lan.server) ~port:80 ~on_accept:(fun tcb ->
      Tcb.set_on_data tcb (fun d ->
          Buffer.add_string delivered d;
          Tcb.pause_reading tcb;
          ignore
            ((Host.clock lan.server).schedule (Time.ms 2) (fun () ->
                 Tcb.resume_reading tcb))));
  let data = pattern ~tag:61 150_000 in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 80) ()
  in
  Tcb.set_on_established c (fun () -> send_all c data);
  World.run lan.world ~for_:(Time.sec 60.0);
  check_string "stream exact through duty-cycled reader" data
    (Buffer.contents delivered)

let suite =
  suite
  @ [
      Alcotest.test_case "pause/resume backpressure" `Quick
        test_pause_resume_backpressure;
      Alcotest.test_case "duty-cycled reader keeps stream exact" `Quick
        test_pause_resume_cycles;
    ]
