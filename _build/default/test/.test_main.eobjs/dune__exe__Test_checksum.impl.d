test/test_checksum.ml: Alcotest Bytes Char Gen QCheck QCheck_alcotest String Tcpfo_util Testutil
