test/test_chain.ml: Alcotest Buffer Hashtbl List Printf QCheck QCheck_alcotest String Tcpfo_core Tcpfo_host Tcpfo_sim Tcpfo_tcp Testutil
