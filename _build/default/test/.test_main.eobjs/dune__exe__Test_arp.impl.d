test/test_arp.ml: Alcotest Tcpfo_host Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Testutil
