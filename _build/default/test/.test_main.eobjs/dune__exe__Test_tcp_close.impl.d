test/test_tcp_close.ml: Alcotest Tcpfo_host Tcpfo_sim Tcpfo_tcp Testutil
