test/test_tcp_transfer.ml: Alcotest Buffer List String Tcpfo_host Tcpfo_sim Tcpfo_tcp Testutil
