test/test_tcp_edge.ml: Alcotest Buffer List Printf Tcpfo_host Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util Testutil
