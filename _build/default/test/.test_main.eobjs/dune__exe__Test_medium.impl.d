test/test_medium.ml: Alcotest Array List String Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_util Testutil
