test/test_engine.ml: Alcotest List Tcpfo_sim Testutil
