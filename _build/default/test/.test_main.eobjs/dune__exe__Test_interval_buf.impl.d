test/test_interval_buf.ml: Alcotest Char List QCheck QCheck_alcotest String Tcpfo_util Testutil
