test/test_rangeset.ml: Alcotest Array List Option QCheck QCheck_alcotest Tcpfo_util
