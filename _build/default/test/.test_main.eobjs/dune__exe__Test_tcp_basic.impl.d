test/test_tcp_basic.ml: Alcotest Buffer Tcpfo_host Tcpfo_sim Tcpfo_tcp Tcpfo_util Testutil
