test/test_rng_stats.ml: Alcotest List Tcpfo_util Testutil
