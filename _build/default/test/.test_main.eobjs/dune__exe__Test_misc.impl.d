test/test_misc.ml: Alcotest List String Tcpfo_core Tcpfo_host Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Testutil
