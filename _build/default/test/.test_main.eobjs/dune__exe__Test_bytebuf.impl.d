test/test_bytebuf.ml: Alcotest Buffer List QCheck QCheck_alcotest String Tcpfo_util Testutil
