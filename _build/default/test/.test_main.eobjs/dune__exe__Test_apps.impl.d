test/test_apps.ml: Alcotest Char List QCheck QCheck_alcotest String Tcpfo_apps Tcpfo_core Tcpfo_host Tcpfo_net Tcpfo_sim Tcpfo_tcp Testutil
