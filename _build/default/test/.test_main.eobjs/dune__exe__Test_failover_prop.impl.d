test/test_failover_prop.ml: Buffer List QCheck QCheck_alcotest String Tcpfo_core Tcpfo_host Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Testutil
