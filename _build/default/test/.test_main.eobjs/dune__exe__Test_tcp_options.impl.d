test/test_tcp_options.ml: Alcotest Buffer Hashtbl Ipv4_packet Printf String Tcpfo_core Tcpfo_host Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util Testutil
