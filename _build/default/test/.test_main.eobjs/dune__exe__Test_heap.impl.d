test/test_heap.ml: Alcotest List Option QCheck QCheck_alcotest Tcpfo_util Testutil
