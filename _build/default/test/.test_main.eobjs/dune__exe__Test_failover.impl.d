test/test_failover.ml: Alcotest Buffer List Printf String Tcpfo_core Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_tcp Testutil
