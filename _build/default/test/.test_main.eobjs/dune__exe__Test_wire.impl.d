test/test_wire.ml: Alcotest Bytes Char List QCheck QCheck_alcotest Tcpfo_packet Tcpfo_util Testutil
