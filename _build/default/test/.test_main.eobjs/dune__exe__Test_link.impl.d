test/test_link.ml: Alcotest List Printf String Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_util Testutil
