test/test_bridge_unit.ml: Alcotest Buffer List Printf String Tcpfo_core Tcpfo_host Tcpfo_packet Tcpfo_sim Tcpfo_tcp Tcpfo_util Testutil
