test/test_tcp_loss.ml: Alcotest String Tcpfo_host Tcpfo_ip Tcpfo_net Tcpfo_packet Tcpfo_sim Tcpfo_tcp Testutil
