test/testutil.ml: Alcotest Buffer Char String Tcpfo_core Tcpfo_host Tcpfo_ip Tcpfo_packet Tcpfo_sim Tcpfo_tcp
