test/test_seq32.ml: Alcotest QCheck QCheck_alcotest Tcpfo_util Testutil
