(* Application-layer tests: line framing, echo, bulk helpers, the FTP
   subset (incl. replicated FTP with failover), and the store demo. *)

module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Lineproto = Tcpfo_apps.Lineproto
module Echo = Tcpfo_apps.Echo
module Bulk = Tcpfo_apps.Bulk
module Ftp = Tcpfo_apps.Ftp
module Store = Tcpfo_apps.Store
module Cross_traffic = Tcpfo_apps.Cross_traffic
module Link = Tcpfo_net.Link
open Testutil

(* ---------------- Lineproto ---------------- *)

let test_lineproto_framing () =
  let got = ref [] in
  let lp = Lineproto.create ~on_line:(fun l -> got := l :: !got) in
  Lineproto.feed lp "hello\r\nwor";
  Alcotest.(check (list string)) "first line" [ "hello" ] (List.rev !got);
  Lineproto.feed lp "ld\nlast";
  Alcotest.(check (list string)) "second line" [ "hello"; "world" ]
    (List.rev !got);
  check_string "pending" "last" (Lineproto.pending lp);
  Lineproto.feed lp "\r\n";
  Alcotest.(check (list string)) "third" [ "hello"; "world"; "last" ]
    (List.rev !got)

let test_lineproto_empty_lines () =
  let got = ref [] in
  let lp = Lineproto.create ~on_line:(fun l -> got := l :: !got) in
  Lineproto.feed lp "\n\r\na\n";
  Alcotest.(check (list string)) "empties kept" [ ""; ""; "a" ]
    (List.rev !got)

let prop_lineproto_chunking_irrelevant =
  let gen =
    QCheck.Gen.(
      let* lines =
        list_size (int_range 1 10)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 20))
      in
      let full = String.concat "\r\n" lines ^ "\r\n" in
      let* cuts = list_size (int_range 0 5) (int_range 1 (String.length full)) in
      return (lines, full, List.sort_uniq compare cuts))
  in
  QCheck.Test.make ~name:"framing independent of chunk boundaries" ~count:200
    (QCheck.make gen) (fun (lines, full, cuts) ->
      let got = ref [] in
      let lp = Lineproto.create ~on_line:(fun l -> got := l :: !got) in
      let rec feed_pieces start = function
        | [] -> Lineproto.feed lp (String.sub full start (String.length full - start))
        | c :: rest when c > start && c < String.length full ->
          Lineproto.feed lp (String.sub full start (c - start));
          feed_pieces c rest
        | _ :: rest -> feed_pieces start rest
      in
      feed_pieces 0 cuts;
      List.rev !got = lines)

(* ---------------- Echo & Bulk ---------------- *)

let test_echo_roundtrip () =
  let lan = make_simple_lan () in
  Echo.serve (Host.tcp lan.server) ~port:7;
  let csink = make_sink () in
  let c = Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 7) () in
  wire_sink csink c;
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "ping-pong"));
  World.run_until_idle lan.world;
  check_string "echoed" "ping-pong" (sink_contents csink)

let test_bulk_upload_download () =
  let lan = make_simple_lan () in
  let upload_done = ref false and sink_bytes = ref 0 in
  Bulk.Sink.serve (Host.tcp lan.server) ~port:5001
    ~on_complete:(fun ~bytes_received -> sink_bytes := bytes_received)
    ();
  Bulk.Source.serve (Host.tcp lan.server) ~port:5002 ~size:70_000;
  let _up =
    Bulk.upload (Host.tcp lan.client) ~remote:(Host.addr lan.server, 5001)
      ~size:50_000
      ~on_buffered:(fun () -> ())
      ~on_complete:(fun () -> upload_done := true)
      ()
  in
  let down_bytes = ref 0 and down_ok = ref false in
  let _down =
    Bulk.download (Host.tcp lan.client) ~remote:(Host.addr lan.server, 5002)
      ~on_complete:(fun ~bytes_received ~ok ->
        down_bytes := bytes_received;
        down_ok := ok)
      ()
  in
  World.run lan.world ~for_:(Time.sec 60.0);
  check_bool "upload complete" true !upload_done;
  check_int "sink counted upload" 50_000 !sink_bytes;
  check_int "download size" 70_000 !down_bytes;
  check_bool "download content verified" true !down_ok

let test_rr_reply_size () =
  let lan = make_simple_lan () in
  Bulk.Rr.serve (Host.tcp lan.server) ~port:5003 ~reply_size:12_345;
  let replied = ref false in
  let _c =
    Bulk.request_reply (Host.tcp lan.client)
      ~remote:(Host.addr lan.server, 5003)
      ~expect:12_345
      ~on_reply:(fun () -> replied := true)
      ()
  in
  World.run lan.world ~for_:(Time.sec 10.0);
  check_bool "reply of configured size" true !replied

(* ---------------- FTP ---------------- *)

let make_ftp_lan () =
  let lan = make_simple_lan () in
  let files =
    Ftp.Server.in_memory
      [ ("readme.txt", "hello ftp"); ("big.bin", pattern ~tag:77 120_000) ]
  in
  Ftp.Server.serve (Host.tcp lan.server) ~bind:(Host.addr lan.server) ~files ();
  (lan, files)

let test_ftp_get () =
  let lan, _files = make_ftp_lan () in
  let result = ref None in
  let _c =
    Ftp.Client.connect (Host.tcp lan.client)
      ~server:(Host.addr lan.server, 21)
      ~local_addr:(Host.addr lan.client)
      ~on_ready:(fun t ->
        Ftp.Client.get t "big.bin" ~on_done:(fun r -> result := Some r) ())
      ()
  in
  World.run lan.world ~for_:(Time.sec 30.0);
  match !result with
  | Some (Some content) ->
    check_string "file content exact" (pattern ~tag:77 120_000) content
  | Some None -> Alcotest.fail "server refused"
  | None -> Alcotest.fail "transfer never completed"

let test_ftp_get_missing () =
  let lan, _ = make_ftp_lan () in
  let result = ref None in
  let _c =
    Ftp.Client.connect (Host.tcp lan.client)
      ~server:(Host.addr lan.server, 21)
      ~local_addr:(Host.addr lan.client)
      ~on_ready:(fun t ->
        Ftp.Client.get t "no-such-file" ~on_done:(fun r -> result := Some r) ())
      ()
  in
  World.run lan.world ~for_:(Time.sec 10.0);
  check_bool "550 reported as None" true (!result = Some None)

let test_ftp_put_then_get () =
  let lan, files = make_ftp_lan () in
  let payload = pattern ~tag:78 40_000 in
  let put_ok = ref false and got_back = ref None in
  let _c =
    Ftp.Client.connect (Host.tcp lan.client)
      ~server:(Host.addr lan.server, 21)
      ~local_addr:(Host.addr lan.client)
      ~on_ready:(fun t ->
        Ftp.Client.put t "upload.bin" payload
          ~on_done:(fun ok ->
            put_ok := ok;
            Ftp.Client.get t "upload.bin"
              ~on_done:(fun r -> got_back := Some r)
              ())
          ())
      ()
  in
  World.run lan.world ~for_:(Time.sec 30.0);
  check_bool "put acknowledged" true !put_ok;
  check_bool "stored server-side" true (files.Ftp.Server.get "upload.bin" = Some payload);
  (match !got_back with
  | Some (Some c) -> check_string "get returns what was put" payload c
  | _ -> Alcotest.fail "get-after-put failed")

let test_ftp_sequential_transfers () =
  let lan, _ = make_ftp_lan () in
  let done_count = ref 0 in
  let _c =
    Ftp.Client.connect (Host.tcp lan.client)
      ~server:(Host.addr lan.server, 21)
      ~local_addr:(Host.addr lan.client)
      ~on_ready:(fun t ->
        (* queue three transfers back to back: each uses a fresh
           server-initiated data connection *)
        Ftp.Client.get t "readme.txt" ~on_done:(fun _ -> incr done_count) ();
        Ftp.Client.get t "big.bin" ~on_done:(fun _ -> incr done_count) ();
        Ftp.Client.put t "x.bin" "xyz" ~on_done:(fun _ -> incr done_count) ())
      ()
  in
  World.run lan.world ~for_:(Time.sec 60.0);
  check_int "all three transfers done" 3 !done_count

let test_ftp_replicated_failover_mid_download () =
  (* the paper's full stack: replicated FTP server; primary dies during a
     download; the data and control connections both survive *)
  let r = make_repl_lan () in
  let big = pattern ~tag:79 300_000 in
  let mk_files () = Ftp.Server.in_memory [ ("big.bin", big) ] in
  Tcpfo_core.Failover_config.register_endpoint
    (Tcpfo_core.Replicated.registry r.repl) ~local_port:21;
  Tcpfo_core.Failover_config.register_endpoint
    (Tcpfo_core.Replicated.registry r.repl) ~local_port:20;
  let service = Tcpfo_core.Replicated.service_addr r.repl in
  Ftp.Server.serve (Host.tcp r.primary) ~bind:service ~files:(mk_files ()) ();
  Ftp.Server.serve (Host.tcp r.secondary) ~bind:service ~files:(mk_files ()) ();
  let result = ref None in
  let _c =
    Ftp.Client.connect (Host.tcp r.rclient) ~server:(service, 21)
      ~local_addr:(Host.addr r.rclient)
      ~on_ready:(fun t ->
        Ftp.Client.get t "big.bin" ~on_done:(fun x -> result := Some x) ())
      ()
  in
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 30) (fun () ->
         Tcpfo_core.Replicated.kill_primary r.repl));
  World.run r.rworld ~for_:(Time.sec 60.0);
  match !result with
  | Some (Some content) ->
    check_int "full size across failover" 300_000 (String.length content);
    check_string "byte-exact across failover" big content
  | _ -> Alcotest.fail "download did not complete"

(* ---------------- Store ---------------- *)

let store_session lan ~cmds =
  let replies = ref [] in
  let c =
    Stack.connect (Host.tcp lan.client) ~remote:(Host.addr lan.server, 8080) ()
  in
  let lp = Lineproto.create ~on_line:(fun l -> replies := l :: !replies) in
  Tcb.set_on_data c (fun d -> Lineproto.feed lp d);
  Tcb.set_on_established c (fun () ->
      List.iter (fun cmd -> ignore (Tcb.send c (Lineproto.line cmd))) cmds);
  World.run lan.world ~for_:(Time.sec 5.0);
  List.rev !replies

let test_store_protocol () =
  let lan = make_simple_lan () in
  let store = Store.create [ ("widget", 10, 5); ("gadget", 99, 0) ] in
  Store.serve store (Host.tcp lan.server) ~port:8080;
  let replies =
    store_session lan
      ~cmds:
        [ "LIST"; "BUY widget 2"; "BUY widget 9"; "BUY gadget 1";
          "BUY nothing 1"; "BUY widget 0"; "bogus"; "QUIT" ]
  in
  Alcotest.(check (list string))
    "protocol responses"
    [
      "ITEM widget 10 5"; "ITEM gadget 99 0"; ".";
      "OK widget 2 20";
      "ERR out-of-stock";
      "ERR out-of-stock";
      "ERR no-such-item";
      "ERR bad-quantity";
      "ERR bad-command";
      "BYE";
    ]
    replies;
  check_int "stock decremented" 3
    (List.find (fun (i : Store.item) -> i.name = "widget")
       (Store.inventory store))
      .stock

let test_store_replicated_stays_deterministic () =
  (* both replicas process the same session; after a failover the
     survivor's state reflects all purchases *)
  let r = make_repl_lan () in
  Store.serve_replicated ~inventory:[ ("thing", 5, 10) ] r.repl ~port:8080;
  let replies = ref [] in
  let c =
    Stack.connect (Host.tcp r.rclient)
      ~remote:(Tcpfo_core.Replicated.service_addr r.repl, 8080)
      ()
  in
  let lp = Lineproto.create ~on_line:(fun l -> replies := l :: !replies) in
  Tcb.set_on_data c (fun d -> Lineproto.feed lp d);
  Tcb.set_on_established c (fun () ->
      ignore (Tcb.send c (Lineproto.line "BUY thing 4")));
  World.run r.rworld ~for_:(Time.ms 100);
  Tcpfo_core.Replicated.kill_primary r.repl;
  World.run r.rworld ~for_:(Time.sec 2.0);
  ignore (Tcb.send c (Lineproto.line "BUY thing 4"));
  World.run r.rworld ~for_:(Time.sec 2.0);
  ignore (Tcb.send c (Lineproto.line "BUY thing 4"));
  World.run r.rworld ~for_:(Time.sec 2.0);
  Alcotest.(check (list string))
    "purchases span the failover; third fails on stock"
    [ "OK thing 4 20"; "OK thing 4 20"; "ERR out-of-stock" ]
    (List.rev !replies)

(* ---------------- Cross traffic ---------------- *)

let test_cross_traffic_rate () =
  let world = World.create () in
  let link =
    Link.create (World.engine world) ~rng:(World.fresh_rng world)
      { Link.default_config with bandwidth_bps = 1_000_000 }
  in
  let t =
    Cross_traffic.start (World.engine world) link
      ~rng:(World.fresh_rng world) ~load:0.5 ~link_bandwidth_bps:1_000_000
      ~packet_size:1000 ()
  in
  World.run world ~for_:(Time.sec 10.0);
  Cross_traffic.stop t;
  (* 0.5 load on 1 Mb/s with 1020-byte datagrams in both directions:
     ~61 pps per direction, so ~1226 packets in 10 s; allow wide slack *)
  let n = Cross_traffic.packets_injected t in
  check_bool "plausible injection count" true (n > 800 && n < 1800)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "lineproto framing" `Quick test_lineproto_framing;
    Alcotest.test_case "lineproto empty lines" `Quick
      test_lineproto_empty_lines;
    q prop_lineproto_chunking_irrelevant;
    Alcotest.test_case "echo roundtrip" `Quick test_echo_roundtrip;
    Alcotest.test_case "bulk upload/download drivers" `Quick
      test_bulk_upload_download;
    Alcotest.test_case "request/reply server" `Quick test_rr_reply_size;
    Alcotest.test_case "ftp get" `Quick test_ftp_get;
    Alcotest.test_case "ftp get missing file" `Quick test_ftp_get_missing;
    Alcotest.test_case "ftp put then get" `Quick test_ftp_put_then_get;
    Alcotest.test_case "ftp sequential transfers" `Quick
      test_ftp_sequential_transfers;
    Alcotest.test_case "ftp replicated failover mid-download" `Quick
      test_ftp_replicated_failover_mid_download;
    Alcotest.test_case "store protocol" `Quick test_store_protocol;
    Alcotest.test_case "store deterministic across failover" `Quick
      test_store_replicated_stays_deterministic;
    Alcotest.test_case "cross-traffic injection rate" `Quick
      test_cross_traffic_rate;
  ]

(* ---------------- HTTP ---------------- *)

module Http = Tcpfo_apps.Http

let http_handler (req : Http.request) : Http.response =
  match (req.meth, req.path) with
  | "GET", "/hello" -> Http.ok "hello, world"
  | "GET", "/big" -> Http.ok (pattern ~tag:90 250_000)
  | "POST", "/sum" ->
    let sum =
      String.fold_left (fun a c -> a + Char.code c) 0 req.body
    in
    Http.ok ~headers:[ ("x-kind", "sum") ] (string_of_int sum)
  | _ -> Http.not_found

let test_http_roundtrip () =
  let lan = make_simple_lan () in
  Http.serve (Host.tcp lan.server) ~port:8080 http_handler;
  let r1 = ref None and r2 = ref None and r3 = ref None in
  let _ =
    Http.get (Host.tcp lan.client) ~server:(Host.addr lan.server, 8080)
      ~path:"/hello" ~on_response:(fun r -> r1 := r) ()
  in
  let _ =
    Http.post (Host.tcp lan.client) ~server:(Host.addr lan.server, 8080)
      ~path:"/sum" ~body:"abc" ~on_response:(fun r -> r2 := r) ()
  in
  let _ =
    Http.get (Host.tcp lan.client) ~server:(Host.addr lan.server, 8080)
      ~path:"/nope" ~on_response:(fun r -> r3 := r) ()
  in
  World.run lan.world ~for_:(Time.sec 30.0);
  (match !r1 with
  | Some r ->
    check_int "200" 200 r.Http.status;
    check_string "body" "hello, world" r.Http.resp_body
  | None -> Alcotest.fail "no /hello response");
  (match !r2 with
  | Some r ->
    check_string "sum" (string_of_int (Char.code 'a' + Char.code 'b' + Char.code 'c')) r.Http.resp_body;
    check_bool "custom header" true
      (List.assoc_opt "x-kind" r.Http.resp_headers = Some "sum")
  | None -> Alcotest.fail "no /sum response");
  match !r3 with
  | Some r -> check_int "404" 404 r.Http.status
  | None -> Alcotest.fail "no /nope response"

let test_http_large_body () =
  let lan = make_simple_lan () in
  Http.serve (Host.tcp lan.server) ~port:8080 http_handler;
  let got = ref None in
  let _ =
    Http.get (Host.tcp lan.client) ~server:(Host.addr lan.server, 8080)
      ~path:"/big" ~on_response:(fun r -> got := r) ()
  in
  World.run lan.world ~for_:(Time.sec 30.0);
  match !got with
  | Some r ->
    check_string "250 KB body exact" (pattern ~tag:90 250_000) r.Http.resp_body
  | None -> Alcotest.fail "no response"

let test_http_replicated_failover () =
  (* the paper's motivating scenario: a replicated Web server; the
     primary dies while serving a large response *)
  let r = make_repl_lan () in
  Http.serve_replicated r.repl ~port:8080 http_handler;
  let got = ref None in
  let _ =
    Http.get (Host.tcp r.rclient)
      ~server:(Tcpfo_core.Replicated.service_addr r.repl, 8080)
      ~path:"/big" ~on_response:(fun x -> got := x) ()
  in
  ignore
    (Engine.schedule (World.engine r.rworld) ~delay:(Time.ms 20) (fun () ->
         Tcpfo_core.Replicated.kill_primary r.repl));
  World.run r.rworld ~for_:(Time.sec 60.0);
  match !got with
  | Some resp ->
    check_int "200 across failover" 200 resp.Http.status;
    check_string "body exact across failover" (pattern ~tag:90 250_000)
      resp.Http.resp_body
  | None -> Alcotest.fail "no response across failover"

let test_http_render_parse_roundtrip () =
  let req =
    { Http.meth = "POST"; path = "/x/y?z=1";
      headers = [ ("x-a", "1"); ("x-b", "two words") ]; body = "BODY" }
  in
  let s = Http.render_request req in
  check_bool "request line" true
    (String.length s > 4 && String.sub s 0 4 = "POST");
  check_bool "content-length present" true
    (let lower = String.lowercase_ascii s in
     let rec contains i =
       i + 14 <= String.length lower
       && (String.sub lower i 14 = "content-length" || contains (i + 1))
     in
     contains 0)

let suite =
  suite
  @ [
      Alcotest.test_case "http get/post/404" `Quick test_http_roundtrip;
      Alcotest.test_case "http large body" `Quick test_http_large_body;
      Alcotest.test_case "http replicated failover (paper 1)" `Quick
        test_http_replicated_failover;
      Alcotest.test_case "http render sanity" `Quick
        test_http_render_parse_roundtrip;
    ]
