module Heap = Tcpfo_util.Heap

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p p) [ 5; 1; 4; 2; 3 ];
  let out = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] out

let test_stable_ties () =
  let h = Heap.create () in
  List.iteri (fun i v -> Heap.push h ~prio:7 (i, v)) [ "a"; "b"; "c"; "d" ];
  let out =
    List.init 4 (fun _ -> snd (snd (Option.get (Heap.pop h))))
  in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c"; "d" ] out

let test_empty () =
  let h : int Heap.t = Heap.create () in
  Testutil.check_bool "empty" true (Heap.is_empty h);
  Testutil.check_bool "pop none" true (Heap.pop h = None);
  Testutil.check_bool "peek none" true (Heap.peek_prio h = None)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h ~prio:10 "x";
  Heap.push h ~prio:5 "y";
  Testutil.check_string "min" "y" (snd (Option.get (Heap.pop h)));
  Heap.push h ~prio:1 "z";
  Testutil.check_string "new min" "z" (snd (Option.get (Heap.pop h)));
  Testutil.check_string "rest" "x" (snd (Option.get (Heap.pop h)))

let prop_heap_sort =
  QCheck.Test.make ~name:"pops are sorted & stable" ~count:200
    QCheck.(list (int_bound 1000))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~prio:p (p, i)) prios;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let out = drain [] in
      (* non-decreasing priorities, ties in insertion order *)
      let rec ok = function
        | (p1, i1) :: ((p2, i2) :: _ as rest) ->
          (p1 < p2 || (p1 = p2 && i1 < i2)) && ok rest
        | _ -> true
      in
      List.length out = List.length prios && ok out)

let suite =
  [
    Alcotest.test_case "min-heap ordering" `Quick test_ordering;
    Alcotest.test_case "stable on equal priorities" `Quick test_stable_ties;
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sort;
  ]
