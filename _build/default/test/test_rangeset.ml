module Rangeset = Tcpfo_util.Rangeset
module Seq32 = Tcpfo_util.Seq32

let sq = Seq32.of_int
let pairs t = List.map (fun (a, b) -> (Seq32.to_int a, Seq32.to_int b))
    (Rangeset.ranges t)

let test_add_disjoint () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Rangeset.add t ~lo:(sq 300) ~hi:(sq 400);
  Rangeset.add t ~lo:(sq 10) ~hi:(sq 20);
  Alcotest.(check (list (pair int int))) "sorted disjoint"
    [ (10, 20); (100, 200); (300, 400) ] (pairs t)

let test_merge_overlap () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Rangeset.add t ~lo:(sq 150) ~hi:(sq 250);
  Alcotest.(check (list (pair int int))) "merged" [ (100, 250) ] (pairs t)

let test_merge_bridging () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Rangeset.add t ~lo:(sq 300) ~hi:(sq 400);
  Rangeset.add t ~lo:(sq 150) ~hi:(sq 350);
  Alcotest.(check (list (pair int int))) "bridged" [ (100, 400) ] (pairs t)

let test_adjacent_merge () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Rangeset.add t ~lo:(sq 200) ~hi:(sq 300);
  Alcotest.(check (list (pair int int))) "adjacent merged" [ (100, 300) ]
    (pairs t)

let test_empty_range_ignored () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 100);
  Rangeset.add t ~lo:(sq 200) ~hi:(sq 150);
  Alcotest.(check bool) "still empty" true (Rangeset.is_empty t)

let test_covering_end () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Alcotest.(check (option int)) "inside" (Some 200)
    (Option.map Seq32.to_int (Rangeset.covering_end t (sq 150)));
  Alcotest.(check (option int)) "at lo" (Some 200)
    (Option.map Seq32.to_int (Rangeset.covering_end t (sq 100)));
  Alcotest.(check (option int)) "at hi (exclusive)" None
    (Option.map Seq32.to_int (Rangeset.covering_end t (sq 200)));
  Alcotest.(check (option int)) "outside" None
    (Option.map Seq32.to_int (Rangeset.covering_end t (sq 99)))

let test_clear_below () =
  let t = Rangeset.create () in
  Rangeset.add t ~lo:(sq 100) ~hi:(sq 200);
  Rangeset.add t ~lo:(sq 300) ~hi:(sq 400);
  Rangeset.clear_below t (sq 150);
  Alcotest.(check (list (pair int int))) "trimmed"
    [ (150, 200); (300, 400) ] (pairs t);
  Rangeset.clear_below t (sq 250);
  Alcotest.(check (list (pair int int))) "dropped" [ (300, 400) ] (pairs t)

let test_wraparound () =
  let t = Rangeset.create () in
  let near = Seq32.of_int 0xFFFF_FFF0 in
  Rangeset.add t ~lo:near ~hi:(Seq32.add near 32);
  Alcotest.(check (option bool)) "covers across wrap" (Some true)
    (Option.map (fun _ -> true) (Rangeset.covering_end t (Seq32.add near 20)))

let prop_model =
  (* model-based: compare membership against a naive bool array *)
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (let* lo = int_range 0 480 in
         let* len = int_range 1 40 in
         return (lo, lo + len)))
  in
  QCheck.Test.make ~name:"rangeset matches naive model" ~count:200
    (QCheck.make gen) (fun ranges ->
      let t = Rangeset.create () in
      let model = Array.make 560 false in
      List.iter
        (fun (lo, hi) ->
          Rangeset.add t ~lo:(sq (lo + 1000)) ~hi:(sq (hi + 1000));
          for i = lo to hi - 1 do
            model.(i) <- true
          done)
        ranges;
      let ok = ref true in
      for i = 0 to 559 do
        let covered = Rangeset.covering_end t (sq (i + 1000)) <> None in
        if covered <> model.(i) then ok := false
      done;
      (* ranges list must be sorted and disjoint *)
      let rec disjoint = function
        | (_, h1) :: ((l2, _) :: _ as rest) ->
          Seq32.lt h1 l2 && disjoint rest
        | _ -> true
      in
      !ok && disjoint (Rangeset.ranges t))

let suite =
  [
    Alcotest.test_case "disjoint adds sorted" `Quick test_add_disjoint;
    Alcotest.test_case "overlap merges" `Quick test_merge_overlap;
    Alcotest.test_case "bridging add merges three" `Quick
      test_merge_bridging;
    Alcotest.test_case "adjacent ranges merge" `Quick test_adjacent_merge;
    Alcotest.test_case "empty ranges ignored" `Quick
      test_empty_range_ignored;
    Alcotest.test_case "covering_end boundaries" `Quick test_covering_end;
    Alcotest.test_case "clear_below trims and drops" `Quick
      test_clear_below;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    QCheck_alcotest.to_alcotest prop_model;
  ]
