module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time

let test_fires_in_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(Time.us 30) (fun () -> log := 30 :: !log));
  ignore (Engine.schedule e ~delay:(Time.us 10) (fun () -> log := 10 :: !log));
  ignore (Engine.schedule e ~delay:(Time.us 20) (fun () -> log := 20 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 10; 20; 30 ] (List.rev !log)

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:(Time.us 7) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule e ~delay:(Time.ms 5) (fun () -> seen := Engine.now e));
  Engine.run e;
  Testutil.check_int "now at fire" (Time.ms 5) !seen

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule e ~delay:(Time.us 1) (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Testutil.check_bool "cancelled" false !fired;
  Testutil.check_int "pending" 0 (Engine.pending e)

let test_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:(Time.us 10) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~delay:(Time.us 5) (fun () ->
                log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Testutil.check_int "time" (Time.us 15) (Engine.now e)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:(Time.us 10) (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:(Time.us 100) (fun () -> incr fired));
  Engine.run e ~until:(Time.us 50);
  Testutil.check_int "only first" 1 !fired;
  Testutil.check_int "one pending" 1 (Engine.pending e);
  Engine.run e;
  Testutil.check_int "both" 2 !fired

let test_run_until_idle_advances_clock () =
  let e = Engine.create () in
  Engine.run e ~until:(Time.ms 3);
  Testutil.check_int "clock at until" (Time.ms 3) (Engine.now e)

let test_guarded_clock () =
  let e = Engine.create () in
  let alive = ref true in
  let clock = Tcpfo_sim.Clock.guarded e ~alive:(fun () -> !alive) in
  let fired = ref [] in
  ignore (clock.schedule (Time.us 1) (fun () -> fired := 1 :: !fired));
  ignore (clock.schedule (Time.us 10) (fun () -> fired := 2 :: !fired));
  ignore (Engine.schedule e ~delay:(Time.us 5) (fun () -> alive := false));
  Engine.run e;
  Alcotest.(check (list int)) "only pre-death" [ 1 ] (List.rev !fired)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_fires_in_time_order;
    Alcotest.test_case "FIFO at equal time" `Quick test_same_time_fifo;
    Alcotest.test_case "clock advances to event" `Quick test_clock_advances;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "nested scheduling" `Quick test_nested_schedule;
    Alcotest.test_case "run ~until leaves future events" `Quick
      test_run_until;
    Alcotest.test_case "run ~until advances idle clock" `Quick
      test_run_until_idle_advances_clock;
    Alcotest.test_case "guarded clock dies with host" `Quick
      test_guarded_clock;
  ]
