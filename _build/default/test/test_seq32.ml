module Seq32 = Tcpfo_util.Seq32

let top = 0xFFFF_FFFF

let test_add_wraps () =
  Testutil.check_int "wrap" 4 (Seq32.to_int (Seq32.add (Seq32.of_int top) 5));
  Testutil.check_int "zero" 0 (Seq32.to_int (Seq32.add (Seq32.of_int top) 1));
  Testutil.check_int "neg" top (Seq32.to_int (Seq32.add Seq32.zero (-1)))

let test_diff_signed () =
  let a = Seq32.of_int 10 and b = Seq32.of_int (top - 9) in
  (* a is 20 ahead of b across the wrap point *)
  Testutil.check_int "across wrap" 20 (Seq32.diff a b);
  Testutil.check_int "reverse" (-20) (Seq32.diff b a);
  Testutil.check_int "same" 0 (Seq32.diff a a)

let test_ordering_across_wrap () =
  let before = Seq32.of_int (top - 100) in
  let after = Seq32.add before 200 in
  Testutil.check_bool "lt" true (Seq32.lt before after);
  Testutil.check_bool "gt" true (Seq32.gt after before);
  Testutil.check_bool "le self" true (Seq32.le before before);
  Testutil.check_bool "not lt self" false (Seq32.lt before before)

let test_min_max () =
  let a = Seq32.of_int (top - 5) in
  let b = Seq32.add a 10 in
  Testutil.check_int "max" (Seq32.to_int b) (Seq32.to_int (Seq32.max a b));
  Testutil.check_int "min" (Seq32.to_int a) (Seq32.to_int (Seq32.min a b))

let test_between () =
  let low = Seq32.of_int (top - 10) in
  let high = Seq32.add low 20 in
  Testutil.check_bool "in" true
    (Seq32.between ~low ~high (Seq32.add low 5));
  Testutil.check_bool "at low" true (Seq32.between ~low ~high low);
  Testutil.check_bool "at high" false (Seq32.between ~low ~high high);
  Testutil.check_bool "out" false
    (Seq32.between ~low ~high (Seq32.add high 1))

let arb_seq = QCheck.map Seq32.of_int QCheck.(int_bound top)
let arb_delta = QCheck.int_range (-1_000_000) 1_000_000

let prop_add_diff =
  QCheck.Test.make ~name:"diff (add s n) s = n" ~count:500
    (QCheck.pair arb_seq arb_delta)
    (fun (s, n) -> Seq32.diff (Seq32.add s n) s = n)

let prop_ordering_antisym =
  QCheck.Test.make ~name:"lt antisymmetric near" ~count:500
    (QCheck.pair arb_seq (QCheck.int_range 1 1_000_000))
    (fun (s, n) ->
      let s' = Seq32.add s n in
      Seq32.lt s s' && Seq32.gt s' s && not (Seq32.lt s' s))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_int/to_int roundtrip" ~count:500 arb_seq
    (fun s -> Seq32.of_int (Seq32.to_int s) = s)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "add wraps mod 2^32" `Quick test_add_wraps;
    Alcotest.test_case "diff is signed across wrap" `Quick test_diff_signed;
    Alcotest.test_case "ordering across wrap" `Quick
      test_ordering_across_wrap;
    Alcotest.test_case "min/max modular" `Quick test_min_max;
    Alcotest.test_case "between window" `Quick test_between;
    q prop_add_diff;
    q prop_ordering_antisym;
    q prop_roundtrip;
  ]
