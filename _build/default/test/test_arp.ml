module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Ip_layer = Tcpfo_ip.Ip_layer
module Eth_iface = Tcpfo_ip.Eth_iface
module Arp_cache = Tcpfo_ip.Arp_cache
module Nic = Tcpfo_net.Nic

let mk_world () =
  let world = World.create () in
  let lan = World.make_lan world () in
  let a = World.add_host world lan ~name:"a" ~addr:"10.0.0.1" () in
  let b = World.add_host world lan ~name:"b" ~addr:"10.0.0.2" () in
  (world, a, b)

let send_raw host ~dst =
  Ip_layer.send (Host.ip host)
    (Ipv4_packet.make ~src:(Host.addr host) ~dst:(Ipaddr.of_string dst)
       (Ipv4_packet.Raw { proto = 77; data = "ping" }))

let test_resolution_and_delivery () =
  let world, a, b = mk_world () in
  let got = ref 0 in
  Ip_layer.set_raw_handler (Host.ip b) (fun ~src:_ ~proto:_ _ -> incr got);
  (* cold cache: the datagram must trigger ARP, wait, then be delivered *)
  send_raw a ~dst:"10.0.0.2";
  World.run_until_idle world;
  Testutil.check_int "delivered after ARP" 1 !got;
  (* and the binding is now cached both ways (b learned from the request) *)
  let cache_a = Eth_iface.arp_cache (Host.eth a) in
  let cache_b = Eth_iface.arp_cache (Host.eth b) in
  Testutil.check_bool "a cached b" true
    (Arp_cache.lookup cache_a (Host.addr b) <> None);
  Testutil.check_bool "b cached a" true
    (Arp_cache.lookup cache_b (Host.addr a) <> None)

let test_queued_while_resolving () =
  let world, a, b = mk_world () in
  let got = ref 0 in
  Ip_layer.set_raw_handler (Host.ip b) (fun ~src:_ ~proto:_ _ -> incr got);
  send_raw a ~dst:"10.0.0.2";
  send_raw a ~dst:"10.0.0.2";
  send_raw a ~dst:"10.0.0.2";
  World.run_until_idle world;
  Testutil.check_int "all three delivered" 3 !got

let test_unresolvable_dropped () =
  let world, a, _b = mk_world () in
  send_raw a ~dst:"10.0.0.99";
  World.run_until_idle world;
  (* three retries, a second apart, then give up: no crash, nothing
     delivered, simulation drains *)
  Testutil.check_bool "time advanced past retries" true
    (World.now world >= Time.sec 2.0)

let test_gratuitous_arp_rebinds () =
  let world, a, b = mk_world () in
  World.warm_arp [ a; b ];
  let cache_a = Eth_iface.arp_cache (Host.eth a) in
  let mac_b = Nic.mac (Eth_iface.nic (Host.eth b)) in
  (* b takes over 10.0.0.50 and announces it *)
  Eth_iface.add_address (Host.eth b) (Ipaddr.of_string "10.0.0.50");
  World.run_until_idle world;
  (match Arp_cache.lookup cache_a (Ipaddr.of_string "10.0.0.50") with
  | Some m -> Testutil.check_bool "bound to b" true (m = mac_b)
  | None -> Alcotest.fail "gratuitous ARP not learned");
  (* traffic to the alias reaches b *)
  let got = ref 0 in
  Ip_layer.set_raw_handler (Host.ip b) (fun ~src:_ ~proto:_ _ -> incr got);
  send_raw a ~dst:"10.0.0.50";
  World.run_until_idle world;
  Testutil.check_int "alias reachable" 1 !got

let test_takeover_rebinding_after_death () =
  (* The IP-takeover core: c talks to p; p dies; s assumes p's address; c's
     next datagrams flow to s after the gratuitous ARP. *)
  let world = World.create () in
  let lan = World.make_lan world () in
  let c = World.add_host world lan ~name:"c" ~addr:"10.0.0.10" () in
  let p = World.add_host world lan ~name:"p" ~addr:"10.0.0.1" () in
  let s = World.add_host world lan ~name:"s" ~addr:"10.0.0.2" () in
  World.warm_arp [ c; p; s ];
  let at_p = ref 0 and at_s = ref 0 in
  Ip_layer.set_raw_handler (Host.ip p) (fun ~src:_ ~proto:_ _ -> incr at_p);
  Ip_layer.set_raw_handler (Host.ip s) (fun ~src:_ ~proto:_ _ -> incr at_s);
  send_raw c ~dst:"10.0.0.1";
  World.run_until_idle world;
  Testutil.check_int "p got it" 1 !at_p;
  Host.kill p;
  Eth_iface.add_address (Host.eth s) (Ipaddr.of_string "10.0.0.1");
  World.run_until_idle world;
  send_raw c ~dst:"10.0.0.1";
  World.run_until_idle world;
  Testutil.check_int "p unchanged" 1 !at_p;
  Testutil.check_int "s received takeover traffic" 1 !at_s

let test_forwarding_router () =
  (* wan client -> router -> lan host *)
  let world = World.create () in
  let lan = World.make_lan world () in
  let wan =
    Tcpfo_net.Link.create (World.engine world)
      ~rng:(World.fresh_rng world) Tcpfo_net.Link.default_config
  in
  let server = World.add_host world lan ~name:"srv" ~addr:"10.0.0.1" () in
  let router =
    World.add_router world lan ~lan_addr:"10.0.0.254" ~wan_link:wan
      ~wan_addr:"192.168.0.1" ()
  in
  let client = World.add_wan_client world ~wan_link:wan ~addr:"192.168.0.2" () in
  (* server needs a route back to the WAN client *)
  Host.set_default_via_lan server ~gateway:(Ipaddr.of_string "10.0.0.254");
  ignore router;
  let got = ref 0 in
  Ip_layer.set_raw_handler (Host.ip server) (fun ~src ~proto:_ _ ->
      incr got;
      (* reply back across the router *)
      if !got = 1 then
        Ip_layer.send (Host.ip server)
          (Ipv4_packet.make ~src:(Host.addr server) ~dst:src
             (Ipv4_packet.Raw { proto = 78; data = "pong" })));
  let ponged = ref 0 in
  Ip_layer.set_raw_handler (Host.ip client) (fun ~src:_ ~proto:_ _ ->
      incr ponged);
  send_raw client ~dst:"10.0.0.1";
  World.run_until_idle world;
  Testutil.check_int "forwarded to lan" 1 !got;
  Testutil.check_int "reply forwarded back" 1 !ponged

let suite =
  [
    Alcotest.test_case "cold-cache resolution and delivery" `Quick
      test_resolution_and_delivery;
    Alcotest.test_case "datagrams queued during resolution" `Quick
      test_queued_while_resolving;
    Alcotest.test_case "unresolvable address gives up" `Quick
      test_unresolvable_dropped;
    Alcotest.test_case "gratuitous ARP rebinds alias" `Quick
      test_gratuitous_arp_rebinds;
    Alcotest.test_case "IP takeover after host death" `Quick
      test_takeover_rebinding_after_death;
    Alcotest.test_case "router forwards both ways" `Quick
      test_forwarding_router;
  ]
