(** Scoped observability handle: one {!Registry} + one {!Event.Bus} plus
    a dotted name prefix.

    A world owns the root handle; each layer derives a narrower scope
    ([Obs.scope obs "tcp"]) so instrument names compose hierarchically
    ([host.a.tcp.retransmits]) without any layer knowing the full path.
    Components take an optional [?obs] argument and default to
    {!silent}, so unit tests that don't care about metrics pay nothing
    and pass nothing. *)

type t

val create : unit -> t
(** Fresh registry + bus, empty prefix. *)

val silent : unit -> t
(** Alias of {!create} — a private sink for components constructed
    without an explicit handle. *)

val scope : t -> string -> t
(** [scope obs seg] shares the registry and bus, with [seg] appended to
    the name prefix. *)

val root : t -> t
(** Same registry and bus with the prefix cleared — for components that
    own an absolute name space (e.g. [bridge.primary.*]) regardless of
    which host they run on. *)

val name : t -> string -> string
(** Fully-qualified instrument name under this scope's prefix. *)

val metrics : t -> Registry.t
val bus : t -> Event.Bus.t

val counter : t -> string -> Registry.counter
val gauge : t -> string -> Registry.gauge
val histogram : t -> string -> Registry.histogram
(** Create-or-get the instrument named [name t s] in the shared
    registry. *)

val tracing : t -> bool
(** [Event.Bus.active (bus t)] — guard before constructing events. *)

val emit : t -> at:Tcpfo_sim.Time.t -> Event.t -> unit
