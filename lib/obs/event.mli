(** Structured trace events.

    Typed replacement for the old printf [Trace] layer: each interesting
    action in the simulation (segment motion, bridge divert/merge/hold,
    failover phases, ARP takeover) is a constructor carrying the values
    a consumer would otherwise have to parse back out of a log line.

    Events flow through a {!Bus}.  Emission sites are expected to guard
    on {!Bus.active} before building the event value, so a bus with no
    subscribers costs one load and a branch. *)

type failover_phase =
  | Detected  (** heartbeat loss noticed *)
  | Takeover_started  (** survivor begins promoting held state *)
  | Takeover_complete  (** survivor owns the connections *)
  | Degraded  (** primary continues without a backup (paper §6) *)
  | Reintegrated  (** a fresh backup has been merged back in *)

type t =
  | Segment_tx of { host : string; dst : Tcpfo_packet.Ipaddr.t; seg : Tcpfo_packet.Tcp_segment.t }
      (** A host's IP layer handed a TCP segment to the wire. *)
  | Segment_rx of { host : string; src : Tcpfo_packet.Ipaddr.t; seg : Tcpfo_packet.Tcp_segment.t }
      (** A host's IP layer delivered a TCP segment upward. *)
  | Segment_drop of { host : string; reason : string; seg : Tcpfo_packet.Tcp_segment.t }
      (** A segment was deliberately discarded (e.g. data racing ahead of
          an unmerged SYN at the primary bridge). *)
  | Divert of { host : string; orig_dst : Tcpfo_packet.Ipaddr.t; seg : Tcpfo_packet.Tcp_segment.t }
      (** The secondary snooped a client segment and re-addressed it to
          the primary with an [Orig_dst] option (paper §3.1). *)
  | Merge of { host : string; port : int; bytes : int }
      (** The primary merged twin SYN/data replicas for a server port. *)
  | Hold of { host : string; bytes : int }
      (** The secondary buffered payload bytes pending the joint ACK. *)
  | Failover of { host : string; phase : failover_phase }
  | Arp_takeover of { host : string; ip : Tcpfo_packet.Ipaddr.t }
      (** Gratuitous ARP rebinding a service IP to a new MAC (paper §5). *)
  | Weight_shift of { shard : string; weight : int; reason : string }
      (** The dispatcher tier moved a shard's routing weight — hera-style
          gradual shifting on degradation ([reason = "decay"]), probe
          loss ([reason = "probe-timeout"]), or post-restore ramp-up
          ([reason = "ramp"]). *)

val pp : Format.formatter -> t -> unit
(** One-line rendering, e.g. ["secondary divert 10.0.0.2 5000->80 S seq=.."]. *)

val is_segment : t -> bool
(** [Segment_tx]/[Segment_rx] — the high-volume events, so consumers can
    cheaply keep only the interesting control-plane ones. *)

module Bus : sig
  type event = t

  type t
  (** A set of subscribers.  One bus serves a whole simulated world. *)

  type sub

  val create : unit -> t

  val active : t -> bool
  (** [true] iff at least one subscriber is attached.  Emission sites
      check this before constructing event values, which is what makes
      tracing free when nobody listens. *)

  val subscribe : t -> (at:Tcpfo_sim.Time.t -> event -> unit) -> sub
  val unsubscribe : t -> sub -> unit

  val emit : t -> at:Tcpfo_sim.Time.t -> event -> unit
  (** Deliver to all subscribers in subscription order.  Cheap no-op when
      inactive, but callers on hot paths should still guard with
      {!active} to avoid building the event. *)

  val attach_console :
    ?out:Format.formatter -> ?filter:(event -> bool) -> t -> sub
  (** Subscribe a printer writing ["[<time>] <event>"] lines, one per
      event passing [filter] (default: everything).  [out] defaults to
      stderr. *)
end
