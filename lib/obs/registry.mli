(** Central metrics registry: named counters, gauges and histograms with
    hierarchical dotted names ([tcp.retransmits], [medium.collisions],
    [bridge.primary.held_bytes], ...).

    One registry typically serves a whole simulated world; every layer
    registers its instruments at creation time and holds on to the
    returned handles, so the hot path is a plain field update — no name
    lookup, no allocation.

    Instruments are create-or-get: registering the same name twice (same
    kind) returns the same instrument, which is what lets several
    instances of a component (two bridges in a chain, N NICs) aggregate
    into one series, and lets a reinstalled component continue its
    counts.  Registering an existing name with a different kind raises
    [Invalid_argument].

    Snapshots are deterministic: instruments are rendered sorted by name,
    so two runs with the same seed produce byte-identical JSON. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
  val value : counter -> int
end

module Gauge : sig
  val set : gauge -> int -> unit
  val add : gauge -> int -> unit
  val value : gauge -> int
end

module Histogram : sig
  val observe : histogram -> float -> unit
  val count : histogram -> int

  val summary : histogram -> Tcpfo_util.Stats.summary option
  (** [None] when no observation has been recorded. *)
end

(** {2 Lookups by name}

    For tests and end-of-run reporting; absent names read as zero/empty
    rather than raising, so assertions read naturally. *)

val counter_value : t -> string -> int
val gauge_value : t -> string -> int
val histogram_summary : t -> string -> Tcpfo_util.Stats.summary option

val names : t -> string list
(** All registered instrument names, sorted. *)

val to_json : t -> string
(** Machine-readable snapshot:
    [{"counters":{...},"gauges":{...},"histograms":{...}}], keys sorted,
    single line.  Byte-identical across runs with identical inputs. *)

val dump : t -> string
(** Human-readable snapshot, one [name value] line per instrument,
    sorted by name. *)
