type t = { metrics : Registry.t; bus : Event.Bus.t; prefix : string }

let create () = { metrics = Registry.create (); bus = Event.Bus.create (); prefix = "" }
let silent = create
let scope t seg = { t with prefix = (if t.prefix = "" then seg else t.prefix ^ "." ^ seg) }
let root t = { t with prefix = "" }
let name t s = if t.prefix = "" then s else t.prefix ^ "." ^ s
let metrics t = t.metrics
let bus t = t.bus
let counter t s = Registry.counter t.metrics (name t s)
let gauge t s = Registry.gauge t.metrics (name t s)
let histogram t s = Registry.histogram t.metrics (name t s)
let tracing t = Event.Bus.active t.bus
let emit t ~at ev = Event.Bus.emit t.bus ~at ev
