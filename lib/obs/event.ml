module Ipaddr = Tcpfo_packet.Ipaddr
module Tcp_segment = Tcpfo_packet.Tcp_segment
module Time = Tcpfo_sim.Time

type failover_phase =
  | Detected
  | Takeover_started
  | Takeover_complete
  | Degraded
  | Reintegrated

type t =
  | Segment_tx of { host : string; dst : Ipaddr.t; seg : Tcp_segment.t }
  | Segment_rx of { host : string; src : Ipaddr.t; seg : Tcp_segment.t }
  | Segment_drop of { host : string; reason : string; seg : Tcp_segment.t }
  | Divert of { host : string; orig_dst : Ipaddr.t; seg : Tcp_segment.t }
  | Merge of { host : string; port : int; bytes : int }
  | Hold of { host : string; bytes : int }
  | Failover of { host : string; phase : failover_phase }
  | Arp_takeover of { host : string; ip : Ipaddr.t }
  | Weight_shift of { shard : string; weight : int; reason : string }

let phase_to_string = function
  | Detected -> "detected"
  | Takeover_started -> "takeover-started"
  | Takeover_complete -> "takeover-complete"
  | Degraded -> "degraded"
  | Reintegrated -> "reintegrated"

let pp fmt = function
  | Segment_tx { host; dst; seg } ->
    Format.fprintf fmt "%s tx -> %a %a" host Ipaddr.pp dst Tcp_segment.pp seg
  | Segment_rx { host; src; seg } ->
    Format.fprintf fmt "%s rx <- %a %a" host Ipaddr.pp src Tcp_segment.pp seg
  | Segment_drop { host; reason; seg } ->
    Format.fprintf fmt "%s drop (%s) %a" host reason Tcp_segment.pp seg
  | Divert { host; orig_dst; seg } ->
    Format.fprintf fmt "%s divert orig-dst=%a %a" host Ipaddr.pp orig_dst
      Tcp_segment.pp seg
  | Merge { host; port; bytes } ->
    Format.fprintf fmt "%s merge port=%d bytes=%d" host port bytes
  | Hold { host; bytes } -> Format.fprintf fmt "%s hold bytes=%d" host bytes
  | Failover { host; phase } ->
    Format.fprintf fmt "%s failover %s" host (phase_to_string phase)
  | Arp_takeover { host; ip } ->
    Format.fprintf fmt "%s arp-takeover %a" host Ipaddr.pp ip
  | Weight_shift { shard; weight; reason } ->
    Format.fprintf fmt "dispatch shard=%s weight=%d (%s)" shard weight reason

let is_segment = function
  | Segment_tx _ | Segment_rx _ -> true
  | Segment_drop _ | Divert _ | Merge _ | Hold _ | Failover _
  | Arp_takeover _ | Weight_shift _ ->
    false

module Bus = struct
  type event = t
  type sub = { id : int; handler : at:Time.t -> event -> unit }

  type t = {
    mutable subs : sub list; (* subscription order *)
    mutable next_id : int;
  }

  let create () = { subs = []; next_id = 0 }
  let active t = t.subs <> []

  let subscribe t handler =
    let s = { id = t.next_id; handler } in
    t.next_id <- t.next_id + 1;
    t.subs <- t.subs @ [ s ];
    s

  let unsubscribe t s = t.subs <- List.filter (fun s' -> s'.id <> s.id) t.subs

  let emit t ~at ev =
    match t.subs with
    | [] -> ()
    | subs -> List.iter (fun s -> s.handler ~at ev) subs

  let attach_console ?(out = Format.err_formatter) ?(filter = fun _ -> true) t
      =
    subscribe t (fun ~at ev ->
        if filter ev then
          Format.fprintf out "[%a] %a@." Time.pp at pp ev)
end
