module Stats = Tcpfo_util.Stats

type counter = { mutable c : int }
type gauge = { mutable g : int }

type histogram = {
  mutable samples : float list; (* newest first *)
  mutable n : int;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let register t name make describe =
  match Hashtbl.find_opt t.tbl name with
  | None ->
    let i = make () in
    Hashtbl.replace t.tbl name i;
    i
  | Some i -> describe i

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Registry.%s: %S is already registered as another kind"
       want name)

let counter t name =
  match
    register t name
      (fun () -> C { c = 0 })
      (function C _ as i -> i | G _ | H _ -> kind_error name "counter")
  with
  | C c -> c
  | G _ | H _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> G { g = 0 })
      (function G _ as i -> i | C _ | H _ -> kind_error name "gauge")
  with
  | G g -> g
  | C _ | H _ -> assert false

let histogram t name =
  match
    register t name
      (fun () -> H { samples = []; n = 0 })
      (function H _ as i -> i | C _ | G _ -> kind_error name "histogram")
  with
  | H h -> h
  | C _ | G _ -> assert false

module Counter = struct
  let incr c = c.c <- c.c + 1
  let add c n = c.c <- c.c + n
  let value c = c.c
end

module Gauge = struct
  let set g v = g.g <- v
  let add g v = g.g <- g.g + v
  let value g = g.g
end

module Histogram = struct
  let observe h v =
    h.samples <- v :: h.samples;
    h.n <- h.n + 1

  let count h = h.n
  let summary h = if h.n = 0 then None else Some (Stats.summarize h.samples)
end

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (C c) -> c.c | _ -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with Some (G g) -> g.g | _ -> 0

let histogram_summary t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> Histogram.summary h
  | _ -> None

let sorted_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let names t = List.map fst (sorted_bindings t)

(* ------------------------------------------------------------------ *)
(* Rendering.  Hand-rolled JSON: names are dotted identifiers (no
   escaping beyond the standard string rules), values are ints and
   finite floats. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, render) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape k);
      Buffer.add_string b "\":";
      render b)
    fields;
  Buffer.add_char b '}'

let summary_fields (s : Stats.summary) =
  [
    ("count", fun b -> Buffer.add_string b (string_of_int s.count));
    ("mean", fun b -> Buffer.add_string b (json_float s.mean));
    ("min", fun b -> Buffer.add_string b (json_float s.min));
    ("p25", fun b -> Buffer.add_string b (json_float s.p25));
    ("p50", fun b -> Buffer.add_string b (json_float s.median));
    ("p75", fun b -> Buffer.add_string b (json_float s.p75));
    ("p95", fun b -> Buffer.add_string b (json_float s.p95));
    ("max", fun b -> Buffer.add_string b (json_float s.max));
  ]

let to_json t =
  let bindings = sorted_bindings t in
  let pick f = List.filter_map f bindings in
  let counters =
    pick (function k, C c -> Some (k, c.c) | _ -> None)
  and gauges = pick (function k, G g -> Some (k, g.g) | _ -> None)
  and hists = pick (function k, H h -> Some (k, h) | _ -> None) in
  let b = Buffer.create 1024 in
  obj b
    [
      ( "counters",
        fun b ->
          obj b
            (List.map
               (fun (k, v) ->
                 (k, fun b -> Buffer.add_string b (string_of_int v)))
               counters) );
      ( "gauges",
        fun b ->
          obj b
            (List.map
               (fun (k, v) ->
                 (k, fun b -> Buffer.add_string b (string_of_int v)))
               gauges) );
      ( "histograms",
        fun b ->
          obj b
            (List.filter_map
               (fun (k, h) ->
                 Option.map
                   (fun s -> (k, fun b -> obj b (summary_fields s)))
                   (Histogram.summary h))
               hists) );
    ];
  Buffer.contents b

let dump t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, i) ->
      match i with
      | C c -> Buffer.add_string b (Printf.sprintf "%-48s %d\n" k c.c)
      | G g -> Buffer.add_string b (Printf.sprintf "%-48s %d\n" k g.g)
      | H h -> (
        match Histogram.summary h with
        | None -> Buffer.add_string b (Printf.sprintf "%-48s (empty)\n" k)
        | Some s ->
          Buffer.add_string b
            (Format.asprintf "%-48s %a\n" k Stats.pp_summary s)))
    (sorted_bindings t);
  Buffer.contents b
