module Clock = Tcpfo_sim.Clock
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type entry = { mac : Macaddr.t; expires : Tcpfo_sim.Time.t }

type t = {
  clock : Clock.t;
  ttl : Tcpfo_sim.Time.t;
  table : (Ipaddr.t, entry) Hashtbl.t;
  hits : Registry.counter;
  misses : Registry.counter;
  learned : Registry.counter;
}

let create clock ~ttl ?obs () =
  let obs =
    Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "arp"
  in
  { clock; ttl; table = Hashtbl.create 16; hits = Obs.counter obs "hits";
    misses = Obs.counter obs "misses";
    learned = Obs.counter obs "learned" }

let lookup t ip =
  match Hashtbl.find_opt t.table ip with
  | Some e when e.expires > t.clock.now () ->
    Registry.Counter.incr t.hits;
    Some e.mac
  | Some _ ->
    Hashtbl.remove t.table ip;
    Registry.Counter.incr t.misses;
    None
  | None ->
    Registry.Counter.incr t.misses;
    None

let learn t ip mac =
  Registry.Counter.incr t.learned;
  Hashtbl.replace t.table ip { mac; expires = t.clock.now () + t.ttl }

let forget t ip = Hashtbl.remove t.table ip
let clear t = Hashtbl.reset t.table

let entries t =
  let now = t.clock.now () in
  Hashtbl.fold
    (fun ip e acc -> if e.expires > now then (ip, e.mac) :: acc else acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)
