(** An Ethernet interface: a NIC plus ARP resolution plus a set of local
    IPv4 addresses (aliases).

    IP takeover (paper §5, step 5) is [add_address], which installs the
    failed primary's address as an alias and broadcasts a gratuitous ARP so
    that every cache on the segment — client, router — rebinds the address
    to this interface's MAC. *)

type t

val create :
  Tcpfo_sim.Clock.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  ?host:string ->
  nic:Tcpfo_net.Nic.t ->
  addr:Tcpfo_packet.Ipaddr.t ->
  prefix:int ->
  unit ->
  t
(** [obs] is the host-level observability scope: the interface's ARP
    cache registers its counters under it, and {!add_address} publishes
    an [Arp_takeover] event labelled with [host] (default ["host"]). *)

val nic : t -> Tcpfo_net.Nic.t
val addresses : t -> Tcpfo_packet.Ipaddr.t list
val primary_address : t -> Tcpfo_packet.Ipaddr.t
val prefix : t -> int
val has_address : t -> Tcpfo_packet.Ipaddr.t -> bool

val add_address : t -> Tcpfo_packet.Ipaddr.t -> unit
(** Install an alias and announce it with a gratuitous ARP. *)

val remove_address : t -> Tcpfo_packet.Ipaddr.t -> unit

val set_on_addr_change : t -> (unit -> unit) -> unit
(** Notification that the address set changed ({!add_address} /
    {!remove_address}).  The IP layer uses it to invalidate its cached
    local-address list. *)

val arp_cache : t -> Arp_cache.t

val set_rx :
  t ->
  (Tcpfo_packet.Ipv4_packet.t -> link_addressed:bool -> unit) ->
  unit
(** Upcall for received IPv4 datagrams.  [link_addressed] is false for
    datagrams seen only via promiscuous mode.  ARP is handled internally
    and never reaches the upcall. *)

val send_ip :
  t -> next_hop:Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Ipv4_packet.t -> unit
(** Resolve [next_hop] (emitting ARP requests as needed, queueing up to a
    small number of datagrams per pending resolution) and transmit. *)

val set_promiscuous : t -> bool -> unit

val shutdown : t -> unit
