module Clock = Tcpfo_sim.Clock
module Time = Tcpfo_sim.Time
module Ipaddr = Tcpfo_packet.Ipaddr
module Macaddr = Tcpfo_packet.Macaddr
module Eth_frame = Tcpfo_packet.Eth_frame
module Arp_packet = Tcpfo_packet.Arp_packet
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Nic = Tcpfo_net.Nic
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event

let arp_retry_interval = Time.sec 1.0
let arp_max_tries = 3
let max_pending_per_hop = 8

type pending = {
  mutable tries : int;
  queue : Ipv4_packet.t Queue.t;
  mutable timer : Tcpfo_sim.Engine.event_id option;
}

type t = {
  clock : Clock.t;
  nic : Nic.t;
  obs : Obs.t;
  host : string; (* label carried by emitted events *)
  addrs : Ipaddr.t Tcpfo_util.Vec.t; (* index 0 = primary address *)
  prefix : int;
  arp : Arp_cache.t;
  pending : (Ipaddr.t, pending) Hashtbl.t;
  mutable rx : Ipv4_packet.t -> link_addressed:bool -> unit;
  mutable on_addr_change : unit -> unit;
      (* lets the IP layer invalidate its local-address cache when a
         failover takeover adds or removes an alias *)
}

let rec create clock ?obs ?(host = "host") ~nic ~addr ~prefix () =
  let obs = match obs with Some o -> o | None -> Obs.silent () in
  let addrs = Tcpfo_util.Vec.create () in
  Tcpfo_util.Vec.push addrs addr;
  let t =
    {
      clock;
      nic;
      obs;
      host;
      addrs;
      prefix;
      arp = Arp_cache.create clock ~ttl:(Time.sec 1200.0) ~obs ();
      pending = Hashtbl.create 4;
      rx = (fun _ ~link_addressed:_ -> ());
      on_addr_change = (fun () -> ());
    }
  in
  Nic.set_rx nic (fun frame ~addressed_to_me ->
      match frame.Eth_frame.payload with
      | Eth_frame.Arp a -> handle_arp t a
      | Eth_frame.Ip p -> t.rx p ~link_addressed:addressed_to_me);
  t

and handle_arp t (a : Arp_packet.t) =
  (* Learn the sender binding from every ARP packet, including gratuitous
     announcements — this is what makes IP takeover propagate. *)
  Arp_cache.learn t.arp a.sender_ip a.sender_mac;
  flush_pending t a.sender_ip;
  match a.op with
  | Arp_packet.Request
    when Tcpfo_util.Vec.exists (Ipaddr.equal a.target_ip) t.addrs ->
    let reply =
      Arp_packet.reply ~sender_mac:(Nic.mac t.nic) ~sender_ip:a.target_ip
        ~target_mac:a.sender_mac ~target_ip:a.sender_ip
    in
    Nic.send t.nic ~dst:a.sender_mac (Eth_frame.Arp reply)
  | Arp_packet.Request | Arp_packet.Reply -> ()

and flush_pending t ip =
  match Hashtbl.find_opt t.pending ip with
  | None -> ()
  | Some p ->
    (match Arp_cache.lookup t.arp ip with
    | None -> ()
    | Some mac ->
      (match p.timer with Some id -> t.clock.cancel id | None -> ());
      Hashtbl.remove t.pending ip;
      Queue.iter (fun pkt -> Nic.send t.nic ~dst:mac (Eth_frame.Ip pkt))
        p.queue)

let nic t = t.nic
let addresses t = Tcpfo_util.Vec.to_list t.addrs
let primary_address t = Tcpfo_util.Vec.get t.addrs 0
let prefix t = t.prefix
let has_address t ip = Tcpfo_util.Vec.exists (Ipaddr.equal ip) t.addrs
let arp_cache t = t.arp
let set_rx t fn = t.rx <- fn
let set_on_addr_change t fn = t.on_addr_change <- fn
let set_promiscuous t v = Nic.set_promiscuous t.nic v
let shutdown t = Nic.shutdown t.nic

let send_arp_request t target_ip =
  let req =
    Arp_packet.request ~sender_mac:(Nic.mac t.nic)
      ~sender_ip:(primary_address t) ~target_ip
  in
  Nic.send t.nic ~dst:Macaddr.broadcast (Eth_frame.Arp req)

let add_address t ip =
  if not (has_address t ip) then begin
    Tcpfo_util.Vec.push t.addrs ip;
    t.on_addr_change ();
    if Obs.tracing t.obs then
      Obs.emit t.obs ~at:(t.clock.now ())
        (Event.Arp_takeover { host = t.host; ip });
    let g = Arp_packet.gratuitous ~sender_mac:(Nic.mac t.nic) ~ip in
    Nic.send t.nic ~dst:Macaddr.broadcast (Eth_frame.Arp g)
  end

let remove_address t ip =
  if Tcpfo_util.Vec.remove_first (Ipaddr.equal ip) t.addrs then
    t.on_addr_change ()

let rec arm_retry t ip p =
  p.timer <-
    Some
      (t.clock.schedule arp_retry_interval (fun () ->
           if Hashtbl.mem t.pending ip then
             if p.tries >= arp_max_tries then begin
               (* resolution failed: drop queued datagrams *)
               Hashtbl.remove t.pending ip
             end
             else begin
               p.tries <- p.tries + 1;
               send_arp_request t ip;
               arm_retry t ip p
             end))

let send_ip t ~next_hop pkt =
  match Arp_cache.lookup t.arp next_hop with
  | Some mac -> Nic.send t.nic ~dst:mac (Eth_frame.Ip pkt)
  | None ->
    (match Hashtbl.find_opt t.pending next_hop with
    | Some p ->
      if Queue.length p.queue < max_pending_per_hop then
        Queue.push pkt p.queue
    | None ->
      let p = { tries = 1; queue = Queue.create (); timer = None } in
      Queue.push pkt p.queue;
      Hashtbl.replace t.pending next_hop p;
      send_arp_request t next_hop;
      arm_retry t next_hop p)
