(** Host IP layer: interfaces, routing, local delivery, forwarding — and
    the hook points where the TCP failover bridge interposes itself
    between TCP and IP (the paper's "bridge" sublayer sits exactly here).

    Hooks:
    - the [tx hook] sees every locally-originated datagram before routing;
      the primary bridge uses it to delay, renumber and merge the TCP
      layer's segments (paper §3.2–3.4), the secondary bridge to divert
      replies to the primary (§3.1).
    - the [rx hook] sees every datagram that arrives on any interface,
      including frames captured only by promiscuous mode; the secondary
      bridge uses it to accept datagrams addressed to the primary (§3.1),
      the primary bridge to intercept the secondary's diverted replies and
      to translate acknowledgment numbers for its own TCP layer (§3.3).

    Packets emitted by a bridge itself go through {!inject}, which skips
    the tx hook. *)

type t

type iface
(** Handle to an attached interface. *)

type tx_verdict =
  | Tx_pass of Tcpfo_packet.Ipv4_packet.t  (** send this (possibly rewritten) datagram *)
  | Tx_drop  (** consumed by the hook *)

type rx_verdict =
  | Rx_pass of Tcpfo_packet.Ipv4_packet.t
      (** continue normal processing (local delivery check, forwarding) *)
  | Rx_deliver of Tcpfo_packet.Ipv4_packet.t
      (** force local delivery even if the destination is not one of our
          addresses — how the secondary accepts traffic sent to the
          primary *)
  | Rx_drop  (** consumed by the hook *)

val create :
  Tcpfo_sim.Clock.t ->
  name:string ->
  ?tx_cost:Tcpfo_sim.Time.t ->
  ?rx_cost:Tcpfo_sim.Time.t ->
  ?jitter:(unit -> Tcpfo_sim.Time.t) ->
  ?cpu:Tcpfo_sim.Cpu.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  unit ->
  t
(** [tx_cost]/[rx_cost] model per-datagram host processing (protocol stack
    traversal, interrupts); they default to zero.  [jitter], when given,
    is sampled per packet and added on top — OS scheduling noise.  All
    processing serializes through [cpu] (one is created if not given), so
    a host's packet throughput is bounded by 1/cost.

    [obs] is the host-level observability scope: counters [ip.tx],
    [ip.rx] and [ip.forwarded] are registered one level below it, and —
    when the event bus has subscribers — every TCP segment handed to the
    wire or delivered upward is published as a [Segment_tx]/[Segment_rx]
    event. *)

val cpu : t -> Tcpfo_sim.Cpu.t

val name : t -> string
val clock : t -> Tcpfo_sim.Clock.t

val add_eth_iface : t -> Eth_iface.t -> iface
(** Attaching also installs a connected route for the interface prefix. *)

val add_ptp_iface :
  t -> Tcpfo_net.Link.endpoint -> addr:Tcpfo_packet.Ipaddr.t -> iface

val eth_of_iface : iface -> Eth_iface.t option

val add_route :
  t -> net:Tcpfo_packet.Ipaddr.t -> prefix:int ->
  ?gateway:Tcpfo_packet.Ipaddr.t -> iface -> unit

val set_default_route : t -> gateway:Tcpfo_packet.Ipaddr.t -> iface -> unit

val addresses : t -> Tcpfo_packet.Ipaddr.t list
val is_local_address : t -> Tcpfo_packet.Ipaddr.t -> bool

val set_forwarding : t -> bool -> unit
(** Router behaviour: non-local datagrams are re-routed instead of
    dropped. *)

val set_tcp_handler :
  t ->
  (src:Tcpfo_packet.Ipaddr.t -> dst:Tcpfo_packet.Ipaddr.t ->
   Tcpfo_packet.Tcp_segment.t -> unit) ->
  unit

val set_heartbeat_handler :
  t ->
  (src:Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Ipv4_packet.heartbeat -> unit) ->
  unit

val heartbeat_handler :
  t -> src:Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Ipv4_packet.heartbeat -> unit
(** The currently installed heartbeat handler, so a new watcher can chain
    onto it — a pool primary runs one detector per watched replica. *)

val set_raw_handler :
  t ->
  (src:Tcpfo_packet.Ipaddr.t -> proto:int -> string -> unit) ->
  unit

val raw_handler :
  t -> src:Tcpfo_packet.Ipaddr.t -> proto:int -> string -> unit
(** The currently installed raw-protocol handler, so a new consumer of a
    different protocol number can chain onto it instead of silently
    stealing the host's single raw slot — the hot-state-transfer channel
    (proto 254) and the dispatcher's health probes (proto 252) coexist
    this way. *)

val set_tx_hook : t -> (Tcpfo_packet.Ipv4_packet.t -> tx_verdict) option -> unit

val set_rx_hook :
  t ->
  (Tcpfo_packet.Ipv4_packet.t -> link_addressed:bool -> rx_verdict) option ->
  unit

val tx_hook : t -> (Tcpfo_packet.Ipv4_packet.t -> tx_verdict) option
val rx_hook :
  t ->
  (Tcpfo_packet.Ipv4_packet.t -> link_addressed:bool -> rx_verdict) option
(** Current hooks, so that test instrumentation (targeted drop filters,
    packet taps) can wrap rather than replace a bridge's hooks. *)

val set_wire_roundtrip : t -> bool -> unit
(** Debug/validation mode: every outgoing TCP segment is encoded to RFC
    793 octets (checksum over the IPv4 pseudo-header included) and parsed
    back before transmission.  Proves that nothing in the system —
    including the bridge's rewritten and merged segments — depends on
    structure sharing, and that every emitted segment is wire-legal.
    Raises {!Tcpfo_packet.Wire.Malformed} on any discrepancy. *)

val send : t -> Tcpfo_packet.Ipv4_packet.t -> unit
(** Normal transmission path: tx hook, then routing. *)

val send_tcp :
  t -> src:Tcpfo_packet.Ipaddr.t -> dst:Tcpfo_packet.Ipaddr.t ->
  Tcpfo_packet.Tcp_segment.t -> unit

val inject : t -> Tcpfo_packet.Ipv4_packet.t -> unit
(** Transmit bypassing the tx hook — used by the bridges for the segments
    they construct themselves. *)

val fresh_ident : t -> int

val obs : t -> Tcpfo_obs.Obs.t
(** The host-level scope the layer was created with — bridges and other
    in-host components derive their own scopes from it. *)
