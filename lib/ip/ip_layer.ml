module Clock = Tcpfo_sim.Clock
module Cpu = Tcpfo_sim.Cpu
module Time = Tcpfo_sim.Time
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Tcp_segment = Tcpfo_packet.Tcp_segment
module Link = Tcpfo_net.Link
module Vec = Tcpfo_util.Vec
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry

type iface_kind =
  | Eth of Eth_iface.t
  | Ptp of { ep : Link.endpoint; addr : Ipaddr.t }

type iface = { id : int; kind : iface_kind }

type route = {
  net : Ipaddr.t;
  rprefix : int;
  via : iface;
  gateway : Ipaddr.t option;
}

type tx_verdict = Tx_pass of Ipv4_packet.t | Tx_drop

type rx_verdict =
  | Rx_pass of Ipv4_packet.t
  | Rx_deliver of Ipv4_packet.t
  | Rx_drop

type t = {
  clock : Clock.t;
  name : string;
  tx_cost : Time.t;
  rx_cost : Time.t;
  jitter : (unit -> Time.t) option; (* extra per-packet processing noise *)
  cpu : Cpu.t;
  ifaces : iface Vec.t;
  mutable next_iface : int;
  mutable routes : route list;
  (* Per-packet caches.  [route_cache] memoizes the last destination's
     longest-prefix match (traffic is heavily repetitive per host);
     [local_addrs] caches the flattened interface-address list that
     [is_local_address] consults on every rx and tx.  Both are
     invalidated on any interface, address, or route change. *)
  mutable route_cache : (Ipaddr.t * route) option;
  mutable local_addrs : Ipaddr.t list;
  mutable local_addrs_dirty : bool;
  mutable forwarding : bool;
  mutable tcp_handler :
    src:Ipaddr.t -> dst:Ipaddr.t -> Tcp_segment.t -> unit;
  mutable hb_handler : src:Ipaddr.t -> Ipv4_packet.heartbeat -> unit;
  mutable raw_handler : src:Ipaddr.t -> proto:int -> string -> unit;
  mutable tx_hook : (Ipv4_packet.t -> tx_verdict) option;
  mutable rx_hook :
    (Ipv4_packet.t -> link_addressed:bool -> rx_verdict) option;
  mutable ident : int;
  obs : Obs.t; (* host-level scope; [ip.*] instruments hang below it *)
  n_tx : Registry.counter;
  n_rx : Registry.counter;
  n_forwarded : Registry.counter;
  mutable wire_roundtrip : bool;
}

let create clock ~name ?(tx_cost = 0) ?(rx_cost = 0) ?jitter ?cpu ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.silent () in
  let ip_obs = Obs.scope obs "ip" in
  {
    clock;
    name;
    tx_cost;
    rx_cost;
    jitter;
    cpu = (match cpu with Some c -> c | None -> Cpu.create clock);
    ifaces = Vec.create ();
    next_iface = 0;
    routes = [];
    route_cache = None;
    local_addrs = [];
    local_addrs_dirty = true;
    forwarding = false;
    tcp_handler = (fun ~src:_ ~dst:_ _ -> ());
    hb_handler = (fun ~src:_ _ -> ());
    raw_handler = (fun ~src:_ ~proto:_ _ -> ());
    tx_hook = None;
    rx_hook = None;
    ident = 1;
    obs;
    n_tx = Obs.counter ip_obs "tx";
    n_rx = Obs.counter ip_obs "rx";
    n_forwarded = Obs.counter ip_obs "forwarded";
    wire_roundtrip = false;
  }

let name t = t.name
let clock t = t.clock

let invalidate_addr_cache t = t.local_addrs_dirty <- true

let refresh_local_addrs t =
  if t.local_addrs_dirty then begin
    t.local_addrs <-
      List.concat_map
        (fun i ->
          match i.kind with
          | Eth e -> Eth_iface.addresses e
          | Ptp p -> [ p.addr ])
        (Vec.to_list t.ifaces);
    t.local_addrs_dirty <- false
  end

let addresses t =
  refresh_local_addrs t;
  t.local_addrs

let is_local_address t ip =
  refresh_local_addrs t;
  List.exists (Ipaddr.equal ip) t.local_addrs

let set_forwarding t v = t.forwarding <- v
let set_tcp_handler t fn = t.tcp_handler <- fn
let set_heartbeat_handler t fn = t.hb_handler <- fn
let heartbeat_handler t = t.hb_handler
let set_raw_handler t fn = t.raw_handler <- fn
let raw_handler t = t.raw_handler
let set_tx_hook t h = t.tx_hook <- h
let set_rx_hook t h = t.rx_hook <- h
let tx_hook t = t.tx_hook
let rx_hook t = t.rx_hook

let fresh_ident t =
  let v = t.ident in
  t.ident <- (t.ident + 1) land 0xFFFF;
  v

let add_route t ~net ~prefix ?gateway via =
  t.route_cache <- None;
  t.routes <-
    List.sort
      (fun a b -> compare b.rprefix a.rprefix) (* longest prefix first *)
      ({ net = Ipaddr.network net ~prefix; rprefix = prefix; via; gateway }
      :: t.routes)

let route_for t dst =
  match t.route_cache with
  | Some (d, r) when Ipaddr.equal d dst -> Some r
  | _ ->
    let r =
      List.find_opt
        (fun r -> Ipaddr.same_network r.net dst ~prefix:r.rprefix)
        t.routes
    in
    (match r with
    | Some route -> t.route_cache <- Some (dst, route)
    | None -> ());
    r

let set_wire_roundtrip t v = t.wire_roundtrip <- v

(* Validation mode: serialize the TCP segment to real octets and parse it
   back; transmit the parsed copy. *)
let roundtrip_pkt (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg ->
    let b = Tcpfo_packet.Wire.encode_tcp ~src_ip:pkt.src ~dst_ip:pkt.dst seg in
    let seg' = Tcpfo_packet.Wire.decode_tcp ~src_ip:pkt.src ~dst_ip:pkt.dst b in
    { pkt with payload = Tcp seg' }
  | Heartbeat _ | Raw _ -> pkt

let transmit t pkt =
  let pkt = if t.wire_roundtrip then roundtrip_pkt pkt else pkt in
  match route_for t pkt.Ipv4_packet.dst with
  | None -> () (* no route: drop *)
  | Some r ->
    Registry.Counter.incr t.n_tx;
    (if Obs.tracing t.obs then
       match pkt.Ipv4_packet.payload with
       | Tcp seg ->
         Obs.emit t.obs ~at:(t.clock.now ())
           (Event.Segment_tx { host = t.name; dst = pkt.Ipv4_packet.dst; seg })
       | Heartbeat _ | Raw _ -> ());
    (match r.via.kind with
    | Ptp p -> Link.send p.ep pkt
    | Eth e ->
      let next_hop =
        match r.gateway with Some g -> g | None -> pkt.Ipv4_packet.dst
      in
      Eth_iface.send_ip e ~next_hop pkt)

(* Local protocol demultiplexing. *)
let deliver t (pkt : Ipv4_packet.t) =
  Registry.Counter.incr t.n_rx;
  (if Obs.tracing t.obs then
     match pkt.payload with
     | Tcp seg ->
       Obs.emit t.obs ~at:(t.clock.now ())
         (Event.Segment_rx { host = t.name; src = pkt.src; seg })
     | Heartbeat _ | Raw _ -> ());
  match pkt.payload with
  | Tcp seg -> t.tcp_handler ~src:pkt.src ~dst:pkt.dst seg
  | Heartbeat hb -> t.hb_handler ~src:pkt.src hb
  | Raw { proto; data } -> t.raw_handler ~src:pkt.src ~proto data

let forward t (pkt : Ipv4_packet.t) =
  if pkt.ttl > 1 then begin
    Registry.Counter.incr t.n_forwarded;
    transmit t { pkt with ttl = pkt.ttl - 1 }
  end

let process_rx t pkt ~link_addressed =
  let verdict =
    match t.rx_hook with
    | None -> Rx_pass pkt
    | Some hook -> hook pkt ~link_addressed
  in
  match verdict with
  | Rx_drop -> ()
  | Rx_deliver pkt -> deliver t pkt
  | Rx_pass pkt ->
    if is_local_address t pkt.Ipv4_packet.dst then
      (if link_addressed then deliver t pkt)
      (* a promiscuously captured frame for one of our own addresses but a
         foreign MAC is someone else's traffic: ignore unless a hook
         claimed it *)
    else if t.forwarding && link_addressed then forward t pkt
    else ()

let apply_jitter t base =
  match t.jitter with None -> base | Some j -> base + j ()

let rx_entry t pkt ~link_addressed =
  if t.rx_cost > 0 then
    Cpu.run t.cpu ~cost:(apply_jitter t t.rx_cost) (fun () ->
        process_rx t pkt ~link_addressed)
  else process_rx t pkt ~link_addressed

let add_iface t kind =
  let i = { id = t.next_iface; kind } in
  t.next_iface <- t.next_iface + 1;
  Vec.push t.ifaces i;
  invalidate_addr_cache t;
  i

let add_eth_iface t e =
  let i = add_iface t (Eth e) in
  Eth_iface.set_on_addr_change e (fun () -> invalidate_addr_cache t);
  Eth_iface.set_rx e (fun pkt ~link_addressed -> rx_entry t pkt ~link_addressed);
  add_route t
    ~net:(Eth_iface.primary_address e)
    ~prefix:(Eth_iface.prefix e) i;
  i

let add_ptp_iface t ep ~addr =
  let i = add_iface t (Ptp { ep; addr }) in
  Link.set_receiver ep (fun pkt -> rx_entry t pkt ~link_addressed:true);
  i

let eth_of_iface i = match i.kind with Eth e -> Some e | Ptp _ -> None

let set_default_route t ~gateway via =
  add_route t ~net:Ipaddr.any ~prefix:0 ~gateway via

let do_send t pkt ~hooked =
  (* Loopback: a datagram to one of our own addresses never touches the
     wire. *)
  if is_local_address t pkt.Ipv4_packet.dst then
    ignore (t.clock.schedule 0 (fun () -> deliver t pkt))
  else begin
    let verdict =
      if hooked then
        match t.tx_hook with None -> Tx_pass pkt | Some hook -> hook pkt
      else Tx_pass pkt
    in
    match verdict with
    | Tx_drop -> ()
    | Tx_pass pkt ->
      if t.tx_cost > 0 then
        Cpu.run t.cpu ~cost:(apply_jitter t t.tx_cost) (fun () ->
            transmit t pkt)
      else transmit t pkt
  end

let send t pkt = do_send t pkt ~hooked:true
let inject t pkt = do_send t pkt ~hooked:false

let send_tcp t ~src ~dst seg =
  send t (Ipv4_packet.make ~ident:(fresh_ident t) ~src ~dst (Tcp seg))

let cpu t = t.cpu
let obs t = t.obs
