(** ARP cache: IPv4 → MAC bindings with expiry.

    The paper's failover window *T* (§5) is precisely the time between the
    primary's death and the moment the router's ARP cache learns the
    secondary's binding from the gratuitous ARP; modelling the cache
    explicitly lets experiments observe and sweep that window. *)

type t

val create :
  Tcpfo_sim.Clock.t -> ttl:Tcpfo_sim.Time.t -> ?obs:Tcpfo_obs.Obs.t ->
  unit -> t
(** Entries expire [ttl] after they were last learned.  Counters
    [arp.hits], [arp.misses] and [arp.learned] are registered under
    [obs]. *)

val lookup : t -> Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Macaddr.t option
(** [None] for missing or expired entries. *)

val learn : t -> Tcpfo_packet.Ipaddr.t -> Tcpfo_packet.Macaddr.t -> unit

val forget : t -> Tcpfo_packet.Ipaddr.t -> unit
val clear : t -> unit

val entries : t -> (Tcpfo_packet.Ipaddr.t * Tcpfo_packet.Macaddr.t) list
(** Live entries, for diagnostics. *)
