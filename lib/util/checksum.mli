(** Internet ones-complement checksum (RFC 1071) with incremental update
    (RFC 1624), as used by the TCP failover bridge when it rewrites address
    fields of in-flight segments (paper §3.1: "we subtract the original
    bytes from the checksum, and add the new bytes"). *)

type t = int
(** A 16-bit checksum value in [0, 0xFFFF]. *)

val of_bytes : ?accum:int -> bytes -> t
(** [of_bytes b] is the ones-complement of the ones-complement sum of the
    16-bit big-endian words of [b] (odd trailing byte padded with zero).
    [accum] is an optional pre-folded partial sum (not complemented),
    allowing pseudo-header prefixes. *)

val partial : ?accum:int -> bytes -> int
(** Uncomplemented running 16-bit ones-complement sum of [b], foldable.
    Chaining via [accum] is only correct when every chunk but the last
    has even length — an odd chunk's trailing byte is padded as if it
    ended the message.  Use {!partial_parity} to sum across arbitrary
    split points. *)

val partial_string : ?accum:int -> string -> int

val partial_parity : ?state:int * bool -> bytes -> int * bool
(** Parity-carrying chunked sum.  The state is [(sum, odd)]: [odd] means
    the previous chunk ended mid-word, and the next chunk's first byte
    fills the low half of that word.  Feed each chunk the previous
    result; [fst] of the final state equals [partial] of the
    concatenation (then {!finish} it).  Initial state [(0, false)]. *)

val finish : int -> t
(** Fold and complement a partial sum into a final checksum. *)

val adjust : t -> old_bytes:bytes -> new_bytes:bytes -> t
(** [adjust ck ~old_bytes ~new_bytes] is the checksum of a message whose
    checksum was [ck] after the 16-bit-aligned region [old_bytes] is
    replaced by [new_bytes] (same length, RFC 1624 eqn. 3). *)

val adjust16 : t -> old16:int -> new16:int -> t
(** Single 16-bit word replacement. *)

val adjust32 : t -> old32:int -> new32:int -> t
(** Single 32-bit (two-word) replacement, e.g. an IPv4 address. *)

val valid : bytes -> bool
(** A buffer whose checksum field is in place sums to 0xFFFF; [valid b]
    checks that property over the whole buffer. *)
