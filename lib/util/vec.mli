(** Growable array with order-preserving removal.

    The simulator keeps several small registries (medium ports, IP
    interfaces, interface addresses) whose iteration order must match
    insertion order for determinism.  [Vec] provides O(1) amortized
    append and in-order traversal without the list re-allocation of
    [xs @ [x]]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append at the end; O(1) amortized. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In insertion order. *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option

val remove_first : ('a -> bool) -> 'a t -> bool
(** Remove the first matching element, shifting later elements left
    (insertion order of survivors is preserved).  Returns [true] if an
    element was removed.  O(n). *)

val to_list : 'a t -> 'a list
