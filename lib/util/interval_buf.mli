(** Sequence-indexed byte reassembly buffer.

    Stores byte ranges keyed by 32-bit wrap-around sequence numbers and
    yields the contiguous prefix starting at a movable [base].  Used by the
    TCP receive path (out-of-order reassembly) and — crucially — by the
    failover bridge's two output queues, which must match the primary's and
    secondary's reply bytes irrespective of how either TCP layer segmented
    them (paper §3.4, Fig. 2). *)

type t

val create : base:Seq32.t -> t
(** [create ~base] is an empty buffer whose next expected byte is [base]. *)

val base : t -> Seq32.t
(** Sequence number of the next byte to be consumed. *)

val insert : t -> seq:Seq32.t -> string -> unit
(** [insert t ~seq data] records [data] at positions [seq ..
    seq+len-1].  Bytes at positions earlier than [base] are clipped;
    overlaps with existing data are resolved (first write wins — identical
    streams make this irrelevant, and TCP retransmissions carry identical
    bytes). *)

val contiguous_length : t -> int
(** Number of bytes available starting exactly at [base] with no gap. *)

val peek : t -> max_len:int -> string
(** Up to [max_len] contiguous bytes from [base], not consumed. *)

val pop : t -> max_len:int -> string
(** Like [peek], but advances [base] past the returned bytes. *)

val drop : t -> len:int -> unit
(** Advance [base] by [len], discarding bytes (or recording them as already
    consumed if not yet present). [len] must be <= contiguous length unless
    [force] semantics are desired — here it simply moves the base and clips
    anything below it. *)

val total_buffered : t -> int
(** Total bytes held, including non-contiguous islands beyond a gap. *)

val is_empty : t -> bool
(** No bytes at all are buffered. *)

val has_byte : t -> Seq32.t -> bool
(** Whether the byte at the given sequence position is buffered (or already
    below base, in which case [false]). *)

val spans : t -> (Seq32.t * int) list
(** Sorted list of (start, length) islands, for diagnostics and tests. *)

val islands : t -> (Seq32.t * string) list
(** Sorted list of (start, data) islands with their bytes — used to
    snapshot a reassembly buffer for state transfer.  Rebuild with
    [create ~base] + [insert]. *)

val pp : Format.formatter -> t -> unit
