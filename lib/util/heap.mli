(** Array-based binary min-heap with integer priorities and a stable
    tiebreaker, used as the simulator's event queue.  Entries with equal
    priority pop in insertion order, which keeps simulations deterministic.

    Tombstone support: a heap created with a [dead] predicate sweeps
    logically-deleted entries out of the array once they outnumber the
    live ones, instead of letting them sit until popped.  The owner
    reports deaths with {!note_dead}; the predicate decides, at sweep
    time, which values to drop. *)

type 'a t

val create : ?dead:('a -> bool) -> unit -> 'a t
(** [dead] identifies entries that were logically removed (e.g. a
    cancelled event).  Without it, {!note_dead} is a no-op and entries
    stay until popped. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum (priority, value), or [None] if empty. *)

val peek_prio : 'a t -> int option
(** Priority of the minimum entry without removing it. *)

val peek : 'a t -> (int * 'a) option
(** Minimum (priority, value) without removing it. *)

val note_dead : 'a t -> unit
(** Tell the heap one of its entries became dead.  When more than half
    the stored entries are dead, the heap compacts: dead entries are
    filtered out and the survivors re-heapified in place, preserving
    their (priority, insertion-order) pop sequence.  Counted deaths must
    match entries the [dead] predicate actually rejects, or the sweep
    trigger drifts (a drifted sweep is wasted work, never incorrect). *)

val dead_count : 'a t -> int
(** Deaths reported since the last sweep (for tests/introspection). *)
