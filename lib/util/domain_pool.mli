(** Deterministic parallel map over independent tasks (OCaml 5 domains).

    Built for the bench harness: every experiment trial constructs a fully
    independent simulated world from its own seed, so trials can run on
    separate domains with no shared mutable state.  Results are gathered
    by task index, making the output independent of scheduling order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [map ~jobs n f] is [[f 0; f 1; ...; f (n-1)]], computed on up to
    [jobs] domains (including the calling one).  [jobs] defaults to 1,
    which runs everything serially in the calling domain in ascending
    index order — no domain is spawned.  If one or more tasks raise, the
    exception of the smallest failing index is re-raised after all tasks
    have finished.

    [f] must not touch mutable state shared with other tasks; the bench
    trial functions satisfy this by building one world per call. *)

val run_all : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run_all ~jobs tasks] runs heterogeneous thunks through {!map},
    returning their results in list order. *)
