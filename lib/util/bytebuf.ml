(* Ring-buffer implementation.

   The original representation kept pushed strings as a chunk list and
   re-appended the reversed tail on every read ([chunks @ List.rev
   tail_rev]), making a push/read-heavy workload — exactly what the TCP
   send path does per segment — quadratic in the number of outstanding
   chunks.  The capacity is fixed at creation, so a circular byte buffer
   gives O(n) push/read in the bytes moved and O(1) release, independent
   of access history.

   The physical ring starts small and doubles up to [capacity], so idle
   connections don't pay for a full send buffer up front. *)

type t = {
  capacity : int;
  mutable buf : Bytes.t; (* physical ring; grows up to [capacity] *)
  mutable head : int; (* physical index of the first held byte *)
  mutable start : int; (* absolute offset of first held byte *)
  mutable len : int;
}

let initial_size = 4096

let create ~capacity =
  {
    capacity;
    buf = Bytes.create (min capacity initial_size);
    head = 0;
    start = 0;
    len = 0;
  }

let capacity t = t.capacity
let length t = t.len
let free t = t.capacity - t.len
let start_offset t = t.start
let end_offset t = t.start + t.len
let is_empty t = t.len = 0

(* Re-allocate the ring to hold at least [needed] bytes, linearizing the
   live window to the front. *)
let grow t needed =
  let size = Bytes.length t.buf in
  let new_size = min t.capacity (max needed (max initial_size (2 * size))) in
  let b = Bytes.create new_size in
  let first = min t.len (size - t.head) in
  Bytes.blit t.buf t.head b 0 first;
  if t.len > first then Bytes.blit t.buf 0 b first (t.len - first);
  t.buf <- b;
  t.head <- 0

let push t s =
  let n = min (String.length s) (free t) in
  if n > 0 then begin
    if t.len + n > Bytes.length t.buf then grow t (t.len + n);
    let size = Bytes.length t.buf in
    let tail = (t.head + t.len) mod size in
    let first = min n (size - tail) in
    Bytes.blit_string s 0 t.buf tail first;
    if n > first then Bytes.blit_string s first t.buf 0 (n - first);
    t.len <- t.len + n
  end;
  n

let read t ~pos ~len =
  assert (pos >= t.start);
  let avail = t.start + t.len - pos in
  let len = min len (max 0 avail) in
  if len = 0 then ""
  else begin
    let size = Bytes.length t.buf in
    let off = (t.head + (pos - t.start)) mod size in
    let b = Bytes.create len in
    let first = min len (size - off) in
    Bytes.blit t.buf off b 0 first;
    if len > first then Bytes.blit t.buf 0 b first (len - first);
    Bytes.unsafe_to_string b
  end

let of_string ~capacity ~start_offset data =
  let len = String.length data in
  if len > capacity then invalid_arg "Bytebuf.of_string: data exceeds capacity";
  let t = create ~capacity in
  t.start <- start_offset;
  if t.len + len > Bytes.length t.buf then grow t len;
  Bytes.blit_string data 0 t.buf 0 len;
  t.len <- len;
  t

let release_to t ~pos =
  if pos > t.start then begin
    let drop = min (pos - t.start) t.len in
    let size = Bytes.length t.buf in
    if size > 0 then t.head <- (t.head + drop) mod size;
    t.start <- t.start + drop;
    t.len <- t.len - drop
  end
