(* Deterministic fan-out of independent tasks across OCaml 5 domains.

   [map ~jobs n f] computes [f 0 .. f (n-1)] on up to [jobs] domains and
   returns the results in index order, so callers observe exactly the
   same value a serial [List.init] would produce.  Tasks are claimed from
   a shared atomic counter (work stealing by index), which keeps the
   domains busy even when task durations are skewed — bench trials with
   large message sizes take orders of magnitude longer than small ones.

   With [jobs = 1] (or [n <= 1]) no domain is ever spawned and [f] runs
   in the calling domain in ascending index order: the serial path is
   byte-for-byte today's behavior, which the bench harness relies on for
   its [--jobs 1] reference mode.

   Exceptions raised by a task are caught in the worker, carried to the
   caller, and re-raised (with their backtrace) for the smallest failing
   index once every task has settled. *)

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let serial_map n f =
  let rec go acc i = if i >= n then List.rev acc else go (f i :: acc) (i + 1) in
  go [] 0

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Domain_pool.map: negative task count";
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then serial_map n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          let r =
            try Value (f i)
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r
      done
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    serial_map n (fun i ->
        match results.(i) with
        | Some (Value v) -> v
        | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false (* every index was claimed and joined *))
  end

let run_all ?jobs tasks =
  let arr = Array.of_list tasks in
  map ?jobs (Array.length arr) (fun i -> arr.(i) ())
