(* Minimal growable array with order-preserving removal.

   Replaces the [xs <- xs @ [x]] pattern (O(n) per append, re-allocating
   the whole spine) on simulator hot paths that must nevertheless keep
   insertion order for determinism: medium ports, IP interfaces,
   interface addresses.

   Removed or popped slots are overwritten with a surviving element (the
   array cannot hold a dummy for an arbitrary ['a]), so a stale reference
   may be kept alive until the next push over that slot.  The intended
   element types are small simulator records, where this is harmless. *)

type 'a t = { mutable arr : 'a array; mutable size : int }

let create () = { arr = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Vec.get: index out of bounds";
  t.arr.(i)

let push t x =
  if t.size = Array.length t.arr then begin
    let cap = max 8 (2 * Array.length t.arr) in
    let arr = Array.make cap x in
    Array.blit t.arr 0 arr 0 t.size;
    t.arr <- arr
  end;
  t.arr.(t.size) <- x;
  t.size <- t.size + 1

let iter f t =
  for i = 0 to t.size - 1 do
    f t.arr.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.arr.(i)
  done;
  !acc

let exists f t =
  let rec go i = i < t.size && (f t.arr.(i) || go (i + 1)) in
  go 0

let find_opt f t =
  let rec go i =
    if i >= t.size then None
    else if f t.arr.(i) then Some t.arr.(i)
    else go (i + 1)
  in
  go 0

(* Remove the first element satisfying [f], shifting the tail left so
   relative order is preserved (order determines event scheduling order in
   the simulator).  Returns whether an element was removed. *)
let remove_first f t =
  let rec find i = if i >= t.size then -1 else if f t.arr.(i) then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    Array.blit t.arr (i + 1) t.arr i (t.size - i - 1);
    t.size <- t.size - 1;
    true
  end

let to_list t =
  let rec go acc i = if i < 0 then acc else go (t.arr.(i) :: acc) (i - 1) in
  go [] (t.size - 1)
