(* Invariant: [islands] is sorted by modular order relative to [base];
   islands are non-overlapping, non-adjacent-mergeable is allowed (we merge
   adjacent islands on insert), and every island starts at or after [base]. *)

type island = { start : Seq32.t; data : string }

type t = {
  mutable base : Seq32.t;
  mutable islands : island list; (* sorted by start *)
}

let create ~base = { base; islands = [] }
let base t = t.base

let island_end i = Seq32.add i.start (String.length i.data)

(* Clip [data]@[seq] to the part at or after [floor]. *)
let clip_low ~floor ~seq data =
  let cut = Seq32.diff floor seq in
  if cut <= 0 then Some (seq, data)
  else if cut >= String.length data then None
  else Some (floor, String.sub data cut (String.length data - cut))

let insert t ~seq data =
  if String.length data = 0 then ()
  else
    match clip_low ~floor:t.base ~seq data with
    | None -> ()
    | Some (seq, data) ->
      (* Walk the sorted island list, splicing in the new range.  Existing
         bytes win on overlap. *)
      let rec splice seq data islands =
        if String.length data = 0 then islands
        else
          match islands with
          | [] -> [ { start = seq; data } ]
          | i :: rest ->
            let dlen = String.length data in
            if Seq32.le (Seq32.add seq dlen) i.start then
              (* entirely before island i *)
              { start = seq; data } :: islands
            else if Seq32.ge seq (island_end i) then
              (* entirely after island i *)
              i :: splice seq data rest
            else begin
              (* overlap with island i: keep i's bytes, recurse on the
                 non-overlapping head/tail of the new data *)
              let head =
                let n = Seq32.diff i.start seq in
                if n > 0 then Some (seq, String.sub data 0 n) else None
              in
              let tail =
                let cut = Seq32.diff (island_end i) seq in
                if cut < dlen then
                  Some (island_end i, String.sub data cut (dlen - cut))
                else None
              in
              let rest' =
                match tail with
                | None -> i :: rest
                | Some (ts, td) -> i :: splice ts td rest
              in
              match head with
              | None -> rest'
              | Some (hs, hd) -> { start = hs; data = hd } :: rest'
            end
      in
      let islands = splice seq data t.islands in
      (* merge adjacent islands *)
      let rec merge = function
        | a :: b :: rest when Seq32.equal (island_end a) b.start ->
          merge ({ start = a.start; data = a.data ^ b.data } :: rest)
        | a :: rest -> a :: merge rest
        | [] -> []
      in
      t.islands <- merge islands

let contiguous_length t =
  match t.islands with
  | i :: _ when Seq32.equal i.start t.base -> String.length i.data
  | _ -> 0

let peek t ~max_len =
  match t.islands with
  | i :: _ when Seq32.equal i.start t.base ->
    let n = min max_len (String.length i.data) in
    String.sub i.data 0 n
  | _ -> ""

let drop t ~len =
  if len <= 0 then ()
  else begin
    let new_base = Seq32.add t.base len in
    let rec go = function
      | [] -> []
      | i :: rest ->
        if Seq32.le (island_end i) new_base then go rest
        else
          match clip_low ~floor:new_base ~seq:i.start i.data with
          | None -> go rest
          | Some (s, d) -> { start = s; data = d } :: rest
    in
    t.islands <- go t.islands;
    t.base <- new_base
  end

let pop t ~max_len =
  let s = peek t ~max_len in
  drop t ~len:(String.length s);
  s

let total_buffered t =
  List.fold_left (fun acc i -> acc + String.length i.data) 0 t.islands

let is_empty t = t.islands = []

let has_byte t s =
  Seq32.ge s t.base
  && List.exists
       (fun i -> Seq32.ge s i.start && Seq32.lt s (island_end i))
       t.islands

let spans t = List.map (fun i -> (i.start, String.length i.data)) t.islands
let islands t = List.map (fun i -> (i.start, i.data)) t.islands

let pp fmt t =
  Format.fprintf fmt "@[<h>base=%a" Seq32.pp t.base;
  List.iter
    (fun i ->
      Format.fprintf fmt " [%a,+%d)" Seq32.pp i.start (String.length i.data))
    t.islands;
  Format.fprintf fmt "@]"
