type 'a entry = { prio : int; tie : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_tie : int;
  dead : ('a -> bool) option;
  mutable dead_count : int;
}

let create ?dead () =
  { arr = [||]; size = 0; next_tie = 0; dead; dead_count = 0 }

let length t = t.size
let is_empty t = t.size = 0
let dead_count t = t.dead_count

let less a b = a.prio < b.prio || (a.prio = b.prio && a.tie < b.tie)

let grow t =
  let cap = max 16 (2 * Array.length t.arr) in
  let dummy = t.arr.(0) in
  let arr = Array.make cap dummy in
  Array.blit t.arr 0 arr 0 t.size;
  t.arr <- arr

let sift_down t i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.arr.(l) t.arr.(!smallest) then smallest := l;
    if r < t.size && less t.arr.(r) t.arr.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.arr.(!smallest) in
      t.arr.(!smallest) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

(* Drop every entry the [dead] predicate rejects and re-heapify the
   survivors in place.  Entries keep their original tie stamps, and
   (prio, tie) is a total order, so the pop sequence of the survivors is
   unchanged by the rebuild. *)
let compact t =
  match t.dead with
  | None -> ()
  | Some dead ->
    let kept = ref 0 in
    for i = 0 to t.size - 1 do
      let e = t.arr.(i) in
      if not (dead e.value) then begin
        t.arr.(!kept) <- e;
        incr kept
      end
    done;
    t.size <- !kept;
    t.dead_count <- 0;
    for i = (t.size / 2) - 1 downto 0 do
      sift_down t i
    done

(* Tombstone bookkeeping: the owner reports entries that became dead
   (e.g. cancelled events); when more than half the array is dead we
   sweep, so cancelled-heavy workloads stay O(live) rather than
   O(ever-pushed). *)
let note_dead t =
  if t.dead <> None then begin
    t.dead_count <- t.dead_count + 1;
    if 2 * t.dead_count > t.size then compact t
  end

let push t ~prio value =
  let e = { prio; tie = t.next_tie; value } in
  t.next_tie <- t.next_tie + 1;
  if t.size = Array.length t.arr then
    if t.size = 0 then t.arr <- Array.make 16 e else grow t;
  t.arr.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less t.arr.(!i) t.arr.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.arr.(p) in
    t.arr.(p) <- t.arr.(!i);
    t.arr.(!i) <- tmp;
    i := p
  done

let peek_prio t = if t.size = 0 then None else Some t.arr.(0).prio

let peek t =
  if t.size = 0 then None else Some (t.arr.(0).prio, t.arr.(0).value)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t 0
    end;
    (* keep the tombstone count honest when a dead entry drains out the
       normal way instead of via a sweep *)
    (match t.dead with
    | Some dead when t.dead_count > 0 && dead top.value ->
      t.dead_count <- t.dead_count - 1
    | _ -> ());
    Some (top.prio, top.value)
  end
