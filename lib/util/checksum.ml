type t = int

let fold sum =
  let rec go s = if s > 0xFFFF then go ((s land 0xFFFF) + (s lsr 16)) else s in
  go sum

let partial ?(accum = 0) b =
  let n = Bytes.length b in
  let sum = ref accum in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8)
           + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  fold !sum

let partial_string ?accum s = partial ?accum (Bytes.unsafe_of_string s)

(* Parity-carrying variant for summing a message in arbitrary chunks.
   [partial ?accum] silently assumes every chunk but the last is
   even-length: an odd chunk's trailing byte is padded into the HIGH half
   of a word, so the next chunk's first byte — which belongs in the LOW
   half of that same word — lands in the wrong lane and the total differs
   from summing the concatenation.  Here the state records whether a word
   is still half-filled, and the next chunk's first byte completes it. *)
let partial_parity ?(state = (0, false)) b =
  let accum, odd = state in
  let n = Bytes.length b in
  let sum = ref accum in
  let i = ref 0 in
  if odd && n > 0 then begin
    (* low half of the word the previous chunk's trailing byte opened *)
    sum := !sum + Char.code (Bytes.unsafe_get b 0);
    i := 1
  end;
  let odd' = if n = 0 then odd else (n - !i) land 1 = 1 in
  while !i + 1 < n do
    sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8)
           + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  if !i < n then sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  (fold !sum, odd')

let finish sum = lnot (fold sum) land 0xFFFF

let of_bytes ?accum b = finish (partial ?accum b)

(* RFC 1624: HC' = ~(~HC + ~m + m').  We work with folded 16-bit sums. *)
let adjust ck ~old_bytes ~new_bytes =
  let hc = lnot ck land 0xFFFF in
  let m = partial old_bytes in
  let m' = partial new_bytes in
  let sum = fold (hc + (lnot m land 0xFFFF) + m') in
  lnot sum land 0xFFFF

let adjust16 ck ~old16 ~new16 =
  let hc = lnot ck land 0xFFFF in
  let sum = fold (hc + (lnot old16 land 0xFFFF) + (new16 land 0xFFFF)) in
  lnot sum land 0xFFFF

let adjust32 ck ~old32 ~new32 =
  let ck = adjust16 ck ~old16:(old32 lsr 16) ~new16:(new32 lsr 16) in
  adjust16 ck ~old16:(old32 land 0xFFFF) ~new16:(new32 land 0xFFFF)

let valid b = fold (partial b) = 0xFFFF
