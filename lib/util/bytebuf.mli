(** Bounded byte queue with stable absolute offsets.

    Models a TCP socket send buffer: the application appends at the tail
    (up to [capacity] un-acknowledged bytes), the stack reads anywhere in
    the live window for (re)transmission, and acknowledged bytes are
    released from the head.  Offsets are absolute byte counts since the
    buffer was created, so they map 1:1 onto sequence-number deltas. *)

type t

val create : capacity:int -> t

val capacity : t -> int
val length : t -> int
(** Bytes currently held. *)

val free : t -> int
(** [capacity - length]. *)

val start_offset : t -> int
(** Absolute offset of the first held byte. *)

val end_offset : t -> int
(** Absolute offset one past the last held byte ([start + length]). *)

val push : t -> string -> int
(** [push t s] appends as much of [s] as fits and returns the number of
    bytes accepted (possibly 0). *)

val read : t -> pos:int -> len:int -> string
(** [read t ~pos ~len] returns the bytes at absolute offsets
    [pos .. pos+len-1], clipped to the held range.  Requires
    [pos >= start_offset t]. *)

val of_string : capacity:int -> start_offset:int -> string -> t
(** [of_string ~capacity ~start_offset data] rebuilds a buffer whose held
    window is exactly [data] at absolute offsets [start_offset ..
    start_offset + length data - 1].  Used to restore a snapshotted send
    buffer on another host.  Raises [Invalid_argument] if [data] exceeds
    [capacity]. *)

val release_to : t -> pos:int -> unit
(** Discard all bytes below absolute offset [pos] (no-op if already
    released). *)

val is_empty : t -> bool
