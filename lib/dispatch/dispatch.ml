module Time = Tcpfo_sim.Time
module Clock = Tcpfo_sim.Clock
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Tcp_segment = Tcpfo_packet.Tcp_segment
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Ip_layer = Tcpfo_ip.Ip_layer
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry
module Event = Tcpfo_obs.Event
module Replicated = Tcpfo_core.Replicated

let probe_proto = 252

type config = {
  max_weight : int;
  decay_step : int;
  decay_period : Time.t;
  ramp_step : int;
  ramp_period : Time.t;
  probe_period : Time.t;
  probe_timeout : Time.t;
}

let default_config =
  {
    max_weight = 16;
    decay_step = 4;
    decay_period = Time.ms 2;
    ramp_step = 2;
    ramp_period = Time.ms 4;
    probe_period = Time.ms 10;
    probe_timeout = Time.us 35_000;
  }

type shard_state = Healthy | Degrading | Down | Ramping

(* Flow keys follow the stack's packed-demux idiom: the full client
   identity in one immediate int — (ip32 << 16) | port — hashed by a
   splitmix-style finalizer so Hashtbl buckets don't correlate with
   address locality. *)
module Key = struct
  type t = int

  let equal (a : int) (b : int) = a = b

  let hash k =
    let h = k * 0x3f58476d1ce4e5b9 land max_int in
    let h = (h lxor (h lsr 29)) * 0x14d049bb133111eb land max_int in
    (h lxor (h lsr 32)) land max_int
end

module Ftbl = Hashtbl.Make (Key)

let key_of addr port = (Ipaddr.to_int addr lsl 16) lor (port land 0xffff)

type shard = {
  s_name : string;
  s_pool : Replicated.t;
  s_svc : Ipaddr.t;
  mutable s_weight : int;
  mutable s_state : shard_state;
  mutable s_epoch : int;  (* bumped on state change; stale timers no-op *)
  mutable s_last_reply : Time.t;
  mutable s_probes_out : int;
  s_gauge : Registry.gauge;
}

type t = {
  host : Host.t;
  clock : Clock.t;
  service : Ipaddr.t;
  back : Ipaddr.t;
  config : config;
  shard_arr : shard array;
  flows : int Ftbl.t;
  obs : Obs.t;
  c_routed : Registry.counter;
  c_drained : Registry.counter;
  c_refused : Registry.counter;
  c_unmatched : Registry.counter;
  c_isolation : Registry.counter;
  c_probes : Registry.counter;
  c_replies : Registry.counter;
  c_shifts : Registry.counter;
  g_flows : Registry.gauge;
}

(* ------------------------------------------------------------------ *)
(* weight state machine                                                *)

let set_weight t sh w reason =
  if w <> sh.s_weight then begin
    sh.s_weight <- w;
    Registry.Gauge.set sh.s_gauge w;
    if Obs.tracing t.obs then
      Obs.emit t.obs
        ~at:(t.clock.Clock.now ())
        (Event.Weight_shift { shard = sh.s_name; weight = w; reason })
  end

let transition t sh state =
  if sh.s_state <> state then begin
    sh.s_state <- state;
    sh.s_epoch <- sh.s_epoch + 1;
    Registry.Counter.incr t.c_shifts
  end

let rec decay_tick t sh epoch () =
  if sh.s_epoch = epoch && sh.s_state = Degrading then begin
    set_weight t sh (max 0 (sh.s_weight - t.config.decay_step)) "decay";
    if sh.s_weight > 0 then
      ignore (t.clock.Clock.schedule t.config.decay_period (decay_tick t sh epoch))
  end

let start_degrading t sh =
  match sh.s_state with
  | Degrading | Down -> ()
  | Healthy | Ramping ->
    transition t sh Degrading;
    decay_tick t sh sh.s_epoch ()

(* A shard whose pool is whole ramps back to full weight; one that is
   merely *reachable* (the survivor serving solo after a takeover, or
   transfers still settling) rests at a quarter-weight floor — alive
   enough to accept traffic if the whole fleet is hurting, drained
   enough that siblings absorb the load until repair. *)
let ramp_target t sh =
  if
    Replicated.status sh.s_pool = `Normal
    && Replicated.pending_transfers sh.s_pool = 0
  then t.config.max_weight
  else max 1 (t.config.max_weight / 4)

let rec ramp_tick t sh epoch () =
  if sh.s_epoch = epoch && sh.s_state = Ramping then begin
    let target = ramp_target t sh in
    if sh.s_weight < target then
      set_weight t sh (min target (sh.s_weight + t.config.ramp_step)) "ramp";
    if sh.s_weight >= t.config.max_weight then transition t sh Healthy
    else if sh.s_weight < target then
      ignore (t.clock.Clock.schedule t.config.ramp_period (ramp_tick t sh epoch))
    (* else: rest at the degraded floor until the pool settles *)
  end

let start_ramping t sh =
  match sh.s_state with
  | Healthy -> ()
  | Ramping ->
    (* re-kick a ramp resting at the floor; bump the epoch so a pending
       tick chain dies rather than doubling the ramp rate *)
    sh.s_epoch <- sh.s_epoch + 1;
    ramp_tick t sh sh.s_epoch ()
  | Degrading | Down ->
    transition t sh Ramping;
    ramp_tick t sh sh.s_epoch ()

let force_down t sh =
  if sh.s_state <> Down then begin
    transition t sh Down;
    set_weight t sh 0 "probe-timeout"
  end

(* ------------------------------------------------------------------ *)
(* health probes (raw IP proto 252)                                    *)

(* "probe SEQ ADDR" / "reply SEQ ADDR" — ADDR is the probed pool
   service address, carried so the responder can answer *from* it and
   the dispatcher can attribute the reply without trusting IP sources. *)

let parse_msg data =
  match String.split_on_char ' ' data with
  | [ kind; seq; addr ] -> (
    match (int_of_string_opt seq, Ipaddr.of_string addr) with
    | Some s, a -> Some (kind, s, a)
    | None, _ | (exception _) -> None)
  | _ -> None

let arm_probe_responder host =
  let ip = Host.ip host in
  let inner = Ip_layer.raw_handler ip in
  Ip_layer.set_raw_handler ip (fun ~src ~proto data ->
      if proto = probe_proto then
        match parse_msg data with
        | Some ("probe", seq, svc) when Ip_layer.is_local_address ip svc ->
          Ip_layer.send ip
            (Ipv4_packet.make ~ident:(Ip_layer.fresh_ident ip) ~src:svc
               ~dst:src
               (Raw
                  {
                    proto = probe_proto;
                    data =
                      Printf.sprintf "reply %d %s" seq (Ipaddr.to_string svc);
                  }))
        | _ -> ()
      else inner ~src ~proto data)

let handle_reply t svc =
  match
    Array.fold_left
      (fun acc sh -> if Ipaddr.equal sh.s_svc svc then Some sh else acc)
      None t.shard_arr
  with
  | None -> ()
  | Some sh ->
    Registry.Counter.incr t.c_replies;
    sh.s_last_reply <- t.clock.Clock.now ();
    sh.s_probes_out <- 0;
    if sh.s_state = Down then start_ramping t sh

let probe_shard t seq sh =
  let now = t.clock.Clock.now () in
  if sh.s_probes_out > 0 && now - sh.s_last_reply > t.config.probe_timeout then
    force_down t sh;
  sh.s_probes_out <- sh.s_probes_out + 1;
  Registry.Counter.incr t.c_probes;
  Ip_layer.send (Host.ip t.host)
    (Ipv4_packet.make
       ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
       ~src:t.back ~dst:sh.s_svc
       (Raw
          {
            proto = probe_proto;
            data = Printf.sprintf "probe %d %s" seq (Ipaddr.to_string sh.s_svc);
          }))

let rec probe_loop t seq () =
  Array.iter (probe_shard t seq) t.shard_arr;
  ignore (t.clock.Clock.schedule t.config.probe_period (probe_loop t (seq + 1)))

(* ------------------------------------------------------------------ *)
(* weighted routing + NAT                                              *)

let total_weight t =
  Array.fold_left (fun a sh -> a + sh.s_weight) 0 t.shard_arr

(* Pin a fresh flow: hash the client identity once, take it modulo the
   live weight mass, and walk the shards in registration order.  The
   full-weight choice is computed from the same hash so [drained]
   counts exactly the flows that gradual shifting moved. *)
let pick t key =
  let total = total_weight t in
  if total = 0 then None
  else begin
    let h = Key.hash key in
    let x = h mod total in
    let chosen = ref (-1) and acc = ref 0 in
    Array.iteri
      (fun i sh ->
        if !chosen < 0 then begin
          acc := !acc + sh.s_weight;
          if x < !acc then chosen := i
        end)
      t.shard_arr;
    let n = Array.length t.shard_arr in
    let full = h mod (n * t.config.max_weight) / t.config.max_weight in
    if full <> !chosen then Registry.Counter.incr t.c_drained;
    Some !chosen
  end

let shard_idx_of_src t src =
  let n = Array.length t.shard_arr in
  let rec go i =
    if i >= n then None
    else if Ipaddr.equal t.shard_arr.(i).s_svc src then Some i
    else go (i + 1)
  in
  go 0

let handle_tcp t chain pkt (seg : Tcp_segment.t) ~link_addressed =
  if Ipaddr.equal pkt.Ipv4_packet.dst t.service then begin
    (* client -> fleet: translate dst to the pinned shard *)
    let key = key_of pkt.Ipv4_packet.src seg.Tcp_segment.src_port in
    match Ftbl.find_opt t.flows key with
    | Some idx ->
      Ip_layer.Rx_pass { pkt with Ipv4_packet.dst = t.shard_arr.(idx).s_svc }
    | None ->
      if seg.Tcp_segment.flags.Tcp_segment.syn && not seg.Tcp_segment.flags.Tcp_segment.ack
      then begin
        match pick t key with
        | Some idx ->
          Ftbl.replace t.flows key idx;
          Registry.Counter.incr t.c_routed;
          Registry.Gauge.set t.g_flows (Ftbl.length t.flows);
          Ip_layer.Rx_pass { pkt with Ipv4_packet.dst = t.shard_arr.(idx).s_svc }
        | None ->
          (* whole fleet drained: drop the SYN; the client's
             retransmission will retry against recovered weights *)
          Registry.Counter.incr t.c_refused;
          Ip_layer.Rx_drop
      end
      else begin
        Registry.Counter.incr t.c_unmatched;
        Ip_layer.Rx_drop
      end
  end
  else
    match shard_idx_of_src t pkt.Ipv4_packet.src with
    | Some sidx -> (
      (* shard -> client: translate src back to the fleet address, but
         only for the shard the flow is pinned to *)
      let key = key_of pkt.Ipv4_packet.dst seg.Tcp_segment.dst_port in
      match Ftbl.find_opt t.flows key with
      | Some idx when idx = sidx ->
        Ip_layer.Rx_pass { pkt with Ipv4_packet.src = t.service }
      | Some _ ->
        Registry.Counter.incr t.c_isolation;
        Ip_layer.Rx_drop
      | None ->
        Registry.Counter.incr t.c_unmatched;
        Ip_layer.Rx_drop)
    | None -> chain pkt ~link_addressed

let install_hooks t =
  let ip = Host.ip t.host in
  let inner_rx = Ip_layer.rx_hook ip in
  let chain pkt ~link_addressed =
    match inner_rx with
    | None -> Ip_layer.Rx_pass pkt
    | Some h -> h pkt ~link_addressed
  in
  Ip_layer.set_rx_hook ip
    (Some
       (fun pkt ~link_addressed ->
         if not link_addressed then chain pkt ~link_addressed
         else
           match pkt.Ipv4_packet.payload with
           | Ipv4_packet.Tcp seg -> handle_tcp t chain pkt seg ~link_addressed
           | _ -> chain pkt ~link_addressed));
  let inner_raw = Ip_layer.raw_handler ip in
  Ip_layer.set_raw_handler ip (fun ~src ~proto data ->
      if proto = probe_proto then
        match parse_msg data with
        | Some ("reply", _, svc) -> handle_reply t svc
        | _ -> ()
      else inner_raw ~src ~proto data)

(* ------------------------------------------------------------------ *)
(* construction                                                        *)

let create ~host ~service ~back ?(config = default_config) ~shards () =
  if shards = [] then invalid_arg "Dispatch.create: no shards";
  let ip = Host.ip host in
  if not (Ip_layer.is_local_address ip service) then
    invalid_arg "Dispatch.create: host does not own the service address";
  if not (Ip_layer.is_local_address ip back) then
    invalid_arg "Dispatch.create: host does not own the back address";
  Host.set_forwarding host true;
  let clock = Host.clock host in
  let obs = Obs.scope (Obs.root (Host.obs host)) "dispatch" in
  let now = clock.Clock.now () in
  let shard_arr =
    Array.of_list
      (List.map
         (fun (name, pool) ->
           let g = Obs.gauge (Obs.scope obs name) "weight" in
           Registry.Gauge.set g config.max_weight;
           {
             s_name = name;
             s_pool = pool;
             s_svc = Replicated.service_addr pool;
             s_weight = config.max_weight;
             s_state = Healthy;
             s_epoch = 0;
             s_last_reply = now;
             s_probes_out = 0;
             s_gauge = g;
           })
         shards)
  in
  let t =
    {
      host;
      clock;
      service;
      back;
      config;
      shard_arr;
      flows = Ftbl.create 64;
      obs;
      c_routed = Obs.counter obs "routed";
      c_drained = Obs.counter obs "drained";
      c_refused = Obs.counter obs "refused";
      c_unmatched = Obs.counter obs "unmatched";
      c_isolation = Obs.counter obs "isolation_drops";
      c_probes = Obs.counter obs "probes_sent";
      c_replies = Obs.counter obs "probe_replies";
      c_shifts = Obs.counter obs "shift_transitions";
      g_flows = Obs.gauge obs "flows";
    }
  in
  Array.iter
    (fun sh ->
      Replicated.add_on_event sh.s_pool (function
        | Replicated.Primary_failure_detected
        | Replicated.Secondary_failure_detected -> start_degrading t sh
        | Replicated.Transfers_complete _ ->
          if Replicated.status sh.s_pool = `Normal then start_ramping t sh
        | _ -> ()))
    t.shard_arr;
  install_hooks t;
  ignore (clock.Clock.schedule config.probe_period (probe_loop t 0));
  t

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)

let service t = t.service
let shards t = Array.to_list (Array.map (fun sh -> (sh.s_name, sh.s_pool)) t.shard_arr)

let find_shard t name =
  match
    Array.fold_left
      (fun acc sh -> if sh.s_name = name then Some sh else acc)
      None t.shard_arr
  with
  | Some sh -> sh
  | None -> invalid_arg (Printf.sprintf "Dispatch: no shard %S" name)

let weight t name = (find_shard t name).s_weight
let state t name = (find_shard t name).s_state

let pinned_shard t ~client:(addr, port) =
  match Ftbl.find_opt t.flows (key_of addr port) with
  | Some idx -> Some t.shard_arr.(idx).s_name
  | None -> None

type counters = {
  routed : int;
  drained : int;
  refused : int;
  unmatched : int;
  isolation_drops : int;
  probes_sent : int;
  probe_replies : int;
  shift_transitions : int;
}

let counters t =
  {
    routed = Registry.Counter.value t.c_routed;
    drained = Registry.Counter.value t.c_drained;
    refused = Registry.Counter.value t.c_refused;
    unmatched = Registry.Counter.value t.c_unmatched;
    isolation_drops = Registry.Counter.value t.c_isolation;
    probes_sent = Registry.Counter.value t.c_probes;
    probe_replies = Registry.Counter.value t.c_replies;
    shift_transitions = Registry.Counter.value t.c_shifts;
  }

let of_topo topo ~name ~config ?(dispatch_config = default_config) () =
  let info = Topo.dispatch_of topo name in
  let shards =
    List.map
      (fun g ->
        let replicas = Topo.group_of topo g in
        let pool = Replicated.create_pool ~replicas ~config () in
        List.iter arm_probe_responder replicas;
        (g, pool))
      info.Topo.di_shards
  in
  let t =
    create ~host:info.Topo.di_host ~service:info.Topo.di_service
      ~back:info.Topo.di_back ~config:dispatch_config ~shards ()
  in
  (t, shards)
