(** Dispatcher fleet tier: one sharded service address in front of many
    replicated pools.

    The paper makes a single primary/secondary pair transparent to its
    clients; this module scales that transparency to a *fleet*.  A
    dispatcher is a two-homed host: its front interface owns the
    client-visible service address, its back interface sits on the
    shards' segment as their default gateway with IP forwarding on.  It
    is a NAT, not a proxy — an rx hook rewrites only the IP addresses of
    forwarded datagrams:

    - a client datagram addressed to the service address has its
      destination rewritten to the pinned shard's own (pool) service
      address and is forwarded onto the back wire;
    - a shard reply has its source rewritten back to the fleet service
      address and is forwarded to the client.

    TCP sequence numbers and payloads are untouched, so the paper's §2
    byte-exactness guarantee — and everything the pools do during a
    failover — survives the dispatcher unchanged.

    Routing: a new connection (a SYN) is pinned to a shard by a
    deterministic hash of (client address, client port) weighted by
    per-shard health; the flow table pins every later segment of that
    flow, in both directions, to the same shard — established
    connections never move, exactly like the packed demux keys that pin
    flows inside a stack.  Replies are only translated when they come
    from the pinned shard, so one shard cannot speak into another
    shard's flows.

    Health: each shard carries an integer weight in
    [0, {!config.max_weight}].  Pool failure events start a stepwise
    decay (new connections drain to sibling shards *gradually*, not in
    one step); a completed reintegration starts a stepwise ramp back.
    Independently, the dispatcher probes every shard's pool service
    address (raw IP protocol {!probe_proto}) from its back address; a
    probe silence longer than [probe_timeout] forces the weight to 0
    until replies resume.  Weight changes are counted, exported as
    gauges, and emitted as [Weight_shift] trace events. *)

type config = {
  max_weight : int;  (** healthy weight of every shard *)
  decay_step : int;  (** weight removed per decay tick *)
  decay_period : Tcpfo_sim.Time.t;
  ramp_step : int;  (** weight restored per ramp tick *)
  ramp_period : Tcpfo_sim.Time.t;
  probe_period : Tcpfo_sim.Time.t;
  probe_timeout : Tcpfo_sim.Time.t;
      (** probe silence after which the shard weighs 0 *)
}

val default_config : config
(** max_weight 16, decay 4/2ms, ramp 2/4ms, probes every 10ms with a
    35ms timeout (just beyond the default failure-detector timeout, so
    an in-flight §5 takeover does not trip it). *)

val probe_proto : int
(** Raw IP protocol number of the health probes (252); the hot state
    transfer channel uses 254 and heartbeats 253. *)

type shard_state =
  | Healthy  (** full weight *)
  | Degrading  (** pool reported a failure; weight stepping down *)
  | Down  (** probes unanswered; weight 0 *)
  | Ramping
      (** weight stepping back up — to full weight once the pool is
          whole again ([`Normal] with no pending transfers), or resting
          at a quarter-weight floor while the survivor serves solo *)

type t

val create :
  host:Tcpfo_host.Host.t ->
  service:Tcpfo_packet.Ipaddr.t ->
  back:Tcpfo_packet.Ipaddr.t ->
  ?config:config ->
  shards:(string * Tcpfo_core.Replicated.t) list ->
  unit ->
  t
(** [host] must already own [service] (front) and [back] (back) — build
    it with a [Topo] [dispatch] declaration or [World.attach_extra_lan].
    Forwarding is switched on, the NAT rx hook and the probe reply
    handler are installed (both chain to whatever was there), every
    pool's events are tapped via [Replicated.add_on_event], and the
    probe loop starts.  Shard order is the registration order used by
    the weighted router.  Raises [Invalid_argument] on an empty shard
    list or if [host] owns neither address. *)

val arm_probe_responder : Tcpfo_host.Host.t -> unit
(** Install the probe responder on a pool replica: probes for any
    address the host currently owns are answered *from that address*, so
    whoever holds the pool service address — the primary, or the
    secondary after a §5 takeover — answers for the shard.  Chains to
    the host's existing raw handler (the transfer channel).  Call it on
    every replica, including repaired hosts before they rejoin. *)

val service : t -> Tcpfo_packet.Ipaddr.t
val shards : t -> (string * Tcpfo_core.Replicated.t) list

val weight : t -> string -> int
(** Current weight of the named shard.  Raises on unknown names. *)

val state : t -> string -> shard_state

val pinned_shard : t -> client:Tcpfo_packet.Ipaddr.t * int -> string option
(** Which shard the flow from this (client address, client port) is
    pinned to, if the dispatcher has seen its SYN. *)

type counters = {
  routed : int;  (** new flows pinned to a shard *)
  drained : int;
      (** of [routed], flows sent elsewhere than their full-weight
          choice — the measurable effect of gradual shifting *)
  refused : int;  (** SYNs dropped because every shard weighed 0 *)
  unmatched : int;  (** non-SYN segments with no flow entry (dropped) *)
  isolation_drops : int;
      (** replies from a shard into another shard's flow (dropped) *)
  probes_sent : int;
  probe_replies : int;
  shift_transitions : int;  (** shard state-machine transitions *)
}

val counters : t -> counters

val of_topo :
  Tcpfo_host.Topo.built ->
  name:string ->
  config:Tcpfo_core.Failover_config.t ->
  ?dispatch_config:config ->
  unit ->
  t * (string * Tcpfo_core.Replicated.t) list
(** Convenience elaboration of a [Topo] [dispatch] declaration: builds
    one [Replicated] pool per shard group (promotion order is the
    group's member order), arms the probe responder on every replica,
    and wires the dispatcher in front.  Returns the dispatcher and the
    pools in shard order (also available via {!shards}). *)
