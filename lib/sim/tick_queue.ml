module Heap = Tcpfo_util.Heap

type 'a t = {
  engine : Engine.t;
  mutable fire : 'a -> unit;
  queue : (Time.t * 'a) Heap.t; (* prio = due; FIFO on equal due *)
  mutable armed : Engine.event_id option;
  mutable armed_at : Time.t;
  mutable draining : bool;
}

let create engine ~fire =
  { engine; fire; queue = Heap.create (); armed = None; armed_at = 0;
    draining = false }

let set_fire t fire = t.fire <- fire

let length t = Heap.length t.queue

let rec drain t () =
  t.armed <- None;
  t.draining <- true;
  let now = Engine.now t.engine in
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some (_, (due, v)) when due <= now ->
      ignore (Heap.pop t.queue);
      (* firing may re-enter [add]; same-instant additions join this
         drain, exactly as a freshly scheduled engine event would fire
         later within the same timestamp *)
      t.fire v
    | _ -> continue := false
  done;
  t.draining <- false;
  ensure_armed t

(* Keep exactly one engine event outstanding, at the earliest due time.
   An armed event that a nearer addition undercut is cancelled (the
   engine compacts the tombstone) and re-armed earlier. *)
and ensure_armed t =
  match Heap.peek t.queue with
  | None -> ()
  | Some (_, (due, _)) -> (
    match t.armed with
    | Some _ when t.armed_at <= due -> ()
    | existing ->
      (match existing with
      | Some id -> Engine.cancel t.engine id
      | None -> ());
      t.armed <- Some (Engine.schedule_at t.engine ~at:due (drain t));
      t.armed_at <- due)

let add t ~due v =
  Heap.push t.queue ~prio:due (due, v);
  if not t.draining then ensure_armed t
