(** Batched event delivery: many due-stamped payloads, one engine event.

    A facility that previously scheduled one engine event per item (per
    frame, per packet) instead [add]s items here; the queue keeps at most
    one engine event outstanding — armed at the earliest due time — and
    that event drains every item due at that instant in (due, insertion)
    order.  Adding an item nearer than the armed event cancels and
    re-arms, so ordering is exactly what per-item scheduling produced,
    at a fraction of the engine traffic and allocation. *)

type 'a t

val create : Engine.t -> fire:('a -> unit) -> 'a t

val set_fire : 'a t -> ('a -> unit) -> unit
(** For owners whose delivery closure needs the record that contains the
    queue: create with a placeholder, then patch. *)

val add : 'a t -> due:Time.t -> 'a -> unit
(** Enqueue [v] to be fired at simulated time [due] (clipped to now).
    Items with equal due fire in [add] order; an item added while the
    queue is draining at its own due instant joins that drain. *)

val length : 'a t -> int
(** Items currently queued (for tests/introspection). *)
