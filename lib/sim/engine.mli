(** Deterministic discrete-event simulation engine.

    A single [Engine.t] owns the simulated clock and the event queue.
    Events scheduled for the same instant fire in scheduling order, which
    makes whole-network simulations reproducible.

    Two interchangeable scheduling backends exist ({!backend}).  Both
    fire events in exactly the same order — (time, scheduling order) is a
    total order and each backend realises it faithfully — so simulation
    results are byte-identical across backends; only wall-clock cost
    differs.  See DESIGN.md for the identity argument. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

type backend =
  | Heap  (** one global binary min-heap; O(log n) schedule/pop *)
  | Wheel
      (** hierarchical timer wheel: near-future events hash into
          cascading buckets in O(1), far-future events wait in an
          overflow heap.  Same firing order as [Heap]. *)

val create : ?backend:backend -> unit -> t
(** [backend] defaults to [Heap]. *)

val backend : t -> backend

val backend_name : backend -> string
(** ["heap"] / ["wheel"] — the names accepted by {!backend_of_string}
    and by bench [--engine]. *)

val backend_of_string : string -> (backend, string) result

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t + delay].  A negative delay is
    clipped to zero. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> event_id
(** Absolute-time variant.  Times in the past are clipped to [now]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-cancelled event is a no-op.  Cancelling an event
    that already fired is also safe and marks the id cancelled without
    touching the live count — a clock wrapper that parked the event's body
    (pause-aware host) can then observe the cancellation via
    {!is_cancelled} and skip the parked body. *)

val is_cancelled : event_id -> bool

val pending : t -> int
(** Number of live (non-cancelled) events still queued. *)

val processed : t -> int
(** Cumulative number of events executed since [create].  Cancelled events
    are popped silently and do not count. *)

val cancelled_skips : t -> int
(** Cancelled events the engine discarded while scanning for the next
    live event (heap-top tombstones, cancelled wheel-bucket entries).
    Entries swept by a heap compaction are not counted — this tallies
    engine-side skips, not every reclaimed tombstone.  Backend-dependent
    by construction (the two backends meet tombstones at different
    moments), so it is excluded from cross-backend identity checks. *)

val wheel_cascades : t -> int
(** Non-empty bucket migrations performed by the wheel backend (always 0
    under [Heap]).  Backend-structural, like {!cancelled_skips}. *)

val set_stat_hooks :
  t -> cancelled_skip:(unit -> unit) -> wheel_cascade:(unit -> unit) -> unit
(** Mirror {!cancelled_skips} / {!wheel_cascades} increments into an
    external sink (the obs registry).  [lib/sim] sits below [lib/obs] in
    the layering, so the wiring is injected by the world builder rather
    than referenced directly. *)

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the queue, stopping when it is empty, when simulated time would
    exceed [until], or after [max_events] events.  Events beyond [until]
    remain queued and the clock is left at the time of the last executed
    event (or advanced to [until] if nothing fired). *)

val run_for : t -> Time.t -> unit
(** [run_for t d] is [run t ~until:(now t + d)]. *)
