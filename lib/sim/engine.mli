(** Deterministic discrete-event simulation engine.

    A single [Engine.t] owns the simulated clock and the event queue.
    Events scheduled for the same instant fire in scheduling order, which
    makes whole-network simulations reproducible. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t + delay].  A negative delay is
    clipped to zero. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> event_id
(** Absolute-time variant.  Times in the past are clipped to [now]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-cancelled event is a no-op.  Cancelling an event
    that already fired is also safe and marks the id cancelled without
    touching the live count — a clock wrapper that parked the event's body
    (pause-aware host) can then observe the cancellation via
    {!is_cancelled} and skip the parked body. *)

val is_cancelled : event_id -> bool

val pending : t -> int
(** Number of live (non-cancelled) events still queued. *)

val processed : t -> int
(** Cumulative number of events executed since [create].  Cancelled events
    are popped silently and do not count. *)

val step : t -> bool
(** Execute the next event; [false] if the queue is empty. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the queue, stopping when it is empty, when simulated time would
    exceed [until], or after [max_events] events.  Events beyond [until]
    remain queued and the clock is left at the time of the last executed
    event (or advanced to [until] if nothing fired). *)

val run_for : t -> Time.t -> unit
(** [run_for t d] is [run t ~until:(now t + d)]. *)
