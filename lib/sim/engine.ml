type event = { cancelled : bool ref; fn : unit -> unit }
type event_id = bool ref

type t = {
  mutable clock : Time.t;
  queue : event Tcpfo_util.Heap.t;
  mutable live : int;
  mutable processed : int;
}

let create () =
  { clock = 0; queue = Tcpfo_util.Heap.create (); live = 0; processed = 0 }

let now t = t.clock
let processed t = t.processed

let schedule_at t ~at fn =
  let at = max at t.clock in
  let cancelled = ref false in
  Tcpfo_util.Heap.push t.queue ~prio:at { cancelled; fn };
  t.live <- t.live + 1;
  cancelled

let schedule t ~delay fn = schedule_at t ~at:(t.clock + max 0 delay) fn

let cancel t id =
  if not !id then begin
    id := true;
    t.live <- t.live - 1
  end

let pending t = t.live

let rec step t =
  match Tcpfo_util.Heap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
    if !(ev.cancelled) then step t
    else begin
      t.clock <- at;
      t.live <- t.live - 1;
      t.processed <- t.processed + 1;
      ev.fn ();
      true
    end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Tcpfo_util.Heap.peek_prio t.queue with
    | None -> continue := false
    | Some at ->
      (match until with
      | Some u when at > u ->
        t.clock <- max t.clock u;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done;
  match until with
  | Some u when Tcpfo_util.Heap.peek_prio t.queue = None ->
    t.clock <- max t.clock u
  | _ -> ()

let run_for t d = run t ~until:(t.clock + d)
