(* [cancelled] and [consumed] are tracked separately so that an id can be
   cancelled *after* its event fired and the distinction still observed:
   a pause-aware host clock defers fired events and must honour a cancel
   that arrives while the body is parked (see Tcpfo_host.Host). *)
type event_id = { mutable cancelled : bool; mutable consumed : bool }
type event = { id : event_id; fn : unit -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Tcpfo_util.Heap.t;
  mutable live : int;
  mutable processed : int;
}

let create () =
  { clock = 0; queue = Tcpfo_util.Heap.create (); live = 0; processed = 0 }

let now t = t.clock
let processed t = t.processed

let schedule_at t ~at fn =
  let at = max at t.clock in
  let id = { cancelled = false; consumed = false } in
  Tcpfo_util.Heap.push t.queue ~prio:at { id; fn };
  t.live <- t.live + 1;
  id

let schedule t ~delay fn = schedule_at t ~at:(t.clock + max 0 delay) fn

let cancel t id =
  if not id.cancelled then begin
    id.cancelled <- true;
    (* a consumed event already left the live count at firing time *)
    if not id.consumed then t.live <- t.live - 1
  end

let pending t = t.live

let is_cancelled id = id.cancelled

let rec step t =
  match Tcpfo_util.Heap.pop t.queue with
  | None -> false
  | Some (at, ev) ->
    if ev.id.cancelled then step t
    else begin
      t.clock <- at;
      t.live <- t.live - 1;
      t.processed <- t.processed + 1;
      ev.id.consumed <- true;
      ev.fn ();
      true
    end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Tcpfo_util.Heap.peek_prio t.queue with
    | None -> continue := false
    | Some at ->
      (match until with
      | Some u when at > u ->
        t.clock <- max t.clock u;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done;
  match until with
  | Some u when Tcpfo_util.Heap.peek_prio t.queue = None ->
    t.clock <- max t.clock u
  | _ -> ()

let run_for t d = run t ~until:(t.clock + d)
