(* [cancelled] and [consumed] are tracked separately so that an id can be
   cancelled *after* its event fired and the distinction still observed:
   a pause-aware host clock defers fired events and must honour a cancel
   that arrives while the body is parked (see Tcpfo_host.Host).

   The record doubles as the queue node: [at]/[seq] order it, [fn] is the
   body, [next] threads it through a timer-wheel bucket, and [home] tells
   {!cancel} which structure currently holds it.  One allocation per
   scheduled event, reused end to end — scheduling never builds a
   separate heap entry or closure wrapper. *)
type event_id = {
  mutable cancelled : bool;
  mutable consumed : bool;
  mutable at : Time.t;
  mutable seq : int; (* global scheduling order; total tie-break *)
  mutable fn : unit -> unit;
  mutable next : event_id; (* intrusive bucket link; == nil when last *)
  mutable home : int; (* which structure holds the event, see home_* *)
}

let rec nil =
  { cancelled = true; consumed = true; at = max_int; seq = -1; fn = ignore;
    next = nil; home = 0 }

(* home values *)
let home_main = 0 (* the heap backend's single queue *)
let home_bucket = 1 (* a wheel bucket; swept when the bucket cascades *)
let home_cur = 2 (* the wheel's open-slot heap *)
let home_overflow = 3 (* the wheel's far-future heap *)
let home_done = 4 (* popped (fired or discarded) *)

(* ------------------------------------------------------------------ *)
(* Flat binary min-heap over event_ids ordered by (at, seq).  Unlike the
   generic Tcpfo_util.Heap it stores the event records directly (no
   per-push entry allocation) and orders by the global scheduling
   sequence, so events that reach a queue out of scheduling order (a
   cascaded wheel bucket merging with directly-scheduled events) still
   pop in exactly the order the heap backend fires them.  Cancelled
   entries are tombstones: [note_dead] sweeps them once they outnumber
   the live entries. *)
module Evheap = struct
  type h = {
    mutable arr : event_id array;
    mutable size : int;
    mutable dead : int;
  }

  let create () = { arr = [||]; size = 0; dead = 0 }
  let is_empty h = h.size = 0

  let less a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let sift_down h i =
    let i = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && less h.arr.(l) h.arr.(!smallest) then smallest := l;
      if r < h.size && less h.arr.(r) h.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.arr.(!smallest) in
        h.arr.(!smallest) <- h.arr.(!i);
        h.arr.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done

  let push h ev =
    if h.size = Array.length h.arr then begin
      let cap = max 16 (2 * Array.length h.arr) in
      let arr = Array.make cap nil in
      Array.blit h.arr 0 arr 0 h.size;
      h.arr <- arr
    end;
    h.arr.(h.size) <- ev;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.arr.(!i) h.arr.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let peek h = if h.size = 0 then nil else h.arr.(0)

  let pop h =
    if h.size = 0 then nil
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.arr.(0) <- h.arr.(h.size);
        h.arr.(h.size) <- nil;
        sift_down h 0
      end
      else h.arr.(0) <- nil;
      if h.dead > 0 && top.cancelled then h.dead <- h.dead - 1;
      top
    end

  (* Sweep tombstones once more than half the array is dead; (at, seq)
     is a total order, so re-heapifying the survivors cannot change
     their pop sequence. *)
  let compact h =
    let kept = ref 0 in
    for i = 0 to h.size - 1 do
      let ev = h.arr.(i) in
      if not ev.cancelled then begin
        h.arr.(!kept) <- ev;
        incr kept
      end
      else begin
        ev.home <- home_done;
        ev.fn <- ignore
      end
    done;
    for i = !kept to h.size - 1 do
      h.arr.(i) <- nil
    done;
    h.size <- !kept;
    h.dead <- 0;
    for i = (h.size / 2) - 1 downto 0 do
      sift_down h i
    done

  let note_dead h =
    h.dead <- h.dead + 1;
    if 2 * h.dead > h.size then compact h
end

(* ------------------------------------------------------------------ *)
(* Hierarchical timer wheel: [levels] wheels of [wheel_slots] buckets
   each, level [l] bucketing [granularity * wheel_slots^l] nanoseconds
   per slot.  Near-future events hash into the finest wheel in O(1);
   each coarser wheel covers 256x more time; anything beyond the top
   span (~73 simulated minutes) waits in the overflow heap.  Events of
   the slot currently being drained sit in [cur], a small (at, seq)
   heap, which preserves the exact global firing order the heap backend
   produces. *)

let slot_bits = 10 (* 1.024 us granularity *)
let wheel_bits = 8
let wheel_slots = 1 lsl wheel_bits
let slot_mask = wheel_slots - 1
let levels = 4

type wheel = {
  heads : event_id array array; (* heads.(level).(slot), nil when empty *)
  tails : event_id array array;
  counts : int array; (* queued entries (incl. tombstones) per level *)
  mutable opened : int; (* absolute level-0 slot number currently open *)
  cur : Evheap.h;
  overflow : Evheap.h;
}

type backend = Heap | Wheel

type t = {
  mutable clock : Time.t;
  backend : backend;
  queue : Evheap.h; (* heap backend's only queue; unused under Wheel *)
  wheel : wheel option;
  mutable live : int;
  mutable processed : int;
  mutable seq : int;
  mutable cancelled_skips : int;
  mutable wheel_cascades : int;
  mutable on_cancelled_skip : unit -> unit;
  mutable on_wheel_cascade : unit -> unit;
}

let create ?(backend = Heap) () =
  let wheel =
    match backend with
    | Heap -> None
    | Wheel ->
      Some
        {
          heads = Array.init levels (fun _ -> Array.make wheel_slots nil);
          tails = Array.init levels (fun _ -> Array.make wheel_slots nil);
          counts = Array.make levels 0;
          opened = 0;
          cur = Evheap.create ();
          overflow = Evheap.create ();
        }
  in
  { clock = 0; backend; queue = Evheap.create (); wheel; live = 0;
    processed = 0; seq = 0; cancelled_skips = 0; wheel_cascades = 0;
    on_cancelled_skip = ignore; on_wheel_cascade = ignore }

let backend t = t.backend
let backend_name = function Heap -> "heap" | Wheel -> "wheel"

let backend_of_string = function
  | "heap" -> Ok Heap
  | "wheel" -> Ok Wheel
  | s -> Error (Printf.sprintf "unknown engine backend %S (heap|wheel)" s)

let now t = t.clock
let processed t = t.processed
let cancelled_skips t = t.cancelled_skips
let wheel_cascades t = t.wheel_cascades

let set_stat_hooks t ~cancelled_skip ~wheel_cascade =
  t.on_cancelled_skip <- cancelled_skip;
  t.on_wheel_cascade <- wheel_cascade

let discard t ev =
  ev.home <- home_done;
  ev.fn <- ignore;
  t.cancelled_skips <- t.cancelled_skips + 1;
  t.on_cancelled_skip ()

(* -------------------------- wheel internals ----------------------- *)

let bucket_append w ~level ~slot ev =
  ev.next <- nil;
  if w.heads.(level).(slot) == nil then w.heads.(level).(slot) <- ev
  else w.tails.(level).(slot).next <- ev;
  w.tails.(level).(slot) <- ev;
  w.counts.(level) <- w.counts.(level) + 1

(* Place [ev] relative to the wheel position (the open slot), not the
   clock: after an overflow pop or an idle [run ~until] the clock can
   drift from [opened], and classifying against the position is what
   keeps every non-empty bucket strictly ahead of the wheel, so it
   cascades before its events come due.  Events for the open slot (or
   earlier) join [cur] directly. *)
let wheel_insert w ev =
  let slot_abs = ev.at lsr slot_bits in
  if slot_abs <= w.opened then begin
    ev.home <- home_cur;
    Evheap.push w.cur ev
  end
  else begin
    let delta = ev.at - (w.opened lsl slot_bits) in
    let rec place level =
      if level >= levels then begin
        ev.home <- home_overflow;
        Evheap.push w.overflow ev
      end
      else if delta < 1 lsl (slot_bits + (wheel_bits * (level + 1))) then begin
        let slot =
          (ev.at lsr (slot_bits + (wheel_bits * level))) land slot_mask
        in
        ev.home <- home_bucket;
        bucket_append w ~level ~slot ev
      end
      else place (level + 1)
    in
    place 0
  end

let bucket_take w ~level ~slot =
  let head = w.heads.(level).(slot) in
  if head != nil then begin
    let n = ref 0 in
    let p = ref head in
    while !p != nil do
      incr n;
      p := !p.next
    done;
    w.counts.(level) <- w.counts.(level) - !n;
    w.heads.(level).(slot) <- nil;
    w.tails.(level).(slot) <- nil
  end;
  head

(* Tombstone compaction for bucketed events happens here: cancelled
   entries are dropped instead of re-inserted, so a cancel costs O(1) at
   cancel time and the corpse is reclaimed the next time its bucket
   moves. *)
let cascade t w ~level ~slot =
  let head = bucket_take w ~level ~slot in
  if head != nil then begin
    t.wheel_cascades <- t.wheel_cascades + 1;
    t.on_wheel_cascade ();
    let p = ref head in
    while !p != nil do
      let ev = !p in
      p := ev.next;
      ev.next <- nil;
      if ev.cancelled then discard t ev else wheel_insert w ev
    done
  end

let open_slot t w pos =
  let head = bucket_take w ~level:0 ~slot:(pos land slot_mask) in
  let p = ref head in
  while !p != nil do
    let ev = !p in
    p := ev.next;
    ev.next <- nil;
    if ev.cancelled then discard t ev
    else begin
      ev.home <- home_cur;
      Evheap.push w.cur ev
    end
  done

let enter t w pos =
  w.opened <- pos;
  if pos land ((1 lsl (3 * wheel_bits)) - 1) = 0 then
    cascade t w ~level:3 ~slot:((pos lsr (3 * wheel_bits)) land slot_mask);
  if pos land ((1 lsl (2 * wheel_bits)) - 1) = 0 then
    cascade t w ~level:2 ~slot:((pos lsr (2 * wheel_bits)) land slot_mask);
  if pos land slot_mask = 0 then
    cascade t w ~level:1 ~slot:((pos lsr wheel_bits) land slot_mask);
  open_slot t w pos

(* Drop tombstones sitting on top of a heap, leaving a live minimum (or
   an empty heap). *)
let drain_tombstones t h =
  let continue = ref true in
  while !continue do
    let top = Evheap.peek h in
    if top != nil && top.cancelled then discard t (Evheap.pop h)
    else continue := false
  done

let buckets_total w =
  w.counts.(0) + w.counts.(1) + w.counts.(2) + w.counts.(3)

(* Advance the wheel position until the open-slot heap holds a live
   event or the wheels are empty.  Empty levels are skipped a whole
   boundary at a time, so an idle gap costs O(wheel_slots * levels)
   rather than one step per elapsed slot. *)
let rec advance t w =
  drain_tombstones t w.cur;
  if Evheap.is_empty w.cur && buckets_total w > 0 then begin
    let pos =
      if w.counts.(0) > 0 then w.opened + 1
      else if w.counts.(1) > 0 then (w.opened lor slot_mask) + 1
      else if w.counts.(2) > 0 then
        (w.opened lor ((1 lsl (2 * wheel_bits)) - 1)) + 1
      else (w.opened lor ((1 lsl (3 * wheel_bits)) - 1)) + 1
    in
    enter t w pos;
    advance t w
  end

(* The next live event, without removing it: the wheel candidate (after
   advancing) compared against the overflow heap by (at, seq) — an event
   scheduled beyond the horizon can come due before events bucketed
   later from a nearer position. *)
let wheel_peek t w =
  advance t w;
  drain_tombstones t w.overflow;
  let a = Evheap.peek w.cur and b = Evheap.peek w.overflow in
  if a == nil then if b == nil then nil else b
  else if b == nil then a
  else if Evheap.less a b then a
  else b

let wheel_take t w =
  let ev = wheel_peek t w in
  if ev == nil then nil
  else begin
    let h = if ev.home = home_cur then w.cur else w.overflow in
    ignore (Evheap.pop h);
    ev
  end

let heap_peek t =
  drain_tombstones t t.queue;
  Evheap.peek t.queue

let heap_take t =
  let ev = heap_peek t in
  if ev == nil then nil else Evheap.pop t.queue

let peek_next t =
  match t.wheel with None -> heap_peek t | Some w -> wheel_peek t w

let take_next t =
  match t.wheel with None -> heap_take t | Some w -> wheel_take t w

(* ------------------------------ API ------------------------------- *)

let schedule_at t ~at fn =
  let at = max at t.clock in
  t.seq <- t.seq + 1;
  let ev =
    { cancelled = false; consumed = false; at; seq = t.seq; fn; next = nil;
      home = home_main }
  in
  (match t.wheel with
  | None -> Evheap.push t.queue ev
  | Some w -> wheel_insert w ev);
  t.live <- t.live + 1;
  ev

let schedule t ~delay fn = schedule_at t ~at:(t.clock + max 0 delay) fn

let cancel t id =
  if not id.cancelled then begin
    id.cancelled <- true;
    (* a consumed event already left the live count at firing time *)
    if not id.consumed then begin
      t.live <- t.live - 1;
      if id.home = home_main then Evheap.note_dead t.queue
      else
        match t.wheel with
        | Some w when id.home = home_cur -> Evheap.note_dead w.cur
        | Some w when id.home = home_overflow -> Evheap.note_dead w.overflow
        | _ -> () (* bucketed: reclaimed when the bucket next moves *)
    end
  end

let pending t = t.live

let is_cancelled id = id.cancelled

let step t =
  let ev = take_next t in
  if ev == nil then false
  else begin
    t.clock <- ev.at;
    t.live <- t.live - 1;
    t.processed <- t.processed + 1;
    ev.consumed <- true;
    ev.home <- home_done;
    let fn = ev.fn in
    ev.fn <- ignore;
    fn ();
    true
  end

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    let ev = peek_next t in
    if ev == nil then continue := false
    else
      match until with
      | Some u when ev.at > u ->
        t.clock <- max t.clock u;
        continue := false
      | _ ->
        ignore (step t);
        decr budget
  done;
  match until with
  | Some u when peek_next t == nil -> t.clock <- max t.clock u
  | _ -> ()

let run_for t d = run t ~until:(t.clock + d)
