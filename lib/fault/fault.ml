module Time = Tcpfo_sim.Time

type trigger =
  | At of Time.t
  | After of Time.t
  | Every of Time.t * int option

type action =
  | Kill of string
  | Pause_host of string
  | Resume_host of string
  | Partition of string * Time.t
  | Drop_frames of int * string
  | Corrupt of int * string
  | Loss_burst of string * float * Time.t

type stmt = { trigger : trigger; action : action; prob : float option }
type plan = stmt list

(* ---------------- printing ---------------- *)

let time_to_string t =
  if t mod 1_000_000_000 = 0 then Printf.sprintf "%ds" (t / 1_000_000_000)
  else if t mod 1_000_000 = 0 then Printf.sprintf "%dms" (t / 1_000_000)
  else if t mod 1_000 = 0 then Printf.sprintf "%dus" (t / 1_000)
  else Printf.sprintf "%dns" t

let trigger_to_string = function
  | At t -> "at " ^ time_to_string t
  | After t -> "after " ^ time_to_string t
  | Every (p, None) -> "every " ^ time_to_string p
  | Every (p, Some n) -> Printf.sprintf "every %s x %d" (time_to_string p) n

let action_to_string = function
  | Kill h -> "kill " ^ h
  | Pause_host h -> "pause " ^ h
  | Resume_host h -> "resume " ^ h
  | Partition (h, d) -> Printf.sprintf "partition %s for %s" h (time_to_string d)
  | Drop_frames (n, net) -> Printf.sprintf "drop %d %s" n net
  | Corrupt (n, net) -> Printf.sprintf "corrupt %d %s" n net
  | Loss_burst (net, p, d) ->
    Printf.sprintf "loss %s %g for %s" net p (time_to_string d)

let stmt_to_string s =
  let base = trigger_to_string s.trigger ^ " " ^ action_to_string s.action in
  match s.prob with None -> base | Some p -> Printf.sprintf "%s p=%g" base p

let to_string plan = String.concat "; " (List.map stmt_to_string plan)

(* ---------------- parsing ---------------- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* "20ms", "1.5s", "250us", "100ns"; plain numbers are rejected so a
   forgotten unit cannot silently mean nanoseconds *)
let parse_time tok =
  let unit_start =
    let n = String.length tok in
    let rec go i =
      if i >= n then n
      else
        match tok.[i] with
        | '0' .. '9' | '.' | '-' -> go (i + 1)
        | _ -> i
    in
    go 0
  in
  let num = String.sub tok 0 unit_start in
  let unit = String.sub tok unit_start (String.length tok - unit_start) in
  let v =
    match float_of_string_opt num with
    | Some v when v >= 0.0 -> v
    | _ -> fail "bad duration %S" tok
  in
  let scale =
    match unit with
    | "ns" -> 1.0
    | "us" -> 1e3
    | "ms" -> 1e6
    | "s" -> 1e9
    | _ -> fail "bad time unit in %S (want ns/us/ms/s)" tok
  in
  int_of_float ((v *. scale) +. 0.5)

let parse_int tok =
  match int_of_string_opt tok with
  | Some n when n >= 0 -> n
  | _ -> fail "bad count %S" tok

let parse_float tok =
  match float_of_string_opt tok with
  | Some f when f >= 0.0 && f <= 1.0 -> f
  | _ -> fail "bad probability %S (want [0,1])" tok

let parse_stmt s =
  let toks =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  (* optional trailing probability gate *)
  let toks, prob =
    match List.rev toks with
    | last :: rest_rev when String.length last > 2 && String.sub last 0 2 = "p=" ->
      ( List.rev rest_rev,
        Some (parse_float (String.sub last 2 (String.length last - 2))) )
    | _ -> (toks, None)
  in
  let trigger, rest =
    match toks with
    | "at" :: t :: rest -> (At (parse_time t), rest)
    | "after" :: t :: rest -> (After (parse_time t), rest)
    | "every" :: t :: "x" :: n :: rest ->
      (Every (parse_time t, Some (parse_int n)), rest)
    | "every" :: t :: rest -> (Every (parse_time t, None), rest)
    | _ -> fail "statement %S: expected 'at'/'after'/'every' trigger" s
  in
  let action =
    match rest with
    | [ "kill"; h ] -> Kill h
    | [ "pause"; h ] -> Pause_host h
    | [ "resume"; h ] -> Resume_host h
    | [ "partition"; h; "for"; d ] -> Partition (h, parse_time d)
    | [ "drop"; n; net ] -> Drop_frames (parse_int n, net)
    | [ "corrupt"; n; net ] -> Corrupt (parse_int n, net)
    | [ "loss"; net; p; "for"; d ] ->
      Loss_burst (net, parse_float p, parse_time d)
    | _ -> fail "statement %S: unknown action" s
  in
  { trigger; action; prob }

let parse text =
  try
    Ok
      (String.split_on_char ';' text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
      |> List.map parse_stmt)
  with Bad m -> Error m

let parse_exn text =
  match parse text with Ok p -> p | Error m -> invalid_arg ("fault plan: " ^ m)
