module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Seq32 = Tcpfo_util.Seq32
module Ipaddr = Tcpfo_packet.Ipaddr
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Tcp_segment = Tcpfo_packet.Tcp_segment
module Eth_frame = Tcpfo_packet.Eth_frame
module Capture = Tcpfo_net.Capture
module Transfer = Tcpfo_statex.Transfer
module Ip_layer = Tcpfo_ip.Ip_layer
module World = Tcpfo_host.World
module Host = Tcpfo_host.Host
module Topo = Tcpfo_host.Topo
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Replicated = Tcpfo_core.Replicated
module Chain = Tcpfo_core.Chain
module Failover_config = Tcpfo_core.Failover_config
module Registry = Tcpfo_obs.Registry
module Dispatch = Tcpfo_dispatch.Dispatch

type victim = Primary | Secondary | Nobody
type phase = Handshake | Transfer | Fin | Idle

type chaos =
  | Calm
  | Burst
  | Drops
  | Corruption
  | Cross_traffic
  | Pause_client
  | Partition_client

type repair = No_repair | Repair | Repair_then_rekill
type pool = Pair | Pool3 of { rejoin_first : bool }
type role = Server | Backend_client | Chain3

type scenario = {
  seed : int;
  victim : victim;
  phase : phase;
  chaos : chaos;
  size : int;
  repair : repair;
  xfer_loss : float;
  pool : pool;
  role : role;
  fleet : bool;
  checkpointed : bool;
}

type outcome = {
  scenario : scenario;
  violations : string list;
  metrics : string;
}

let victim_to_string = function
  | Primary -> "primary"
  | Secondary -> "secondary"
  | Nobody -> "nobody"

let phase_to_string = function
  | Handshake -> "handshake"
  | Transfer -> "transfer"
  | Fin -> "fin"
  | Idle -> "idle"

let chaos_to_string = function
  | Calm -> "calm"
  | Burst -> "burst"
  | Drops -> "drops"
  | Corruption -> "corruption"
  | Cross_traffic -> "cross"
  | Pause_client -> "pause"
  | Partition_client -> "partition"

let repair_to_string = function
  | No_repair -> "none"
  | Repair -> "repair"
  | Repair_then_rekill -> "repair+rekill"

let pool_to_string = function
  | Pair -> "pair"
  | Pool3 { rejoin_first = false } -> "pool3"
  | Pool3 { rejoin_first = true } -> "pool3+rejoin"

let role_to_string = function
  | Server -> "server"
  | Backend_client -> "backend"
  | Chain3 -> "chain"

let describe s =
  Printf.sprintf
    "seed=%d kill=%s/%s chaos=%s size=%d repair=%s xloss=%.2f pool=%s role=%s \
     fleet=%b ckpt=%b"
    s.seed
    (victim_to_string s.victim) (phase_to_string s.phase)
    (chaos_to_string s.chaos) s.size (repair_to_string s.repair) s.xfer_loss
    (pool_to_string s.pool) (role_to_string s.role) s.fleet s.checkpointed

(* The scenario space is drawn from the seed alone, so a seed printed in
   a failure report reconstructs the exact run. *)
let scenario_of_seed seed =
  let r = Rng.create ~seed:(seed * 0x9E3779B9 + 1) in
  let victim =
    match Rng.int r 10 with
    | 0 | 1 | 2 -> Nobody
    | 3 | 4 | 5 | 6 | 7 -> Primary
    | _ -> Secondary
  in
  let phase =
    if victim = Nobody then Idle
    else
      match Rng.int r 6 with
      | 0 -> Handshake
      | 1 | 2 | 3 -> Transfer
      | 4 -> Fin
      | _ -> Idle
  in
  let chaos =
    match Rng.int r 9 with
    | 0 | 1 | 2 -> Calm
    | 3 -> Burst
    | 4 -> Drops
    | 5 -> Corruption
    | 6 -> Cross_traffic
    | 7 -> Pause_client
    | _ -> Partition_client
  in
  let size =
    match Rng.int r 6 with
    | 0 | 1 -> 2_000
    | 2 | 3 -> 20_000
    | 4 -> 120_000
    | _ -> 400_000
  in
  (* drawn after every pre-existing dimension, so adding the repair axis
     left all earlier seed → scenario mappings intact *)
  let repair =
    if victim = Nobody then No_repair
    else
      match Rng.int r 4 with
      | 0 | 1 -> No_repair
      | 2 -> Repair
      | _ -> Repair_then_rekill
  in
  (* lossy-control-channel axis, again drawn after everything older: a
     loss burst covering the hot state transfers, under which every
     transfer must still complete (the streaming protocol retransmits
     through it) rather than strand connections solo *)
  let xfer_loss =
    if repair = No_repair then 0.0
    else match Rng.int r 4 with 0 | 1 -> 0.0 | 2 -> 0.2 | _ -> 0.35
  in
  (* pool-shape axis, drawn after the above for the same reason.  A pool
     scenario's repair IS the automatic promotion of its standby, so the
     explicit repair axis is forced off — but only after its draws
     happened, keeping older seeds' mappings intact.  The xfer_loss draw
     is kept: in a pool run the burst covers the promotion's hot state
     transfers instead. *)
  let pool =
    if victim = Nobody then Pair
    else
      match Rng.int r 4 with
      | 0 | 1 -> Pair
      | 2 -> Pool3 { rejoin_first = false }
      | _ -> Pool3 { rejoin_first = true }
  in
  let repair = if pool = Pair then repair else No_repair in
  (* service-role axis, newest of all: which shape of replicated
     application carries the connection — the listening server, a §7.2
     backend client, or a three-tier chain.  Drawn last, then forced to
     [Server] for the no-kill control, pool scenarios and cross traffic
     (those compose with the server app only), so every older seed's
     world replays untouched. *)
  let role =
    match Rng.int r 5 with
    | 0 | 1 | 2 -> Server
    | 3 -> Backend_client
    | _ -> Chain3
  in
  let role =
    if victim = Nobody || pool <> Pair || chaos = Cross_traffic then Server
    else role
  in
  (* fleet axis, drawn after everything older: run the scenario's pair
     behind a dispatcher tier — two two-replica shards on a back
     segment, the client on a front segment, the kill aimed at whichever
     shard the connection is pinned to.  Forced off for pool cascades,
     non-server roles and cross traffic (those compose with the plain
     pair world only) — after the draw, so older seeds replay
     untouched. *)
  let fleet = Rng.int r 6 = 0 in
  let fleet =
    if pool <> Pair || role <> Server || chaos = Cross_traffic then false
    else fleet
  in
  (* checkpointed-connection axis, drawn after everything older: a
     long-lived request/reply connection that checkpoints at every
     request boundary rides alongside the main stream, under a
     retention budget far smaller than its lifetime traffic — only
     checkpoint truncation keeps it transferable, and it must survive
     the reintegration (delta snapshot) with its reply stream intact.
     Only meaningful when a hot state transfer happens, and composed
     with the plain pair/pool server worlds; forced off elsewhere AFTER
     the draw so older seeds replay untouched. *)
  let checkpointed = Rng.int r 3 = 0 in
  let checkpointed =
    if
      fleet || role <> Server || chaos = Cross_traffic
      || (repair = No_repair && pool = Pair)
    then false
    else checkpointed
  in
  {
    seed; victim; phase; chaos; size; repair; xfer_loss; pool; role; fleet;
    checkpointed;
  }

let pattern ~tag n =
  String.init n (fun i -> Char.chr ((i * 131 + tag * 7 + i / 251) land 0xFF))

let service_port = 5000
let cross_port = 5001
let ckpt_port = 5002
let backend_port = 7000
let cross_size = 30_000
let ck_req_bytes = 1_200

(* retention budget for the checkpointed-connection axis: far smaller
   than the connection's lifetime traffic, so only the application's
   per-request checkpoints keep it transferable *)
let ck_tcp_config =
  { Tcpfo_tcp.Tcp_config.default with retention_budget = 8_000 }

(* stream [payload] into [tcb] respecting the send buffer, then close *)
let stream_and_close tcb payload =
  let off = ref 0 in
  let n = String.length payload in
  let rec pump () =
    if !off < n then begin
      let want = min 32768 (n - !off) in
      let sent = Tcb.send tcb (String.sub payload !off want) in
      off := !off + sent;
      if sent < want then Tcb.set_on_drain tcb pump else pump ()
    end
    else Tcb.close tcb
  in
  pump ()

(* deterministic request/reply service body, shared by every role *)
let service_app ~reply tcb =
  let got = Buffer.create 8 in
  Tcb.set_on_data tcb (fun data ->
      Buffer.add_string got data;
      if Buffer.length got >= 4 then stream_and_close tcb reply)

(* deterministic request/reply service installed on both replicas *)
let install_service repl ~port ~reply =
  Replicated.listen repl ~port ~on_accept:(fun ~role:_ tcb ->
      service_app ~reply tcb)

(* Wire-level observer on the unreplicated peer: every TCP segment
   arriving from the service address and matching [seg_match] is checked
   against the service's sequence numbering.  After a failover the
   survivor must keep speaking in the numbering the peer already knows
   (the paper's central claim): a SYN carrying a fresh ISN or a data
   segment whose payload disagrees with [expected] at its sequence
   offset is a violation, as is any RST.  For a server-role service the
   ISN arrives on the SYN-ACK; for a §7.2 client-role connection it
   arrives on the service's own SYN. *)
let install_wire_check client ~svc ~seg_match ~expected violations =
  let isn = ref None in
  let inner = Ip_layer.rx_hook (Host.ip client) in
  Ip_layer.set_rx_hook (Host.ip client)
    (Some
       (fun pkt ~link_addressed ->
         (match pkt.Ipv4_packet.payload with
         | Ipv4_packet.Tcp seg
           when Ipaddr.equal pkt.Ipv4_packet.src svc && seg_match seg -> (
           let flags = seg.Tcp_segment.flags in
           if flags.Tcp_segment.rst then
             violations := "RST reached the peer" :: !violations;
           if flags.Tcp_segment.syn then (
             match !isn with
             | None -> isn := Some seg.Tcp_segment.seq
             | Some i when Seq32.diff seg.Tcp_segment.seq i = 0 -> ()
             | Some _ ->
               violations :=
                 "second SYN left the service's original numbering"
                 :: !violations);
           let len = String.length seg.Tcp_segment.payload in
           if len > 0 then
             match !isn with
             | None ->
               violations := "data before the service's SYN" :: !violations
             | Some i ->
               let off = Seq32.diff seg.Tcp_segment.seq (Seq32.succ i) in
               if off < 0 || off + len > String.length expected then
                 violations :=
                   Printf.sprintf
                     "wire sequence offset %d outside the stream (len %d)"
                     off len
                   :: !violations
               else if String.sub expected off len <> seg.Tcp_segment.payload
               then
                 violations :=
                   Printf.sprintf "wire payload mismatch at offset %d" off
                   :: !violations)
         | _ -> ());
         match inner with
         | None -> Ip_layer.Rx_pass pkt
         | Some hook -> hook pkt ~link_addressed))

(* chaos plans, expressed in the DSL so every soak run also exercises the
   parser and injector end to end; bursts are kept well under the
   heartbeat detector's silence budget so chaos never masquerades as a
   crash, and only the client is paused/partitioned (freezing a replica
   IS a failure as far as the detector can know) *)
let chaos_plan chaos =
  match chaos with
  | Calm | Cross_traffic -> []
  | Burst -> Fault.parse_exn "at 2ms loss lan 0.35 for 6ms"
  | Drops -> Fault.parse_exn "at 2ms drop 3 lan"
  | Corruption -> Fault.parse_exn "at 2ms corrupt 2 lan"
  | Pause_client -> Fault.parse_exn "at 2ms pause client; at 8ms resume client"
  | Partition_client -> Fault.parse_exn "at 2ms partition client for 6ms"

(* rough wire time of the reply, for placing mid-transfer kills *)
let transfer_estimate size = Time.ms 1 + (size * 100)

(* every statex control datagram on the LAN, for the MSS-bound check *)
let capture_transfers world lan =
  Capture.start (World.engine world) lan
    ~filter:(fun f ->
      match f.Eth_frame.payload with
      | Eth_frame.Ip { Ipv4_packet.payload = Ipv4_packet.Raw { proto; _ }; _ }
        ->
        proto = Transfer.proto
      | _ -> false)
    ()

let check_transfer_mss xfer_capture ~check =
  List.iter
    (fun { Capture.frame; _ } ->
      match frame.Eth_frame.payload with
      | Eth_frame.Ip
          { Ipv4_packet.payload = Ipv4_packet.Raw { data; _ }; _ } ->
        check
          (String.length data <= Transfer.max_datagram_bytes)
          (Printf.sprintf
             "transfer datagram of %d B exceeds the %d B MSS bound"
             (String.length data) Transfer.max_datagram_bytes)
      | _ -> ())
    (Capture.records xfer_capture);
  Capture.stop xfer_capture

(* ------------------------------------------------------------------ *)
(* Replicated-pair / pool worlds: the server app and the §7.2 backend
   app share everything but the application plumbing. *)

let run_replicated ?on_world scenario =
  let sc = scenario in
  let world = World.create ~seed:sc.seed () in
  (match on_world with Some f -> f world | None -> ());
  let timing_rng = Rng.create ~seed:((sc.seed * 1_000_003) lxor 0x50AC) in
  let pool3 = sc.pool <> Pair in
  (* the scenario's world as data; declaration order matches the old
     hand-wired construction exactly, so pre-pool seeds replay
     byte-identically *)
  (* pool hosts run under the tight retention budget when the
     checkpointed-connection axis is on; [?tcp_config:None] is identical
     to omitting the argument, so older seeds' worlds are untouched *)
  let pool_cfg = if sc.checkpointed then Some ck_tcp_config else None in
  let spec =
    Topo.segment "lan"
    :: Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client"
    :: Topo.host ?tcp_config:pool_cfg ~addr:"10.0.0.1" ~seg:"lan" "primary"
    :: Topo.host ?tcp_config:pool_cfg ~addr:"10.0.0.2" ~seg:"lan" "secondary"
    :: ((if sc.chaos = Cross_traffic then
           [ Topo.host ~addr:"10.0.0.11" ~seg:"lan" "cross" ]
         else [])
       @ (if pool3 then
            [ Topo.host ?tcp_config:pool_cfg ~addr:"10.0.0.4" ~seg:"lan"
                "standby" ]
          else [])
       @ [
           Topo.group "pool"
             ~members:
               ([ "primary"; "secondary" ]
               @ if pool3 then [ "standby" ] else []);
         ])
  in
  let topo = Topo.build world spec in
  let lan = Topo.segment_of topo "lan" in
  let client = Topo.host_of topo "client" in
  let primary = Topo.host_of topo "primary" in
  let secondary = Topo.host_of topo "secondary" in
  let cross_client =
    if sc.chaos = Cross_traffic then Some (Topo.host_of topo "cross")
    else None
  in
  let config =
    Failover_config.make
      ~service_ports:
        ([ service_port; cross_port ]
        @ if sc.checkpointed then [ ckpt_port ] else [])
      ()
  in
  let repl =
    Replicated.create_pool ~replicas:(Topo.group_of topo "pool") ~config ()
  in
  let svc = Replicated.service_addr repl in
  let reply = pattern ~tag:sc.seed sc.size in
  if sc.role = Server then install_service repl ~port:service_port ~reply;
  let cross_reply = pattern ~tag:(sc.seed + 1) cross_size in
  if cross_client <> None then
    install_service repl ~port:cross_port ~reply:cross_reply;
  (* checkpointed-connection service: answers each fixed-size request
     with "done" and checkpoints at the request boundary — the
     application's safe point, where a restored replica's fresh request
     counter is consistent with replay starting at the checkpoint *)
  if sc.checkpointed then
    Replicated.listen repl ~port:ckpt_port ~on_accept:(fun ~role:_ tcb ->
        let got = ref 0 in
        Tcb.set_on_data tcb (fun d ->
            got := !got + String.length d;
            while !got >= ck_req_bytes do
              got := !got - ck_req_bytes;
              ignore (Tcb.send tcb "done")
            done;
            if !got = 0 then Tcb.checkpoint tcb));
  let violations = ref [] in
  (* what the unreplicated peer must see from the service address: the
     reply stream (server role) or the request the replicated client
     sends its backend (§7.2 role) *)
  let expected_wire = match sc.role with Server -> reply | _ -> "get\n" in
  let seg_match =
    match sc.role with
    | Server | Chain3 ->
      fun (seg : Tcp_segment.t) -> seg.Tcp_segment.src_port = service_port
    | Backend_client ->
      fun (seg : Tcp_segment.t) -> seg.Tcp_segment.dst_port = backend_port
  in
  install_wire_check client ~svc ~seg_match ~expected:expected_wire violations;

  (* unreplicated-peer state, filled in by the role-specific plumbing:
     [buf] is the byte stream the peer read from the service, [peer] the
     peer-side TCB once it exists *)
  let buf = Buffer.create sc.size in
  let eof = ref false in
  let resets = ref 0 in
  let peer : Tcb.t option ref = ref None in
  let armed = ref false in
  let kill () =
    match sc.victim with
    | Primary -> Replicated.kill_primary repl
    | Secondary -> Replicated.kill_secondary repl
    | Nobody -> ()
  in
  (* §7.2 replica-side assembly buffers, one per setup invocation
     (including re-invocations on a repaired host) *)
  let app_bufs : (Tcb.t * Buffer.t) list ref = ref [] in
  (match sc.role with
  | Chain3 -> assert false
  | Server ->
    let c = Stack.connect (Host.tcp client) ~remote:(svc, service_port) () in
    peer := Some c;
    Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get\n"));
    Tcb.set_on_eof c (fun () ->
        eof := true;
        Tcb.close c);
    Tcb.set_on_reset c (fun () -> incr resets)
  | Backend_client ->
    (* the "client" host plays the unreplicated backend server: it
       receives the pool's request and streams the reply back *)
    Stack.listen (Host.tcp client) ~port:backend_port ~on_accept:(fun tcb ->
        peer := Some tcb;
        Tcb.set_on_data tcb (fun d ->
            Buffer.add_string buf d;
            if Buffer.length buf >= 4 then stream_and_close tcb reply);
        Tcb.set_on_eof tcb (fun () -> eof := true);
        Tcb.set_on_reset tcb (fun () -> incr resets));
    Replicated.connect_backend repl ~remote:(Host.addr client, backend_port)
      ~setup:(fun ~role:_ tcb ->
        let b = Buffer.create sc.size in
        app_bufs := (tcb, b) :: !app_bufs;
        Tcb.set_on_established tcb (fun () -> ignore (Tcb.send tcb "get\n"));
        Tcb.set_on_data tcb (fun d ->
            Buffer.add_string b d;
            if
              sc.victim <> Nobody && sc.phase = Fin && (not !armed)
              && Buffer.length b >= sc.size
            then begin
              armed := true;
              ignore
                (Engine.schedule (World.engine world)
                   ~delay:(Rng.int timing_rng (Time.us 200))
                   kill)
            end);
        Tcb.set_on_eof tcb (fun () -> Tcb.close tcb))
      ());

  (* optional cross traffic, started shortly after the main connection *)
  let cross_buf = Buffer.create cross_size in
  (match cross_client with
  | None -> ()
  | Some h ->
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.us 500) (fun () ->
           let cc = Stack.connect (Host.tcp h) ~remote:(svc, cross_port) () in
           Tcb.set_on_established cc (fun () -> ignore (Tcb.send cc "get\n"));
           Tcb.set_on_data cc (fun d -> Buffer.add_string cross_buf d);
           Tcb.set_on_eof cc (fun () -> Tcb.close cc))));

  (* the checkpointed long-lived connection: a reply-driven request
     stream that stays open for the whole run.  Each request is answered
     with "done"; progress after the hot state transfers settle proves
     the delta-restored connection still serves *)
  let ck_buf = Buffer.create 64 in
  let ck_resets = ref 0 in
  let ck_sent = ref 0 in
  let ck_replies = ref 0 in
  let ck_reply_floor = ref None in
  let ck_isolated = ref 0 in
  let ck_established = ref false in
  if sc.checkpointed then begin
    Replicated.add_on_event repl (function
      | Replicated.Transfers_complete _ when !ck_reply_floor = None ->
        ck_reply_floor := Some !ck_replies
      | Replicated.Isolated { local_port; _ }
        when local_port = ckpt_port && !ck_established ->
        (* a SYN_RCVD embryo caught by the reintegration scan is pinned
           solo by design — the client's SYN retry then opens a fresh,
           replicated connection with no client-visible state lost.
           Only an ESTABLISHED connection stranding solo is a failure. *)
        incr ck_isolated
      | _ -> ());
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.us 700) (fun () ->
           let ck =
             Stack.connect (Host.tcp client) ~remote:(svc, ckpt_port) ()
           in
           let send_req () =
             incr ck_sent;
             (* one request in flight at a time, far under the send
                buffer, so the whole request is always accepted *)
             ignore
               (Tcb.send ck (pattern ~tag:(9_000 + !ck_sent) ck_req_bytes))
           in
           Tcb.set_on_established ck (fun () ->
               ck_established := true;
               send_req ());
           Tcb.set_on_data ck (fun d ->
               Buffer.add_string ck_buf d;
               ck_replies := Buffer.length ck_buf / 4;
               if !ck_replies = !ck_sent then
                 ignore
                   (Engine.schedule (World.engine world) ~delay:(Time.ms 2)
                      send_req));
           Tcb.set_on_reset ck (fun () -> incr ck_resets)))
  end;

  (* the scripted chaos *)
  let env =
    {
      Injector.engine = World.engine world;
      rng = World.fresh_rng world;
      hosts =
        [ ("client", client); ("primary", primary); ("secondary", secondary) ];
      nets = [ ("lan", Injector.Medium_net lan) ];
    }
  in
  let inj = Injector.install env (chaos_plan sc.chaos) in
  let xfer_capture = capture_transfers world lan in

  (* repair: once the failure is detected (and, for a primary kill, the
     §5 takeover finished), bring up a fresh host and reintegrate it —
     hot state transfer re-replicates the live connections.  For
     [Repair_then_rekill], the instant the transfers settle the CURRENT
     primary (the original survivor) is killed too: a connection opened
     before failure #1 must survive failure #2 byte-exactly on the
     repaired host. *)
  let repaired = ref false in
  let rekilled = ref false in
  if sc.repair <> No_repair then
    Replicated.set_on_event repl (fun e ->
        let ready =
          match (sc.victim, e) with
          | Secondary, Replicated.Secondary_failure_detected -> true
          | Primary, Replicated.Takeover_complete -> true
          | _ -> false
        in
        if ready && not !repaired then begin
          repaired := true;
          ignore
            (Engine.schedule (World.engine world)
               ~delay:(Time.ms 1 + Rng.int timing_rng (Time.ms 4))
               (fun () ->
                 let h =
                   World.add_host world lan ?tcp_config:pool_cfg
                     ~name:"repaired" ~addr:"10.0.0.3" ()
                 in
                 (* warm_arp skips dead hosts itself, so the killed
                    host's stale (service-address!) binding cannot
                    override the takeover's gratuitous ARP *)
                 World.warm_arp
                   (client :: primary :: secondary :: h
                   :: Option.to_list cross_client);
                 (* the lossy-control-channel axis: a loss burst opening
                    exactly when reintegration (and with it the hot
                    state transfers) begins *)
                 if sc.xfer_loss > 0.0 then
                   Injector.add inj
                     (Fault.parse_exn
                        (Printf.sprintf "after 0us loss lan %.2f for 8ms"
                           sc.xfer_loss));
                 Replicated.reintegrate repl ~secondary:h))
        end;
        match e with
        | Replicated.Transfers_complete _
          when sc.repair = Repair_then_rekill && not !rekilled ->
          rekilled := true;
          ignore
            (Engine.schedule (World.engine world)
               ~delay:(Time.us 200 + Rng.int timing_rng (Time.ms 2))
               (fun () -> Replicated.kill_primary repl))
        | _ -> ());
  (* pool scenarios: the kill cascades on its own — the standby is
     promoted and hot state transfer re-replicates the live
     connections.  The moment those transfers settle, kill the CURRENT
     primary too: the §2 requirements must hold across two cascading
     failovers.  With [rejoin_first], a repaired host rejoins the back
     of the pool just before the second kill, so the second failover
     also cascades and the pool ends fully recovered. *)
  let promoted = ref false in
  (match sc.pool with
  | Pair -> ()
  | Pool3 { rejoin_first } ->
    Replicated.set_on_event repl (fun e ->
        match e with
        | Replicated.Promoted _ when not !promoted ->
          promoted := true;
          (* the lossy-control-channel axis covers the promotion's
             transfers, which start right after this event *)
          if sc.xfer_loss > 0.0 then
            Injector.add inj
              (Fault.parse_exn
                 (Printf.sprintf "after 0us loss lan %.2f for 8ms"
                    sc.xfer_loss))
        | Replicated.Transfers_complete _ when !promoted && not !rekilled ->
          rekilled := true;
          ignore
            (Engine.schedule (World.engine world)
               ~delay:(Time.us 200 + Rng.int timing_rng (Time.ms 2))
               (fun () ->
                 if rejoin_first then begin
                   let h =
                     World.add_host world lan ?tcp_config:pool_cfg
                       ~name:"repaired" ~addr:"10.0.0.3" ()
                   in
                   World.warm_arp (h :: Topo.hosts topo);
                   repaired := true;
                   Replicated.rejoin repl h
                 end;
                 Replicated.kill_primary repl))
        | _ -> ()));
  (match (sc.victim, sc.phase) with
  | Nobody, _ -> ()
  | _, Handshake ->
    (* during the three-way handshake (~300 us in) *)
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(Time.us 50 + Rng.int timing_rng (Time.us 350))
         kill)
  | _, Transfer ->
    let est = transfer_estimate sc.size in
    let frac = 10 + Rng.int timing_rng 80 in
    ignore
      (Engine.schedule (World.engine world) ~delay:(est * frac / 100) kill)
  | _, Fin ->
    (* dynamically: the instant the peer has the whole stream, the FIN
       is in flight / acked but the connection has not fully closed —
       the paper's narrowest takeover window.  For the server role the
       arm lives here on the client TCB; the backend role arms inside
       its setup callback instead (the big stream flows to the pool). *)
    (match !peer with
    | Some c when sc.role = Server ->
      let armed_c = ref false in
      Tcb.set_on_data c (fun d ->
          Buffer.add_string buf d;
          if (not !armed_c) && Buffer.length buf >= sc.size then begin
            armed_c := true;
            ignore
              (Engine.schedule (World.engine world)
                 ~delay:(Rng.int timing_rng (Time.us 200))
                 kill)
          end)
    | _ -> ())
  | _, Idle ->
    (* well after the connection is over *)
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(transfer_estimate sc.size + Time.sec 2.0)
         kill));
  (* default data sink unless the Fin arm installed its own *)
  (match !peer with
  | Some c when sc.role = Server && not (sc.victim <> Nobody && sc.phase = Fin)
    ->
    Tcb.set_on_data c (fun d -> Buffer.add_string buf d)
  | _ -> ());

  (* run in slices; stop early once everything observable has settled *)
  let deadline = Time.sec 60.0 in
  let peer_closed () =
    match !peer with
    | Some p -> (
      match Tcb.state p with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)
    | None -> false
  in
  let done_ () =
    let client_done = !eof && peer_closed () in
    let cross_done =
      cross_client = None || Buffer.length cross_buf >= cross_size
    in
    let kill_done =
      match sc.pool with
      | Pool3 { rejoin_first } ->
        !rekilled
        &&
        if rejoin_first then
          Replicated.status repl = `Normal
          && Replicated.pending_transfers repl = 0
        else Replicated.status repl = `Primary_failed
      | Pair -> (
        match (sc.victim, sc.repair) with
        | Nobody, _ -> true
        | Primary, No_repair -> Replicated.status repl = `Primary_failed
        | Secondary, No_repair -> Replicated.status repl = `Secondary_failed
        | _, Repair ->
          !repaired
          && Replicated.status repl = `Normal
          && Replicated.pending_transfers repl = 0
        | _, Repair_then_rekill ->
          !rekilled && Replicated.status repl = `Primary_failed)
    in
    let app_done =
      sc.role = Server
      || List.exists
           (fun (_, b) -> Buffer.contents b = reply)
           !app_bufs
    in
    (* the checkpointed connection must demonstrably serve AFTER the
       hot state transfers settle — two more replies past the floor
       recorded at Transfers_complete *)
    let ck_done =
      (not sc.checkpointed)
      ||
      match !ck_reply_floor with
      | Some floor -> !ck_replies >= floor + 2
      | None -> false
    in
    client_done && cross_done && kill_done && app_done && ck_done
  in
  let rec drive () =
    if (not (done_ ())) && World.now world < deadline then begin
      World.run world ~for_:(Time.sec 1.0);
      drive ()
    end
  in
  drive ();

  (* ---------------- invariants ---------------- *)
  let check cond msg = if not cond then violations := msg :: !violations in
  check
    (Buffer.contents buf = expected_wire)
    (Printf.sprintf "peer stream diverged from the application's (%d/%d B)"
       (Buffer.length buf)
       (String.length expected_wire));
  check !eof "connection never delivered EOF to the peer";
  check
    (peer_closed ())
    (Printf.sprintf "connection never terminated (peer state %s)"
       (match !peer with
       | Some p -> Tcb.state_to_string (Tcb.state p)
       | None -> "absent"));
  check (!resets = 0) "peer saw a connection reset";
  (* §7.2: the surviving replicas' application must hold the backend's
     complete reply — after a repair, on the restored connection too *)
  (if sc.role = Backend_client then begin
     let full =
       List.length
         (List.filter (fun (_, b) -> Buffer.contents b = reply) !app_bufs)
     in
     check (full >= 1) "no replica application assembled the backend reply";
     if sc.repair = Repair then
       check (full >= 2)
         "restored replica never assembled the backend reply"
   end);
  (match sc.pool with
  | Pool3 { rejoin_first } ->
    check !promoted "standby was never promoted after the first kill";
    check !rekilled "cascading second kill never triggered";
    if rejoin_first then begin
      check
        (Replicated.status repl = `Normal)
        "pool never returned to Normal after the second failover";
      check
        (Replicated.pending_transfers repl = 0)
        "hot state transfers never settled";
      check
        (Replicated.standbys repl = [])
        "rejoined host was never promoted by the second failover"
    end
    else
      check
        (Replicated.status repl = `Primary_failed)
        "second kill was never detected by the promoted pair"
  | Pair -> (
    match (sc.victim, sc.repair) with
    | Nobody, _ ->
      check
        (Replicated.status repl = `Normal)
        "spurious failover: no host was killed but status left Normal"
    | Primary, No_repair ->
      check
        (Replicated.status repl = `Primary_failed)
        "primary killed but its failure was never detected"
    | Secondary, No_repair ->
      check
        (Replicated.status repl = `Secondary_failed)
        "secondary killed but its failure was never detected"
    | _, Repair ->
      check !repaired "repair never triggered";
      check
        (Replicated.status repl = `Normal)
        "repaired host joined but the pair never returned to Normal";
      check
        (Replicated.pending_transfers repl = 0)
        "hot state transfers never settled"
    | _, Repair_then_rekill ->
      check !rekilled "re-kill never triggered";
      check
        (Replicated.status repl = `Primary_failed)
        "survivor re-killed but the repaired host never detected it"));
  if cross_client <> None then
    check
      (Buffer.contents cross_buf = cross_reply)
      "cross-traffic stream diverged";
  (* streaming-transfer invariants: even under the lossy-control-channel
     axis every transfer must settle without stranding a connection
     solo, and no control datagram may outgrow the data path's MSS *)
  if sc.repair <> No_repair || sc.pool <> Pair then
    check
      (Replicated.transfer_failures repl = 0)
      (Printf.sprintf
         "%d hot state transfer(s) failed under a lossy control channel"
         (Replicated.transfer_failures repl));
  (* checkpointed-connection invariants: the long-lived connection's
     per-request checkpoints kept it under the tight retention budget
     (no overflow, so nothing was isolated as non-transferable), its
     reply stream stayed intact through the transfers, and it kept
     serving afterwards *)
  if sc.checkpointed then begin
    let counter = Registry.counter_value (World.metrics world) in
    check (!ck_resets = 0) "checkpointing connection saw a reset";
    let s = Buffer.contents ck_buf in
    check
      (String.length s = 4 * !ck_replies
      &&
      let ok = ref true in
      String.iteri (fun i c -> if c <> "done".[i mod 4] then ok := false) s;
      !ok)
      (Printf.sprintf
         "checkpointing connection's reply stream diverged (%d B)"
         (String.length s));
    check
      (match !ck_reply_floor with
      | Some floor -> !ck_replies >= floor + 2
      | None -> false)
      "checkpointing connection made no progress after reintegration";
    check
      (counter "statex.checkpoints" > 0)
      "no application checkpoint was ever taken";
    check
      (counter "statex.retention_overflows" = 0)
      "checkpointing connection overflowed its retention budget";
    (* the global isolation counter can be bumped by OTHER connections
       caught in a closing state at reintegration (pinned solo by
       design), so the check is pinned to the checkpoint port *)
    check (!ck_isolated = 0)
      "checkpointing connection was stranded solo at reintegration"
  end;
  check_transfer_mss xfer_capture ~check;
  {
    scenario = sc;
    violations = List.rev !violations;
    metrics = Registry.to_json (World.metrics world);
  }

(* ------------------------------------------------------------------ *)
(* Three-tier chain worlds: head / middle / tail serve the client; the
   kill hits the head or the tail, and repair re-enters the chain
   through {!Chain.rejoin} (hot state transfer onto the new tail). *)

let run_chain ?on_world scenario =
  let sc = scenario in
  let world = World.create ~seed:sc.seed () in
  (match on_world with Some f -> f world | None -> ());
  let timing_rng = Rng.create ~seed:((sc.seed * 1_000_003) lxor 0x50AC) in
  let spec =
    [
      Topo.segment "lan";
      Topo.host ~addr:"10.0.0.10" ~seg:"lan" "client";
      Topo.host ~addr:"10.0.0.1" ~seg:"lan" "head";
      Topo.host ~addr:"10.0.0.2" ~seg:"lan" "middle";
      Topo.host ~addr:"10.0.0.5" ~seg:"lan" "tail";
    ]
  in
  let topo = Topo.build world spec in
  let lan = Topo.segment_of topo "lan" in
  let client = Topo.host_of topo "client" in
  let head_h = Topo.host_of topo "head" in
  let middle_h = Topo.host_of topo "middle" in
  let tail_h = Topo.host_of topo "tail" in
  let config = Failover_config.make ~service_ports:[ service_port ] () in
  let chain =
    Chain.create ~replicas:[ head_h; middle_h; tail_h ] ~config ()
  in
  let svc = Chain.service_addr chain in
  let reply = pattern ~tag:sc.seed sc.size in
  Chain.listen chain ~port:service_port ~on_accept:(fun ~replica:_ tcb ->
      service_app ~reply tcb);
  let violations = ref [] in
  install_wire_check client ~svc
    ~seg_match:(fun seg -> seg.Tcp_segment.src_port = service_port)
    ~expected:reply violations;

  (* client application *)
  let buf = Buffer.create sc.size in
  let eof = ref false in
  let resets = ref 0 in
  let c = Stack.connect (Host.tcp client) ~remote:(svc, service_port) () in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get\n"));
  Tcb.set_on_eof c (fun () ->
      eof := true;
      Tcb.close c);
  Tcb.set_on_reset c (fun () -> incr resets);

  (* the scripted chaos *)
  let env =
    {
      Injector.engine = World.engine world;
      rng = World.fresh_rng world;
      hosts =
        [
          ("client", client); ("head", head_h); ("middle", middle_h);
          ("tail", tail_h);
        ];
      nets = [ ("lan", Injector.Medium_net lan) ];
    }
  in
  let inj = Injector.install env (chaos_plan sc.chaos) in
  let xfer_capture = capture_transfers world lan in

  (* the kill: the head or the tail of the three-tier chain *)
  let victim_idx =
    match sc.victim with Primary -> 0 | Secondary -> 2 | Nobody -> -1
  in
  let kill () = if victim_idx >= 0 then Chain.kill chain victim_idx in
  (* repair: once the victim's loss has been absorbed (takeover for a
     head kill, detection for a tail kill), a fresh host rejoins at the
     tail and hot state transfer re-replicates the live connection onto
     it.  For [Repair_then_rekill] the settled transfers trigger a kill
     of the CURRENT head: the stream must survive the second failover
     byte-exactly through the rejoined tier. *)
  let deaths = ref 0 in
  let repaired = ref false in
  let rekilled = ref false in
  let xfer_done = ref false in
  let isolated = ref 0 in
  let trigger_rejoin () =
    if sc.repair <> No_repair && not !repaired then begin
      repaired := true;
      ignore
        (Engine.schedule (World.engine world)
           ~delay:(Time.ms 1 + Rng.int timing_rng (Time.ms 4))
           (fun () ->
             let h =
               World.add_host world lan ~name:"repaired" ~addr:"10.0.0.3" ()
             in
             World.warm_arp (h :: Topo.hosts topo);
             if sc.xfer_loss > 0.0 then
               Injector.add inj
                 (Fault.parse_exn
                    (Printf.sprintf "after 0us loss lan %.2f for 8ms"
                       sc.xfer_loss));
             ignore (Chain.rejoin chain h)))
    end
  in
  Chain.set_on_event chain (fun e ->
      match e with
      | Chain.Death_detected _ ->
        incr deaths;
        if sc.victim = Secondary then trigger_rejoin ()
      | Chain.Promoted _ ->
        if sc.victim = Primary then trigger_rejoin ()
      | Chain.Isolated _ -> incr isolated
      | Chain.Transfers_complete _ ->
        if !repaired then begin
          xfer_done := true;
          if sc.repair = Repair_then_rekill && not !rekilled then begin
            rekilled := true;
            ignore
              (Engine.schedule (World.engine world)
                 ~delay:(Time.us 200 + Rng.int timing_rng (Time.ms 2))
                 (fun () -> Chain.kill chain (Chain.head chain)))
          end
        end
      | _ -> ());
  (match (sc.victim, sc.phase) with
  | Nobody, _ -> ()
  | _, Handshake ->
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(Time.us 50 + Rng.int timing_rng (Time.us 350))
         kill)
  | _, Transfer ->
    let est = transfer_estimate sc.size in
    let frac = 10 + Rng.int timing_rng 80 in
    ignore
      (Engine.schedule (World.engine world) ~delay:(est * frac / 100) kill)
  | _, Fin ->
    let armed = ref false in
    Tcb.set_on_data c (fun d ->
        Buffer.add_string buf d;
        if (not !armed) && Buffer.length buf >= sc.size then begin
          armed := true;
          ignore
            (Engine.schedule (World.engine world)
               ~delay:(Rng.int timing_rng (Time.us 200))
               kill)
        end)
  | _, Idle ->
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(transfer_estimate sc.size + Time.sec 2.0)
         kill));
  if not (sc.victim <> Nobody && sc.phase = Fin) then
    Tcb.set_on_data c (fun d -> Buffer.add_string buf d);

  (* run in slices; stop early once everything observable has settled *)
  let deadline = Time.sec 60.0 in
  let done_ () =
    let client_done =
      !eof
      && (match Tcb.state c with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)
    in
    let kill_done =
      match (sc.victim, sc.repair) with
      | Nobody, _ -> true
      | _, No_repair -> !deaths >= 1
      | _, Repair ->
        !repaired && !xfer_done && Chain.pending_transfers chain = 0
      | _, Repair_then_rekill -> !rekilled && !deaths >= 2
    in
    client_done && kill_done
  in
  let rec drive () =
    if (not (done_ ())) && World.now world < deadline then begin
      World.run world ~for_:(Time.sec 1.0);
      drive ()
    end
  in
  drive ();

  (* ---------------- invariants ---------------- *)
  let check cond msg = if not cond then violations := msg :: !violations in
  check
    (Buffer.contents buf = reply)
    (Printf.sprintf "client stream diverged from the application's (%d/%d B)"
       (Buffer.length buf) sc.size);
  check !eof "connection never delivered EOF to the client";
  check
    (match Tcb.state c with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)
    (Printf.sprintf "connection never terminated (client state %s)"
       (Tcb.state_to_string (Tcb.state c)));
  check (!resets = 0) "client saw a connection reset";
  (match (sc.victim, sc.repair) with
  | Nobody, _ ->
    check
      (List.length (Chain.alive chain) = 3)
      "spurious death: no replica was killed but one left the chain"
  | _, No_repair ->
    check (!deaths >= 1) "replica killed but its death was never detected";
    check
      (not (List.mem victim_idx (Chain.alive chain)))
      "killed replica is still listed live"
  | _, Repair ->
    check !repaired "rejoin never triggered";
    check !xfer_done "rejoin's hot state transfers never settled";
    check
      (Chain.pending_transfers chain = 0)
      "hot state transfers still pending";
    check
      (List.length (Chain.alive chain) = 3)
      "chain never returned to three live replicas";
    (* a connection still mid-handshake when the rejoin scans candidates
       is pinned solo by design (it cannot snapshot yet) — only an
       established connection stranding solo is a failure *)
    if sc.phase <> Handshake then
      check (!isolated = 0)
        (Printf.sprintf "%d connection(s) stranded solo by the rejoin"
           !isolated)
  | _, Repair_then_rekill ->
    check !rekilled "cascading second kill never triggered";
    check (!deaths >= 2) "second kill was never detected";
    if sc.phase <> Handshake then
      check (!isolated = 0)
        (Printf.sprintf "%d connection(s) stranded solo by the rejoin"
           !isolated));
  check_transfer_mss xfer_capture ~check;
  {
    scenario = sc;
    violations = List.rev !violations;
    metrics = Registry.to_json (World.metrics world);
  }

(* ------------------------------------------------------------------ *)
(* Fleet worlds: two two-replica shard pools on a back segment behind a
   dispatcher whose front interface owns the client-visible service
   address.  The kill hits whichever shard the connection is pinned to;
   a second ("drain") connection opened right after the failure is
   detected must complete through the sibling shards while the victim's
   weight decays, and repair must ramp the weight back to full. *)

let run_fleet ?on_world scenario =
  let sc = scenario in
  let world = World.create ~seed:sc.seed () in
  (match on_world with Some f -> f world | None -> ());
  let timing_rng = Rng.create ~seed:((sc.seed * 1_000_003) lxor 0x50AC) in
  let gw = "10.0.0.254" in
  let spec =
    [
      Topo.segment "front";
      Topo.segment "back";
      Topo.host ~addr:"10.1.0.10" ~seg:"front" "client";
      Topo.host ~gateway:gw ~addr:"10.0.0.1" ~seg:"back" "s0a";
      Topo.host ~gateway:gw ~addr:"10.0.0.2" ~seg:"back" "s0b";
      Topo.host ~gateway:gw ~addr:"10.0.0.11" ~seg:"back" "s1a";
      Topo.host ~gateway:gw ~addr:"10.0.0.12" ~seg:"back" "s1b";
      Topo.group ~members:[ "s0a"; "s0b" ] "shard0";
      Topo.group ~members:[ "s1a"; "s1b" ] "shard1";
      Topo.service ~seg:"front" ~addr:"10.1.0.1" "fleet";
      Topo.dispatch ~service:"fleet" ~back:gw ~shards:[ "shard0"; "shard1" ]
        "disp";
    ]
  in
  let topo = Topo.build world spec in
  let front = Topo.segment_of topo "front" in
  let back = Topo.segment_of topo "back" in
  let client = Topo.host_of topo "client" in
  let config = Failover_config.make ~service_ports:[ service_port ] () in
  let disp, pools = Dispatch.of_topo topo ~name:"disp" ~config () in
  let svc = Dispatch.service disp in
  let max_w = Dispatch.default_config.max_weight in
  let reply = pattern ~tag:sc.seed sc.size in
  List.iter
    (fun (_, pool) -> install_service pool ~port:service_port ~reply)
    pools;
  let violations = ref [] in

  (* the client connection, through the dispatcher's NAT *)
  let buf = Buffer.create sc.size in
  let eof = ref false in
  let resets = ref 0 in
  let c = Stack.connect (Host.tcp client) ~remote:(svc, service_port) () in
  let main_port = snd (Tcb.local_endpoint c) in
  Tcb.set_on_established c (fun () -> ignore (Tcb.send c "get\n"));
  Tcb.set_on_eof c (fun () ->
      eof := true;
      Tcb.close c);
  Tcb.set_on_reset c (fun () -> incr resets);
  (* byte-exactness is checked against the DISPATCHER's address: the
     translated stream must still speak the shard's original numbering.
     The drain connection shares the source port, so pin the match to
     this connection's client port. *)
  install_wire_check client ~svc
    ~seg_match:(fun seg ->
      seg.Tcp_segment.src_port = service_port
      && seg.Tcp_segment.dst_port = main_port)
    ~expected:reply violations;

  (* the scripted chaos plays on the client-facing wire *)
  let env =
    {
      Injector.engine = World.engine world;
      rng = World.fresh_rng world;
      hosts = [ ("client", client) ];
      nets =
        [ ("lan", Injector.Medium_net front); ("back", Injector.Medium_net back) ];
    }
  in
  let inj = Injector.install env (chaos_plan sc.chaos) in
  let xfer_capture = capture_transfers world back in

  (* the kill resolves its target at fire time: whichever shard the
     dispatcher pinned the connection to *)
  let victim_name = ref None in
  let kill () =
    let name =
      match Dispatch.pinned_shard disp ~client:(Host.addr client, main_port) with
      | Some n -> n
      | None -> "shard0"
    in
    victim_name := Some name;
    let pool = List.assoc name pools in
    match sc.victim with
    | Primary -> Replicated.kill_primary pool
    | Secondary -> Replicated.kill_secondary pool
    | Nobody -> ()
  in

  (* drain connection: opened right after the failure is detected, while
     the victim shard's weight is decaying — it must complete through
     the fleet with zero client-visible disruption.  Both shards run the
     same service, so it expects the same reply wherever it pins. *)
  let drain_buf = Buffer.create sc.size in
  let drain_started = ref false in
  let drain_eof = ref false in
  let drain_resets = ref 0 in
  let drain_tcb : Tcb.t option ref = ref None in
  let start_drain () =
    ignore
      (Engine.schedule (World.engine world) ~delay:(Time.ms 2) (fun () ->
           let d =
             Stack.connect (Host.tcp client) ~remote:(svc, service_port) ()
           in
           drain_tcb := Some d;
           Tcb.set_on_established d (fun () -> ignore (Tcb.send d "get\n"));
           Tcb.set_on_data d (fun x -> Buffer.add_string drain_buf x);
           Tcb.set_on_eof d (fun () ->
               drain_eof := true;
               Tcb.close d);
           Tcb.set_on_reset d (fun () -> incr drain_resets)))
  in

  (* repair / rekill choreography on whichever pool the kill hit *)
  let repaired = ref false in
  let rekilled = ref false in
  let min_victim_w = ref max_w in
  List.iter
    (fun (name, pool) ->
      Replicated.set_on_event pool (fun e ->
          if !victim_name = Some name then begin
            (match e with
            | Replicated.Primary_failure_detected
            | Replicated.Secondary_failure_detected
              when not !drain_started ->
              drain_started := true;
              start_drain ()
            | _ -> ());
            (if sc.repair <> No_repair then
               let ready =
                 match (sc.victim, e) with
                 | Secondary, Replicated.Secondary_failure_detected -> true
                 | Primary, Replicated.Takeover_complete -> true
                 | _ -> false
               in
               if ready && not !repaired then begin
                 repaired := true;
                 ignore
                   (Engine.schedule (World.engine world)
                      ~delay:(Time.ms 1 + Rng.int timing_rng (Time.ms 4))
                      (fun () ->
                        let h =
                          World.add_host world back ~name:"repaired"
                            ~addr:"10.0.0.100" ()
                        in
                        Host.set_default_via_lan h
                          ~gateway:(Ipaddr.of_string gw);
                        World.warm_arp (h :: Topo.group_of topo name);
                        Topo.warm_dispatch_arp topo "disp" [ h ];
                        Dispatch.arm_probe_responder h;
                        (* the lossy-control-channel axis: the hot state
                           transfers ride the BACK wire here *)
                        if sc.xfer_loss > 0.0 then
                          Injector.add inj
                            (Fault.parse_exn
                               (Printf.sprintf
                                  "after 0us loss back %.2f for 8ms"
                                  sc.xfer_loss));
                        Replicated.reintegrate pool ~secondary:h))
               end);
            match e with
            | Replicated.Transfers_complete _
              when sc.repair = Repair_then_rekill && not !rekilled ->
              rekilled := true;
              ignore
                (Engine.schedule (World.engine world)
                   ~delay:(Time.us 200 + Rng.int timing_rng (Time.ms 2))
                   (fun () -> Replicated.kill_primary pool))
            | _ -> ()
          end))
    pools;

  (match (sc.victim, sc.phase) with
  | Nobody, _ -> ()
  | _, Handshake ->
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(Time.us 50 + Rng.int timing_rng (Time.us 350))
         kill)
  | _, Transfer ->
    let est = transfer_estimate sc.size in
    let frac = 10 + Rng.int timing_rng 80 in
    ignore
      (Engine.schedule (World.engine world) ~delay:(est * frac / 100) kill)
  | _, Fin ->
    let armed = ref false in
    Tcb.set_on_data c (fun d ->
        Buffer.add_string buf d;
        if (not !armed) && Buffer.length buf >= sc.size then begin
          armed := true;
          ignore
            (Engine.schedule (World.engine world)
               ~delay:(Rng.int timing_rng (Time.us 200))
               kill)
        end)
  | _, Idle ->
    ignore
      (Engine.schedule (World.engine world)
         ~delay:(transfer_estimate sc.size + Time.sec 2.0)
         kill));
  if not (sc.victim <> Nobody && sc.phase = Fin) then
    Tcb.set_on_data c (fun d -> Buffer.add_string buf d);

  (* run in short slices — also sampling the victim shard's weight so
     the gradual decay is provable, not just its endpoint *)
  let deadline = Time.sec 60.0 in
  let victim_pool () =
    match !victim_name with Some n -> Some (List.assoc n pools) | None -> None
  in
  let victim_weight () =
    match !victim_name with Some n -> Dispatch.weight disp n | None -> max_w
  in
  (* A drain connection born in the failure→reintegration window can be
     pinned to the victim shard while mid-handshake, in which case the
     hot state transfer pins it solo (untransferable by design).  A
     [Repair_then_rekill] then kills the host carrying that solo state,
     so — for that one combination only — the drain connection is
     exempt from the completion checks; the paper's guarantees never
     covered unreplicated state. *)
  let drain_exempt () =
    sc.repair = Repair_then_rekill
    &&
    match !drain_tcb with
    | Some d ->
      Dispatch.pinned_shard disp
        ~client:(Host.addr client, snd (Tcb.local_endpoint d))
      = !victim_name
    | None -> false
  in
  let drain_done () =
    (not !drain_started)
    || drain_exempt ()
    || !drain_eof
       &&
       match !drain_tcb with
       | Some d -> (
         match Tcb.state d with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)
       | None -> false
  in
  let done_ () =
    let client_done =
      !eof
      && match Tcb.state c with Tcb.Closed | Tcb.Time_wait -> true | _ -> false
    in
    let kill_done =
      match (sc.victim, sc.repair, victim_pool ()) with
      | Nobody, _, _ -> true
      | _, _, None -> false
      | _, No_repair, Some p -> (
        match sc.victim with
        | Primary -> Replicated.status p = `Primary_failed
        | Secondary -> Replicated.status p = `Secondary_failed
        | Nobody -> true)
      | _, Repair, Some p ->
        !repaired
        && Replicated.status p = `Normal
        && Replicated.pending_transfers p = 0
        && victim_weight () = max_w
      | _, Repair_then_rekill, Some p ->
        !rekilled && Replicated.status p = `Primary_failed
    in
    client_done && kill_done && drain_done ()
  in
  let rec drive () =
    min_victim_w := min !min_victim_w (victim_weight ());
    if (not (done_ ())) && World.now world < deadline then begin
      World.run world ~for_:(Time.ms 10);
      drive ()
    end
  in
  drive ();

  (* ---------------- invariants ---------------- *)
  let check cond msg = if not cond then violations := msg :: !violations in
  check
    (Buffer.contents buf = reply)
    (Printf.sprintf "client stream diverged from the application's (%d/%d B)"
       (Buffer.length buf) sc.size);
  check !eof "connection never delivered EOF to the client";
  check
    (match Tcb.state c with Tcb.Closed | Tcb.Time_wait -> true | _ -> false)
    (Printf.sprintf "connection never terminated (client state %s)"
       (Tcb.state_to_string (Tcb.state c)));
  check (!resets = 0) "client saw a connection reset";
  (* the drain connection: zero client-visible disruption while the
     victim shard fails over *)
  if sc.victim <> Nobody then begin
    check !drain_started "failure was never detected (no drain connection)";
    if not (drain_exempt ()) then begin
      check !drain_eof "drain connection never delivered EOF";
      check
        (Buffer.contents drain_buf = reply)
        (Printf.sprintf "drain stream diverged (%d/%d B)"
           (Buffer.length drain_buf) sc.size);
      check (!drain_resets = 0) "drain connection saw a reset"
    end
  end;
  (* pool status on the shard the kill actually hit *)
  (match (sc.victim, victim_pool ()) with
  | Nobody, _ ->
    List.iter
      (fun (name, pool) ->
        check
          (Replicated.status pool = `Normal)
          (Printf.sprintf "spurious failover on %s: status left Normal" name))
      pools
  | _, None -> check false "kill never resolved a victim shard"
  | _, Some p -> (
    match sc.repair with
    | No_repair ->
      check
        (Replicated.status p
        = (match sc.victim with
          | Primary -> `Primary_failed
          | _ -> `Secondary_failed))
        "victim shard's failure was never detected"
    | Repair ->
      check !repaired "repair never triggered";
      check
        (Replicated.status p = `Normal)
        "repaired shard never returned to Normal";
      check
        (Replicated.pending_transfers p = 0)
        "hot state transfers never settled";
      check
        (Replicated.transfer_failures p = 0)
        (Printf.sprintf
           "%d hot state transfer(s) failed under a lossy control channel"
           (Replicated.transfer_failures p))
    | Repair_then_rekill ->
      check !rekilled "re-kill never triggered";
      check
        (Replicated.status p = `Primary_failed)
        "survivor re-killed but the repaired host never detected it"));
  (* weight state machine: the victim shard provably drained and (after
     repair) returned to full weight; the sibling never moved *)
  (match !victim_name with
  | None -> ()
  | Some n ->
    check (!min_victim_w < max_w)
      (Printf.sprintf "victim shard %s never shed weight (min %d)" n
         !min_victim_w);
    if sc.repair = Repair then
      check
        (Dispatch.weight disp n = max_w)
        (Printf.sprintf "victim shard %s never ramped back (weight %d)" n
           (Dispatch.weight disp n))
    else if sc.victim <> Nobody then
      check
        (Dispatch.weight disp n <= max 1 (max_w / 4))
        (Printf.sprintf "unrepaired shard %s above the degraded floor (%d)" n
           (Dispatch.weight disp n));
    List.iter
      (fun (name, _) ->
        if name <> n then
          check
            (Dispatch.weight disp name = max_w)
            (Printf.sprintf "sibling shard %s shed weight (%d)" name
               (Dispatch.weight disp name)))
      pools);
  (* dispatcher counters: nothing refused (a sibling was always live),
     no cross-shard reply ever translated *)
  let ctrs = Dispatch.counters disp in
  check (ctrs.Dispatch.refused = 0)
    (Printf.sprintf "%d connection(s) refused by a drained fleet"
       ctrs.Dispatch.refused);
  check
    (ctrs.Dispatch.isolation_drops = 0)
    (Printf.sprintf "%d cross-shard reply(ies) dropped by isolation"
       ctrs.Dispatch.isolation_drops);
  check_transfer_mss xfer_capture ~check;
  {
    scenario = sc;
    violations = List.rev !violations;
    metrics = Registry.to_json (World.metrics world);
  }

let run ?on_world scenario =
  if scenario.fleet then run_fleet ?on_world scenario
  else
    match scenario.role with
    | Server | Backend_client -> run_replicated ?on_world scenario
    | Chain3 -> run_chain ?on_world scenario
