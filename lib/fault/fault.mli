(** Scripted fault plans: a tiny DSL for deterministic fault injection.

    A plan is a ';'-separated list of statements, each a trigger, an
    action and an optional probability gate:

    {v
    at 20ms kill primary
    after 5ms pause client
    at 15ms partition secondary for 8ms
    at 10ms drop 3 lan
    at 10ms corrupt 2 lan
    at 30ms loss lan 0.4 for 6ms
    every 10ms x 5 drop 1 lan p=0.5
    v}

    Triggers: [at T] fires at absolute simulated time [T]; [after T]
    fires [T] after installation; [every T \[x N\]] fires every [T]
    (forever, or [N] times).  Durations need a unit: [ns]/[us]/[ms]/[s].
    A trailing [p=F] gates each firing on a draw from the injector's
    seeded rng, so probabilistic plans replay identically for a given
    seed.

    Host actions name a host in the injector's environment; [drop],
    [corrupt] and [loss] name a medium or link.  [pause]/[resume] freeze
    and thaw a host ({!Tcpfo_host.Host.pause} semantics — distinct from
    [kill], which is a permanent fail-stop crash); [partition] detaches
    its traffic (not its timers) for a duration. *)

type trigger =
  | At of Tcpfo_sim.Time.t
  | After of Tcpfo_sim.Time.t
  | Every of Tcpfo_sim.Time.t * int option

type action =
  | Kill of string
  | Pause_host of string
  | Resume_host of string
  | Partition of string * Tcpfo_sim.Time.t
  | Drop_frames of int * string
  | Corrupt of int * string
  | Loss_burst of string * float * Tcpfo_sim.Time.t

type stmt = { trigger : trigger; action : action; prob : float option }
type plan = stmt list

val parse : string -> (plan, string) result
val parse_exn : string -> plan
(** [parse_exn] raises [Invalid_argument] with the parse error. *)

val to_string : plan -> string
(** Round-trips through {!parse}. *)

val time_to_string : Tcpfo_sim.Time.t -> string
