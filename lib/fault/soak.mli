(** Seeded failover soak scenarios: one scenario per seed, drawn from the
    cross product of kill victim × kill phase × background chaos ×
    transfer size × repair plan × pool shape × service role, run against
    a full replicated world (a pair, a three-replica pool with cascading
    failover, or a three-tier chain) built through {!Tcpfo_host.Topo}
    and checked against the paper's correctness requirements (§2).

    Invariants checked by {!run}:

    - the byte stream the client reads equals the reply the application
      wrote (no loss, duplication or reordering across a failover);
    - the connection terminates (EOF delivered, TCB reaches
      CLOSED/TIME_WAIT) and the client never sees an RST;
    - every segment on the wire from the service address stays in the
      original numbering: one SYN-ACK ISN, every data payload matching
      the reply at its sequence offset — after a takeover the secondary
      must keep speaking in the sequence space the client already knows;
    - the pair's failure status matches what was actually killed (no
      missed and no spurious detections);
    - a concurrent cross-traffic stream, when present, also completes
      intact;
    - in repair scenarios, every hot state transfer settles without a
      failure even when a [loss] plan covers the control channel, and
      no transfer datagram on the wire exceeds the MSS chunk bound;
    - in backend-role scenarios (§7.2: the pool holds the client end),
      the surviving replicas' application assembles the unreplicated
      backend's complete reply — after a repair, on the restored
      connection too — and the backend never sees a second ISN or an
      RST;
    - in chain scenarios a repaired host {!Tcpfo_core.Chain.rejoin}s at
      the tail, the chain returns to three live replicas with all
      transfers settled and no established connection stranded solo
      ([statex.isolated_conns] stays 0; a connection still mid-handshake
      at rejoin time is pinned solo by design);
    - in checkpointed scenarios a long-lived connection whose
      application checkpoints at every request boundary survives the
      repair under a tight retention budget: no reset, reply stream
      intact, progress after the transfers settle, checkpoints taken,
      no retention overflow.

    Everything — topology, chaos plan, kill instant — derives from the
    scenario's seed, so [run (scenario_of_seed s)] replays
    byte-identically, including its metrics snapshot. *)

type victim = Primary | Secondary | Nobody

type phase =
  | Handshake  (** kill during the three-way handshake *)
  | Transfer  (** kill mid-stream *)
  | Fin
      (** kill in the window between the server's FIN and the last ACK *)
  | Idle  (** kill well after the connection closed *)

type chaos =
  | Calm
  | Burst  (** short loss burst on the LAN (via a [loss] plan) *)
  | Drops  (** a few deterministic frame drops (via a [drop] plan) *)
  | Corruption  (** frames corrupted in flight (via a [corrupt] plan) *)
  | Cross_traffic  (** a second client streams from the pair concurrently *)
  | Pause_client  (** client host paused and resumed mid-connection *)
  | Partition_client  (** client unplugged from the LAN for a few ms *)

type repair = No_repair | Repair | Repair_then_rekill

type pool =
  | Pair  (** the paper's two-host pair *)
  | Pool3 of { rejoin_first : bool }
      (** a three-replica pool ([Replicated.create_pool] with one cold
          standby).  After the kill the pool cascades on its own: the
          standby is promoted and hot state transfer re-replicates the
          live connections.  Once the transfers settle the CURRENT
          primary is killed too — the §2 requirements must hold across
          both cascading failovers.  With [rejoin_first] a repaired
          host {!Tcpfo_core.Replicated.rejoin}s the back of the pool
          just before the second kill, so the pool ends fully recovered
          ([`Normal], transfers settled); without it the pool ends
          degraded on its last survivor. *)

type role =
  | Server  (** the pool listens; the client streams the reply down *)
  | Backend_client
      (** §7.2: the pool opens the connection to an unreplicated backend
          server (running on the client host) and streams the reply UP
          from it — the replicated end holds the client role, so the
          kill/repair cycle must restore a [connect_backend] connection
          (retained input replays the reply into the restored
          application) *)
  | Chain3
      (** a three-tier {!Tcpfo_core.Chain} serves the client; [Primary]
          kills the head, [Secondary] kills the tail, and repair goes
          through {!Tcpfo_core.Chain.rejoin} at the tail *)

type scenario = {
  seed : int;
  victim : victim;
  phase : phase;
  chaos : chaos;
  size : int;  (** reply size in bytes *)
  repair : repair;
      (** after the kill is detected: do nothing, reintegrate a fresh
          host (hot state transfer re-replicates live connections), or
          reintegrate and then kill the surviving original too — the
          connection must survive the second failover byte-exactly on
          the repaired host *)
  xfer_loss : float;
      (** loss probability of an 8 ms burst on the LAN opening the
          instant reintegration begins, so the hot state transfers run
          over a lossy control channel.  0 when [repair] is
          [No_repair].  Transfers must still all complete (streaming
          retransmission), never stranding a connection solo.  In pool
          scenarios the burst instead opens when the standby is
          promoted. *)
  pool : pool;
      (** drawn after every older axis, so adding the pool dimension
          left all earlier seed → scenario mappings intact.  When a
          pool is drawn the explicit [repair] axis is forced to
          [No_repair]: promotion from the pool IS the repair. *)
  role : role;
      (** drawn after everything older; forced to [Server] for the
          no-kill control, pool scenarios and cross traffic, so every
          pre-existing seed's world replays untouched *)
  fleet : bool;
      (** newest axis, drawn last: run the pair scenario behind a
          {!Tcpfo_dispatch.Dispatch} tier — two two-replica shards on a
          back segment, the client on a front segment, the kill aimed
          at whichever shard the connection is pinned to.  Adds fleet
          invariants: a drain connection opened right after detection
          completes byte-exactly through the fleet, the victim shard's
          weight provably decays (and ramps back to full after repair)
          while the sibling's never moves, nothing is refused, and no
          cross-shard reply crosses the isolation check.  Forced off
          for pool cascades, non-server roles and cross traffic. *)
  checkpointed : bool;
      (** newest axis, drawn after [fleet]: a long-lived request/reply
          connection rides alongside the main stream, its application
          calling {!Tcpfo_tcp.Tcb.checkpoint} at every request boundary,
          while the pool hosts run under a retention budget far smaller
          than the connection's lifetime traffic — only checkpoint
          truncation keeps it transferable.  Adds invariants: the
          connection is never reset, its reply stream stays intact, it
          demonstrably keeps serving after the hot state transfers
          settle (so the delta snapshot restored it live), checkpoints
          were actually taken, the retention budget never overflowed,
          and the connection — once established — was never stranded
          solo at a reintegration (a mid-handshake embryo is pinned
          solo by design; the client's SYN retry then opens a fresh,
          replicated connection).  Only drawn when a transfer happens
          (repair or pool promotion); forced off for fleet, non-server
          roles and cross traffic. *)
}

type outcome = {
  scenario : scenario;
  violations : string list;  (** empty iff every invariant held *)
  metrics : string;
      (** deterministic {!Tcpfo_obs.Registry.to_json} snapshot — equal
          strings across replays of the same seed *)
}

val scenario_of_seed : int -> scenario
val describe : scenario -> string

val run : ?on_world:(Tcpfo_host.World.t -> unit) -> scenario -> outcome
(** [on_world] is called with the freshly created world before anything
    is built on it (for harness bookkeeping). *)
