(** Installs a parsed {!Fault.plan} into a running simulation.

    The environment names the hosts and media/links a plan may target.
    Installing a plan schedules one engine event per trigger; count-based
    drop/corrupt budgets and loss bursts are applied through a single
    fault hook per referenced medium or link ({!Tcpfo_net.Medium.set_fault_hook}
    / {!Tcpfo_net.Link.set_fault_hook}) — the injector owns those hooks,
    so do not install competing ones on the same nets.

    All randomness (probability gates, loss bursts) draws from rngs
    derived from [env.rng], so a plan replays byte-identically under a
    fixed world seed. *)

type net = Medium_net of Tcpfo_net.Medium.t | Link_net of Tcpfo_net.Link.t

type env = {
  engine : Tcpfo_sim.Engine.t;
  rng : Tcpfo_util.Rng.t;
  hosts : (string * Tcpfo_host.Host.t) list;
  nets : (string * net) list;
}

type t

val install : env -> Fault.plan -> t
(** Validates every name in the plan against [env] (raising
    [Invalid_argument] on an unknown host or net), then schedules the
    plan's triggers.  [At] is absolute simulated time; [After] and the
    first [Every] firing are relative to the install instant. *)

val add : t -> Fault.plan -> unit
(** Schedule additional statements onto an installed injector — same
    validation and trigger semantics as {!install}, with [After]/first
    [Every] relative to the add instant.  Statements share the per-net
    fault state (and the single hook) with the original plan, so this is
    the way to stack faults onto already-faulted nets mid-run. *)
