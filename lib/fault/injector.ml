module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Medium = Tcpfo_net.Medium
module Link = Tcpfo_net.Link
module Fault_hook = Tcpfo_net.Fault_hook
module Host = Tcpfo_host.Host

type net = Medium_net of Medium.t | Link_net of Link.t

type env = {
  engine : Engine.t;
  rng : Rng.t;
  hosts : (string * Host.t) list;
  nets : (string * net) list;
}

(* Shared per-net fault state, consulted by the single hook the injector
   installs on each referenced medium/link.  Count-based drops take
   precedence over an active loss burst so a plan's drop budget is spent
   on the frames it was aimed at. *)
type net_state = {
  mutable drop_remaining : int;
  mutable corrupt_remaining : int;
  mutable burst_until : Time.t;
  mutable burst_prob : float;
  burst_rng : Rng.t;
}

type t = {
  env : env;
  states : (string, net_state) Hashtbl.t;
}

let host t name =
  match List.assoc_opt name t.env.hosts with
  | Some h -> h
  | None -> invalid_arg ("fault plan: unknown host " ^ name)

let net t name =
  match List.assoc_opt name t.env.nets with
  | Some n -> n
  | None -> invalid_arg ("fault plan: unknown medium/link " ^ name)

let verdict engine st =
  if st.drop_remaining > 0 then begin
    st.drop_remaining <- st.drop_remaining - 1;
    Fault_hook.Drop
  end
  else if st.corrupt_remaining > 0 then begin
    st.corrupt_remaining <- st.corrupt_remaining - 1;
    Fault_hook.Corrupt
  end
  else if
    Engine.now engine < st.burst_until
    && st.burst_prob > 0.0
    && Rng.bool st.burst_rng st.burst_prob
  then Fault_hook.Drop
  else Fault_hook.Pass

(* The hook (and its state) is installed at most once per net, the first
   time a plan statement references it. *)
let state t name =
  match Hashtbl.find_opt t.states name with
  | Some st -> st
  | None ->
    let st =
      { drop_remaining = 0; corrupt_remaining = 0; burst_until = 0;
        burst_prob = 0.0; burst_rng = Rng.split t.env.rng }
    in
    Hashtbl.add t.states name st;
    (match net t name with
    | Medium_net m ->
      Medium.set_fault_hook m (Some (fun _ -> verdict t.env.engine st))
    | Link_net l ->
      Link.set_fault_hook l (Some (fun _ -> verdict t.env.engine st)));
    st

let apply t = function
  | Fault.Kill h -> Host.kill (host t h)
  | Fault.Pause_host h -> Host.pause (host t h)
  | Fault.Resume_host h -> Host.resume (host t h)
  | Fault.Partition (h, dur) ->
    let hh = host t h in
    Host.set_partitioned hh true;
    ignore
      (Engine.schedule t.env.engine ~delay:dur (fun () ->
           Host.set_partitioned hh false))
  | Fault.Drop_frames (n, name) ->
    let st = state t name in
    st.drop_remaining <- st.drop_remaining + n
  | Fault.Corrupt (n, name) ->
    let st = state t name in
    st.corrupt_remaining <- st.corrupt_remaining + n
  | Fault.Loss_burst (name, p, dur) ->
    let st = state t name in
    st.burst_until <- Engine.now t.env.engine + dur;
    st.burst_prob <- p

let validate t stmt =
  match stmt.Fault.action with
  | Fault.Kill h | Fault.Pause_host h | Fault.Resume_host h
  | Fault.Partition (h, _) ->
    ignore (host t h)
  | Fault.Drop_frames (_, n) | Fault.Corrupt (_, n)
  | Fault.Loss_burst (n, _, _) ->
    ignore (net t n)

let schedule_stmt t stmt =
  let env = t.env in
  let fire () =
    let go =
      match stmt.Fault.prob with
      | None -> true
      | Some p -> Rng.bool env.rng p
    in
    if go then apply t stmt.Fault.action
  in
  match stmt.Fault.trigger with
  | Fault.At at -> ignore (Engine.schedule_at env.engine ~at fire)
  | Fault.After d -> ignore (Engine.schedule env.engine ~delay:d fire)
  | Fault.Every (period, count) ->
    let rec tick k () =
      (* k is the ordinal of this firing, 1-based *)
      let continue = match count with Some n -> k <= n | None -> true in
      if continue then begin
        fire ();
        ignore (Engine.schedule env.engine ~delay:period (tick (k + 1)))
      end
    in
    ignore (Engine.schedule env.engine ~delay:period (tick 1))

let add t plan =
  (* surface unknown names at install time, not at first firing *)
  List.iter (validate t) plan;
  List.iter (schedule_stmt t) plan

let install env plan =
  let t = { env; states = Hashtbl.create 4 } in
  add t plan;
  t
