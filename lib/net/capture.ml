module Engine = Tcpfo_sim.Engine
module Time = Tcpfo_sim.Time
module Eth_frame = Tcpfo_packet.Eth_frame
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type record = { at : Time.t; frame : Eth_frame.t }

type t = {
  engine : Engine.t;
  filter : Eth_frame.t -> bool;
  limit : int;
  mutable recs : record list; (* newest first *)
  n_kept : Registry.gauge; (* drops on eviction/clear, hence a gauge *)
  n_seen : Registry.counter;
  mutable running : bool;
  mutable port : Medium.port option;
  medium : Medium.t;
}

let start engine medium ?(filter = fun _ -> true) ?(limit = 100_000) ?obs ()
    =
  let obs =
    Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "capture"
  in
  let t =
    { engine; filter; limit; recs = []; n_kept = Obs.gauge obs "kept";
      n_seen = Obs.counter obs "seen"; running = true; port = None; medium }
  in
  let deliver frame =
    if t.running then begin
      Registry.Counter.incr t.n_seen;
      if t.filter frame then begin
        t.recs <- { at = Engine.now engine; frame } :: t.recs;
        Registry.Gauge.add t.n_kept 1;
        if Registry.Gauge.value t.n_kept > t.limit then begin
          (* drop the oldest record *)
          t.recs <- List.filteri (fun i _ -> i < t.limit) t.recs;
          Registry.Gauge.set t.n_kept t.limit
        end
      end
    end
  in
  t.port <- Some (Medium.attach medium ~deliver);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    match t.port with
    | Some p ->
      Medium.detach t.medium p;
      t.port <- None
    | None -> ()
  end

let count t = Registry.Gauge.value t.n_kept
let seen t = Registry.Counter.value t.n_seen
let records t = List.rev t.recs

let tcp_segments t =
  List.filter_map
    (fun r ->
      match r.frame.Eth_frame.payload with
      | Eth_frame.Ip ({ payload = Ipv4_packet.Tcp _; _ } as pkt) ->
        Some (r.at, pkt)
      | Eth_frame.Ip _ | Eth_frame.Arp _ -> None)
    (records t)

let dump t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Format.asprintf "[%a] %a@." Time.pp r.at Eth_frame.pp r.frame))
    (records t);
  Buffer.contents b

let clear t =
  t.recs <- [];
  Registry.Gauge.set t.n_kept 0
