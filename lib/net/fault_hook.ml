(* Shared verdict type for the fault-injection hooks that Medium and Link
   expose.  A hook sees each frame/datagram at the moment the wire decides
   its fate and can force one of three outcomes.  [Corrupt] models
   in-flight payload damage: the bits still occupy the wire for their full
   serialization time, but the receiving station's FCS/checksum discards
   the frame, so from the transport's point of view it behaves like loss —
   it is counted separately so experiments can tell configured loss,
   congestion and injected corruption apart. *)

type verdict =
  | Pass  (** leave the frame alone *)
  | Drop  (** lose it in flight *)
  | Corrupt  (** damage it in flight; the receiver's checksum rejects it *)
