(** Passive packet capture on a shared Ethernet segment — a promiscuous
    observer like tcpdump, for debugging, tests, and the CLI trace.

    A capture sees every frame on the medium (hub semantics), timestamped
    with the simulated clock, optionally filtered.  It consumes no
    bandwidth and no host CPU. *)

type t

type record = {
  at : Tcpfo_sim.Time.t;
  frame : Tcpfo_packet.Eth_frame.t;
}

val start :
  Tcpfo_sim.Engine.t ->
  Medium.t ->
  ?filter:(Tcpfo_packet.Eth_frame.t -> bool) ->
  ?limit:int ->
  ?obs:Tcpfo_obs.Obs.t ->
  unit ->
  t
(** Begin capturing.  [filter] keeps only matching frames (default: all);
    [limit] caps retained records (default 100_000; older records are
    dropped first).  When [obs] is given, the counter [capture.seen] and
    gauge [capture.kept] mirror {!seen} and {!count} in the registry. *)

val stop : t -> unit
val count : t -> int
(** Frames retained (post-filter). *)

val seen : t -> int
(** Frames observed (pre-filter). *)

val records : t -> record list
(** In capture order. *)

val tcp_segments :
  t -> (Tcpfo_sim.Time.t * Tcpfo_packet.Ipv4_packet.t) list
(** Just the TCP-bearing datagrams, for protocol assertions in tests. *)

val dump : t -> string
(** Multi-line human-readable rendering, one frame per line. *)

val clear : t -> unit
