module Engine = Tcpfo_sim.Engine
module Tick_queue = Tcpfo_sim.Tick_queue
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type config = {
  bandwidth_bps : int;
  delay : Time.t;
  jitter : Time.t;
  loss_prob : float;
  dup_prob : float;
  reorder_prob : float;
  queue_capacity : int;
}

let default_config =
  { bandwidth_bps = 10_000_000; delay = Time.ms 20; jitter = 0;
    loss_prob = 0.0; dup_prob = 0.0; reorder_prob = 0.0;
    queue_capacity = 64 }

(* One direction: a serializing queue feeding a delay line.  [tx_blocked]
   cuts off the sending endpoint (partition fault): packets offered to a
   blocked direction vanish before queueing.  [rx_blocked] cuts off the
   receiving endpoint: packets already in flight are discarded at delivery
   time, as if the cable were unplugged at that end. *)
type direction = {
  mutable receiver : Ipv4_packet.t -> unit;
  queue : Ipv4_packet.t Queue.t;
  deliveries : Ipv4_packet.t Tick_queue.t;
      (* in-flight packets batched by delivery instant; jitter/reorder
         make due times non-monotone, the queue orders them *)
  mutable transmitting : bool;
  mutable tx_blocked : bool;
  mutable rx_blocked : bool;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  a_to_b : direction;
  b_to_a : direction;
  mutable fault_hook : (Ipv4_packet.t -> Fault_hook.verdict) option;
  dropped : Registry.counter;
  queue_full : Registry.counter;
  delivered : Registry.counter;
  fault_dropped : Registry.counter;
  corrupted : Registry.counter;
}

type endpoint = { link : t; out_dir : direction; in_dir : direction }

(* The delivery closure reads the direction's live [rx_blocked]/[receiver]
   fields, so the direction is built first and the queue's fire patched
   in after. *)
let mk_direction engine ~delivered ~fault_dropped =
  let dir =
    { receiver = (fun _ -> ()); queue = Queue.create ();
      deliveries = Tick_queue.create engine ~fire:ignore;
      transmitting = false; tx_blocked = false; rx_blocked = false }
  in
  Tick_queue.set_fire dir.deliveries (fun p ->
      if dir.rx_blocked then Registry.Counter.incr fault_dropped
      else begin
        Registry.Counter.incr delivered;
        dir.receiver p
      end);
  dir

let create engine ~rng ?obs config =
  let obs =
    Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "link"
  in
  let delivered = Obs.counter obs "delivered" in
  let fault_dropped = Obs.counter obs "fault_dropped" in
  { engine; rng; config;
    a_to_b = mk_direction engine ~delivered ~fault_dropped;
    b_to_a = mk_direction engine ~delivered ~fault_dropped;
    fault_hook = None;
    dropped = Obs.counter obs "dropped";
    queue_full = Obs.counter obs "queue_full";
    delivered;
    fault_dropped;
    corrupted = Obs.counter obs "corrupted" }

let set_fault_hook t h = t.fault_hook <- h

let endpoint_a t = { link = t; out_dir = t.a_to_b; in_dir = t.b_to_a }
let endpoint_b t = { link = t; out_dir = t.b_to_a; in_dir = t.a_to_b }

let set_receiver ep fn = ep.in_dir.receiver <- fn

let serialization_time t p =
  Ipv4_packet.wire_length p * 8 * 1_000_000_000 / t.config.bandwidth_bps

let rec pump t dir =
  match Queue.peek_opt dir.queue with
  | None -> dir.transmitting <- false
  | Some p ->
    ignore (Queue.pop dir.queue);
    dir.transmitting <- true;
    let ser = serialization_time t p in
    let lost = t.config.loss_prob > 0.0 && Rng.bool t.rng t.config.loss_prob in
    if lost then Registry.Counter.incr t.dropped;
    (* the fault hook rules after the configured random loss has drawn, so
       a pass-through hook leaves the rng stream untouched *)
    let lost =
      match t.fault_hook with
      | None -> lost
      | Some hook -> (
        match hook p with
        | Fault_hook.Pass -> lost
        | Fault_hook.Drop ->
          if not lost then Registry.Counter.incr t.fault_dropped;
          true
        | Fault_hook.Corrupt ->
          if not lost then Registry.Counter.incr t.corrupted;
          true)
    in
    let extra =
      if t.config.jitter > 0 then Rng.int t.rng (t.config.jitter + 1) else 0
    in
    (* a reordered packet is held back by several serialization times so
       that packets behind it overtake *)
    let extra =
      if t.config.reorder_prob > 0.0 && Rng.bool t.rng t.config.reorder_prob
      then extra + (ser * (2 + Rng.int t.rng 6))
      else extra
    in
    if not lost then begin
      let deliver_once delay =
        Tick_queue.add dir.deliveries ~due:(Engine.now t.engine + delay) p
      in
      deliver_once (ser + t.config.delay + extra);
      if t.config.dup_prob > 0.0 && Rng.bool t.rng t.config.dup_prob then
        deliver_once (ser + t.config.delay + extra + (ser / 2) + 1)
    end;
    ignore (Engine.schedule t.engine ~delay:ser (fun () -> pump t dir))

let send ep p =
  let t = ep.link in
  let dir = ep.out_dir in
  if dir.tx_blocked then Registry.Counter.incr t.fault_dropped
  else if Queue.length dir.queue >= t.config.queue_capacity then
    (* congestion drop, distinct from random in-flight loss *)
    Registry.Counter.incr t.queue_full
  else begin
    Queue.push p dir.queue;
    if not dir.transmitting then pump t dir
  end

let set_blocked ep b =
  ep.out_dir.tx_blocked <- b;
  ep.in_dir.rx_blocked <- b
