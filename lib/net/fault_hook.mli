(** Verdicts returned by fault-injection hooks on {!Medium} and {!Link}.

    [Corrupt] models in-flight payload damage: the frame still occupies
    the wire, but the receiver's FCS/checksum discards it, so the
    transport experiences it as loss.  It is counted separately from
    [Drop] so that configured loss, congestion drops and injected
    corruption remain distinguishable in metrics snapshots. *)

type verdict = Pass | Drop | Corrupt
