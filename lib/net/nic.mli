(** Network interface card attached to a shared Ethernet {!Medium}.

    Filters incoming frames by destination MAC unless promiscuous mode is
    enabled — the secondary server's bridge enables it to snoop every
    datagram the client sends to the primary (paper §3.1) and disables it
    again during failover (paper §5, step 2). *)

type t

val create :
  Tcpfo_sim.Engine.t ->
  mac:Tcpfo_packet.Macaddr.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  Medium.t ->
  t
(** Counters [nic.rx] (accepted frames) and [nic.tx] are registered
    under [obs]. *)

val mac : t -> Tcpfo_packet.Macaddr.t

val set_promiscuous : t -> bool -> unit
val promiscuous : t -> bool

val set_partitioned : t -> bool -> unit
(** While partitioned the NIC stays attached to the medium but silently
    discards everything: incoming frames are never delivered upward and
    outgoing frames never reach the wire.  Models unplugging the cable
    (or a switch port going down) without the host noticing — unlike
    {!shutdown}, the fault is reversible. *)

val partitioned : t -> bool

val set_rx :
  t -> (Tcpfo_packet.Eth_frame.t -> addressed_to_me:bool -> unit) -> unit
(** Upcall for accepted frames.  [addressed_to_me] is true for unicast
    frames matching our MAC and for broadcast; false for frames only seen
    because promiscuous mode is on. *)

val send : t -> dst:Tcpfo_packet.Macaddr.t -> Tcpfo_packet.Eth_frame.payload -> unit

val up : t -> bool

val shutdown : t -> unit
(** Detach from the medium; no further tx or rx.  Crash-fault injection. *)
