(** Full-duplex point-to-point link carrying IP datagrams (PPP-style).

    Models the wide-area path of the paper's FTP experiment (§9, Fig. 6):
    finite bandwidth, propagation delay, optional jitter, random loss, and
    a drop-tail queue.  Each direction is independent. *)

type t
type endpoint

type config = {
  bandwidth_bps : int;
  delay : Tcpfo_sim.Time.t;       (** one-way propagation *)
  jitter : Tcpfo_sim.Time.t;      (** max extra uniform random delay *)
  loss_prob : float;              (** per-packet drop probability *)
  dup_prob : float;               (** per-packet duplication probability *)
  reorder_prob : float;
      (** probability that a packet is held back long enough for later
          packets to overtake it *)
  queue_capacity : int;           (** packets per direction *)
}

val default_config : config
(** 10 Mb/s, 20 ms delay, no jitter, no loss/dup/reorder, 64-packet
    queue. *)

val create :
  Tcpfo_sim.Engine.t ->
  rng:Tcpfo_util.Rng.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config ->
  t
(** Counters registered under [obs]: [link.dropped] (random in-flight
    loss), [link.queue_full] (drop-tail queue overflow — counted
    separately from loss so congestion is distinguishable in metrics),
    [link.delivered], and [link.fault_dropped] / [link.corrupted]
    (injected faults, see {!set_fault_hook} and {!set_blocked}). *)

val endpoint_a : t -> endpoint
val endpoint_b : t -> endpoint

val set_receiver : endpoint -> (Tcpfo_packet.Ipv4_packet.t -> unit) -> unit
(** Handler for datagrams arriving at this end. *)

val send : endpoint -> Tcpfo_packet.Ipv4_packet.t -> unit
(** Transmit toward the opposite end. *)

val set_fault_hook :
  t -> (Tcpfo_packet.Ipv4_packet.t -> Fault_hook.verdict) option -> unit
(** Install (or clear) a deterministic fault-injection hook, consulted for
    every datagram (both directions) as it leaves the head of the queue —
    after the configured random [loss_prob] has drawn from the link's rng,
    so a pass-through hook leaves the rng stream untouched.  [Drop] and
    [Corrupt] verdicts suppress delivery and bump [link.fault_dropped] /
    [link.corrupted] respectively. *)

val set_blocked : endpoint -> bool -> unit
(** Partition this endpoint: while blocked, datagrams it sends vanish
    before queueing and datagrams arriving for it are discarded at
    delivery time (both counted as [link.fault_dropped]).  The opposite
    endpoint is unaffected.  Unblocking does not resurrect anything
    discarded meanwhile. *)
