(** Full-duplex point-to-point link carrying IP datagrams (PPP-style).

    Models the wide-area path of the paper's FTP experiment (§9, Fig. 6):
    finite bandwidth, propagation delay, optional jitter, random loss, and
    a drop-tail queue.  Each direction is independent. *)

type t
type endpoint

type config = {
  bandwidth_bps : int;
  delay : Tcpfo_sim.Time.t;       (** one-way propagation *)
  jitter : Tcpfo_sim.Time.t;      (** max extra uniform random delay *)
  loss_prob : float;              (** per-packet drop probability *)
  dup_prob : float;               (** per-packet duplication probability *)
  reorder_prob : float;
      (** probability that a packet is held back long enough for later
          packets to overtake it *)
  queue_capacity : int;           (** packets per direction *)
}

val default_config : config
(** 10 Mb/s, 20 ms delay, no jitter, no loss/dup/reorder, 64-packet
    queue. *)

val create :
  Tcpfo_sim.Engine.t ->
  rng:Tcpfo_util.Rng.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config ->
  t
(** Counters [link.dropped] (random loss + queue overflow, both
    directions) and [link.delivered] are registered under [obs]. *)

val endpoint_a : t -> endpoint
val endpoint_b : t -> endpoint

val set_receiver : endpoint -> (Tcpfo_packet.Ipv4_packet.t -> unit) -> unit
(** Handler for datagrams arriving at this end. *)

val send : endpoint -> Tcpfo_packet.Ipv4_packet.t -> unit
(** Transmit toward the opposite end. *)
