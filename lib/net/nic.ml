module Eth_frame = Tcpfo_packet.Eth_frame
module Macaddr = Tcpfo_packet.Macaddr
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type t = {
  mac : Macaddr.t;
  medium : Medium.t;
  mutable port : Medium.port option;
  mutable promiscuous : bool;
  mutable partitioned : bool;
  mutable rx : Eth_frame.t -> addressed_to_me:bool -> unit;
  rx_count : Registry.counter;
  tx_count : Registry.counter;
}

let create _engine ~mac ?obs medium =
  let obs =
    Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "nic"
  in
  let t =
    { mac; medium; port = None; promiscuous = false; partitioned = false;
      rx = (fun _ ~addressed_to_me:_ -> ());
      rx_count = Obs.counter obs "rx"; tx_count = Obs.counter obs "tx" }
  in
  let deliver frame =
    let to_me =
      Macaddr.equal frame.Eth_frame.dst t.mac
      || Macaddr.is_broadcast frame.Eth_frame.dst
    in
    if (to_me || t.promiscuous) && not t.partitioned then begin
      Registry.Counter.incr t.rx_count;
      t.rx frame ~addressed_to_me:to_me
    end
  in
  t.port <- Some (Medium.attach medium ~deliver);
  t

let mac t = t.mac
let set_promiscuous t v = t.promiscuous <- v
let promiscuous t = t.promiscuous
let set_partitioned t v = t.partitioned <- v
let partitioned t = t.partitioned
let set_rx t fn = t.rx <- fn
let up t = t.port <> None

let send t ~dst payload =
  match t.port with
  | None -> ()
  | Some _ when t.partitioned -> ()
  | Some port ->
    Registry.Counter.incr t.tx_count;
    Medium.transmit t.medium port (Eth_frame.make ~src:t.mac ~dst payload)

let shutdown t =
  match t.port with
  | None -> ()
  | Some port ->
    Medium.detach t.medium port;
    t.port <- None
