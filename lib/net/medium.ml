module Engine = Tcpfo_sim.Engine
module Tick_queue = Tcpfo_sim.Tick_queue
module Time = Tcpfo_sim.Time
module Rng = Tcpfo_util.Rng
module Vec = Tcpfo_util.Vec
module Eth_frame = Tcpfo_packet.Eth_frame
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type config = {
  bandwidth_bps : int;
  propagation : Time.t;
  loss_prob : float;
  enable_collisions : bool;
  collision_prob : float;
}

let default_config =
  { bandwidth_bps = 100_000_000; propagation = Time.us 1; loss_prob = 0.0;
    enable_collisions = true; collision_prob = 0.3 }

type port = {
  id : int;
  mutable deliver : Eth_frame.t -> unit;
  mutable attached : bool;
  backlog : Eth_frame.t Queue.t;
  mutable attempts : int; (* collisions suffered by the head frame *)
  mutable deferring : bool; (* queued waiting for the medium to go idle *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  ports : port Vec.t; (* in attach order, for determinism *)
  deliveries : (Eth_frame.t * int) Tick_queue.t;
      (* (frame, sender id) batched per delivery instant: one engine
         event drains every frame due at that time instead of one event
         per frame *)
  mutable next_id : int;
  mutable busy : bool;
  waiters : port Queue.t; (* deferring stations, FIFO; filtered lazily *)
  mutable fault_hook : (Eth_frame.t -> Fault_hook.verdict) option;
  collisions : Registry.counter;
  frames : Registry.counter;
  bytes : Registry.counter;
  fault_dropped : Registry.counter;
  corrupted : Registry.counter;
  mutable busy_ns : Time.t;
}

let create engine ~rng ?obs config =
  let obs =
    Obs.scope (match obs with Some o -> o | None -> Obs.silent ()) "medium"
  in
  let ports = Vec.create () in
  let deliveries =
    Tick_queue.create engine ~fire:(fun (frame, sender) ->
        Vec.iter
          (fun q -> if q.attached && q.id <> sender then q.deliver frame)
          ports)
  in
  { engine; rng; config; ports; deliveries; next_id = 0; busy = false;
    waiters = Queue.create (); fault_hook = None;
    collisions = Obs.counter obs "collisions";
    frames = Obs.counter obs "frames"; bytes = Obs.counter obs "bytes";
    fault_dropped = Obs.counter obs "fault_dropped";
    corrupted = Obs.counter obs "corrupted";
    busy_ns = 0 }

let set_fault_hook t h = t.fault_hook <- h

let attach t ~deliver =
  let p =
    { id = t.next_id; deliver; attached = true; backlog = Queue.create ();
      attempts = 0; deferring = false }
  in
  t.next_id <- t.next_id + 1;
  Vec.push t.ports p;
  p

let detach t p =
  p.attached <- false;
  Queue.clear p.backlog;
  ignore (Vec.remove_first (fun q -> q.id = p.id) t.ports)
(* a detached port still queued in [waiters] is skipped at the next
   idle transition *)

(* Serialization time includes 8 bytes preamble + 12 bytes inter-frame gap. *)
let serialization_time t frame =
  let bits = (Eth_frame.wire_length frame + 20) * 8 in
  bits * 1_000_000_000 / t.config.bandwidth_bps

let slot_time = Time.ns 5_120 (* 512 bit times at 100 Mb/s *)
let max_attempts = 16

let rec start_single t p =
  match Queue.peek_opt p.backlog with
  | None -> ()
  | Some frame ->
    ignore (Queue.pop p.backlog);
    p.attempts <- 0;
    t.busy <- true;
    let ser = serialization_time t frame in
    t.busy_ns <- t.busy_ns + ser;
    Registry.Counter.incr t.frames;
    Registry.Counter.add t.bytes (Eth_frame.wire_length frame);
    let lost =
      t.config.loss_prob > 0.0 && Rng.bool t.rng t.config.loss_prob
    in
    (* The fault hook rules on every frame after the configured random
       loss has drawn from the rng (so the rng stream is identical with
       and without a pass-through hook).  Dropped and corrupted frames
       still occupy the wire for their serialization time; only delivery
       is suppressed. *)
    let lost =
      match t.fault_hook with
      | None -> lost
      | Some hook -> (
        match hook frame with
        | Fault_hook.Pass -> lost
        | Fault_hook.Drop ->
          Registry.Counter.incr t.fault_dropped;
          true
        | Fault_hook.Corrupt ->
          Registry.Counter.incr t.corrupted;
          true)
    in
    (* Delivery completes one serialization + propagation later.  A frame
       already decided lost never enqueues its (no-op) delivery. *)
    if not lost then
      Tick_queue.add t.deliveries
        ~due:(Engine.now t.engine + ser + t.config.propagation)
        (frame, p.id);
    ignore
      (Engine.schedule t.engine ~delay:ser (fun () ->
           t.busy <- false;
           if p.attached && not (Queue.is_empty p.backlog) then defer t p;
           on_idle t))

and on_idle t =
  (* Drain every waiter (FIFO); stations that detached or drained their
     backlog while queued are dropped here. *)
  let ready_rev = ref [] in
  while not (Queue.is_empty t.waiters) do
    let p = Queue.pop t.waiters in
    if p.attached && not (Queue.is_empty p.backlog) then
      ready_rev := p :: !ready_rev
  done;
  let ready = List.rev !ready_rev in
  List.iter (fun p -> p.deferring <- false) ready;
  match ready with
  | [] -> ()
  | [ p ] -> start_single t p
  | contenders when not t.config.enable_collisions ->
    (* deterministic FIFO service *)
    (match contenders with
    | first :: rest ->
      List.iter (fun p -> defer t p) rest;
      start_single t first
    | [] -> ())
  | contenders
    when t.config.collision_prob < 1.0
         && not (Rng.bool t.rng t.config.collision_prob) ->
    (* Contention resolved by carrier sense: the first waiter starts, the
       rest keep deferring. *)
    (match contenders with
    | first :: rest ->
      List.iter (fun p -> defer t p) rest;
      start_single t first
    | [] -> ())
  | contenders ->
    (* Collision: jam, then each contender backs off and retries. *)
    Registry.Counter.incr t.collisions;
    t.busy <- true;
    t.busy_ns <- t.busy_ns + slot_time;
    ignore
      (Engine.schedule t.engine ~delay:slot_time (fun () ->
           t.busy <- false;
           on_idle t));
    List.iter
      (fun p ->
        p.attempts <- p.attempts + 1;
        if p.attempts > max_attempts then begin
          ignore (Queue.pop p.backlog);
          p.attempts <- 0;
          if not (Queue.is_empty p.backlog) then retry_later t p 0
        end
        else begin
          let k = min p.attempts 10 in
          let slots = Rng.int t.rng (1 lsl k) in
          retry_later t p slots
        end)
      contenders

and retry_later t p slots =
  ignore
    (Engine.schedule t.engine
       ~delay:(slot_time + (slots * slot_time))
       (fun () -> try_send t p))

and defer t p =
  if not p.deferring then begin
    p.deferring <- true;
    Queue.push p t.waiters
  end

and try_send t p =
  if p.attached && not (Queue.is_empty p.backlog) then
    if t.busy then defer t p else start_single t p

let transmit t p frame =
  if p.attached then begin
    Queue.push frame p.backlog;
    if not p.deferring then try_send t p
  end

let busy_time t = t.busy_ns
