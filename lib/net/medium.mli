(** Shared half-duplex Ethernet segment (hub semantics) with CSMA/CD.

    Every attached port sees every frame — which is precisely what lets the
    secondary server's promiscuous NIC snoop the client↔primary traffic
    (paper §3.1).  The medium serializes transmissions at the configured
    bandwidth; stations that contend for the wire when it becomes idle
    collide and perform truncated binary exponential backoff, producing the
    collision-induced throughput non-linearity the paper observes in
    Figure 4. *)

type t
type port

type config = {
  bandwidth_bps : int;   (** e.g. 100_000_000 for 100 Mb/s *)
  propagation : Tcpfo_sim.Time.t; (** one-way propagation delay *)
  loss_prob : float;     (** random frame corruption probability *)
  enable_collisions : bool;
  collision_prob : float;
      (** probability that stations contending for the idle wire actually
          start within the same slot and collide (saturated two-station
          Ethernet resolves most contentions by carrier sense) *)
}

val default_config : config
(** 100 Mb/s, 1 µs propagation, no random loss, collisions enabled with
    0.3 contention-collision probability. *)

val create :
  Tcpfo_sim.Engine.t ->
  rng:Tcpfo_util.Rng.t ->
  ?obs:Tcpfo_obs.Obs.t ->
  config ->
  t
(** Counters [medium.collisions], [medium.frames], [medium.bytes],
    [medium.fault_dropped] and [medium.corrupted] are registered under
    [obs] (scoped one level deeper with ["medium"]). *)

val attach : t -> deliver:(Tcpfo_packet.Eth_frame.t -> unit) -> port
(** Register a station.  [deliver] is invoked for every frame put on the
    wire by any other station (filtering by destination MAC is the NIC's
    job). *)

val detach : t -> port -> unit
(** Remove a station; queued transmissions from it are discarded.  Used for
    crash-fault injection. *)

val transmit : t -> port -> Tcpfo_packet.Eth_frame.t -> unit
(** Queue a frame for transmission from the given port. *)

val set_fault_hook :
  t -> (Tcpfo_packet.Eth_frame.t -> Fault_hook.verdict) option -> unit
(** Install (or clear) a deterministic fault-injection hook, consulted for
    every frame at the moment it is committed to the wire — after the
    configured random [loss_prob] has drawn from the medium's rng, so a
    pass-through hook leaves the rng stream untouched.  [Drop] and
    [Corrupt] verdicts suppress delivery (the frame still occupies the
    wire for its serialization time) and bump the [medium.fault_dropped] /
    [medium.corrupted] counters respectively. *)

val busy_time : t -> Tcpfo_sim.Time.t
(** Cumulative time the medium has spent transmitting or jamming;
    utilization over an interval is the delta divided by elapsed time. *)
