(** RFC-layout encoding and decoding of TCP segments and IPv4 headers.

    The simulator moves structured values for speed, but these codecs are
    the ground truth for sizes and checksums: the bridge's incremental
    checksum adjustment (paper §3.1) is validated against a full re-encode
    in the test suite, and hosts can be configured to round-trip every
    segment through octets to prove nothing depends on structure sharing. *)

exception Malformed of string

val encode_tcp :
  src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> Tcp_segment.t -> bytes
(** Encode with a valid checksum computed over the IPv4 pseudo-header. *)

val decode_tcp :
  src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> bytes -> Tcp_segment.t
(** Raises {!Malformed} on short input, bad offsets or checksum mismatch. *)

val tcp_checksum :
  src_ip:Ipaddr.t -> dst_ip:Ipaddr.t -> bytes -> int
(** Checksum of an encoded segment, with the checksum field zeroed by the
    caller or not — computed over the given bytes plus pseudo-header. *)

val encode_ipv4_header : Ipv4_packet.t -> payload_len:int -> bytes
(** The 20-byte header with a valid header checksum. *)

val decode_ipv4_header : bytes -> Ipaddr.t * Ipaddr.t * int * int
(** [decode_ipv4_header b] returns (src, dst, protocol, total_len).
    Raises {!Malformed} on checksum or version errors, when [total_len]
    is smaller than the 20-byte header, and — when [b] holds more than
    the bare header, i.e. the datagram itself — when [total_len] claims
    more bytes than [b] actually contains (truncation). *)

val rewrite_dst_ip :
  src_ip:Ipaddr.t -> old_dst:Ipaddr.t -> new_dst:Ipaddr.t -> bytes -> unit
(** Patch the destination address inside an encoded TCP segment's checksum
    in place, using the incremental RFC 1624 update — the operation the
    bridge performs when diverting segments.  (The address itself lives in
    the IP header; only the TCP pseudo-header checksum needs fixing.) *)
