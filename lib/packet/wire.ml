module Checksum = Tcpfo_util.Checksum
module Seq32 = Tcpfo_util.Seq32

exception Malformed of string

let get16 b off = (Char.code (Bytes.get b off) lsl 8)
                  lor Char.code (Bytes.get b (off + 1))

let get32 b off = (get16 b off lsl 16) lor get16 b (off + 2)

let set16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let set32 b off v =
  set16 b off ((v lsr 16) land 0xFFFF);
  set16 b (off + 2) (v land 0xFFFF)

(* Pseudo-header sum: src, dst, zero+proto(6), tcp length. *)
let pseudo_sum ~src_ip ~dst_ip ~tcp_len =
  let s = Ipaddr.to_int src_ip and d = Ipaddr.to_int dst_ip in
  (s lsr 16) + (s land 0xFFFF) + (d lsr 16) + (d land 0xFFFF) + 6 + tcp_len

let tcp_checksum ~src_ip ~dst_ip b =
  let accum = pseudo_sum ~src_ip ~dst_ip ~tcp_len:(Bytes.length b) in
  Checksum.of_bytes ~accum b

let flags_byte (f : Tcp_segment.flags) =
  (if f.fin then 0x01 else 0) lor (if f.syn then 0x02 else 0)
  lor (if f.rst then 0x04 else 0) lor (if f.psh then 0x08 else 0)
  lor (if f.ack then 0x10 else 0) lor if f.urg then 0x20 else 0

let flags_of_byte v : Tcp_segment.flags =
  { fin = v land 0x01 <> 0; syn = v land 0x02 <> 0; rst = v land 0x04 <> 0;
    psh = v land 0x08 <> 0; ack = v land 0x10 <> 0; urg = v land 0x20 <> 0 }

(* Option kinds: 0 EOL, 1 NOP, 2 MSS, 3 window scale, 4 SACK-permitted,
   8 timestamps, 253 experimental = Orig_dst (failover option, §3.1). *)
let encode_options opts =
  let buf = Buffer.create 8 in
  List.iter
    (fun (o : Tcp_segment.option_) ->
      match o with
      | Nop -> Buffer.add_char buf '\001'
      | Mss m ->
        Buffer.add_char buf '\002';
        Buffer.add_char buf '\004';
        Buffer.add_char buf (Char.chr ((m lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr (m land 0xFF))
      | Window_scale sc ->
        Buffer.add_char buf '\003';
        Buffer.add_char buf '\003';
        Buffer.add_char buf (Char.chr (sc land 0xFF))
      | Timestamps (v, e) ->
        Buffer.add_char buf '\008';
        Buffer.add_char buf '\010';
        let add32 x =
          Buffer.add_char buf (Char.chr ((x lsr 24) land 0xFF));
          Buffer.add_char buf (Char.chr ((x lsr 16) land 0xFF));
          Buffer.add_char buf (Char.chr ((x lsr 8) land 0xFF));
          Buffer.add_char buf (Char.chr (x land 0xFF))
        in
        add32 v;
        add32 e
      | Sack_permitted ->
        Buffer.add_char buf '\004';
        Buffer.add_char buf '\002'
      | Sack blocks ->
        Buffer.add_char buf '\005';
        Buffer.add_char buf (Char.chr (2 + (8 * List.length blocks)));
        List.iter
          (fun (lo, hi) ->
            let add32 x =
              Buffer.add_char buf (Char.chr ((x lsr 24) land 0xFF));
              Buffer.add_char buf (Char.chr ((x lsr 16) land 0xFF));
              Buffer.add_char buf (Char.chr ((x lsr 8) land 0xFF));
              Buffer.add_char buf (Char.chr (x land 0xFF))
            in
            add32 (Seq32.to_int lo);
            add32 (Seq32.to_int hi))
          blocks
      | Orig_dst ip ->
        let v = Ipaddr.to_int ip in
        Buffer.add_char buf '\253';
        Buffer.add_char buf '\006';
        Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
        Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
        Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
        Buffer.add_char buf (Char.chr (v land 0xFF)))
    opts;
  (* pad with EOL to a 4-byte boundary *)
  while Buffer.length buf mod 4 <> 0 do
    Buffer.add_char buf '\000'
  done;
  Buffer.contents buf

let decode_options s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match Char.code s.[i] with
      | 0 -> List.rev acc (* EOL *)
      | 1 -> go (i + 1) (Tcp_segment.Nop :: acc)
      | kind ->
        if i + 1 >= n then raise (Malformed "option length truncated");
        let len = Char.code s.[i + 1] in
        if len < 2 || i + len > n then raise (Malformed "bad option length");
        let acc =
          match kind with
          | 2 when len = 4 ->
            let m = (Char.code s.[i + 2] lsl 8) lor Char.code s.[i + 3] in
            Tcp_segment.Mss m :: acc
          | 3 when len = 3 -> Tcp_segment.Window_scale (Char.code s.[i + 2]) :: acc
          | 8 when len = 10 ->
            let g32 off =
              (Char.code s.[off] lsl 24)
              lor (Char.code s.[off + 1] lsl 16)
              lor (Char.code s.[off + 2] lsl 8)
              lor Char.code s.[off + 3]
            in
            Tcp_segment.Timestamps (g32 (i + 2), g32 (i + 6)) :: acc
          | 4 when len = 2 -> Tcp_segment.Sack_permitted :: acc
          | 5 when len >= 10 && (len - 2) mod 8 = 0 ->
            let g32 off =
              (Char.code s.[off] lsl 24)
              lor (Char.code s.[off + 1] lsl 16)
              lor (Char.code s.[off + 2] lsl 8)
              lor Char.code s.[off + 3]
            in
            let blocks =
              List.init ((len - 2) / 8) (fun k ->
                  ( Seq32.of_int (g32 (i + 2 + (8 * k))),
                    Seq32.of_int (g32 (i + 6 + (8 * k))) ))
            in
            Tcp_segment.Sack blocks :: acc
          | 253 when len = 6 ->
            let v =
              (Char.code s.[i + 2] lsl 24) lor (Char.code s.[i + 3] lsl 16)
              lor (Char.code s.[i + 4] lsl 8) lor Char.code s.[i + 5]
            in
            Tcp_segment.Orig_dst (Ipaddr.of_int v) :: acc
          | _ -> acc (* unknown options are skipped *)
        in
        go (i + len) acc
  in
  go 0 []

let encode_tcp ~src_ip ~dst_ip (seg : Tcp_segment.t) =
  let opts = encode_options seg.options in
  let hlen = 20 + String.length opts in
  assert (hlen mod 4 = 0 && hlen <= 60);
  let total = hlen + String.length seg.payload in
  let b = Bytes.make total '\000' in
  set16 b 0 seg.src_port;
  set16 b 2 seg.dst_port;
  set32 b 4 (Seq32.to_int seg.seq);
  set32 b 8 (Seq32.to_int seg.ack);
  Bytes.set b 12 (Char.chr ((hlen / 4) lsl 4));
  Bytes.set b 13 (Char.chr (flags_byte seg.flags));
  set16 b 14 seg.window;
  (* checksum at 16 stays zero for now *)
  set16 b 18 seg.urgent;
  Bytes.blit_string opts 0 b 20 (String.length opts);
  Bytes.blit_string seg.payload 0 b hlen (String.length seg.payload);
  let ck = tcp_checksum ~src_ip ~dst_ip b in
  set16 b 16 ck;
  b

let decode_tcp ~src_ip ~dst_ip b : Tcp_segment.t =
  if Bytes.length b < 20 then raise (Malformed "short TCP header");
  let hlen = (Char.code (Bytes.get b 12) lsr 4) * 4 in
  if hlen < 20 || hlen > Bytes.length b then
    raise (Malformed "bad data offset");
  let accum = pseudo_sum ~src_ip ~dst_ip ~tcp_len:(Bytes.length b) in
  if Checksum.finish (Checksum.partial ~accum b) <> 0 then
    raise (Malformed "TCP checksum mismatch");
  let options =
    decode_options (Bytes.sub_string b 20 (hlen - 20))
  in
  {
    src_port = get16 b 0;
    dst_port = get16 b 2;
    seq = Seq32.of_int (get32 b 4);
    ack = Seq32.of_int (get32 b 8);
    flags = flags_of_byte (Char.code (Bytes.get b 13));
    window = get16 b 14;
    urgent = get16 b 18;
    options;
    payload = Bytes.sub_string b hlen (Bytes.length b - hlen);
  }

let encode_ipv4_header (p : Ipv4_packet.t) ~payload_len =
  let b = Bytes.make 20 '\000' in
  Bytes.set b 0 '\x45';
  set16 b 2 (20 + payload_len);
  set16 b 4 p.ident;
  Bytes.set b 8 (Char.chr (p.ttl land 0xFF));
  Bytes.set b 9 (Char.chr (Ipv4_packet.protocol_number p.payload));
  set32 b 12 (Ipaddr.to_int p.src);
  set32 b 16 (Ipaddr.to_int p.dst);
  let ck = Checksum.of_bytes b in
  set16 b 10 ck;
  b

let decode_ipv4_header b =
  if Bytes.length b < 20 then raise (Malformed "short IPv4 header");
  if Char.code (Bytes.get b 0) lsr 4 <> 4 then raise (Malformed "not IPv4");
  if not (Checksum.valid (Bytes.sub b 0 20)) then
    raise (Malformed "IPv4 header checksum mismatch");
  let src = Ipaddr.of_int (get32 b 12) in
  let dst = Ipaddr.of_int (get32 b 16) in
  let proto = Char.code (Bytes.get b 9) in
  let total = get16 b 2 in
  if total < 20 then raise (Malformed "IPv4 total length below header size");
  if Bytes.length b > 20 && total > Bytes.length b then
    raise (Malformed "IPv4 total length exceeds datagram");
  (src, dst, proto, total)

let rewrite_dst_ip ~src_ip:_ ~old_dst ~new_dst b =
  if Bytes.length b < 18 then raise (Malformed "short TCP header");
  let ck = get16 b 16 in
  let ck' =
    Checksum.adjust32 ck ~old32:(Ipaddr.to_int old_dst)
      ~new32:(Ipaddr.to_int new_dst)
  in
  set16 b 16 ck'
