module Host = Tcpfo_host.Host
module Ip_layer = Tcpfo_ip.Ip_layer
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry

type t = {
  host : Host.t;
  peer : Tcpfo_packet.Ipaddr.t;
  role : [ `Primary | `Secondary ];
  config : Failover_config.t;
  on_peer_failure : unit -> unit;
  obs : Obs.t;
  sent : Registry.counter;
  received : Registry.counter;
  mutable running : bool;
  mutable seq : int;
  started_at : Tcpfo_sim.Time.t;
  mutable last_seen : Tcpfo_sim.Time.t;
  mutable seen_any : bool;
  mutable fired : bool;
}

let rec send_loop t =
  if t.running && Host.alive t.host then begin
    t.seq <- t.seq + 1;
    Registry.Counter.incr t.sent;
    Ip_layer.send (Host.ip t.host)
      (Ipv4_packet.make ~src:(Host.addr t.host) ~dst:t.peer
         (Ipv4_packet.Heartbeat
            { origin = Host.name t.host; hb_seq = t.seq; role = t.role }));
    ignore
      ((Host.clock t.host).schedule t.config.heartbeat_period (fun () ->
           send_loop t))
  end

(* Deadline-driven detector: each wake-up recomputes the silence deadline
   from the freshest heartbeat and sleeps exactly until it.  (A
   fixed-period poll could let almost a full extra timeout elapse between
   the deadline passing and the next poll noticing, giving a worst-case
   detection latency near 2x timeout + period; this way it is bounded by
   timeout + 2 x period.)

   The deadline anchors one period past the last arrival — the peer is
   declared dead when the beat expected at [last_seen + period] is
   [detector_timeout] overdue.  Measuring the timeout from the last
   arrival itself would leave zero jitter margin: with
   [timeout = k * period] it would fire on exactly [k] lost beats even
   when the [k+1]'th is merely delayed by queueing noise. *)
let rec check_loop t =
  if t.running && Host.alive t.host then begin
    let now = (Host.clock t.host).now () in
    let base =
      if t.seen_any then t.last_seen
      else t.started_at (* nothing ever received: count from start *)
    in
    let deadline =
      base + t.config.heartbeat_period + t.config.detector_timeout
    in
    if now >= deadline then begin
      if not t.fired then begin
        t.fired <- true;
        t.running <- false;
        if Obs.tracing t.obs then
          Obs.emit t.obs ~at:now
            (Event.Failover { host = Host.name t.host; phase = Detected });
        t.on_peer_failure ()
      end
    end
    else
      ignore
        ((Host.clock t.host).schedule (deadline - now) (fun () ->
             check_loop t))
  end

let start host ~peer ~role ~config ~on_peer_failure =
  let obs = Host.obs host in
  let hb_obs = Obs.scope obs "heartbeat" in
  let t =
    {
      host;
      peer;
      role;
      config;
      on_peer_failure;
      obs;
      sent = Obs.counter hb_obs "sent";
      received = Obs.counter hb_obs "received";
      running = true;
      seq = 0;
      started_at = (Host.clock host).now ();
      last_seen = 0;
      seen_any = false;
      fired = false;
    }
  in
  (* Only the watched peer's own beats reset the detector: a heartbeat
     must come from the peer's address and carry the peer's (opposite)
     role.  Anything looser lets a third replica pair on the same segment
     keep a dead peer looking alive.

     Watchers chain: a pool primary runs one detector per watched replica
     (the active secondary plus every standby), so each new watcher wraps
     the handler already installed instead of replacing it.  Stopped
     watchers stay in the chain but ignore everything. *)
  let inner = Ip_layer.heartbeat_handler (Host.ip host) in
  Ip_layer.set_heartbeat_handler (Host.ip host) (fun ~src hb ->
      (if
         t.running
         && Tcpfo_packet.Ipaddr.equal src t.peer
         && hb.role <> t.role
       then begin
         Registry.Counter.incr t.received;
         t.seen_any <- true;
         t.last_seen <- (Host.clock host).now ()
       end);
      inner ~src hb);
  send_loop t;
  (* initial grace: the first check coincides with the earliest possible
     deadline, as if a beat had just been heard *)
  ignore
    ((Host.clock host).schedule
       (config.heartbeat_period + config.detector_timeout)
       (fun () -> check_loop t));
  t

let stop t = t.running <- false
let peer_alive t = not t.fired
