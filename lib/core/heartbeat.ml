module Host = Tcpfo_host.Host
module Ip_layer = Tcpfo_ip.Ip_layer
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry

type t = {
  host : Host.t;
  peer : Tcpfo_packet.Ipaddr.t;
  role : [ `Primary | `Secondary ];
  config : Failover_config.t;
  on_peer_failure : unit -> unit;
  obs : Obs.t;
  sent : Registry.counter;
  received : Registry.counter;
  mutable running : bool;
  mutable seq : int;
  mutable last_seen : Tcpfo_sim.Time.t;
  mutable seen_any : bool;
  mutable fired : bool;
}

let rec send_loop t =
  if t.running && Host.alive t.host then begin
    t.seq <- t.seq + 1;
    Registry.Counter.incr t.sent;
    Ip_layer.send (Host.ip t.host)
      (Ipv4_packet.make ~src:(Host.addr t.host) ~dst:t.peer
         (Ipv4_packet.Heartbeat
            { origin = Host.name t.host; hb_seq = t.seq; role = t.role }));
    ignore
      ((Host.clock t.host).schedule t.config.heartbeat_period (fun () ->
           send_loop t))
  end

let rec check_loop t =
  if t.running && Host.alive t.host then begin
    let now = (Host.clock t.host).now () in
    let silent_for =
      if t.seen_any then now - t.last_seen
      else now (* nothing ever received: count from start *)
    in
    if silent_for > t.config.detector_timeout && not t.fired then begin
      t.fired <- true;
      t.running <- false;
      if Obs.tracing t.obs then
        Obs.emit t.obs ~at:now
          (Event.Failover { host = Host.name t.host; phase = Detected });
      t.on_peer_failure ()
    end
    else
      ignore
        ((Host.clock t.host).schedule t.config.heartbeat_period (fun () ->
             check_loop t))
  end

let start host ~peer ~role ~config ~on_peer_failure =
  let obs = Host.obs host in
  let hb_obs = Obs.scope obs "heartbeat" in
  let t =
    {
      host;
      peer;
      role;
      config;
      on_peer_failure;
      obs;
      sent = Obs.counter hb_obs "sent";
      received = Obs.counter hb_obs "received";
      running = true;
      seq = 0;
      last_seen = 0;
      seen_any = false;
      fired = false;
    }
  in
  Ip_layer.set_heartbeat_handler (Host.ip host) (fun ~src hb ->
      if Tcpfo_packet.Ipaddr.equal src t.peer || hb.origin <> Host.name host
      then begin
        Registry.Counter.incr t.received;
        t.seen_any <- true;
        t.last_seen <- (Host.clock host).now ()
      end);
  send_loop t;
  (* initial grace: start checking after one timeout has elapsed *)
  ignore
    ((Host.clock host).schedule config.detector_timeout (fun () ->
         check_loop t));
  t

let stop t = t.running <- false
let peer_alive t = not t.fired
