(** Heartbeat-based fault detection between the two replicas.

    Each replica unicasts a heartbeat datagram (its own IP protocol) to its
    peer every [heartbeat_period]; the detector declares the peer failed
    after [detector_timeout] of silence and fires its callback exactly
    once.  A fail-stop host simply stops emitting heartbeats, which is the
    paper's fault model (§2: "the system employs a fault detector").

    Only heartbeats from the watched peer's address carrying the peer's
    role reset the detector — beats from other replicas sharing the
    segment are ignored.  The detector is deadline-driven: it wakes
    exactly when the beat expected at [last_seen + heartbeat_period]
    becomes [detector_timeout] overdue, so detection latency is bounded
    by [detector_timeout + 2 * heartbeat_period] (plus delivery delays),
    not by an extra polling timeout. *)

type t

val start :
  Tcpfo_host.Host.t ->
  peer:Tcpfo_packet.Ipaddr.t ->
  role:[ `Primary | `Secondary ] ->
  config:Failover_config.t ->
  on_peer_failure:(unit -> unit) ->
  t
(** Begin sending heartbeats to [peer] and watching for theirs.  Installs
    itself as the host's heartbeat protocol handler.  Counters
    [heartbeat.sent] and [heartbeat.received] register under the host's
    scope; declaring the peer dead publishes a
    [Failover Detected] event. *)

val stop : t -> unit
(** Stop sending and detecting (used after a completed failover, when the
    survivor runs as an ordinary server). *)

val peer_alive : t -> bool
(** Current verdict. *)
