module Time = Tcpfo_sim.Time

type t = {
  service_ports : int list;
  remote_service_ports : int list;
  heartbeat_period : Time.t;
  detector_timeout : Time.t;
  bridge_cost : Time.t;
  takeover_processing : Time.t;
  use_min_ack : bool;
  use_min_window : bool;
  transfer_inflight : int;
      (* reintegration offer window: at most this many connections may be
         mid-transfer at once (0 = unlimited, the legacy burst).  Bounds
         the state each transfer channel must buffer when thousands of
         connections re-replicate at once. *)
  transfer_pace : Time.t;
      (* minimum spacing between successive offers once the window has
         room (zero = no pacing).  Keyed off the control channel's
         MSS/RTT by the caller when auto-pacing; see
         {!Replicated.start_transfers}. *)
}

let default =
  {
    service_ports = [];
    remote_service_ports = [];
    heartbeat_period = Time.ms 10;
    detector_timeout = Time.ms 30;
    bridge_cost = Time.us 8;
    takeover_processing = Time.us 200;
    use_min_ack = true;
    use_min_window = true;
    transfer_inflight = 0;
    transfer_pace = Time.zero;
  }

let make ?(service_ports = []) ?(remote_service_ports = [])
    ?(heartbeat_period = default.heartbeat_period)
    ?(detector_timeout = default.detector_timeout)
    ?(bridge_cost = default.bridge_cost)
    ?(takeover_processing = default.takeover_processing)
    ?(use_min_ack = default.use_min_ack)
    ?(use_min_window = default.use_min_window)
    ?(transfer_inflight = default.transfer_inflight)
    ?(transfer_pace = default.transfer_pace) () =
  { service_ports; remote_service_ports; heartbeat_period; detector_timeout;
    bridge_cost; takeover_processing; use_min_ack; use_min_window;
    transfer_inflight; transfer_pace }

type registry = {
  config : t;
  mutable extra_local : int list;
  mutable extra_remote : int list;
}

let create_registry config = { config; extra_local = []; extra_remote = [] }
let config r = r.config

let register_endpoint r ~local_port =
  if not (List.mem local_port r.extra_local) then
    r.extra_local <- local_port :: r.extra_local

let register_remote r ~remote_port =
  if not (List.mem remote_port r.extra_remote) then
    r.extra_remote <- remote_port :: r.extra_remote

let is_failover_local_port r p =
  List.mem p r.config.service_ports || List.mem p r.extra_local

let is_failover_remote_port r p =
  List.mem p r.config.remote_service_ports || List.mem p r.extra_remote

let is_failover_conn r ~local_port ~remote_port =
  is_failover_local_port r local_port
  || is_failover_remote_port r remote_port
