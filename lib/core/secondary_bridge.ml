module Time = Tcpfo_sim.Time
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Ip_layer = Tcpfo_ip.Ip_layer
module Eth_iface = Tcpfo_ip.Eth_iface
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry

type mode = Normal | Paused | Taken_over

type t = {
  host : Host.t;
  registry : Failover_config.registry;
  service_addr : Ipaddr.t;
  mutable divert_to : Ipaddr.t;
  only_new : bool;
      (* reintegrated secondary: claim only connections its own stack
         knows (or fresh SYNs) — pre-existing connections belong solely to
         the primary and must not be answered with RSTs *)
  mutable mode : mode;
  held : Ipv4_packet.t Queue.t;
  mutable installed : bool;
  obs : Obs.t; (* world-absolute [bridge.secondary] scope *)
  claimed : Registry.counter;
  diverted : Registry.counter;
  held_segments : Registry.counter;
  held_bytes : Registry.gauge;
}

let config t = Failover_config.config t.registry

let is_failover t ~local_port ~remote_port =
  Failover_config.is_failover_conn t.registry ~local_port ~remote_port

let now t = (Host.clock t.host).now ()

(* §3.1: divert a reply to the primary, recording the original
   destination in a TCP header option.  (On a byte-encoded segment this
   is where the incremental checksum update of §3.1 happens; see
   Wire.rewrite_dst_ip, validated in the test suite.) *)
let divert t (pkt : Ipv4_packet.t) (seg : Seg.t) =
  Registry.Counter.incr t.diverted;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~at:(now t)
      (Event.Divert { host = Host.name t.host; orig_dst = pkt.dst; seg });
  let seg' =
    { seg with Seg.options = Seg.Orig_dst pkt.dst :: seg.options }
  in
  Ip_layer.Tx_pass
    (Ipv4_packet.make ~ident:pkt.ident ~src:(Host.addr t.host)
       ~dst:t.divert_to (Ipv4_packet.Tcp seg'))

let tx_hook t (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg
    when Ipaddr.equal pkt.src t.service_addr
         && is_failover t ~local_port:seg.src_port ~remote_port:seg.dst_port
    -> (
    match t.mode with
    | Normal -> divert t pkt seg
    | Paused ->
      (* §5 step 1: stop sending segments addressed to the client until
         the IP takeover completes. *)
      Registry.Counter.incr t.held_segments;
      Registry.Gauge.add t.held_bytes (Seg.payload_length seg);
      if Obs.tracing t.obs then
        Obs.emit t.obs ~at:(now t)
          (Event.Hold
             { host = Host.name t.host; bytes = Seg.payload_length seg });
      Queue.push pkt t.held;
      Ip_layer.Tx_drop
    | Taken_over -> Ip_layer.Tx_pass pkt)
  | Tcp _ | Heartbeat _ | Raw _ -> Ip_layer.Tx_pass pkt

let rx_hook t (pkt : Ipv4_packet.t) ~link_addressed =
  match pkt.payload with
  | Tcp seg
    when Ipaddr.equal pkt.dst t.service_addr
         && is_failover t ~local_port:seg.dst_port ~remote_port:seg.src_port
    -> (
    match t.mode with
    | Normal | Paused ->
      (* §3.1: claim the datagram for local delivery — conceptually the
         a_p → a_s destination translation.  [link_addressed] datagrams
         also land here (the primary's bridge answering a stray FIN frames
         the reply to our MAC). *)
      let known_or_new =
        (not t.only_new)
        || (seg.flags.syn && not seg.flags.ack)
        || Stack.find (Host.tcp t.host)
             ~local:(pkt.dst, seg.dst_port)
             ~remote:(pkt.src, seg.src_port)
           <> None
      in
      if known_or_new then begin
        Registry.Counter.incr t.claimed;
        Ip_layer.Rx_deliver pkt
      end
      else Ip_layer.Rx_drop
    | Taken_over ->
      (* translation disabled: the service address is now a local alias
         and normal delivery applies *)
      Ip_layer.Rx_pass pkt)
  | Tcp _ | Heartbeat _ | Raw _ ->
    ignore link_addressed;
    Ip_layer.Rx_pass pkt

let install host ~registry ~service_addr ?divert_to
    ?(only_new_connections = false) () =
  let obs = Obs.scope (Obs.root (Host.obs host)) "bridge.secondary" in
  let t =
    {
      host;
      registry;
      service_addr;
      divert_to = (match divert_to with Some a -> a | None -> service_addr);
      only_new = only_new_connections;
      mode = Normal;
      held = Queue.create ();
      installed = true;
      obs;
      claimed = Obs.counter obs "claimed";
      diverted = Obs.counter obs "diverted";
      held_segments = Obs.counter obs "held_segments";
      held_bytes = Obs.gauge obs "held_bytes";
    }
  in
  Eth_iface.set_promiscuous (Host.eth host) true;
  Stack.set_extra_local (Host.tcp host) (fun ip ->
      Ipaddr.equal ip service_addr);
  Ip_layer.set_tx_hook (Host.ip host) (Some (fun pkt -> tx_hook t pkt));
  Ip_layer.set_rx_hook (Host.ip host)
    (Some (fun pkt ~link_addressed -> rx_hook t pkt ~link_addressed));
  t

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    Eth_iface.set_promiscuous (Host.eth t.host) false;
    Ip_layer.set_tx_hook (Host.ip t.host) None;
    Ip_layer.set_rx_hook (Host.ip t.host) None
  end

let begin_takeover t ~on_complete =
  if t.mode = Normal then begin
    (* §5 step 1: hold outgoing segments *)
    t.mode <- Paused;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~at:(now t)
        (Event.Failover { host = Host.name t.host; phase = Takeover_started });
    ignore
      ((Host.clock t.host).schedule (config t).takeover_processing
         (fun () ->
           (* §5 steps 2-4: disable promiscuous snooping and both
              translations *)
           Eth_iface.set_promiscuous (Host.eth t.host) false;
           (* §5 step 5: IP takeover — alias + gratuitous ARP *)
           Eth_iface.add_address (Host.eth t.host) t.service_addr;
           t.mode <- Taken_over;
           (* release held segments, now sent natively *)
           Queue.iter (fun pkt -> Ip_layer.send (Host.ip t.host) pkt) t.held;
           Queue.clear t.held;
           Registry.Gauge.set t.held_bytes 0;
           if Obs.tracing t.obs then
             Obs.emit t.obs ~at:(now t)
               (Event.Failover
                  { host = Host.name t.host; phase = Takeover_complete });
           on_complete ()))
  end

let retarget t addr = t.divert_to <- addr
let taken_over t = t.mode = Taken_over
