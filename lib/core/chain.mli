(** Daisy-chained replication — the paper's §1 future work ("higher
    degrees of replication can be achieved by daisy-chaining multiple
    backup servers"), built compositionally from the two-replica bridges:

    - the head runs the paper's primary bridge and talks to the client;
    - each middle replica runs the *same* merging bridge, but diverts its
      merged output to the replica above instead of to the client — from
      above, a middle replica and everything below it are
      indistinguishable from a single secondary;
    - the tail runs the plain secondary bridge, diverting to the replica
      above it.

    The wire sequence space is the deepest replica's; every level
    subtracts its own Δseq, the joint acknowledgment/window minima
    compose, and the merged SYN carries the minimum MSS of the whole
    chain.

    Failures (detected by an all-pairs heartbeat mesh):
    - head dies → the next replica promotes: its bridge output flips to
      direct, promiscuous mode goes off, and it takes over the service
      address (gratuitous ARP) — §5 generalized;
    - a middle replica dies → the replica below re-diverts to the replica
      above; queues and sequence spaces need no adjustment because every
      level already speaks the deepest replica's space;
    - the tail dies → the replica above degrades per §6 (flushes its
      queue, continues offset-only) while still diverting upstream if it
      is itself a middle replica.

    Any sequence of failures down to a single survivor is handled, and
    repaired hosts {!rejoin} at the tail of the live chain: the previous
    end of chain becomes a merging level over the newcomer and every
    live service connection is re-replicated onto it by hot state
    transfer, so the chain survives repeated kill/repair cycles on any
    tier byte-exactly. *)

type t

val create :
  replicas:Tcpfo_host.Host.t list ->
  config:Failover_config.t ->
  unit ->
  t
(** [replicas] ordered head first; at least 2.  The service address is the
    head's. *)

val service_addr : t -> Tcpfo_packet.Ipaddr.t
val registry : t -> Failover_config.registry

val listen :
  t ->
  port:int ->
  on_accept:(replica:int -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit
(** Run the replicated server application identically on every replica;
    [replica] is the index in the original [replicas] list. *)

val connect_backend :
  t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  ?local_port:int ->
  setup:(replica:int -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit ->
  unit
(** §7.2 through the chain: every *live* replica opens the connection to
    the unreplicated server from the service address; the merging levels
    collapse them into a single wire connection.  Input retention is
    enabled at connect time and [setup] is recorded against [remote], so
    the connection is transferable onto a later {!rejoin}ed tail. *)

val alive : t -> int list
(** Indices of live replicas in chain order, head first.  Replicas that
    {!rejoin}ed appear at the position they hold in the live chain (the
    tail), not at their creation position. *)

val head : t -> int
(** Index of the current head. *)

val kill : t -> int -> unit
(** Crash replica [i] (fail-stop); detectors react. *)

val rejoin : t -> Tcpfo_host.Host.t -> int
(** A repaired (or new) host re-enters the chain at the tail and the
    returned fresh replica index names it from now on (indices are never
    reused).  The previous end of chain becomes a merging level over the
    newcomer — a degraded merger is reinstated; an original tail swaps
    its secondary bridge for the merging bridge (keeping its diversion
    target, or [Direct] output if it had become head) — the registered
    services start on the newcomer, the heartbeat mesh extends to it,
    and every live service connection is quiesced, snapshotted into wire
    sequence space and shipped onto it ({!Transfers_complete});
    connections that cannot travel are pinned solo ({!Isolated}).
    Raises [Invalid_argument] for a dead host, a host already in the
    live chain, or while a §5 takeover is still in flight. *)

type event =
  | Death_detected of int
  | Promoted of int  (** replica became head and owns the service address *)
  | Retargeted of int * int  (** replica i now diverts to replica j *)
  | Degraded of int  (** replica lost the node below it (§6) *)
  | Rejoined of int  (** a repaired host joined as this (fresh) tail index *)
  | Transfers_complete of int
      (** rejoin's hot state transfer settled; payload counts the
          connections re-replicated onto the new tail *)
  | Isolated of { local_port : int; remote : Tcpfo_packet.Ipaddr.t * int }
      (** a live connection could not be re-replicated onto the rejoined
          tail and was demoted to solo; bumps [statex.isolated_conns] *)

val event_to_string : event -> string
(** One-line human description, for traces and CLIs — kept exhaustive
    over every constructor (tested) so soak reports can never print an
    event as a gap. *)

val set_on_event : t -> (event -> unit) -> unit

val pending_transfers : t -> int
(** Hot-state-transfer offers of the latest {!rejoin} still awaiting a
    verdict (0 once it has settled). *)
