(** The secondary server's bridge sublayer (paper §3.1 and §5).

    In normal operation:
    - the NIC runs in promiscuous mode, and every TCP datagram addressed
      to the primary's (service) address on a failover port is claimed and
      delivered to the local TCP layer — the secondary processes exactly
      the client input the primary does;
    - every reply the local TCP layer addresses to a client of a failover
      connection is diverted to the primary — destination rewritten to the
      service address and the original destination carried in the
      [Orig_dst] TCP header option — where the primary's bridge matches it
      byte-for-byte against the primary's own reply.

    The local TCP stack keys these connections under the *service*
    address (registered via the stack's extra-local predicate), which is
    what makes failover seamless: after IP takeover the very same
    connections continue under the very same 4-tuple.

    On primary failure ({!begin_takeover}, §5 steps 1–5): output toward
    clients is held, promiscuous mode and both translations are switched
    off, the service address is installed as an alias (gratuitous ARP),
    and held output is released — from then on the host behaves as an
    ordinary TCP server. *)

type t

val install :
  Tcpfo_host.Host.t ->
  registry:Failover_config.registry ->
  service_addr:Tcpfo_packet.Ipaddr.t ->
  ?divert_to:Tcpfo_packet.Ipaddr.t ->
  ?only_new_connections:bool ->
  unit ->
  t
(** Installs IP hooks, enables promiscuous mode and registers the service
    address as acceptable-local with the TCP stack.  Replies are diverted
    to [divert_to] (default: the service address, i.e. the primary); in a
    daisy chain the tail diverts to the replica directly above it.

    Observability: the world-absolute scope [bridge.secondary] carries
    counters [claimed] (datagrams snooped and delivered locally),
    [diverted] (replies re-addressed to the primary) and [held_segments],
    plus the gauge [held_bytes] (payload parked during takeover, reset to
    zero on release); [Divert], [Hold] and
    [Failover Takeover_started/Takeover_complete] events are published
    when the bus is active. *)

val retarget : t -> Tcpfo_packet.Ipaddr.t -> unit
(** Change the diversion target — used when the replica above this one in
    a chain fails and the stream must flow to its successor. *)

val uninstall : t -> unit

val begin_takeover : t -> on_complete:(unit -> unit) -> unit
(** Execute the §5 failover procedure.  Reconfiguration takes the
    configured [takeover_processing] time, after which held segments are
    released and [on_complete] fires. *)

val taken_over : t -> bool
