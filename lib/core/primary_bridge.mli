(** The primary server's bridge sublayer (paper §3.2–§3.4, §4, §6, §7, §8).

    Sits between the primary's TCP layer and IP layer (installed on the
    {!Tcpfo_ip.Ip_layer} hooks) and, for every failover connection:

    - intercepts and holds the local TCP layer's output, shifting its
      sequence numbers into the secondary's sequence space
      (Δseq = seq_P,init − seq_S,init, §3.3);
    - intercepts the secondary's diverted output (recognized by the
      [Orig_dst] TCP option) and matches the two byte streams, emitting to
      the client only bytes both replicas produced (§3.4, Fig. 2);
    - stamps outgoing segments with the minimum of the two replicas'
      acknowledgment numbers and advertised windows (§3.2), so a failover
      never acknowledges data the survivor lacks;
    - recognizes retransmissions (sequence range already emitted) and
      forwards them immediately instead of queueing (§4);
    - constructs empty acknowledgment segments when the joint
      acknowledgment (or, to avoid a zero-window deadlock, the joint
      window) advances with no data to carry it (§3.4);
    - translates acknowledgment numbers of incoming segments into the
      primary's sequence space (+Δseq) before its TCP layer sees them
      (the inverse mapping implied by §3.3);
    - merges SYNs: the SYN sent to the client carries the secondary's
      initial sequence number and the minimum of the two MSS values (§7.1,
      also for server-initiated opens §7.2);
    - tracks FIN positions of both replicas and the client and tears its
      state down only when both directions are fully closed, answering
      stray retransmitted FINs afterwards (§8);
    - on failure of the secondary, flushes the primary output queue to the
      client and degrades to pure sequence-offset translation (§6). *)

type t

type output =
  | Direct
      (** emit merged segments straight to the client — the head of the
          chain (the paper's primary server) *)
  | Divert_to of Tcpfo_packet.Ipaddr.t
      (** divert merged segments to the next replica up the chain, exactly
          like a secondary diverts its raw output — this is what makes
          daisy-chained replication (paper §1) compose: a middle replica
          merges everything below it and presents the merged stream
          upstream as if it were a single secondary *)

val install :
  Tcpfo_host.Host.t ->
  registry:Failover_config.registry ->
  service_addr:Tcpfo_packet.Ipaddr.t ->
  secondary_addr:Tcpfo_packet.Ipaddr.t ->
  ?output:output ->
  ?claim_service:bool ->
  unit ->
  t
(** Install the bridge on the host's IP hooks.  [service_addr] is the
    service address a_p (the address clients connect to).  [output]
    defaults to [Direct].  [claim_service] (default false) makes the
    bridge claim client datagrams addressed to the service address for
    local delivery — required on middle chain nodes, whose NIC sees them
    only promiscuously; the head owns the address and needs no claim.

    Observability: the world-absolute scope [bridge.primary] carries
    counters [emitted], [retrans_forwarded], [empty_acks], [syn_merges]
    and [merged_bytes], plus the histogram [merge_latency_us] (time the
    earlier replica's bytes waited for their twin before the merged
    segment went out).  [Merge], [Segment_drop] and
    [Failover Degraded/Reintegrated] events are published when the bus
    is active.  Instruments aggregate across every merging bridge of a
    chain (shared names, shared registry). *)

val promote : t -> unit
(** Switch a diverting (middle) bridge to [Direct] output: the node has
    taken over as head of the chain. *)

val output : t -> output

val uninstall : t -> unit

val secondary_failed : t -> unit
(** §6 recovery: flush queues, switch every connection to offset-only
    pass-through, treat new connections as ordinary TCP. *)

val reinstate : t -> secondary_addr:Tcpfo_packet.Ipaddr.t -> unit
(** Reintegration (beyond the paper's scope): pair with a fresh secondary.
    Connections that outlived the old secondary stay solo (offset-only)
    unless hot state transfer re-replicates them (below); new connections
    are replicated again. *)

(** {1 Hot state transfer}

    Per-connection quiesce / cut-over used by
    {!Tcpfo_core.Replicated.reintegrate} to re-replicate live
    connections onto a repaired replica.  Protocol: [begin_transfer]
    (parks local TCP output, taps client datagrams) → snapshot shipped →
    on acceptance [complete_transfer] (re-arms the bridge connection
    around the restored pair, releases the hold through the merge path,
    re-forwards tapped client datagrams to the replica) or on
    rejection/timeout [abort_transfer] (releases the hold through the
    degraded pass-through path). *)

val begin_transfer :
  t -> remote:Tcpfo_packet.Ipaddr.t * int -> local_port:int -> unit
(** Quiesce one connection: must be called in the same simulation
    instant as {!Tcpfo_tcp.Tcb.snapshot}.  Creates the bridge connection
    if the bridge has none yet (fresh bridge on a promoted survivor). *)

val complete_transfer :
  t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  local_port:int ->
  tcb:Tcpfo_tcp.Tcb.t ->
  delta:int ->
  unit
(** Cut over: the repaired replica accepted the snapshot.  [tcb] is the
    surviving local TCB; [delta] the (re-established) Δseq — 0 for a
    promoted survivor, the pre-failure Δseq for a surviving primary. *)

val abort_transfer :
  t -> remote:Tcpfo_packet.Ipaddr.t * int -> local_port:int -> unit
(** Transfer failed: release held output as degraded pass-through and
    drop transfer state.  The connection continues solo. *)

val isolate_conn :
  t -> remote:Tcpfo_packet.Ipaddr.t * int -> local_port:int -> unit
(** Pin a connection that is not being transferred to the solo
    pass-through path, so its segments can never merge with the fresh
    replica's different sequence numbers. *)

val conn_delta :
  t -> remote:Tcpfo_packet.Ipaddr.t * int -> local_port:int -> int option
(** The recorded Δseq for a connection, if it ever merged. *)

val connection_count : t -> int

(** {1 Introspection for tests and benchmarks} *)

type conn_stats = {
  delta : int option;
  next_wire_seq : Tcpfo_util.Seq32.t;
  p_queued : int;  (** unmatched bytes from the primary's TCP layer *)
  s_queued : int;  (** unmatched bytes from the secondary *)
  segments_emitted : int;
  retransmissions_forwarded : int;
  empty_acks_emitted : int;
}

val conn_stats :
  t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  local_port:int ->
  conn_stats option

val total_emitted : t -> int
val degraded : t -> bool
