(** Which TCP connections are failover connections, plus system tunables.

    The paper implements two selection methods (§7): a per-socket option
    and a per-port configuration.  Both are supported: {!field-service_ports}
    / {!field-remote_service_ports} are the port method (the same set must
    be configured on the primary and the secondary); {!register_endpoint} /
    {!registered} implement the socket-option method for individual
    endpoints. *)

type t = {
  service_ports : int list;
      (** local ports of the replicated service (e.g. 21 and 20 for FTP);
          connections from or to these local ports fail over *)
  remote_service_ports : int list;
      (** remote ports of unreplicated back ends the replicated application
          connects to (§7.2 server-initiated connections) *)
  heartbeat_period : Tcpfo_sim.Time.t;
  detector_timeout : Tcpfo_sim.Time.t;
      (** peer declared dead after this much heartbeat silence *)
  bridge_cost : Tcpfo_sim.Time.t;
      (** per-segment processing cost of the bridge sublayer *)
  takeover_processing : Tcpfo_sim.Time.t;
      (** time the secondary needs to reconfigure its bridge and perform
          the IP takeover (paper §5 steps 1–5) *)
  use_min_ack : bool;
      (** §3.2 joint-acknowledgment rule.  Disabling it (ablation) lets the
          primary acknowledge data the secondary has not received, which
          violates failover requirement 2 of §2 under loss. *)
  use_min_window : bool;
      (** §3.2 joint-window rule; disabling it (ablation) lets the client
          overrun the slower replica. *)
  transfer_inflight : int;
      (** Reintegration offer window: at most this many connections may
          be mid-transfer at once.  0 (the default) keeps the legacy
          behaviour — every offer issued in one burst at the
          reintegration instant.  A bounded window keeps the transfer
          channel's buffering and the per-instant work flat when
          thousands of connections re-replicate. *)
  transfer_pace : Tcpfo_sim.Time.t;
      (** Minimum spacing between successive offers once the window has
          room ([Time.zero] = no pacing, the default).
          {!Replicated.start_transfers} keys the useful value off the
          transfer channel's chunk size and measured RTT. *)
}

val default : t
(** No ports preconfigured; 10 ms heartbeats, 30 ms detector timeout,
    8 µs bridge cost, 200 µs takeover processing. *)

val make :
  ?service_ports:int list ->
  ?remote_service_ports:int list ->
  ?heartbeat_period:Tcpfo_sim.Time.t ->
  ?detector_timeout:Tcpfo_sim.Time.t ->
  ?bridge_cost:Tcpfo_sim.Time.t ->
  ?takeover_processing:Tcpfo_sim.Time.t ->
  ?use_min_ack:bool ->
  ?use_min_window:bool ->
  ?transfer_inflight:int ->
  ?transfer_pace:Tcpfo_sim.Time.t ->
  unit ->
  t

(** {1 Per-socket selection (method 1)} *)

type registry

val create_registry : t -> registry
val config : registry -> t

val register_endpoint : registry -> local_port:int -> unit
(** Mark one additional local port as a failover service — the programmatic
    analogue of setting the socket option on a listening socket. *)

val register_remote : registry -> remote_port:int -> unit

val is_failover_local_port : registry -> int -> bool
val is_failover_remote_port : registry -> int -> bool

val is_failover_conn : registry -> local_port:int -> remote_port:int -> bool
(** A connection is a failover connection if its local port is a (static or
    registered) service port, or its remote port is a declared remote
    service port. *)
