(** One-call construction of a replicated TCP server pool.

    The paper builds a primary/secondary pair; this module generalizes it
    to an N-replica pool with cascading failover.  The first two replicas
    form the *active pair* and run the paper's machinery unchanged: the
    primary and secondary bridges, the bidirectional heartbeat fault
    detectors, and the failover procedures of §5/§6.  Every further
    replica is an ordered *standby*: cold (it holds no connection state),
    but liveness-watched.  When a member of the active pair dies, the
    survivor completes the paper's takeover/degradation and the next
    standby is promoted into the vacated slot through the statex
    hot-state-transfer path, so live connections keep a full replica pair
    behind them.  Repaired hosts {!rejoin} at the back of the pool.

    The replicated application is started through {!listen} (TCP-server
    role) or {!connect_backend} (TCP-client role, §7.2) so that the
    active replicas run identical, deterministic code — the paper's
    active-replication model.

    The service address is the first replica's: clients connect to it
    before and after any number of failovers. *)

type t

type event =
  | Secondary_failure_detected
      (** primary's detector fired; §6 recovery ran *)
  | Primary_failure_detected  (** secondary's detector fired *)
  | Takeover_complete
      (** §5 steps 1–5 finished: the secondary owns the service address *)
  | Reintegrated
      (** a fresh replica joined the active pair after a failure (either
          role) — by promotion from the pool or by {!rejoin} into a
          degraded pair *)
  | Transfers_complete of int
      (** hot state transfer finished; the payload is the number of live
          connections successfully re-replicated onto the fresh host *)
  | Promoted of string
      (** the named standby left the pool for the active pair (cascading
          failover); followed by [Reintegrated]/[Transfers_complete] *)
  | Standby_lost of string
      (** a standby's liveness watcher declared it dead; it was dropped
          from the pool *)
  | Rejoined of string
      (** a repaired host joined the back of the pool (or, if the pool
          was degraded, paired directly with the survivor) *)
  | Isolated of { local_port : int; remote : Tcpfo_packet.Ipaddr.t * int }
      (** a live connection could not be re-replicated during
          reintegration — untransferable state or a failed/rejected
          transfer — and was demoted to solo on the survivor; also bumps
          the [statex.isolated_conns] counter *)

val event_to_string : event -> string
(** One-line human description, for traces and CLIs. *)

val create :
  primary:Tcpfo_host.Host.t ->
  secondary:Tcpfo_host.Host.t ->
  config:Failover_config.t ->
  unit ->
  t
(** [create ~primary ~secondary] is [create_pool ~replicas:[primary;
    secondary]] — the paper's pair as the N = 2 pool. *)

val create_pool :
  replicas:Tcpfo_host.Host.t list ->
  config:Failover_config.t ->
  unit ->
  t
(** [replicas] ordered by promotion priority: the first is the active
    primary, the second the active secondary, the rest cold standbys.
    All replicas must share the primary's Ethernet segment (the §3.1
    snooping model).  Raises [Invalid_argument] on fewer than two
    replicas, duplicates, or dead hosts. *)

val service_addr : t -> Tcpfo_packet.Ipaddr.t
val registry : t -> Failover_config.registry
val primary_bridge : t -> Primary_bridge.t
val secondary_bridge : t -> Secondary_bridge.t

val set_on_event : t -> (event -> unit) -> unit
(** The application's (single) event callback. *)

val add_on_event : t -> (event -> unit) -> unit
(** Register an additional listener, fired after the {!set_on_event}
    callback in registration order.  Infrastructure that must observe
    the pool without disturbing the application — the dispatcher tier's
    per-shard health model — taps events here. *)

val listen :
  t ->
  port:int ->
  on_accept:(role:[ `Primary | `Secondary ] -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit
(** Start the replicated server application on both replicas.  Registers
    [port] as a failover service port (the paper's socket-option method)
    and listens on both stacks; [on_accept] must install identical,
    deterministic behaviour on both. *)

val connect_backend :
  t ->
  remote:Tcpfo_packet.Ipaddr.t * int ->
  ?local_port:int ->
  setup:(role:[ `Primary | `Secondary ] -> Tcpfo_tcp.Tcb.t -> unit) ->
  unit ->
  unit
(** §7.2: both replicas open a connection to an unreplicated server
    [remote] from the service address.  Both replicas must issue their
    connects in the same order so the (deterministic) ephemeral port
    allocators agree; pass [local_port] to pin the source port
    explicitly.

    Client-role connections are fully transferable: input retention is
    enabled at connect time, and [setup] is recorded against [remote] so
    a later {!reintegrate} can re-run it on the fresh replica when the
    restored connection is installed there. *)

val kill_primary : t -> unit
(** Crash the primary host (fail-stop); the secondary's detector will
    notice and run the takeover. *)

val kill_secondary : t -> unit

val status : t -> [ `Normal | `Primary_failed | `Secondary_failed ]
(** State of the *active pair*; a pool failure that has already cascaded
    (a standby was promoted and transfers settled) reads [`Normal]
    again. *)

val standbys : t -> Tcpfo_host.Host.t list
(** The cold standbys still in the pool, in promotion order. *)

val replicas : t -> Tcpfo_host.Host.t list
(** Active primary, active secondary, then {!standbys}.  A dead active
    member remains listed until its failure is detected and a
    replacement promoted. *)

val rejoin : t -> Tcpfo_host.Host.t -> unit
(** A repaired (or new) host joins the back of the pool as a cold
    standby, liveness-watched from the primary.  If the pool is degraded
    — a failure happened and no standby was left — the host instead
    pairs with the survivor immediately, exactly like {!reintegrate};
    if a §5 takeover is still in flight it queues and the takeover's
    completion promotes it.  Raises [Invalid_argument] for a dead host
    or one already pooled. *)

val reintegrate : t -> secondary:Tcpfo_host.Host.t -> unit
(** Reintegration of a failed server — which the paper explicitly leaves
    out of scope (§1).  Role-agnostic: after a *secondary* failure the
    surviving primary pairs with the fresh host; after a *primary*
    failure the promoted survivor keeps serving under the service
    address and the fresh host becomes the secondary of the promoted
    pair.  Every service registered through {!listen} is started on the
    new host, mutual fault detection is re-armed, and live connections
    are re-replicated by hot state transfer: each transferable
    connection is quiesced, snapshotted into wire sequence space,
    shipped over the in-sim control channel, and — on acceptance —
    resumed as a freshly merged replica pair, so it survives a *second*
    failover byte-exactly.  Connections that cannot be transferred
    (mid-handshake, closing down, or missing retained input) stay solo.

    Status returns to [`Normal] immediately; transfers complete
    asynchronously within a few control-channel round trips
    ({!Transfers_complete}, {!pending_transfers}).  Raises
    [Invalid_argument] in the normal state, or while a §5 takeover is
    still in progress. *)

val pending_transfers : t -> int
(** Hot-state-transfer offers still awaiting a verdict (0 when
    reintegration has settled). *)

val transfer_failures : t -> int
(** Transfers that ended in Reject or retry-budget exhaustion since the
    pair was created.  The streaming control channel retransmits
    through loss, so any nonzero value under a merely lossy (not dead)
    channel is an invariant violation. *)

val transfer_stats : t -> Tcpfo_statex.Transfer.stats
(** Aggregate control-channel counters ([statex.*] scope). *)
