module Clock = Tcpfo_sim.Clock
module Time = Tcpfo_sim.Time
module Seq32 = Tcpfo_util.Seq32
module Interval_buf = Tcpfo_util.Interval_buf
module Ipaddr = Tcpfo_packet.Ipaddr
module Seg = Tcpfo_packet.Tcp_segment
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Ip_layer = Tcpfo_ip.Ip_layer
module Eth_iface = Tcpfo_ip.Eth_iface
module Host = Tcpfo_host.Host
module Tcb = Tcpfo_tcp.Tcb
module Obs = Tcpfo_obs.Obs
module Event = Tcpfo_obs.Event
module Registry = Tcpfo_obs.Registry

type mode = Active | Linger

type conn = {
  remote : Ipaddr.t * int;
  local_port : int;
  mutable mode : mode;
  mutable solo : bool;
      (* the connection outlived its secondary (§6): offset-only
         translation forever, never re-replicated *)
  (* --- sequence synchronization (§3.3, §7) --- *)
  mutable seqp_init : Seq32.t option;
  mutable seqs_init : Seq32.t option;
  mutable delta : int option; (* seq_P,init - seq_S,init *)
  mutable p_syn_flags : Seg.flags option; (* P's SYN withheld, not merged *)
  mutable p_mss : int;
  mutable s_mss : int;
  mutable shift_p : int option; (* window-scale shift each replica offered *)
  mutable shift_s : int option;
  mutable merged_shift : int; (* shift announced to the client *)
  mutable ts_p : bool; (* timestamps offered *)
  mutable ts_s : bool;
  mutable s_syn_ts : (int * int) option;
  mutable last_ts_s : (int * int) option;
      (* latest timestamps from the secondary: merged segments ride the
         secondary's timestamp clock for the same reason they ride its
         sequence space — it must stay consistent across a failover *)
  mutable syn_done : bool;
  mutable next_seq : Seq32.t; (* next wire (secondary-space) seq to emit *)
  mutable pq : Interval_buf.t; (* P's unmatched reply bytes, wire space *)
  mutable sq : Interval_buf.t; (* S's unmatched reply bytes *)
  (* --- FIN tracking (§8) --- *)
  mutable p_fin : Seq32.t option; (* wire-space position of P's FIN *)
  mutable s_fin : Seq32.t option;
  mutable fin_sent : bool;
  mutable client_fin : Seq32.t option; (* position of the client's FIN *)
  mutable client_fin_acked : bool;
  (* --- joint acknowledgment state (§3.2) --- *)
  mutable ack_p : Seq32.t option;
  mutable ack_s : Seq32.t option;
  mutable win_p : int;
  mutable win_s : int;
  mutable last_ack_sent : Seq32.t option;
  mutable last_win_sent : int;
  mutable client_ack : Seq32.t option; (* highest ack the client has sent *)
  (* --- hot state transfer (reintegration) --- *)
  mutable xfer_hold : bool;
      (* per-connection quiesce: the local TCP layer's output is parked
         in [xfer_held] between snapshot and cut-over, so nothing escapes
         in a sequence range the snapshot does not cover *)
  xfer_held : Seg.t Queue.t;
  xfer_tap : Ipv4_packet.t Queue.t;
      (* client datagrams seen during the hold, re-forwarded to the
         repaired replica at cut-over: the client never retransmits data
         the survivor already acknowledged, so the replica would
         otherwise miss it forever *)
  (* --- statistics --- *)
  mutable emitted : int;
  mutable retrans_fwd : int;
  mutable empty_acks : int;
  mutable wait_since : Time.t option;
      (* first unmatched byte arrived: feeds the merge-latency histogram *)
}

type key = Ipaddr.t * int * int (* remote addr, remote port, local port *)

type output = Direct | Divert_to of Ipaddr.t

type t = {
  host : Host.t;
  registry : Failover_config.registry;
  service_addr : Ipaddr.t;
  mutable secondary_addr : Ipaddr.t;
  self_addr : Ipaddr.t; (* this host's own address *)
  mutable out : output;
  claim_service : bool; (* claim client datagrams for local delivery *)
  conns : (key, conn) Hashtbl.t;
  mutable degraded : bool; (* secondary has failed: §6 mode *)
  mutable installed : bool;
  mutable total_emitted : int;
  obs : Obs.t; (* world-absolute [bridge.primary] scope *)
  c_emitted : Registry.counter;
  c_retrans_fwd : Registry.counter;
  c_empty_acks : Registry.counter;
  c_syn_merges : Registry.counter;
  c_merged_bytes : Registry.counter;
  h_merge_latency : Registry.histogram;
}

let config t = Failover_config.config t.registry
let now t = (Host.clock t.host).now ()

let key_of conn = (fst conn.remote, snd conn.remote, conn.local_port)

let mk_conn ~remote ~local_port =
  {
    remote;
    local_port;
    mode = Active;
    solo = false;
    seqp_init = None;
    seqs_init = None;
    delta = None;
    p_syn_flags = None;
    p_mss = 536;
    s_mss = 536;
    shift_p = None;
    shift_s = None;
    merged_shift = 0;
    ts_p = false;
    ts_s = false;
    s_syn_ts = None;
    last_ts_s = None;
    syn_done = false;
    next_seq = Seq32.zero;
    pq = Interval_buf.create ~base:Seq32.zero;
    sq = Interval_buf.create ~base:Seq32.zero;
    p_fin = None;
    s_fin = None;
    fin_sent = false;
    client_fin = None;
    client_fin_acked = false;
    ack_p = None;
    ack_s = None;
    win_p = 65535;
    win_s = 65535;
    last_ack_sent = None;
    last_win_sent = 0;
    client_ack = None;
    xfer_hold = false;
    xfer_held = Queue.create ();
    xfer_tap = Queue.create ();
    emitted = 0;
    retrans_fwd = 0;
    empty_acks = 0;
    wait_since = None;
  }

(* Joint acknowledgment: the smaller of the replicas' cumulative acks
   guarantees both have the client data (§3.2).  The ablation switches in
   {!Failover_config} replace the rule with the primary's own values. *)
let min_ack_cfg ~use_min conn =
  match (conn.ack_p, conn.ack_s) with
  | Some a, Some b -> Some (if use_min then Seq32.min a b else a)
  | Some a, None | None, Some a -> Some a
  | None, None -> None

let min_win_cfg ~use_min conn =
  if use_min then min conn.win_p conn.win_s else conn.win_p

let min_ack t conn = min_ack_cfg ~use_min:(config t).use_min_ack conn
let min_win t conn = min_win_cfg ~use_min:(config t).use_min_window conn
let merged_mss conn = min conn.p_mss conn.s_mss

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let emit t conn (seg : Seg.t) =
  conn.emitted <- conn.emitted + 1;
  t.total_emitted <- t.total_emitted + 1;
  Registry.Counter.incr t.c_emitted;
  let pkt =
    match t.out with
    | Direct ->
      Ipv4_packet.make
        ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
        ~src:t.service_addr ~dst:(fst conn.remote) (Ipv4_packet.Tcp seg)
    | Divert_to upstream ->
      (* present the merged stream upstream as if we were an ordinary
         secondary: original destination rides in the TCP option *)
      let seg =
        { seg with Seg.options = Seg.Orig_dst (fst conn.remote) :: seg.options }
      in
      Ipv4_packet.make
        ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
        ~src:t.self_addr ~dst:upstream (Ipv4_packet.Tcp seg)
  in
  let cost = (config t).bridge_cost in
  Tcpfo_sim.Cpu.run (Host.cpu t.host) ~cost (fun () ->
      Ip_layer.inject (Host.ip t.host) pkt)

let emit_data t conn ~seq ~payload ~fin ~psh =
  let ack = match min_ack t conn with Some a -> a | None -> Seq32.zero in
  let window = min_win t conn in
  conn.last_ack_sent <- Some ack;
  conn.last_win_sent <- window;
  let options =
    match (conn.ts_p && conn.ts_s, conn.last_ts_s) with
    | true, Some (v, e) -> [ Seg.Timestamps (v, e) ]
    | _ -> []
  in
  emit t conn
    (Seg.make
       ~flags:{ Seg.no_flags with ack = true; fin; psh }
       ~ack
       ~window:(min 0xFFFF (window asr conn.merged_shift))
       ~options ~payload ~src_port:conn.local_port
       ~dst_port:(snd conn.remote) ~seq ())

(* §3.4: construct an empty segment when the joint acknowledgment — or,
   to avoid a zero-window deadlock the paper does not discuss, the joint
   window — advances without data to carry it. *)
let maybe_empty_ack t conn =
  if conn.syn_done && conn.mode = Active then
    match min_ack t conn with
    | None -> ()
    | Some a ->
      let w = min_win t conn in
      let advanced =
        match conn.last_ack_sent with
        | None -> true
        | Some prev -> Seq32.gt a prev || w > conn.last_win_sent
      in
      if advanced then begin
        conn.empty_acks <- conn.empty_acks + 1;
        Registry.Counter.incr t.c_empty_acks;
        emit_data t conn ~seq:conn.next_seq ~payload:"" ~fin:false ~psh:false
      end

(* A replica answered a client retransmission (or an out-of-window
   segment) with a duplicate ACK.  The joint acknowledgment did not
   advance, but the client is evidently missing our previous merged ACK —
   re-emit it, or the connection deadlocks once a merged ACK is lost and
   no data flows to carry a fresh one.  (An engineering completion of
   §3.4's empty-segment rule; bounded to one emission per replica
   duplicate ACK.) *)
let reemit_merged_ack t conn =
  if conn.syn_done && conn.mode = Active then
    match min_ack t conn with
    | Some _ ->
      conn.empty_acks <- conn.empty_acks + 1;
      Registry.Counter.incr t.c_empty_acks;
      emit_data t conn ~seq:conn.next_seq ~payload:"" ~fin:false ~psh:false
    | None -> ()

(* §3.4, Fig. 2: pump the longest byte prefix present in both output
   queues, splitting at the negotiated MSS; piggyback the joint FIN when
   both replicas' FINs line up at the stream end (§8). *)
let rec pump t conn =
  if conn.syn_done && conn.mode = Active then begin
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      let common =
        min
          (Interval_buf.contiguous_length conn.pq)
          (Interval_buf.contiguous_length conn.sq)
      in
      if common > 0 then begin
        let len = min common (merged_mss conn) in
        let seq = conn.next_seq in
        let payload = Interval_buf.pop conn.pq ~max_len:len in
        (* the secondary's copy carries the same bytes; drop without
           materializing a second string (§3.4 merges identical streams) *)
        Interval_buf.drop conn.sq ~len;
        assert (String.length payload = len);
        Registry.Counter.add t.c_merged_bytes len;
        conn.next_seq <- Seq32.add conn.next_seq len;
        let fin = fin_ready conn in
        if fin then begin
          conn.fin_sent <- true;
          conn.next_seq <- Seq32.succ conn.next_seq
        end;
        let drained =
          Interval_buf.contiguous_length conn.pq = 0
          || Interval_buf.contiguous_length conn.sq = 0
        in
        emit_data t conn ~seq ~payload ~fin ~psh:drained;
        progressed := true
      end
      else continue := false
    done;
    (* FIN with no payload left *)
    if (not conn.fin_sent) && fin_ready conn then begin
      conn.fin_sent <- true;
      let seq = conn.next_seq in
      conn.next_seq <- Seq32.succ conn.next_seq;
      emit_data t conn ~seq ~payload:"" ~fin:true ~psh:false;
      progressed := true
    end;
    if !progressed then begin
      (* merge latency: how long the earlier replica's bytes sat waiting
         for their twin before the merged segment could go out *)
      (match conn.wait_since with
      | Some t0 ->
        Registry.Histogram.observe t.h_merge_latency (Time.to_us (now t - t0))
      | None -> ());
      conn.wait_since <-
        (if
           Interval_buf.total_buffered conn.pq > 0
           || Interval_buf.total_buffered conn.sq > 0
         then Some (now t)
         else None)
    end
    else maybe_empty_ack t conn;
    maybe_finish t conn
  end

and fin_ready conn =
  (not conn.fin_sent)
  &&
  match (conn.p_fin, conn.s_fin) with
  | Some f, Some f' ->
    Seq32.equal f f' && Seq32.equal conn.next_seq f
    && Interval_buf.contiguous_length conn.pq = 0
    && Interval_buf.contiguous_length conn.sq = 0
  | _ -> false

(* §8 teardown: both directions closed and all final acknowledgments
   delivered.  The connection lingers to answer stray FIN retransmissions,
   then disappears. *)
and maybe_finish t conn =
  let server_fin_acked =
    conn.fin_sent
    &&
    match conn.client_ack with
    | Some a -> Seq32.ge a conn.next_seq (* next_seq is fin+1 once sent *)
    | None -> false
  in
  if
    conn.mode = Active && server_fin_acked && conn.client_fin <> None
    && conn.client_fin_acked
  then begin
    conn.mode <- Linger;
    ignore
      ((Host.clock t.host).schedule (Time.sec 10.0) (fun () ->
           Hashtbl.remove t.conns (key_of conn)))
  end

(* ------------------------------------------------------------------ *)
(* SYN merging (§7.1 client-initiated, §7.2 server-initiated)          *)

let merged_syn_options conn =
  [ Seg.Mss (merged_mss conn) ]
  @ (match (conn.shift_p, conn.shift_s) with
    | Some _, Some _ -> [ Seg.Window_scale conn.merged_shift ]
    | _ -> [])
  @
  match (conn.ts_p, conn.ts_s, conn.s_syn_ts) with
  | true, true, Some (v, e) -> [ Seg.Timestamps (v, e) ]
  | _ -> []

let try_merge_syn t conn =
  match (conn.seqp_init, conn.seqs_init) with
  | Some sp, Some ss when not conn.syn_done ->
    conn.delta <- Some (Seq32.diff sp ss);
    conn.next_seq <- Seq32.succ ss;
    conn.pq <- Interval_buf.create ~base:conn.next_seq;
    conn.sq <- Interval_buf.create ~base:conn.next_seq;
    (* the merged window scale is the smaller of the replicas' shifts,
       and only if both offered the option — mirroring the min-MSS rule *)
    (match (conn.shift_p, conn.shift_s) with
    | Some a, Some b -> conn.merged_shift <- min a b
    | _ -> conn.merged_shift <- 0);
    conn.syn_done <- true;
    Registry.Counter.incr t.c_syn_merges;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~at:(now t)
        (Event.Merge
           { host = Host.name t.host; port = conn.local_port; bytes = 0 });
    let with_ack =
      match conn.p_syn_flags with Some f -> f.Seg.ack | None -> false
    in
    let ack =
      if with_ack then
        match min_ack t conn with Some a -> a | None -> Seq32.zero
      else Seq32.zero
    in
    let window = min_win t conn in
    conn.last_ack_sent <- (if with_ack then Some ack else None);
    conn.last_win_sent <- window;
    emit t conn
      (Seg.make
         ~flags:{ Seg.no_flags with syn = true; ack = with_ack }
         ~ack
         ~window:(min 0xFFFF window)
         ~options:(merged_syn_options conn)
         ~src_port:conn.local_port ~dst_port:(snd conn.remote) ~seq:ss ());
    pump t conn
  | _ -> ()

let reemit_merged_syn t conn =
  match conn.seqs_init with
  | Some ss when conn.syn_done ->
    conn.retrans_fwd <- conn.retrans_fwd + 1;
    Registry.Counter.incr t.c_retrans_fwd;
    let with_ack =
      match conn.p_syn_flags with Some f -> f.Seg.ack | None -> false
    in
    let ack =
      if with_ack then
        match min_ack t conn with Some a -> a | None -> Seq32.zero
      else Seq32.zero
    in
    emit t conn
      (Seg.make
         ~flags:{ Seg.no_flags with syn = true; ack = with_ack }
         ~ack
         ~window:(min 0xFFFF (min_win t conn))
         ~options:(merged_syn_options conn)
         ~src_port:conn.local_port ~dst_port:(snd conn.remote)
         ~seq:ss ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Retransmission pass-through (§4)                                    *)

let forward_retransmission t conn ~wire_seq ~payload ~fin =
  conn.retrans_fwd <- conn.retrans_fwd + 1;
  Registry.Counter.incr t.c_retrans_fwd;
  emit_data t conn ~seq:wire_seq ~payload ~fin ~psh:(payload <> "")

(* ------------------------------------------------------------------ *)
(* Per-source segment processing                                       *)

(* Common data/FIN path once sequence numbers are in wire space. *)
let ingest_wire t conn ~queue ~set_fin ~wire_seq (seg : Seg.t) =
  let plen = String.length seg.payload in
  let wire_end = Seq32.add wire_seq (plen + if seg.flags.fin then 1 else 0) in
  if
    conn.syn_done
    && Seq32.le wire_end conn.next_seq
    && (plen > 0 || seg.flags.fin)
  then
    (* Entirely already emitted: a retransmission.  Forward immediately —
       the bridge holds only a single copy of anything (§4). *)
    forward_retransmission t conn ~wire_seq ~payload:seg.payload
      ~fin:seg.flags.fin
  else begin
    if plen > 0 then begin
      Interval_buf.insert queue ~seq:wire_seq seg.payload;
      if conn.wait_since = None then conn.wait_since <- Some (now t)
    end;
    if seg.flags.fin then set_fin (Seq32.add wire_seq plen);
    pump t conn
  end

let forward_rst t conn ~wire_seq (seg : Seg.t) =
  emit t conn
    (Seg.make
       ~flags:{ Seg.no_flags with rst = true; ack = seg.flags.ack }
       ~ack:seg.ack ~window:0 ~src_port:conn.local_port
       ~dst_port:(snd conn.remote) ~seq:wire_seq ());
  Hashtbl.remove t.conns (key_of conn)

let from_primary t conn (seg : Seg.t) =
  if conn.mode = Linger then ()
  else begin
    let prev_ack_p = conn.ack_p in
    if seg.flags.ack then begin
      conn.ack_p <-
        Some
          (match conn.ack_p with
          | Some prev -> Seq32.max prev seg.ack
          | None -> seg.ack);
      conn.win_p <-
        (if seg.flags.syn then seg.window
         else
           seg.window
           lsl match conn.shift_p with Some v -> v | None -> 0)
    end;
    if seg.flags.rst then begin
      let wire_seq =
        match conn.delta with
        | Some d -> Seq32.add seg.seq (-d)
        | None -> seg.seq
      in
      forward_rst t conn ~wire_seq seg
    end
    else if seg.flags.syn then begin
      match conn.seqp_init with
      | None ->
        conn.seqp_init <- Some seg.seq;
        conn.p_syn_flags <- Some seg.flags;
        (match Seg.mss_option seg with
        | Some m -> conn.p_mss <- m
        | None -> conn.p_mss <- 536);
        conn.shift_p <- Seg.window_scale_option seg;
        conn.ts_p <- Seg.timestamps_option seg <> None;
        try_merge_syn t conn
      | Some _ ->
        (* SYN retransmission by P's TCP layer *)
        if conn.syn_done then reemit_merged_syn t conn;
        maybe_finish t conn
    end
    else
      match conn.delta with
      | None ->
        (* data before the handshake is merged: impossible for a correct
           TCP; drop defensively *)
        if Obs.tracing t.obs then
          Obs.emit t.obs ~at:(now t)
            (Event.Segment_drop
               { host = Host.name t.host; reason = "pre-merge"; seg })
      | Some d ->
        let pure_dup =
          String.length seg.payload = 0
          && (not seg.flags.fin)
          && prev_ack_p = conn.ack_p
          && prev_ack_p <> None
        in
        if pure_dup then reemit_merged_ack t conn
        else
          let wire_seq = Seq32.add seg.seq (-d) in
          ingest_wire t conn ~queue:conn.pq
            ~set_fin:(fun f -> conn.p_fin <- Some f)
            ~wire_seq seg
  end

let rec from_secondary t conn (seg : Seg.t) =
  if conn.mode = Linger then begin
    (* §8: a FIN retransmitted by S after teardown is answered with a
       plain ACK (see synthesize_ack_to_secondary). *)
    if seg.flags.fin then synthesize_ack_to_secondary t conn seg
  end
  else begin
    let prev_ack_s = conn.ack_s in
    if seg.flags.ack then begin
      conn.ack_s <-
        Some
          (match conn.ack_s with
          | Some prev -> Seq32.max prev seg.ack
          | None -> seg.ack);
      conn.win_s <-
        (if seg.flags.syn then seg.window
         else
           seg.window
           lsl match conn.shift_s with Some v -> v | None -> 0)
    end;
    (* merged segments carry the secondary's timestamps (see conn) *)
    (match Seg.timestamps_option seg with
    | Some ts -> conn.last_ts_s <- Some ts
    | None -> ());
    if seg.flags.rst then forward_rst t conn ~wire_seq:seg.seq seg
    else if seg.flags.syn then begin
      match conn.seqs_init with
      | None ->
        conn.seqs_init <- Some seg.seq;
        (match Seg.mss_option seg with
        | Some m -> conn.s_mss <- m
        | None -> conn.s_mss <- 536);
        conn.shift_s <- Seg.window_scale_option seg;
        conn.ts_s <- Seg.timestamps_option seg <> None;
        conn.s_syn_ts <- Seg.timestamps_option seg;
        try_merge_syn t conn
      | Some _ -> if conn.syn_done then reemit_merged_syn t conn
    end
    else begin
      let pure_dup =
        String.length seg.payload = 0
        && (not seg.flags.fin)
        && prev_ack_s = conn.ack_s
        && prev_ack_s <> None
      in
      if pure_dup then reemit_merged_ack t conn
      else
        ingest_wire t conn ~queue:conn.sq
          ~set_fin:(fun f -> conn.s_fin <- Some f)
          ~wire_seq:seg.seq seg
    end
  end

(* Answer a stray FIN from the secondary after (or near) teardown: build
   the ACK the secondary's TCP layer is waiting for and slip it to the
   secondary as if it came from the client.  On the wire it is addressed
   to the service address but framed to the secondary's MAC — the
   secondary's bridge claims datagrams for the service address, so its TCP
   layer receives it (see Secondary_bridge). *)
and synthesize_ack_to_secondary t conn (seg : Seg.t) =
  let fin_end =
    Seq32.add seg.seq (String.length seg.payload + 1 (* the FIN itself *))
  in
  let ack_seg =
    Seg.make
      ~flags:{ Seg.no_flags with ack = true }
      ~ack:fin_end ~window:conn.last_win_sent
      ~src_port:(snd conn.remote) ~dst_port:conn.local_port
      ~seq:(if seg.flags.ack then seg.ack else conn.next_seq)
      ()
  in
  let pkt =
    Ipv4_packet.make
      ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
      ~src:(fst conn.remote) ~dst:t.service_addr (Ipv4_packet.Tcp ack_seg)
  in
  Eth_iface.send_ip (Host.eth t.host) ~next_hop:t.secondary_addr pkt

let from_client t conn (pkt : Ipv4_packet.t) (seg : Seg.t) =
  if conn.mode = Linger then begin
    (* §8: retransmitted client FIN after teardown — answer directly.  By
       linger time both replicas have acknowledged everything, so the
       stored joint ack (client_fin + 1) is exactly the ACK the client is
       waiting for. *)
    if seg.flags.fin then
      emit_data t conn ~seq:conn.next_seq ~payload:"" ~fin:false ~psh:false;
    Ip_layer.Rx_drop
  end
  else begin
    if conn.xfer_hold then Queue.push pkt conn.xfer_tap;
    if seg.flags.ack then
      conn.client_ack <-
        Some
          (match conn.client_ack with
          | Some prev -> Seq32.max prev seg.ack
          | None -> seg.ack);
    if seg.flags.fin then
      conn.client_fin <-
        Some
          (Seq32.add seg.seq
             (String.length seg.payload + if seg.flags.syn then 1 else 0));
    (match (conn.client_fin, min_ack t conn) with
    | Some f, Some a when Seq32.ge a (Seq32.succ f) ->
      conn.client_fin_acked <- true
    | _ -> ());
    maybe_finish t conn;
    if seg.flags.rst then
      (* the client aborted: both TCP layers will see the RST and die;
         drop the bridge state too *)
      ignore
        ((Host.clock t.host).schedule 0 (fun () ->
             Hashtbl.remove t.conns (key_of conn)));
    (* Inverse sequence translation (§3.3): the client acknowledges wire
       (secondary-space) sequence numbers; the primary's TCP layer counts
       in its own space. *)
    let accept pkt =
      if t.claim_service then Ip_layer.Rx_deliver pkt else Ip_layer.Rx_pass pkt
    in
    match conn.delta with
    | Some d when seg.flags.ack ->
      let seg' = { seg with ack = Seq32.add seg.ack d } in
      accept { pkt with payload = Ipv4_packet.Tcp seg' }
    | _ -> accept pkt
  end

(* The client-FIN-acked condition can also be completed by a later server
   ack; re-check whenever acks move.  (Hooked into from_client above and
   into pump via maybe_finish.) *)

(* ------------------------------------------------------------------ *)
(* §6: failure of the secondary server                                 *)

let flush_and_degrade_conn t conn =
  if conn.mode = Active && conn.syn_done then begin
    (* 1. Remove all payload data from the primary output queue and send
       it to the client (in MSS-sized segments), with the primary's own
       ack and window from now on. *)
    let mss = max 1 conn.p_mss in
    let ack = match conn.ack_p with Some a -> a | None -> Seq32.zero in
    let rec flush () =
      let chunk = Interval_buf.pop conn.pq ~max_len:mss in
      if String.length chunk > 0 then begin
        let seq = conn.next_seq in
        conn.next_seq <- Seq32.add conn.next_seq (String.length chunk) ;
        let fin =
          (not conn.fin_sent)
          && conn.p_fin = Some conn.next_seq
        in
        if fin then begin
          conn.fin_sent <- true;
          conn.next_seq <- Seq32.succ conn.next_seq
        end;
        conn.last_ack_sent <- Some ack;
        conn.last_win_sent <- conn.win_p;
        emit t conn
          (Seg.make
             ~flags:{ Seg.no_flags with ack = true; fin; psh = true }
             ~ack ~window:conn.win_p ~payload:chunk
             ~src_port:conn.local_port ~dst_port:(snd conn.remote) ~seq ());
        flush ()
      end
    in
    flush ();
    if
      (not conn.fin_sent)
      && conn.p_fin = Some conn.next_seq
    then begin
      conn.fin_sent <- true;
      let seq = conn.next_seq in
      conn.next_seq <- Seq32.succ conn.next_seq;
      emit t conn
        (Seg.make
           ~flags:{ Seg.no_flags with ack = true; fin = true }
           ~ack ~window:conn.win_p ~src_port:conn.local_port
           ~dst_port:(snd conn.remote) ~seq ())
    end
  end

(* Degraded pass-through: continue to subtract Δseq forever (§6 step 3 —
   the client's TCP layer is synchronized to the secondary's numbers). *)
let degraded_tx t conn (seg : Seg.t) =
  match conn.delta with
  | None -> Ip_layer.Tx_drop (* never merged: the conn is dead *)
  | Some d ->
    let seg' = { seg with seq = Seq32.add seg.seq (-d) } in
    (match t.out with
    | Direct ->
      Ip_layer.Tx_pass
        (Ipv4_packet.make ~src:t.service_addr ~dst:(fst conn.remote)
           (Ipv4_packet.Tcp seg'))
    | Divert_to upstream ->
      let seg' =
        { seg' with
          Seg.options = Seg.Orig_dst (fst conn.remote) :: seg'.options }
      in
      Ip_layer.Tx_pass
        (Ipv4_packet.make ~src:t.self_addr ~dst:upstream
           (Ipv4_packet.Tcp seg')))

let secondary_failed t =
  if not t.degraded then begin
    t.degraded <- true;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~at:(now t)
        (Event.Failover { host = Host.name t.host; phase = Degraded });
    (* A connection whose SYN replicas never merged has emitted nothing
       toward the client, so no sequence-space commitment exists.  With
       [Direct] output, drop the bridge state and let the primary's TCP
       layer finish the handshake alone, in its own numbering — keeping
       such a conn would swallow the primary's SYN-ACK retransmissions
       in degraded_tx (delta is still None) and strand the client in
       SYN_SENT.  A [Divert_to] merger (a middle chain level) cannot
       hand the handshake to its own TCP layer that way: without a conn
       entry its SYN-ACK would Tx_pass straight to the client, bypassing
       the level above, which still expects to merge and would answer
       the resulting handshake with an RST.  Self-merge instead: adopt
       the local stack's numbering as the downstream space (Δ = 0) and
       pin the conn solo, so its SYN-ACK retransmissions travel upward
       through the degraded pass-through and the level above merges
       against them as if they came from a live secondary. *)
    let unmerged =
      Hashtbl.fold
        (fun k conn acc -> if conn.syn_done then acc else k :: acc)
        t.conns []
    in
    (match t.out with
    | Direct -> List.iter (Hashtbl.remove t.conns) unmerged
    | Divert_to _ ->
      List.iter
        (fun k ->
          match Hashtbl.find_opt t.conns k with
          | Some conn ->
            conn.solo <- true;
            conn.syn_done <- true;
            if conn.delta = None then conn.delta <- Some 0
          | None -> ())
        unmerged);
    Hashtbl.iter
      (fun _ conn ->
        conn.solo <- true;
        flush_and_degrade_conn t conn)
      t.conns
  end

(* Reintegration (beyond the paper's scope, §1): accept a fresh secondary.
   Connections that outlived the old secondary remain solo — without
   application-state transfer they cannot be re-replicated — but every
   connection established from now on is fully protected again. *)
let reinstate t ~secondary_addr =
  t.secondary_addr <- secondary_addr;
  t.degraded <- false;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~at:(now t)
      (Event.Failover { host = Host.name t.host; phase = Reintegrated })

(* ------------------------------------------------------------------ *)
(* Hook plumbing                                                       *)

let is_failover_seg t ~local_port ~remote_port =
  Failover_config.is_failover_conn t.registry ~local_port ~remote_port

let find_conn t ~remote ~local_port =
  Hashtbl.find_opt t.conns (fst remote, snd remote, local_port)

let find_or_create t ~remote ~local_port ~create =
  match find_conn t ~remote ~local_port with
  | Some c -> Some c
  | None ->
    if create then begin
      let c = mk_conn ~remote ~local_port in
      Hashtbl.replace t.conns (key_of c) c;
      Some c
    end
    else None

(* ------------------------------------------------------------------ *)
(* Hot state transfer: quiesce / cut-over / abort                      *)

(* Quiesce one connection: from this instant until {!complete_transfer}
   or {!abort_transfer}, every segment the local TCP layer emits for it
   is parked in [xfer_held] (tx_hook checks the flag before any other
   dispatch) and every client datagram is tapped.  The snapshot the
   orchestrator takes in the same simulation instant is therefore exact:
   no byte escapes in a range the snapshot does not cover.  For a
   promoted survivor the bridge is freshly installed and has no conn for
   pre-failure connections yet — create it here, otherwise held output
   would bypass the bridge entirely during the hold. *)
let begin_transfer t ~remote ~local_port =
  let conn =
    match find_or_create t ~remote ~local_port ~create:true with
    | Some c -> c
    | None -> assert false
  in
  conn.xfer_hold <- true

(* Re-arm the bridge connection around the restored pair and cut over.
   The replica was installed from a snapshot in wire numbering, so the
   new Δseq is exactly the survivor's [delta] (0 for a promoted
   survivor).  Held survivor output is released through the ordinary
   merge path; tapped client datagrams are re-forwarded to the repaired
   replica, which never saw them (the client will not retransmit bytes
   the survivor already acknowledged).  Duplicates are harmless — TCP
   discards them. *)
let complete_transfer t ~remote ~local_port ~(tcb : Tcb.t) ~delta =
  match find_conn t ~remote ~local_port with
  | None -> ()
  | Some conn ->
    let wire s = Seq32.add s (-delta) in
    let wire_iss = wire (Tcb.iss tcb) in
    let next_seq = wire (Tcb.snd_max tcb) in
    let mss = Tcb.effective_mss tcb in
    let w = Tcb.rcv_wscale tcb in
    let win = Tcb.receive_window tcb in
    let ts = Tcb.timestamps_enabled tcb in
    conn.solo <- false;
    conn.mode <- Active;
    conn.seqp_init <- Some (Tcb.iss tcb);
    conn.seqs_init <- Some wire_iss;
    conn.delta <- Some delta;
    conn.p_syn_flags <- None;
    conn.p_mss <- mss;
    conn.s_mss <- mss;
    conn.shift_p <- (if w > 0 then Some w else None);
    conn.shift_s <- (if w > 0 then Some w else None);
    conn.merged_shift <- w;
    conn.ts_p <- ts;
    conn.ts_s <- ts;
    conn.s_syn_ts <- None;
    conn.last_ts_s <- None;
    conn.syn_done <- true;
    conn.next_seq <- next_seq;
    conn.pq <- Interval_buf.create ~base:next_seq;
    conn.sq <- Interval_buf.create ~base:next_seq;
    conn.fin_sent <- Tcb.fin_sent tcb;
    (if Tcb.fin_sent tcb then begin
       (* snd_max covers the FIN, which sits one below the frontier *)
       let fin_pos = Seq32.add next_seq (-1) in
       conn.p_fin <- Some fin_pos;
       conn.s_fin <- Some fin_pos
     end
     else begin
       conn.p_fin <- None;
       conn.s_fin <- None
     end);
    conn.client_fin <- Tcb.rcv_fin tcb;
    conn.client_fin_acked <- Tcb.eof_signalled tcb;
    conn.ack_p <- Some (Tcb.rcv_nxt tcb);
    conn.ack_s <- None;
    conn.win_p <- win;
    conn.win_s <- win;
    conn.client_ack <- Some (wire (Tcb.snd_una tcb));
    conn.last_ack_sent <- Some (Tcb.rcv_nxt tcb);
    conn.last_win_sent <- win;
    conn.xfer_hold <- false;
    let held = Queue.create () in
    Queue.transfer conn.xfer_held held;
    Queue.iter (fun seg -> from_primary t conn seg) held;
    let tap = Queue.create () in
    Queue.transfer conn.xfer_tap tap;
    Queue.iter
      (fun pkt ->
        Eth_iface.send_ip (Host.eth t.host) ~next_hop:t.secondary_addr pkt)
      tap;
    (* a conn transferred in a terminal state (e.g. TIME_WAIT) may already
       satisfy the teardown condition: move it to linger straight away *)
    maybe_finish t conn

(* Transfer failed (reject or timeout): release the held output the way
   degraded pass-through would have sent it, drop the tap, and forget a
   conn that only existed for the transfer. *)
let abort_transfer t ~remote ~local_port =
  match find_conn t ~remote ~local_port with
  | None -> ()
  | Some conn ->
    if conn.xfer_hold then begin
      conn.xfer_hold <- false;
      Queue.iter
        (fun (seg : Seg.t) ->
          let seg' =
            match conn.delta with
            | Some d -> { seg with Seg.seq = Seq32.add seg.seq (-d) }
            | None -> seg
          in
          let pkt =
            match t.out with
            | Direct ->
              Ipv4_packet.make
                ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
                ~src:t.service_addr ~dst:(fst conn.remote)
                (Ipv4_packet.Tcp seg')
            | Divert_to upstream ->
              let seg' =
                { seg' with
                  Seg.options =
                    Seg.Orig_dst (fst conn.remote) :: seg'.options }
              in
              Ipv4_packet.make
                ~ident:(Ip_layer.fresh_ident (Host.ip t.host))
                ~src:t.self_addr ~dst:upstream (Ipv4_packet.Tcp seg')
          in
          Ip_layer.inject (Host.ip t.host) pkt)
        conn.xfer_held;
      Queue.clear conn.xfer_held;
      Queue.clear conn.xfer_tap;
      if not conn.syn_done then Hashtbl.remove t.conns (key_of conn)
    end

(* Mark a connection that is NOT being transferred as permanently solo.
   This pins its emissions to the degraded pass-through path so a
   surviving half-open handshake cannot SYN-merge with the fresh
   replica's different ISN after reinstatement.  Δ is forced to 0 only
   when the conn never merged — such a conn has been running in the
   survivor's own numbering all along. *)
let isolate_conn t ~remote ~local_port =
  let conn =
    match find_or_create t ~remote ~local_port ~create:true with
    | Some c -> c
    | None -> assert false
  in
  conn.solo <- true;
  conn.syn_done <- true;
  if conn.delta = None then conn.delta <- Some 0

(* Bridge-side Δseq for a live connection, if one is recorded. *)
let conn_delta t ~remote ~local_port =
  match find_conn t ~remote ~local_port with
  | Some { delta = Some d; _ } -> Some d
  | _ -> None

let tx_hook t (pkt : Ipv4_packet.t) =
  match pkt.payload with
  | Tcp seg
    when Ipaddr.equal pkt.src t.service_addr
         && is_failover_seg t ~local_port:seg.src_port
              ~remote_port:seg.dst_port -> (
    let remote = (pkt.dst, seg.dst_port) in
    if t.degraded then
      match find_conn t ~remote ~local_port:seg.src_port with
      | Some conn when conn.xfer_hold ->
        Queue.push seg conn.xfer_held;
        Ip_layer.Tx_drop
      | Some conn -> degraded_tx t conn seg
      | None -> Ip_layer.Tx_pass pkt (* post-failure conns are ordinary *)
    else
      match
        find_or_create t ~remote ~local_port:seg.src_port
          ~create:seg.flags.syn
      with
      | Some conn when conn.xfer_hold ->
        Queue.push seg conn.xfer_held;
        Ip_layer.Tx_drop
      | Some conn when conn.solo -> degraded_tx t conn seg
      | Some conn ->
        from_primary t conn seg;
        Ip_layer.Tx_drop
      | None -> Ip_layer.Tx_pass pkt)
  | Tcp _ | Heartbeat _ | Raw _ -> Ip_layer.Tx_pass pkt

let rx_hook t (pkt : Ipv4_packet.t) ~link_addressed =
  ignore link_addressed;
  match pkt.payload with
  | Tcp seg
    when Ipaddr.equal pkt.dst t.service_addr
         || Ipaddr.equal pkt.dst t.self_addr -> (
    match Seg.orig_dst_option seg with
    | Some orig_dst
      when is_failover_seg t ~local_port:seg.src_port
             ~remote_port:seg.dst_port ->
      (* Diverted segment from the secondary (§3.1): consumed by the
         bridge, never delivered to the primary's TCP layer. *)
      if t.degraded then Ip_layer.Rx_drop
      else begin
        (match
           find_or_create t
             ~remote:(orig_dst, seg.dst_port)
             ~local_port:seg.src_port ~create:seg.flags.syn
         with
        | Some conn when conn.solo -> () (* outlived its secondary *)
        | Some conn -> from_secondary t conn seg
        | None -> ());
        Ip_layer.Rx_drop
      end
    | Some _ | None -> (
      (* Segment from the client (or unreplicated peer T). *)
      if
        Ipaddr.equal pkt.dst t.service_addr
        && is_failover_seg t ~local_port:seg.dst_port
             ~remote_port:seg.src_port
      then
        match find_conn t ~remote:(pkt.src, seg.src_port)
                ~local_port:seg.dst_port with
        | Some conn -> from_client t conn pkt seg
        | None ->
          if t.claim_service then Ip_layer.Rx_deliver pkt
          else Ip_layer.Rx_pass pkt
      else Ip_layer.Rx_pass pkt))
  | Tcp _ | Heartbeat _ | Raw _ -> Ip_layer.Rx_pass pkt

let install host ~registry ~service_addr ~secondary_addr ?(output = Direct)
    ?(claim_service = false) () =
  let obs = Obs.scope (Obs.root (Host.obs host)) "bridge.primary" in
  let t =
    {
      host;
      registry;
      service_addr;
      secondary_addr;
      self_addr = Host.addr host;
      out = output;
      claim_service;
      conns = Hashtbl.create 16;
      degraded = false;
      installed = true;
      total_emitted = 0;
      obs;
      c_emitted = Obs.counter obs "emitted";
      c_retrans_fwd = Obs.counter obs "retrans_forwarded";
      c_empty_acks = Obs.counter obs "empty_acks";
      c_syn_merges = Obs.counter obs "syn_merges";
      c_merged_bytes = Obs.counter obs "merged_bytes";
      h_merge_latency = Obs.histogram obs "merge_latency_us";
    }
  in
  Ip_layer.set_tx_hook (Host.ip host) (Some (fun pkt -> tx_hook t pkt));
  Ip_layer.set_rx_hook (Host.ip host)
    (Some (fun pkt ~link_addressed -> rx_hook t pkt ~link_addressed));
  t

let uninstall t =
  if t.installed then begin
    t.installed <- false;
    Ip_layer.set_tx_hook (Host.ip t.host) None;
    Ip_layer.set_rx_hook (Host.ip t.host) None
  end

let connection_count t = Hashtbl.length t.conns

type conn_stats = {
  delta : int option;
  next_wire_seq : Seq32.t;
  p_queued : int;
  s_queued : int;
  segments_emitted : int;
  retransmissions_forwarded : int;
  empty_acks_emitted : int;
}

let conn_stats t ~remote ~local_port =
  Option.map
    (fun (c : conn) ->
      {
        delta = c.delta;
        next_wire_seq = c.next_seq;
        p_queued = Interval_buf.total_buffered c.pq;
        s_queued = Interval_buf.total_buffered c.sq;
        segments_emitted = c.emitted;
        retransmissions_forwarded = c.retrans_fwd;
        empty_acks_emitted = c.empty_acks;
      })
    (find_conn t ~remote ~local_port)

let total_emitted t = t.total_emitted
let degraded t = t.degraded
let promote t = t.out <- Direct
let output t = t.out
