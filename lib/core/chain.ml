module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Tcb = Tcpfo_tcp.Tcb
module Ipaddr = Tcpfo_packet.Ipaddr
module Ip_layer = Tcpfo_ip.Ip_layer
module Eth_iface = Tcpfo_ip.Eth_iface
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry
module Transfer = Tcpfo_statex.Transfer
module Snapshot = Tcpfo_statex.Snapshot

type event =
  | Death_detected of int
  | Promoted of int
  | Retargeted of int * int
  | Degraded of int
  | Rejoined of int
  | Transfers_complete of int
  | Isolated of { local_port : int; remote : Ipaddr.t * int }

let event_to_string = function
  | Death_detected i -> Printf.sprintf "replica %d declared dead" i
  | Promoted i -> Printf.sprintf "replica %d promoted to head" i
  | Retargeted (i, j) ->
    Printf.sprintf "replica %d re-diverts to replica %d" i j
  | Degraded i -> Printf.sprintf "replica %d degrades (lost its tail)" i
  | Rejoined i -> Printf.sprintf "replica %d rejoined at the tail" i
  | Transfers_complete n ->
    Printf.sprintf "%d connections re-replicated onto the tail" n
  | Isolated { local_port; remote = ra, rp } ->
    Printf.sprintf "connection :%d <-> %s:%d pinned solo" local_port
      (Ipaddr.to_string ra) rp

type bridge = Merger of Primary_bridge.t | Tail of Secondary_bridge.t

type node = {
  index : int;
  host : Host.t;
  mutable bridge : bridge;
  mutable is_head : bool;
  xfer : Transfer.t;
}

type t = {
  (* every node ever created, dead ones included: indices are stable and
     never reused, so events keep naming retired replicas unambiguously *)
  mutable nodes : node list;
  (* the live chain, head first — rejoined replicas append at the tail,
     so liveness order is no longer derivable from creation order *)
  mutable order : int list;
  mutable next_index : int;
  registry : Failover_config.registry;
  config : Failover_config.t;
  service : Ipaddr.t;
  mutable services : (int * (replica:int -> Tcb.t -> unit)) list;
  (* §7.2 client-role connections: setup per backend endpoint, re-run
     when a restored connection lands on a rejoined tail *)
  mutable backends : ((Ipaddr.t * int) * (replica:int -> Tcb.t -> unit)) list;
  mutable on_event : event -> unit;
  (* hot-state-transfer bookkeeping for the latest rejoin *)
  mutable pending : int;
  mutable xfers : int;
  c_deaths : Registry.counter;
  c_isolated : Registry.counter;
}

let service_addr t = t.service
let registry t = t.registry
let set_on_event t fn = t.on_event <- fn
let node_of t i = List.find (fun n -> n.index = i) t.nodes
let alive t = t.order
let head t = match t.order with i :: _ -> i | [] -> -1
let pending_transfers t = t.pending

(* ---------------------------------------------------------------- *)
(* All-pairs heartbeat mesh.  Each live node unicasts a heartbeat to
   every other live node each period; a per-node watcher tracks
   last-seen times and reports silent peers.  Per-node state lives in
   the closures of [start_node_mesh] so a rejoined replica gets a fresh
   watcher, and existing watchers pick it up through [t.order]. *)

let start_node_mesh t node ~on_death =
  let clock = Host.clock node.host in
  let period = t.config.Failover_config.heartbeat_period in
  let timeout = t.config.Failover_config.detector_timeout in
  (* sender *)
  let seq = ref 0 in
  let rec send_loop () =
    if Host.alive node.host then begin
      incr seq;
      List.iter
        (fun i ->
          if i <> node.index then
            let peer = node_of t i in
            Ip_layer.send (Host.ip node.host)
              (Ipv4_packet.make ~src:(Host.addr node.host)
                 ~dst:(Host.addr peer.host)
                 (Ipv4_packet.Heartbeat
                    {
                      origin = Host.name node.host;
                      hb_seq = !seq;
                      role = (if node.is_head then `Primary else `Secondary);
                    })))
        t.order;
      ignore (clock.schedule period send_loop)
    end
  in
  send_loop ();
  (* watcher: peers alive when this watcher starts get their grace
     period from now; peers that appear later (a rejoin) get it on
     first sight *)
  let last_seen : (int, Time.t) Hashtbl.t = Hashtbl.create 8 in
  let reported : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun i -> if i <> node.index then Hashtbl.replace last_seen i (clock.now ()))
    t.order;
  Ip_layer.set_heartbeat_handler (Host.ip node.host) (fun ~src _hb ->
      List.iter
        (fun n ->
          if Ipaddr.equal src (Host.addr n.host) then
            Hashtbl.replace last_seen n.index (clock.now ()))
        t.nodes);
  let rec check_loop () =
    if Host.alive node.host then begin
      let now = clock.now () in
      List.iter
        (fun i ->
          if i <> node.index && not (Hashtbl.mem reported i) then
            match Hashtbl.find_opt last_seen i with
            | None -> Hashtbl.replace last_seen i now
            | Some seen ->
              if now - seen > timeout then begin
                Hashtbl.replace reported i ();
                on_death ~observer:node.index ~dead:i
              end)
        t.order;
      ignore (clock.schedule period check_loop)
    end
  in
  ignore (clock.schedule (timeout + period) check_loop)

(* ---------------------------------------------------------------- *)
(* Role reconfiguration after a death.                               *)

let upstream_addr t j =
  let rec find prev = function
    | [] -> None
    | i :: rest -> if i = j then prev else find (Some i) rest
  in
  match find None t.order with
  | None -> None
  | Some i -> Some (Host.addr (node_of t i).host)

let promote_node t node =
  if not node.is_head then begin
    node.is_head <- true;
    match node.bridge with
    | Merger b ->
      (* generalized §5 for a middle replica: stop diverting upstream,
         leave promiscuous snooping, own the service address *)
      Primary_bridge.promote b;
      Eth_iface.set_promiscuous (Host.eth node.host) false;
      ignore
        ((Host.clock node.host).schedule t.config.takeover_processing
           (fun () ->
             Eth_iface.add_address (Host.eth node.host) t.service;
             t.on_event (Promoted node.index)))
    | Tail b ->
      Secondary_bridge.begin_takeover b ~on_complete:(fun () ->
          t.on_event (Promoted node.index))
  end

let reconfigure t =
  let live = t.order in
  match live with
  | [] -> ()
  | head_idx :: _ ->
    let last = List.nth live (List.length live - 1) in
    List.iter
      (fun i ->
        let node = node_of t i in
        (* 1. headship *)
        if i = head_idx then promote_node t node;
        (* 2. diversion targets follow the live chain *)
        (match (upstream_addr t i, node.bridge) with
        | Some up, Tail b ->
          Secondary_bridge.retarget b up;
          t.on_event
            (Retargeted
               ( i,
                 (let j = ref (-1) in
                  List.iter
                    (fun nd ->
                      if Ipaddr.equal (Host.addr nd.host) up then
                        j := nd.index)
                    t.nodes;
                  !j) ))
        | Some _, Merger _ | None, _ -> ());
        (* 3. the node at the end of the live chain has nothing below it
           any more: degrade per §6 if it was merging *)
        if i = last then
          match node.bridge with
          | Merger b ->
            if not (Primary_bridge.degraded b) then begin
              Primary_bridge.secondary_failed b;
              t.on_event (Degraded i)
            end
          | Tail _ -> ())
      live

let handle_death t ~observer:_ ~dead =
  if List.mem dead t.order then begin
    t.order <- List.filter (fun i -> i <> dead) t.order;
    Registry.Counter.incr t.c_deaths;
    t.on_event (Death_detected dead);
    reconfigure t
  end

(* ---------------------------------------------------------------- *)
(* Hot state transfer onto a rejoined tail.                          *)

let transferable_state : Tcb.state -> bool = function
  | Tcb.Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Closing
  | Last_ack | Time_wait ->
    true
  | Syn_sent | Syn_received | Closed -> false

let find_backend t (ra, rp) =
  List.find_map
    (fun ((a, p), setup) ->
      if Ipaddr.equal a ra && p = rp then Some setup else None)
    t.backends

(* Mirror of {!Replicated}'s installer: adopt the restored TCB on the
   rejoined replica, re-attach the application — listener for
   server-role connections, connect_backend setup for client-role ones —
   and resume. *)
let installer t node ~src:_ (sc : Snapshot.conn) =
  let snap = sc.Snapshot.tcb in
  if not (transferable_state snap.Tcb.sn_state) then
    Error "connection state not transferable"
  else if not (Ipaddr.equal (fst snap.Tcb.sn_local) t.service) then
    Error "snapshot is not for the service address"
  else
    let stack = Host.tcp node.host in
    match
      Stack.adopt stack ~local:snap.Tcb.sn_local ~remote:snap.Tcb.sn_remote
        ~make:(fun actions ->
          Tcb.restore (Host.clock node.host) ~obs:(Stack.obs stack)
            ~config:(Stack.config stack) actions snap)
    with
    | Error _ as e -> e
    | Ok tcb ->
      (match sc.Snapshot.role with
      | `Server ->
        (match List.assoc_opt (snd snap.Tcb.sn_local) t.services with
        | Some on_accept -> on_accept ~replica:node.index tcb
        | None -> ())
      | `Client ->
        (match find_backend t snap.Tcb.sn_remote with
        | Some setup -> setup ~replica:node.index tcb
        | None -> ()));
      Tcb.resume_restored tcb;
      Ok ()

(* Ship every live service connection of the end-of-chain node to the
   rejoined tail; whatever cannot travel is pinned solo. *)
let start_transfers t ~src:prev ~dst:fresh =
  let pb =
    match prev.bridge with
    | Merger b -> b
    | Tail _ -> invalid_arg "Chain: transfer source is not a merging level"
  in
  let dst = Host.addr fresh.host in
  let candidates =
    List.filter
      (fun tcb ->
        let la, lp = Tcb.local_endpoint tcb in
        let _, rp = Tcb.remote_endpoint tcb in
        Ipaddr.equal la t.service
        && Failover_config.is_failover_conn t.registry ~local_port:lp
             ~remote_port:rp)
      (Stack.connections (Host.tcp prev.host))
  in
  let to_transfer, to_isolate =
    List.partition
      (fun tcb ->
        transferable_state (Tcb.state tcb)
        && Tcb.input_retention_enabled tcb)
      candidates
  in
  let demote_solo tcb =
    let _, lp = Tcb.local_endpoint tcb in
    let remote = Tcb.remote_endpoint tcb in
    Primary_bridge.isolate_conn pb ~remote ~local_port:lp;
    Registry.Counter.incr t.c_isolated;
    t.on_event (Isolated { local_port = lp; remote })
  in
  List.iter demote_solo to_isolate;
  t.pending <- List.length to_transfer;
  t.xfers <- 0;
  if t.pending = 0 then t.on_event (Transfers_complete 0)
  else
    List.iter
      (fun tcb ->
        let _, lp = Tcb.local_endpoint tcb in
        let remote = Tcb.remote_endpoint tcb in
        let delta_opt = Primary_bridge.conn_delta pb ~remote ~local_port:lp in
        let delta = Option.value delta_opt ~default:0 in
        Primary_bridge.begin_transfer pb ~remote ~local_port:lp;
        let snap = Tcb.snapshot tcb in
        let snap =
          if delta <> 0 then Tcb.shift_snapshot snap (-delta) else snap
        in
        let role =
          if Option.is_some (find_backend t remote) then `Client else `Server
        in
        let sc =
          {
            Snapshot.tcb = snap;
            role;
            delta;
            next_wire_seq = snap.Tcb.sn_snd_max;
            held_segments = 0;
            solo = delta_opt <> None;
          }
        in
        Transfer.offer prev.xfer ~dst sc ~on_result:(fun res ->
            (match res with
            | Ok ()
              when List.mem prev.index t.order
                   && List.mem fresh.index t.order ->
              t.xfers <- t.xfers + 1;
              Primary_bridge.complete_transfer pb ~remote ~local_port:lp
                ~tcb ~delta
            | Ok () | Error _ ->
              Primary_bridge.abort_transfer pb ~remote ~local_port:lp;
              Registry.Counter.incr t.c_isolated;
              t.on_event (Isolated { local_port = lp; remote }));
            t.pending <- t.pending - 1;
            if t.pending = 0 then t.on_event (Transfers_complete t.xfers)))
      to_transfer

(* ---------------------------------------------------------------- *)

let create ~replicas ~config () =
  (match replicas with
  | _ :: _ :: _ -> ()
  | _ -> invalid_arg "Chain.create: need at least two replicas");
  let service = Host.addr (List.hd replicas) in
  let registry = Failover_config.create_registry config in
  let n = List.length replicas in
  let arr = Array.of_list replicas in
  let nodes =
    List.init n (fun i ->
        let host = arr.(i) in
        let bridge =
          if i = 0 then
            Merger
              (Primary_bridge.install host ~registry ~service_addr:service
                 ~secondary_addr:(Host.addr arr.(1))
                 ~output:Primary_bridge.Direct ())
          else if i < n - 1 then begin
            (* middle replica: snoop + merge + divert upstream *)
            Eth_iface.set_promiscuous (Host.eth host) true;
            Stack.set_extra_local (Host.tcp host) (fun ip ->
                Ipaddr.equal ip service);
            Merger
              (Primary_bridge.install host ~registry ~service_addr:service
                 ~secondary_addr:(Host.addr arr.(i + 1))
                 ~output:(Primary_bridge.Divert_to (Host.addr arr.(i - 1)))
                 ~claim_service:true ())
          end
          else
            Tail
              (Secondary_bridge.install host ~registry ~service_addr:service
                 ~divert_to:(Host.addr arr.(i - 1))
                 ())
        in
        {
          index = i;
          host;
          bridge;
          is_head = i = 0;
          xfer = Transfer.attach host;
        })
  in
  let obs = Obs.scope (Obs.root (Host.obs (List.hd replicas))) "chain" in
  let statex = Obs.scope (Obs.root (Host.obs (List.hd replicas))) "statex" in
  let t =
    {
      nodes;
      order = List.init n (fun i -> i);
      next_index = n;
      registry;
      config;
      service;
      services = [];
      backends = [];
      on_event = (fun _ -> ());
      pending = 0;
      xfers = 0;
      c_deaths = Obs.counter obs "deaths";
      c_isolated = Obs.counter statex "isolated_conns";
    }
  in
  List.iter (fun node -> Transfer.set_installer node.xfer (installer t node))
    t.nodes;
  List.iter
    (fun node ->
      start_node_mesh t node ~on_death:(fun ~observer ~dead ->
          handle_death t ~observer ~dead))
    t.nodes;
  t

let listen t ~port ~on_accept =
  Failover_config.register_endpoint t.registry ~local_port:port;
  t.services <- (port, on_accept) :: t.services;
  (* retention makes the connection transferable onto a rejoined tail *)
  List.iter
    (fun i ->
      let node = node_of t i in
      Stack.listen (Host.tcp node.host) ~port ~on_accept:(fun tcb ->
          Tcb.enable_input_retention tcb;
          on_accept ~replica:node.index tcb))
    t.order

let connect_backend t ~remote ?local_port ~setup () =
  (match local_port with
  | Some p -> Failover_config.register_endpoint t.registry ~local_port:p
  | None ->
    Failover_config.register_remote t.registry ~remote_port:(snd remote));
  t.backends <- (remote, setup) :: t.backends;
  (* live replicas only: a dead node cannot connect, and a rejoined tail
     receives the connection by hot state transfer instead *)
  List.iter
    (fun i ->
      let node = node_of t i in
      let tcb =
        Stack.connect (Host.tcp node.host) ~local:t.service ?local_port
          ~remote ()
      in
      Tcb.enable_input_retention tcb;
      setup ~replica:node.index tcb)
    t.order

let rejoin t host =
  if not (Host.alive host) then invalid_arg "Chain.rejoin: host is not alive";
  if
    List.exists
      (fun n -> n.host == host && List.mem n.index t.order)
      t.nodes
  then invalid_arg "Chain.rejoin: host is already in the chain";
  (match t.order with
  | [] -> invalid_arg "Chain.rejoin: no live replica to join"
  | _ -> ());
  let last_idx = List.nth t.order (List.length t.order - 1) in
  let prev = node_of t last_idx in
  (match prev.bridge with
  | Tail sb when prev.is_head && not (Secondary_bridge.taken_over sb) ->
    invalid_arg "Chain.rejoin: takeover still in progress"
  | _ -> ());
  let newaddr = Host.addr host in
  (* 1. the previous end of chain becomes a merging level over the
     newcomer *)
  (match prev.bridge with
  | Merger b ->
    (* a degraded §6 merger resumes replication toward the new tail *)
    Primary_bridge.reinstate b ~secondary_addr:newaddr
  | Tail sb ->
    (* the original tail never merged: swap its secondary bridge for the
       merging bridge a middle (or head) node runs *)
    Secondary_bridge.uninstall sb;
    let output =
      if prev.is_head then Primary_bridge.Direct
      else
        match upstream_addr t prev.index with
        | Some up -> Primary_bridge.Divert_to up
        | None -> Primary_bridge.Direct
    in
    let claim = not prev.is_head in
    if claim then begin
      (* uninstall dropped the promiscuous snoop and the service-address
         claim a middle node needs; restore them *)
      Eth_iface.set_promiscuous (Host.eth prev.host) true;
      Stack.set_extra_local (Host.tcp prev.host) (fun ip ->
          Ipaddr.equal ip t.service)
    end;
    prev.bridge <-
      Merger
        (Primary_bridge.install prev.host ~registry:t.registry
           ~service_addr:t.service ~secondary_addr:newaddr ~output
           ~claim_service:claim ()));
  (* 2. the newcomer joins as the new tail of the live chain *)
  let idx = t.next_index in
  t.next_index <- idx + 1;
  let sb =
    Secondary_bridge.install host ~registry:t.registry ~service_addr:t.service
      ~divert_to:(Host.addr prev.host) ~only_new_connections:true ()
  in
  let node =
    { index = idx; host; bridge = Tail sb; is_head = false;
      xfer = Transfer.attach host }
  in
  Transfer.set_installer node.xfer (installer t node);
  t.nodes <- t.nodes @ [ node ];
  t.order <- t.order @ [ idx ];
  (* start the registered services on the newcomer *)
  List.iter
    (fun (port, on_accept) ->
      Stack.listen (Host.tcp host) ~port ~on_accept:(fun tcb ->
          Tcb.enable_input_retention tcb;
          on_accept ~replica:idx tcb))
    t.services;
  start_node_mesh t node ~on_death:(fun ~observer ~dead ->
      handle_death t ~observer ~dead);
  t.on_event (Rejoined idx);
  (* 3. re-replicate live connections onto the new tail *)
  start_transfers t ~src:prev ~dst:node;
  idx

let kill t i = Host.kill (node_of t i).host
