module Time = Tcpfo_sim.Time
module Host = Tcpfo_host.Host
module Stack = Tcpfo_tcp.Stack
module Ipaddr = Tcpfo_packet.Ipaddr
module Ip_layer = Tcpfo_ip.Ip_layer
module Eth_iface = Tcpfo_ip.Eth_iface
module Ipv4_packet = Tcpfo_packet.Ipv4_packet
module Obs = Tcpfo_obs.Obs
module Registry = Tcpfo_obs.Registry

type event =
  | Death_detected of int
  | Promoted of int
  | Retargeted of int * int
  | Degraded of int

type bridge = Merger of Primary_bridge.t | Tail of Secondary_bridge.t

type node = {
  index : int;
  host : Host.t;
  bridge : bridge;
  mutable is_head : bool;
}

type t = {
  nodes : node array;
  registry : Failover_config.registry;
  config : Failover_config.t;
  service : Ipaddr.t;
  mutable dead : bool array;
  mutable on_event : event -> unit;
  c_deaths : Registry.counter;
}

let service_addr t = t.service
let registry t = t.registry
let set_on_event t fn = t.on_event <- fn

let alive t =
  Array.to_list t.nodes
  |> List.filter_map (fun n -> if t.dead.(n.index) then None else Some n.index)

let head t = match alive t with i :: _ -> i | [] -> -1

(* ---------------------------------------------------------------- *)
(* All-pairs heartbeat mesh.  Each node unicasts a heartbeat to every
   other node each period; a per-node watcher tracks last-seen times and
   reports silent peers. *)

let start_mesh t ~on_death =
  let n = Array.length t.nodes in
  let period = t.config.heartbeat_period in
  let timeout = t.config.detector_timeout in
  Array.iter
    (fun node ->
      let clock = Host.clock node.host in
      (* sender *)
      let seq = ref 0 in
      let rec send_loop () =
        if Host.alive node.host then begin
          incr seq;
          Array.iter
            (fun peer ->
              if peer.index <> node.index then
                Ip_layer.send (Host.ip node.host)
                  (Ipv4_packet.make ~src:(Host.addr node.host)
                     ~dst:(Host.addr peer.host)
                     (Ipv4_packet.Heartbeat
                        {
                          origin = Host.name node.host;
                          hb_seq = !seq;
                          role = (if node.is_head then `Primary else `Secondary);
                        })))
            t.nodes;
          ignore (clock.schedule period send_loop)
        end
      in
      send_loop ();
      (* watcher *)
      let last_seen = Array.make n 0 in
      let reported = Array.make n false in
      Ip_layer.set_heartbeat_handler (Host.ip node.host) (fun ~src _hb ->
          Array.iter
            (fun peer ->
              if Ipaddr.equal src (Host.addr peer.host) then
                last_seen.(peer.index) <- clock.now ())
            t.nodes);
      let rec check_loop () =
        if Host.alive node.host then begin
          let now = clock.now () in
          Array.iter
            (fun peer ->
              if
                peer.index <> node.index
                && (not reported.(peer.index))
                && now - last_seen.(peer.index) > timeout
              then begin
                reported.(peer.index) <- true;
                on_death ~observer:node.index ~dead:peer.index
              end)
            t.nodes;
          ignore (clock.schedule period check_loop)
        end
      in
      ignore (clock.schedule (timeout + period) check_loop))
    t.nodes

(* ---------------------------------------------------------------- *)
(* Role reconfiguration after a death.                               *)

let upstream_addr t j live =
  let pos = ref (-1) in
  List.iteri (fun k i -> if i = j then pos := k) live;
  if !pos <= 0 then None
  else Some (Host.addr t.nodes.(List.nth live (!pos - 1)).host)

let promote_node t node =
  if not node.is_head then begin
    node.is_head <- true;
    (match node.bridge with
    | Merger b ->
      (* generalized §5 for a middle replica: stop diverting upstream,
         leave promiscuous snooping, own the service address *)
      Primary_bridge.promote b;
      Eth_iface.set_promiscuous (Host.eth node.host) false;
      ignore
        ((Host.clock node.host).schedule t.config.takeover_processing
           (fun () ->
             Eth_iface.add_address (Host.eth node.host) t.service;
             t.on_event (Promoted node.index)))
    | Tail b ->
      Secondary_bridge.begin_takeover b ~on_complete:(fun () ->
          t.on_event (Promoted node.index)))
  end

let reconfigure t =
  let live = alive t in
  match live with
  | [] -> ()
  | head_idx :: _ ->
    let last = List.nth live (List.length live - 1) in
    List.iter
      (fun i ->
        let node = t.nodes.(i) in
        (* 1. headship *)
        if i = head_idx then promote_node t node;
        (* 2. diversion targets follow the live chain *)
        (match (upstream_addr t i live, node.bridge) with
        | Some up, Tail b ->
          Secondary_bridge.retarget b up;
          t.on_event
            (Retargeted
               ( i,
                 (let j = ref (-1) in
                  Array.iter
                    (fun nd ->
                      if Ipaddr.equal (Host.addr nd.host) up then
                        j := nd.index)
                    t.nodes;
                  !j) ))
        | Some _, Merger _ | None, _ -> ());
        (* 3. the node at the end of the live chain has nothing below it
           any more: degrade per §6 if it was merging *)
        if i = last && List.length live >= 1 then
          match node.bridge with
          | Merger b ->
            if not (Primary_bridge.degraded b) then begin
              Primary_bridge.secondary_failed b;
              t.on_event (Degraded i)
            end
          | Tail _ -> ())
      live

let handle_death t ~observer:_ ~dead =
  if not t.dead.(dead) then begin
    t.dead.(dead) <- true;
    Registry.Counter.incr t.c_deaths;
    t.on_event (Death_detected dead);
    reconfigure t
  end

(* ---------------------------------------------------------------- *)

let create ~replicas ~config () =
  (match replicas with
  | _ :: _ :: _ -> ()
  | _ -> invalid_arg "Chain.create: need at least two replicas");
  let service = Host.addr (List.hd replicas) in
  let registry = Failover_config.create_registry config in
  let n = List.length replicas in
  let arr = Array.of_list replicas in
  let nodes =
    Array.init n (fun i ->
        let host = arr.(i) in
        let bridge =
          if i = 0 then
            Merger
              (Primary_bridge.install host ~registry ~service_addr:service
                 ~secondary_addr:(Host.addr arr.(1))
                 ~output:Primary_bridge.Direct ())
          else if i < n - 1 then begin
            (* middle replica: snoop + merge + divert upstream *)
            Eth_iface.set_promiscuous (Host.eth host) true;
            Stack.set_extra_local (Host.tcp host) (fun ip ->
                Ipaddr.equal ip service);
            Merger
              (Primary_bridge.install host ~registry ~service_addr:service
                 ~secondary_addr:(Host.addr arr.(i + 1))
                 ~output:(Primary_bridge.Divert_to (Host.addr arr.(i - 1)))
                 ~claim_service:true ())
          end
          else
            Tail
              (Secondary_bridge.install host ~registry ~service_addr:service
                 ~divert_to:(Host.addr arr.(i - 1))
                 ())
        in
        { index = i; host; bridge; is_head = i = 0 })
  in
  let obs = Obs.scope (Obs.root (Host.obs (List.hd replicas))) "chain" in
  let t =
    {
      nodes;
      registry;
      config;
      service;
      dead = Array.make n false;
      on_event = (fun _ -> ());
      c_deaths = Obs.counter obs "deaths";
    }
  in
  start_mesh t ~on_death:(fun ~observer ~dead ->
      handle_death t ~observer ~dead);
  t

let listen t ~port ~on_accept =
  Failover_config.register_endpoint t.registry ~local_port:port;
  Array.iter
    (fun node ->
      Stack.listen (Host.tcp node.host) ~port ~on_accept:(fun tcb ->
          on_accept ~replica:node.index tcb))
    t.nodes

let connect_backend t ~remote ?local_port ~setup () =
  (match local_port with
  | Some p -> Failover_config.register_endpoint t.registry ~local_port:p
  | None ->
    Failover_config.register_remote t.registry ~remote_port:(snd remote));
  Array.iter
    (fun node ->
      let tcb =
        Stack.connect (Host.tcp node.host) ~local:t.service ?local_port
          ~remote ()
      in
      setup ~replica:node.index tcb)
    t.nodes

let kill t i = Host.kill t.nodes.(i).host
